// Hub: the shared handle the instrumented stack reports into. It owns
// the metric registry, a bounded ring of recent events, and an optional
// JSONL sink. Every hook method is safe to call on a nil *Hub and costs
// nothing (no allocations, one pointer comparison) in that case, so the
// hot paths of rapl, mpi, cosim and insitu carry their hooks
// unconditionally.
package telemetry

import (
	"encoding/json"
	"io"
	"math"
	"sync"
	"sync/atomic"
)

// Options configures a Hub.
type Options struct {
	// RingSize bounds the in-memory event ring (default 1024). The ring
	// never blocks emitters: the oldest events are overwritten.
	RingSize int
	// Sink, when non-nil, receives every event as one JSONL line. Sink
	// writes happen under the Hub's mutex; wrap slow writers in a
	// bufio.Writer (Close flushes writers that implement Flush).
	Sink io.Writer
}

// Hub is the process-wide telemetry endpoint. Safe for concurrent use
// from any number of goroutines (the insitu driver runs one per rank).
type Hub struct {
	reg *Registry

	// The event ring is lock-free on the write side: an emitter claims a
	// slot with one fetch-add and publishes the event with one atomic
	// pointer store, so concurrent ranks never serialize through a mutex
	// just to record an event. Only the optional sink (an ordered JSONL
	// stream) still takes the mutex, and only when configured.
	ring    []atomic.Pointer[Event]
	ringIdx atomic.Uint64 // total events ever claimed

	mu      sync.Mutex // guards sink and sinkErr
	sink    io.Writer
	sinkErr error

	dropped atomic.Uint64

	// Pre-registered families for the instrumented hot paths.
	capWrites    *Family // counter{node}
	capGauge     *Family // gauge{node}
	throttles    *Family // counter{node}
	violations   *Family // counter{node}
	rendWait     *Family // histogram{op}: collective rendezvous wait
	msgs         *Family // counter: point-to-point messages
	msgBytes     *Family // counter: point-to-point payload bytes
	syncs        *Family // counter: synchronization barriers
	wallHist     *Family // histogram: interval wall time
	slackGauge   *Family // gauge: latest interval normalized slack
	idleHist     *Family // histogram{partition}: idle troughs at barriers
	decisions    *Family // counter{policy,direction}
	shiftHist    *Family // histogram{policy}: per-node shift magnitude
	powerHist    *Family // histogram{partition}: measured per-node power
	jobBudget    *Family // gauge{job}: scheduler budget share
	faults       *Family // counter{kind,partition}: fault-plan transitions
	aliveGauge   *Family // gauge{partition}: live node membership
	degrGauge    *Family // gauge{partition}: nodes under a slow excursion
	campCells    *Family // counter{campaign,status}: campaign cells finished
	campInflight *Family // gauge{campaign}: campaign cells currently running
	campCellSec  *Family // histogram{campaign}: campaign cell duration
	eventsTotal  *Family // counter{kind}
	droppedTotal *Family // counter: ring/sink drops

	// Resolved children of the label-less hot-path families, cached at
	// construction so per-message and per-sync increments skip the
	// registry's child lookup (and its lock) entirely.
	msgsM       *Metric
	msgBytesM   *Metric
	syncsM      *Metric
	wallHistM   *Metric
	slackGaugeM *Metric
	droppedM    *Metric

	// kindM caches the per-kind event counters for every known event
	// type (read-only after construction), so Emit skips the family's
	// label lookup on each event.
	kindM map[string]*Metric
}

// eventKinds lists every event type Decode understands; New resolves a
// cached counter child per kind.
var eventKinds = []string{
	"CapWritten", "PolicyDecision", "SyncBarrier", "BudgetViolation",
	"ThrottleEngaged", "BudgetShare", "CampaignCell", "NodeKilled",
	"NodeDegraded", "NodeRecovered",
}

// New returns a Hub with the standard metric families registered.
func New(o Options) *Hub {
	if o.RingSize <= 0 {
		o.RingSize = 1024
	}
	reg := NewRegistry()
	h := &Hub{
		reg:  reg,
		ring: make([]atomic.Pointer[Event], o.RingSize),
		sink: o.Sink,

		capWrites:    reg.Counter("seesaw_cap_writes_total", "RAPL cap write operations", "node"),
		capGauge:     reg.Gauge("seesaw_power_cap_watts", "Most recently written RAPL long-term cap", "node"),
		throttles:    reg.Counter("seesaw_throttle_engaged_total", "RAPL throttle engagements (demand clipped to cap)", "node"),
		violations:   reg.Counter("seesaw_budget_violations_total", "Power observed above its limit", "node"),
		rendWait:     reg.Histogram("seesaw_barrier_wait_seconds", "Virtual time ranks wait at collective rendezvous", LatencyBuckets(), "op"),
		msgs:         reg.Counter("seesaw_messages_total", "Point-to-point messages sent"),
		msgBytes:     reg.Counter("seesaw_message_bytes_total", "Point-to-point payload bytes sent"),
		syncs:        reg.Counter("seesaw_sync_total", "Simulation/analysis synchronization intervals"),
		wallHist:     reg.Histogram("seesaw_interval_wall_seconds", "Synchronization interval wall time", LatencyBuckets()),
		slackGauge:   reg.Gauge("seesaw_interval_slack", "Normalized slack of the latest interval"),
		idleHist:     reg.Histogram("seesaw_idle_trough_seconds", "Per-node idle time at synchronization barriers", LatencyBuckets(), "partition"),
		decisions:    reg.Counter("seesaw_policy_decisions_total", "Policy allocation decisions", "policy", "direction"),
		shiftHist:    reg.Histogram("seesaw_policy_shift_watts", "Per-node power moved by one policy decision", []float64{0.5, 1, 2, 5, 10, 20, 50, 100}, "policy"),
		powerHist:    reg.Histogram("seesaw_node_power_watts", "Measured per-node average power per interval", PowerBuckets(), "partition"),
		jobBudget:    reg.Gauge("seesaw_job_budget_watts", "Per-job power budget assigned by the scheduler", "job"),
		faults:       reg.Counter("seesaw_node_faults_total", "Node lifecycle transitions fired by fault plans", "kind", "partition"),
		aliveGauge:   reg.Gauge("seesaw_alive_nodes", "Nodes still alive in the partition", "partition"),
		degrGauge:    reg.Gauge("seesaw_degraded_nodes", "Nodes currently under a slow-node excursion", "partition"),
		campCells:    reg.Counter("seesaw_campaign_cells_total", "Campaign cells finished, by status", "campaign", "status"),
		campInflight: reg.Gauge("seesaw_campaign_inflight_cells", "Campaign cells currently executing", "campaign"),
		campCellSec:  reg.Histogram("seesaw_campaign_cell_seconds", "Wall-clock duration of one campaign cell", CellBuckets(), "campaign"),
		eventsTotal:  reg.Counter("seesaw_events_total", "Structured events emitted", "kind"),
		droppedTotal: reg.Counter("seesaw_events_dropped_total", "Structured events lost to sink errors"),
	}
	h.msgsM = h.msgs.With()
	h.msgBytesM = h.msgBytes.With()
	h.syncsM = h.syncs.With()
	h.wallHistM = h.wallHist.With()
	h.slackGaugeM = h.slackGauge.With()
	h.droppedM = h.droppedTotal.With()
	h.kindM = make(map[string]*Metric, len(eventKinds))
	for _, k := range eventKinds {
		h.kindM[k] = h.eventsTotal.With(k)
	}
	return h
}

// RendezvousWaitMetric returns the collective-wait histogram series for
// one op, for callers (the mpi runtime) that cache the handle instead of
// paying a label lookup on every collective. Nil on a nil hub.
func (h *Hub) RendezvousWaitMetric(op string) *Metric {
	if h == nil {
		return nil
	}
	return h.rendWait.With(op)
}

// IdleWaitMetric returns the idle-trough histogram series for one
// partition, for callers (the PoLiMER manager) that cache the handle
// across synchronizations. Nil on a nil hub.
func (h *Hub) IdleWaitMetric(partition string) *Metric {
	if h == nil {
		return nil
	}
	return h.idleHist.With(partition)
}

// NodePowerMetric returns the per-node power histogram series for one
// partition, for callers (the instrumented power probe) that cache the
// handle across intervals. Nil on a nil hub.
func (h *Hub) NodePowerMetric(partition string) *Metric {
	if h == nil {
		return nil
	}
	return h.powerHist.With(partition)
}

// CapSite bundles the resolved per-node children of the RAPL families —
// cap writes, cap gauge, throttles, violations — so a domain resolves
// its labels once at attach time and the per-write hot path never pays
// a family label lookup. A nil *CapSite no-ops every method.
type CapSite struct {
	hub        *Hub
	writes     *Metric
	gauge      *Metric
	throttles  *Metric
	violations *Metric
	eventful   bool
}

// CapSiteFor resolves one node's RAPL telemetry children. Nil on a nil
// hub.
func (h *Hub) CapSiteFor(node string, eventful bool) *CapSite {
	if h == nil {
		return nil
	}
	return &CapSite{
		hub:        h,
		writes:     h.capWrites.With(node),
		gauge:      h.capGauge.With(node),
		throttles:  h.throttles.With(node),
		violations: h.violations.With(node),
		eventful:   eventful,
	}
}

// CapWritten reports a RAPL cap write through the site's cached
// children; see Hub.CapWritten.
func (s *CapSite) CapWritten(t float64, node string, capW float64, short bool) {
	if s == nil {
		return
	}
	s.writes.Inc()
	if !short {
		s.gauge.Set(capW)
	}
	if s.eventful {
		s.hub.Emit(CapWritten{T: t, Node: node, CapW: capW, Short: short})
	}
}

// ThrottleEngaged reports a throttle engagement through the site's
// cached children; see Hub.ThrottleEngaged.
func (s *CapSite) ThrottleEngaged(t float64, node string, demandW, allowedW float64) {
	if s == nil {
		return
	}
	s.throttles.Inc()
	if s.eventful {
		s.hub.Emit(ThrottleEngaged{T: t, Node: node, DemandW: demandW, AllowedW: allowedW})
	}
}

// BudgetViolation reports an over-limit observation through the site's
// cached children; see Hub.BudgetViolation.
func (s *CapSite) BudgetViolation(t float64, node string, observedW, limitW float64) {
	if s == nil {
		return
	}
	s.violations.Inc()
	if s.eventful {
		s.hub.Emit(BudgetViolation{T: t, Node: node, ObservedW: observedW, LimitW: limitW})
	}
}

// Registry returns the hub's metric registry (nil for a nil hub).
func (h *Hub) Registry() *Registry {
	if h == nil {
		return nil
	}
	return h.reg
}

// Emit records a structured event: into the ring, the sink (as JSONL)
// and the per-kind counter. The counter child is pre-resolved and the
// ring write is one fetch-add plus one pointer store, so emitters never
// contend on a lock unless a sink is configured.
func (h *Hub) Emit(e Event) {
	if h == nil {
		return
	}
	if m := h.kindM[e.Kind()]; m != nil {
		m.Inc()
	} else {
		h.eventsTotal.With(e.Kind()).Inc()
	}
	idx := h.ringIdx.Add(1) - 1
	h.ring[idx%uint64(len(h.ring))].Store(&e)
	if h.sink != nil {
		h.mu.Lock()
		if h.sinkErr == nil {
			line, err := Encode(e)
			if err == nil {
				line = append(line, '\n')
				_, err = h.sink.Write(line)
			}
			if err != nil {
				h.sinkErr = err
				h.dropped.Add(1)
				h.droppedM.Inc()
			}
		}
		h.mu.Unlock()
	}
}

// Events returns the ring's contents, oldest first (by slot-claim
// order). An emitter that has claimed a slot but not yet published into
// it leaves the slot empty (skipped) or holding the previous lap's
// event, so a snapshot taken mid-emission may be short or slightly
// stale; once emitters quiesce the snapshot is exact.
func (h *Hub) Events() []Event {
	if h == nil {
		return nil
	}
	total := h.ringIdx.Load()
	n := uint64(len(h.ring))
	start := uint64(0)
	if total > n {
		start = total - n
	}
	out := make([]Event, 0, total-start)
	for i := start; i < total; i++ {
		if p := h.ring[i%n].Load(); p != nil {
			out = append(out, *p)
		}
	}
	return out
}

// Dropped returns how many events were lost to sink errors.
func (h *Hub) Dropped() uint64 {
	if h == nil {
		return 0
	}
	return h.dropped.Load()
}

// SinkErr returns the first sink write error, if any.
func (h *Hub) SinkErr() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sinkErr
}

// Close flushes the sink when it supports flushing (e.g. bufio.Writer)
// and returns the first sink error encountered.
func (h *Hub) Close() error {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if f, ok := h.sink.(interface{ Flush() error }); ok {
		if err := f.Flush(); err != nil && h.sinkErr == nil {
			h.sinkErr = err
		}
	}
	return h.sinkErr
}

// debugState is the /debug/telemetry JSON document.
type debugState struct {
	Metrics []FamilySnapshot  `json:"metrics"`
	Events  []json.RawMessage `json:"events"`
	Dropped uint64            `json:"dropped_events"`
}

// WriteJSON emits a JSON snapshot of all metrics plus the recent event
// ring — the payload of seesawctl's /debug/telemetry endpoint.
func (h *Hub) WriteJSON(w io.Writer) error {
	if h == nil {
		_, err := io.WriteString(w, "{}\n")
		return err
	}
	st := debugState{Metrics: h.reg.Snapshot(), Dropped: h.Dropped()}
	for _, e := range h.Events() {
		line, err := Encode(e)
		if err != nil {
			continue
		}
		st.Events = append(st.Events, line)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(st)
}

// ---- hook methods (all nil-safe and allocation-free when h == nil) ----

// CapWritten reports a RAPL cap write. Metrics are always updated; the
// structured event is emitted only when eventful is true, so drivers can
// restrict the event stream to one representative node per partition
// while counters still cover every node.
func (h *Hub) CapWritten(t float64, node string, capW float64, short, eventful bool) {
	if h == nil {
		return
	}
	h.capWrites.With(node).Inc()
	if !short {
		h.capGauge.With(node).Set(capW)
	}
	if eventful {
		h.Emit(CapWritten{T: t, Node: node, CapW: capW, Short: short})
	}
}

// ThrottleEngaged reports a RAPL domain starting to clip demand (the
// caller gates on the engage transition).
func (h *Hub) ThrottleEngaged(t float64, node string, demandW, allowedW float64, eventful bool) {
	if h == nil {
		return
	}
	h.throttles.With(node).Inc()
	if eventful {
		h.Emit(ThrottleEngaged{T: t, Node: node, DemandW: demandW, AllowedW: allowedW})
	}
}

// BudgetViolation reports observed power above its limit (a node's RAPL
// window or a whole job's budget, node == "job"). The counter covers
// every caller; the structured event is emitted only when eventful is
// true so per-node excursions don't flood the stream at scale.
func (h *Hub) BudgetViolation(t float64, node string, observedW, limitW float64, eventful bool) {
	if h == nil {
		return
	}
	h.violations.With(node).Inc()
	if eventful {
		h.Emit(BudgetViolation{T: t, Node: node, ObservedW: observedW, LimitW: limitW})
	}
}

// RendezvousWait records the virtual time one rank waited in a
// collective (metrics only: per-rank per-collective events would swamp
// the stream).
func (h *Hub) RendezvousWait(op string, seconds float64) {
	if h == nil {
		return
	}
	h.rendWait.With(op).Observe(seconds)
}

// MessageSent counts one point-to-point message (metrics only).
func (h *Hub) MessageSent(bytes int) {
	if h == nil {
		return
	}
	h.msgsM.Inc()
	h.msgBytesM.Add(float64(bytes))
}

// SyncBarrier reports one completed synchronization interval.
func (h *Hub) SyncBarrier(t float64, step int, wallS, simS, anaS, slack, overheadS float64) {
	if h == nil {
		return
	}
	h.syncsM.Inc()
	h.wallHistM.Observe(wallS)
	h.slackGaugeM.Set(slack)
	h.Emit(SyncBarrier{T: t, Step: step, WallS: wallS, SimS: simS, AnaS: anaS, Slack: slack, Overhead: overheadS})
}

// IdleWait records one node's idle trough at a synchronization barrier
// (metrics only).
func (h *Hub) IdleWait(partition string, seconds float64) {
	if h == nil {
		return
	}
	h.idleHist.With(partition).Observe(seconds)
}

// NodePower records one node's measured average power over an interval
// (metrics only).
func (h *Hub) NodePower(partition string, watts float64) {
	if h == nil {
		return
	}
	h.powerHist.With(partition).Observe(watts)
}

// PolicyDecision reports one allocation decision; shift magnitude and
// direction are derived from the per-node partition caps.
func (h *Hub) PolicyDecision(t float64, policy string, step int, prevSimW, prevAnaW, simW, anaW float64) {
	if h == nil {
		return
	}
	const eps = 1e-9
	shift := simW - prevSimW
	dir := "hold"
	switch {
	case shift > eps:
		dir = "to-sim"
	case shift < -eps:
		dir = "to-ana"
	}
	h.decisions.With(policy, dir).Inc()
	h.shiftHist.With(policy).Observe(math.Abs(shift))
	h.Emit(PolicyDecision{
		T: t, Policy: policy, Step: step,
		PrevSimCapW: prevSimW, PrevAnaCapW: prevAnaW,
		SimCapW: simW, AnaCapW: anaW,
		ShiftW: math.Abs(shift), Direction: dir,
	})
}

// CampaignCellStarted reports one campaign cell entering a worker
// (metrics only: the inflight gauge is what `serve` dashboards watch).
func (h *Hub) CampaignCellStarted(campaign string) {
	if h == nil {
		return
	}
	h.campInflight.With(campaign).Add(1)
}

// CampaignCellDone reports one campaign cell leaving the worker pool
// with the given status ("ok", "error" or "skipped"); done/total carry
// the campaign's progress. Skipped cells (cancelled before starting)
// never incremented the inflight gauge, so started distinguishes them.
func (h *Hub) CampaignCellDone(campaign, key, status string, seconds float64, done, total int, started bool) {
	if h == nil {
		return
	}
	if started {
		h.campInflight.With(campaign).Add(-1)
		h.campCellSec.With(campaign).Observe(seconds)
	}
	h.campCells.With(campaign, status).Inc()
	h.Emit(CampaignCell{Campaign: campaign, Key: key, Status: status, Seconds: seconds, Done: done, Total: total})
}

// NodeKilled reports a fault plan removing a node from the membership;
// aliveSim/aliveAna are the partitions' live sizes after the kill.
func (h *Hub) NodeKilled(t float64, node int, role string, sync, aliveSim, aliveAna int) {
	if h == nil {
		return
	}
	h.faults.With("kill", role).Inc()
	h.aliveGauge.With("sim").Set(float64(aliveSim))
	h.aliveGauge.With("ana").Set(float64(aliveAna))
	h.Emit(NodeKilled{T: t, Node: node, Role: role, Sync: sync, AliveSim: aliveSim, AliveAna: aliveAna})
}

// NodeDegraded reports a slow-node excursion starting on one node.
func (h *Hub) NodeDegraded(t float64, node int, role string, sync int, factor float64) {
	if h == nil {
		return
	}
	h.faults.With("slow", role).Inc()
	h.degrGauge.With(role).Add(1)
	h.Emit(NodeDegraded{T: t, Node: node, Role: role, Sync: sync, Factor: factor})
}

// NodeRecovered reports a degraded node returning to full speed.
func (h *Hub) NodeRecovered(t float64, node int, role string, sync int) {
	if h == nil {
		return
	}
	h.faults.With("recover", role).Inc()
	h.degrGauge.With(role).Add(-1)
	h.Emit(NodeRecovered{T: t, Node: node, Role: role, Sync: sync})
}

// StageStart reports a workflow stage beginning its work for one
// synchronization interval (from the stage's first rank only).
func (h *Hub) StageStart(t float64, stage string, sync int) {
	if h == nil {
		return
	}
	h.Emit(StageStart{T: t, Stage: stage, Sync: sync})
}

// StageEnd reports a workflow stage finishing its work for one
// synchronization interval.
func (h *Hub) StageEnd(t float64, stage string, sync int, busyS float64) {
	if h == nil {
		return
	}
	h.Emit(StageEnd{T: t, Stage: stage, Sync: sync, BusyS: busyS})
}

// TransferVolume reports one workflow edge's modeled data volume at a
// synchronization (from the producing stage's first rank only).
func (h *Hub) TransferVolume(t float64, edge string, sync int, bytes int64, seconds float64) {
	if h == nil {
		return
	}
	h.Emit(TransferVolume{T: t, Edge: edge, Sync: sync, Bytes: bytes, Seconds: seconds})
}

// JobBudget reports the machine-level scheduler assigning one job's
// power budget.
func (h *Hub) JobBudget(t float64, epoch int, job string, budgetW, share float64) {
	if h == nil {
		return
	}
	h.jobBudget.With(job).Set(budgetW)
	h.Emit(BudgetShare{T: t, Epoch: epoch, Job: job, BudgetW: budgetW, Share: share})
}

package insitu

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/units"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata/insitu_golden.txt from the current run")

// goldenConfig is chosen to exercise every piece of state the analysis
// memoization must reproduce exactly: uneven partitions (so two distinct
// source counts exist among the analysis ranks), all five analyses with
// a mixed interval, node noise, short-term caps, a slow-node excursion
// and a power-sampling monitor.
func goldenConfig() Config {
	n := 8
	cons := core.Constraints{Budget: units.Watts(110 * n), MinCap: 98, MaxCap: 215}
	plan, err := fault.Parse("slow:6@3x1.7+8")
	if err != nil {
		panic(err)
	}
	return Config{
		SimRanks:          5,
		AnaRanks:          3,
		Steps:             24,
		SyncEvery:         2,
		Analyses:          []string{"rdf", "vacf", "msd", "msd1d", "msd2d"},
		AnalysisIntervals: map[string]int{"msd": 4},
		Policy:            core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 2}),
		Constraints:       cons,
		ShortTermCap:      true,
		Seed:              17,
		Faults:            plan,
		Noise:             machine.NoiseModel{SkewSigma: 0.02, PowerEffSigma: 0.03, JitterSigma: 0.01},
		PowerSample:       0.5,
	}
}

// hexFloat renders a float64 exactly (hex mantissa), so the golden
// comparison catches drifts far below any decimal rounding.
func hexFloat(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// renderGolden serializes every observable of a Result at full float64
// precision.
func renderGolden(res *Result) []byte {
	var b bytes.Buffer
	fmt.Fprintf(&b, "main_loop_time %s\n", hexFloat(float64(res.MainLoopTime)))
	fmt.Fprintf(&b, "syncs %d\n", res.Syncs)
	fmt.Fprintf(&b, "total_energy %s\n", hexFloat(float64(res.TotalEnergy)))
	fmt.Fprintf(&b, "overhead_total %s\n", hexFloat(float64(res.OverheadTotal)))
	fmt.Fprintf(&b, "final_sim_energy %s\n", hexFloat(res.FinalSimEnergy))
	for _, r := range res.SyncLog.Records {
		fmt.Fprintf(&b, "sync %d %s %s %s %s %s %s %s\n", r.Step,
			hexFloat(float64(r.SimTime)), hexFloat(float64(r.AnaTime)),
			hexFloat(float64(r.SimPower)), hexFloat(float64(r.AnaPower)),
			hexFloat(float64(r.SimCap)), hexFloat(float64(r.AnaCap)),
			hexFloat(float64(r.Overhead)))
	}
	names := make([]string, 0, len(res.AnalysisResults))
	for name := range res.AnalysisResults {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "analysis %s", name)
		for _, v := range res.AnalysisResults[name] {
			fmt.Fprintf(&b, " %s", hexFloat(v))
		}
		fmt.Fprintln(&b)
	}
	if res.PowerTrace != nil {
		// Series registration order depends on goroutine scheduling
		// (which rank grabs the result mutex first); the samples are what
		// the determinism contract covers.
		traceNames := res.PowerTrace.Names()
		sort.Strings(traceNames)
		for _, name := range traceNames {
			fmt.Fprintf(&b, "power %s", name)
			for _, s := range res.PowerTrace.Series(name).Samples {
				fmt.Fprintf(&b, " %s:%s", hexFloat(float64(s.Time)), hexFloat(s.Value))
			}
			fmt.Fprintln(&b)
		}
	}
	return b.Bytes()
}

// TestAnalysisMemoGolden pins the full job result — virtual times,
// power trace, per-synchronization records and every analysis output
// float — to the bytes the unmemoized (per-rank Consume) runtime
// produced, captured before analysis-side memoization was introduced.
// Both the memoized default and the -no-ana-memo escape hatch must
// reproduce the recording exactly: replaying per-kind integrations may
// not move a single bit of any observable.
func TestAnalysisMemoGolden(t *testing.T) {
	path := filepath.Join("testdata", "insitu_golden.txt")
	run := func(noMemo bool) []byte {
		cfg := goldenConfig()
		cfg.NoAnaMemo = noMemo
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return renderGolden(res)
	}
	memoized := run(false)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, memoized, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %d bytes", len(memoized))
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden (run with -update-golden to create): %v", err)
	}
	compare := func(mode string, got []byte) {
		if bytes.Equal(got, want) {
			return
		}
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				lo := i - 40
				if lo < 0 {
					lo = 0
				}
				t.Fatalf("%s diverges from golden at byte %d: got ...%q, want ...%q",
					mode, i, got[lo:min(i+40, len(got))], want[lo:min(i+40, len(want))])
			}
		}
		t.Fatalf("%s length differs from golden: got %d bytes, want %d", mode, len(got), len(want))
	}
	compare("memoized run", memoized)
	compare("-no-ana-memo run", run(true))
}

// TestAnalysisMemoMatchesUnmemoized cross-checks the two paths directly
// (independent of the committed golden) across partition shapes,
// including AnaRanks > SimRanks where some analysis ranks consume no
// frames at all.
func TestAnalysisMemoMatchesUnmemoized(t *testing.T) {
	shapes := []struct{ sim, ana int }{{4, 2}, {3, 4}, {5, 3}}
	for _, sh := range shapes {
		t.Run(fmt.Sprintf("sim=%d_ana=%d", sh.sim, sh.ana), func(t *testing.T) {
			run := func(noMemo bool) []byte {
				// Each run gets a fresh config (and in particular a fresh
				// policy: SeeSAw keeps window history across allocations).
				cfg := goldenConfig()
				cfg.SimRanks = sh.sim
				cfg.AnaRanks = sh.ana
				cfg.Faults = nil
				n := sh.sim + sh.ana
				cfg.Constraints = core.Constraints{Budget: units.Watts(110 * n), MinCap: 98, MaxCap: 215}
				cfg.Policy = core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cfg.Constraints, Window: 2})
				cfg.NoAnaMemo = noMemo
				res, err := Run(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return renderGolden(res)
			}
			memo, plain := run(false), run(true)
			if !bytes.Equal(memo, plain) {
				lm := bytes.Split(memo, []byte("\n"))
				lp := bytes.Split(plain, []byte("\n"))
				for i := 0; i < len(lm) && i < len(lp); i++ {
					if !bytes.Equal(lm[i], lp[i]) {
						t.Fatalf("memoized and unmemoized runs differ at line %d:\nmemo:  %.200s\nplain: %.200s", i, lm[i], lp[i])
					}
				}
				t.Fatalf("memoized and unmemoized runs differ in length: %d vs %d lines", len(lm), len(lp))
			}
		})
	}
}

package cosim

import (
	"context"
	"fmt"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/machine"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// heteroConfig is one co-simulated job at the given world size with
// half of each partition on the gpu class, shrunk to a few steps so
// ns/op tracks the per-interval substrate cost — cluster construction
// with class resolution, per-node capability plumbing, and the
// allocators' capability-weighted waterfill — rather than the MD
// physics.
func heteroConfig(world int) Config {
	half := world / 2
	classes := machine.MustParseClassMap(fmt.Sprintf("%d-%d:gpu,%d-%d:gpu",
		half/2, half-1, half+half/2, world-1))
	cons := core.Constraints{Budget: units.Watts(110 * world), MinCap: 98, MaxCap: 215}
	pol := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
	return Config{
		Spec: workload.Spec{
			SimNodes: half, AnaNodes: world - half,
			Dim: 16, J: 2, Steps: 4, Analyses: workload.Tasks("msd"),
		},
		Policy:      pol,
		Constraints: cons,
		CapMode:     CapLong,
		Seed:        11,
		RunSeed:     12,
		Classes:     classes,
	}
}

// BenchmarkHetero runs the space-shared driver on a mixed CPU/GPU
// partition at increasing node counts, measuring what heterogeneity
// adds to the hot path: per-class node construction, capability lookup
// per measurement, and the waterfill division replacing the uniform
// split in every allocation.
func BenchmarkHetero(b *testing.B) {
	for _, world := range []int{256, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", world), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// Rebuilt per iteration: the seesaw policy is stateful.
				res, err := Run(context.Background(), heteroConfig(world))
				if err != nil {
					b.Fatal(err)
				}
				if res.TotalTime <= 0 {
					b.Fatal("non-positive total time")
				}
			}
		})
	}
}

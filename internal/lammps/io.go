// Trajectory and thermodynamic output: the XYZ dump format every MD
// visualization tool reads, and the per-step thermo line LAMMPS prints
// (step 8 of the Verlet-Splitanalysis flow requests thermodynamic data
// at the end of each time step).
package lammps

import (
	"bufio"
	"fmt"
	"io"
)

// speciesSymbols maps species ids to element-like symbols for XYZ dumps.
var speciesSymbols = [numSpecies]string{"O", "H3O", "Cl"}

// WriteXYZ appends one frame in XYZ format: atom count, a comment line
// with the step and box, then one "symbol x y z" line per atom.
func WriteXYZ(w io.Writer, f *Frame) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d\n", len(f.Pos)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "step=%d box=%.6f\n", f.Step, f.Box); err != nil {
		return err
	}
	for i, p := range f.Pos {
		sym := "X"
		if f.Typ[i] >= 0 && f.Typ[i] < numSpecies {
			sym = speciesSymbols[f.Typ[i]]
		}
		if _, err := fmt.Fprintf(bw, "%s %.6f %.6f %.6f\n", sym, p[0], p[1], p[2]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Thermo is one step's thermodynamic summary, the data LAMMPS emits at
// the end of each time step.
type Thermo struct {
	Step      int
	Temp      float64
	Kinetic   float64
	Potential float64
	Total     float64
	Pressure  float64
	MomentumX float64
	MomentumY float64
	MomentumZ float64
}

// ThermoLine captures the current thermodynamic state.
func (s *System) ThermoLine() Thermo {
	m := s.TotalMomentum()
	ke := s.KineticEnergy()
	return Thermo{
		Step:      s.step,
		Temp:      s.Temperature(),
		Kinetic:   ke,
		Potential: s.pe,
		Total:     ke + s.pe,
		Pressure:  s.Pressure(),
		MomentumX: m[0],
		MomentumY: m[1],
		MomentumZ: m[2],
	}
}

// WriteThermoHeader writes the column header of a thermo log.
func WriteThermoHeader(w io.Writer) error {
	_, err := fmt.Fprintln(w, "step,temp,ke,pe,etotal,press,px,py,pz")
	return err
}

// WriteThermo appends one CSV thermo line.
func WriteThermo(w io.Writer, t Thermo) error {
	_, err := fmt.Fprintf(w, "%d,%.6f,%.4f,%.4f,%.4f,%.4f,%.2e,%.2e,%.2e\n",
		t.Step, t.Temp, t.Kinetic, t.Potential, t.Total, t.Pressure, t.MomentumX, t.MomentumY, t.MomentumZ)
	return err
}

package mpi

import (
	"fmt"
	"testing"
)

func TestReduceSum(t *testing.T) {
	run(t, 4, func(r *Rank) {
		res := r.World().ReduceSum(1, []float64{float64(r.WorldRank()), 2})
		if r.WorldRank() == 1 {
			if res[0] != 6 || res[1] != 8 {
				panic(fmt.Sprintf("reduce sum = %v", res))
			}
		} else if res != nil {
			panic("non-root should receive nil")
		}
	})
}

func TestReduceMax(t *testing.T) {
	run(t, 4, func(r *Rank) {
		res := r.World().ReduceMax(0, []float64{float64(r.WorldRank())})
		if r.WorldRank() == 0 && res[0] != 3 {
			panic(fmt.Sprintf("reduce max = %v", res))
		}
	})
}

func TestReduceRootOutOfRange(t *testing.T) {
	err := Run(2, DefaultCost(), func(r *Rank) {
		r.World().ReduceSum(5, []float64{1})
	})
	if err == nil {
		t.Error("bad root should error")
	}
}

func TestScatter(t *testing.T) {
	run(t, 3, func(r *Rank) {
		var items []any
		if r.WorldRank() == 0 {
			items = []any{"a", "b", "c"}
		}
		got := r.World().Scatter(0, items, 8)
		want := string(rune('a' + r.WorldRank()))
		if got != want {
			panic(fmt.Sprintf("scatter got %v want %v", got, want))
		}
	})
}

func TestScatterWrongLength(t *testing.T) {
	err := Run(2, DefaultCost(), func(r *Rank) {
		var items []any
		if r.WorldRank() == 0 {
			items = []any{"only-one"}
		}
		r.World().Scatter(0, items, 8)
	})
	if err == nil {
		t.Error("scatter with wrong item count should error")
	}
}

func TestSendrecv(t *testing.T) {
	run(t, 2, func(r *Rank) {
		peer := 1 - r.WorldRank()
		got := r.Sendrecv(peer, 3, r.WorldRank()*100, 8, peer, 3)
		if got != peer*100 {
			panic(fmt.Sprintf("sendrecv got %v", got))
		}
	})
}

func TestIrecvWait(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.WorldRank() == 0 {
			req := r.Irecv(1, 9)
			if got := req.Wait(); got != "late" {
				panic("wrong payload")
			}
			// A second Wait returns the cached payload.
			if got := req.Wait(); got != "late" {
				panic("second Wait lost the payload")
			}
		} else {
			r.Elapse(0.5)
			r.Send(0, 9, "late", 8)
		}
	})
}

func TestIrecvTest(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.WorldRank() == 0 {
			req := r.Irecv(1, 4)
			// Ensure the message is in flight before testing.
			r.World().Barrier()
			for !req.Test() {
			}
			if got := req.Wait(); got != 42 {
				panic("wrong payload after Test")
			}
		} else {
			r.Send(0, 4, 42, 8)
			r.World().Barrier()
		}
	})
}

func TestWtime(t *testing.T) {
	run(t, 1, func(r *Rank) {
		r.Elapse(2.5)
		if r.Wtime() != 2.5 {
			panic("Wtime mismatch")
		}
	})
}

func TestTranslateRank(t *testing.T) {
	run(t, 6, func(r *Rank) {
		sub := r.World().Split(r.WorldRank()%2, r.WorldRank())
		// Rank i of the even communicator is world rank 2i.
		if r.WorldRank()%2 == 0 {
			w := sub.TranslateRank(sub.Rank(), r.World())
			if w != r.WorldRank() {
				panic(fmt.Sprintf("translate %d -> %d, want %d", sub.Rank(), w, r.WorldRank()))
			}
			if sub.TranslateRank(99, r.World()) != -1 {
				panic("out-of-range rank should translate to -1")
			}
		}
		r.World().Barrier()
	})
}

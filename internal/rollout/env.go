// Package rollout turns the deterministic co-simulation into a
// policy-evaluation environment with an explicit observation/action
// step API (the ROADMAP's policy-search substrate, SPARS-style):
//
//	env := rollout.NewEnv()
//	obs, err := env.Reset(spec)
//	for !done {
//	    caps := agent.Act(obs)          // any allocator, in- or out-of-tree
//	    obs, done = env.Step(caps)
//	}
//	res, err := env.Result()
//
// The environment is byte-identical to in-loop policy execution: an
// Env run is the existing cosim / workflow driver with the policy
// callback inverted into a condition-variable rendezvous, so a
// registry policy driven through Env reproduces exactly the report
// bytes of the same policy run inside the driver (the golden tests pin
// this, for fresh and pooled episodes alike).
//
// The step path is allocation-free at steady state: one driver
// goroutine per Env parks between episodes, observations are published
// through a double-buffered measure slice owned by the Env, and
// space-shared episodes replay a pooled cosim.Episode over a shared
// cosim.JobState instead of rebuilding the node population per run
// (see DESIGN.md, "Rollout fast path"). Batched rollouts over the
// campaign engine (Batch) reach thousands of policy evaluations per
// second — the "millions of runs" scale story.
package rollout

import (
	"context"
	"fmt"
	"sync"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/telemetry"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workflow"
	"seesaw/internal/workload"
)

// Spec describes one environment episode: a full co-simulated job minus
// the policy, which the caller supplies action by action.
type Spec struct {
	// Workload is the job (node counts, dim, j, steps, analyses).
	Workload workload.Spec
	// Topology selects the driver: "" or "space-shared" runs the
	// classic two-partition cosim driver; any other registered topology
	// ("time-shared", "in-transit", "dag") runs the workflow engine on
	// the equivalent graph.
	Topology string
	// CapPerNode is the per-node budget (110 W, the paper's setting,
	// when zero); Constraints are derived from it unless set explicitly.
	CapPerNode units.Watts
	// Constraints, when non-zero, override the derived budget/range.
	Constraints core.Constraints
	// Seed and RunSeed drive the noise streams (see cosim.Config).
	Seed, RunSeed uint64
	// Noise configures node variability; zero disables it.
	Noise machine.NoiseModel
	// Faults is an optional deterministic fault plan.
	Faults *fault.Plan
	// Classes assigns device classes to node ids (machine.ClassMap
	// grammar); nil keeps the cluster homogeneous.
	Classes *machine.ClassMap
	// Telemetry, when non-nil, instruments the underlying run.
	// Instrumented episodes bypass the episode pool: telemetry counters
	// are cumulative per node population, so each run gets a fresh one.
	Telemetry *telemetry.Hub
	// NoNoiseMemo disables the job's noise-trace memoization
	// (cosim.Config.NoNoiseMemo): episodes draw jitter live from the
	// node streams instead of replaying the recorded trace. Replay is
	// byte-identical by construction — the flag is a diagnostic escape
	// hatch, and it forks the job key so memoized and live JobStates
	// never share a cache entry.
	NoNoiseMemo bool
}

// paper-default cap range, mirrored from the experiment harness.
const (
	defaultCapPerNode = units.Watts(110)
	defaultMinCap     = units.Watts(98)
	defaultMaxCap     = units.Watts(215)
)

// constraints resolves the spec's constraint set.
func (s Spec) constraints(physicalNodes int) core.Constraints {
	if s.Constraints != (core.Constraints{}) {
		return s.Constraints
	}
	capPer := s.CapPerNode
	if capPer == 0 {
		capPer = defaultCapPerNode
	}
	return core.Constraints{
		Budget: capPer * units.Watts(physicalNodes),
		MinCap: defaultMinCap,
		MaxCap: defaultMaxCap,
	}
}

// jobKey identifies the episode-invariant part of a space-shared spec:
// everything cosim.NewJobState reads plus the cluster seeds and noise.
// Budget, window and policy are episode parameters and stay out of the
// key, so a grid sweep over them shares one cosim.JobState.
func (s Spec) jobKey() string {
	w := s.Workload
	key := fmt.Sprintf("n%d+%d/dim%d/j%d/steps%d/an=%v/nst=%t/seed=%d.%d/noise=%+v/faults=%s/classes=%s",
		w.SimNodes, w.AnaNodes, w.Dim, w.J, w.Steps, w.Analyses, w.NoSetupTransient,
		s.Seed, s.RunSeed, s.Noise, s.Faults, s.Classes)
	if s.NoNoiseMemo {
		key += "/nomemo"
	}
	return key
}

// cosimConfig assembles the space-shared driver configuration.
func (s Spec) cosimConfig(pol core.Policy) cosim.Config {
	return cosim.Config{
		Spec:        s.Workload,
		Policy:      pol,
		Constraints: s.constraints(s.Workload.SimNodes + s.Workload.AnaNodes),
		CapMode:     cosim.CapLong,
		Seed:        s.Seed,
		RunSeed:     s.RunSeed,
		Noise:       s.Noise,
		Faults:      s.Faults,
		Classes:     s.Classes,
		Telemetry:   s.Telemetry,
		NoNoiseMemo: s.NoNoiseMemo,
	}
}

// Observation is what the environment exposes between actions: the
// per-node measurements the in-loop policy would have received, plus
// the slack/phase aggregates the telemetry layer computes from them.
//
// Measures aliases a buffer owned by the Env and is only valid until
// the next Step, Reset or Close call on that Env. Callers that retain
// an observation across steps (replay buffers, logging) must take a
// Clone first; callers that act on it immediately — every policy's
// Allocate — read it for free.
type Observation struct {
	// Step is the 1-based synchronization index.
	Step int
	// Measures are the per-node measurements of the interval that just
	// ended, in world-rank order (what Policy.Allocate receives).
	Measures []core.NodeMeasure
	// SimTime and AnaTime are the partitions' slowest busy times;
	// Slack is the interval's normalized slack |T_S - T_A| / wall.
	SimTime, AnaTime units.Seconds
	Slack            float64
	// SimPower and AnaPower are the partitions' mean per-node measured
	// powers over the interval.
	SimPower, AnaPower units.Watts
	// AliveSim and AliveAna are the partitions' live node counts.
	AliveSim, AliveAna int
}

// Clone returns a copy of the observation whose Measures are owned by
// the caller, for retention past the Env's reuse window.
func (o Observation) Clone() Observation {
	o.Measures = append([]core.NodeMeasure(nil), o.Measures...)
	return o
}

// aggregate fills the observation's partition aggregates from its
// measures (the same arithmetic the drivers' SyncRecords use).
func (o *Observation) aggregate() {
	var wall units.Seconds
	for _, m := range o.Measures {
		if m.Health == core.Dead {
			continue
		}
		switch m.Role {
		case core.RoleSimulation:
			o.AliveSim++
			o.SimPower += m.Power
			if m.BusyTime > o.SimTime {
				o.SimTime = m.BusyTime
			}
		case core.RoleAnalysis:
			o.AliveAna++
			o.AnaPower += m.Power
			if m.BusyTime > o.AnaTime {
				o.AnaTime = m.BusyTime
			}
		}
		if m.Time > wall {
			wall = m.Time
		}
	}
	if o.AliveSim > 0 {
		o.SimPower /= units.Watts(o.AliveSim)
	}
	if o.AliveAna > 0 {
		o.AnaPower /= units.Watts(o.AliveAna)
	}
	o.Slack = trace.SyncRecord{SimTime: o.SimTime, AnaTime: o.AnaTime}.Slack()
}

// Result summarizes a finished episode, uniformly over both drivers.
type Result struct {
	// TotalTime is the job's main-loop wall time.
	TotalTime units.Seconds
	// TotalEnergy sums all nodes' energy.
	TotalEnergy units.Joules
	// SyncLog records each synchronization interval.
	SyncLog *trace.SyncLog
	// Cosim is the underlying driver result for space-shared episodes
	// (nil for workflow episodes); Workflow the converse.
	Cosim    *cosim.Result
	Workflow *workflow.Result
}

// envProxy is the core.Policy the drivers run: its Allocate publishes
// the measurements as an observation and blocks until the environment's
// Step supplies the caps.
type envProxy struct{ e *Env }

// Name implements core.Policy.
func (*envProxy) Name() string { return "rollout-env" }

// Allocate implements core.Policy.
func (p *envProxy) Allocate(step int, nodes []core.NodeMeasure) []units.Watts {
	return p.e.publish(step, nodes)
}

// Env is a rollout environment. The zero value is not usable; call
// NewEnv. An Env runs one episode at a time: Reset starts (or restarts)
// an episode, Step advances it, Result reads the finished episode's
// outcome. Env is not safe for concurrent use; run one Env per worker.
//
// An Env owns one driver goroutine that parks between episodes, plus
// the pooled per-worker episode state (observation buffers and, for
// space-shared specs, the reusable cosim.Episode). Resetting the same
// spec — or one differing only in budget — replays the pooled episode
// instead of rebuilding the node population, which is where batched
// rollout throughput comes from. Close releases the goroutine; a
// closed Env may be Reset again.
type Env struct {
	// mu/cond guard every field the driver goroutine shares with the
	// caller; the rendezvous needs no channels and no per-step
	// allocations.
	mu   sync.Mutex
	cond sync.Cond

	// driver goroutine lifecycle.
	started bool
	closing bool
	exited  chan struct{}

	// Reset → driver episode handoff.
	pendingRun func(context.Context) (*Result, error)
	pendingCtx context.Context

	// episode rendezvous state.
	epoch     uint64 // current episode; stale context watchers check it
	obsReady  bool
	capsReady bool
	caps      []units.Watts
	obs       Observation
	epDone    bool
	abandoned bool
	res       *Result
	err       error

	// caller-side episode bookkeeping (caller goroutine only).
	hasEp  bool
	fin    bool
	cancel context.CancelFunc
	stop   func() bool

	// double-buffered observation measures, owned by the driver
	// goroutine during an episode: the buffer published at step k stays
	// intact while step k+1 fills the other one, so the caller may read
	// its observation until the next Step call.
	measBuf [2][]core.NodeMeasure
	bufIdx  int

	// pooled space-shared episode state.
	proxy *envProxy
	cache *StateCache
	epKey string
	ep    *cosim.Episode

	// pooled lane state for RolloutLanes, keyed like the episode pool.
	lanesKey string
	lanes    *cosim.Lanes
}

// NewEnv returns an idle environment with a private state cache.
func NewEnv() *Env { return NewEnvWith(nil) }

// NewEnvWith returns an idle environment sharing the given JobState
// cache; nil gets a private one. Batch workers share one cache so the
// per-job precompute is paid once per grid, not once per worker.
func NewEnvWith(cache *StateCache) *Env {
	if cache == nil {
		cache = NewStateCache()
	}
	e := &Env{cache: cache}
	e.cond.L = &e.mu
	e.proxy = &envProxy{e}
	return e
}

// publish hands one decision point to the caller and blocks the driver
// until Step supplies the caps (nil once the episode is abandoned).
// Runs on the driver goroutine only.
func (e *Env) publish(step int, nodes []core.NodeMeasure) []units.Watts {
	// Copy into the inactive buffer and aggregate outside the lock: the
	// driver owns both buffers during an episode, and the mutex handoff
	// below publishes the writes to the caller.
	buf := e.measBuf[e.bufIdx]
	if cap(buf) < len(nodes) {
		buf = make([]core.NodeMeasure, len(nodes))
	}
	buf = buf[:len(nodes)]
	copy(buf, nodes)
	e.measBuf[e.bufIdx] = buf
	e.bufIdx ^= 1
	o := Observation{Step: step, Measures: buf}
	o.aggregate()

	e.mu.Lock()
	defer e.mu.Unlock()
	if e.abandoned {
		return nil
	}
	e.obs = o
	e.obsReady = true
	e.cond.Broadcast()
	for !e.capsReady && !e.abandoned {
		e.cond.Wait()
	}
	if e.abandoned {
		return nil
	}
	e.capsReady = false
	caps := e.caps
	e.caps = nil
	return caps
}

// driverLoop is the Env's single driver goroutine: it parks between
// episodes and runs each posted episode to completion.
func (e *Env) driverLoop() {
	e.mu.Lock()
	for {
		for e.pendingRun == nil && !e.closing {
			e.cond.Wait()
		}
		if e.closing {
			close(e.exited)
			e.mu.Unlock()
			return
		}
		run, ctx := e.pendingRun, e.pendingCtx
		e.pendingRun, e.pendingCtx = nil, nil
		e.mu.Unlock()

		res, err := run(ctx)

		e.mu.Lock()
		e.res, e.err = res, err
		e.epDone = true
		e.cond.Broadcast()
	}
}

// abandon unwinds the current episode, if any: it cancels the episode
// context, wakes a driver parked at a decision point and waits for the
// run to return. After abandon the driver goroutine is parked again
// (or was never started) and no episode is active.
func (e *Env) abandon() {
	if !e.hasEp {
		return
	}
	e.cancel()
	e.stop()
	e.mu.Lock()
	if !e.epDone {
		e.abandoned = true
		e.cond.Broadcast()
		for !e.epDone {
			e.cond.Wait()
		}
	}
	e.mu.Unlock()
	e.cancel, e.stop = nil, nil
	e.hasEp, e.fin = false, false
}

// Reset starts a new episode from spec and returns the first
// observation — the measurements of the first synchronization interval,
// exactly as the in-loop policy would first see them. A previous
// unfinished episode is abandoned (its driver unwinds via context
// cancellation). Reset is ResetContext with a background context.
func (e *Env) Reset(spec Spec) (Observation, error) {
	return e.ResetContext(context.Background(), spec)
}

// ResetContext is Reset under a caller-supplied context: cancelling ctx
// abandons the episode — a blocked Step returns done promptly and
// Result reports the context's error.
func (e *Env) ResetContext(ctx context.Context, spec Spec) (Observation, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.abandon()

	runp, err := e.compile(spec)
	if err != nil {
		return Observation{}, err
	}
	// The driver plays the proxy policy: every allocation round trips
	// through the step rendezvous.
	run := func(ctx context.Context) (*Result, error) { return runp(ctx, e.proxy) }
	epCtx, cancel := context.WithCancel(ctx)

	e.mu.Lock()
	e.epoch++
	epoch := e.epoch
	e.obsReady, e.capsReady, e.epDone, e.abandoned = false, false, false, false
	e.res, e.err, e.caps = nil, nil, nil
	if !e.started {
		e.started = true
		e.exited = make(chan struct{})
		go e.driverLoop()
	}
	e.pendingRun, e.pendingCtx = run, epCtx
	e.cond.Broadcast()
	e.mu.Unlock()

	// The context watcher replaces the old per-step select on
	// ctx.Done(): one AfterFunc per episode instead of two channel
	// waits per step. The epoch guard keeps a late firing from
	// touching a successor episode.
	stop := context.AfterFunc(epCtx, func() {
		e.mu.Lock()
		if e.epoch == epoch {
			e.abandoned = true
			e.cond.Broadcast()
		}
		e.mu.Unlock()
	})
	e.cancel, e.stop = cancel, stop
	e.hasEp, e.fin = true, false

	e.mu.Lock()
	for !e.obsReady && !e.epDone {
		e.cond.Wait()
	}
	if e.epDone {
		// The episode ended before the first allocation (error, or a
		// workload with no capped syncs).
		err := e.err
		e.mu.Unlock()
		e.fin = true
		if err != nil {
			return Observation{}, err
		}
		return Observation{}, fmt.Errorf("rollout: episode finished before the first observation")
	}
	o := e.obs
	e.obsReady = false
	e.mu.Unlock()
	return o, nil
}

// Step applies the action — per-node caps aligned with the previous
// observation's Measures, or nil to leave caps unchanged — and runs the
// episode to the next decision point. done reports episode completion;
// after done, read the outcome with Result.
func (e *Env) Step(caps []units.Watts) (Observation, bool) {
	if !e.hasEp || e.fin {
		return Observation{}, true
	}
	e.mu.Lock()
	e.caps = caps
	e.capsReady = true
	e.cond.Broadcast()
	for !e.obsReady && !e.epDone {
		e.cond.Wait()
	}
	if e.epDone {
		e.mu.Unlock()
		e.fin = true
		return Observation{}, true
	}
	o := e.obs
	e.obsReady = false
	e.mu.Unlock()
	return o, false
}

// Result returns the finished episode's outcome. Calling it before Step
// reported done is an error. The Result owns all its storage; it stays
// valid across later Resets of the same Env.
func (e *Env) Result() (*Result, error) {
	if !e.hasEp {
		return nil, fmt.Errorf("rollout: no episode started")
	}
	if !e.fin {
		return nil, fmt.Errorf("rollout: episode still running")
	}
	e.mu.Lock()
	res, err := e.res, e.err
	e.mu.Unlock()
	return res, err
}

// Close abandons the current episode, if any, and parks then releases
// the driver goroutine. A closed Env may be Reset again.
func (e *Env) Close() {
	e.abandon()
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return
	}
	e.closing = true
	e.cond.Broadcast()
	exited := e.exited
	e.mu.Unlock()
	<-exited
	e.mu.Lock()
	e.started, e.closing = false, false
	e.exited = nil
	e.mu.Unlock()
}

// compile turns the spec into a runner parameterized on the acting
// policy: the driver goroutine plays the step-API proxy through it,
// while Rollout plugs the caller's policy in directly.
// Space-shared specs without telemetry go through the episode pool: the
// shared cache supplies the job's immutable precompute and the Env
// keeps the last spec's Episode (node population and scratch) alive, so
// repeated Resets of one job replay it instead of rebuilding it.
func (e *Env) compile(spec Spec) (func(context.Context, core.Policy) (*Result, error), error) {
	if spec.Topology == "" || spec.Topology == "space-shared" {
		if spec.Telemetry != nil {
			// Instrumented episodes run the plain one-shot driver so
			// every run reports fresh per-population counters.
			cfg := spec.cosimConfig(nil)
			return func(ctx context.Context, pol core.Policy) (*Result, error) {
				c := cfg
				c.Policy = pol
				res, err := cosim.Run(ctx, c)
				if err != nil {
					return nil, err
				}
				return &Result{
					TotalTime:   res.TotalTime,
					TotalEnergy: res.TotalEnergy,
					SyncLog:     res.SyncLog,
					Cosim:       res,
				}, nil
			}, nil
		}
		key := spec.jobKey()
		if e.ep == nil || e.epKey != key {
			st, err := e.cache.state(key, spec.cosimConfig(nil))
			if err != nil {
				return nil, err
			}
			ep, err := st.NewEpisode()
			if err != nil {
				return nil, err
			}
			e.epKey, e.ep = key, ep
		}
		ep := e.ep
		prm := cosim.EpisodeParams{
			Constraints: spec.constraints(spec.Workload.SimNodes + spec.Workload.AnaNodes),
			CapMode:     cosim.CapLong,
		}
		return func(ctx context.Context, pol core.Policy) (*Result, error) {
			p := prm
			p.Policy = pol
			res, err := ep.Run(ctx, p)
			if err != nil {
				return nil, err
			}
			return &Result{
				TotalTime:   res.TotalTime,
				TotalEnergy: res.TotalEnergy,
				SyncLog:     res.SyncLog,
				Cosim:       res,
			}, nil
		}, nil
	}

	topo, err := workflow.Build(spec.Topology, workflow.Params{
		Nodes:    spec.Workload.SimNodes + spec.Workload.AnaNodes,
		Dim:      spec.Workload.Dim,
		J:        spec.Workload.J,
		Steps:    spec.Workload.Steps,
		Analyses: spec.Workload.Analyses,
	})
	if err != nil {
		return nil, fmt.Errorf("rollout: %w", err)
	}
	cfg := workflow.Config{
		Graph:       topo.Graph,
		Steps:       spec.Workload.Steps,
		SyncEvery:   spec.Workload.J,
		Constraints: topo.ScaleCaps(spec.constraints(topo.PhysicalNodes)),
		Seed:        spec.Seed,
		RunSeed:     spec.RunSeed,
		Noise:       spec.Noise,
		Faults:      spec.Faults,
		Classes:     spec.Classes,
		Telemetry:   spec.Telemetry,
	}
	return func(ctx context.Context, pol core.Policy) (*Result, error) {
		c := cfg
		c.Policy = pol
		res, err := workflow.Run(ctx, c)
		if err != nil {
			return nil, err
		}
		return &Result{
			TotalTime:   res.MainLoopTime,
			TotalEnergy: res.TotalEnergy,
			SyncLog:     res.SyncLog,
			Workflow:    res,
		}, nil
	}, nil
}

// Rollout drives one full episode of spec on e with pol supplying every
// action. The policy is in-process, so there is nothing to rendezvous
// with: the episode runs on the caller's goroutine with pol invoked at
// each synchronization directly — byte-identical to self-play over the
// step API (the proxy feeds the policy the same measures), minus the
// driver wakeups and observation copies per step. Reusing one Env
// across Rollout calls keeps the pooled episode state warm; it is how
// Batch workers run their cells and the subject of BenchmarkRollouts.
func (e *Env) Rollout(ctx context.Context, spec Spec, pol core.Policy) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.abandon()
	run, err := e.compile(spec)
	if err != nil {
		return nil, err
	}
	return run(ctx, pol)
}

// RolloutLanes drives len(specs) episodes of one job in lockstep
// through a pooled cosim.Lanes, pols[i] supplying specs[i]'s actions.
// All specs must be space-shared, uninstrumented, and share one job key
// — i.e. differ only in budget/constraints — which is exactly the shape
// of a grid sweep's key group; Batch carves its points into such lanes.
// Results are in specs order and byte-identical to Rollout of each
// spec alone (the lane goldens pin this); the lockstep only changes
// which episode's window executes next, so the job's phase tables and
// memoized noise traces are read once per window instead of once per
// episode.
func (e *Env) RolloutLanes(ctx context.Context, specs []Spec, pols []core.Policy) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(specs) == 0 {
		return nil, nil
	}
	if len(specs) != len(pols) {
		return nil, fmt.Errorf("rollout: %d specs, %d policies", len(specs), len(pols))
	}
	key := specs[0].jobKey()
	for i, s := range specs {
		if s.Topology != "" && s.Topology != "space-shared" {
			return nil, fmt.Errorf("rollout: lane %d topology %q (lanes are space-shared only)", i, s.Topology)
		}
		if s.Telemetry != nil {
			return nil, fmt.Errorf("rollout: lane %d is instrumented (lanes bypass telemetry)", i)
		}
		if i > 0 && s.jobKey() != key {
			return nil, fmt.Errorf("rollout: lane %d job differs from lane 0 (lanes share one job)", i)
		}
	}
	e.abandon()
	if e.lanes == nil || e.lanesKey != key || e.lanes.Width() < len(specs) {
		st, err := e.cache.state(key, specs[0].cosimConfig(nil))
		if err != nil {
			return nil, err
		}
		lanes, err := st.NewLanes(len(specs))
		if err != nil {
			return nil, err
		}
		e.lanesKey, e.lanes = key, lanes
	}
	prms := make([]cosim.EpisodeParams, len(specs))
	for i, s := range specs {
		prms[i] = cosim.EpisodeParams{
			Policy:      pols[i],
			Constraints: s.constraints(s.Workload.SimNodes + s.Workload.AnaNodes),
			CapMode:     cosim.CapLong,
		}
	}
	rs, err := e.lanes.Run(ctx, prms)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, len(rs))
	for i, r := range rs {
		out[i] = &Result{
			TotalTime:   r.TotalTime,
			TotalEnergy: r.TotalEnergy,
			SyncLog:     r.SyncLog,
			Cosim:       r,
		}
	}
	return out, nil
}

// Run drives one full episode of spec with pol supplying every action,
// on a throwaway Env. It is the one-shot rollout primitive; batched
// callers hold an Env (or use Batch) to amortize episode state.
func Run(ctx context.Context, spec Spec, pol core.Policy) (*Result, error) {
	env := NewEnv()
	defer env.Close()
	return env.Rollout(ctx, spec, pol)
}

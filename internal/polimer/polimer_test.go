package polimer

import (
	"sync"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/machine"
	"seesaw/internal/mpi"
	"seesaw/internal/units"
)

func cons() core.Constraints {
	return core.Constraints{Budget: 110 * 4, MinCap: 98, MaxCap: 215}
}

// runJob drives nRanks ranks through `syncs` synchronizations; each rank
// does `work(rank)` seconds of a compute phase per interval on its node.
func runJob(t *testing.T, nRanks, syncs int, policy core.Policy, work func(rank int) units.Seconds) []*Manager {
	t.Helper()
	mgrs := make([]*Manager, nRanks)
	var mu sync.Mutex
	err := mpi.Run(nRanks, mpi.DefaultCost(), func(r *mpi.Rank) {
		role := core.RoleSimulation
		if r.WorldRank() >= nRanks/2 {
			role = core.RoleAnalysis
		}
		node := machine.DefaultNode(r.WorldRank(), machine.NoiseModel{}, 1)
		mgr, err := Init(r, role, node, Options{
			Policy:      policy,
			Constraints: cons(),
			InitialCap:  110,
		})
		if err != nil {
			panic(err)
		}
		for s := 0; s < syncs; s++ {
			exec := node.Run(machine.Phase{
				Name: "work", Nominal: work(r.WorldRank()),
				Demand: 130, Saturation: 140, Sensitivity: 0.9,
			}, machine.NoiseModel{})
			r.Elapse(exec.Duration)
			mgr.PowerAlloc()
		}
		mu.Lock()
		mgrs[r.WorldRank()] = mgr
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	return mgrs
}

func TestInitValidation(t *testing.T) {
	err := mpi.Run(2, mpi.DefaultCost(), func(r *mpi.Rank) {
		node := machine.DefaultNode(r.WorldRank(), machine.NoiseModel{}, 1)
		if r.WorldRank() == 0 {
			// Root without a policy must fail.
			if _, err := Init(r, core.RoleSimulation, node, Options{Constraints: cons()}); err == nil {
				panic("root without policy accepted")
			}
			// Nil node must fail.
			if _, err := Init(r, core.RoleSimulation, nil, Options{Policy: core.NewStatic()}); err == nil {
				panic("nil node accepted")
			}
			// Bad root must fail.
			if _, err := Init(r, core.RoleSimulation, node, Options{Policy: core.NewStatic(), Root: 5}); err == nil {
				panic("out-of-range root accepted")
			}
		}
		// Both ranks must still synchronize once so neither hangs.
		r.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInitialCapInstalled(t *testing.T) {
	mgrs := runJob(t, 2, 1, core.NewStatic(), func(int) units.Seconds { return 0.1 })
	for i, m := range mgrs {
		if got := m.node.RAPL().LongCap(); got != 110 {
			t.Errorf("rank %d cap = %v, want 110", i, got)
		}
	}
}

func TestSyncLogOnRootOnly(t *testing.T) {
	mgrs := runJob(t, 4, 3, core.NewStatic(), func(int) units.Seconds { return 0.1 })
	if mgrs[0].SyncLog() == nil || mgrs[0].SyncLog().Len() != 3 {
		t.Error("root should log 3 synchronizations")
	}
	for i := 1; i < 4; i++ {
		if mgrs[i].SyncLog() != nil {
			t.Errorf("rank %d unexpectedly has a log", i)
		}
	}
}

func TestMeasurementsReflectWork(t *testing.T) {
	// Sim ranks do 1 s, analysis ranks 0.5 s per interval: the recorded
	// busy times must show that.
	mgrs := runJob(t, 4, 4, core.NewStatic(), func(rank int) units.Seconds {
		if rank < 2 {
			return 1.0
		}
		return 0.5
	})
	rec := mgrs[0].SyncLog().Records[2]
	if rec.SimTime <= rec.AnaTime {
		t.Errorf("sim busy %v should exceed ana busy %v", rec.SimTime, rec.AnaTime)
	}
	// The analysis partition idles at the sync: measured power must dip
	// below the cap while the simulation runs at it.
	if rec.AnaPower >= rec.SimPower {
		t.Errorf("idle-diluted analysis power %v should be below sim %v", rec.AnaPower, rec.SimPower)
	}
}

func TestSeeSAwChangesCaps(t *testing.T) {
	ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons(), Window: 1})
	mgrs := runJob(t, 4, 10, ss, func(rank int) units.Seconds {
		if rank < 2 {
			return 1.0
		}
		return 0.5
	})
	simCap := mgrs[0].node.RAPL().LongCap()
	anaCap := mgrs[2].node.RAPL().LongCap()
	if simCap == 110 && anaCap == 110 {
		t.Error("SeeSAw left caps at the initial split after 10 imbalanced syncs")
	}
	if simCap < 98 || simCap > 215 || anaCap < 98 || anaCap > 215 {
		t.Errorf("caps out of range: %v/%v", simCap, anaCap)
	}
}

func TestOverheadAccounted(t *testing.T) {
	mgrs := runJob(t, 4, 5, core.NewStatic(), func(int) units.Seconds { return 0.1 })
	if mgrs[0].OverheadTotal() <= 0 {
		t.Error("allocator overhead not accounted")
	}
}

func TestShortTermCapMode(t *testing.T) {
	var gotShort units.Watts
	err := mpi.Run(2, mpi.DefaultCost(), func(r *mpi.Rank) {
		node := machine.DefaultNode(r.WorldRank(), machine.NoiseModel{}, 1)
		_, err := Init(r, core.RoleSimulation, node, Options{
			Policy: core.NewStatic(), Constraints: cons(), InitialCap: 110, ShortTermCap: true,
		})
		if err != nil {
			panic(err)
		}
		node.Idle(0.02)
		if r.WorldRank() == 0 {
			gotShort = node.RAPL().ShortCap()
		}
		r.World().Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if gotShort != 110 {
		t.Errorf("short cap = %v, want 110", gotShort)
	}
}

func TestRoleAccessor(t *testing.T) {
	mgrs := runJob(t, 2, 1, core.NewStatic(), func(int) units.Seconds { return 0.1 })
	if mgrs[0].Role() != core.RoleSimulation || mgrs[1].Role() != core.RoleAnalysis {
		t.Error("roles wrong")
	}
}

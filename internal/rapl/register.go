// Energy-register emulation: the real MSR_PKG_ENERGY_STATUS register is
// a 32-bit counter in units of 2^-ESU Joules that wraps every few
// minutes at high power — a detail every RAPL-reading tool (including
// PoLiMER) must handle. The simulated domain exposes the same wrapped
// view, and EnergyUnwrapper reconstructs the monotonic count the way
// msr-safe consumers do.
package rapl

import (
	"math"

	"seesaw/internal/units"
)

// EnergyUnit is the energy status unit: the real KNL reports energy in
// multiples of 1/2^14 J ~ 61 uJ.
const EnergyUnit = 1.0 / (1 << 14) // Joules per register count

// registerMask is the 32-bit wrap boundary of the energy MSR.
const registerMask = (1 << 32) - 1

// EnergyRegister returns the domain's cumulative energy as the hardware
// register would report it: a 32-bit count of EnergyUnit increments,
// wrapping on overflow. At 110 W the register wraps roughly every
// (2^32 * 61 uJ) / 110 W ~ 40 minutes.
func (d *Domain) EnergyRegister() uint32 {
	counts := uint64(math.Floor(float64(d.energy) / EnergyUnit))
	return uint32(counts & registerMask)
}

// EnergyUnwrapper reconstructs a monotonically increasing energy value
// from successive wrapped register reads. Reads must come often enough
// that at most one wrap occurs between them (minutes apart at Theta
// power levels; PoLiMER samples far faster).
type EnergyUnwrapper struct {
	last  uint32
	total uint64
	init  bool
}

// Update folds a register read into the running total and returns the
// cumulative energy in Joules.
func (u *EnergyUnwrapper) Update(reg uint32) units.Joules {
	if !u.init {
		u.last = reg
		u.init = true
		return units.Joules(float64(u.total) * EnergyUnit)
	}
	delta := uint64(reg-u.last) & registerMask // wraps handled by uint32 arithmetic
	u.total += delta
	u.last = reg
	return units.Joules(float64(u.total) * EnergyUnit)
}

// Total returns the cumulative unwrapped energy in Joules.
func (u *EnergyUnwrapper) Total() units.Joules {
	return units.Joules(float64(u.total) * EnergyUnit)
}

// Exploring SeeSAw: the paper's second future-work item ("Methods to
// overcome local optima could be explored for more performance gains
// with low-demand analyses", Section VIII).
package core

import (
	"fmt"

	"seesaw/internal/rng"
	"seesaw/internal/units"
)

// ExploringConfig parameterizes the local-optima escape on top of a
// standard SeeSAw configuration.
type ExploringConfig struct {
	// Constraints and Window configure the inner SeeSAw.
	Constraints Constraints
	Window      int
	// Period is how many allocations pass between exploration probes.
	Period int
	// Probe is the power perturbation applied to the simulation
	// partition (the analysis receives the complement) during a probe.
	Probe units.Watts
	// Seed drives the probe-direction draws deterministically.
	Seed uint64
}

// DefaultExploringConfig returns a gentle exploration schedule.
func DefaultExploringConfig(c Constraints) ExploringConfig {
	return ExploringConfig{Constraints: c, Window: 1, Period: 25, Probe: 4, Seed: 1}
}

// ExploringSeeSAw wraps SeeSAw with periodic exploration probes: every
// Period allocations it perturbs the converged split by +-Probe Watts
// per node for one interval and keeps the perturbed split if the
// following interval was faster. SeeSAw's energy-share fixed point can
// sit below the best achievable allocation when the losing partition's
// power draw saturates (the local optimum the paper observes on RDF and
// VACF); a direct experiment on the real objective — interval time —
// escapes it.
type ExploringSeeSAw struct {
	cfg    ExploringConfig
	seesaw *SeeSAw
	r      *rng.Stream

	allocs int

	// probe state machine.
	probing    bool
	probeDelta units.Watts // per-node delta applied to the sim partition
	preTime    units.Seconds
	preCaps    []units.Watts
	lockedCaps []units.Watts // non-nil while a won probe's caps are held
	holdLeft   int
}

// NewExploringSeeSAw builds the exploring variant.
func NewExploringSeeSAw(cfg ExploringConfig) (*ExploringSeeSAw, error) {
	if cfg.Period < 2 {
		return nil, fmt.Errorf("core: exploration period must be >= 2, got %d", cfg.Period)
	}
	if cfg.Probe <= 0 {
		return nil, fmt.Errorf("core: probe magnitude must be positive, got %v", cfg.Probe)
	}
	ss, err := NewSeeSAw(SeeSAwConfig{Constraints: cfg.Constraints, Window: cfg.Window})
	if err != nil {
		return nil, err
	}
	return &ExploringSeeSAw{cfg: cfg, seesaw: ss, r: rng.New(cfg.Seed)}, nil
}

// MustNewExploringSeeSAw panics on configuration errors.
func MustNewExploringSeeSAw(cfg ExploringConfig) *ExploringSeeSAw {
	e, err := NewExploringSeeSAw(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Name implements Policy.
func (*ExploringSeeSAw) Name() string { return "seesaw-explore" }

// Allocate implements Policy.
func (e *ExploringSeeSAw) Allocate(step int, nodes []NodeMeasure) []units.Watts {
	interval := wallOf(nodes)

	if e.probing {
		// The probe interval just completed: keep the perturbed caps if
		// it was faster, otherwise restore the pre-probe allocation.
		e.probing = false
		if interval > 0 && e.preTime > 0 && interval < e.preTime {
			e.lockedCaps = e.lastAppliedCaps(nodes)
			e.holdLeft = e.cfg.Period / 2
			return nil // keep the probe caps in force
		}
		restored := e.preCaps
		e.preCaps = nil
		return restored
	}

	if e.holdLeft > 0 {
		// Holding a won probe: keep the inner SeeSAw's windows fed but
		// pin the caps.
		e.holdLeft--
		e.seesaw.Allocate(step, nodes)
		return nil
	}

	caps := e.seesaw.Allocate(step, nodes)
	if caps != nil {
		e.allocs++
	}
	if e.allocs > 0 && e.allocs%e.cfg.Period == 0 && caps != nil {
		// Launch a probe: perturb the fresh allocation by +-Probe.
		delta := e.cfg.Probe
		if e.r.Float64() < 0.5 {
			delta = -delta
		}
		e.probing = true
		e.probeDelta = delta
		e.preTime = interval
		e.preCaps = append([]units.Watts(nil), caps...)
		probe := make([]units.Watts, len(caps))
		for i, n := range nodes {
			d := delta
			if n.Role == RoleAnalysis {
				d = -delta
			}
			probe[i] = units.ClampWatts(caps[i]+d, e.cfg.Constraints.MinCap, e.cfg.Constraints.MaxCap)
		}
		return probe
	}
	return caps
}

// lastAppliedCaps reconstructs the caps currently in force from the
// measurements (each node reports its cap).
func (e *ExploringSeeSAw) lastAppliedCaps(nodes []NodeMeasure) []units.Watts {
	caps := make([]units.Watts, len(nodes))
	for i, n := range nodes {
		caps[i] = n.Cap
	}
	return caps
}

// wallOf returns the slowest node interval — the objective the probes
// compare.
func wallOf(nodes []NodeMeasure) units.Seconds {
	var w units.Seconds
	for _, n := range nodes {
		if n.Time > w {
			w = n.Time
		}
	}
	return w
}

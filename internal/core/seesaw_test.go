package core

import (
	"math"
	"testing"
	"testing/quick"

	"seesaw/internal/units"
)

func newSeeSAw(t *testing.T, w int) *SeeSAw {
	t.Helper()
	s, err := NewSeeSAw(SeeSAwConfig{Constraints: testConstraints(), Window: w})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSeeSAwConfigValidation(t *testing.T) {
	if _, err := NewSeeSAw(SeeSAwConfig{Constraints: testConstraints(), Window: 0}); err == nil {
		t.Error("window 0 should be rejected")
	}
	if _, err := NewSeeSAw(SeeSAwConfig{Constraints: Constraints{}, Window: 1}); err == nil {
		t.Error("empty constraints should be rejected")
	}
}

func TestMustNewSeeSAwPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewSeeSAw should panic on bad config")
		}
	}()
	MustNewSeeSAw(SeeSAwConfig{})
}

func TestSeeSAwName(t *testing.T) {
	if newSeeSAw(t, 1).Name() != "seesaw" {
		t.Error("wrong name")
	}
}

func TestSeeSAwBudgetConservation(t *testing.T) {
	s := newSeeSAw(t, 1)
	caps := s.Allocate(1, measures(4, 4, 105, 110, 110))
	if caps == nil {
		t.Fatal("expected an allocation at w=1")
	}
	var total units.Watts
	for _, c := range caps {
		if c < 98 || c > 215 {
			t.Errorf("cap %v outside hardware range", c)
		}
		total += c
	}
	if float64(total) > float64(testConstraints().Budget)+1e-6 {
		t.Errorf("allocated %v exceeds budget %v", total, testConstraints().Budget)
	}
}

func TestSeeSAwBudgetConservationProperty(t *testing.T) {
	f := func(rawSimP, rawAnaP, rawSimT, rawAnaT float64) bool {
		s := MustNewSeeSAw(SeeSAwConfig{Constraints: testConstraints(), Window: 1})
		simP := units.Watts(98 + math.Abs(math.Mod(rawSimP, 100)))
		anaP := units.Watts(98 + math.Abs(math.Mod(rawAnaP, 100)))
		simT := units.Seconds(0.1 + math.Abs(math.Mod(rawSimT, 100)))
		anaT := units.Seconds(0.1 + math.Abs(math.Mod(rawAnaT, 100)))
		caps := s.Allocate(1, measures(simT, anaT, simP, anaP, 110))
		if caps == nil {
			return true
		}
		var total units.Watts
		for _, c := range caps {
			if c < 98 || c > 215 {
				return false
			}
			total += c
		}
		return float64(total) <= float64(testConstraints().Budget)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSeeSAwFavorsHigherEnergyTask(t *testing.T) {
	s := newSeeSAw(t, 1)
	// Equal times; the analysis draws more power -> higher energy ->
	// more power assigned (the paper's counter-intuitive MSD case).
	caps := s.Allocate(1, measures(4, 4, 104, 112, 110))
	if caps == nil {
		t.Fatal("expected allocation")
	}
	if !(caps[4] > caps[0]) {
		t.Errorf("analysis (E higher) got %v, sim %v; want analysis more", caps[4], caps[0])
	}
}

func TestSeeSAwWindow(t *testing.T) {
	s := newSeeSAw(t, 3)
	if got := s.Allocate(1, measures(4, 4, 105, 110, 110)); got != nil {
		t.Error("w=3: no allocation expected at step 1")
	}
	if got := s.Allocate(2, measures(4, 4, 105, 110, 110)); got != nil {
		t.Error("w=3: no allocation expected at step 2")
	}
	if got := s.Allocate(3, measures(4, 4, 105, 110, 110)); got == nil {
		t.Error("w=3: allocation expected at step 3")
	}
	if s.Allocations() != 1 {
		t.Errorf("Allocations = %d, want 1", s.Allocations())
	}
}

func TestSeeSAwIgnoresDegenerateMeasures(t *testing.T) {
	s := newSeeSAw(t, 1)
	if got := s.Allocate(1, measures(0, 4, 105, 110, 110)); got != nil {
		t.Error("zero time measure should be skipped")
	}
	if got := s.Allocate(2, measures(4, 4, 0, 110, 110)); got != nil {
		t.Error("zero power measure should be skipped")
	}
}

func TestSeeSAwNeedsBothPartitions(t *testing.T) {
	s := newSeeSAw(t, 1)
	only := []NodeMeasure{{Role: RoleSimulation, Time: 4, Power: 100, Cap: 110}}
	if got := s.Allocate(1, only); got != nil {
		t.Error("single-partition job should not be reallocated")
	}
}

func TestSeeSAwEWMADamping(t *testing.T) {
	// A one-step outlier must not swing the allocation to the raw
	// optimum: the EWMA blends with the previous allocation.
	s := newSeeSAw(t, 1)
	var prev units.Watts = 110
	s.Allocate(1, measures(4, 4, 108, 108, 110))
	// Outlier: analysis suddenly reports high energy.
	caps := s.Allocate(2, measures(4, 12, 108, 112, 110))
	if caps == nil {
		t.Fatal("expected allocation")
	}
	// The raw optimal analysis share would be E_A/(E_S+E_A) ~ 0.757 ->
	// ana ~166 W/node; damping must keep it well below.
	if caps[4] >= 150 {
		t.Errorf("allocation %v not damped (prev %v)", caps[4], prev)
	}
}

func TestOptimalSplit(t *testing.T) {
	// The paper's Fig 2 numbers: blue 90 W x 100 s, red 120 W x 60 s,
	// C = 210 W -> 116.7 / 93.3.
	b, r := OptimalSplit(210, 100, 90, 60, 120)
	if math.Abs(float64(b)-116.666) > 0.01 || math.Abs(float64(r)-93.333) > 0.01 {
		t.Errorf("OptimalSplit = %v/%v, want 116.7/93.3", b, r)
	}
}

func TestOptimalSplitSum(t *testing.T) {
	f := func(tS, pS, tA, pA float64) bool {
		ts := units.Seconds(0.1 + math.Abs(math.Mod(tS, 100)))
		ta := units.Seconds(0.1 + math.Abs(math.Mod(tA, 100)))
		ps := units.Watts(50 + math.Abs(math.Mod(pS, 200)))
		pa := units.Watts(50 + math.Abs(math.Mod(pA, 200)))
		a, b := OptimalSplit(500, ts, ps, ta, pa)
		return units.NearlyEqual(float64(a+b), 500, 1e-9) && a >= 0 && b >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOptimalSplitDegenerate(t *testing.T) {
	a, b := OptimalSplit(200, 0, 0, 0, 0)
	if a != 100 || b != 100 {
		t.Errorf("degenerate split = %v/%v, want even halves", a, b)
	}
}

func TestPredictEqualTime(t *testing.T) {
	// t* = (E_S + E_A)/C; with the Fig 2 numbers: (9000+7200)/210 = 77.14.
	got := PredictEqualTime(210, 100, 90, 60, 120)
	if math.Abs(float64(got)-77.142857) > 1e-6 {
		t.Errorf("PredictEqualTime = %v, want 77.14", got)
	}
	if PredictEqualTime(0, 1, 1, 1, 1) != 0 {
		t.Error("zero budget should predict 0")
	}
}

func TestPredictEqualTimeConsistentWithSplit(t *testing.T) {
	// Under the linear model t = E/P, both tasks at the optimal split
	// should take exactly t*.
	f := func(tS, pS, tA, pA float64) bool {
		ts := 0.1 + math.Abs(math.Mod(tS, 100))
		ta := 0.1 + math.Abs(math.Mod(tA, 100))
		ps := 50 + math.Abs(math.Mod(pS, 200))
		pa := 50 + math.Abs(math.Mod(pA, 200))
		optS, optA := OptimalSplit(500, units.Seconds(ts), units.Watts(ps), units.Seconds(ta), units.Watts(pa))
		tstar := float64(PredictEqualTime(500, units.Seconds(ts), units.Watts(ps), units.Seconds(ta), units.Watts(pa)))
		predS := ts * ps / float64(optS) // t = E/P
		predA := ta * pa / float64(optA)
		return math.Abs(predS-tstar) < 1e-6*tstar && math.Abs(predA-tstar) < 1e-6*tstar
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// The engine: execute a compiled workflow graph rank-parallel on the
// virtual-time MPI runtime. This is the generic scaffolding extracted
// from the insitu driver's Run — cluster construction, per-rank PoLiMER
// setup, partition communicators, fault application, and the
// byte-identity-sensitive result aggregation — with the per-rank body
// either a stage's custom Body (insitu's real-MD loops) or the generic
// declarative program driven by the stage's WorkModel and edges.
package workflow

import (
	"context"
	"fmt"
	"sync"

	"seesaw/internal/cluster"
	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/mpi"
	"seesaw/internal/polimer"
	"seesaw/internal/rapl"
	"seesaw/internal/telemetry"
	"seesaw/internal/trace"
	"seesaw/internal/units"
)

// Config describes one workflow job.
type Config struct {
	// Graph is the declarative workflow; Run compiles it.
	Graph Graph
	// Steps is the total number of Verlet steps the producer stages
	// advance.
	Steps int
	// SyncEvery synchronizes every j-th step (1 if zero); ignored when
	// SyncSteps is set.
	SyncEvery int
	// SyncSteps optionally gives the exact global synchronization
	// schedule (ascending 1-based steps), for mixed-interval workloads.
	SyncSteps []int
	// Policy is the power-allocation policy evaluated on the root rank
	// (static if nil).
	Policy core.Policy
	// Constraints carry the global budget and per-node cap range. For a
	// uniformly time-shared graph the range must describe the half-node
	// domains (see Topology.ScaleCaps).
	Constraints core.Constraints
	// InitialCaps optionally sets per-node initial caps by stage name;
	// stages without an entry start at the even split of the budget.
	InitialCaps map[string]units.Watts
	// ShortTermCap additionally installs short-term RAPL caps.
	ShortTermCap bool
	// Seed drives all stochastic behaviour deterministically; RunSeed
	// separates per-run jitter (falls back to Seed when zero).
	Seed, RunSeed uint64
	// Faults is an optional deterministic fault plan keyed to the
	// synchronization schedule. A kill takes the whole job down through
	// the runtime's poisoning path — consumers blocked on a dead
	// producer's transfer unwind too — and Run returns a
	// *fault.KilledError.
	Faults *fault.Plan
	// Noise configures node variability; zero values give a
	// deterministic run.
	Noise machine.NoiseModel
	// Machine is the full-node performance model (DefaultModel if
	// zero); time-shared stages run on halved copies. With Classes set
	// it describes the default class.
	Machine machine.Model
	// Rapl is the full-node RAPL configuration (Theta if zero); with
	// Classes set it describes the default class.
	Rapl rapl.Config
	// Classes assigns device classes to world ranks (machine.ClassMap
	// grammar); nil keeps the cluster homogeneous. On time-shared
	// placements a rank's class composes with its half-node scale.
	Classes *machine.ClassMap
	// ClassRegistry optionally overrides the built-in class presets.
	ClassRegistry map[string]machine.Class
	// Cost is the communication cost model (DefaultCost if zero).
	Cost mpi.CostModel
	// PowerSample, when positive, records per-node power traces sampled
	// at this period via the PoLiMER monitoring API.
	PowerSample units.Seconds
	// Telemetry, when non-nil, receives metrics and structured events
	// from every rank, including the workflow-level StageStart/StageEnd
	// and TransferVolume events. Nil disables instrumentation at no
	// cost.
	Telemetry *telemetry.Hub
}

// normalize fills defaults; plan must already be compiled.
func (c *Config) normalize(plan *Plan) error {
	if c.Steps <= 0 {
		return fmt.Errorf("workflow: steps must be positive, got %d", c.Steps)
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 1
	}
	if len(c.SyncSteps) == 0 {
		for s := c.SyncEvery; s <= c.Steps; s += c.SyncEvery {
			c.SyncSteps = append(c.SyncSteps, s)
		}
	}
	if c.Policy == nil {
		c.Policy = core.NewStatic()
	}
	// Machine/Rapl zero-value defaults are owned by cluster.Config.Defaults,
	// the one normalization step shared by every driver.
	if c.Cost == (mpi.CostModel{}) {
		c.Cost = mpi.DefaultCost()
	}
	return c.Constraints.Validate(plan.NWorld)
}

// initialCap resolves one stage's initial per-node cap.
func (c *Config) initialCap(stage string, even units.Watts) units.Watts {
	if w, ok := c.InitialCaps[stage]; ok && w > 0 {
		return w
	}
	return even
}

// Result summarizes one workflow run.
type Result struct {
	// MainLoopTime is the virtual runtime (max over all ranks).
	MainLoopTime units.Seconds
	// Syncs counts global synchronizations.
	Syncs int
	// SyncLog holds the per-synchronization records from the root.
	SyncLog *trace.SyncLog
	// TotalEnergy is the summed energy of all nodes, in world-rank
	// order (part of the determinism contract).
	TotalEnergy units.Joules
	// OverheadTotal is the root's cumulative allocator overhead.
	OverheadTotal units.Seconds
	// PowerTrace holds per-node sampled power when Config.PowerSample
	// was set.
	PowerTrace *trace.Recorder
	// StageBusy is each stage's maximum per-rank busy time (generic
	// program stages only; custom bodies do their own accounting).
	StageBusy map[string]units.Seconds
	// TransferBytes is the total modeled volume shipped over graph
	// edges; TransferSeconds is the total producer time spent in
	// staging-transfer phases (in-transit edges only).
	TransferBytes   int64
	TransferSeconds units.Seconds
}

// The staging-transfer phase character: a DMA/forwarding loop that
// draws little power and gains nothing from more.
const (
	transferDemand     = units.Watts(85)
	transferSaturation = units.Watts(96)
	transferSens       = 0.05
)

// RankCtx is the per-rank execution context handed to stage bodies.
type RankCtx struct {
	// Rank is the MPI rank handle; Part is the stage's partition
	// communicator (Split color = stage layout index).
	Rank *mpi.Rank
	Part *mpi.Comm
	// Node is the rank's machine; Mgr its PoLiMER power manager.
	Node *machine.Node
	Mgr  *polimer.Manager
	// StageRank is the rank's index within its stage.
	StageRank int

	cfg   *Config
	cl    *cluster.Cluster
	st    *compiledStage
	busy  units.Seconds
	xferS units.Seconds
	xferB int64
}

// StageName returns the owning stage's name.
func (rc *RankCtx) StageName() string { return rc.st.Name }

// Scale returns the rank's physical-node fraction (0.5 under a
// time-shared placement, else 1).
func (rc *RankCtx) Scale() float64 { return rc.st.scale }

// OutDest returns the consumer world rank of the stage's i-th outgoing
// edge for this rank (insitu's pairedAnaRank, generalized).
func (rc *RankCtx) OutDest(i int) int { return rc.st.outs[i].dst[rc.StageRank] }

// InSources returns the producer world ranks of the stage's i-th
// incoming edge for this rank, ascending.
func (rc *RankCtx) InSources(i int) []int { return rc.st.ins[i].sources[rc.StageRank] }

// ApplyFaults advances this rank's node through the fault plan at the
// given 1-based synchronization index, right before the power
// allocation. A kill aborts the whole job through the runtime's
// poisoning path.
func (rc *RankCtx) ApplyFaults(sync int) {
	if _, dead := rc.cl.Apply(rc.Rank.WorldRank(), rc.Rank.Clock(), sync); dead {
		rc.Rank.Fail(&fault.KilledError{Node: rc.Rank.WorldRank(), Sync: sync})
	}
}

// runPhases executes phases on the rank's node, scaled to its placement
// (half power, doubled nominal time on a half-node), advancing the
// virtual clock and the rank's busy accounting.
func (rc *RankCtx) runPhases(phases []machine.Phase) {
	for _, ph := range phases {
		if rc.st.scale != 1 {
			s := rc.st.scale
			ph.Nominal = units.Seconds(float64(ph.Nominal) / s)
			ph.Demand = units.Watts(float64(ph.Demand) * s)
			ph.Saturation = units.Watts(float64(ph.Saturation) * s)
		}
		if ph.Nominal <= 0 {
			continue
		}
		exec := rc.Node.Run(ph, rc.cfg.Noise)
		rc.Rank.Elapse(exec.Duration)
		rc.busy += exec.Duration
	}
}

// StageTransfer accounts the stage's i-th outgoing edge at the given
// 1-based synchronization and, when the edge carries a transfer model,
// executes the staging-transfer phase on the producer's clock. Custom
// bodies call it immediately before sending on the edge (the generic
// program already does); for directly-coupled edges it only records the
// shipped volume. The stage's lead rank emits a TransferVolume event
// covering the whole stage's volume.
func (rc *RankCtx) StageTransfer(i, sync int) {
	out := rc.st.outs[i]
	rc.xferB += int64(out.BytesPerRank)
	var xfer units.Seconds
	if out.Transfer != nil {
		busyBefore := rc.busy
		rc.runPhases([]machine.Phase{{
			Name:        "transfer",
			Nominal:     out.Transfer.Time(out.BytesPerRank),
			Demand:      transferDemand,
			Saturation:  transferSaturation,
			Sensitivity: transferSens,
		}})
		xfer = rc.busy - busyBefore
		rc.xferS += xfer
	}
	if rc.StageRank == 0 {
		rc.cfg.Telemetry.TransferVolume(float64(rc.Rank.Clock()), out.From+"->"+out.To, sync,
			int64(out.BytesPerRank)*int64(rc.st.Ranks), float64(xfer))
	}
}

// Run executes the workflow job and returns its result. Cancelling the
// context unwinds every rank goroutine and Run returns ctx.Err().
func Run(ctx context.Context, cfg Config) (*Result, error) {
	plan, err := Compile(cfg.Graph)
	if err != nil {
		return nil, err
	}
	if err := cfg.normalize(plan); err != nil {
		return nil, err
	}
	schedule := cfg.SyncSteps
	even := core.EvenSplit(cfg.Constraints, plan.NWorld)

	cl, err := cluster.New(cluster.Config{
		SimNodes:      plan.SimNodes,
		AnaNodes:      plan.AnaNodes,
		Rapl:          cfg.Rapl,
		Machine:       cfg.Machine,
		Noise:         cfg.Noise,
		Classes:       cfg.Classes,
		ClassRegistry: cfg.ClassRegistry,
		JobSeed:       cfg.Seed,
		RunSeed:       cfg.RunSeed,
		Faults:        cfg.Faults,
		Telemetry:     cfg.Telemetry,
		Scales:        plan.Scales,
	})
	if err != nil {
		return nil, err
	}

	res := &Result{
		SyncLog:   &trace.SyncLog{},
		StageBusy: make(map[string]units.Seconds, len(plan.stages)),
	}
	if cfg.PowerSample > 0 {
		res.PowerTrace = trace.NewRecorder()
	}
	var mu sync.Mutex // guards res across rank goroutines
	// Per-rank aggregates are reduced in world-rank order after the job
	// so float addition order does not depend on goroutine scheduling
	// (the byte-identity contract the drivers' golden tests pin).
	rankEnergy := make([]units.Joules, plan.NWorld)
	rankBusy := make([]units.Seconds, plan.NWorld)
	rankXferS := make([]units.Seconds, plan.NWorld)
	rankXferB := make([]int64, plan.NWorld)

	err = mpi.RunContext(ctx, plan.NWorld, cfg.Cost, cfg.Telemetry, func(r *mpi.Rank) {
		st := plan.stageFor(r.WorldRank())
		role := cl.Role(r.WorldRank())
		node := cl.Node(r.WorldRank())

		mgr, err := polimer.Init(r, role, node, polimer.Options{
			Policy:       cfg.Policy,
			Constraints:  cfg.Constraints,
			InitialCap:   cfg.initialCap(st.Name, even),
			ShortTermCap: cfg.ShortTermCap,
			Telemetry:    cfg.Telemetry,
			Health:       func() core.Health { return cl.Health(r.WorldRank()) },
			Capability:   cl.CapabilityFn(),
		})
		if err != nil {
			panic(err)
		}
		var mon *polimer.Monitor
		if cfg.PowerSample > 0 {
			mon, err = polimer.NewMonitor(node, cfg.PowerSample)
			if err != nil {
				panic(err)
			}
			mgr.AttachMonitor(mon)
		}

		// Split into per-stage communicators, as Splitanalysis does.
		part := r.World().Split(st.Index, r.WorldRank())

		rc := &RankCtx{
			Rank: r, Part: part, Node: node, Mgr: mgr,
			StageRank: r.WorldRank() - st.Start,
			cfg:       &cfg, cl: cl, st: st,
		}
		if st.Body != nil {
			st.Body(rc)
		} else {
			runProgram(rc, schedule, cfg.Steps)
		}

		// Collect job-level aggregates.
		endClock := r.World().AllreduceMax([]float64{float64(r.Clock())})[0]
		mu.Lock()
		if units.Seconds(endClock) > res.MainLoopTime {
			res.MainLoopTime = units.Seconds(endClock)
		}
		rankEnergy[r.WorldRank()] = node.RAPL().Energy()
		rankBusy[r.WorldRank()] = rc.busy
		rankXferS[r.WorldRank()] = rc.xferS
		rankXferB[r.WorldRank()] = rc.xferB
		if r.WorldRank() == 0 {
			res.SyncLog = mgr.SyncLog()
			res.OverheadTotal = mgr.OverheadTotal()
			res.Syncs = len(schedule)
		}
		if mon != nil {
			mon.Poll()
			dst := res.PowerTrace.Series(fmt.Sprintf("node-%03d", r.WorldRank()))
			dst.Samples = append(dst.Samples, mon.Series().Samples...)
		}
		mu.Unlock()
	})
	if err != nil {
		return nil, err
	}
	for _, e := range rankEnergy {
		res.TotalEnergy += e
	}
	for _, cs := range plan.stages {
		var most units.Seconds
		for r := cs.Start; r < cs.Start+cs.Ranks; r++ {
			if rankBusy[r] > most {
				most = rankBusy[r]
			}
		}
		res.StageBusy[cs.Name] = most
	}
	for i := 0; i < plan.NWorld; i++ {
		res.TransferSeconds += rankXferS[i]
		res.TransferBytes += rankXferB[i]
	}
	return res, nil
}

// runProgram is the generic per-rank body: the declarative program a
// stage without a custom Body executes. Per synchronization interval,
// in order: the stage's step work (producer side), faults and power
// allocation (the global rendezvous every rank joins), inbound-edge
// receives (waits idle the node as synchronization slack), the stage's
// sync work (consumer side), then outbound-edge transfers and sends.
// Buffered sends keep arbitrary DAG fan-out/fan-in deadlock-free.
func runProgram(rc *RankCtx, schedule []int, steps int) {
	st := rc.st
	tel := rc.cfg.Telemetry
	lead := rc.StageRank == 0
	prev := 0
	for si, step := range schedule {
		if lead {
			tel.StageStart(float64(rc.Rank.Clock()), st.Name, si+1)
		}
		if st.Work != nil {
			rc.runPhases(st.Work.StepPhases(prev, step, si))
		}
		rc.ApplyFaults(si + 1)
		// Power allocation immediately before the synchronization.
		rc.Mgr.PowerAlloc()
		for _, in := range st.ins {
			for _, src := range in.sources[rc.StageRank] {
				before := rc.Rank.Clock()
				rc.Rank.Recv(src, in.tag)
				rc.Mgr.NoteExternalWait(rc.Rank.Clock() - before)
			}
		}
		if st.Work != nil {
			rc.runPhases(st.Work.SyncPhases(si, step))
		}
		for oi := range st.outs {
			rc.StageTransfer(oi, si+1)
			out := st.outs[oi]
			rc.Rank.Send(out.dst[rc.StageRank], out.tag, si, out.BytesPerRank)
		}
		if lead {
			tel.StageEnd(float64(rc.Rank.Clock()), st.Name, si+1, float64(rc.busy))
		}
		prev = step
	}
	// Trailing Verlet steps after the last synchronization.
	if st.Work != nil && prev < steps {
		rc.runPhases(st.Work.StepPhases(prev, steps, len(schedule)))
	}
}

// seesawctl search: batched policy search over a rollout grid. Every
// (nodes, budget, w, dim, faults, classes, topology) scenario runs once
// per policy through the rollout environment on the campaign worker
// pool, and the report names the winning policy per scenario. The
// scalar knobs (-steps, -j, -analyses, -seed) join the scenario key
// only when they deviate from their defaults, so default grids keep
// their established keys while two grids differing in those knobs can
// never collide.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"seesaw/internal/rollout"
	"seesaw/internal/trace"
	"seesaw/internal/units"
)

// splitList parses a comma-separated flag value into its fields; empty
// fields are kept only when the whole value is non-empty and explicitly
// lists them (a lone "" means "axis default").
func splitList(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// intList parses a comma-separated list of integers.
func intList(s string) ([]int, error) {
	var out []int
	for _, f := range splitList(s) {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q: %w", f, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// wattList parses a comma-separated list of Watt values.
func wattList(s string) ([]units.Watts, error) {
	var out []units.Watts
	for _, f := range splitList(s) {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad wattage %q: %w", f, err)
		}
		out = append(out, units.Watts(v))
	}
	return out, nil
}

// scenarioOf strips the trailing "/<policy>" from a point key, leaving
// the scenario identity shared by all policies of one grid cell.
func scenarioOf(key string) string {
	if i := strings.LastIndex(key, "/"); i >= 0 {
		return key[:i]
	}
	return key
}

// runSearch implements the search subcommand.
func runSearch(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	nodes := fs.String("nodes", "", "comma-separated total node counts (default 8)")
	budgets := fs.String("budgets", "", "comma-separated per-node budgets in W (default 110)")
	windows := fs.String("w", "", "comma-separated reallocation windows (default 1)")
	dims := fs.String("dims", "", "comma-separated problem sizes (default 16)")
	faults := fs.String("faults", "", "comma-separated fault plans; 'none' for the fault-free scenario")
	classes := fs.String("classes", "", "semicolon-separated device-class maps, e.g. '0-3:cpu,4-7:gpu'; 'uniform' for the homogeneous scenario")
	topologies := fs.String("topologies", "", "comma-separated placements (default space-shared)")
	policies := fs.String("policies", "", "comma-separated registry policies (default: all registered)")
	steps := fs.Int("steps", 0, "Verlet steps per episode (default 400)")
	j := fs.Int("j", 0, "synchronize every j-th step (default 1)")
	analyses := fs.String("analyses", "", "comma-separated analyses (default msd)")
	seed := fs.Uint64("seed", 1, "base job seed")
	jobs := fs.Int("jobs", 0, "max rollouts in flight (0 = GOMAXPROCS); results are identical at any value")
	lanes := fs.Int("lanes", 0, "same-job episodes advanced in lockstep per worker (0 = default, 1 disables lane batching); results are identical at any width")
	noMemo := fs.Bool("no-noise-memo", false, "disable noise-trace memoization: draw every jitter variate live instead of replaying the recorded trace; results are identical either way")
	cacheStats := fs.Bool("cache-stats", false, "print a trace-cache summary line (hits/misses/evictions/bytes) after the search")
	telPath := fs.String("telemetry", "", "stream telemetry events to this file as JSON Lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	g := rollout.Grid{
		Topologies: splitList(*topologies),
		Policies:   splitList(*policies),
		Analyses:   splitList(*analyses),
		Steps:      *steps,
		J:          *j,
		Seed:       *seed,
	}
	for _, fp := range splitList(*faults) {
		if fp == "none" {
			fp = ""
		}
		g.Faults = append(g.Faults, fp)
	}
	// Class maps contain commas ("0-3:cpu,4-7:gpu"), so the classes axis
	// is semicolon-separated.
	for _, cs := range strings.Split(*classes, ";") {
		cs = strings.TrimSpace(cs)
		if cs == "" {
			continue
		}
		if cs == "uniform" {
			cs = ""
		}
		g.Classes = append(g.Classes, cs)
	}
	var err error
	if g.Nodes, err = intList(*nodes); err != nil {
		return fail(ctx, err)
	}
	if g.Windows, err = intList(*windows); err != nil {
		return fail(ctx, err)
	}
	if g.Dims, err = intList(*dims); err != nil {
		return fail(ctx, err)
	}
	if g.Budgets, err = wattList(*budgets); err != nil {
		return fail(ctx, err)
	}

	points, err := g.Expand()
	if err != nil {
		return fail(ctx, err)
	}
	if *noMemo {
		for i := range points {
			points[i].Spec.NoNoiseMemo = true
		}
	}
	hub, closeHub := mustOpenHub(*telPath)
	defer closeHub()
	cache := rollout.NewStateCache()
	cache.SetTelemetry(hub)
	outs, err := rollout.Batch(ctx, points, rollout.Options{Jobs: *jobs, Lanes: *lanes, Cache: cache, Telemetry: hub})
	if err != nil {
		return fail(ctx, err)
	}

	tbl := trace.NewTable(fmt.Sprintf("policy search (%d rollouts)", len(outs)),
		"scenario", "policy", "time (s)", "energy (kJ)")
	type cell struct {
		policy string
		time   float64
	}
	best := map[string]cell{}
	var order []string
	for _, o := range outs {
		sc := scenarioOf(o.Point.Key)
		if _, seen := best[sc]; !seen {
			order = append(order, sc)
		}
		if o.Result == nil {
			tbl.AddRow(sc, o.Point.Policy, "failed: "+o.Err.Error(), "")
			continue
		}
		t := float64(o.Result.TotalTime)
		tbl.AddRow(sc, o.Point.Policy,
			fmt.Sprintf("%.2f", t), fmt.Sprintf("%.1f", float64(o.Result.TotalEnergy)/1000))
		if b, seen := best[sc]; !seen || t < b.time {
			best[sc] = cell{policy: o.Point.Policy, time: t}
		}
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return fail(ctx, err)
	}

	fmt.Println()
	sort.Strings(order)
	for _, sc := range order {
		if b, ok := best[sc]; ok {
			fmt.Printf("best %-60s %s (%.2f s)\n", sc, b.policy, b.time)
		}
	}
	if *cacheStats {
		st := cache.Stats()
		fmt.Printf("trace cache: %d hits, %d misses, %d evictions, %d entries, %d bytes\n",
			st.Hits, st.Misses, st.Evictions, st.Entries, st.Bytes)
	}
	return 0
}

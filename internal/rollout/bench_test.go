package rollout

import (
	"context"
	"fmt"
	"runtime"
	"testing"

	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// benchSpec is the scale point the rollout benchmarks share: episode
// shape mirrors BenchmarkTopologies' scale points (dim 8, 4
// synchronized steps) so the substrate cost is comparable across the
// two benchmarks.
func benchSpec(nodes int) Spec {
	return Spec{
		Workload: workload.Spec{
			SimNodes: nodes / 2, AnaNodes: nodes / 2,
			Dim: 8, J: 1, Steps: 4,
			Analyses: workload.Tasks("msd"),
		},
		Seed:    11,
		RunSeed: 12,
		Noise:   machine.DefaultNoise(),
	}
}

// BenchmarkRollouts is the headline throughput number: complete
// policy-search episodes per second through Env.Rollout — registry
// policy construction and all — on the pooled single-worker path Batch
// workers run (one Env reused across episodes, as a sweep over
// budgets/policies replays one job). Rollout takes the direct
// in-process path, bypassing the step-API rendezvous the goldens and
// TestStepZeroAllocs exercise; both produce identical bytes.
func BenchmarkRollouts(b *testing.B) {
	for _, nodes := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			spec := benchSpec(nodes)
			cons := spec.constraints(nodes)
			fac, err := policy.Lookup("seesaw")
			if err != nil {
				b.Fatal(err)
			}
			env := NewEnv()
			defer env.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pol, err := fac(cons, 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := env.Rollout(context.Background(), spec, pol); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rollouts/sec")
		})
	}
}

// BenchmarkRolloutsFresh is the unpooled baseline: a throwaway Env per
// episode, cluster rebuilt every run. The gap to BenchmarkRollouts is
// what the episode pool buys.
func BenchmarkRolloutsFresh(b *testing.B) {
	for _, nodes := range []int{256, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			spec := benchSpec(nodes)
			cons := spec.constraints(nodes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pol, err := policy.New("seesaw", cons, 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Run(context.Background(), spec, pol); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rollouts/sec")
		})
	}
}

// BenchmarkRolloutsBatch measures batch scaling: one iteration fans a
// 64-point budget/window/policy sweep of a single job across the
// campaign pool at the given concurrency, exercising the shared
// JobState cache, the per-worker episode pools and the lane-stepped
// executor together. One iteration is one Batch call — the shape of a
// real search invocation — so per-call costs (trace recording, lane
// population construction) are amortized exactly as a user's sweep
// amortizes them.
//
// Honest multi-core numbers need the worker concurrency and the
// scheduler's parallelism to agree, so run this benchmark with
// -cpu 1,4,8 (the Makefile's bench-rollouts target does): each jobs=N
// row then appears once per GOMAXPROCS value. A jobs>1 row under
// GOMAXPROCS=1 is skipped with a note — its workers would time-slice
// one core and the row would measure scheduler interleaving, not batch
// scaling.
func BenchmarkRolloutsBatch(b *testing.B) {
	for _, nodes := range []int{256, 1024} {
		points, err := Grid{
			Nodes:    []int{nodes},
			Dims:     []int{8},
			Steps:    4,
			Budgets:  []units.Watts{104, 106, 108, 110, 112, 114, 116, 118},
			Windows:  []int{1, 2},
			Policies: []string{"seesaw", "time-aware", "power-aware", "static"},
		}.Expand()
		if err != nil {
			b.Fatal(err)
		}
		for _, jobs := range []int{1, 4, 8} {
			b.Run(fmt.Sprintf("nodes=%d/jobs=%d", nodes, jobs), func(b *testing.B) {
				if jobs > 1 && runtime.GOMAXPROCS(0) == 1 {
					b.Skipf("jobs=%d with GOMAXPROCS=1: workers would time-slice one core; see -cpu 4,8 rows", jobs)
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					outs, err := Batch(context.Background(), points, Options{Jobs: jobs})
					if err != nil {
						b.Fatal(err)
					}
					for _, o := range outs {
						if o.Err != nil {
							b.Fatal(o.Err)
						}
					}
				}
				b.ReportMetric(float64(b.N*len(points))/b.Elapsed().Seconds(), "rollouts/sec")
			})
		}
	}
}

package rollout

import (
	"bytes"
	"context"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/policy"
	"seesaw/internal/units"
)

// laneSpecs builds width same-job specs differing only in budget — the
// key-group shape Batch carves into lanes.
func laneSpecs(t *testing.T, width int) []Spec {
	t.Helper()
	specs := make([]Spec, width)
	for i := range specs {
		s := testSpec("", t)
		s.CapPerNode = units.Watts(104 + 4*i)
		specs[i] = s
	}
	return specs
}

// lanePolicies constructs one registry policy per spec.
func lanePolicies(t *testing.T, name string, specs []Spec) []core.Policy {
	t.Helper()
	pols := make([]core.Policy, len(specs))
	for i, s := range specs {
		n := s.Workload.SimNodes + s.Workload.AnaNodes
		pol, err := policy.New(name, s.constraints(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		pols[i] = pol
	}
	return pols
}

// TestRolloutLanesMatchesSequential pins the lane-stepping contract:
// K same-job episodes advanced in lockstep produce byte-identical
// reports to the same episodes run back to back on a plain Env —
// lockstep reorders windows across episodes, never bytes within one.
func TestRolloutLanesMatchesSequential(t *testing.T) {
	for _, name := range []string{"seesaw", "time-aware", "static"} {
		t.Run(name, func(t *testing.T) {
			specs := laneSpecs(t, 3)

			seq := make([]*Result, len(specs))
			env := NewEnv()
			defer env.Close()
			for i, s := range specs {
				pols := lanePolicies(t, name, specs)
				res, err := env.Rollout(context.Background(), s, pols[i])
				if err != nil {
					t.Fatal(err)
				}
				seq[i] = res
			}

			lenv := NewEnv()
			defer lenv.Close()
			// Two passes over one pooled Lanes: the second reuses the lane
			// populations and must still match.
			for pass := 0; pass < 2; pass++ {
				rs, err := lenv.RolloutLanes(context.Background(), specs, lanePolicies(t, name, specs))
				if err != nil {
					t.Fatal(err)
				}
				for i := range specs {
					if rs[i].TotalTime != seq[i].TotalTime || rs[i].TotalEnergy != seq[i].TotalEnergy {
						t.Errorf("pass %d lane %d totals diverge from sequential", pass, i)
					}
					if !bytes.Equal(syncCSV(t, rs[i].SyncLog), syncCSV(t, seq[i].SyncLog)) {
						t.Errorf("pass %d lane %d SyncLog diverges from sequential", pass, i)
					}
				}
			}
		})
	}
}

// TestRolloutLanesValidation: mixed jobs, workflow topologies and
// instrumented specs are rejected up front.
func TestRolloutLanesValidation(t *testing.T) {
	env := NewEnv()
	defer env.Close()
	specs := laneSpecs(t, 2)
	pols := lanePolicies(t, "static", specs)

	mixed := append([]Spec(nil), specs...)
	mixed[1].Seed++ // different job
	if _, err := env.RolloutLanes(context.Background(), mixed, pols); err == nil {
		t.Error("mixed-job lanes accepted")
	}
	topo := append([]Spec(nil), specs...)
	topo[0].Topology = "time-shared"
	if _, err := env.RolloutLanes(context.Background(), topo, pols); err == nil {
		t.Error("workflow-topology lanes accepted")
	}
	if _, err := env.RolloutLanes(context.Background(), specs, pols[:1]); err == nil {
		t.Error("spec/policy length mismatch accepted")
	}
}

// TestNoiseMemoGolden pins the memoization contract end to end: a
// memoized episode (noise trace recorded once, replayed thereafter) is
// byte-identical to the same spec with NoNoiseMemo — every jitter
// variate drawn live from the node streams.
func TestNoiseMemoGolden(t *testing.T) {
	spec := testSpec("", t)
	spec.Faults = nil // fault-free so the memo path actually engages
	n := spec.Workload.SimNodes + spec.Workload.AnaNodes

	run := func(s Spec) *Result {
		t.Helper()
		pol, err := policy.New("seesaw", s.constraints(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		env := NewEnv()
		defer env.Close()
		// Two rollouts: the second replays the recorded trace (or, with
		// NoNoiseMemo, redraws live) over the pooled episode.
		if _, err := env.Rollout(context.Background(), s, pol); err != nil {
			t.Fatal(err)
		}
		pol, err = policy.New("seesaw", s.constraints(n), 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := env.Rollout(context.Background(), s, pol)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	memo := run(spec)
	live := spec
	live.NoNoiseMemo = true
	liveRes := run(live)

	if memo.TotalTime != liveRes.TotalTime || memo.TotalEnergy != liveRes.TotalEnergy {
		t.Error("memoized totals diverge from live draws")
	}
	if !bytes.Equal(syncCSV(t, memo.SyncLog), syncCSV(t, liveRes.SyncLog)) {
		t.Error("memoized SyncLog diverges from live draws")
	}
}

// TestBatchLanesByteIdentical: the same grid through lane widths 1
// (lane batching disabled), the default, and an oversized width yields
// identical outcomes.
func TestBatchLanesByteIdentical(t *testing.T) {
	points, err := Grid{
		Nodes:    []int{8},
		Budgets:  []units.Watts{104, 110, 118},
		Steps:    12,
		Policies: []string{"seesaw", "time-aware"},
		Seed:     5,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	run := func(lanes int) []Outcome {
		outs, err := Batch(context.Background(), points, Options{Jobs: 4, Lanes: lanes})
		if err != nil {
			t.Fatalf("lanes=%d: %v", lanes, err)
		}
		return outs
	}
	base := run(1)
	for _, lanes := range []int{0, 16} {
		outs := run(lanes)
		for i := range base {
			a, b := base[i].Result, outs[i].Result
			if a == nil || b == nil {
				t.Fatalf("point %q failed: %v / %v", points[i].Key, base[i].Err, outs[i].Err)
			}
			if a.TotalTime != b.TotalTime || a.TotalEnergy != b.TotalEnergy {
				t.Errorf("lanes=%d point %q totals diverge", lanes, points[i].Key)
			}
			if !bytes.Equal(syncCSV(t, a.SyncLog), syncCSV(t, b.SyncLog)) {
				t.Errorf("lanes=%d point %q SyncLog diverges", lanes, points[i].Key)
			}
		}
	}
}

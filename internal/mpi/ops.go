// Additional message-passing operations: rooted reductions, scatter,
// combined send-receive, non-blocking point-to-point, and wall-clock
// access — the parts of the MPI surface PoLiMER-style libraries and
// in-situ frameworks commonly use beyond the core collectives.
package mpi

import (
	"fmt"

	"seesaw/internal/units"
)

// ReduceSum element-wise sums float64 slices at root; root receives the
// reduction, other ranks receive nil. All members synchronize. Like the
// Allreduce family, rooted reductions ride the typed float64 rendezvous
// path (no boxing, no defensive input copy).
func (c *Comm) ReduceSum(root int, vals []float64) []float64 {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: reduce root %d out of range", root))
	}
	res := c.rendezvousFloats("reduce-sum", vals, reduceSumFloats)
	if c.myRank != root {
		return nil
	}
	return res
}

// reduceSumFloats mirrors sumFloats with the reduce-family panic text.
func reduceSumFloats(inputs [][]float64) []float64 {
	out := make([]float64, len(inputs[0]))
	for _, xs := range inputs {
		if len(xs) != len(out) {
			panic("mpi: reduce length mismatch")
		}
		for i, x := range xs {
			out[i] += x
		}
	}
	return out
}

// ReduceMax element-wise maxes float64 slices at root.
func (c *Comm) ReduceMax(root int, vals []float64) []float64 {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: reduce root %d out of range", root))
	}
	res := c.rendezvousFloats("reduce-max", vals, reduceMaxFloats)
	if c.myRank != root {
		return nil
	}
	return res
}

// reduceMaxFloats mirrors maxFloats with the reduce-family panic text.
func reduceMaxFloats(inputs [][]float64) []float64 {
	out := append([]float64(nil), inputs[0]...)
	for _, xs := range inputs[1:] {
		if len(xs) != len(out) {
			panic("mpi: reduce length mismatch")
		}
		for i, x := range xs {
			if x > out[i] {
				out[i] = x
			}
		}
	}
	return out
}

// Scatter distributes one element of root's items slice to each member
// (items must have exactly Size elements on the root; it is ignored on
// other ranks). Every caller returns its element.
func (c *Comm) Scatter(root int, items []any, bytesPer int) any {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: scatter root %d out of range", root))
	}
	res := c.rendezvous("scatter", items, bytesPer, func(inputs []any) any {
		rootItems, ok := inputs[root].([]any)
		if !ok || len(rootItems) != len(inputs) {
			panic(fmt.Sprintf("mpi: scatter requires %d items at the root", len(inputs)))
		}
		return rootItems
	})
	return res.([]any)[c.myRank]
}

// Sendrecv sends to dst and receives from src in one operation,
// mirroring MPI_Sendrecv's deadlock-free exchange. dst and src are world
// ranks.
func (r *Rank) Sendrecv(dst, sendTag int, payload any, bytes int, src, recvTag int) any {
	r.Send(dst, sendTag, payload, bytes)
	return r.Recv(src, recvTag)
}

// Request is a handle to a non-blocking receive.
type Request struct {
	rank *Rank
	src  int
	tag  int

	done    bool
	payload any
}

// Irecv posts a non-blocking receive. The returned Request's Wait blocks
// until the matching message arrives; Test polls without blocking.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{rank: r, src: src, tag: tag}
}

// Wait blocks until the request completes and returns the payload,
// advancing the rank's clock to the message arrival.
func (q *Request) Wait() any {
	if q.done {
		return q.payload
	}
	q.payload = q.rank.Recv(q.src, q.tag)
	q.done = true
	return q.payload
}

// Test reports whether a matching message is already available without
// blocking or consuming it.
func (q *Request) Test() bool {
	if q.done {
		return true
	}
	mb := q.rank.rt.mail[q.rank.id]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	mq := mb.queues[pairKey{src: q.src, tag: q.tag}]
	return mq != nil && mq.head < len(mq.msgs)
}

// Wtime returns the rank's virtual clock, mirroring MPI_Wtime.
func (r *Rank) Wtime() units.Seconds { return r.clock }

// TranslateRank maps a rank of this communicator into the corresponding
// rank of another communicator sharing the same world, or -1 if the
// process is not a member there.
func (c *Comm) TranslateRank(rank int, other *Comm) int {
	if rank < 0 || rank >= c.Size() {
		return -1
	}
	world := c.group.members[rank]
	for i, w := range other.group.members {
		if w == world {
			return i
		}
	}
	return -1
}

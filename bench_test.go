// Benchmarks regenerating the paper's tables and figures (one benchmark
// per artifact, exercising the same code paths as `seesawctl run <id>`
// at reduced step counts so `go test -bench` stays tractable), plus
// micro-benchmarks of the performance-critical substrates.
package seesaw_test

import (
	"context"
	"io"
	"testing"

	"seesaw/internal/analysis"
	"seesaw/internal/bench"
	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/lammps"
	"seesaw/internal/machine"
	"seesaw/internal/mpi"
	"seesaw/internal/rapl"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// benchOptions keeps each experiment iteration affordable inside a
// benchmark loop while exercising the full pipeline.
func benchOptions() bench.Options {
	return bench.Options{Steps: 40, Runs: 1, BaseSeed: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := bench.Get(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := e.Run(context.Background(), benchOptions(), io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkFig1PowerTrace(b *testing.B)       { runExperiment(b, "fig1") }
func BenchmarkFig2Illustration(b *testing.B)     { runExperiment(b, "fig2") }
func BenchmarkTable1Variability(b *testing.B)    { runExperiment(b, "table1") }
func BenchmarkFig3aPolicies(b *testing.B)        { runExperiment(b, "fig3a") }
func BenchmarkFig3bScale(b *testing.B)           { runExperiment(b, "fig3b") }
func BenchmarkFig4Allocation(b *testing.B)       { runExperiment(b, "fig4") }
func BenchmarkFig5AllocVsMeasured(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFig6Sensitivity(b *testing.B)      { runExperiment(b, "fig6") }
func BenchmarkTable2MixedIntervals(b *testing.B) { runExperiment(b, "table2") }
func BenchmarkFig7Unbalanced(b *testing.B)       { runExperiment(b, "fig7") }
func BenchmarkFig8PowerHeadroom(b *testing.B)    { runExperiment(b, "fig8") }
func BenchmarkFig9aOverhead(b *testing.B)        { runExperiment(b, "fig9a") }
func BenchmarkFig9bStandalone(b *testing.B)      { runExperiment(b, "fig9b") }

// Micro-benchmarks of the substrates.

func BenchmarkSeeSAwAllocate(b *testing.B) {
	cons := core.Constraints{Budget: 110 * 128, MinCap: 98, MaxCap: 215}
	ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
	nodes := make([]core.NodeMeasure, 128)
	for i := range nodes {
		role := core.RoleSimulation
		if i >= 64 {
			role = core.RoleAnalysis
		}
		nodes[i] = core.NodeMeasure{Role: role, Time: 4, BusyTime: 4, EpochTime: 4,
			Power: units.Watts(100 + i%20), Cap: 110}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ss.Allocate(i+1, nodes)
	}
}

func BenchmarkPowerAwareAllocate(b *testing.B) {
	cons := core.Constraints{Budget: 110 * 128, MinCap: 98, MaxCap: 215}
	pa := core.MustNewPowerAware(core.DefaultPowerAwareConfig(cons))
	nodes := make([]core.NodeMeasure, 128)
	for i := range nodes {
		nodes[i] = core.NodeMeasure{Role: core.Role(i % 2), Time: 4,
			Power: units.Watts(100 + i%12), Cap: 110}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		pa.Allocate(i+1, nodes)
	}
}

func BenchmarkTimeAwareAllocate(b *testing.B) {
	cons := core.Constraints{Budget: 110 * 128, MinCap: 98, MaxCap: 215}
	ta := core.MustNewTimeAware(core.DefaultTimeAwareConfig(cons))
	nodes := make([]core.NodeMeasure, 128)
	for i := range nodes {
		nodes[i] = core.NodeMeasure{Role: core.Role(i % 2),
			Time: units.Seconds(4 + float64(i%16)/8), Cap: 110}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ta.Allocate(i+1, nodes)
	}
}

func BenchmarkCosim128Nodes(b *testing.B) {
	spec := workload.Spec{SimNodes: 64, AnaNodes: 64, Dim: 16, J: 1, Steps: 50,
		Analyses: workload.Tasks("msd")}
	cons := core.Constraints{Budget: 110 * 128, MinCap: 98, MaxCap: 215}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
		if _, err := cosim.Run(context.Background(), cosim.Config{Spec: spec, Policy: ss, Constraints: cons,
			CapMode: cosim.CapLong, Seed: uint64(i), Noise: machine.DefaultNoise()}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchmarkCosimTelemetry runs the 128-node cell with the given hub.
// The Off/On pair quantifies the observability tax: Off measures the
// disabled hooks (one nil pointer comparison each, zero allocations —
// see internal/telemetry's TestDisabledHooksDoNotAllocate), and must
// stay within the noise floor (< 2%) of BenchmarkCosim128Nodes; On
// prices full metric and event collection.
func benchmarkCosimTelemetry(b *testing.B, hub *telemetry.Hub) {
	b.Helper()
	spec := workload.Spec{SimNodes: 64, AnaNodes: 64, Dim: 16, J: 1, Steps: 50,
		Analyses: workload.Tasks("msd")}
	cons := core.Constraints{Budget: 110 * 128, MinCap: 98, MaxCap: 215}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
		if _, err := cosim.Run(context.Background(), cosim.Config{Spec: spec, Policy: ss, Constraints: cons,
			CapMode: cosim.CapLong, Seed: uint64(i), Noise: machine.DefaultNoise(),
			Telemetry: hub}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCosimTelemetryOff(b *testing.B) { benchmarkCosimTelemetry(b, nil) }

func BenchmarkCosimTelemetryOn(b *testing.B) {
	benchmarkCosimTelemetry(b, telemetry.New(telemetry.Options{}))
}

func BenchmarkLammpsStep(b *testing.B) {
	sys := lammps.MustNew(lammps.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys.InitialIntegrate()
		if sys.NeedsRebuild() {
			sys.BuildNeighbors()
		}
		sys.ComputeForces()
		sys.FinalIntegrate()
	}
}

func BenchmarkLammpsNeighborBuild(b *testing.B) {
	sys := lammps.MustNew(lammps.DefaultConfig())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sys.BuildNeighbors()
	}
}

func BenchmarkAnalysisMSD(b *testing.B) {
	sys := lammps.MustNew(lammps.DefaultConfig())
	frame := sys.Snapshot()
	m := analysis.NewMSD()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Consume(&frame)
	}
}

func BenchmarkAnalysisRDF(b *testing.B) {
	sys := lammps.MustNew(lammps.DefaultConfig())
	frame := sys.Snapshot()
	r := analysis.NewRDF(64, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Consume(&frame)
	}
}

func BenchmarkMPIAllreduce64(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		err := mpi.Run(64, mpi.DefaultCost(), func(r *mpi.Rank) {
			r.World().AllreduceSum([]float64{1, 2, 3, 4})
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMachinePhase(b *testing.B) {
	n := machine.DefaultNode(0, machine.DefaultNoise(), 1)
	n.RAPL().SetLongCap(110)
	n.Idle(0.02)
	ph := machine.Phase{Name: "p", Nominal: 0.001, Demand: 130, Saturation: 140, Sensitivity: 0.9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n.Run(ph, machine.DefaultNoise())
	}
}

func BenchmarkRAPLAdvance(b *testing.B) {
	d := rapl.MustNewDomain(rapl.Theta())
	d.SetLongCap(110)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Advance(0.01, 108)
	}
}

package telemetry

import (
	"math"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "test counter", "node")
	c.With("n0").Inc()
	c.With("n0").Add(2.5)
	if got := c.With("n0").Value(); got != 3.5 {
		t.Errorf("counter = %v, want 3.5", got)
	}
	g := r.Gauge("g", "test gauge")
	g.With().Set(110)
	g.With().Add(-10)
	if got := g.With().Value(); got != 100 {
		t.Errorf("gauge = %v, want 100", got)
	}
}

func TestCounterDecreasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on counter decrease")
		}
	}()
	NewRegistry().Counter("c_total", "h").With().Add(-1)
}

func TestWithLabelArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong label count")
		}
	}()
	NewRegistry().Counter("c_total", "h", "a", "b").With("only-one")
}

func TestReRegisterSameKindReturnsSameFamily(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "h")
	b := r.Counter("x_total", "h")
	if a != b {
		t.Error("re-registration should return the existing family")
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "h")
}

// TestHistogramBucketBoundaries pins the le (less-or-equal) bucket
// semantics: an observation equal to an upper bound lands in that
// bucket, anything above the last bound lands in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		v    float64
		want int // index into BucketCounts (last = +Inf)
	}{
		{0.4, 0}, {0.5, 0}, // at the bound -> that bucket
		{0.50001, 1}, {1, 1},
		{1.5, 2}, {2, 2},
		{2.1, 3},         // above last bound -> +Inf
		{math.Inf(1), 3}, // +Inf -> +Inf
		{-3, 0},          // below the first bound -> first bucket
	}
	for _, tc := range cases {
		r := NewRegistry()
		h := r.Histogram("h", "test", []float64{0.5, 1, 2})
		m := h.With()
		m.Observe(tc.v)
		counts := m.BucketCounts()
		if len(counts) != 4 {
			t.Fatalf("BucketCounts len = %d, want 4", len(counts))
		}
		for i, c := range counts {
			want := uint64(0)
			if i == tc.want {
				want = 1
			}
			if c != want {
				t.Errorf("Observe(%v): bucket[%d] = %d, want %d", tc.v, i, c, want)
			}
		}
		if m.Count() != 1 {
			t.Errorf("Observe(%v): Count = %d", tc.v, m.Count())
		}
	}
}

func TestHistogramSum(t *testing.T) {
	m := NewRegistry().Histogram("h", "test", []float64{1, 2}).With()
	m.Observe(0.5)
	m.Observe(1.5)
	if got := m.Sum(); got != 2.0 {
		t.Errorf("Sum = %v, want 2", got)
	}
	if got := m.Count(); got != 2 {
		t.Errorf("Count = %d, want 2", got)
	}
}

func TestUnsortedBucketsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on unsorted buckets")
		}
	}()
	NewRegistry().Histogram("h", "test", []float64{2, 1})
}

func TestStandardBuckets(t *testing.T) {
	for name, b := range map[string][]float64{"power": PowerBuckets(), "latency": LatencyBuckets()} {
		if !sort.Float64sAreSorted(b) {
			t.Errorf("%s buckets not ascending: %v", name, b)
		}
		if len(b) == 0 {
			t.Errorf("%s buckets empty", name)
		}
	}
	p := PowerBuckets()
	if p[0] != 90 || p[len(p)-1] != 220 {
		t.Errorf("power buckets span %v..%v, want 90..220", p[0], p[len(p)-1])
	}
	l := LatencyBuckets()
	if l[0] != 1e-6 || l[len(l)-1] != 100 {
		t.Errorf("latency buckets span %v..%v, want 1e-06..100", l[0], l[len(l)-1])
	}
}

// TestRegistryConcurrency hammers one registry from many goroutines;
// run with -race to verify the synchronization (the tier-1 gate does).
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const goroutines = 8
	const perG = 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			node := string(rune('a' + g%4))
			for i := 0; i < perG; i++ {
				r.Counter("conc_total", "h", "node").With(node).Inc()
				r.Gauge("conc_gauge", "h").With().Set(float64(i))
				r.Histogram("conc_hist", "h", []float64{10, 100, 1000}).With().Observe(float64(i))
			}
		}(g)
	}
	wg.Wait()
	var sum float64
	for _, node := range []string{"a", "b", "c", "d"} {
		sum += r.Counter("conc_total", "h", "node").With(node).Value()
	}
	if want := float64(goroutines * perG); sum != want {
		t.Errorf("concurrent counter sum = %v, want %v", sum, want)
	}
	if got := r.Histogram("conc_hist", "h", []float64{10, 100, 1000}).With().Count(); got != goroutines*perG {
		t.Errorf("concurrent histogram count = %d, want %d", got, goroutines*perG)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "counter help", "node").With("n0").Add(3)
	r.Gauge("a_gauge", "gauge help").With().Set(1.5)
	h := r.Histogram("c_seconds", "hist help", []float64{1, 2}).With()
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# HELP a_gauge gauge help\n# TYPE a_gauge gauge\na_gauge 1.5\n",
		"# HELP b_total counter help\n# TYPE b_total counter\nb_total{node=\"n0\"} 3\n",
		"# TYPE c_seconds histogram\n",
		"c_seconds_bucket{le=\"1\"} 1\n",
		"c_seconds_bucket{le=\"2\"} 2\n",  // cumulative
		"c_seconds_bucket{le=\"+Inf\"} 3", // includes the overflow
		"c_seconds_sum 101\n",
		"c_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Families must appear sorted by name.
	if strings.Index(out, "a_gauge") > strings.Index(out, "b_total") {
		t.Error("families not sorted by name")
	}
}

func TestSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "h", "node").With("n1").Add(7)
	hm := r.Histogram("s_hist", "h", []float64{1}).With()
	hm.Observe(0.5)
	hm.Observe(3)

	snap := r.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot families = %d, want 2", len(snap))
	}
	// Sorted: s_hist before s_total.
	if snap[0].Name != "s_hist" || snap[1].Name != "s_total" {
		t.Fatalf("snapshot order = %s, %s", snap[0].Name, snap[1].Name)
	}
	hs := snap[0].Series[0]
	if hs.Count != 2 || hs.Sum != 3.5 || hs.Buckets["1"] != 1 || hs.Buckets["+Inf"] != 1 {
		t.Errorf("histogram snapshot = %+v", hs)
	}
	cs := snap[1].Series[0]
	if cs.Value != 7 || cs.Labels["node"] != "n1" {
		t.Errorf("counter snapshot = %+v", cs)
	}
}

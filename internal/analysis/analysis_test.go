package analysis

import (
	"math"
	"testing"

	"seesaw/internal/lammps"
)

// makeFrames advances a small MD system and captures frames.
func makeFrames(t *testing.T, n int) []lammps.Frame {
	t.Helper()
	cfg := lammps.DefaultConfig()
	cfg.Atoms = 256
	s, err := lammps.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	frames := make([]lammps.Frame, 0, n)
	for i := 0; i < n; i++ {
		s.InitialIntegrate()
		if s.NeedsRebuild() {
			s.BuildNeighbors()
		}
		s.ComputeForces()
		s.FinalIntegrate()
		frames = append(frames, s.Snapshot())
	}
	return frames
}

func TestNewByName(t *testing.T) {
	for _, name := range Names() {
		a, err := New(name)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if a.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, a.Name())
		}
	}
	if _, err := New("bogus"); err == nil {
		t.Error("unknown analysis should error")
	}
}

func TestProfilesSane(t *testing.T) {
	for _, name := range Names() {
		a, _ := New(name)
		p := a.Profile()
		if p.Demand <= 0 || p.Saturation <= 60 {
			t.Errorf("%s: implausible power profile %+v", name, p)
		}
		if p.Sensitivity < 0 || p.Sensitivity > 1 {
			t.Errorf("%s: sensitivity %v outside [0,1]", name, p.Sensitivity)
		}
		if p.SecondsPerOp <= 0 {
			t.Errorf("%s: non-positive SecondsPerOp", name)
		}
	}
}

func TestMSDStartsAtZero(t *testing.T) {
	frames := makeFrames(t, 3)
	m := NewMSD()
	m.Consume(&frames[0])
	res := m.Result()
	if len(res) != 1 {
		t.Fatalf("MSD result length %d", len(res))
	}
	if res[0] != 0 {
		t.Errorf("MSD of the origin frame = %v, want 0", res[0])
	}
}

func TestMSDGrows(t *testing.T) {
	frames := makeFrames(t, 40)
	m := NewMSD()
	for i := range frames {
		m.Consume(&frames[i])
	}
	res := m.Result()
	if res[len(res)-1] <= res[0] {
		t.Errorf("MSD did not grow: first %v last %v", res[0], res[len(res)-1])
	}
	for _, v := range res {
		if v < 0 {
			t.Fatalf("negative MSD %v", v)
		}
	}
}

func TestVACFNormalization(t *testing.T) {
	frames := makeFrames(t, 20)
	v := NewVACF(16)
	for i := range frames {
		v.Consume(&frames[i])
	}
	res := v.Result()
	if len(res) == 0 {
		t.Fatal("empty VACF")
	}
	if math.Abs(res[0]-1) > 1e-12 {
		t.Errorf("VACF(0) = %v, want 1 (self-correlation)", res[0])
	}
	// Correlation decays: later values below 1 in magnitude... the
	// liquid decorrelates within a few steps of dt=0.005; check bounds.
	for i, c := range res {
		if math.Abs(c) > 1.2 {
			t.Errorf("VACF[%d] = %v outside plausible range", i, c)
		}
	}
}

func TestVACFLagLimit(t *testing.T) {
	frames := makeFrames(t, 30)
	v := NewVACF(8)
	for i := range frames {
		v.Consume(&frames[i])
	}
	if got := len(v.Result()); got != 8 {
		t.Errorf("VACF recorded %d lags, want max 8", got)
	}
}

func TestRDFNormalizedTail(t *testing.T) {
	frames := makeFrames(t, 10)
	r := NewRDF(32, 0)
	for i := range frames {
		r.Consume(&frames[i])
	}
	res := r.Result()
	if len(res) != 64 {
		t.Fatalf("RDF result length = %d, want 2*32", len(res))
	}
	// g(r) at large r should approach 1 (ideal-gas normalization); use
	// the outer quarter of the hydronium-solvent histogram.
	var tail, n float64
	for b := 24; b < 32; b++ {
		tail += res[b]
		n++
	}
	tail /= n
	if tail < 0.7 || tail > 1.3 {
		t.Errorf("RDF tail g(r) = %v, want ~1", tail)
	}
	// Excluded volume: g(r) ~ 0 at tiny r.
	if res[0] > 0.2 {
		t.Errorf("RDF at contact distance = %v, want ~0 (core repulsion)", res[0])
	}
}

func TestRDFEmptyResult(t *testing.T) {
	r := NewRDF(16, 0)
	res := r.Result()
	if len(res) != 32 {
		t.Errorf("empty RDF result length %d", len(res))
	}
	for _, v := range res {
		if v != 0 {
			t.Error("empty RDF should be all zeros")
		}
	}
}

func TestMSD1D(t *testing.T) {
	frames := makeFrames(t, 25)
	m := NewMSD1D(4)
	for i := range frames {
		m.Consume(&frames[i])
	}
	res := m.Result()
	if len(res) != 4 {
		t.Fatalf("MSD1D bins = %d", len(res))
	}
	var total float64
	for _, v := range res {
		if v < 0 {
			t.Fatal("negative binned MSD")
		}
		total += v
	}
	if total == 0 {
		t.Error("MSD1D all zero after 25 steps of dynamics")
	}
}

func TestMSD2D(t *testing.T) {
	frames := makeFrames(t, 25)
	m := NewMSD2D(3)
	for i := range frames {
		m.Consume(&frames[i])
	}
	res := m.Result()
	if len(res) != 9 {
		t.Fatalf("MSD2D cells = %d, want 9", len(res))
	}
	var nonzero int
	for _, v := range res {
		if v < 0 {
			t.Fatal("negative cell MSD")
		}
		if v > 0 {
			nonzero++
		}
	}
	if nonzero < 5 {
		t.Errorf("only %d/9 MSD2D cells populated", nonzero)
	}
}

func TestWorkCountsPositive(t *testing.T) {
	frames := makeFrames(t, 2)
	for _, name := range Names() {
		a, _ := New(name)
		w := a.Consume(&frames[0])
		if w.Ops <= 0 {
			t.Errorf("%s: non-positive work %v", name, w.Ops)
		}
	}
}

func TestMSDRelativeCostHighest(t *testing.T) {
	// The paper's high-demand analysis: full MSD's modeled runtime per
	// frame must exceed every other analysis's.
	frames := makeFrames(t, 2)
	cost := func(name string) float64 {
		a, _ := New(name)
		w := a.Consume(&frames[0])
		return w.Ops * a.Profile().SecondsPerOp
	}
	msd := cost("msd")
	for _, other := range []string{"rdf", "vacf", "msd1d", "msd2d"} {
		if c := cost(other); c >= msd {
			t.Errorf("%s per-frame cost %v >= msd %v", other, c, msd)
		}
	}
}

func TestBinIndexBounds(t *testing.T) {
	for _, x := range []float64{-1, 0, 0.5, 9.99, 10, 11} {
		b := binIndex(x, 10, 8)
		if b < 0 || b >= 8 {
			t.Errorf("binIndex(%v) = %d out of range", x, b)
		}
	}
	if binIndex(5, 0, 8) != 0 {
		t.Error("zero box should map to bin 0")
	}
}

func TestConstructorPanics(t *testing.T) {
	cases := []func(){
		func() { NewRDF(0, 0) },
		func() { NewVACF(0) },
		func() { NewMSD1D(0) },
		func() { NewMSD2D(-1) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("constructor %d should panic on bad bins", i)
				}
			}()
			fn()
		}()
	}
}

// Policy comparison at scale: the four power-management strategies of
// the paper on a 128-node LAMMPS+MSD job (the scale co-simulation), with
// a per-synchronization view of how each strategy moves power — a
// runnable counterpart to the paper's Figures 3a and 4.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"seesaw/internal/bench"
	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

func main() {
	spec := workload.Spec{
		SimNodes: 64, AnaNodes: 64,
		Dim: 16, J: 1, Steps: 400,
		Analyses: workload.Tasks("msd"),
	}
	cons := core.Constraints{Budget: units.Watts(110 * 128), MinCap: 98, MaxCap: 215}

	fmt.Println("LAMMPS + full MSD on 128 nodes, 110 W per node budget, 400 Verlet steps")
	fmt.Println()

	tbl := trace.NewTable("Policy comparison (paired seeds)",
		"policy", "runtime (s)", "vs static", "mean slack", "final sim/ana caps (W)")

	var staticTime units.Seconds
	for _, name := range append([]string{"static"}, bench.PolicyNames()...) {
		policy, err := bench.NewPolicy(name, cons, 1)
		if err != nil {
			log.Fatal(err)
		}
		res, err := cosim.Run(context.Background(), cosim.Config{
			Spec:        spec,
			Policy:      policy,
			Constraints: cons,
			CapMode:     cosim.CapLong,
			Seed:        7,
			RunSeed:     8,
			Noise:       machine.DefaultNoise(),
		})
		if err != nil {
			log.Fatal(err)
		}
		if name == "static" {
			staticTime = res.TotalTime
		}
		imp := (float64(staticTime) - float64(res.TotalTime)) / float64(staticTime) * 100
		last := res.SyncLog.Records[res.SyncLog.Len()-1]
		tbl.AddRow(name,
			fmt.Sprintf("%.1f", float64(res.TotalTime)),
			fmt.Sprintf("%+.2f%%", imp),
			fmt.Sprintf("%.1f%%", res.SyncLog.MeanSlackFrom(10)*100),
			fmt.Sprintf("%.1f / %.1f", float64(last.SimCap), float64(last.AnaCap)))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("expected shape (paper Section VII-B): seesaw converges to a low-slack")
	fmt.Println("allocation favoring the analysis; the time-aware balancer is lured the")
	fmt.Println("wrong way by the startup transient and freezes; the power-aware scheme")
	fmt.Println("chases measurement noise and loses outright.")
}

package mpi

import (
	"fmt"
	"testing"
)

// Scale microbenchmarks for the virtual-MPI substrate. Each b.N
// iteration is one operation issued by every rank (collectives) or one
// fan-in round (point-to-point), so ns/op is the wall-clock cost of one
// substrate operation at that rank count. `make bench-scale` runs them
// at full scale; `make check` smoke-runs them with -benchtime 1x.

// benchCollectiveRanks are the collective scale points: the paper's
// largest Theta partition (1024) plus the 4096-rank frontier, with 256
// as the small anchor.
var benchCollectiveRanks = []int{256, 1024, 4096}

// BenchmarkBarrier measures the pure rendezvous cost: no payload, no
// reduction work, so it isolates the wakeup path.
func BenchmarkBarrier(b *testing.B) {
	for _, n := range benchCollectiveRanks {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			if err := Run(n, DefaultCost(), func(r *Rank) {
				for i := 0; i < b.N; i++ {
					r.World().Barrier()
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllreduceSum measures the dominant collective of the in-situ
// loop (thermodynamic output and PoLiMER exchanges are allreduce-shaped)
// with the small float64 vectors those call sites use.
func BenchmarkAllreduceSum(b *testing.B) {
	for _, n := range benchCollectiveRanks {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			if err := Run(n, DefaultCost(), func(r *Rank) {
				vals := []float64{float64(r.WorldRank()), 1, 2}
				want := float64(n) * (float64(n) - 1) / 2
				for i := 0; i < b.N; i++ {
					got := r.World().AllreduceSum(vals)
					if got[0] != want {
						panic(fmt.Sprintf("allreduce sum = %v, want %v", got[0], want))
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkAllreduceMax exercises the other typed reduction the power
// stack issues on every synchronization (clock merging).
func BenchmarkAllreduceMax(b *testing.B) {
	for _, n := range benchCollectiveRanks {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			if err := Run(n, DefaultCost(), func(r *Rank) {
				vals := []float64{float64(r.WorldRank())}
				for i := 0; i < b.N; i++ {
					got := r.World().AllreduceMax(vals)
					if got[0] != float64(n-1) {
						panic("allreduce max wrong")
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkFanInRecv measures the mailbox under the in-situ sharing
// pattern: many simulation ranks feed one analysis rank. Each iteration
// has every sender deposit one tagged message and the receiver drain
// them in rank order, so a linear-scan mailbox pays O(pending) per
// match while an indexed one pays O(1).
func BenchmarkFanInRecv(b *testing.B) {
	for _, senders := range []int{255, 1023} {
		b.Run(fmt.Sprintf("senders=%d", senders), func(b *testing.B) {
			b.ReportAllocs()
			n := senders + 1
			if err := Run(n, DefaultCost(), func(r *Rank) {
				const tag = 7
				for i := 0; i < b.N; i++ {
					if r.WorldRank() == 0 {
						for src := 1; src < n; src++ {
							if got := r.Recv(src, tag).(int); got != src {
								panic("fan-in payload mismatch")
							}
						}
					} else {
						r.Send(0, tag, r.WorldRank(), 8)
					}
					r.World().Barrier()
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkRecvDeepQueue receives against a deep backlog of non-matching
// messages: 512 tags are deposited and drained in reverse order, the
// worst case for a front-to-back queue scan.
func BenchmarkRecvDeepQueue(b *testing.B) {
	const depth = 512
	b.ReportAllocs()
	if err := Run(2, DefaultCost(), func(r *Rank) {
		for i := 0; i < b.N; i++ {
			if r.WorldRank() == 0 {
				for tag := 0; tag < depth; tag++ {
					r.Send(1, tag, tag, 8)
				}
			} else {
				for tag := depth - 1; tag >= 0; tag-- {
					if got := r.Recv(0, tag).(int); got != tag {
						panic("deep-queue payload mismatch")
					}
				}
			}
			r.World().Barrier()
		}
	}); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSplit measures sub-communicator construction at scale (the
// in-situ driver splits the world once per job).
func BenchmarkSplit(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("ranks=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			if err := Run(n, DefaultCost(), func(r *Rank) {
				for i := 0; i < b.N; i++ {
					sub := r.World().Split(r.WorldRank()%2, r.WorldRank())
					if sub.Size() != n/2 {
						panic("split size wrong")
					}
				}
			}); err != nil {
				b.Fatal(err)
			}
		})
	}
}

package workload

import (
	"testing"
	"testing/quick"

	"seesaw/internal/machine"
	"seesaw/internal/units"
)

func refSpec() Spec {
	return Spec{SimNodes: 64, AnaNodes: 64, Dim: 16, J: 1, Steps: 40, Analyses: Tasks("msd")}
}

func TestValidate(t *testing.T) {
	if err := refSpec().Validate(); err != nil {
		t.Errorf("reference spec invalid: %v", err)
	}
	bad := []Spec{
		{SimNodes: 0, AnaNodes: 1, Dim: 16, Steps: 10, Analyses: Tasks("msd")},
		{SimNodes: 1, AnaNodes: 1, Dim: 0, Steps: 10, Analyses: Tasks("msd")},
		{SimNodes: 1, AnaNodes: 1, Dim: 16, Steps: 0, Analyses: Tasks("msd")},
		{SimNodes: 1, AnaNodes: 1, Dim: 16, Steps: 10},
		{SimNodes: 1, AnaNodes: 1, Dim: 16, Steps: 10, Analyses: Tasks("bogus")},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should be invalid", i)
		}
	}
}

func TestTasksAndAll(t *testing.T) {
	ts := Tasks("rdf", "vacf")
	if len(ts) != 2 || ts[0].Name != "rdf" || ts[1].Name != "vacf" {
		t.Errorf("Tasks = %v", ts)
	}
	if got := len(AllAnalyses()); got != 5 {
		t.Errorf("AllAnalyses has %d entries, want 5", got)
	}
	if got := len(AllAnalysesForDim(16)); got != 5 {
		t.Errorf("AllAnalysesForDim(16) = %d, want 5 (includes full MSD)", got)
	}
	for _, a := range AllAnalysesForDim(36) {
		if a.Name == "msd" {
			t.Error("full MSD must be excluded at dim > 16 (memory limit)")
		}
	}
}

func TestSyncSchedule(t *testing.T) {
	s := refSpec()
	s.J = 5
	s.Steps = 20
	got := s.SyncSchedule()
	want := []int{5, 10, 15, 20}
	if len(got) != len(want) {
		t.Fatalf("schedule = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", got, want)
		}
	}
}

func TestSyncScheduleUnion(t *testing.T) {
	s := refSpec()
	s.Steps = 12
	s.Analyses = []AnalysisTask{{Name: "rdf", Interval: 3}, {Name: "vacf", Interval: 4}}
	got := s.SyncSchedule()
	want := []int{3, 4, 6, 8, 9, 12}
	if len(got) != len(want) {
		t.Fatalf("schedule = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("schedule = %v, want %v", got, want)
		}
	}
}

func TestSimIntervalPhases(t *testing.T) {
	s := refSpec()
	s.NoSetupTransient = true
	phases := s.SimInterval(0, 1)
	if len(phases) != len(simPhaseDefs) {
		t.Fatalf("got %d phases, want %d", len(phases), len(simPhaseDefs))
	}
	var total units.Seconds
	for _, p := range phases {
		if p.Nominal < 0 {
			t.Errorf("phase %s negative nominal", p.Name)
		}
		total += p.Nominal
	}
	// Reference calibration: ~4.1 s between synchronizations (Fig 4d).
	if total < 3.5 || total > 4.7 {
		t.Errorf("reference interval = %v, want ~4.1 s", total)
	}
}

func TestSimIntervalMultiStep(t *testing.T) {
	s := refSpec()
	s.NoSetupTransient = true
	one := intervalTotal(s.SimInterval(0, 1))
	five := intervalTotal(s.SimIntervalIdx(0, 5, 0))
	// Five steps share a single synchronization's sync-only phases, so
	// the total is less than 5x one full step but more than 3x (the
	// per-step integrate/force/output parts repeat five times).
	if five <= one*3 || five >= one*5 {
		t.Errorf("5-step interval %v not in (3x, 5x) of one step %v", five, one)
	}
}

func TestSimIntervalEmpty(t *testing.T) {
	s := refSpec()
	if got := s.SimInterval(5, 5); got != nil {
		t.Error("empty step range should produce no phases")
	}
}

func TestSetupTransient(t *testing.T) {
	s := refSpec()
	with := intervalTotal(s.SimIntervalIdx(0, 1, 0))
	without := intervalTotal(s.SimIntervalIdx(0, 1, 10)) // past the transient
	if with <= without {
		t.Errorf("first interval %v should carry setup overhead over %v", with, without)
	}
	s.NoSetupTransient = true
	disabled := intervalTotal(s.SimIntervalIdx(0, 1, 0))
	if disabled != without {
		t.Errorf("disabled transient: %v != %v", disabled, without)
	}
}

func TestAnaInterval(t *testing.T) {
	s := refSpec()
	phases := s.AnaInterval(1)
	// Housekeeping (2) + msd.
	if len(phases) != 3 {
		t.Fatalf("ana phases = %d, want 3", len(phases))
	}
	found := false
	for _, p := range phases {
		if p.Name == "msd" {
			found = true
		}
	}
	if !found {
		t.Error("msd phase missing")
	}
}

func TestAnaIntervalRespectsPerAnalysisJ(t *testing.T) {
	s := refSpec()
	s.Analyses = []AnalysisTask{{Name: "rdf", Interval: 1}, {Name: "msd", Interval: 4}}
	if got := len(s.AnaInterval(1)); got != 3 { // hk2 + rdf
		t.Errorf("step 1 phases = %d, want 3", got)
	}
	if got := len(s.AnaInterval(4)); got != 4 { // hk2 + rdf + msd
		t.Errorf("step 4 phases = %d, want 4", got)
	}
}

func TestWorkScalesWithDim(t *testing.T) {
	small := refSpec()
	small.NoSetupTransient = true
	big := small
	big.Dim = 32 // 8x the atoms
	ts := intervalTotal(small.SimInterval(0, 1))
	tb := intervalTotal(big.SimInterval(0, 1))
	if float64(tb) < 4*float64(ts) {
		t.Errorf("dim 32 interval %v should be much larger than dim 16's %v", tb, ts)
	}
}

func TestWorkShrinksWithNodes(t *testing.T) {
	small := refSpec()
	small.NoSetupTransient = true
	big := small
	big.SimNodes, big.AnaNodes = 512, 512
	ts := intervalTotal(small.SimInterval(0, 1))
	tb := intervalTotal(big.SimInterval(0, 1))
	if tb >= ts {
		t.Errorf("1024-node interval %v should be smaller than 128-node %v (strong scaling)", tb, ts)
	}
}

func TestSensitivityDilutionAtScale(t *testing.T) {
	ref := refSpec()
	big := ref
	big.SimNodes, big.AnaNodes = 512, 512
	refPhases := ref.AnaInterval(1)
	bigPhases := big.AnaInterval(1)
	for i := range refPhases {
		if bigPhases[i].Sensitivity > refPhases[i].Sensitivity {
			t.Errorf("phase %s sensitivity grew at scale: %v -> %v",
				refPhases[i].Name, refPhases[i].Sensitivity, bigPhases[i].Sensitivity)
		}
	}
}

func TestDemandScaling(t *testing.T) {
	ref := refSpec()
	ref.NoSetupTransient = true
	big := ref
	big.Dim = 48
	refForce := findPhase(t, ref.SimInterval(0, 1), "force")
	bigForce := findPhase(t, big.SimInterval(0, 1), "force")
	if bigForce.Demand <= refForce.Demand {
		t.Errorf("force demand should grow with dim: %v -> %v", refForce.Demand, bigForce.Demand)
	}
	if bigForce.Demand > refForce.Demand+20 {
		t.Errorf("force demand grew beyond its scale bound: %v", bigForce.Demand)
	}
}

func TestScaleSensBounds(t *testing.T) {
	f := func(dim uint8, nodes uint8) bool {
		s := Spec{
			SimNodes: int(nodes%200) + 1, AnaNodes: 1,
			Dim: int(dim%60) + 1, J: 1, Steps: 1,
			Analyses: Tasks("rdf"),
		}
		for _, p := range s.AnaInterval(1) {
			if p.Sensitivity < 0 || p.Sensitivity > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func intervalTotal(ps []machine.Phase) units.Seconds {
	var t units.Seconds
	for _, p := range ps {
		t += p.Nominal
	}
	return t
}

func findPhase(t *testing.T, ps []machine.Phase, name string) machine.Phase {
	t.Helper()
	for _, p := range ps {
		if p.Name == name {
			return p
		}
	}
	t.Fatalf("phase %q not found", name)
	return machine.Phase{}
}

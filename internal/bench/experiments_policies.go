// Experiments comparing the power-management policies: Figures 3, 4 and
// 5 of the paper.
package bench

import (
	"context"
	"fmt"
	"io"

	"seesaw/internal/cosim"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig3a",
		Title: "Fig 3a: policy performance vs the static baseline for different analyses (128 nodes, w=1, j=1, median of 3)",
		Run:   runFig3a,
	})
	register(Experiment{
		ID:    "fig3b",
		Title: "Fig 3b: policy performance at scale (256-1024 nodes, median of 3)",
		Run:   runFig3b,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Fig 4: per-synchronization power allocation and normalized slack, LAMMPS+MSD on 128 nodes (dim=16, j=1)",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "fig5",
		Title: "Fig 5: allocated vs measured power at 1024 nodes (all analyses), SeeSAw vs time-aware",
		Run:   runFig5,
	})
}

// fig3aCases are the analysis configurations of Figure 3a. Full MSD is
// limited to dim=16 by its memory needs; its subcomponents use dim=16
// for comparability (Section VII-B); the light analyses use dim=36.
type analysisCase struct {
	label    string
	dim      int
	analyses []workload.AnalysisTask
}

func fig3aCases() []analysisCase {
	return []analysisCase{
		{"rdf", defaultMidDim, workload.Tasks("rdf")},
		{"vacf", defaultMidDim, workload.Tasks("vacf")},
		{"msd1d", defaultDim, workload.Tasks("msd1d")},
		{"msd2d", defaultDim, workload.Tasks("msd2d")},
		{"msd (full)", defaultDim, workload.Tasks("msd")},
		{"all", defaultDim, workload.AllAnalyses()},
	}
}

func runFig3a(ctx context.Context, o Options, w io.Writer) error {
	runs := o.runs(defaultRuns)
	steps := o.steps(defaultSteps)

	e := newEnum("fig3a")
	var getters [][]func() (float64, float64) // [case][policy]
	for _, cs := range fig3aCases() {
		var row []func() (float64, float64)
		for _, p := range PolicyNames() {
			row = append(row, e.paired(fmt.Sprintf("%s/%s", cs.label, p), cell{
				spec:   spec128(cs.dim, 1, steps, cs.analyses),
				policy: p, window: 1, telemetry: o.Telemetry,
			}, runs, o.BaseSeed+31))
		}
		getters = append(getters, row)
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Fig 3a: % runtime improvement over static baseline (negative = slowdown)",
		append([]string{"analysis (dim)"}, PolicyNames()...)...)
	for i, cs := range fig3aCases() {
		row := []any{fmt.Sprintf("%s (dim=%d)", cs.label, cs.dim)}
		for _, g := range getters[i] {
			imp, _ := g()
			row = append(row, fmt.Sprintf("%+.2f%%", imp))
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

func runFig3b(ctx context.Context, o Options, w io.Writer) error {
	runs := o.runs(defaultRuns)
	steps := o.steps(defaultSteps)

	cases := []analysisCase{
		{"msd (full)", defaultDim, workload.Tasks("msd")},
		{"all", defaultDim, workload.AllAnalyses()},
		{"vacf", defaultBigDim, workload.Tasks("vacf")},
	}
	scales := []int{256, 512, 1024}

	e := newEnum("fig3b")
	var getters [][]func() (float64, float64) // [case*scale][policy]
	for _, cs := range cases {
		for _, n := range scales {
			var row []func() (float64, float64)
			for _, p := range PolicyNames() {
				row = append(row, e.paired(fmt.Sprintf("%s/n%d/%s", cs.label, n, p), cell{
					spec:   specAt(n, cs.dim, 1, steps, cs.analyses),
					policy: p, window: 1, telemetry: o.Telemetry,
				}, runs, o.BaseSeed+37))
			}
			getters = append(getters, row)
		}
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Fig 3b: % runtime improvement over static baseline at scale",
		append([]string{"workload", "nodes"}, PolicyNames()...)...)
	i := 0
	for _, cs := range cases {
		for _, n := range scales {
			row := []any{fmt.Sprintf("%s (dim=%d)", cs.label, cs.dim), n}
			for _, g := range getters[i] {
				imp, _ := g()
				row = append(row, fmt.Sprintf("%+.2f%%", imp))
			}
			tbl.AddRow(row...)
			i++
		}
	}
	return tbl.Render(w)
}

// runFig4 shows the per-synchronization dynamics of the three policies
// on LAMMPS+MSD at 128 nodes, plus the baseline's first-10-sync profile
// (sub-figures d and e).
func runFig4(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	spec := spec128(defaultDim, 1, steps, workload.Tasks("msd"))

	policies := PolicyNames()
	e := newEnum("fig4")
	resCell := func(p string) func() *cosim.Result {
		return addCell(e, p, o.BaseSeed+41, func(ctx context.Context) (*cosim.Result, error) {
			return runCell(ctx, cell{spec: spec, policy: p, window: 1,
				jobSeed: o.BaseSeed + 41, runSeed: o.BaseSeed + 42, telemetry: o.Telemetry})
		})
	}
	var getters []func() *cosim.Result
	for _, p := range policies {
		getters = append(getters, resCell(p))
	}
	getBase := resCell("static")
	if err := e.run(ctx, o); err != nil {
		return err
	}

	for i, p := range policies {
		res := getters[i]()
		tbl := trace.NewTable(
			fmt.Sprintf("Fig 4 (%s): power allocated per node at each synchronization", p),
			"step", "sim cap (W)", "ana cap (W)", "sim measured (W)", "ana measured (W)", "slack")
		for i, r := range res.SyncLog.Records {
			if i >= 30 && i%25 != 0 {
				continue // elide the steady state
			}
			tbl.AddRow(r.Step, r.SimCap, r.AnaCap, r.SimPower, r.AnaPower, fmt.Sprintf("%.3f", r.Slack()))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s: mean slack from step %d = %.1f%% (paper: seesaw ~0.8%%, time-aware ~12%%, power-aware fluctuating 0.2-40%%)\n\n",
			p, slackFromStep, res.SyncLog.MeanSlackFrom(slackFromStep)*100); err != nil {
			return err
		}
	}

	// Sub-figures d/e: baseline time and power of the first 10
	// synchronizations without power management.
	base := getBase()
	tbl := trace.NewTable("Fig 4d/e: baseline time and power between the first 10 synchronizations (110 W per node)",
		"step", "sim time (s)", "ana time (s)", "sim power (W)", "ana power (W)")
	for i, r := range base.SyncLog.Records {
		if i >= 10 {
			break
		}
		tbl.AddRow(r.Step, r.SimTime, r.AnaTime, r.SimPower, r.AnaPower)
	}
	return tbl.Render(w)
}

// runFig5 contrasts allocated and measured power at 1024 nodes for
// SeeSAw and the time-aware approach with all analyses.
func runFig5(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	spec := specAt(2*nodes1024Half, defaultDim, 1, steps, workload.AllAnalyses())

	policies := []string{"seesaw", "time-aware"}
	e := newEnum("fig5")
	var getters []func() *cosim.Result
	for _, p := range policies {
		p := p
		getters = append(getters, addCell(e, p, o.BaseSeed+51, func(ctx context.Context) (*cosim.Result, error) {
			return runCell(ctx, cell{spec: spec, policy: p, window: 1,
				jobSeed: o.BaseSeed + 51, runSeed: o.BaseSeed + 52, telemetry: o.Telemetry})
		}))
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	for i, p := range policies {
		res := getters[i]()
		tbl := trace.NewTable(
			fmt.Sprintf("Fig 5 (%s): allocated vs measured power per node at 1024 nodes", p),
			"step", "sim alloc (W)", "sim measured (W)", "ana alloc (W)", "ana measured (W)", "slack")
		for i, r := range res.SyncLog.Records {
			if i%10 != 0 {
				continue
			}
			tbl.AddRow(r.Step, r.SimCap, r.SimPower, r.AnaCap, r.AnaPower, fmt.Sprintf("%.3f", r.Slack()))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s: total %.1f s, mean slack %.1f%%\n\n",
			p, float64(res.TotalTime), res.SyncLog.MeanSlackFrom(slackFromStep)*100); err != nil {
			return err
		}
	}
	return nil
}

// The shared JobState cache: one entry per distinct job key, built
// once under a per-key singleflight and then read-only, with an LRU
// bound on the memoized noise-trace memory. Grid sweeps repeat a small
// set of jobs thousands of times, so the cache pays each job's
// schedule/phase-table construction and noise-trace recording exactly
// once; the byte bound keeps an adversarial sweep (thousands of
// distinct jobs, each with megabytes of recorded traces) from growing
// without limit — cold entries fall off the tail and rebuild on the
// next miss.
package rollout

import (
	"sync"

	"seesaw/internal/cosim"
	"seesaw/internal/telemetry"
)

// DefaultCacheBytes bounds a StateCache's accounted memory unless the
// caller chooses otherwise: 512 MiB holds hundreds of 1024-node jobs
// at the benchmark episode shape and a dozen-plus at the paper's full
// 400-step length.
const DefaultCacheBytes int64 = 512 << 20

// entrySizeFloor is the accounted size of an entry whose job records
// no noise traces (faulted/traced/NoNoiseMemo jobs): the phase tables
// and schedule are small but not free, and a zero size would let
// unbounded numbers of such entries pile up below the byte bound.
const entrySizeFloor int64 = 16 << 10

// StateCache shares cosim.JobState precompute across environments: one
// entry per distinct job key (workload, topology seeds, noise, faults,
// classes), built once and then read-only. A cache is safe for
// concurrent use; Batch hands one cache to every worker's Env so a grid
// sweep pays each job's schedule/phase-table construction — and its
// noise-trace recording — exactly once.
//
// The cache is bounded: each entry is accounted at its noise-trace
// footprint (JobState.TraceBytes, floored for trace-free jobs) and the
// least-recently-used entries are evicted once the total exceeds the
// byte budget. Eviction only drops the cache's reference — environments
// holding the JobState keep using it; the next miss on that key
// rebuilds. Concurrent misses on one key share a single build
// (singleflight): latecomers block until the builder finishes and see
// its result, so no trace is ever recorded twice.
type StateCache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64
	entries map[string]*cacheEntry
	// LRU list, most recent at head. In-flight entries (still
	// building) live in the map but not in the list, so eviction can
	// never race a build.
	head, tail *cacheEntry

	hits, misses, evictions uint64

	// Telemetry handles, resolved once by SetTelemetry; nil without a
	// hub. The local counters above stay authoritative for Stats.
	hitsM, missesM, evictionsM, bytesM *telemetry.Metric

	// build is the JobState constructor, a seam for the singleflight
	// and eviction tests; nil means cosim.NewJobState.
	build func(cosim.Config) (*cosim.JobState, error)
}

// cacheEntry is one key's slot. ready is closed when st/err are final;
// linked/size are guarded by the cache mutex.
type cacheEntry struct {
	key        string
	st         *cosim.JobState
	err        error
	size       int64
	ready      chan struct{}
	prev, next *cacheEntry
	linked     bool
}

// NewStateCache returns an empty cache bounded at DefaultCacheBytes.
func NewStateCache() *StateCache { return NewStateCacheBytes(DefaultCacheBytes) }

// NewStateCacheBytes returns an empty cache bounded at maxBytes of
// accounted JobState memory; maxBytes <= 0 means DefaultCacheBytes.
// The newest entry is always retained, so a single job larger than the
// bound still caches (and evicts everything else).
func NewStateCacheBytes(maxBytes int64) *StateCache {
	if maxBytes <= 0 {
		maxBytes = DefaultCacheBytes
	}
	return &StateCache{max: maxBytes, entries: map[string]*cacheEntry{}}
}

// SetTelemetry mirrors the cache's counters into the hub's metric
// registry (rollout_trace_cache_{hits,misses,evictions}_total and the
// rollout_trace_cache_bytes gauge). Call before the cache is shared;
// a nil hub is a no-op.
func (c *StateCache) SetTelemetry(h *telemetry.Hub) {
	if h == nil {
		return
	}
	reg := h.Registry()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hitsM = reg.Counter("rollout_trace_cache_hits_total",
		"JobState cache lookups served from a cached entry.").With()
	c.missesM = reg.Counter("rollout_trace_cache_misses_total",
		"JobState cache lookups that built (or joined a build of) a new entry.").With()
	c.evictionsM = reg.Counter("rollout_trace_cache_evictions_total",
		"JobState cache entries dropped by the LRU byte bound.").With()
	c.bytesM = reg.Gauge("rollout_trace_cache_bytes",
		"Accounted bytes of cached JobState precompute (noise traces dominate).").With()
}

// CacheStats is a point-in-time summary of a cache's counters.
type CacheStats struct {
	// Hits and Misses count lookups; a miss that joined another
	// goroutine's in-flight build still counts as a miss (the entry was
	// not yet usable), but no duplicate build ran.
	Hits, Misses uint64
	// Evictions counts entries dropped by the byte bound.
	Evictions uint64
	// Bytes is the currently accounted memory; Entries the live count.
	Bytes   int64
	Entries int
}

// Stats returns the cache's current counters.
func (c *StateCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Misses: c.misses, Evictions: c.evictions,
		Bytes: c.bytes, Entries: len(c.entries),
	}
}

// unlink removes e from the LRU list.
func (c *StateCache) unlink(e *cacheEntry) {
	if !e.linked {
		return
	}
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
}

// pushFront makes e the most-recently-used entry.
func (c *StateCache) pushFront(e *cacheEntry) {
	e.prev, e.next = nil, c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
	e.linked = true
}

// evictLocked drops least-recently-used entries until the accounted
// bytes fit the bound, always sparing the head (the entry that just
// missed in — a job larger than the whole bound must still cache).
func (c *StateCache) evictLocked() {
	for c.bytes > c.max && c.tail != nil && c.tail != c.head {
		e := c.tail
		c.unlink(e)
		delete(c.entries, e.key)
		c.bytes -= e.size
		c.evictions++
		if c.evictionsM != nil {
			c.evictionsM.Inc()
		}
	}
	if c.bytesM != nil {
		c.bytesM.Set(float64(c.bytes))
	}
}

// state returns the cached JobState for key, building it from cfg on
// first use. Concurrent callers of one key share a single build.
func (c *StateCache) state(key string, cfg cosim.Config) (*cosim.JobState, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		if e.linked {
			c.unlink(e)
			c.pushFront(e)
			c.hits++
			if c.hitsM != nil {
				c.hitsM.Inc()
			}
			c.mu.Unlock()
			return e.st, e.err
		}
		// In-flight: join the build.
		c.misses++
		if c.missesM != nil {
			c.missesM.Inc()
		}
		c.mu.Unlock()
		<-e.ready
		return e.st, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = e
	c.misses++
	if c.missesM != nil {
		c.missesM.Inc()
	}
	build := c.build
	c.mu.Unlock()

	if build == nil {
		build = cosim.NewJobState
	}
	st, err := build(cfg)

	c.mu.Lock()
	e.st, e.err = st, err
	if err != nil {
		// Failed builds do not occupy the cache; the key stays buildable
		// (and re-fails) on the next lookup.
		delete(c.entries, e.key)
	} else {
		e.size = st.TraceBytes()
		if e.size < entrySizeFloor {
			e.size = entrySizeFloor
		}
		c.bytes += e.size
		c.pushFront(e)
		c.evictLocked()
	}
	c.mu.Unlock()
	close(e.ready)
	return st, err
}

// Ablation experiments: design choices DESIGN.md calls out, plus the
// paper's future-work extensions (Section VIII) implemented in package
// core. These go beyond the paper's figures; they quantify why SeeSAw is
// built the way it is and what the proposed extensions buy.
package bench

import (
	"context"
	"fmt"
	"io"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/sched"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "abl-ewma",
		Title: "Ablation: SeeSAw with and without the Eq. 3-4 EWMA damping under measurement noise",
		Run:   runAblEWMA,
	})
	register(Experiment{
		ID:    "abl-window",
		Title: "Ablation: measurement window w vs reactivity with an intermittent high-demand analysis",
		Run:   runAblWindow,
	})
	register(Experiment{
		ID:    "abl-hier",
		Title: "Extension: hierarchical (per-node) allocation vs uniform partition caps under node heterogeneity",
		Run:   runAblHier,
	})
	register(Experiment{
		ID:    "abl-explore",
		Title: "Extension: exploration probes vs plain SeeSAw on the low-demand local optimum",
		Run:   runAblExplore,
	})
	register(Experiment{
		ID:    "abl-oracle",
		Title: "Reference: each policy vs the best static split found by exhaustive sweep",
		Run:   runAblOracle,
	})
	register(Experiment{
		ID:    "ext-sched",
		Title: "Extension: system-wide power management across concurrent in-situ jobs",
		Run:   runExtSched,
	})
	register(Experiment{
		ID:    "ext-powershift",
		Title: "Baseline: PowerShift-style offline profiles vs SeeSAw's online feedback",
		Run:   runExtPowerShift,
	})
	register(Experiment{
		ID:    "abl-transient",
		Title: "Ablation: the simulation startup transient's effect on each policy",
		Run:   runAblTransient,
	})
}

// ablRun executes one job with an explicitly constructed policy.
func ablRun(ctx context.Context, spec workload.Spec, policy core.Policy, cons core.Constraints,
	noise machine.NoiseModel, seed uint64) (*cosim.Result, error) {
	return cosim.Run(ctx, cosim.Config{
		Spec: spec, Policy: policy, Constraints: cons,
		CapMode: cosim.CapLong, Seed: seed, RunSeed: seed + 1, Noise: noise,
	})
}

// ablTimeCell enumerates one ablRun cell returning its total time. The
// policy is constructed inside the cell (policies are stateful and must
// not be shared across cells).
func ablTimeCell(e *enum, key string, spec workload.Spec, mk func() core.Policy,
	cons core.Constraints, noise machine.NoiseModel, seed uint64) func() units.Seconds {
	return addCell(e, key, seed, func(ctx context.Context) (units.Seconds, error) {
		res, err := ablRun(ctx, spec, mk(), cons, noise, seed)
		if err != nil {
			return 0, err
		}
		return res.TotalTime, nil
	})
}

// mkStatic adapts core.NewStatic to the policy-factory shape cells use.
func mkStatic() core.Policy { return core.NewStatic() }

// runAblEWMA compares damped vs undamped SeeSAw at increasing
// power-measurement noise: without the EWMA the allocator chases ripple.
func runAblEWMA(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	// A small job: with only 4 nodes per partition the partition-level
	// power average barely filters per-node ripple, so the EWMA is the
	// only guard (at 64+ nodes the averaging itself hides this effect).
	spec := specAt(8, defaultDim, 1, steps, workload.Tasks("msd"))
	cons := constraintsFor(8, defaultCap)
	sigmas := []float64{0.0, 0.035, 0.10}

	type row struct {
		base, with, without func() units.Seconds
	}
	e := newEnum("abl-ewma")
	var rows []row
	for _, sigma := range sigmas {
		noise := machine.DefaultNoise()
		noise.PowerSigma = sigma
		mkSeeSAw := func(noEWMA bool) func() core.Policy {
			return func() core.Policy {
				return core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1, NoEWMA: noEWMA})
			}
		}
		prefix := fmt.Sprintf("sigma%.3f", sigma)
		rows = append(rows, row{
			base:    ablTimeCell(e, prefix+"/static", spec, mkStatic, cons, noise, o.BaseSeed+201),
			with:    ablTimeCell(e, prefix+"/ewma", spec, mkSeeSAw(false), cons, noise, o.BaseSeed+201),
			without: ablTimeCell(e, prefix+"/no-ewma", spec, mkSeeSAw(true), cons, noise, o.BaseSeed+201),
		})
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("SeeSAw improvement over static, with and without EWMA damping (4+4 nodes)",
		"power ripple sigma", "with EWMA", "without EWMA")
	for i, sigma := range sigmas {
		base := rows[i].base()
		tbl.AddRow(fmt.Sprintf("%.3f", sigma),
			fmt.Sprintf("%+.2f%%", improvementPct(base, rows[i].with())),
			fmt.Sprintf("%+.2f%%", improvementPct(base, rows[i].without())))
	}
	return tbl.Render(w)
}

// runAblWindow measures the cost of the w window under heavy
// measurement ripple on a small job (weak partition averaging). The
// result mirrors Figure 6: even then, frequent reallocation wins —
// the Eq. 3-4 EWMA (see abl-ewma) already supplies the noise
// protection, so larger windows only delay adaptation.
func runAblWindow(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	spec := specAt(8, defaultDim, 1, steps, workload.Tasks("msd"))
	cons := constraintsFor(8, defaultCap)
	noise := machine.DefaultNoise()
	noise.PowerSigma = 0.10
	noise.JitterSigma = 0.02
	windows := []int{1, 2, 4, 8, 16}
	runs := o.runs(defaultRuns)

	e := newEnum("abl-window")
	var getters [][]func() float64 // [window][repeat] -> improvement
	for _, win := range windows {
		win := win
		var reps []func() float64
		for r := 0; r < runs; r++ {
			seed := o.BaseSeed + 211 + uint64(r)*defaultSeedGap
			reps = append(reps, addCell(e, fmt.Sprintf("w%d/r%d", win, r), seed,
				func(ctx context.Context) (float64, error) {
					base, err := ablRun(ctx, spec, core.NewStatic(), cons, noise, seed)
					if err != nil {
						return 0, err
					}
					ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: win})
					res, err := ablRun(ctx, spec, ss, cons, noise, seed)
					if err != nil {
						return 0, err
					}
					return improvementPct(base.TotalTime, res.TotalTime), nil
				}))
		}
		getters = append(getters, reps)
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("SeeSAw improvement over static under heavy measurement noise (4+4 nodes)",
		"w", "improvement")
	for i, win := range windows {
		imps := make([]float64, len(getters[i]))
		for r, g := range getters[i] {
			imps[r] = g()
		}
		tbl.AddRow(win, fmt.Sprintf("%+.2f%%", median(imps)))
	}
	return tbl.Render(w)
}

// runAblHier evaluates the hierarchical extension under strong node
// heterogeneity: uniform partition caps leave the slowest node gating
// the partition; per-node offsets claw some of that back.
func runAblHier(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	spec := spec128(defaultMidDim, 1, steps, workload.Tasks("vacf"))
	cons := constraintsFor(2*nodes128Half, defaultCap)
	skews := []float64{0.004, 0.012, 0.025}

	type row struct {
		base, plain, hier func() units.Seconds
	}
	e := newEnum("abl-hier")
	var rows []row
	for _, skew := range skews {
		noise := machine.DefaultNoise()
		noise.SkewSigma = skew
		noise.PowerEffSigma = skew
		prefix := fmt.Sprintf("skew%.3f", skew)
		rows = append(rows, row{
			base: ablTimeCell(e, prefix+"/static", spec, mkStatic, cons, noise, o.BaseSeed+221),
			plain: ablTimeCell(e, prefix+"/plain", spec, func() core.Policy {
				return core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
			}, cons, noise, o.BaseSeed+221),
			hier: ablTimeCell(e, prefix+"/hier", spec, func() core.Policy {
				return core.MustNewHierarchical(DefaultHier(cons))
			}, cons, noise, o.BaseSeed+221),
		})
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Runtime vs static under increasing node heterogeneity (128 nodes, VACF)",
		"node skew sigma", "seesaw", "seesaw-hierarchical")
	for i, skew := range skews {
		base := rows[i].base()
		tbl.AddRow(fmt.Sprintf("%.3f", skew),
			fmt.Sprintf("%+.2f%%", improvementPct(base, rows[i].plain())),
			fmt.Sprintf("%+.2f%%", improvementPct(base, rows[i].hier())))
	}
	return tbl.Render(w)
}

// DefaultHier adapts the hierarchical defaults for the ablation.
func DefaultHier(c core.Constraints) core.HierarchicalConfig {
	cfg := core.DefaultHierarchicalConfig(c)
	return cfg
}

// runAblExplore targets the local optimum of Section VII-B2: plain
// SeeSAw stops giving the simulation power once the analysis's measured
// draw flattens; exploration probes test whether pushing further pays.
func runAblExplore(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	cons := constraintsFor(2*nodes128Half, defaultCap)
	names := []string{"rdf", "vacf"}
	mks := []func() core.Policy{
		func() core.Policy { return core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1}) },
		func() core.Policy { return core.MustNewExploringSeeSAw(core.DefaultExploringConfig(cons)) },
		func() core.Policy { return core.MustNewTimeAware(core.DefaultTimeAwareConfig(cons)) },
	}
	mkLabels := []string{"seesaw", "explore", "time-aware"}

	type row struct {
		base     func() units.Seconds
		policies []func() units.Seconds
	}
	e := newEnum("abl-explore")
	var rows []row
	for _, name := range names {
		spec := spec128(defaultMidDim, 1, steps, workload.Tasks(name))
		noise := machine.DefaultNoise()
		rw := row{base: ablTimeCell(e, name+"/static", spec, mkStatic, cons, noise, o.BaseSeed+231)}
		for i, mk := range mks {
			rw.policies = append(rw.policies,
				ablTimeCell(e, name+"/"+mkLabels[i], spec, mk, cons, noise, o.BaseSeed+231))
		}
		rows = append(rows, rw)
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Low-demand analyses at dim=36: escaping the local optimum",
		"analysis", "seesaw", "seesaw-explore", "time-aware (upper reference)")
	for i, name := range names {
		base := rows[i].base()
		out := []any{name}
		for _, g := range rows[i].policies {
			out = append(out, fmt.Sprintf("%+.2f%%", improvementPct(base, g())))
		}
		tbl.AddRow(out...)
	}
	return tbl.Render(w)
}

// runAblTransient reruns the Fig 4 comparison with the simulation's
// startup overhead disabled, isolating how much of the time-aware
// policy's MSD failure is the transient's doing.
func runAblTransient(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	cons := constraintsFor(2*nodes128Half, defaultCap)
	names := PolicyNames()
	variants := []bool{false, true}

	specFor := func(noTransient bool) workload.Spec {
		spec := spec128(defaultDim, 1, steps, workload.Tasks("msd"))
		spec.NoSetupTransient = noTransient
		return spec
	}
	e := newEnum("abl-transient")
	baseG := map[bool]func() units.Seconds{}
	for _, noTransient := range variants {
		key := fmt.Sprintf("transient%v/static", !noTransient)
		baseG[noTransient] = ablTimeCell(e, key, specFor(noTransient), mkStatic,
			cons, machine.DefaultNoise(), o.BaseSeed+241)
	}
	polG := map[string]map[bool]func() units.Seconds{}
	for _, name := range names {
		name := name
		polG[name] = map[bool]func() units.Seconds{}
		for _, noTransient := range variants {
			key := fmt.Sprintf("transient%v/%s", !noTransient, name)
			polG[name][noTransient] = ablTimeCell(e, key, specFor(noTransient), func() core.Policy {
				pol, err := NewPolicy(name, cons, 1)
				if err != nil {
					panic(err) // names are the fixed set above
				}
				return pol
			}, cons, machine.DefaultNoise(), o.BaseSeed+241)
		}
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Improvement over static on LAMMPS+MSD, with and without the startup transient",
		"policy", "with transient", "without transient")
	for _, name := range names {
		row := []any{name}
		for _, noTransient := range variants {
			base := baseG[noTransient]()
			row = append(row, fmt.Sprintf("%+.2f%%", improvementPct(base, polG[name][noTransient]())))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "the transient is what lures the time-aware balancer the wrong way (Section VII-B1)")
	return err
}

// runAblOracle compares each policy against the best static split found
// by exhaustive sweep — the headroom an online policy could at most
// capture on a stationary workload.
func runAblOracle(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	cons := constraintsFor(2*nodes128Half, defaultCap)
	cases := []analysisCase{
		{"msd (dim=16)", defaultDim, workload.Tasks("msd")},
		{"vacf (dim=36)", defaultMidDim, workload.Tasks("vacf")},
	}
	names := []string{"seesaw", "time-aware"}

	type row struct {
		oracle   func() *cosim.OracleResult
		base     func() units.Seconds
		policies []func() units.Seconds
	}
	e := newEnum("abl-oracle")
	var rows []row
	for _, cs := range cases {
		cs := cs
		spec := spec128(cs.dim, 1, steps, cs.analyses)
		noise := machine.DefaultNoise()
		rw := row{
			oracle: addCell(e, cs.label+"/oracle", o.BaseSeed+251,
				func(ctx context.Context) (*cosim.OracleResult, error) {
					return cosim.FindBestStaticSplit(ctx, cosim.Config{
						Spec: spec, Constraints: cons, CapMode: cosim.CapLong,
						Seed: o.BaseSeed + 251, RunSeed: o.BaseSeed + 252, Noise: noise,
					}, 2)
				}),
			base: ablTimeCell(e, cs.label+"/static", spec, mkStatic, cons, noise, o.BaseSeed+251),
		}
		for _, name := range names {
			name := name
			rw.policies = append(rw.policies, ablTimeCell(e, cs.label+"/"+name, spec, func() core.Policy {
				pol, err := NewPolicy(name, cons, 1)
				if err != nil {
					panic(err)
				}
				return pol
			}, cons, noise, o.BaseSeed+251))
		}
		rows = append(rows, rw)
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Policies vs the best static split (oracle, 2 W sweep; 128 nodes)",
		"workload", "oracle split S/A (W)", "oracle gain", "seesaw", "time-aware")
	for i, cs := range cases {
		oracle := rows[i].oracle()
		base := rows[i].base()
		out := []any{cs.label,
			fmt.Sprintf("%.0f / %.0f", float64(oracle.BestSimCap), float64(oracle.BestAnaCap)),
			fmt.Sprintf("%+.2f%%", oracle.Headroom()*100)}
		for _, g := range rows[i].policies {
			out = append(out, fmt.Sprintf("%+.2f%%", improvementPct(base, g())))
		}
		tbl.AddRow(out...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "the oracle is the best fixed allocation chosen with hindsight; online policies cannot be expected to exceed it")
	return err
}

// runExtSched evaluates the system-wide integration (Section VIII):
// several in-situ jobs share a machine budget; the energy-aware system
// level feeds the compute-hungry job at the light jobs' expense.
func runExtSched(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	mk := func(ctx context.Context, aware bool) (*sched.Result, error) {
		return sched.Run(ctx, sched.Config{
			Jobs: []sched.JobSpec{
				{Name: "md-large (dim=36)", PolicyName: "seesaw", Window: 1, Workload: workload.Spec{
					SimNodes: 32, AnaNodes: 32, Dim: 36, J: 1, Steps: steps,
					Analyses: workload.Tasks("vacf"),
				}},
				{Name: "md-small (dim=16)", PolicyName: "seesaw", Window: 1, Workload: workload.Spec{
					SimNodes: 32, AnaNodes: 32, Dim: 16, J: 1, Steps: steps,
					Analyses: workload.Tasks("msd1d"),
				}},
			},
			MachineBudget: 110 * 128,
			MinCap:        minCap, MaxCap: maxCap,
			Epochs:      8,
			SystemAware: aware,
			Seed:        o.BaseSeed + 261,
			Noise:       machine.DefaultNoise(),
		})
	}
	e := newEnum("ext-sched")
	getStatic := addCell(e, "node-proportional", o.BaseSeed+261,
		func(ctx context.Context) (*sched.Result, error) { return mk(ctx, false) })
	getAware := addCell(e, "energy-aware", o.BaseSeed+261,
		func(ctx context.Context) (*sched.Result, error) { return mk(ctx, true) })
	if err := e.run(ctx, o); err != nil {
		return err
	}
	static, aware := getStatic(), getAware()

	tbl := trace.NewTable("Two concurrent in-situ jobs sharing a 128-node machine budget",
		"job", "node-proportional (s)", "energy-aware system level (s)", "job improvement", "final budget (kW)")
	for i := range static.Jobs {
		s, a := static.Jobs[i], aware.Jobs[i]
		tbl.AddRow(s.Name,
			fmt.Sprintf("%.0f", float64(s.Time)),
			fmt.Sprintf("%.0f", float64(a.Time)),
			fmt.Sprintf("%+.2f%%", improvementPct(s.Time, a.Time)),
			fmt.Sprintf("%.2f", float64(a.Budget)/1000))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "machine makespan: %.0f s -> %.0f s (%+.2f%%)\n",
		float64(static.Makespan), float64(aware.Makespan),
		improvementPct(static.Makespan, aware.Makespan))
	return err
}

// runExtPowerShift contrasts SeeSAw's online feedback with the offline-
// profile approach of the paper's closest related work (PowerShift,
// Zhang & Hoffmann ICPP'18): profiles collected on the matching workload
// perform well; profiles from a different analysis mislead the allocator
// — SeeSAw needs no profiles at all. Two campaigns run in sequence: the
// profiling passes (whose outputs parameterize the PowerShift policies),
// then the production runs.
func runExtPowerShift(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	cons := constraintsFor(2*nodes128Half, defaultCap)
	noise := machine.DefaultNoise()
	profCaps := []units.Watts{98, 104, 110, 116, 122}

	// Offline profiling pass: partition interval times at each cap,
	// measured with short static runs of the given workload.
	type profiles struct {
		sim, ana core.Profile
	}
	profileFor := func(ctx context.Context, tasks []workload.AnalysisTask, dim int) (profiles, error) {
		var simErr error
		sim := core.ProfilePartition(profCaps, func(cap units.Watts) units.Seconds {
			spec := spec128(dim, 1, steps/4, tasks)
			res, err := cosim.Run(ctx, cosim.Config{
				Spec: spec, Constraints: cons, CapMode: cosim.CapLong,
				InitialSimCap: cap, InitialAnaCap: units.ClampWatts(220-cap, minCap, maxCap),
				Seed: o.BaseSeed + 271, RunSeed: o.BaseSeed + 272, Noise: noise,
				Telemetry: o.Telemetry,
			})
			if err != nil {
				simErr = err
				return 1
			}
			var t float64
			for _, r := range res.SyncLog.Records {
				t += float64(r.SimTime)
			}
			return units.Seconds(t / float64(len(res.SyncLog.Records)))
		})
		var anaErr error
		ana := core.ProfilePartition(profCaps, func(cap units.Watts) units.Seconds {
			spec := spec128(dim, 1, steps/4, tasks)
			res, err := cosim.Run(ctx, cosim.Config{
				Spec: spec, Constraints: cons, CapMode: cosim.CapLong,
				InitialSimCap: units.ClampWatts(220-cap, minCap, maxCap), InitialAnaCap: cap,
				Seed: o.BaseSeed + 271, RunSeed: o.BaseSeed + 272, Noise: noise,
				Telemetry: o.Telemetry,
			})
			if err != nil {
				anaErr = err
				return 1
			}
			var t float64
			for _, r := range res.SyncLog.Records {
				t += float64(r.AnaTime)
			}
			return units.Seconds(t / float64(len(res.SyncLog.Records)))
		})
		if simErr != nil {
			return profiles{}, simErr
		}
		return profiles{sim: sim, ana: ana}, anaErr
	}

	target := workload.Tasks("msd") // the production workload
	prof := newEnum("ext-powershift")
	getMatched := addCell(prof, "profile/matched", o.BaseSeed+271,
		func(ctx context.Context) (profiles, error) { return profileFor(ctx, target, defaultDim) })
	getStale := addCell(prof, "profile/stale", o.BaseSeed+271,
		func(ctx context.Context) (profiles, error) {
			// Profiled on a different workload.
			return profileFor(ctx, workload.Tasks("vacf"), defaultMidDim)
		})
	if err := prof.run(ctx, o); err != nil {
		return err
	}
	matched, stale := getMatched(), getStale()

	// Production campaign: the policies consume the captured profiles.
	spec := spec128(defaultDim, 1, steps, target)
	e := newEnum("ext-powershift")
	getBase := ablTimeCell(e, "static", spec, mkStatic, cons, noise, o.BaseSeed+273)
	getPSMatched := ablTimeCell(e, "powershift-matched", spec, func() core.Policy {
		return core.MustNewPowerShift(core.PowerShiftConfig{
			Constraints: cons, SimProfile: matched.sim, AnaProfile: matched.ana, GridStep: 1})
	}, cons, noise, o.BaseSeed+273)
	getPSStale := ablTimeCell(e, "powershift-stale", spec, func() core.Policy {
		return core.MustNewPowerShift(core.PowerShiftConfig{
			Constraints: cons, SimProfile: stale.sim, AnaProfile: stale.ana, GridStep: 1})
	}, cons, noise, o.BaseSeed+273)
	getSeeSAw := ablTimeCell(e, "seesaw", spec, func() core.Policy {
		return core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
	}, cons, noise, o.BaseSeed+273)
	if err := e.run(ctx, o); err != nil {
		return err
	}

	base := getBase()
	tbl := trace.NewTable("Offline profiles vs online feedback on LAMMPS+MSD (128 nodes)",
		"policy", "improvement over static")
	tbl.AddRow("powershift (matching profiles)", fmt.Sprintf("%+.2f%%", improvementPct(base, getPSMatched())))
	tbl.AddRow("powershift (profiles from a different workload)", fmt.Sprintf("%+.2f%%", improvementPct(base, getPSStale())))
	tbl.AddRow("seesaw (no profiles)", fmt.Sprintf("%+.2f%%", improvementPct(base, getSeeSAw())))
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "profiling cost (not charged above): 2 partitions x 5 caps x a quarter-length run each")
	return err
}

// Package workflow turns the repository's single hardwired in-situ
// shape — one simulation partition synchronizing with one analysis
// partition — into a declarative workflow-graph simulator. A Graph names
// stages (with per-synchronization work models and a placement spec) and
// edges (with modeled data volumes and optional staging-transfer costs);
// Compile lays the graph out on the two-partition cluster substrate and
// Run executes it rank-parallel on the virtual-time MPI runtime, with
// every rank managed by PoLiMER so all four power policies apply
// unchanged.
//
// Three placements are modeled (SIM-SITU's taxonomy):
//
//   - space-shared: the stage owns dedicated full nodes, synchronizing
//     with its producers over the interconnect (the paper's setup);
//   - time-shared: the stage's ranks are co-resident with a host
//     stage's ranks, each pair splitting one physical node into two
//     half-node RAPL domains, so the node's power budget is contended by
//     both stages at every allocation;
//   - in-transit: the stage owns dedicated nodes and its inputs arrive
//     through an explicit staging hop — producers pay a transfer phase
//     on the virtual clock (visible to the slack accounting) before each
//     send.
//
// Multi-stage DAGs (sim -> filter -> analyses -> reduce) express
// fan-out/fan-in synchronization: every stage allocates power at every
// synchronization, consumers block on their producers' sends, and the
// per-rank routing generalizes the paper's sim->ana pairing.
package workflow

import (
	"fmt"
	"sort"

	"seesaw/internal/core"
	"seesaw/internal/machine"
	"seesaw/internal/units"
)

// Placement says where a stage's ranks run relative to its producers.
type Placement int

const (
	// SpaceShared gives the stage dedicated full nodes (the default and
	// the paper's setup).
	SpaceShared Placement = iota
	// TimeShared co-locates the stage's ranks with the host stage's
	// ranks: each pair shares one physical node as two half-node RAPL
	// domains whose caps contend for the node's share of the budget.
	TimeShared
	// InTransit gives the stage dedicated nodes reached through a
	// staging hop: inbound edges carry a transfer model and producers
	// execute the transfer as a low-power phase before sending.
	InTransit
)

// String renders the placement in the CLI/jobfile vocabulary.
func (p Placement) String() string {
	switch p {
	case SpaceShared:
		return "space-shared"
	case TimeShared:
		return "time-shared"
	case InTransit:
		return "in-transit"
	}
	return fmt.Sprintf("placement(%d)", int(p))
}

// PlacementNames lists the valid placement spellings.
func PlacementNames() []string {
	return []string{SpaceShared.String(), TimeShared.String(), InTransit.String()}
}

// ParsePlacement parses a placement name, with an error listing the
// valid values.
func ParsePlacement(s string) (Placement, error) {
	switch s {
	case "", SpaceShared.String():
		return SpaceShared, nil
	case TimeShared.String():
		return TimeShared, nil
	case InTransit.String():
		return InTransit, nil
	}
	return 0, fmt.Errorf("workflow: unknown placement %q (valid: %v)", s, PlacementNames())
}

// TransferModel prices one staging hop of an in-transit edge.
type TransferModel struct {
	// Latency is the fixed per-transfer setup cost.
	Latency units.Seconds
	// SecondsPerByte is the inverse bandwidth of the staging path.
	SecondsPerByte float64
}

// Time returns the wire duration of shipping the given volume.
func (m TransferModel) Time(bytes int) units.Seconds {
	return m.Latency + units.Seconds(float64(bytes)*m.SecondsPerByte)
}

// DefaultTransferModel prices the staging hop of an in-transit
// placement: a 1 ms setup plus a 100 MB/s effective staging link (the
// forwarding path is shared and serialized, far below the fabric's
// point-to-point bandwidth).
func DefaultTransferModel() TransferModel {
	return TransferModel{Latency: 1e-3, SecondsPerByte: 1e-8}
}

// WorkModel supplies a stage's declarative per-rank work. The engine
// asks for the phases of each synchronization interval; implementations
// are read-only and shared across the stage's rank goroutines.
type WorkModel interface {
	// StepPhases returns the phases a rank executes for the Verlet steps
	// (prevStep, syncStep], run before the synchronization's power
	// allocation (producer-side work: integration, forces, output).
	StepPhases(prevStep, syncStep, syncIdx int) []machine.Phase
	// SyncPhases returns the phases run after the allocation and after
	// the rank's inbound edges have been received (consumer-side work:
	// rebuilds, analyses).
	SyncPhases(syncIdx, syncStep int) []machine.Phase
}

// Stage is one node set of the workflow graph.
type Stage struct {
	// Name identifies the stage in edges, telemetry and results.
	Name string
	// Role is the stage's partition role for the power policies:
	// RoleSimulation stages lay out first (the substrate's node-id
	// convention) and aggregate into the policies' "sim" partition;
	// everything else is RoleAnalysis.
	Role core.Role
	// Ranks is the stage's rank count (one rank per node, or per
	// half-node under TimeShared).
	Ranks int
	// Placement says where the ranks run; SpaceShared if zero.
	Placement Placement
	// Host names the stage this one time-shares nodes with; required
	// (and only meaningful) when Placement is TimeShared, and the host
	// must have the same rank count.
	Host string
	// Work is the stage's declarative work model, used by the generic
	// per-rank program. Nil means the stage only synchronizes and moves
	// data.
	Work WorkModel
	// Body, when non-nil, replaces the generic program with a custom
	// per-rank body (the insitu driver's real-MD/real-analysis loops).
	// The engine still owns node construction, PoLiMER setup, placement
	// and result aggregation.
	Body func(rc *RankCtx)
}

// Edge is one producer-to-consumer data dependency.
type Edge struct {
	// From and To name the producer and consumer stages.
	From, To string
	// BytesPerRank is the modeled volume each producer rank ships per
	// synchronization.
	BytesPerRank int
	// Transfer, when non-nil, prices the edge as a staging hop: each
	// producer rank executes a transfer phase of Transfer.Time(bytes)
	// before sending. Compile fills it with DefaultTransferModel for
	// edges into an InTransit stage.
	Transfer *TransferModel
}

// Graph is a declarative workflow: stages plus the data edges between
// them. It must be acyclic; fan-out (several edges from one stage) and
// fan-in (several edges into one stage) express DAG synchronization.
type Graph struct {
	// Name labels the graph in errors and telemetry.
	Name   string
	Stages []Stage
	Edges  []Edge
}

// Validate checks the graph's structural invariants with descriptive
// errors; Compile calls it first.
func (g Graph) Validate() error {
	if len(g.Stages) == 0 {
		return fmt.Errorf("workflow: graph %q has no stages", g.Name)
	}
	byName := make(map[string]*Stage, len(g.Stages))
	var simRanks, anaRanks int
	for i := range g.Stages {
		st := &g.Stages[i]
		if st.Name == "" {
			return fmt.Errorf("workflow: graph %q: stage %d has no name", g.Name, i)
		}
		if _, dup := byName[st.Name]; dup {
			return fmt.Errorf("workflow: graph %q: duplicate stage %q", g.Name, st.Name)
		}
		byName[st.Name] = st
		if st.Ranks <= 0 {
			return fmt.Errorf("workflow: stage %q needs positive ranks, got %d", st.Name, st.Ranks)
		}
		switch st.Placement {
		case SpaceShared, InTransit:
			if st.Host != "" {
				return fmt.Errorf("workflow: stage %q is %s but names host %q (hosts apply to time-shared stages only)",
					st.Name, st.Placement, st.Host)
			}
		case TimeShared:
			if st.Host == "" {
				return fmt.Errorf("workflow: time-shared stage %q needs a host stage", st.Name)
			}
		default:
			return fmt.Errorf("workflow: stage %q has unknown placement %v (valid: %v)",
				st.Name, st.Placement, PlacementNames())
		}
		if st.Role == core.RoleSimulation {
			simRanks += st.Ranks
		} else {
			anaRanks += st.Ranks
		}
	}
	if simRanks == 0 || anaRanks == 0 {
		return fmt.Errorf("workflow: graph %q needs at least one simulation-role and one analysis-role stage (have %d sim, %d analysis ranks)",
			g.Name, simRanks, anaRanks)
	}
	hostOf := map[string]string{} // host name -> guest name
	for _, st := range g.Stages {
		if st.Placement != TimeShared {
			continue
		}
		host, ok := byName[st.Host]
		if !ok {
			return fmt.Errorf("workflow: time-shared stage %q names unknown host %q", st.Name, st.Host)
		}
		if host.Name == st.Name {
			return fmt.Errorf("workflow: time-shared stage %q cannot host itself", st.Name)
		}
		if host.Placement == TimeShared {
			return fmt.Errorf("workflow: stage %q time-shares with %q, which is itself time-shared", st.Name, st.Host)
		}
		if host.Ranks != st.Ranks {
			return fmt.Errorf("workflow: time-shared stage %q has %d ranks but host %q has %d (co-residency is pairwise)",
				st.Name, st.Ranks, st.Host, host.Ranks)
		}
		if prev, taken := hostOf[st.Host]; taken {
			return fmt.Errorf("workflow: stages %q and %q both time-share host %q (one guest per node)", prev, st.Name, st.Host)
		}
		hostOf[st.Host] = st.Name
	}
	for i, e := range g.Edges {
		if _, ok := byName[e.From]; !ok {
			return fmt.Errorf("workflow: edge %d references unknown stage %q", i, e.From)
		}
		if _, ok := byName[e.To]; !ok {
			return fmt.Errorf("workflow: edge %d references unknown stage %q", i, e.To)
		}
		if e.From == e.To {
			return fmt.Errorf("workflow: edge %d is a self-loop on stage %q", i, e.From)
		}
		if e.BytesPerRank < 0 {
			return fmt.Errorf("workflow: edge %d (%s->%s) has negative bytes", i, e.From, e.To)
		}
	}
	return g.checkAcyclic()
}

// checkAcyclic rejects dependency cycles via Kahn's algorithm.
func (g Graph) checkAcyclic() error {
	indeg := make(map[string]int, len(g.Stages))
	out := make(map[string][]string, len(g.Stages))
	for _, st := range g.Stages {
		indeg[st.Name] = 0
	}
	for _, e := range g.Edges {
		out[e.From] = append(out[e.From], e.To)
		indeg[e.To]++
	}
	var ready []string
	for _, st := range g.Stages {
		if indeg[st.Name] == 0 {
			ready = append(ready, st.Name)
		}
	}
	done := 0
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		done++
		for _, m := range out[n] {
			if indeg[m]--; indeg[m] == 0 {
				ready = append(ready, m)
			}
		}
	}
	if done != len(g.Stages) {
		var cyc []string
		for name, d := range indeg {
			if d > 0 {
				cyc = append(cyc, name)
			}
		}
		sort.Strings(cyc)
		return fmt.Errorf("workflow: graph %q has a dependency cycle through %v", g.Name, cyc)
	}
	return nil
}

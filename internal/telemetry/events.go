// Structured events: the typed records the power-management stack emits
// at state changes, encoded one JSON object per line (JSONL). Events are
// the "what happened" complement to the registry's "how much/how fast"
// aggregates: a cap write, a policy decision, a synchronization barrier,
// a budget violation, a throttle engagement, a scheduler budget share.
package telemetry

import (
	"encoding/json"
	"fmt"
)

// Event is a structured telemetry record. Kind returns the stable type
// tag used in the JSONL envelope; Decode dispatches on it.
type Event interface {
	Kind() string
}

// CapWritten records a RAPL cap write on one node (after clamping,
// before the actuation latency elapses).
type CapWritten struct {
	// T is the virtual time of the write, in seconds.
	T float64 `json:"t"`
	// Node identifies the domain ("sim"/"ana" partition labels in the
	// drivers).
	Node string `json:"node"`
	// CapW is the requested cap in Watts (0 = cap removed).
	CapW float64 `json:"cap_w"`
	// Short marks a short-term (9.766 ms window) cap write.
	Short bool `json:"short,omitempty"`
}

// Kind implements Event.
func (CapWritten) Kind() string { return "CapWritten" }

// PolicyDecision records one allocation decision: the per-node partition
// caps before and after, the per-node shift magnitude, and its
// direction.
type PolicyDecision struct {
	T      float64 `json:"t"`
	Policy string  `json:"policy"`
	// Step is the synchronization index the decision acted on (1-based).
	Step int `json:"step"`
	// PrevSimCapW/PrevAnaCapW are the per-node caps in force during the
	// measured interval; SimCapW/AnaCapW are the newly emitted caps.
	PrevSimCapW float64 `json:"prev_sim_cap_w"`
	PrevAnaCapW float64 `json:"prev_ana_cap_w"`
	SimCapW     float64 `json:"sim_cap_w"`
	AnaCapW     float64 `json:"ana_cap_w"`
	// ShiftW is the absolute per-node power moved, |SimCapW - PrevSimCapW|.
	ShiftW float64 `json:"shift_w"`
	// Direction is "to-sim", "to-ana" or "hold".
	Direction string `json:"direction"`
}

// Kind implements Event.
func (PolicyDecision) Kind() string { return "PolicyDecision" }

// SyncBarrier records one simulation/analysis synchronization interval:
// the wall time, each partition's busy time, and the normalized slack.
type SyncBarrier struct {
	T        float64 `json:"t"`
	Step     int     `json:"step"`
	WallS    float64 `json:"wall_s"`
	SimS     float64 `json:"sim_s"`
	AnaS     float64 `json:"ana_s"`
	Slack    float64 `json:"slack"`
	Overhead float64 `json:"overhead_s,omitempty"`
}

// Kind implements Event.
func (SyncBarrier) Kind() string { return "SyncBarrier" }

// BudgetViolation records observed power exceeding its limit: a node's
// RAPL window average above the effective cap, or a job's summed power
// above the global budget (Node == "job").
type BudgetViolation struct {
	T         float64 `json:"t"`
	Node      string  `json:"node"`
	ObservedW float64 `json:"observed_w"`
	LimitW    float64 `json:"limit_w"`
}

// Kind implements Event.
func (BudgetViolation) Kind() string { return "BudgetViolation" }

// ThrottleEngaged records a RAPL domain starting to regulate below a
// phase's demand (emitted on the engage transition only; disengagement
// is silent).
type ThrottleEngaged struct {
	T        float64 `json:"t"`
	Node     string  `json:"node"`
	DemandW  float64 `json:"demand_w"`
	AllowedW float64 `json:"allowed_w"`
}

// Kind implements Event.
func (ThrottleEngaged) Kind() string { return "ThrottleEngaged" }

// CampaignCell records one campaign cell completing (or being skipped
// by cancellation): the experiment-matrix progress stream behind
// `seesawctl serve` during an `all -jobs N` run.
type CampaignCell struct {
	// Campaign names the campaign (usually the experiment id).
	Campaign string `json:"campaign"`
	// Key identifies the cell within the campaign.
	Key string `json:"key"`
	// Status is "ok", "error" or "skipped" (never started: cancelled).
	Status string `json:"status"`
	// Seconds is the cell's wall-clock duration (0 when skipped).
	Seconds float64 `json:"seconds"`
	// Done and Total report campaign progress: cells finished so far out
	// of the cells enumerated.
	Done  int `json:"done"`
	Total int `json:"total"`
}

// Kind implements Event.
func (CampaignCell) Kind() string { return "CampaignCell" }

// BudgetShare records the machine-level scheduler (re)assigning one
// job's power budget.
type BudgetShare struct {
	T float64 `json:"t"`
	// Epoch is the scheduler epoch after which the division applies.
	Epoch   int     `json:"epoch"`
	Job     string  `json:"job"`
	BudgetW float64 `json:"budget_w"`
	// Share is the job's fraction of the machine budget.
	Share float64 `json:"share"`
}

// Kind implements Event.
func (BudgetShare) Kind() string { return "BudgetShare" }

// NodeKilled records a fault plan permanently removing a node from the
// membership: it stops executing, draws no power, and the allocators
// redistribute its budget share.
type NodeKilled struct {
	T float64 `json:"t"`
	// Node is the stable node id (cosim node index / insitu world rank).
	Node int `json:"node"`
	// Role is the dead node's partition ("sim"/"ana").
	Role string `json:"role"`
	// Sync is the 1-based synchronization index the kill fired at.
	Sync int `json:"sync"`
	// AliveSim/AliveAna are the partitions' live sizes after the kill.
	AliveSim int `json:"alive_sim"`
	AliveAna int `json:"alive_ana"`
}

// Kind implements Event.
func (NodeKilled) Kind() string { return "NodeKilled" }

// NodeDegraded records a slow-node excursion starting: the node keeps
// executing, but its phase durations scale by Factor until recovery.
type NodeDegraded struct {
	T      float64 `json:"t"`
	Node   int     `json:"node"`
	Role   string  `json:"role"`
	Sync   int     `json:"sync"`
	Factor float64 `json:"factor"`
}

// Kind implements Event.
func (NodeDegraded) Kind() string { return "NodeDegraded" }

// NodeRecovered records a degraded node returning to full speed.
type NodeRecovered struct {
	T    float64 `json:"t"`
	Node int     `json:"node"`
	Role string  `json:"role"`
	Sync int     `json:"sync"`
}

// Kind implements Event.
func (NodeRecovered) Kind() string { return "NodeRecovered" }

// StageStart records one workflow stage beginning its work for a
// synchronization interval (emitted by the stage's first rank only, so
// the stream stays readable at 1024 nodes).
type StageStart struct {
	T float64 `json:"t"`
	// Stage is the workflow-graph stage name ("sim", "filter", ...).
	Stage string `json:"stage"`
	// Sync is the 1-based synchronization index.
	Sync int `json:"sync"`
}

// Kind implements Event.
func (StageStart) Kind() string { return "StageStart" }

// StageEnd records one workflow stage finishing its work for a
// synchronization interval, with the representative rank's cumulative
// busy time.
type StageEnd struct {
	T     float64 `json:"t"`
	Stage string  `json:"stage"`
	Sync  int     `json:"sync"`
	// BusyS is the emitting rank's cumulative busy (phase-execution)
	// time so far.
	BusyS float64 `json:"busy_s"`
}

// Kind implements Event.
func (StageEnd) Kind() string { return "StageEnd" }

// TransferVolume records the modeled data volume of one workflow-graph
// edge at one synchronization (emitted by the producing stage's first
// rank): the edge-wide bytes shipped and the representative rank's time
// spent in the staging transfer phase (zero for edges without a
// transfer model, e.g. space-shared exchanges).
type TransferVolume struct {
	T float64 `json:"t"`
	// Edge names the graph edge as "from->to".
	Edge string `json:"edge"`
	Sync int    `json:"sync"`
	// Bytes is the edge-wide modeled volume (per-rank bytes times
	// producer ranks).
	Bytes int64 `json:"bytes"`
	// Seconds is the producing rank's transfer-phase duration.
	Seconds float64 `json:"seconds"`
}

// Kind implements Event.
func (TransferVolume) Kind() string { return "TransferVolume" }

// envelope is the JSONL wire form: {"kind": "...", "data": {...}}.
type envelope struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Encode renders an event as one JSONL line (without trailing newline).
func Encode(e Event) ([]byte, error) {
	data, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("telemetry: encode %s: %w", e.Kind(), err)
	}
	return json.Marshal(envelope{Kind: e.Kind(), Data: data})
}

// Decode parses one JSONL line back into its typed event.
func Decode(line []byte) (Event, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("telemetry: decode envelope: %w", err)
	}
	var ev Event
	switch env.Kind {
	case "CapWritten":
		ev = &CapWritten{}
	case "PolicyDecision":
		ev = &PolicyDecision{}
	case "SyncBarrier":
		ev = &SyncBarrier{}
	case "BudgetViolation":
		ev = &BudgetViolation{}
	case "ThrottleEngaged":
		ev = &ThrottleEngaged{}
	case "BudgetShare":
		ev = &BudgetShare{}
	case "CampaignCell":
		ev = &CampaignCell{}
	case "NodeKilled":
		ev = &NodeKilled{}
	case "NodeDegraded":
		ev = &NodeDegraded{}
	case "NodeRecovered":
		ev = &NodeRecovered{}
	case "StageStart":
		ev = &StageStart{}
	case "StageEnd":
		ev = &StageEnd{}
	case "TransferVolume":
		ev = &TransferVolume{}
	default:
		return nil, fmt.Errorf("telemetry: unknown event kind %q", env.Kind)
	}
	if err := json.Unmarshal(env.Data, ev); err != nil {
		return nil, fmt.Errorf("telemetry: decode %s: %w", env.Kind, err)
	}
	return deref(ev), nil
}

// deref turns the pointer Decode unmarshals into back into the value
// form events are emitted as, so Decode(Encode(e)) == e.
func deref(e Event) Event {
	switch v := e.(type) {
	case *CapWritten:
		return *v
	case *PolicyDecision:
		return *v
	case *SyncBarrier:
		return *v
	case *BudgetViolation:
		return *v
	case *ThrottleEngaged:
		return *v
	case *BudgetShare:
		return *v
	case *CampaignCell:
		return *v
	case *NodeKilled:
		return *v
	case *NodeDegraded:
		return *v
	case *NodeRecovered:
		return *v
	case *StageStart:
		return *v
	case *StageEnd:
		return *v
	case *TransferVolume:
		return *v
	}
	return e
}

package insitu

import (
	"context"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/units"
)

// smokeConfig returns a small but realistic job configuration.
func smokeConfig(policy core.Policy, analyses []string) Config {
	n := 4 // 2 sim + 2 ana nodes
	cons := core.Constraints{Budget: units.Watts(110 * n), MinCap: 98, MaxCap: 215}
	return Config{
		SimRanks:    2,
		AnaRanks:    2,
		Steps:       60,
		SyncEvery:   1,
		Analyses:    analyses,
		Policy:      policy,
		Constraints: cons,
		Seed:        7,
	}
}

func TestSmokeStaticVsSeeSAw(t *testing.T) {
	analyses := []string{"msd"}

	static, err := Run(context.Background(), smokeConfig(core.NewStatic(), analyses))
	if err != nil {
		t.Fatalf("static run: %v", err)
	}
	cons := core.Constraints{Budget: 440, MinCap: 98, MaxCap: 215}
	ss, err := Run(context.Background(), smokeConfig(core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1}), analyses))
	if err != nil {
		t.Fatalf("seesaw run: %v", err)
	}
	t.Logf("static: time=%v syncs=%d slack=%.4f energy=%v", static.MainLoopTime, static.Syncs, static.SyncLog.MeanSlackFrom(10), static.TotalEnergy)
	t.Logf("seesaw: time=%v syncs=%d slack=%.4f energy=%v", ss.MainLoopTime, ss.Syncs, ss.SyncLog.MeanSlackFrom(10), ss.TotalEnergy)
	for i, r := range ss.SyncLog.Records {
		if i < 25 {
			t.Logf("step %2d: simT=%.5f anaT=%.5f simP=%.1f anaP=%.1f simCap=%.1f anaCap=%.1f slack=%.3f",
				r.Step, float64(r.SimTime), float64(r.AnaTime), float64(r.SimPower), float64(r.AnaPower),
				float64(r.SimCap), float64(r.AnaCap), r.Slack())
		}
	}
	if static.MainLoopTime <= 0 || ss.MainLoopTime <= 0 {
		t.Fatalf("non-positive runtimes")
	}
}

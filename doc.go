// Package seesaw is a from-scratch Go reproduction of "SeeSAw: Optimizing
// Performance of In-Situ Analytics Applications under Power Constraints"
// (Marincic, Vishwanath, Hoffmann; IEEE IPDPS 2020).
//
// The repository contains the paper's contribution — the SeeSAw
// energy-feedback power allocator — together with every substrate it
// needs to run and be evaluated: a simulated RAPL power-capping layer, a
// phase-level node power/performance model, a virtual-time in-process
// message-passing runtime, a miniature molecular-dynamics engine with the
// paper's five in-situ analyses, the PoLiMER instrumentation library, the
// SLURM-style power-aware and GEOPM-style time-aware baseline policies,
// and an experiment harness that regenerates every table and figure of
// the paper's evaluation.
//
// Entry points:
//
//   - internal/core: the SeeSAw, power-aware, time-aware and static
//     allocation policies behind one Policy interface;
//   - internal/insitu: run a real (miniature) LAMMPS-style in-situ job
//     over the simulated cluster;
//   - internal/cosim: the scale-level co-simulation used for the
//     128-1024-node experiments;
//   - internal/bench: the per-table/per-figure experiment registry;
//   - cmd/seesawctl: command-line access to every experiment;
//   - examples/: runnable programs exercising the public API.
//
// See DESIGN.md for the system inventory and the paper-to-code map, and
// EXPERIMENTS.md for reproduced-vs-paper results.
package seesaw

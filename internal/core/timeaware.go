// The strictly time-aware policy: GEOPM's power-balancer plug-in as
// described in Section II of the paper.
package core

import (
	"fmt"

	"seesaw/internal/units"
)

// TimeAwareConfig parameterizes the GEOPM-style balancer.
type TimeAwareConfig struct {
	// Constraints carry the budget and hardware cap range.
	Constraints Constraints
	// TargetSlack is the percentage below the maximum median runtime
	// that designates the target runtime ("the higher the percentage,
	// the more reactive the algorithm").
	TargetSlack float64
	// InitialStep is the power moved per adjustment at the start.
	InitialStep units.Watts
	// StepDecay multiplies the step after each adjustment round
	// ("the rate of change in power decreases over time").
	StepDecay float64
	// MinStep is the user-configured minimum rate of change.
	MinStep units.Watts
}

// DefaultTimeAwareConfig returns a configuration matching GEOPM's
// published defaults in spirit: 10% target slack, decaying step.
func DefaultTimeAwareConfig(c Constraints) TimeAwareConfig {
	return TimeAwareConfig{
		Constraints: c,
		TargetSlack: 0.03,
		InitialStep: 7,
		StepDecay:   0.85,
		MinStep:     1,
	}
}

// TimeAware reimplements GEOPM's power balancer for the in-situ setting:
// at every synchronization (invoked there per Section VI-B; the w window
// deliberately has no effect, mimicking the original behaviour), each
// node's median rank runtime is compared against a target runtime set a
// fixed percentage below the maximum median across nodes. Nodes faster
// than the target give up `step` Watts; the freed power is granted to
// the slower nodes, and any slack that cannot be placed is redistributed
// to all nodes equally. The step decays geometrically to a floor.
//
// The policy looks only at time: when both partitions run slowly at low
// power (e.g. the analysis pinned at delta_min dragging the simulation
// into an idle-wait low-power state), their time difference is
// incidentally small and the balancer sees nothing to fix — the failure
// mode of Section VII-B3.
type TimeAware struct {
	cfg  TimeAwareConfig
	step units.Watts

	allocs int
}

// NewTimeAware returns a time-aware allocator.
func NewTimeAware(cfg TimeAwareConfig) (*TimeAware, error) {
	if cfg.TargetSlack <= 0 || cfg.TargetSlack >= 1 {
		return nil, fmt.Errorf("core: time-aware target slack %v outside (0,1)", cfg.TargetSlack)
	}
	if cfg.InitialStep <= 0 || cfg.MinStep <= 0 || cfg.MinStep > cfg.InitialStep {
		return nil, fmt.Errorf("core: invalid time-aware steps init=%v min=%v", cfg.InitialStep, cfg.MinStep)
	}
	if cfg.StepDecay <= 0 || cfg.StepDecay > 1 {
		return nil, fmt.Errorf("core: time-aware decay %v outside (0,1]", cfg.StepDecay)
	}
	if err := cfg.Constraints.Validate(0); err != nil {
		return nil, err
	}
	return &TimeAware{cfg: cfg, step: cfg.InitialStep}, nil
}

// MustNewTimeAware is NewTimeAware that panics on config errors.
func MustNewTimeAware(cfg TimeAwareConfig) *TimeAware {
	t, err := NewTimeAware(cfg)
	if err != nil {
		panic(err)
	}
	return t
}

// Name implements Policy.
func (*TimeAware) Name() string { return "time-aware" }

// Allocations reports how many adjustment rounds ran.
func (t *TimeAware) Allocations() int { return t.allocs }

// Step returns the current adjustment step size (for tests).
func (t *TimeAware) Step() units.Watts { return t.step }

// Allocate implements Policy.
func (t *TimeAware) Allocate(step int, nodes []NodeMeasure) []units.Watts {
	if len(nodes) == 0 {
		return nil
	}
	c := t.cfg.Constraints

	// The balancer sees epoch (loop-iteration) times where available.
	timeOf := func(n NodeMeasure) units.Seconds {
		if n.EpochTime > 0 {
			return n.EpochTime
		}
		return n.Time
	}

	// Target runtime: a fixed percentage below the max median runtime.
	// Dead nodes report no time and never set the target.
	var maxT units.Seconds
	alive := 0
	for _, n := range nodes {
		if n.Health == Dead {
			continue
		}
		alive++
		if timeOf(n) > maxT {
			maxT = timeOf(n)
		}
	}
	if maxT <= 0 || alive == 0 {
		return nil
	}
	target := units.Seconds(float64(maxT) * (1 - t.cfg.TargetSlack))

	caps := make([]units.Watts, len(nodes))
	var pool units.Watts
	slow := make([]int, 0, len(nodes))
	for i, n := range nodes {
		if n.Health == Dead {
			// Dead nodes hold no cap; their former share re-enters
			// the pool below.
			continue
		}
		caps[i] = n.Cap
		if timeOf(n) < target {
			// Faster than target: slow it down by moving step Watts
			// away (bounded by the node's own delta_min).
			nLo, _ := n.CapRange(c)
			give := t.step
			room := n.Cap - nLo
			if give > room {
				give = room
			}
			caps[i] -= give
			pool += give
		} else {
			slow = append(slow, i)
		}
	}
	// Dynamic membership: budget not covered by the live caps (a dead
	// node's former share) joins the pool, bounded by what the
	// survivors can absorb under delta_max.
	var capTotal units.Watts
	for i, n := range nodes {
		if n.Health != Dead {
			capTotal += caps[i]
		}
	}
	if orphan := c.Budget - capTotal - pool; orphan > capConservationEps {
		maxTotal := c.MaxCap * units.Watts(alive)
		if heteroNodes(nodes) {
			maxTotal = 0
			for _, n := range nodes {
				if n.Health == Dead {
					continue
				}
				_, nHi := n.CapRange(c)
				maxTotal += nHi
			}
		}
		if room := maxTotal - capTotal; orphan > room {
			orphan = room
		}
		if orphan > 0 {
			pool += orphan
		}
	}

	// Grant the freed power to the slower nodes, bounded by each
	// node's own ceiling.
	if len(slow) > 0 && pool > 0 {
		share := pool / units.Watts(len(slow))
		for _, i := range slow {
			grant := share
			_, nHi := nodes[i].CapRange(c)
			room := nHi - caps[i]
			if grant > room {
				grant = room
			}
			caps[i] += grant
			pool -= grant
		}
	}
	// "If there is slack power, it is redistributed to all nodes
	// equally."
	if pool > 0 {
		share := pool / units.Watts(alive)
		for i, n := range nodes {
			if n.Health == Dead {
				continue
			}
			nLo, nHi := n.CapRange(c)
			caps[i] = units.ClampWatts(caps[i]+share, nLo, nHi)
		}
	}

	// Decay the rate of change toward the configured minimum.
	t.step = units.Watts(float64(t.step) * t.cfg.StepDecay)
	if t.step < t.cfg.MinStep {
		t.step = t.cfg.MinStep
	}

	t.allocs++
	return caps
}

package trace

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"seesaw/internal/units"
)

func TestSeries(t *testing.T) {
	var s Series
	s.Add(0, 100)
	s.Add(1, 110)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	vs := s.Values()
	if vs[0] != 100 || vs[1] != 110 {
		t.Errorf("Values = %v", vs)
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder()
	r.Series("b").Add(0, 1)
	r.Series("a").Add(0, 2)
	r.Series("b").Add(1, 3)
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Errorf("Names = %v (creation order expected)", names)
	}
	sorted := SortSeriesNames(r)
	if sorted[0] != "a" || sorted[1] != "b" {
		t.Errorf("sorted = %v", sorted)
	}
	if r.Series("b").Len() != 2 {
		t.Error("series b should accumulate")
	}
}

func TestRecorderCSV(t *testing.T) {
	r := NewRecorder()
	r.Series("sim").Add(0.5, 110.25)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "series,time_s,value\n") {
		t.Errorf("missing CSV header: %q", out)
	}
	if !strings.Contains(out, "sim,0.500000,110.250000") {
		t.Errorf("missing data row: %q", out)
	}
}

func TestSyncRecordSlack(t *testing.T) {
	r := SyncRecord{SimTime: 4, AnaTime: 5}
	if r.IntervalTime() != 5 {
		t.Errorf("IntervalTime = %v", r.IntervalTime())
	}
	if got := r.Slack(); got != 0.2 {
		t.Errorf("Slack = %v, want 0.2", got)
	}
	// Symmetric.
	r2 := SyncRecord{SimTime: 5, AnaTime: 4}
	if r2.Slack() != 0.2 {
		t.Errorf("Slack not symmetric: %v", r2.Slack())
	}
	empty := SyncRecord{}
	if empty.Slack() != 0 {
		t.Error("empty record slack should be 0")
	}
}

func TestSyncLog(t *testing.T) {
	var l SyncLog
	l.Add(SyncRecord{Step: 1, SimTime: 4, AnaTime: 4})
	l.Add(SyncRecord{Step: 2, SimTime: 3, AnaTime: 6})
	if l.Len() != 2 {
		t.Errorf("Len = %d", l.Len())
	}
	if got := l.TotalTime(); got != 10 {
		t.Errorf("TotalTime = %v, want 10", got)
	}
}

func TestMeanSlackFrom(t *testing.T) {
	var l SyncLog
	l.Add(SyncRecord{Step: 1, SimTime: 1, AnaTime: 2})   // slack 0.5, excluded
	l.Add(SyncRecord{Step: 10, SimTime: 4, AnaTime: 5})  // slack 0.2
	l.Add(SyncRecord{Step: 11, SimTime: 5, AnaTime: 10}) // slack 0.5
	got := l.MeanSlackFrom(10)
	if !units.NearlyEqual(got, 0.35, 1e-12) {
		t.Errorf("MeanSlackFrom = %v, want 0.35", got)
	}
	if l.MeanSlackFrom(100) != 0 {
		t.Error("no records in range should give 0")
	}
}

func TestSyncLogCSV(t *testing.T) {
	var l SyncLog
	l.Add(SyncRecord{Step: 1, SimTime: 4, AnaTime: 5, SimPower: 106, AnaPower: 110, SimCap: 108, AnaCap: 112})
	var sb strings.Builder
	if err := l.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "step,sim_time_s") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "1,4.000000,5.000000,106.000,110.000,108.000,112.000") {
		t.Errorf("missing row: %q", out)
	}
}

func TestTableRender(t *testing.T) {
	tbl := NewTable("Title", "col1", "column-two")
	tbl.AddRow("a", 1.23456)
	tbl.AddRow("longer-cell", units.Watts(110))
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Title") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "col1") || !strings.Contains(out, "column-two") {
		t.Error("missing headers")
	}
	if !strings.Contains(out, "1.23") {
		t.Error("float formatting wrong")
	}
	if !strings.Contains(out, "110.0") {
		t.Error("Watts formatting wrong")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("rendered %d lines, want 5:\n%s", len(lines), out)
	}
}

func TestTableFormatsSeconds(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(units.Seconds(1.23456))
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1.235") {
		t.Errorf("Seconds formatting wrong: %q", sb.String())
	}
}

func TestRenderMarkdown(t *testing.T) {
	tbl := NewTable("T", "a", "b")
	tbl.AddRow(1, 2.5)
	var sb strings.Builder
	if err := tbl.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"**T**", "| a | b |", "|---|---|", "| 1 | 2.50 |"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

// TestRecorderCSVEdgeCases covers empty recorders, sample-less series
// and non-finite sample values: every emitted row must stay parseable.
func TestRecorderCSVEdgeCases(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name  string
		build func() *Recorder
		want  []string // exact lines, header included
	}{
		{
			name:  "empty recorder",
			build: NewRecorder,
			want:  []string{"series,time_s,value"},
		},
		{
			name: "zero-value recorder is usable",
			build: func() *Recorder {
				var r Recorder
				r.Series("a").Add(1, 2)
				return &r
			},
			want: []string{"series,time_s,value", "a,1.000000,2.000000"},
		},
		{
			name: "series with no samples emits no rows",
			build: func() *Recorder {
				r := NewRecorder()
				r.Series("empty")
				r.Series("full").Add(0, 1)
				return r
			},
			want: []string{"series,time_s,value", "full,0.000000,1.000000"},
		},
		{
			name: "non-finite values render as canonical tokens",
			build: func() *Recorder {
				r := NewRecorder()
				s := r.Series("x")
				s.Add(0, nan)
				s.Add(1, math.Inf(1))
				s.Add(units.Seconds(nan), math.Inf(-1))
				return r
			},
			want: []string{"series,time_s,value",
				"x,0.000000,NaN", "x,1.000000,+Inf", "x,NaN,-Inf"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := tc.build().WriteCSV(&sb); err != nil {
				t.Fatal(err)
			}
			got := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
			if len(got) != len(tc.want) {
				t.Fatalf("got %d lines %q, want %d", len(got), got, len(tc.want))
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("line %d = %q, want %q", i, got[i], tc.want[i])
				}
			}
			// Every numeric cell of every data row must parse.
			for _, line := range got[1:] {
				cells := strings.Split(line, ",")
				for _, c := range cells[1:] {
					if _, err := strconv.ParseFloat(c, 64); err != nil {
						t.Errorf("cell %q not parseable: %v", c, err)
					}
				}
			}
		})
	}
}

// TestSyncLogCSVEdgeCases mirrors the recorder edge cases for the
// per-synchronization log.
func TestSyncLogCSVEdgeCases(t *testing.T) {
	nan := units.Seconds(math.NaN())
	cases := []struct {
		name    string
		log     SyncLog
		rows    int
		contain []string
	}{
		{name: "empty log is header-only", log: SyncLog{}, rows: 0},
		{
			name: "NaN interval propagates as tokens",
			log:  SyncLog{Records: []SyncRecord{{Step: 1, SimTime: nan, AnaTime: 2, SimPower: units.Watts(math.Inf(1))}}},
			rows: 1, contain: []string{"NaN", "+Inf"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var sb strings.Builder
			if err := tc.log.WriteCSV(&sb); err != nil {
				t.Fatal(err)
			}
			lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
			if lines[0] != "step,sim_time_s,ana_time_s,sim_power_w,ana_power_w,sim_cap_w,ana_cap_w,slack,overhead_s" {
				t.Errorf("header = %q", lines[0])
			}
			if got := len(lines) - 1; got != tc.rows {
				t.Fatalf("rows = %d, want %d (%q)", got, tc.rows, lines)
			}
			for _, want := range tc.contain {
				if !strings.Contains(sb.String(), want) {
					t.Errorf("output %q missing %q", sb.String(), want)
				}
			}
			for _, line := range lines[1:] {
				for _, c := range strings.Split(line, ",") {
					if _, err := strconv.ParseFloat(c, 64); err != nil {
						t.Errorf("cell %q not parseable: %v", c, err)
					}
				}
			}
		})
	}
}

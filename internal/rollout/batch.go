// Batched rollouts: fan a grid of (budget, w, dims, faults, topology,
// policy) points across the campaign engine's worker pool. Each cell is
// one full episode driven through the Env step API with a
// registry-constructed policy, so batch throughput measures the whole
// policy-search loop, not a shortcut around it.
//
// Each worker owns one Env (via the campaign worker-state hook), and
// every Env shares one StateCache, so a sweep pays each distinct job's
// precompute once and each worker's node population is rebuilt only
// when its cell stream crosses to a different job. Grid enumeration
// orders points so cells of one job are consecutive, which is what
// makes the per-worker single-entry episode pool effective.
package rollout

import (
	"context"
	"fmt"
	"strings"

	"seesaw/internal/campaign"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
	"seesaw/internal/workflow"
	"seesaw/internal/workload"
)

// Point is one rollout of the batch: a spec plus the registry policy
// that supplies the actions.
type Point struct {
	// Key identifies the point in results and errors,
	// e.g. "faults=kill:7@8/seesaw".
	Key string
	// Spec is the episode description.
	Spec Spec
	// Policy is the registry name of the acting allocator.
	Policy string
	// Window is the policy's reallocation window w (1 when zero).
	Window int
}

// Outcome is one point's result, in the point's enumeration slot.
type Outcome struct {
	// Point echoes the input point.
	Point Point
	// Result is the episode outcome (nil on error).
	Result *Result
	// Err is the point's failure, including context cancellation for
	// points skipped after a cancel.
	Err error
}

// Options tune a batch invocation.
type Options struct {
	// Name labels the batch in telemetry ("search" by default).
	Name string
	// Jobs bounds worker concurrency; <= 0 means GOMAXPROCS. Outcomes
	// are byte-identical at any value: points are pure functions of
	// their specs and results are assembled in enumeration order.
	Jobs int
	// Telemetry, when non-nil, receives campaign progress events.
	Telemetry *telemetry.Hub
}

// Batch runs every point on the campaign worker pool and returns one
// Outcome per point, in point order. The returned error is the first
// failed point's error; the Outcome slice is always complete.
func Batch(ctx context.Context, points []Point, o Options) ([]Outcome, error) {
	name := o.Name
	if name == "" {
		name = "search"
	}

	// Factories resolved once per distinct policy name; an unknown name
	// still fails per cell (the cells that use it), not the whole batch.
	type lookup struct {
		fac policy.Factory
		err error
	}
	factories := map[string]lookup{}
	for _, p := range points {
		if _, ok := factories[p.Policy]; !ok {
			fac, err := policy.Lookup(p.Policy)
			factories[p.Policy] = lookup{fac: fac, err: err}
		}
	}

	cache := NewStateCache()
	cells := make([]campaign.Cell, len(points))
	for i, p := range points {
		cells[i] = campaign.Cell{
			Key:  p.Key,
			Seed: p.Spec.Seed,
			Run: func(ctx context.Context) (any, error) {
				w := p.Window
				if w < 1 {
					w = 1
				}
				lk := factories[p.Policy]
				if lk.err != nil {
					return nil, lk.err
				}
				n := p.Spec.Workload.SimNodes + p.Spec.Workload.AnaNodes
				pol, err := lk.fac(p.Spec.constraints(n), w)
				if err != nil {
					return nil, err
				}
				if env, ok := campaign.WorkerValue(ctx).(*Env); ok {
					return env.Rollout(ctx, p.Spec, pol)
				}
				return Run(ctx, p.Spec, pol)
			},
		}
	}
	rs, err := campaign.Run(ctx, cells, campaign.Options{
		Name:        name,
		Jobs:        o.Jobs,
		Telemetry:   o.Telemetry,
		WorkerState: func() any { return NewEnvWith(cache) },
	})
	outs := make([]Outcome, len(points))
	for i, r := range rs {
		outs[i] = Outcome{Point: points[i], Err: r.Err}
		if res, ok := r.Value.(*Result); ok {
			outs[i].Result = res
		}
	}
	return outs, err
}

// Grid enumerates a search space as the cross product of its axes; zero
// axes fall back to one default point, so a Grid zero value expands to
// a single paper-default rollout.
type Grid struct {
	// Nodes are total node counts (split evenly); default 8.
	Nodes []int
	// Budgets are per-node budgets in Watts; default 110 (the paper's).
	Budgets []units.Watts
	// Windows are reallocation windows w; default 1.
	Windows []int
	// Dims are problem sizes; default 16.
	Dims []int
	// Faults are fault plans in internal/fault's grammar ("" = none).
	Faults []string
	// Classes are device-class maps in machine.ClassMap's grammar
	// ("" = homogeneous). A non-empty value appends a "/classes=..."
	// segment to the point key; the homogeneous default leaves keys
	// unchanged.
	Classes []string
	// Topologies are placement names ("" = space-shared).
	Topologies []string
	// Policies are registry policy names; default policy.Names().
	Policies []string
	// Steps is the Verlet step count per episode (400 when zero);
	// J synchronizes every j-th step (1 when zero).
	Steps, J int
	// Analyses names the analysis kernels; default {"msd"}.
	Analyses []string
	// Seed is the base job seed (1 when zero).
	Seed uint64
}

// axis returns vals, or the single fallback when empty.
func axis[T any](vals []T, fallback T) []T {
	if len(vals) == 0 {
		return []T{fallback}
	}
	return vals
}

// Expand enumerates the grid's points in deterministic axis order.
// Invalid axis values (a bad fault plan, an unknown topology or policy)
// surface as errors here, before any rollout runs.
func (g Grid) Expand() ([]Point, error) {
	steps := g.Steps
	if steps == 0 {
		steps = 400
	}
	j := g.J
	if j == 0 {
		j = 1
	}
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}
	analyses := axis(g.Analyses, "msd")
	tasks := workload.Tasks(analyses...)

	policies := g.Policies
	if len(policies) == 0 {
		policies = policy.Names()
	}
	for _, p := range policies {
		if !policy.Valid(p) {
			return nil, &policy.UnknownPolicyError{Name: p, Valid: policy.Names()}
		}
	}
	for _, t := range g.Topologies {
		if t == "" || t == "space-shared" {
			continue
		}
		// Validate the name only; node-count constraints (e.g. dag's
		// divisible-by-8 rule) depend on the Nodes axis and surface per
		// point at rollout time.
		known := false
		for _, n := range workflow.TopologyNames() {
			if t == n {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("rollout: unknown topology %q (valid: %v)", t, workflow.TopologyNames())
		}
	}

	// Scalar knobs that default in most grids appear in point keys only
	// when they deviate, so default grids keep their established keys
	// while two grids differing in steps/j/analyses/seed can never
	// collide on a key.
	var extra string
	if steps != 400 {
		extra += fmt.Sprintf("steps%d/", steps)
	}
	if j != 1 {
		extra += fmt.Sprintf("j%d/", j)
	}
	if len(analyses) != 1 || analyses[0] != "msd" {
		extra += "an=" + strings.Join(analyses, "+") + "/"
	}
	if seed != 1 {
		extra += fmt.Sprintf("seed%d/", seed)
	}

	nodesAx := axis(g.Nodes, 8)
	budgetsAx := axis(g.Budgets, defaultCapPerNode)
	windowsAx := axis(g.Windows, 1)
	dimsAx := axis(g.Dims, 16)
	faultsAx := axis(g.Faults, "")
	classesAx := axis(g.Classes, "")
	toposAx := axis(g.Topologies, "")

	points := make([]Point, 0, len(nodesAx)*len(budgetsAx)*len(windowsAx)*
		len(dimsAx)*len(faultsAx)*len(classesAx)*len(toposAx)*len(policies))
	for _, nodes := range nodesAx {
		for _, budget := range budgetsAx {
			for _, w := range windowsAx {
				for _, dim := range dimsAx {
					for _, fp := range faultsAx {
						plan, err := fault.Parse(fp)
						if err != nil {
							return nil, fmt.Errorf("rollout: %w", err)
						}
						for _, cs := range classesAx {
							classes, err := machine.ParseClassMap(cs)
							if err != nil {
								return nil, fmt.Errorf("rollout: %w", err)
							}
							for _, topo := range toposAx {
								for _, pol := range policies {
									// The classes segment is inserted before the
									// policy only when heterogeneous, so class-free
									// grids keep their keys and the policy stays the
									// trailing segment (scenario grouping strips it).
									het := ""
									if cs != "" {
										het = "classes=" + cs + "/"
									}
									key := fmt.Sprintf("n%d/b%g/w%d/dim%d/%sfaults=%s/topo=%s/%s%s",
										nodes, float64(budget), w, dim, extra, orNone(fp), orName(topo), het, pol)
									points = append(points, Point{
										Key: key,
										Spec: Spec{
											Workload: workload.Spec{
												SimNodes: nodes / 2, AnaNodes: nodes - nodes/2,
												Dim: dim, J: j, Steps: steps, Analyses: tasks,
											},
											Topology:   topo,
											CapPerNode: budget,
											Seed:       seed,
											RunSeed:    seed + 1,
											Noise:      machine.DefaultNoise(),
											Faults:     plan,
											Classes:    classes,
										},
										Policy: pol,
										Window: w,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return points, nil
}

// orNone renders an empty fault plan as "none" in point keys.
func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// orName renders an empty topology as "space-shared" in point keys.
func orName(s string) string {
	if s == "" {
		return "space-shared"
	}
	return s
}

package insitu

import (
	"context"

	"seesaw/internal/analysis"
	"seesaw/internal/lammps"
)

// anaTrace is the recording of the analysis-side compute, the analysis
// partition's counterpart to simTrace.
//
// Every analysis rank instantiates the same task set and consumes the
// byte-identical replayed frame stream; the only thing that varies
// between analysis ranks is how many simulation sources feed them
// (floor or ceil of SimRanks/AnaRanks — at most two distinct counts).
// An analysis's state after a synchronization depends only on the
// sequence of frames it has consumed, so two ranks with the same source
// count hold bitwise-identical analysis state at every step. The driver
// therefore integrates each distinct source count once per job and
// replays the recorded work counts and final result vectors on every
// rank, instead of repeating the same floating-point kernels AnaRanks
// times.
//
// The recorder makes exactly the Consume calls runAnaRank makes, in the
// same order (source-major, then task order, due tasks only), against
// the same frame values (analyses never mutate frames, so it consumes
// the recorded frames directly), so every recorded work count and
// result float is the float the per-rank run would have produced. The
// -no-ana-memo escape hatch runs the legacy in-place path; the golden
// test pins both to identical bytes.
type anaTrace struct {
	// specs resolves each configured analysis's constant profile once.
	specs []anaTaskSpec
	// due[si] indexes specs due at synchronization step si (aligned with
	// the job's sync schedule); shared by recorder and replay.
	due [][]int
	// recordings maps a rank's source count to its recording.
	recordings map[int]*anaRecording
}

// anaTaskSpec is one configured analysis's replay-constant data.
type anaTaskSpec struct {
	name string
	prof analysis.Profile
}

// anaRecording is the recorded compute of one analysis rank shape.
type anaRecording struct {
	// work[si] holds the Consume work counts of synchronization step si,
	// flattened source-major in due-task order.
	work [][]lammps.WorkCount
	// results holds each analysis's final output vector.
	results map[string][]float64
}

// recordAnaTrace integrates each distinct analysis-rank shape through
// the synchronization schedule, mirroring runAnaRank's Consume
// sequence. Like recordSimTrace it runs before any rank goroutine
// exists and checks ctx between synchronization steps to keep long jobs
// cancellable.
func recordAnaTrace(ctx context.Context, cfg *Config, syncSchedule []int, sources [][]int, tr *simTrace) (*anaTrace, error) {
	at := &anaTrace{
		specs:      make([]anaTaskSpec, 0, len(cfg.Analyses)),
		due:        make([][]int, len(syncSchedule)),
		recordings: make(map[int]*anaRecording),
	}
	for _, name := range cfg.Analyses {
		a, err := analysis.New(name)
		if err != nil {
			return nil, err
		}
		at.specs = append(at.specs, anaTaskSpec{name: name, prof: a.Profile()})
	}
	for si, step := range syncSchedule {
		for ti, name := range cfg.Analyses {
			if step%cfg.analysisInterval(name) == 0 {
				at.due[si] = append(at.due[si], ti)
			}
		}
	}
	for _, src := range sources {
		k := len(src)
		if _, ok := at.recordings[k]; ok {
			continue
		}
		rec, err := recordAnaShape(ctx, cfg, syncSchedule, at.due, k, tr)
		if err != nil {
			return nil, err
		}
		at.recordings[k] = rec
	}
	return at, nil
}

// recordAnaShape integrates one source-count shape through the job.
func recordAnaShape(ctx context.Context, cfg *Config, syncSchedule []int, due [][]int, nsrc int, tr *simTrace) (*anaRecording, error) {
	tasks := make([]analysis.Analysis, 0, len(cfg.Analyses))
	for _, name := range cfg.Analyses {
		a, err := analysis.New(name)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, a)
	}
	rec := &anaRecording{
		work:    make([][]lammps.WorkCount, len(syncSchedule)),
		results: make(map[string][]float64, len(tasks)),
	}
	for si, step := range syncSchedule {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		d := due[si]
		if len(d) == 0 || nsrc == 0 {
			continue
		}
		frame := tr.steps[step-1].frame
		work := make([]lammps.WorkCount, 0, nsrc*len(d))
		for s := 0; s < nsrc; s++ {
			for _, ti := range d {
				work = append(work, tasks[ti].Consume(frame))
			}
		}
		rec.work[si] = work
	}
	for _, t := range tasks {
		rec.results[t.Name()] = append([]float64(nil), t.Result()...)
	}
	return rec, nil
}

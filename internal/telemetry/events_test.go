package telemetry

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// allEvents holds one populated instance of every event type; tests that
// must cover the full event vocabulary iterate it.
var allEvents = []Event{
	CapWritten{T: 1.5, Node: "sim", CapW: 110.5, Short: true},
	PolicyDecision{T: 2, Policy: "seesaw", Step: 3, PrevSimCapW: 110, PrevAnaCapW: 110,
		SimCapW: 115, AnaCapW: 105, ShiftW: 5, Direction: "to-sim"},
	SyncBarrier{T: 3, Step: 4, WallS: 1.25, SimS: 1.25, AnaS: 1.0, Slack: 0.2, Overhead: 0.001},
	BudgetViolation{T: 4, Node: "ana", ObservedW: 120, LimitW: 110},
	ThrottleEngaged{T: 5, Node: "sim", DemandW: 180, AllowedW: 150},
	BudgetShare{T: 6, Epoch: 2, Job: "jobA", BudgetW: 7040, Share: 0.5},
	CampaignCell{Campaign: "fig3a", Key: "rdf/seesaw/r0", Status: "ok", Seconds: 0.25, Done: 3, Total: 18},
	NodeKilled{T: 7, Node: 5, Role: "ana", Sync: 20, AliveSim: 4, AliveAna: 3},
	NodeDegraded{T: 8, Node: 2, Role: "sim", Sync: 10, Factor: 2},
	NodeRecovered{T: 9, Node: 2, Role: "sim", Sync: 25},
	StageStart{T: 10, Stage: "filter", Sync: 3},
	StageEnd{T: 11, Stage: "filter", Sync: 3, BusyS: 4.5},
	TransferVolume{T: 12, Edge: "sim->ana", Sync: 3, Bytes: 4816896, Seconds: 0.049},
}

// TestEncodeDecodeRoundTrip decodes every event type back to an
// identical value — the property the JSONL stream consumers rely on.
func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, e := range allEvents {
		t.Run(e.Kind(), func(t *testing.T) {
			line, err := Encode(e)
			if err != nil {
				t.Fatal(err)
			}
			// The wire form must be a single JSON object with the kind tag.
			var env struct {
				Kind string          `json:"kind"`
				Data json.RawMessage `json:"data"`
			}
			if err := json.Unmarshal(line, &env); err != nil {
				t.Fatalf("envelope not valid JSON: %v", err)
			}
			if env.Kind != e.Kind() {
				t.Errorf("envelope kind = %q, want %q", env.Kind, e.Kind())
			}
			got, err := Decode(line)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, e) {
				t.Errorf("round trip: got %#v, want %#v", got, e)
			}
		})
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		line string
		want string
	}{
		{"garbage", "not json", "decode envelope"},
		{"unknown kind", `{"kind":"NoSuchEvent","data":{}}`, "unknown event kind"},
		{"bad payload", `{"kind":"CapWritten","data":{"t":"not-a-number"}}`, "decode CapWritten"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode([]byte(tc.line))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Decode(%q) err = %v, want containing %q", tc.line, err, tc.want)
			}
		})
	}
}

// TestKindsAreUnique guards against two event types claiming the same
// envelope tag, which would corrupt Decode dispatch.
func TestKindsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range allEvents {
		if seen[e.Kind()] {
			t.Errorf("duplicate event kind %q", e.Kind())
		}
		seen[e.Kind()] = true
	}
	if len(seen) != 13 {
		t.Errorf("expected 13 event kinds, have %d", len(seen))
	}
}

package jobfile

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seesaw/internal/cosim"
	"seesaw/internal/policy"
	"seesaw/internal/workflow"
)

const validJSON = `{
  "nodes": 8,
  "dim": 16,
  "j": 1,
  "steps": 20,
  "analyses": [{"name": "msd"}, {"name": "rdf", "interval": 4}],
  "policy": "seesaw",
  "window": 2,
  "cap_per_node_w": 110,
  "seed": 7
}`

func TestLoadValid(t *testing.T) {
	j, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if j.Nodes != 8 || j.Policy != "seesaw" || j.Window != 2 {
		t.Errorf("parsed job wrong: %+v", j)
	}
	if len(j.Analyses) != 2 || j.Analyses[1].Interval != 4 {
		t.Errorf("analyses wrong: %+v", j.Analyses)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	_, err := Load(strings.NewReader(`{"nodes": 8, "dim": 16, "steps": 10,
		"analyses": [{"name":"msd"}], "bogus_field": 1}`))
	if err == nil {
		t.Fatal("unknown field should be rejected")
	}
	// The error must name the bad key and list the valid schema.
	for _, want := range []string{"bogus_field", "valid keys", "nodes", "topology", "faults"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-field error missing %q: %v", want, err)
		}
	}
}

func TestLoadRejectsTrailingData(t *testing.T) {
	if _, err := Load(strings.NewReader(validJSON + ` {"nodes": 4}`)); err == nil ||
		!strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing data should be rejected, got %v", err)
	}
}

func TestTopologyField(t *testing.T) {
	base := `{"nodes": 8, "dim": 16, "steps": 10, "analyses": [{"name":"msd"}], "topology": %q}`
	for _, tn := range []string{"space-shared", "time-shared", "in-transit", "dag"} {
		j, err := Load(strings.NewReader(fmt.Sprintf(base, tn)))
		if err != nil {
			t.Errorf("topology %q rejected: %v", tn, err)
			continue
		}
		if j.Topology != tn {
			t.Errorf("topology = %q, want %q", j.Topology, tn)
		}
	}
	_, err := Load(strings.NewReader(fmt.Sprintf(base, "ring")))
	if err == nil {
		t.Fatal("bogus topology accepted")
	}
	for _, want := range []string{`"ring"`, "space-shared", "time-shared", "in-transit", "dag"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("topology error missing %q: %v", want, err)
		}
	}
}

func TestBuildWorkflowAndRun(t *testing.T) {
	j, err := Load(strings.NewReader(`{"nodes": 8, "dim": 8, "steps": 6,
		"analyses": [{"name":"msd1d"}], "policy": "seesaw", "topology": "in-transit", "seed": 3}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := j.BuildWorkflow()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Graph.Name != "space-shared" && cfg.Graph.Name != "in-transit" {
		t.Errorf("unexpected graph %q", cfg.Graph.Name)
	}
	res, err := workflow.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MainLoopTime <= 0 || res.TransferSeconds <= 0 {
		t.Errorf("in-transit run implausible: time %v, transfer %v", res.MainLoopTime, res.TransferSeconds)
	}
}

func TestBuildWorkflowOddNodes(t *testing.T) {
	j := &Job{Nodes: 7, Dim: 16, Steps: 10, Analyses: []Analysis{{Name: "msd"}}, Topology: "time-shared"}
	if err := j.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.BuildWorkflow(); err == nil {
		t.Error("odd node count should fail the topology builder")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []string{
		`{"dim": 16, "steps": 10, "analyses": [{"name":"msd"}]}`,                                             // no nodes
		`{"nodes": 8, "steps": 10, "analyses": [{"name":"msd"}]}`,                                            // no dim
		`{"nodes": 8, "dim": 16, "analyses": [{"name":"msd"}]}`,                                              // no steps
		`{"nodes": 8, "dim": 16, "steps": 10, "analyses": []}`,                                               // no analyses
		`{"nodes": 8, "sim_nodes": 2, "ana_nodes": 2, "dim": 16, "steps": 10, "analyses": [{"name":"msd"}]}`, // inconsistent
		`{"nodes": 8, "dim": 16, "steps": 10, "analyses": [{"name":"msd"}], "cap_mode": "weird"}`,            // bad mode
		`{"nodes": 8, "dim": 16, "steps": 10, "analyses": [{"name":"msd"}], "policy": "weird"}`,              // bad policy
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

// TestUnknownPolicyErrorListsRegistry pins the policy error text to the
// registry: the valid-name list in the message is policy.Names(), not a
// hand-maintained copy, so a newly registered policy is automatically
// accepted and advertised.
func TestUnknownPolicyErrorListsRegistry(t *testing.T) {
	_, err := Load(strings.NewReader(
		`{"nodes": 8, "dim": 16, "steps": 10, "analyses": [{"name":"msd"}], "policy": "weird"}`))
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	want := fmt.Sprintf("jobfile: unknown policy %q (valid: %s)", "weird", strings.Join(policy.Names(), ", "))
	if err.Error() != want {
		t.Fatalf("error = %q, want %q", err.Error(), want)
	}
}

func TestBuildAndRun(t *testing.T) {
	j, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Spec.SimNodes != 4 || cfg.Spec.AnaNodes != 4 {
		t.Errorf("node split = %d/%d", cfg.Spec.SimNodes, cfg.Spec.AnaNodes)
	}
	if cfg.Constraints.Budget != 880 {
		t.Errorf("budget = %v", cfg.Constraints.Budget)
	}
	if cfg.Policy.Name() != "seesaw" {
		t.Errorf("policy = %s", cfg.Policy.Name())
	}
	res, err := cosim.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Error("job did not run")
	}
}

func TestBuildDefaults(t *testing.T) {
	j, err := Load(strings.NewReader(`{"nodes": 8, "dim": 16, "steps": 10,
		"analyses": [{"name": "vacf"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy.Name() != "static" {
		t.Errorf("default policy = %s, want static", cfg.Policy.Name())
	}
	if cfg.Constraints.MinCap != 98 || cfg.Constraints.MaxCap != 215 {
		t.Errorf("default cap range = %v/%v", cfg.Constraints.MinCap, cfg.Constraints.MaxCap)
	}
	if cfg.CapMode != cosim.CapLong {
		t.Error("default cap mode should be long")
	}
	if cfg.Seed != 1 {
		t.Errorf("default seed = %d", cfg.Seed)
	}
}

func TestBuildCapModes(t *testing.T) {
	for mode, want := range map[string]cosim.CapMode{
		"none":       cosim.CapNone,
		"long":       cosim.CapLong,
		"long+short": cosim.CapLongShort,
	} {
		j := &Job{Nodes: 8, Dim: 16, Steps: 10,
			Analyses: []Analysis{{Name: "msd"}}, CapMode: mode}
		cfg, err := j.Build()
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if cfg.CapMode != want {
			t.Errorf("cap_mode %q -> %v, want %v", mode, cfg.CapMode, want)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	if err := os.WriteFile(path, []byte(validJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestBuildRejectsUnknownAnalysis(t *testing.T) {
	j := &Job{Nodes: 8, Dim: 16, Steps: 10, Analyses: []Analysis{{Name: "nope"}}}
	if _, err := j.Build(); err == nil {
		t.Error("unknown analysis should fail at Build")
	}
}

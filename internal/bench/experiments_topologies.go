// The topologies experiment: how the four policies behave across
// in-situ placement modes. This is not a paper artifact — it exercises
// the workflow-graph engine (internal/workflow) on the paper's workload
// model under the three placements of SIM-SITU's taxonomy plus a
// multi-stage DAG pipeline: space-shared (the paper's setup),
// time-shared (simulation and analysis co-resident, half-node power
// domains contending for each node's budget share), in-transit (frames
// pay a staging hop on the producer's clock), and dag
// (sim -> filter -> {rdf, msd1d} -> reduce with fan-out/fan-in).
package bench

import (
	"context"
	"fmt"
	"io"

	"seesaw/internal/machine"
	"seesaw/internal/trace"
	"seesaw/internal/workflow"
	"seesaw/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "topologies",
		Title: "Topologies: the four policies across space-shared, time-shared, in-transit and DAG placements (16 nodes, workflow engine)",
		Run:   runTopologies,
	})
}

const topologyNodes = 16

func runTopologies(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	topologies := workflow.TopologyNames()
	policies := append([]string{"static"}, PolicyNames()...)

	e := newEnum("topologies")
	var getters [][]func() *workflow.Result // [topology][policy]
	for _, tn := range topologies {
		topo, err := workflow.Build(tn, workflow.Params{
			Nodes: topologyNodes, Dim: defaultDim, J: 1, Steps: steps,
			Analyses: workload.Tasks("rdf", "msd1d"),
		})
		if err != nil {
			return fmt.Errorf("bench: topologies: %w", err)
		}
		cons := topo.ScaleCaps(constraintsFor(topo.PhysicalNodes, defaultCap))
		var row []func() *workflow.Result
		for _, p := range policies {
			topo, p := topo, p
			key := fmt.Sprintf("%s/%s", tn, p)
			row = append(row, addCell(e, key, o.BaseSeed+67, func(ctx context.Context) (*workflow.Result, error) {
				// A fresh policy per cell: the window-based policies carry
				// per-run history.
				pol, err := NewPolicy(p, cons, 1)
				if err != nil {
					return nil, err
				}
				return workflow.Run(ctx, workflow.Config{
					Graph:       topo.Graph,
					Steps:       steps,
					SyncEvery:   1,
					Policy:      pol,
					Constraints: cons,
					Seed:        o.BaseSeed + 67,
					RunSeed:     o.BaseSeed + 68,
					Noise:       machine.DefaultNoise(),
					Telemetry:   o.Telemetry,
				})
			}))
		}
		getters = append(getters, row)
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	for ti, tn := range topologies {
		tbl := trace.NewTable(fmt.Sprintf("Topology %s", tn),
			"policy", "total (s)", "vs static", "energy (kJ)", "mean slack", "transfer (s)")
		for pi, p := range policies {
			res := getters[ti][pi]()
			static := getters[ti][0]()
			tbl.AddRow(p,
				fmt.Sprintf("%.1f", float64(res.MainLoopTime)),
				fmt.Sprintf("%+.2f%%", improvementPct(static.MainLoopTime, res.MainLoopTime)),
				fmt.Sprintf("%.1f", float64(res.TotalEnergy)/1000),
				fmt.Sprintf("%.3f", res.SyncLog.MeanSlackFrom(slackFromStep)),
				fmt.Sprintf("%.2f", float64(res.TransferSeconds)/float64(max(topologyNodes/2, 1))))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "All runs place the same workload (dim=%d, rdf+msd1d, j=1) on %d physical nodes; transfer is the mean per-producer staging time (in-transit edges only). Time-shared runs split every node into two half-node power domains whose caps contend for the node's budget share.\n\n",
		defaultDim, topologyNodes)
	return err
}

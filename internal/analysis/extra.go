// Additional analyses beyond the paper's five: a velocity-distribution
// histogram (whose Maxwell-Boltzmann shape doubles as a physics check on
// the MD engine) and a Composite runner that executes a set of analyses
// in sequence the way the paper's "all" configuration does.
package analysis

import (
	"fmt"
	"math"

	"seesaw/internal/lammps"
)

// VelocityHistogram accumulates the distribution of particle speeds; in
// equilibrium it follows the Maxwell-Boltzmann distribution at the
// system temperature.
type VelocityHistogram struct {
	bins  int
	vmax  float64
	hist  []float64
	total float64
}

// NewVelocityHistogram returns a histogram with the given bins covering
// speeds [0, vmax).
func NewVelocityHistogram(bins int, vmax float64) *VelocityHistogram {
	if bins <= 0 || vmax <= 0 {
		panic("analysis: velocity histogram needs positive bins and vmax")
	}
	return &VelocityHistogram{bins: bins, vmax: vmax, hist: make([]float64, bins)}
}

// Name implements Analysis.
func (*VelocityHistogram) Name() string { return "vhist" }

// Profile implements Analysis: a single pass over velocities, light.
func (*VelocityHistogram) Profile() Profile {
	return Profile{Demand: 130, Saturation: 118, Sensitivity: 0.65, SecondsPerOp: 3.0e-4}
}

// Consume implements Analysis.
func (v *VelocityHistogram) Consume(f *lammps.Frame) lammps.WorkCount {
	dv := v.vmax / float64(v.bins)
	for _, vel := range f.Vel {
		speed := math.Sqrt(vel.Norm2())
		b := int(speed / dv)
		if b >= 0 && b < v.bins {
			v.hist[b]++
		}
		v.total++
	}
	return lammps.WorkCount{Ops: float64(len(f.Vel)) * 2, Bytes: v.bins * 8}
}

// Result implements Analysis: the normalized probability density over
// the speed bins (sums to ~1/dv-weighted mass actually binned).
func (v *VelocityHistogram) Result() []float64 {
	out := make([]float64, v.bins)
	if v.total == 0 {
		return out
	}
	dv := v.vmax / float64(v.bins)
	for i, h := range v.hist {
		out[i] = h / (v.total * dv)
	}
	return out
}

// MaxwellBoltzmannPDF returns the theoretical speed distribution at
// reduced temperature T (unit mass): 4 pi v^2 (1/(2 pi T))^{3/2}
// exp(-v^2/(2T)). Exposed for tests and examples validating the MD
// engine's equilibrium.
func MaxwellBoltzmannPDF(v, temp float64) float64 {
	if temp <= 0 || v < 0 {
		return 0
	}
	a := math.Pow(1/(2*math.Pi*temp), 1.5)
	return 4 * math.Pi * v * v * a * math.Exp(-v*v/(2*temp))
}

// Composite runs several analyses in sequence on every frame, summing
// their work — the "executed in sequence at each synchronization" of the
// paper's "all" configuration, packaged as a single Analysis.
type Composite struct {
	name  string
	parts []Analysis
}

// NewComposite builds a composite from existing analyses.
func NewComposite(name string, parts ...Analysis) (*Composite, error) {
	if name == "" {
		return nil, fmt.Errorf("analysis: composite needs a name")
	}
	if len(parts) == 0 {
		return nil, fmt.Errorf("analysis: composite needs at least one part")
	}
	return &Composite{name: name, parts: parts}, nil
}

// NewAll returns the paper's "all" composite: RDF, MSD1D, MSD2D, full
// MSD, and VACF in sequence.
func NewAll() *Composite {
	c, err := NewComposite("all",
		NewRDF(64, 0), NewMSD1D(8), NewMSD2D(8), NewMSD(), NewVACF(64))
	if err != nil {
		panic(err)
	}
	return c
}

// Name implements Analysis.
func (c *Composite) Name() string { return c.name }

// Profile implements Analysis: demand/saturation of the heaviest part,
// cost-weighted sensitivity; SecondsPerOp of 1 because Consume already
// reports seconds-weighted ops (each part's ops are scaled by its own
// per-op cost).
func (c *Composite) Profile() Profile {
	var p Profile
	var costSum, sensCost float64
	for _, part := range c.parts {
		pp := part.Profile()
		if pp.Demand > p.Demand {
			p.Demand = pp.Demand
		}
		if pp.Saturation > p.Saturation {
			p.Saturation = pp.Saturation
		}
		costSum += pp.SecondsPerOp
		sensCost += pp.Sensitivity * pp.SecondsPerOp
	}
	if costSum > 0 {
		p.Sensitivity = sensCost / costSum
	}
	p.SecondsPerOp = 1
	return p
}

// Consume implements Analysis: runs every part and returns ops already
// converted to seconds-equivalents (see Profile).
func (c *Composite) Consume(f *lammps.Frame) lammps.WorkCount {
	var total lammps.WorkCount
	for _, part := range c.parts {
		w := part.Consume(f)
		total.Ops += w.Ops * part.Profile().SecondsPerOp
		total.Bytes += w.Bytes
	}
	return total
}

// Result implements Analysis: the concatenation of all parts' results.
func (c *Composite) Result() []float64 {
	var out []float64
	for _, part := range c.parts {
		out = append(out, part.Result()...)
	}
	return out
}

// Parts exposes the component analyses.
func (c *Composite) Parts() []Analysis { return append([]Analysis(nil), c.parts...) }

// The serve subcommand: run an experiment in a loop while exposing the
// telemetry hub over HTTP, so the simulated platform can be watched with
// the same tooling as a real cluster (Prometheus scrape + curl). The
// campaign gauges (seesaw_campaign_inflight_cells,
// seesaw_campaign_cells_total) expose the live campaign state of the
// looping experiment.
//
//	seesawctl serve -addr 127.0.0.1:8077 -id fig4
//	curl http://127.0.0.1:8077/metrics          # Prometheus text format
//	curl http://127.0.0.1:8077/debug/telemetry  # JSON metrics + recent events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"seesaw/internal/bench"
	"seesaw/internal/telemetry"
)

// runServe loops the selected experiment in the background and serves
// live telemetry until interrupted; Ctrl-C cancels the in-flight lap and
// shuts the listener down gracefully.
func runServe(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8077", "HTTP listen address")
	id := fs.String("id", "fig4", "experiment to loop (see 'seesawctl list')")
	steps := fs.Int("steps", 0, "override Verlet steps per run (0 = experiment default)")
	runs := fs.Int("runs", 0, "override repeated jobs per cell (0 = experiment default)")
	seed := fs.Uint64("seed", 1, "base seed")
	jobs := fs.Int("jobs", 0, "max experiment cells in flight (0 = GOMAXPROCS)")
	once := fs.Bool("once", false, "run the experiment once instead of looping (serving continues)")
	telPath := fs.String("telemetry", "", "additionally stream telemetry events to this file as JSON Lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	e, ok := bench.Get(*id)
	if !ok {
		fmt.Fprintln(os.Stderr, bench.UnknownExperimentError(*id))
		return 1
	}

	var hub *telemetry.Hub
	var closeHub func()
	if *telPath != "" {
		hub, closeHub = mustOpenHub(*telPath)
	} else {
		hub, closeHub = telemetry.New(telemetry.Options{}), func() {}
	}
	defer closeHub()

	// Bind before starting the experiment so a bad -addr fails fast.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seesawctl:", err)
		return 1
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := hub.Registry().WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/telemetry", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := hub.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})

	o := bench.Options{Steps: *steps, Runs: *runs, BaseSeed: *seed, Jobs: *jobs, Telemetry: hub}
	loopDone := make(chan struct{})
	go func() {
		defer close(loopDone)
		for i := 0; ; i++ {
			// Vary the seed per lap so the metrics keep moving; the first
			// lap reproduces the artifact exactly as 'seesawctl run' would.
			lap := o
			lap.BaseSeed = o.BaseSeed + uint64(i)*1000003
			fmt.Fprintf(os.Stderr, "seesawctl serve: %s lap %d (seed %d)\n", e.ID, i+1, lap.BaseSeed)
			if err := e.Run(ctx, lap, discard{}); err != nil {
				if ctx.Err() == nil {
					fmt.Fprintf(os.Stderr, "seesawctl serve: %s: %v\n", e.ID, err)
				}
				return
			}
			if *once {
				fmt.Fprintf(os.Stderr, "seesawctl serve: %s done; still serving\n", e.ID)
				return
			}
		}
	}()

	srv := &http.Server{Handler: mux}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "seesawctl serve: listening on http://%s (/metrics, /debug/telemetry)\n", ln.Addr())

	select {
	case err := <-serveErr:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "seesawctl:", err)
			return 1
		}
		return 0
	case <-ctx.Done():
		// Wait for the experiment loop to unwind its rank goroutines,
		// then drain in-flight HTTP requests.
		<-loopDone
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fmt.Fprintln(os.Stderr, "seesawctl:", err)
		}
		fmt.Fprintln(os.Stderr, "seesawctl serve: interrupted")
		return 130
	}
}

// discard swallows the experiment's table output; serve readers consume
// the metrics endpoints instead.
type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

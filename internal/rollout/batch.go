// Batched rollouts: fan a grid of (budget, w, dims, faults, topology,
// policy) points across the campaign engine's worker pool. Each cell is
// one full episode driven through the Env step API with a
// registry-constructed policy, so batch throughput measures the whole
// policy-search loop, not a shortcut around it.
//
// Each worker owns one Env (via the campaign worker-state hook), and
// every Env shares one bounded StateCache, so a sweep pays each
// distinct job's precompute — including its memoized noise traces —
// once and each worker's node population is rebuilt only when its cell
// stream crosses to a different job. Grid enumeration orders points so
// cells of one job are consecutive, which is what makes the per-worker
// single-entry episode pool effective.
//
// Points of one job are additionally carved into lane chunks (width
// from Options.Lanes, automatically node-scaled by default) that a
// worker advances in lockstep through the lane-stepped executor: one
// walk of the job's phase tables and noise traces per window feeds
// every lane. Chunking — rather than one cell per job — keeps the
// worker pool busy when the grid has fewer distinct jobs than workers,
// which is the common sweep shape (many budgets and policies of few
// jobs) and was the jobs=1/4/8 flatline.
package rollout

import (
	"context"
	"fmt"
	"strings"

	"seesaw/internal/campaign"
	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
	"seesaw/internal/workflow"
	"seesaw/internal/workload"
)

// Point is one rollout of the batch: a spec plus the registry policy
// that supplies the actions.
type Point struct {
	// Key identifies the point in results and errors,
	// e.g. "faults=kill:7@8/seesaw".
	Key string
	// Spec is the episode description.
	Spec Spec
	// Policy is the registry name of the acting allocator.
	Policy string
	// Window is the policy's reallocation window w (1 when zero).
	Window int
}

// Outcome is one point's result, in the point's enumeration slot.
type Outcome struct {
	// Point echoes the input point.
	Point Point
	// Result is the episode outcome (nil on error).
	Result *Result
	// Err is the point's failure, including context cancellation for
	// points skipped after a cancel.
	Err error
}

// Options tune a batch invocation.
type Options struct {
	// Name labels the batch in telemetry ("search" by default).
	Name string
	// Jobs bounds worker concurrency; <= 0 means GOMAXPROCS. Outcomes
	// are byte-identical at any value: points are pure functions of
	// their specs and results are assembled in enumeration order.
	Jobs int
	// Lanes fixes how many same-job points one worker advances in
	// lockstep (the lane-stepped executor); <= 0 picks the width
	// automatically — DefaultLanes, scaled down for large node
	// populations so the lane set stays cache-resident — and 1 disables
	// lane batching (one point per cell). Outcomes are byte-identical
	// at any width — lanes only reorder which episode's window executes
	// next, never the bytes of any episode.
	Lanes int
	// Cache, when non-nil, supplies the shared JobState cache so
	// callers can share precompute across batches and read hit/eviction
	// stats afterwards; nil gets a private bounded cache.
	Cache *StateCache
	// Telemetry, when non-nil, receives campaign progress events.
	Telemetry *telemetry.Hub
}

// DefaultLanes caps the automatic lane-chunk width: wide enough that
// the shared per-window state amortizes, narrow enough that a grid's
// key groups still split across workers.
const DefaultLanes = 4

// laneNodeBudget bounds the total node population one worker's lane set
// keeps resident when Options.Lanes is automatic. Lane-stepping pays
// while every lane's node state stays cache-warm across a window;
// measured on the reference box the cliff sits near 1k combined nodes
// (BENCH_rollouts3.json notes) — beyond it lockstep evicts its own
// lanes each window and loses to sequential replay.
const laneNodeBudget = 1024

// laneWidth resolves the lane width for a job of n total nodes: an
// explicit Options.Lanes wins; otherwise the node budget divided by the
// population, capped at DefaultLanes.
func laneWidth(opt, n int) int {
	if opt > 0 {
		return opt
	}
	w := DefaultLanes
	if n > 0 && laneNodeBudget/n < w {
		w = laneNodeBudget / n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Batch runs every point on the campaign worker pool and returns one
// Outcome per point, in point order. The returned error is the first
// failed point's error; the Outcome slice is always complete.
func Batch(ctx context.Context, points []Point, o Options) ([]Outcome, error) {
	name := o.Name
	if name == "" {
		name = "search"
	}

	// Factories resolved once per distinct policy name; an unknown name
	// still fails per cell (the cells that use it), not the whole batch.
	type lookup struct {
		fac policy.Factory
		err error
	}
	factories := map[string]lookup{}
	for _, p := range points {
		if _, ok := factories[p.Policy]; !ok {
			fac, err := policy.Lookup(p.Policy)
			factories[p.Policy] = lookup{fac: fac, err: err}
		}
	}

	cache := o.Cache
	if cache == nil {
		cache = NewStateCache()
	}

	// Carve the points into cells. Space-shared, uninstrumented points
	// with a resolvable policy group by job key into lane chunks (at
	// most lanes wide, enumeration order preserved within each chunk);
	// everything else — workflow topologies, instrumented specs,
	// unknown policies — keeps its own single-point cell. A cell sits at
	// its first point's enumeration slot, so same-job cells stay
	// consecutive in the worker streams either way.
	laneable := func(p Point) bool {
		return (p.Spec.Topology == "" || p.Spec.Topology == "space-shared") &&
			p.Spec.Telemetry == nil && factories[p.Policy].err == nil
	}
	var chunks [][]int // point indices per cell, cell enumeration order
	open := map[string]int{}
	for i, p := range points {
		w := laneWidth(o.Lanes, p.Spec.Workload.SimNodes+p.Spec.Workload.AnaNodes)
		if w > 1 && laneable(p) {
			key := p.Spec.jobKey()
			if ci, ok := open[key]; ok && len(chunks[ci]) < w {
				chunks[ci] = append(chunks[ci], i)
				continue
			}
			open[key] = len(chunks)
		}
		chunks = append(chunks, []int{i})
	}

	// runPoint is the single-point path: the pooled per-worker episode
	// (or a throwaway Env when the pool is absent).
	runPoint := func(ctx context.Context, p Point) (*Result, error) {
		w := p.Window
		if w < 1 {
			w = 1
		}
		lk := factories[p.Policy]
		if lk.err != nil {
			return nil, lk.err
		}
		n := p.Spec.Workload.SimNodes + p.Spec.Workload.AnaNodes
		pol, err := lk.fac(p.Spec.constraints(n), w)
		if err != nil {
			return nil, err
		}
		if env, ok := campaign.WorkerValue(ctx).(*Env); ok {
			return env.Rollout(ctx, p.Spec, pol)
		}
		return Run(ctx, p.Spec, pol)
	}

	cells := make([]campaign.Cell, len(chunks))
	for ci, idxs := range chunks {
		first := points[idxs[0]]
		key := first.Key
		if len(idxs) > 1 {
			key = fmt.Sprintf("%s [+%d lanes]", key, len(idxs)-1)
		}
		cells[ci] = campaign.Cell{
			Key:  key,
			Seed: first.Spec.Seed,
			Run: func(ctx context.Context) (any, error) {
				if len(idxs) == 1 {
					res, err := runPoint(ctx, points[idxs[0]])
					if err != nil {
						return nil, err
					}
					return []*Result{res}, nil
				}
				specs := make([]Spec, len(idxs))
				pols := make([]core.Policy, len(idxs))
				for k, idx := range idxs {
					p := points[idx]
					w := p.Window
					if w < 1 {
						w = 1
					}
					n := p.Spec.Workload.SimNodes + p.Spec.Workload.AnaNodes
					pol, err := factories[p.Policy].fac(p.Spec.constraints(n), w)
					if err != nil {
						return nil, err
					}
					specs[k], pols[k] = p.Spec, pol
				}
				env, pooled := campaign.WorkerValue(ctx).(*Env)
				if !pooled {
					env = NewEnvWith(cache)
					defer env.Close()
				}
				return env.RolloutLanes(ctx, specs, pols)
			},
		}
	}
	rs, err := campaign.Run(ctx, cells, campaign.Options{
		Name:        name,
		Jobs:        o.Jobs,
		Telemetry:   o.Telemetry,
		WorkerState: func() any { return NewEnvWith(cache) },
	})
	outs := make([]Outcome, len(points))
	for ci, r := range rs {
		lane, _ := r.Value.([]*Result)
		for k, idx := range chunks[ci] {
			outs[idx] = Outcome{Point: points[idx], Err: r.Err}
			if k < len(lane) {
				outs[idx].Result = lane[k]
			}
		}
	}
	return outs, err
}

// Grid enumerates a search space as the cross product of its axes; zero
// axes fall back to one default point, so a Grid zero value expands to
// a single paper-default rollout.
type Grid struct {
	// Nodes are total node counts (split evenly); default 8.
	Nodes []int
	// Budgets are per-node budgets in Watts; default 110 (the paper's).
	Budgets []units.Watts
	// Windows are reallocation windows w; default 1.
	Windows []int
	// Dims are problem sizes; default 16.
	Dims []int
	// Faults are fault plans in internal/fault's grammar ("" = none).
	Faults []string
	// Classes are device-class maps in machine.ClassMap's grammar
	// ("" = homogeneous). A non-empty value appends a "/classes=..."
	// segment to the point key; the homogeneous default leaves keys
	// unchanged.
	Classes []string
	// Topologies are placement names ("" = space-shared).
	Topologies []string
	// Policies are registry policy names; default policy.Names().
	Policies []string
	// Steps is the Verlet step count per episode (400 when zero);
	// J synchronizes every j-th step (1 when zero).
	Steps, J int
	// Analyses names the analysis kernels; default {"msd"}.
	Analyses []string
	// Seed is the base job seed (1 when zero).
	Seed uint64
}

// axis returns vals, or the single fallback when empty.
func axis[T any](vals []T, fallback T) []T {
	if len(vals) == 0 {
		return []T{fallback}
	}
	return vals
}

// Expand enumerates the grid's points in deterministic axis order.
// Invalid axis values (a bad fault plan, an unknown topology or policy)
// surface as errors here, before any rollout runs.
func (g Grid) Expand() ([]Point, error) {
	steps := g.Steps
	if steps == 0 {
		steps = 400
	}
	j := g.J
	if j == 0 {
		j = 1
	}
	seed := g.Seed
	if seed == 0 {
		seed = 1
	}
	analyses := axis(g.Analyses, "msd")
	tasks := workload.Tasks(analyses...)

	policies := g.Policies
	if len(policies) == 0 {
		policies = policy.Names()
	}
	for _, p := range policies {
		if !policy.Valid(p) {
			return nil, &policy.UnknownPolicyError{Name: p, Valid: policy.Names()}
		}
	}
	for _, t := range g.Topologies {
		if t == "" || t == "space-shared" {
			continue
		}
		// Validate the name only; node-count constraints (e.g. dag's
		// divisible-by-8 rule) depend on the Nodes axis and surface per
		// point at rollout time.
		known := false
		for _, n := range workflow.TopologyNames() {
			if t == n {
				known = true
				break
			}
		}
		if !known {
			return nil, fmt.Errorf("rollout: unknown topology %q (valid: %v)", t, workflow.TopologyNames())
		}
	}

	// Scalar knobs that default in most grids appear in point keys only
	// when they deviate, so default grids keep their established keys
	// while two grids differing in steps/j/analyses/seed can never
	// collide on a key.
	var extra string
	if steps != 400 {
		extra += fmt.Sprintf("steps%d/", steps)
	}
	if j != 1 {
		extra += fmt.Sprintf("j%d/", j)
	}
	if len(analyses) != 1 || analyses[0] != "msd" {
		extra += "an=" + strings.Join(analyses, "+") + "/"
	}
	if seed != 1 {
		extra += fmt.Sprintf("seed%d/", seed)
	}

	nodesAx := axis(g.Nodes, 8)
	budgetsAx := axis(g.Budgets, defaultCapPerNode)
	windowsAx := axis(g.Windows, 1)
	dimsAx := axis(g.Dims, 16)
	faultsAx := axis(g.Faults, "")
	classesAx := axis(g.Classes, "")
	toposAx := axis(g.Topologies, "")

	points := make([]Point, 0, len(nodesAx)*len(budgetsAx)*len(windowsAx)*
		len(dimsAx)*len(faultsAx)*len(classesAx)*len(toposAx)*len(policies))
	for _, nodes := range nodesAx {
		for _, budget := range budgetsAx {
			for _, w := range windowsAx {
				for _, dim := range dimsAx {
					for _, fp := range faultsAx {
						plan, err := fault.Parse(fp)
						if err != nil {
							return nil, fmt.Errorf("rollout: %w", err)
						}
						for _, cs := range classesAx {
							classes, err := machine.ParseClassMap(cs)
							if err != nil {
								return nil, fmt.Errorf("rollout: %w", err)
							}
							for _, topo := range toposAx {
								for _, pol := range policies {
									// The classes segment is inserted before the
									// policy only when heterogeneous, so class-free
									// grids keep their keys and the policy stays the
									// trailing segment (scenario grouping strips it).
									het := ""
									if cs != "" {
										het = "classes=" + cs + "/"
									}
									key := fmt.Sprintf("n%d/b%g/w%d/dim%d/%sfaults=%s/topo=%s/%s%s",
										nodes, float64(budget), w, dim, extra, orNone(fp), orName(topo), het, pol)
									points = append(points, Point{
										Key: key,
										Spec: Spec{
											Workload: workload.Spec{
												SimNodes: nodes / 2, AnaNodes: nodes - nodes/2,
												Dim: dim, J: j, Steps: steps, Analyses: tasks,
											},
											Topology:   topo,
											CapPerNode: budget,
											Seed:       seed,
											RunSeed:    seed + 1,
											Noise:      machine.DefaultNoise(),
											Faults:     plan,
											Classes:    classes,
										},
										Policy: pol,
										Window: w,
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return points, nil
}

// orNone renders an empty fault plan as "none" in point keys.
func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

// orName renders an empty topology as "space-shared" in point keys.
func orName(s string) string {
	if s == "" {
		return "space-shared"
	}
	return s
}

// Self-test: the paper's headline qualitative claims, runnable as a
// single command (`seesawctl selftest`). Each check runs moderate-size
// cells through the full stack and asserts an ordering, not a magnitude
// — the same invariants the test suite pins, exposed to users verifying
// an installation or a modified calibration.
package bench

import (
	"context"
	"fmt"
	"io"

	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// SelfTestResult is one check's outcome.
type SelfTestResult struct {
	Name   string
	Detail string
	Pass   bool
}

// RunSelfTest executes every headline check, streaming results to w, and
// reports whether all passed.
func RunSelfTest(ctx context.Context, o Options, w io.Writer) (bool, error) {
	steps := o.steps(150)
	type check struct {
		name string
		run  func() (SelfTestResult, error)
	}

	imp := func(policy string, spec workload.Spec, seed uint64) (float64, error) {
		v, _, err := medianImprovement(ctx, cell{spec: spec, policy: policy, window: 1}, 1, seed)
		return v, err
	}

	checks := []check{
		{"seesaw wins on the high-demand analysis (full MSD)", func() (SelfTestResult, error) {
			spec := spec128(defaultDim, 1, 400, workload.Tasks("msd"))
			ss, err := imp("seesaw", spec, o.BaseSeed+1003)
			if err != nil {
				return SelfTestResult{}, err
			}
			ta, err := imp("time-aware", spec, o.BaseSeed+1003)
			if err != nil {
				return SelfTestResult{}, err
			}
			pa, err := imp("power-aware", spec, o.BaseSeed+1003)
			if err != nil {
				return SelfTestResult{}, err
			}
			return SelfTestResult{
				Detail: fmt.Sprintf("seesaw %+.2f%%, time-aware %+.2f%%, power-aware %+.2f%%", ss, ta, pa),
				Pass:   ss > 0 && ss > ta && ss > pa,
			}, nil
		}},
		{"power-aware loses across workloads", func() (SelfTestResult, error) {
			worst := 100.0
			for _, cs := range []analysisCase{
				{"msd", defaultDim, workload.Tasks("msd")},
				{"vacf", defaultMidDim, workload.Tasks("vacf")},
			} {
				v, err := imp("power-aware", spec128(cs.dim, 1, steps, cs.analyses), o.BaseSeed+1005)
				if err != nil {
					return SelfTestResult{}, err
				}
				if v < worst {
					worst = v
				}
				if v > 1.0 {
					return SelfTestResult{Detail: fmt.Sprintf("%s improved %+.2f%%", cs.label, v)}, nil
				}
			}
			return SelfTestResult{Detail: fmt.Sprintf("worst %+.2f%%", worst), Pass: true}, nil
		}},
		{"time-aware competitive on low-demand analyses", func() (SelfTestResult, error) {
			v, err := imp("time-aware", spec128(defaultMidDim, 1, steps, workload.Tasks("vacf")), o.BaseSeed+1007)
			if err != nil {
				return SelfTestResult{}, err
			}
			return SelfTestResult{Detail: fmt.Sprintf("vacf %+.2f%%", v), Pass: v > 3}, nil
		}},
		{"seesaw local optimum below the time-aware reference on low demand", func() (SelfTestResult, error) {
			spec := spec128(defaultMidDim, 1, steps, workload.Tasks("vacf"))
			ss, err := imp("seesaw", spec, o.BaseSeed+1009)
			if err != nil {
				return SelfTestResult{}, err
			}
			ta, err := imp("time-aware", spec, o.BaseSeed+1009)
			if err != nil {
				return SelfTestResult{}, err
			}
			return SelfTestResult{
				Detail: fmt.Sprintf("seesaw %+.2f%% < time-aware %+.2f%%, both > 0", ss, ta),
				Pass:   ss > 0 && ta > ss,
			}, nil
		}},
		{"diminishing returns past ~140 W (fig 8 shape)", func() (SelfTestResult, error) {
			spec := spec128(defaultDim, 1, steps, workload.AllAnalyses())
			at := func(c units.Watts) (float64, error) {
				v, _, err := medianImprovement(ctx, cell{spec: spec, policy: "seesaw", window: 1, capPerNode: c},
					1, o.BaseSeed+1011)
				return v, err
			}
			peak, err := at(115)
			if err != nil {
				return SelfTestResult{}, err
			}
			loose, err := at(150)
			if err != nil {
				return SelfTestResult{}, err
			}
			return SelfTestResult{
				Detail: fmt.Sprintf("115 W: %+.2f%%, 150 W: %+.2f%%", peak, loose),
				Pass:   peak > loose+1,
			}, nil
		}},
	}

	all := true
	for _, c := range checks {
		res, err := c.run()
		if err != nil {
			return false, fmt.Errorf("selftest %q: %w", c.name, err)
		}
		status := "PASS"
		if !res.Pass {
			status = "FAIL"
			all = false
		}
		if _, err := fmt.Fprintf(w, "%-4s %s (%s)\n", status, c.name, res.Detail); err != nil {
			return false, err
		}
	}
	return all, nil
}

package mpi

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"seesaw/internal/units"
)

func run(t *testing.T, n int, body func(r *Rank)) {
	t.Helper()
	if err := Run(n, DefaultCost(), body); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadRankCount(t *testing.T) {
	if err := Run(0, DefaultCost(), func(*Rank) {}); err == nil {
		t.Error("Run(0) should fail")
	}
}

func TestWorldBasics(t *testing.T) {
	run(t, 4, func(r *Rank) {
		if r.WorldSize() != 4 {
			panic("wrong world size")
		}
		if r.World().Size() != 4 {
			panic("wrong comm size")
		}
		if r.World().Rank() != r.WorldRank() {
			panic("world comm rank mismatch")
		}
	})
}

func TestElapseAndClock(t *testing.T) {
	run(t, 2, func(r *Rank) {
		r.Elapse(1.5)
		if r.Clock() != 1.5 {
			panic("clock after elapse wrong")
		}
		r.AdvanceTo(1.0) // must not go backwards
		if r.Clock() != 1.5 {
			panic("AdvanceTo moved clock backwards")
		}
		r.AdvanceTo(2.0)
		if r.Clock() != 2.0 {
			panic("AdvanceTo did not advance")
		}
	})
}

func TestElapsePanicsOnNegative(t *testing.T) {
	err := Run(1, DefaultCost(), func(r *Rank) { r.Elapse(-1) })
	if err == nil {
		t.Error("negative Elapse should propagate as rank panic error")
	}
}

func TestBarrierMergesClocks(t *testing.T) {
	var mu sync.Mutex
	clocks := map[int]units.Seconds{}
	run(t, 4, func(r *Rank) {
		r.Elapse(units.Seconds(r.WorldRank())) // ranks at 0,1,2,3
		r.World().Barrier()
		mu.Lock()
		clocks[r.WorldRank()] = r.Clock()
		mu.Unlock()
	})
	for rank, c := range clocks {
		if c < 3 {
			t.Errorf("rank %d clock %v below slowest arrival 3", rank, c)
		}
		if c != clocks[0] {
			t.Errorf("clocks differ after barrier: %v vs %v", c, clocks[0])
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	run(t, 5, func(r *Rank) {
		got := r.World().AllreduceSum([]float64{float64(r.WorldRank()), 1})
		if got[0] != 10 || got[1] != 5 {
			panic(fmt.Sprintf("allreduce sum = %v", got))
		}
	})
}

func TestAllreduceMaxMin(t *testing.T) {
	run(t, 4, func(r *Rank) {
		x := float64(r.WorldRank())
		if got := r.World().AllreduceMax([]float64{x})[0]; got != 3 {
			panic(fmt.Sprintf("allreduce max = %v", got))
		}
		if got := r.World().AllreduceMin([]float64{x})[0]; got != 0 {
			panic(fmt.Sprintf("allreduce min = %v", got))
		}
	})
}

func TestAllreduceDoesNotAliasInput(t *testing.T) {
	run(t, 2, func(r *Rank) {
		in := []float64{1}
		out := r.World().AllreduceSum(in)
		out[0] = 99
		if in[0] != 1 {
			panic("allreduce result aliases caller input")
		}
	})
}

func TestBcast(t *testing.T) {
	run(t, 4, func(r *Rank) {
		var payload any
		if r.WorldRank() == 2 {
			payload = "hello"
		}
		got := r.World().Bcast(2, payload, 8)
		if got != "hello" {
			panic(fmt.Sprintf("bcast got %v", got))
		}
	})
}

func TestGather(t *testing.T) {
	run(t, 3, func(r *Rank) {
		res := r.World().Gather(0, r.WorldRank()*10, 8)
		if r.WorldRank() == 0 {
			if len(res) != 3 || res[0] != 0 || res[1] != 10 || res[2] != 20 {
				panic(fmt.Sprintf("gather at root = %v", res))
			}
		} else if res != nil {
			panic("non-root gather result should be nil")
		}
	})
}

func TestAllgather(t *testing.T) {
	run(t, 3, func(r *Rank) {
		res := r.World().Allgather(r.WorldRank(), 8)
		for i, v := range res {
			if v != i {
				panic(fmt.Sprintf("allgather[%d] = %v", i, v))
			}
		}
	})
}

func TestSendRecv(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.WorldRank() == 0 {
			r.Elapse(1)
			r.Send(1, 7, "payload", 100)
		} else {
			got := r.Recv(0, 7)
			if got != "payload" {
				panic("wrong payload")
			}
			// Receiver clock must be at least the send time + flight.
			if r.Clock() < 1 {
				panic(fmt.Sprintf("receive completed before send: clock %v", r.Clock()))
			}
		}
	})
}

func TestRecvMatchesByTag(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.WorldRank() == 0 {
			r.Send(1, 1, "first", 8)
			r.Send(1, 2, "second", 8)
		} else {
			// Receive out of order by tag.
			if got := r.Recv(0, 2); got != "second" {
				panic("tag 2 mismatch")
			}
			if got := r.Recv(0, 1); got != "first" {
				panic("tag 1 mismatch")
			}
		}
	})
}

func TestRecvPreservesFIFOPerTag(t *testing.T) {
	run(t, 2, func(r *Rank) {
		if r.WorldRank() == 0 {
			for i := 0; i < 10; i++ {
				r.Send(1, 5, i, 8)
			}
		} else {
			for i := 0; i < 10; i++ {
				if got := r.Recv(0, 5); got != i {
					panic(fmt.Sprintf("out of order: got %v want %d", got, i))
				}
			}
		}
	})
}

func TestSplit(t *testing.T) {
	run(t, 6, func(r *Rank) {
		color := r.WorldRank() % 2
		sub := r.World().Split(color, r.WorldRank())
		if sub.Size() != 3 {
			panic(fmt.Sprintf("split size = %d", sub.Size()))
		}
		// Members are ordered by key (= world rank here).
		want := (sub.Rank()*2 + color)
		if sub.WorldRankOf(sub.Rank()) != want {
			panic(fmt.Sprintf("split ordering wrong: %d vs %d", sub.WorldRankOf(sub.Rank()), want))
		}
		// Collectives work within the sub-communicator.
		sum := sub.AllreduceSum([]float64{1})
		if sum[0] != 3 {
			panic("sub-communicator allreduce wrong")
		}
	})
}

func TestSplitUndefined(t *testing.T) {
	run(t, 4, func(r *Rank) {
		color := 0
		if r.WorldRank() == 3 {
			color = -1 // MPI_UNDEFINED
		}
		sub := r.World().Split(color, 0)
		if r.WorldRank() == 3 {
			if sub != nil {
				panic("undefined color should return nil comm")
			}
			return
		}
		if sub.Size() != 3 {
			panic("wrong sub size")
		}
		sub.Barrier()
	})
}

func TestSplitKeyOrdering(t *testing.T) {
	run(t, 4, func(r *Rank) {
		// Reverse ordering by key.
		sub := r.World().Split(0, -r.WorldRank())
		if got := sub.WorldRankOf(0); got != 3 {
			panic(fmt.Sprintf("rank 0 of reversed comm should be world 3, got %d", got))
		}
	})
}

// TestSplitRepeatReusesComm pins the consecutive-split cache: an
// identical re-split returns the very same communicator handle, while a
// changed color assignment (cache miss) builds a correct fresh one and
// the original pattern can still come back afterwards. Runs on both
// sides of splitSerialMax to cover the serial and amortized paths.
func TestSplitRepeatReusesComm(t *testing.T) {
	for _, n := range []int{8, 96} {
		t.Run(fmt.Sprintf("ranks=%d", n), func(t *testing.T) {
			run(t, n, func(r *Rank) {
				halves := r.World().Split(r.WorldRank()%2, r.WorldRank())
				again := r.World().Split(r.WorldRank()%2, r.WorldRank())
				if again != halves {
					panic("identical re-split did not reuse the cached communicator")
				}
				thirds := r.World().Split(r.WorldRank()%3, r.WorldRank())
				if thirds == halves {
					panic("changed split wrongly hit the cache")
				}
				wantThird := n/3 + boolToInt(r.WorldRank()%3 < n%3)
				if thirds.Size() != wantThird {
					panic(fmt.Sprintf("thirds size = %d, want %d", thirds.Size(), wantThird))
				}
				if sum := thirds.AllreduceSum([]float64{1}); sum[0] != float64(wantThird) {
					panic("collective on cache-miss communicator wrong")
				}
				back := r.World().Split(r.WorldRank()%2, r.WorldRank())
				if back.Size() != n/2 || back.Rank() != halves.Rank() {
					panic("re-split after an intervening pattern is wrong")
				}
				if sum := back.AllreduceSum([]float64{1}); sum[0] != float64(n/2) {
					panic("collective on re-split communicator wrong")
				}
			})
		})
	}
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestCollectiveMismatchPanics(t *testing.T) {
	err := Run(2, DefaultCost(), func(r *Rank) {
		if r.WorldRank() == 0 {
			r.World().Barrier()
		} else {
			r.World().AllreduceSum([]float64{1})
		}
	})
	if err == nil {
		t.Error("mismatched collectives should produce an error")
	}
}

func TestDeterministicClocks(t *testing.T) {
	final := func() []float64 {
		out := make([]float64, 8)
		var mu sync.Mutex
		_ = Run(8, DefaultCost(), func(r *Rank) {
			for i := 0; i < 10; i++ {
				r.Elapse(units.Seconds(r.WorldRank()+1) * 0.01)
				r.World().Barrier()
			}
			mu.Lock()
			out[r.WorldRank()] = float64(r.Clock())
			mu.Unlock()
		})
		return out
	}
	a, b := final(), final()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("virtual clocks not deterministic at rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestCostModel(t *testing.T) {
	c := DefaultCost()
	if c.CollectiveCost(1, 100) != 0 {
		t.Error("single-rank collective should cost 0")
	}
	if c.CollectiveCost(2, 8) <= 0 {
		t.Error("two-rank collective should cost > 0")
	}
	// Cost grows with rank count (log tree).
	if c.CollectiveCost(1024, 8) <= c.CollectiveCost(2, 8) {
		t.Error("collective cost should grow with scale")
	}
	if c.P2PCost(1<<20) <= c.P2PCost(0) {
		t.Error("p2p cost should grow with bytes")
	}
}

func TestCollectiveCostMonotonic(t *testing.T) {
	c := DefaultCost()
	f := func(k uint8, b uint16) bool {
		k1 := int(k%64) + 2
		cost1 := c.CollectiveCost(k1, int(b))
		cost2 := c.CollectiveCost(k1*2, int(b))
		return cost2 >= cost1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestManyRanksStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	run(t, 256, func(r *Rank) {
		for i := 0; i < 5; i++ {
			sum := r.World().AllreduceSum([]float64{1})
			if sum[0] != 256 {
				panic("wrong sum at scale")
			}
		}
	})
}

func TestSendToInvalidRankPanics(t *testing.T) {
	err := Run(2, DefaultCost(), func(r *Rank) {
		if r.WorldRank() == 0 {
			r.Send(5, 0, nil, 0)
		}
	})
	if err == nil {
		t.Error("send to invalid rank should error")
	}
}

func TestSingleRankCollectives(t *testing.T) {
	run(t, 1, func(r *Rank) {
		r.World().Barrier()
		if got := r.World().AllreduceSum([]float64{4})[0]; got != 4 {
			panic("single-rank allreduce wrong")
		}
		if got := r.World().Bcast(0, "x", 1); got != "x" {
			panic("single-rank bcast wrong")
		}
	})
}

package insitu

import (
	"context"
	"strings"
	"testing"

	"seesaw/internal/core"
)

func TestTopologyUnknownRejected(t *testing.T) {
	cfg := tinyConfig(core.NewStatic(), []string{"msd"}, 5)
	cfg.Topology = "ring"
	_, err := Run(context.Background(), cfg)
	if err == nil {
		t.Fatal("bogus topology accepted")
	}
	for _, want := range []string{`"ring"`, "space-shared", "time-shared", "in-transit"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("topology error missing %q: %v", want, err)
		}
	}
}

func TestTimeSharedRequiresPairedPartitions(t *testing.T) {
	cfg := tinyConfig(core.NewStatic(), []string{"msd"}, 5)
	cfg.SimRanks, cfg.AnaRanks = 3, 1
	cfg.Topology = "time-shared"
	if _, err := Run(context.Background(), cfg); err == nil ||
		!strings.Contains(err.Error(), "rank-for-rank") {
		t.Errorf("unpaired time-shared run should be rejected, got %v", err)
	}
}

// TestTopologiesDivergeFromSpaceShared: the alternative placements run
// the same workload but must cost differently — in-transit adds staging
// phases to every frame exchange, time-shared contends for half-node
// domains — while producing identical analysis output.
func TestTopologiesDivergeFromSpaceShared(t *testing.T) {
	run := func(topology string) *Result {
		t.Helper()
		cfg := tinyConfig(core.NewStatic(), []string{"msd"}, 10)
		cfg.Topology = topology
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("topology %q: %v", topology, err)
		}
		return res
	}
	base := run("")
	transit := run("in-transit")
	shared := run("time-shared")
	if transit.MainLoopTime <= base.MainLoopTime {
		t.Errorf("in-transit (%v) should be slower than space-shared (%v): staging is paid on the clock",
			transit.MainLoopTime, base.MainLoopTime)
	}
	if shared.MainLoopTime == base.MainLoopTime {
		t.Error("time-shared run identical to space-shared; half-node domains not applied")
	}
	for _, res := range []*Result{transit, shared} {
		if len(res.AnalysisResults["msd"]) != len(base.AnalysisResults["msd"]) {
			t.Error("placement changed the analysis output shape")
		}
	}
}

func TestTimeSharedDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := tinyConfig(core.NewStatic(), []string{"msd"}, 8)
		cfg.Topology = "time-shared"
		res, err := Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MainLoopTime != b.MainLoopTime || a.TotalEnergy != b.TotalEnergy {
		t.Errorf("time-shared runs diverge: %v/%v vs %v/%v",
			a.MainLoopTime, a.TotalEnergy, b.MainLoopTime, b.TotalEnergy)
	}
}

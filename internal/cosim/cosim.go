// Package cosim is the scale-level co-simulation driver for the paper's
// 128-1024-node experiments. It advances one space-shared in-situ job —
// n simulation nodes plus n analysis nodes, each a machine.Node with its
// own simulated RAPL domain — synchronization interval by
// synchronization interval:
//
//  1. every node executes its interval's phases (from the workload
//     model), yielding per-node busy times and drawn power;
//  2. the slower partition sets the interval's wall time; faster nodes
//     idle at synchronization, drawing idle power (the troughs of
//     Figure 1);
//  3. per-node (time, power, cap) measurements — exactly what PoLiMER
//     reports — go to the configured policy, which may emit new caps;
//  4. caps are written to each node's RAPL domain (taking effect after
//     the actuation latency) and the allocator's communication cost is
//     charged to the next interval.
//
// Unlike package insitu (goroutine-per-rank over the message-passing
// runtime, real mini-MD), cosim is sequential and uses the workload
// tables, making hundreds of multi-policy, multi-seed experiment cells
// cheap while exercising the same Policy implementations.
package cosim

import (
	"context"
	"fmt"

	"seesaw/internal/cluster"
	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/mpi"
	"seesaw/internal/rapl"
	"seesaw/internal/telemetry"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// CapMode selects which RAPL caps a job installs (Table I's cap types).
type CapMode int

// Cap modes.
const (
	// CapNone runs uncapped (Table I "None").
	CapNone CapMode = iota
	// CapLong installs only the long-term cap (the paper's main
	// configuration, Section VII-A).
	CapLong
	// CapLongShort installs both long- and short-term caps (Table I
	// "Long and Short"): the budget is guaranteed but RAPL regulates
	// slightly below the request and variability increases.
	CapLongShort
)

// Config describes one co-simulated job.
type Config struct {
	// Spec is the workload (node counts, dim, j, steps, analyses).
	Spec workload.Spec
	// Policy allocates power at each synchronization; nil means static.
	Policy core.Policy
	// Constraints carry the global budget and per-node cap range.
	Constraints core.Constraints
	// InitialSimCap and InitialAnaCap are per-node starting caps; zero
	// means an even split of the budget (the paper's baseline).
	InitialSimCap, InitialAnaCap units.Watts
	// CapMode selects the RAPL cap types (CapLong by default for
	// capped runs; use CapNone for uncapped variability rows).
	CapMode CapMode
	// Seed drives node noise deterministically. Two runs with the same
	// seed share node placement (run-to-run); different seeds model
	// different jobs (job-to-job).
	Seed uint64
	// RunSeed, when non-zero, separates per-run jitter from the
	// job-level Seed: repeated runs inside one job share Seed (node
	// skews) but differ in RunSeed — the paper's run-to-run setting
	// (Table I).
	RunSeed uint64
	// Noise configures run-to-run and job-to-job variability
	// magnitudes; zero disables noise entirely.
	Noise machine.NoiseModel
	// Machine is the node performance model (DefaultModel if zero);
	// with Classes set it describes the default class.
	Machine machine.Model
	// Rapl is the RAPL hardware model (Theta if zero); with Classes
	// set it describes the default class.
	Rapl rapl.Config
	// Classes assigns device classes to node ids (machine.ClassMap
	// grammar); nil keeps the cluster homogeneous. The allocators see
	// each node's class capability and weight its budget share.
	Classes *machine.ClassMap
	// ClassRegistry optionally overrides the built-in class presets.
	ClassRegistry map[string]machine.Class
	// Cost models the allocator's communication (DefaultCost if zero).
	Cost mpi.CostModel
	// TraceSegments, when true, records (time, power) segments for the
	// first node of each partition so power traces can be resampled
	// (Figure 1).
	TraceSegments bool
	// Faults is an optional deterministic fault plan: node kills and
	// slow-node excursions keyed to the synchronization schedule (an
	// event planned for sync k is in force before interval k executes).
	// Killed nodes stop executing and draw no power; their share of the
	// partition's domain-decomposed work shifts onto the survivors, and
	// the policy sees them as Dead measures. Nil means a fault-free run.
	Faults *fault.Plan
	// Telemetry, when non-nil, receives metrics and structured events
	// from the run: cap writes and throttling per partition (from each
	// node's RAPL domain), one SyncBarrier per interval, idle troughs,
	// policy decisions and budget violations. Nil disables all
	// instrumentation at no cost.
	Telemetry *telemetry.Hub
}

// normalize applies defaults.
func (c *Config) normalize() error {
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if c.Policy == nil {
		c.Policy = core.NewStatic()
	}
	// Machine/Rapl zero-value defaults are owned by cluster.Config.Defaults,
	// the one normalization step shared by every driver.
	if c.Cost == (mpi.CostModel{}) {
		c.Cost = mpi.DefaultCost()
	}
	nodes := c.Spec.SimNodes + c.Spec.AnaNodes
	if c.CapMode != CapNone {
		if err := c.Constraints.Validate(nodes); err != nil {
			return err
		}
		even := core.EvenSplit(c.Constraints, nodes)
		if c.InitialSimCap == 0 {
			c.InitialSimCap = even
		}
		if c.InitialAnaCap == 0 {
			c.InitialAnaCap = even
		}
	}
	return nil
}

// Segment is a span of constant power on one node, for trace resampling.
type Segment struct {
	Start    units.Seconds
	Duration units.Seconds
	Power    units.Watts
}

// Result summarizes a co-simulated job.
type Result struct {
	// TotalTime is the job's main-loop wall time.
	TotalTime units.Seconds
	// SyncLog records each synchronization interval.
	SyncLog *trace.SyncLog
	// TotalEnergy sums all nodes' energy.
	TotalEnergy units.Joules
	// OverheadPerSync is the modeled allocator overhead charged at each
	// synchronization (communication + actuation bookkeeping).
	OverheadPerSync units.Seconds
	// SimSegments and AnaSegments are power segments of the first node
	// of each partition (only when Config.TraceSegments).
	SimSegments, AnaSegments []Segment
	// FinalCaps are the per-node caps at the end of the run.
	FinalCaps []units.Watts
	// FaultLog records the health transitions the fault plan fired, in
	// firing order (empty for fault-free runs).
	FaultLog []cluster.Transition
	// AliveSim and AliveAna are the partitions' live sizes at the end.
	AliveSim, AliveAna int
}

// Run executes the co-simulation. The context is checked at every
// synchronization interval: cancelling it makes Run return ctx.Err()
// promptly with no partial Result.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	spec := cfg.Spec
	nSim, nAna := spec.SimNodes, spec.AnaNodes
	nTotal := nSim + nAna

	// The cluster layer owns node construction and health: it builds the
	// same nodes this driver used to wire up itself (so fault-free runs
	// are unchanged) and applies the fault plan on the virtual clock.
	cl, err := cluster.New(cluster.Config{
		SimNodes:      nSim,
		AnaNodes:      nAna,
		Rapl:          cfg.Rapl,
		Machine:       cfg.Machine,
		Noise:         cfg.Noise,
		Classes:       cfg.Classes,
		ClassRegistry: cfg.ClassRegistry,
		JobSeed:       cfg.Seed,
		RunSeed:       cfg.RunSeed,
		Faults:        cfg.Faults,
		Telemetry:     cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	var clock units.Seconds
	policy := core.Instrument(cfg.Policy, cfg.Telemetry, func() float64 { return float64(clock) })
	// Install initial caps.
	if cfg.CapMode != CapNone {
		for i := 0; i < nTotal; i++ {
			cap := cfg.InitialAnaCap
			if cl.Role(i) == core.RoleSimulation {
				cap = cfg.InitialSimCap
			}
			cl.Node(i).RAPL().SetLongCap(cap)
			if cfg.CapMode == CapLongShort {
				cl.Node(i).RAPL().SetShortCap(cap)
			}
		}
	}

	// Allocator overhead per synchronization: the measurement Allgather
	// and the cap Bcast over all nodes, plus the policy's local compute.
	const policyComputeTime = 2e-6
	overhead := cfg.Cost.CollectiveCost(nTotal, 32*nTotal) +
		cfg.Cost.CollectiveCost(nTotal, 8*nTotal) +
		policyComputeTime

	res := &Result{SyncLog: &trace.SyncLog{}, OverheadPerSync: overhead}

	type intervalEnd struct {
		step int
		sync bool
	}
	var schedule []intervalEnd
	for _, s := range spec.SyncSchedule() {
		schedule = append(schedule, intervalEnd{step: s, sync: true})
	}
	if len(schedule) == 0 {
		return nil, fmt.Errorf("cosim: workload has no synchronization steps")
	}
	// A trailing partial interval covers Verlet steps after the last
	// synchronization.
	if last := schedule[len(schedule)-1].step; last < spec.Steps {
		schedule = append(schedule, intervalEnd{step: spec.Steps})
	}

	busy := make([]units.Seconds, nTotal)
	measures := make([]core.NodeMeasure, nTotal)
	lastEnergy := make([]units.Joules, nTotal)
	var carryOverhead units.Seconds

	// Idle-trough handles resolved once per partition: the per-node
	// observation inside the synchronization loop must not pay a family
	// label lookup (and a Role→string conversion) per node per interval.
	idleSimM := cfg.Telemetry.IdleWaitMetric(core.RoleSimulation.String())
	idleAnaM := cfg.Telemetry.IdleWaitMetric(core.RoleAnalysis.String())

	prevStep := 0
	for syncIdx, iv := range schedule {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		step, syncing := iv.step, iv.sync

		// 0. Fault plan: transitions planned for this interval fire
		// before it executes. A kill shifts the dead node's share of the
		// partition's domain-decomposed work onto the survivors.
		if trs := cl.Advance(clock, syncIdx+1); len(trs) > 0 {
			res.FaultLog = append(res.FaultLog, trs...)
		}
		scale := [2]float64{}
		scale[core.RoleSimulation] = cl.WorkScale(core.RoleSimulation)
		scale[core.RoleAnalysis] = cl.WorkScale(core.RoleAnalysis)

		simPhases := spec.SimIntervalIdx(prevStep, step, syncIdx)
		var anaPhases []machine.Phase
		if syncing {
			anaPhases = spec.AnaInterval(step)
		}

		// 1. Execute every live node's interval.
		for i := 0; i < nTotal; i++ {
			n := cl.Node(i)
			if !cl.Alive(i) {
				busy[i] = 0
				continue
			}
			var t units.Seconds
			phases := simPhases
			if cl.Role(i) == core.RoleAnalysis {
				phases = anaPhases
			}
			for _, ph := range phases {
				if s := scale[cl.Role(i)]; s != 1 {
					ph.Nominal = units.Seconds(float64(ph.Nominal) * s)
				}
				exec := n.Run(ph, cfg.Noise)
				t += exec.Duration
				if cfg.TraceSegments && (i == 0 || i == nSim) {
					seg := Segment{Start: clock + t - exec.Duration, Duration: exec.Duration, Power: exec.Power}
					if i == 0 {
						res.SimSegments = append(res.SimSegments, seg)
					} else {
						res.AnaSegments = append(res.AnaSegments, seg)
					}
				}
			}
			// The previous allocation's overhead is part of this
			// interval's runtime (the paper's measurement convention).
			t += carryOverhead
			busy[i] = t
		}

		// 2. Synchronization: the slower partition sets the wall time.
		var wall units.Seconds
		for _, t := range busy {
			if t > wall {
				wall = t
			}
		}
		for i := 0; i < nTotal; i++ {
			if !cl.Alive(i) {
				continue
			}
			if wait := wall - busy[i]; wait > 0 {
				exec := cl.Node(i).Idle(wait)
				idleM := idleSimM
				if cl.Role(i) == core.RoleAnalysis {
					idleM = idleAnaM
				}
				if idleM != nil {
					idleM.Observe(float64(wait))
				}
				if cfg.TraceSegments && (i == 0 || i == nSim) {
					seg := Segment{Start: clock + busy[i], Duration: wait, Power: exec.Power}
					if i == 0 {
						res.SimSegments = append(res.SimSegments, seg)
					} else {
						res.AnaSegments = append(res.AnaSegments, seg)
					}
				}
			}
		}
		clock += wall

		// 3. Measurements, exactly as PoLiMER reports them. The epoch
		// time additionally folds in part of the synchronization wait,
		// as a loop-level monitor (GEOPM) would observe it. Dead nodes
		// report zeroed measures (Cap 0 keeps the allocators from
		// re-injecting a corpse's stale cap into the budget pool).
		for i := 0; i < nTotal; i++ {
			n := cl.Node(i)
			if !cl.Alive(i) {
				measures[i] = core.NodeMeasure{NodeID: i, Health: core.Dead, Role: cl.Role(i)}
				continue
			}
			e := n.RAPL().Energy() - lastEnergy[i]
			lastEnergy[i] = n.RAPL().Energy()
			measures[i] = core.NodeMeasure{
				NodeID:    i,
				Health:    cl.Health(i),
				Role:      cl.Role(i),
				Time:      wall, // allocator-to-allocator interval: work + sync wait
				BusyTime:  busy[i],
				EpochTime: busy[i] + (wall-busy[i])*epochWaitShare,
				Power:     units.AvgPower(e, wall),
				Cap:       n.RAPL().LongCap(),
				// Zero on a homogeneous cluster, so single-class runs
				// take the allocators' legacy uniform path unchanged.
				NodeCapability: cl.Capability(i),
			}
		}
		rec := buildRecord(syncIdx+1, measures, nSim, overhead)
		res.SyncLog.Add(rec)
		if cfg.Telemetry != nil {
			cfg.Telemetry.SyncBarrier(float64(clock), rec.Step,
				float64(wall), float64(rec.SimTime), float64(rec.AnaTime), rec.Slack(), float64(overhead))
			// Job-level budget check: summed measured power against the
			// global budget (small tolerance for enforcement slack). Dead
			// nodes draw nothing, so the sum covers live nodes only.
			if cfg.CapMode != CapNone && cfg.Constraints.Budget > 0 {
				aliveSim, aliveAna := cl.AliveCounts()
				total := float64(rec.SimPower)*float64(aliveSim) + float64(rec.AnaPower)*float64(aliveAna)
				if budget := float64(cfg.Constraints.Budget); total > budget*1.01 {
					cfg.Telemetry.BudgetViolation(float64(clock), "job", total, budget, true)
				}
			}
		}

		// 4. Policy invocation and cap writes.
		carryOverhead = 0
		if syncing && cfg.CapMode != CapNone {
			caps := policy.Allocate(syncIdx+1, measures)
			if caps != nil {
				for i := 0; i < nTotal; i++ {
					n := cl.Node(i)
					if cl.Alive(i) && caps[i] > 0 && caps[i] != n.RAPL().LongCap() {
						n.RAPL().SetLongCap(caps[i])
						if cfg.CapMode == CapLongShort {
							n.RAPL().SetShortCap(caps[i])
						}
					}
				}
			}
			carryOverhead = overhead
		}

		prevStep = step
	}

	res.TotalTime = clock
	res.FinalCaps = make([]units.Watts, nTotal)
	for i := 0; i < nTotal; i++ {
		res.TotalEnergy += cl.Node(i).RAPL().Energy()
		res.FinalCaps[i] = cl.Node(i).RAPL().LongCap()
	}
	res.AliveSim, res.AliveAna = cl.AliveCounts()
	return res, nil
}

// epochWaitShare is the fraction of the synchronization wait a
// loop-level (epoch) monitor attributes to the iteration itself: epoch
// markers bracket the whole loop body, so most of the wait is folded
// into the apparent iteration time.
const epochWaitShare = 0.8

// buildRecord aggregates per-node measures into a SyncRecord with
// per-node partition powers.
func buildRecord(step int, measures []core.NodeMeasure, nSim int, overhead units.Seconds) trace.SyncRecord {
	rec := trace.SyncRecord{Step: step, Overhead: overhead}
	var nS, nA int
	for _, m := range measures {
		if m.Health == core.Dead {
			continue // corpses carry no time or power
		}
		switch m.Role {
		case core.RoleSimulation:
			nS++
			rec.SimPower += m.Power
			rec.SimCap = m.Cap
			if m.BusyTime > rec.SimTime {
				rec.SimTime = m.BusyTime
			}
		case core.RoleAnalysis:
			nA++
			rec.AnaPower += m.Power
			rec.AnaCap = m.Cap
			if m.BusyTime > rec.AnaTime {
				rec.AnaTime = m.BusyTime
			}
		}
	}
	if nS > 0 {
		rec.SimPower /= units.Watts(nS)
	}
	if nA > 0 {
		rec.AnaPower /= units.Watts(nA)
	}
	return rec
}

// SampleSegments resamples power segments at a fixed period (e.g. the
// 200 ms of Figure 1), returning one power value per sample point.
func SampleSegments(segs []Segment, period units.Seconds) []trace.Sample {
	if period <= 0 || len(segs) == 0 {
		return nil
	}
	var out []trace.Sample
	end := segs[len(segs)-1].Start + segs[len(segs)-1].Duration
	si := 0
	for t := units.Seconds(0); t < end; t += period {
		for si < len(segs)-1 && segs[si].Start+segs[si].Duration <= t {
			si++
		}
		out = append(out, trace.Sample{Time: t, Value: float64(segs[si].Power)})
	}
	return out
}

// Quickstart: run a small space-shared in-situ job — a miniature
// LAMMPS-style simulation feeding the full MSD analysis — under a global
// power budget, once with the static baseline and once with SeeSAw, and
// print what the energy-feedback allocator bought.
package main

import (
	"context"
	"fmt"
	"log"

	"seesaw/internal/core"
	"seesaw/internal/insitu"
	"seesaw/internal/units"
)

func main() {
	const (
		simRanks = 2
		anaRanks = 2
		steps    = 100
		capPer   = units.Watts(110) // the paper's per-node budget
	)
	nodes := simRanks + anaRanks
	cons := core.Constraints{
		Budget: capPer * units.Watts(nodes),
		MinCap: 98,  // RAPL floor on Theta
		MaxCap: 215, // KNL 7230 TDP
	}

	run := func(policy core.Policy) *insitu.Result {
		res, err := insitu.Run(context.Background(), insitu.Config{
			SimRanks:    simRanks,
			AnaRanks:    anaRanks,
			Steps:       steps,
			SyncEvery:   1, // j = 1: synchronize every Verlet step
			Analyses:    []string{"msd"},
			Policy:      policy,
			Constraints: cons,
			Seed:        42,
		})
		if err != nil {
			log.Fatal(err)
		}
		return res
	}

	static := run(core.NewStatic())
	seesaw := run(core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1}))

	fmt.Printf("LAMMPS + full MSD, %d+%d nodes, %v global budget, %d Verlet steps\n\n",
		simRanks, anaRanks, cons.Budget, steps)
	fmt.Printf("%-22s %14s %16s %12s\n", "policy", "runtime (s)", "energy (kJ)", "slack")
	for _, r := range []struct {
		name string
		res  *insitu.Result
	}{{"static baseline", static}, {"seesaw", seesaw}} {
		fmt.Printf("%-22s %14.1f %16.1f %11.1f%%\n",
			r.name, float64(r.res.MainLoopTime), float64(r.res.TotalEnergy)/1000,
			r.res.SyncLog.MeanSlackFrom(10)*100)
	}

	imp := (float64(static.MainLoopTime) - float64(seesaw.MainLoopTime)) /
		float64(static.MainLoopTime) * 100
	last := seesaw.SyncLog.Records[seesaw.SyncLog.Len()-1]
	fmt.Printf("\nSeeSAw improvement over static: %+.2f%%\n", imp)
	fmt.Printf("final allocation per node: simulation %v, analysis %v\n", last.SimCap, last.AnaCap)
	fmt.Printf("(the analysis receives more power — the counter-intuitive MSD result of the paper)\n")
}

package lammps

import (
	"math"
	"strings"
	"testing"
)

func TestThermostatValidation(t *testing.T) {
	if _, err := NewRescaleThermostat(0, 1); err == nil {
		t.Error("zero target should fail")
	}
	if _, err := NewRescaleThermostat(1, 0); err == nil {
		t.Error("zero period should fail")
	}
	if _, err := NewBerendsenThermostat(-1, 1); err == nil {
		t.Error("negative target should fail")
	}
	if _, err := NewBerendsenThermostat(1, 0); err == nil {
		t.Error("zero tau should fail")
	}
}

func TestRescaleThermostatHoldsTemperature(t *testing.T) {
	cfg := smallConfig()
	cfg.Temp = 1.4
	s := MustNew(cfg)
	th, err := NewRescaleThermostat(1.4, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(60, RunOptions{Thermostat: th})
	if got := s.Temperature(); math.Abs(got-1.4) > 0.15 {
		t.Errorf("temperature %v drifted from thermostat target 1.4", got)
	}
}

func TestBerendsenRelaxesTowardTarget(t *testing.T) {
	s := MustNew(smallConfig()) // starts at T = 1.0
	th, err := NewBerendsenThermostat(0.6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	s.Run(100, RunOptions{Thermostat: th})
	got := s.Temperature()
	if math.Abs(got-0.6) > 0.1 {
		t.Errorf("temperature %v did not relax toward 0.6", got)
	}
}

func TestRunDriverCountsSteps(t *testing.T) {
	s := MustNew(smallConfig())
	var seen []int
	w := s.Run(7, RunOptions{EveryStep: func(step int, _ *System) { seen = append(seen, step) }})
	if s.Step() != 7 {
		t.Errorf("step counter = %d", s.Step())
	}
	if len(seen) != 7 || seen[0] != 1 || seen[6] != 7 {
		t.Errorf("EveryStep callbacks = %v", seen)
	}
	if w.Ops <= 0 {
		t.Error("no work accumulated")
	}
}

func TestEquilibrate(t *testing.T) {
	cfg := smallConfig()
	cfg.Temp = 0.9
	s := MustNew(cfg)
	if err := s.Equilibrate(40); err != nil {
		t.Fatal(err)
	}
	if got := s.Temperature(); math.Abs(got-0.9) > 0.2 {
		t.Errorf("temperature %v after equilibration, want ~0.9", got)
	}
	m := s.TotalMomentum()
	if mag := math.Sqrt(m.Norm2()); mag > 1e-9 {
		t.Errorf("net momentum %v after equilibration", mag)
	}
}

func TestWriteXYZ(t *testing.T) {
	s := MustNew(smallConfig())
	f := s.Snapshot()
	var sb strings.Builder
	if err := WriteXYZ(&sb, &f); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != s.N+2 {
		t.Fatalf("xyz has %d lines, want %d", len(lines), s.N+2)
	}
	if lines[0] != "256" {
		t.Errorf("atom count line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "step=0") || !strings.Contains(lines[1], "box=") {
		t.Errorf("comment line = %q", lines[1])
	}
	// Species symbols present: ions first, then solvent.
	if !strings.HasPrefix(lines[2], "H3O ") {
		t.Errorf("first atom line = %q, want hydronium", lines[2])
	}
	if !strings.HasPrefix(lines[len(lines)-1], "O ") {
		t.Errorf("last atom line = %q, want solvent", lines[len(lines)-1])
	}
}

func TestThermoLine(t *testing.T) {
	s := MustNew(smallConfig())
	th := s.ThermoLine()
	if th.Step != 0 {
		t.Errorf("step = %d", th.Step)
	}
	if math.Abs(th.Total-(th.Kinetic+th.Potential)) > 1e-9 {
		t.Error("total != ke + pe")
	}
	if math.Abs(th.Temp-1.0) > 1e-9 {
		t.Errorf("temp = %v", th.Temp)
	}

	var sb strings.Builder
	if err := WriteThermoHeader(&sb); err != nil {
		t.Fatal(err)
	}
	if err := WriteThermo(&sb, th); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "step,temp,ke,pe,etotal") {
		t.Errorf("thermo header wrong: %q", out)
	}
	if !strings.Contains(out, "\n0,1.000000,") {
		t.Errorf("thermo line wrong: %q", out)
	}
}

// Package core implements the power-allocation policies the paper
// studies for power-constrained space-shared in-situ analysis:
//
//   - SeeSAw (the paper's contribution, Section IV): energy-feedback
//     allocation that rebalances the global budget between the
//     simulation and analysis partitions so both reach synchronization
//     points at the same time;
//   - the strictly power-aware policy (SLURM's scheme, Section II):
//     shift excess power from nodes below their cap to nodes at it;
//   - the strictly time-aware policy (GEOPM's power balancer,
//     Section II): shift power from faster to slower nodes with a
//     decaying step;
//   - the static baseline: the budget split evenly once and never moved.
//
// All policies are strictly online: they see only per-node (time, power,
// cap) measurements from the interval that just completed, and emit new
// per-node power caps.
package core

import (
	"fmt"

	"seesaw/internal/units"
)

// Role labels a node as belonging to the simulation or the analysis
// partition (the application knowledge PoLiMER's instrumentation
// supplies).
type Role int

// Partition roles.
const (
	RoleSimulation Role = iota
	RoleAnalysis
)

// String returns "sim" or "ana". Invalid roles render with the
// offending value rather than being folded into a partition.
func (r Role) String() string {
	switch r {
	case RoleSimulation:
		return "sim"
	case RoleAnalysis:
		return "ana"
	default:
		return fmt.Sprintf("invalid-role(%d)", int(r))
	}
}

// Valid reports whether r is a defined partition role.
func (r Role) Valid() bool { return r == RoleSimulation || r == RoleAnalysis }

// Health is a node's lifecycle state as the cluster layer tracks it.
// The zero value is Healthy, so measurements built by fault-unaware
// callers remain correct.
type Health int

// Lifecycle states.
const (
	// Healthy nodes run at full speed.
	Healthy Health = iota
	// Degraded nodes still execute work but under a transient
	// slowdown (a fault-plan excursion); they stay in the allocation.
	Degraded
	// Dead nodes are gone: they execute nothing, draw no power, and
	// the allocators exclude them, redistributing their budget share.
	Dead
)

// String names the state.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("invalid-health(%d)", int(h))
	}
}

// Alive reports whether the node still executes work.
func (h Health) Alive() bool { return h != Dead }

// NodeMeasure is what one node reports for the interval between two
// invocations of the allocator.
type NodeMeasure struct {
	// NodeID is the node's stable identifier (cosim node index /
	// insitu world rank); it survives membership changes, so a policy
	// can correlate a node's measurements across intervals even after
	// other nodes die.
	NodeID int
	// Role is the node's partition membership.
	Role Role
	// Health is the node's lifecycle state. Dead nodes report zero
	// times and power and are excluded from allocation; their budget
	// share is redistributed to the survivors within the constraint
	// clamps.
	Health Health
	// Time is the interval between the node's consecutive allocator
	// calls (poli_power_alloc is invoked immediately before each
	// synchronization, so a faster node's interval includes its wait at
	// the previous synchronization), including the time to perform the
	// previous allocation — the paper's Section VI-B measurement.
	Time units.Seconds
	// BusyTime is the node's pure work time within the interval,
	// excluding synchronization waits; the harness uses it for the
	// normalized-slack bookkeeping of Figures 4 and 5.
	BusyTime units.Seconds
	// EpochTime is the node's iteration time as a loop-level monitor
	// (GEOPM's epoch) sees it: it includes part of the synchronization
	// wait, because the epoch markers bracket the whole loop body
	// rather than the work leading up to the synchronization. The
	// time-aware policy consumes this measure (falling back to Time
	// when zero); SeeSAw deliberately uses Time, which PoLiMER's
	// instrumentation ties to the synchronization event — one of the
	// paper's central points about application knowledge.
	EpochTime units.Seconds
	// Power is the node's average measured power over the interval.
	Power units.Watts
	// Cap is the per-node power cap that was in force.
	Cap units.Watts
	// NodeCapability carries the node's device-class capability in a
	// heterogeneous cluster. The zero value means "homogeneous node":
	// every allocator then reproduces the uniform-cluster math bit for
	// bit, keeping single-class goldens byte-identical.
	NodeCapability
}

// NodeCapability describes a node's device class as the allocators see
// it: the per-node clamp range its RAPL domain supports and a
// capability weight (unconstrained speed on the reference compute
// phase, relative to the default class — machine.Class.Weight). The
// zero value marks a homogeneous node and defers entirely to the
// global Constraints.
type NodeCapability struct {
	// Class names the device class ("cpu", "gpu", ...); informational.
	Class string
	// MinCap/MaxCap are the node's own clamp range (its class's RAPL
	// floor and TDP, scaled with the node). Zero defers to the global
	// Constraints bound.
	MinCap units.Watts
	MaxCap units.Watts
	// Weight is the class's capability weight (cpu ≡ 1). Zero marks a
	// homogeneous node.
	Weight float64
}

// Hetero reports whether the capability carries class information.
func (c NodeCapability) Hetero() bool { return c.Weight != 0 }

// CapRange returns the node's effective per-node cap clamp range: its
// own class range where set, the global constraint range otherwise.
func (n NodeMeasure) CapRange(c Constraints) (lo, hi units.Watts) {
	lo, hi = c.MinCap, c.MaxCap
	if n.MinCap > 0 {
		lo = n.MinCap
	}
	if n.MaxCap > 0 {
		hi = n.MaxCap
	}
	return lo, hi
}

// Constraints bound every allocation.
type Constraints struct {
	// Budget is the global power budget C for the whole job.
	Budget units.Watts
	// MinCap is delta_min: the lowest per-node cap hardware supports.
	MinCap units.Watts
	// MaxCap is delta_max: the highest per-node cap (TDP).
	MaxCap units.Watts
}

// Validate reports constraint errors.
func (c Constraints) Validate(nodes int) error {
	if c.Budget <= 0 {
		return fmt.Errorf("core: budget must be positive, got %v", c.Budget)
	}
	if c.MinCap <= 0 || c.MaxCap <= c.MinCap {
		return fmt.Errorf("core: invalid cap range [%v, %v]", c.MinCap, c.MaxCap)
	}
	if nodes > 0 && c.Budget < c.MinCap*units.Watts(nodes) {
		return fmt.Errorf("core: budget %v below minimum %v for %d nodes",
			c.Budget, c.MinCap*units.Watts(nodes), nodes)
	}
	return nil
}

// Policy is an online power-allocation strategy. Allocate is invoked at
// each simulation-analysis synchronization with the measurements of the
// interval that just ended; it returns new per-node caps (aligned with
// nodes), or nil to leave caps unchanged.
//
// Ownership: the returned slice may be scratch storage the policy
// reuses — it is valid until the policy's next Allocate call. Callers
// that retain caps across allocations must copy them (the drivers
// write caps to the RAPL domains immediately and never retain).
type Policy interface {
	// Name identifies the policy ("seesaw", "power-aware",
	// "time-aware", "static").
	Name() string
	// Allocate computes new per-node caps. step counts
	// synchronizations from 1; step 0 (outside the main loop) is never
	// passed.
	Allocate(step int, nodes []NodeMeasure) []units.Watts
}

// Static is the paper's baseline: the global budget split evenly across
// nodes once, never changed. Allocate always returns nil.
type Static struct{}

// NewStatic returns the static baseline policy.
func NewStatic() *Static { return &Static{} }

// Name implements Policy.
func (*Static) Name() string { return "static" }

// Allocate implements Policy; the static policy never moves power.
func (*Static) Allocate(int, []NodeMeasure) []units.Watts { return nil }

// EvenSplit returns the per-node cap of an even division of the budget,
// clamped to the constraint range; the harness uses it for initial caps.
func EvenSplit(c Constraints, nodes int) units.Watts {
	if nodes <= 0 {
		return 0
	}
	return units.ClampWatts(c.Budget/units.Watts(nodes), c.MinCap, c.MaxCap)
}

// partitionTotals aggregates per-node measurements into the partition
// quantities SeeSAw's formulation uses: the slowest node time and the
// summed power of each partition. Dead nodes are excluded, so the
// returned counts are the partitions' live memberships; a measurement
// with an invalid role panics with the offending value rather than
// being silently folded into a partition.
func partitionTotals(nodes []NodeMeasure) (simT, anaT units.Seconds, simP, anaP units.Watts, nSim, nAna int) {
	for i, n := range nodes {
		if !n.Role.Valid() {
			panic(fmt.Sprintf("core: measurement %d (node id %d) has invalid role %d", i, n.NodeID, int(n.Role)))
		}
		if n.Health == Dead {
			continue
		}
		switch n.Role {
		case RoleSimulation:
			nSim++
			simP += n.Power
			if n.Time > simT {
				simT = n.Time
			}
		case RoleAnalysis:
			nAna++
			anaP += n.Power
			if n.Time > anaT {
				anaT = n.Time
			}
		}
	}
	return
}

// capConservationEps tolerates float rounding when checking that
// clamped partition caps account for the whole budget.
const capConservationEps = units.Watts(1e-6)

// clampPartitionCaps enforces the delta_min/delta_max rule of Section
// IV-A on per-node partition caps pS, pA for nSim and nAna nodes under
// budget C: if one partition's per-node cap falls outside the supported
// range it is pinned to the bound and the other partition receives the
// remaining power; handling delta_max takes priority in ties.
//
// When both partitions land outside the range (the double-pin case) the
// second clamp used to leave part of the budget silently unassigned —
// or over-assigned, when one partition pinned at delta_max forces the
// other below delta_min. An explicit remainder pass now pins leftover
// budget onto whichever partition still has headroom (simulation first,
// deterministically), and conservation is asserted: leftover power with
// headroom remaining, or an overdraft with slack remaining, panics.
func clampPartitionCaps(pS, pA units.Watts, nSim, nAna int, c Constraints) (units.Watts, units.Watts) {
	remainder := func(pinned units.Watts, nPinned, nOther int) units.Watts {
		if nOther == 0 {
			return pinned
		}
		rest := (c.Budget - pinned*units.Watts(nPinned)) / units.Watts(nOther)
		return units.ClampWatts(rest, c.MinCap, c.MaxCap)
	}
	if nSim <= 0 && nAna <= 0 {
		return pS, pA
	}
	if nSim <= 0 {
		return pS, units.ClampWatts(c.Budget/units.Watts(nAna), c.MinCap, c.MaxCap)
	}
	if nAna <= 0 {
		return units.ClampWatts(c.Budget/units.Watts(nSim), c.MinCap, c.MaxCap), pA
	}
	// delta_max first (tie priority).
	switch {
	case pS > c.MaxCap:
		pS = c.MaxCap
		pA = remainder(pS, nSim, nAna)
	case pA > c.MaxCap:
		pA = c.MaxCap
		pS = remainder(pA, nAna, nSim)
	}
	switch {
	case pS < c.MinCap:
		pS = c.MinCap
		pA = remainder(pS, nSim, nAna)
	case pA < c.MinCap:
		pA = c.MinCap
		pS = remainder(pA, nAna, nSim)
	}
	// Explicit remainder pinning for the double-pin case.
	leftover := c.Budget - pS*units.Watts(nSim) - pA*units.Watts(nAna)
	if leftover > capConservationEps {
		// Budget left on the table: grant it to partitions with
		// headroom below delta_max.
		if room := (c.MaxCap - pS) * units.Watts(nSim); room > 0 {
			g := min(leftover, room)
			pS += g / units.Watts(nSim)
			leftover -= g
		}
		if room := (c.MaxCap - pA) * units.Watts(nAna); leftover > 0 && room > 0 {
			g := min(leftover, room)
			pA += g / units.Watts(nAna)
			leftover -= g
		}
		if leftover > capConservationEps && (pS < c.MaxCap-capConservationEps || pA < c.MaxCap-capConservationEps) {
			panic(fmt.Sprintf("core: clampPartitionCaps leaked %v of budget %v with headroom remaining (pS=%v pA=%v nSim=%d nAna=%d)",
				leftover, c.Budget, pS, pA, nSim, nAna))
		}
	} else if leftover < -capConservationEps {
		// Overdraft: one pin forced the other partition's remainder
		// below delta_min; trim partitions still above it.
		debt := -leftover
		if slack := (pS - c.MinCap) * units.Watts(nSim); slack > 0 {
			t := min(debt, slack)
			pS -= t / units.Watts(nSim)
			debt -= t
		}
		if slack := (pA - c.MinCap) * units.Watts(nAna); debt > 0 && slack > 0 {
			t := min(debt, slack)
			pA -= t / units.Watts(nAna)
			debt -= t
		}
		if debt > capConservationEps && (pS > c.MinCap+capConservationEps || pA > c.MinCap+capConservationEps) {
			panic(fmt.Sprintf("core: clampPartitionCaps overdrew %v beyond budget %v with slack remaining (pS=%v pA=%v nSim=%d nAna=%d)",
				debt, c.Budget, pS, pA, nSim, nAna))
		}
	}
	return pS, pA
}

// expandPartitionCaps materializes per-node cap slices from per-node
// partition values, aligned with the nodes slice. Dead nodes receive a
// zero cap (the drivers never write zero caps to hardware); invalid
// roles panic with the offending value.
func expandPartitionCaps(nodes []NodeMeasure, pS, pA units.Watts) []units.Watts {
	return expandPartitionCapsInto(nil, nodes, pS, pA)
}

// expandPartitionCapsInto is expandPartitionCaps writing into buf
// (grown when too small): policies that allocate every synchronization
// keep one scratch slice instead of producing per-call garbage, under
// the Policy ownership contract (result valid until the next Allocate).
func expandPartitionCapsInto(buf []units.Watts, nodes []NodeMeasure, pS, pA units.Watts) []units.Watts {
	if cap(buf) < len(nodes) {
		buf = make([]units.Watts, len(nodes))
	}
	caps := buf[:len(nodes)]
	for i, n := range nodes {
		switch {
		case n.Health == Dead:
			caps[i] = 0
		case n.Role == RoleSimulation:
			caps[i] = pS
		case n.Role == RoleAnalysis:
			caps[i] = pA
		default:
			panic(fmt.Sprintf("core: measurement %d (node id %d) has invalid role %d", i, n.NodeID, int(n.Role)))
		}
	}
	return caps
}

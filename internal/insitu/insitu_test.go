package insitu

import (
	"bytes"
	"context"
	"regexp"
	"strings"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/machine"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
)

// tinyConfig keeps runs fast: 2+2 ranks, few steps.
func tinyConfig(policy core.Policy, analyses []string, steps int) Config {
	n := 4
	return Config{
		SimRanks:    2,
		AnaRanks:    2,
		Steps:       steps,
		SyncEvery:   1,
		Analyses:    analyses,
		Policy:      policy,
		Constraints: core.Constraints{Budget: units.Watts(110 * n), MinCap: 98, MaxCap: 215},
		Seed:        5,
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{},
		{SimRanks: 1, AnaRanks: 1, Steps: 0, Analyses: []string{"msd"}},
		{SimRanks: 1, AnaRanks: 1, Steps: 10}, // no analyses
		{SimRanks: 1, AnaRanks: 1, Steps: 10, Analyses: []string{"msd"},
			Constraints: core.Constraints{Budget: 1, MinCap: 98, MaxCap: 215}},
	}
	for i, cfg := range bad {
		if _, err := Run(context.Background(), cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestRunProducesResults(t *testing.T) {
	res, err := Run(context.Background(), tinyConfig(core.NewStatic(), []string{"rdf", "vacf"}, 20))
	if err != nil {
		t.Fatal(err)
	}
	if res.MainLoopTime <= 0 {
		t.Error("non-positive main loop time")
	}
	if res.Syncs != 20 {
		t.Errorf("syncs = %d, want 20", res.Syncs)
	}
	if res.SyncLog.Len() != 20 {
		t.Errorf("log records = %d", res.SyncLog.Len())
	}
	if res.TotalEnergy <= 0 {
		t.Error("no energy accounted")
	}
	if len(res.AnalysisResults["rdf"]) == 0 || len(res.AnalysisResults["vacf"]) == 0 {
		t.Error("analysis results missing")
	}
	// MD sanity: the simulation produced a finite total energy.
	if res.FinalSimEnergy == 0 {
		t.Error("final MD energy not recorded")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() units.Seconds {
		res, err := Run(context.Background(), tinyConfig(core.NewStatic(), []string{"msd"}, 15))
		if err != nil {
			t.Fatal(err)
		}
		return res.MainLoopTime
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical configs diverged: %v vs %v", a, b)
	}
}

func TestSeeSAwImprovesOverStaticWithMSD(t *testing.T) {
	// The headline integration check: SeeSAw must beat the static
	// baseline on the high-demand analysis.
	cons := core.Constraints{Budget: 440, MinCap: 98, MaxCap: 215}
	static, err := Run(context.Background(), tinyConfig(core.NewStatic(), []string{"msd"}, 50))
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Run(context.Background(), tinyConfig(core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1}), []string{"msd"}, 50))
	if err != nil {
		t.Fatal(err)
	}
	if ss.MainLoopTime >= static.MainLoopTime {
		t.Errorf("seesaw %v not faster than static %v", ss.MainLoopTime, static.MainLoopTime)
	}
	// And its steady-state slack must be small.
	if slack := ss.SyncLog.MeanSlackFrom(10); slack > 0.10 {
		t.Errorf("seesaw steady slack %.3f too large", slack)
	}
}

func TestSeeSAwGivesAnalysisMorePowerWithMSD(t *testing.T) {
	cons := core.Constraints{Budget: 440, MinCap: 98, MaxCap: 215}
	res, err := Run(context.Background(), tinyConfig(core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1}), []string{"msd"}, 40))
	if err != nil {
		t.Fatal(err)
	}
	last := res.SyncLog.Records[res.SyncLog.Len()-1]
	if !(last.AnaCap > last.SimCap) {
		t.Errorf("with MSD the analysis should receive more power: sim %v ana %v (paper Section VII-B2)",
			last.SimCap, last.AnaCap)
	}
}

func TestSyncEvery(t *testing.T) {
	cfg := tinyConfig(core.NewStatic(), []string{"vacf"}, 20)
	cfg.SyncEvery = 5
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Syncs != 4 {
		t.Errorf("syncs = %d, want 4 (20 steps, j=5)", res.Syncs)
	}
}

func TestMixedAnalysisIntervals(t *testing.T) {
	cfg := tinyConfig(core.NewStatic(), []string{"rdf", "msd"}, 12)
	cfg.AnalysisIntervals = map[string]int{"msd": 4}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// rdf runs at every step; the union schedule has 12 syncs.
	if res.Syncs != 12 {
		t.Errorf("syncs = %d, want 12", res.Syncs)
	}
	// msd consumed only steps 4, 8, 12 -> its MSD series has 3 points.
	if got := len(res.AnalysisResults["msd"]); got != 3 {
		t.Errorf("msd consumed %d frames, want 3", got)
	}
}

func TestUnbalancedInitialCaps(t *testing.T) {
	cfg := tinyConfig(core.NewStatic(), []string{"vacf"}, 10)
	cfg.InitialSimCap, cfg.InitialAnaCap = 120, 100
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rec := res.SyncLog.Records[3]
	if rec.SimCap != 120 || rec.AnaCap != 100 {
		t.Errorf("initial caps not honored: %v/%v", rec.SimCap, rec.AnaCap)
	}
}

func TestUnevenPartitionSizes(t *testing.T) {
	// Two simulation ranks per analysis rank ("one or more simulation
	// processes paired with an analysis process").
	cfg := tinyConfig(core.NewStatic(), []string{"rdf"}, 8)
	cfg.SimRanks, cfg.AnaRanks = 4, 2
	cfg.Constraints = core.Constraints{Budget: 110 * 6, MinCap: 98, MaxCap: 215}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Syncs != 8 {
		t.Errorf("syncs = %d", res.Syncs)
	}
}

func TestNoiseChangesOutcome(t *testing.T) {
	quiet, err := Run(context.Background(), tinyConfig(core.NewStatic(), []string{"vacf"}, 10))
	if err != nil {
		t.Fatal(err)
	}
	noisy := tinyConfig(core.NewStatic(), []string{"vacf"}, 10)
	noisy.Noise = machine.DefaultNoise()
	res, err := Run(context.Background(), noisy)
	if err != nil {
		t.Fatal(err)
	}
	if res.MainLoopTime == quiet.MainLoopTime {
		t.Error("noise model had no effect on runtime")
	}
}

func TestAllAnalyses(t *testing.T) {
	res, err := Run(context.Background(), tinyConfig(core.NewStatic(), []string{"rdf", "msd1d", "msd2d", "msd", "vacf"}, 10))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"rdf", "msd1d", "msd2d", "msd", "vacf"} {
		if len(res.AnalysisResults[name]) == 0 {
			t.Errorf("analysis %s produced no result", name)
		}
	}
}

func TestPolicyComparisonNoHarmOnVACF(t *testing.T) {
	// At the dim=16-calibrated box the simulation saturates below its
	// 110 W cap, so no policy can speed the light-analysis workload up
	// (the paper sees gains for VACF only at larger problem sizes); the
	// invariant here is that neither adaptive policy makes it more than
	// marginally slower than the static baseline.
	cons := core.Constraints{Budget: 440, MinCap: 98, MaxCap: 215}
	static, err := Run(context.Background(), tinyConfig(core.NewStatic(), []string{"vacf"}, 60))
	if err != nil {
		t.Fatal(err)
	}
	for name, pol := range map[string]core.Policy{
		"seesaw":     core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1}),
		"time-aware": core.MustNewTimeAware(core.DefaultTimeAwareConfig(cons)),
	} {
		res, err := Run(context.Background(), tinyConfig(pol, []string{"vacf"}, 60))
		if err != nil {
			t.Fatal(err)
		}
		if float64(res.MainLoopTime) > float64(static.MainLoopTime)*1.02 {
			t.Errorf("%s %v much slower than static %v on VACF", name, res.MainLoopTime, static.MainLoopTime)
		}
	}
}

func TestPowerSampling(t *testing.T) {
	cfg := tinyConfig(core.NewStatic(), []string{"msd"}, 10)
	cfg.PowerSample = 2.0
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.PowerTrace == nil {
		t.Fatal("no power trace recorded")
	}
	names := res.PowerTrace.Names()
	if len(names) != 4 {
		t.Fatalf("traced %d nodes, want 4", len(names))
	}
	for _, name := range names {
		s := res.PowerTrace.Series(name)
		if s.Len() == 0 {
			t.Errorf("series %s empty", name)
		}
		for _, v := range s.Values() {
			if v < 50 || v > 220 {
				t.Errorf("series %s sample %v outside plausible power range", name, v)
			}
		}
	}
}

// TestTelemetryStream runs the full mpi-driven workflow with a hub
// attached and verifies every instrumented layer reported: barrier
// waits from the collectives, sync/policy events from the root, cap
// writes from the RAPL domains — and that the event stream decodes.
func TestTelemetryStream(t *testing.T) {
	var buf bytes.Buffer
	hub := telemetry.New(telemetry.Options{Sink: &buf})
	cfg := tinyConfig(core.MustNewSeeSAw(core.SeeSAwConfig{
		Constraints: core.Constraints{Budget: 110 * 4, MinCap: 98, MaxCap: 215}, Window: 1,
	}), []string{"msd"}, 10)
	cfg.Telemetry = hub
	if _, err := Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := hub.Close(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := hub.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, re := range []string{
		`seesaw_barrier_wait_seconds_count\{op="[a-z]+"\} [1-9]`,
		`seesaw_sync_total [1-9]`,
		`seesaw_cap_writes_total\{node="sim"\} [1-9]`,
		`seesaw_policy_decisions_total\{policy="seesaw",direction="[a-z-]+"\} [1-9]`,
		`seesaw_messages_total [1-9]`,
	} {
		if !regexp.MustCompile(re).MatchString(out) {
			t.Errorf("exposition missing match for %s:\n%s", re, out)
		}
	}

	kinds := map[string]int{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		e, err := telemetry.Decode([]byte(line))
		if err != nil {
			t.Fatalf("sink line %q: %v", line, err)
		}
		kinds[e.Kind()]++
	}
	for _, want := range []string{"CapWritten", "SyncBarrier", "PolicyDecision"} {
		if kinds[want] == 0 {
			t.Errorf("event stream missing %s (have %v)", want, kinds)
		}
	}
}

// Package mpi is an in-process message-passing runtime with virtual
// time, standing in for MPI in the paper's software stack. Ranks are
// goroutines; communicators, sub-communicators (Split), collectives
// (Barrier, Allreduce, Bcast, Gather, Allgather) and tagged point-to-point
// messages are supported.
//
// # Virtual time
//
// Every rank carries a virtual clock. Local work advances only the local
// clock (Elapse). Synchronizing operations merge clocks conservatively:
// a collective completes at max(arrival clocks) + modeled communication
// cost, and all participants leave with that clock; a receive completes
// no earlier than the matching send plus the message's flight time. This
// yields deterministic, platform-independent timings: a "1024-node" job
// is simply 1024 goroutines whose clocks interleave exactly as the
// communication structure dictates.
//
// # SPMD discipline
//
// As with real MPI, all members of a communicator must issue the same
// sequence of collective operations. The runtime checks the operation
// name at each rendezvous and panics loudly on mismatches instead of
// deadlocking silently.
//
// # Scale
//
// The runtime is built to stay tractable at 4096+ ranks (see DESIGN.md,
// "Scaling the substrate"). Collectives use a generation-gated, sharded
// rendezvous: arrivals are lock-free (each member writes its own scratch
// slot and decrements an atomic counter), the last arriver reduces and
// publishes, and waiters park on a plain channel receive — never a
// select, whose per-case lock on a shared cancellation channel would
// serialize every park and wake through one lock. Large groups arrive in
// ~sqrt(k) shards: members decrement a per-shard counter and park on a
// per-shard gate; the last member of a shard becomes its leader,
// decrements the group counter and parks at the root; the completing
// rank releases the root, and the woken leaders fan the release out one
// shard gate each, in parallel. The float64 reductions the power stack
// issues on every synchronization take a typed fast path with no
// interface boxing and a single result copy per rank. Mailboxes index
// messages by (source, tag), so a receive matches in O(1) regardless of
// backlog and a send wakes at most the one receiver waiting on that
// pair.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"seesaw/internal/telemetry"
	"seesaw/internal/units"
)

// CostModel parameterizes communication timing.
type CostModel struct {
	// CollectiveLatency is the per-tree-hop latency of collectives.
	CollectiveLatency units.Seconds
	// P2PLatency is the flight latency of a point-to-point message.
	P2PLatency units.Seconds
	// SecondsPerByte converts payload size to transfer time.
	SecondsPerByte float64
}

// DefaultCost returns a cost model loosely calibrated to the Cray Aries
// interconnect of Theta: a few microseconds per hop, ~10 GB/s effective
// per-link bandwidth.
func DefaultCost() CostModel {
	return CostModel{
		CollectiveLatency: 1.5e-6,
		P2PLatency:        2.0e-6,
		SecondsPerByte:    1.0e-10,
	}
}

// CollectiveCost returns the modeled duration of a collective over k
// ranks moving the given payload bytes (log-tree algorithm).
func (c CostModel) CollectiveCost(k, bytes int) units.Seconds {
	if k <= 1 {
		return 0
	}
	hops := math.Ceil(math.Log2(float64(k)))
	per := float64(c.CollectiveLatency) + float64(bytes)*c.SecondsPerByte
	return units.Seconds(hops * per)
}

// P2PCost returns the modeled flight time of a point-to-point message.
func (c CostModel) P2PCost(bytes int) units.Seconds {
	return c.P2PLatency + units.Seconds(float64(bytes)*c.SecondsPerByte)
}

// Runtime hosts one job's ranks and mailboxes.
type Runtime struct {
	size int
	cost CostModel
	tel  *telemetry.Hub

	mail []*mailbox

	// waitMetrics caches the per-op rendezvous-wait histogram handles so
	// the hot path skips the registry's label lookup (and its lock) on
	// every collective.
	waitMetrics sync.Map // op string -> *telemetry.Metric

	// Cancellation state. cancelErr is written once, under cancelMu,
	// before cancelled is set; it is read only after observing cancelled.
	// ranks lets doCancel reach every rank's parked-gate pointer; it is
	// fully populated before the rank goroutines start.
	cancelled atomic.Bool
	cancelMu  sync.Mutex
	cancelErr error
	ranks     []*Rank
}

// errCanceled is the sentinel panic value that unwinds rank goroutines
// blocked in Recv or a collective when the run's context is cancelled.
// The rank wrapper recognizes it and does not report it as a rank panic.
var errCanceled = errors.New("mpi: run cancelled")

// isCancelled reports whether the run has been cancelled.
func (rt *Runtime) isCancelled() bool { return rt.cancelled.Load() }

// doCancel marks the runtime cancelled and wakes every goroutine blocked
// on a mailbox or a collective rendezvous. The flag is set first; then
// every rank's parked gate (published by arrive just before it blocks)
// is force-opened — a CAS per gate arbitrates with a concurrently
// completing collective — and every mailbox receives a wake token. A
// rank rechecks the flag after publishing its gate and after every
// mailbox wake, so either this walk observes the gate pointer, or the
// rank's store came later in the seq-cst order than the walk's load —
// in which case the flag store before the walk is visible to the
// recheck and the rank unwinds instead of parking. Tracking parked
// ranks (a fixed-size array) rather than a group registry also means
// Split products are garbage-collected as usual instead of being
// pinned for the life of the run.
func (rt *Runtime) doCancel(err error) {
	if err == nil {
		err = context.Canceled
	}
	rt.cancelMu.Lock()
	already := rt.cancelErr != nil
	if !already {
		rt.cancelErr = err
	}
	rt.cancelMu.Unlock()
	if already {
		return
	}
	rt.cancelled.Store(true)
	for _, r := range rt.ranks {
		if g := r.parked.Load(); g != nil {
			g.release()
		}
		if g := r.condG.Load(); g != nil {
			// The waiter publishes condG while holding g.mu and only
			// then enqueues on the cond (Wait enqueues before releasing
			// the lock), so taking the lock here orders this broadcast
			// after the enqueue: either the waiter is woken, or its
			// pre-wait flag recheck already saw cancelled.
			g.mu.Lock()
			g.cond.Broadcast()
			g.mu.Unlock()
		}
	}
	for _, mb := range rt.mail {
		select {
		case mb.wake <- struct{}{}:
		default:
		}
	}
}

// waitMetric returns the cached telemetry handle for one collective op's
// rendezvous-wait histogram (nil when telemetry is disabled).
func (rt *Runtime) waitMetric(op string) *telemetry.Metric {
	if rt.tel == nil {
		return nil
	}
	if m, ok := rt.waitMetrics.Load(op); ok {
		return m.(*telemetry.Metric)
	}
	m := rt.tel.RendezvousWaitMetric(op)
	rt.waitMetrics.Store(op, m)
	return m
}

// message is a point-to-point payload in flight.
type message struct {
	payload any
	arrive  units.Seconds // earliest virtual time the receiver may own it
}

// pairKey identifies one (source rank, tag) message stream.
type pairKey struct {
	src, tag int
}

// msgQueue holds one (src, tag) stream's undelivered messages in FIFO
// order. head indexes the next message, so delivery is O(1) and the
// backing array is reused once drained.
type msgQueue struct {
	msgs []message
	head int
	// waiting marks the mailbox owner as parked on this stream; a sender
	// appending here wakes it through the mailbox's wake channel.
	waiting bool
}

// mailbox is one rank's incoming message store, indexed by (src, tag) so
// a receive matches without scanning unrelated backlog.
type mailbox struct {
	mu     sync.Mutex
	queues map[pairKey]*msgQueue
	// wake is the owner's parking token (capacity 1). A rank blocks on at
	// most one (src, tag) stream at a time, so one channel per mailbox
	// suffices and senders to other streams never signal it.
	wake chan struct{}
}

func newMailbox() *mailbox {
	return &mailbox{
		queues: make(map[pairKey]*msgQueue),
		wake:   make(chan struct{}, 1),
	}
}

// queue returns the stream for key, creating it on first use.
func (mb *mailbox) queue(key pairKey) *msgQueue {
	q := mb.queues[key]
	if q == nil {
		q = &msgQueue{}
		mb.queues[key] = q
	}
	return q
}

// Rank is the per-goroutine handle to the runtime: a world rank id, a
// virtual clock and the world communicator.
type Rank struct {
	rt    *Runtime
	id    int
	clock units.Seconds
	world *Comm

	// parked publishes the rendezvous gate this rank is about to block
	// on, so doCancel can force it open. Only this rank stores it; the
	// pointer is per-rank, so the two stores bracketing a park never
	// contend.
	parked atomic.Pointer[gate]

	// condG publishes the group whose condition variable this rank is
	// waiting on (the unsharded rendezvous path), so doCancel can
	// broadcast it — the cond-path analogue of parked, keeping
	// cancellation registry-free.
	condG atomic.Pointer[group]

	// lastSplit is the Comm this rank's most recent Split returned,
	// reused when a repeat Split resolves to the same (cached) group.
	lastSplit *Comm
}

// Run executes body on n concurrent ranks and blocks until all return.
// A panic on any rank is captured and returned as an error naming the
// rank. All clocks start at zero.
func Run(n int, cost CostModel, body func(r *Rank)) error {
	return RunContext(context.Background(), n, cost, nil, body)
}

// RunWithTelemetry is Run with a telemetry hub attached to the runtime:
// collective rendezvous waits and point-to-point message counts are
// reported to it. A nil hub is equivalent to Run.
func RunWithTelemetry(n int, cost CostModel, tel *telemetry.Hub, body func(r *Rank)) error {
	return RunContext(context.Background(), n, cost, tel, body)
}

// RunContext is RunWithTelemetry under a context: when ctx is cancelled,
// ranks blocked in Recv or a collective unwind promptly (via an internal
// sentinel panic the runtime recognizes), ranks doing local work abort
// at their next communication, and RunContext returns ctx.Err(). A rank
// panic unrelated to cancellation still wins over the context error.
func RunContext(ctx context.Context, n int, cost CostModel, tel *telemetry.Hub, body func(r *Rank)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return fmt.Errorf("mpi: rank count must be positive, got %d", n)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	rt := &Runtime{
		size: n,
		cost: cost,
		tel:  tel,
		mail: make([]*mailbox, n),
	}
	for i := range rt.mail {
		rt.mail[i] = newMailbox()
	}
	worldGroup := newGroup(identity(n))
	rt.ranks = make([]*Rank, n)
	for i := range rt.ranks {
		rank := &Rank{rt: rt, id: i}
		rank.world = &Comm{rank: rank, group: worldGroup, myRank: i}
		rt.ranks[i] = rank
	}

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if err, ok := r.(error); ok && errors.Is(err, errCanceled) {
						return // orderly unwind, not a rank failure
					}
					errs[id] = fmt.Errorf("mpi: rank %d panicked: %v", id, r)
				}
			}()
			body(rt.ranks[id])
		}(i)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		select {
		case <-ctx.Done():
			rt.doCancel(ctx.Err())
		case <-done:
		}
	}()
	<-done
	<-watcher

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if rt.isCancelled() {
		rt.cancelMu.Lock()
		defer rt.cancelMu.Unlock()
		return rt.cancelErr
	}
	return nil
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// WorldRank returns the rank's id in the world communicator.
func (r *Rank) WorldRank() int { return r.id }

// Cost returns the runtime's communication cost model, so higher layers
// can account modeled communication costs explicitly.
func (r *Rank) Cost() CostModel { return r.rt.cost }

// WorldSize returns the job's total rank count.
func (r *Rank) WorldSize() int { return r.rt.size }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.world }

// Clock returns the rank's current virtual time.
func (r *Rank) Clock() units.Seconds { return r.clock }

// Elapse advances the local clock by d (local computation).
func (r *Rank) Elapse(d units.Seconds) {
	if d < 0 {
		panic("mpi: negative elapse")
	}
	r.clock += d
}

// AdvanceTo moves the local clock forward to t if t is later.
func (r *Rank) AdvanceTo(t units.Seconds) {
	if t > r.clock {
		r.clock = t
	}
}

// Fail aborts the whole job with err, modelling a fatal node failure:
// in MPI a dead rank takes the job down, since every collective it
// belongs to can no longer complete. All other ranks — including ones
// blocked in Recv or mid-collective — unwind promptly through the
// cancellation machinery, and RunContext returns err. Fail does not
// return.
func (r *Rank) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("mpi: rank %d failed", r.id)
	}
	r.rt.doCancel(err)
	panic(errCanceled)
}

// Send delivers a payload of the given modeled size to dst (world rank)
// with a tag. The send is buffered: the sender continues immediately,
// paying only the injection latency locally. The deposit is O(1) into
// the (src, tag) stream, and only a receiver already parked on exactly
// that stream is woken.
func (r *Rank) Send(dst, tag int, payload any, bytes int) {
	if dst < 0 || dst >= r.rt.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	flight := r.rt.cost.P2PCost(bytes)
	msg := message{payload: payload, arrive: r.clock + flight}
	mb := r.rt.mail[dst]
	mb.mu.Lock()
	q := mb.queue(pairKey{src: r.id, tag: tag})
	q.msgs = append(q.msgs, msg)
	notify := q.waiting
	q.waiting = false
	mb.mu.Unlock()
	if notify {
		select {
		case mb.wake <- struct{}{}:
		default:
		}
	}
	// Injection overhead on the sender side.
	r.clock += r.rt.cost.P2PLatency
	r.rt.tel.MessageSent(bytes)
}

// Recv blocks until a message from src with the given tag is available,
// advances the clock to the message's arrival time, and returns the
// payload.
func (r *Rank) Recv(src, tag int) any {
	mb := r.rt.mail[r.id]
	mb.mu.Lock()
	q := mb.queue(pairKey{src: src, tag: tag})
	for {
		if q.head < len(q.msgs) {
			m := q.msgs[q.head]
			q.msgs[q.head] = message{} // release the payload reference
			q.head++
			if q.head == len(q.msgs) {
				q.msgs = q.msgs[:0]
				q.head = 0
			}
			mb.mu.Unlock()
			r.AdvanceTo(m.arrive)
			return m.payload
		}
		if r.rt.isCancelled() {
			mb.mu.Unlock()
			panic(errCanceled)
		}
		q.waiting = true
		mb.mu.Unlock()
		// A plain receive, not a select: cancellation deposits a token in
		// every mailbox's wake channel after setting the flag, and the loop
		// rechecks the flag on every pass, so no shared cancel channel is
		// locked on the park/unpark path.
		<-mb.wake
		mb.mu.Lock()
		q.waiting = false
	}
}

// gate is a one-shot release point: waiters park on a plain channel
// receive, and release arbitrates the close between a completing
// collective and a concurrent cancellation with one CAS.
type gate struct {
	ch     chan struct{}
	closed atomic.Bool
}

func newGate() gate { return gate{ch: make(chan struct{})} }

func (g *gate) release() {
	if g.closed.CompareAndSwap(false, true) {
		close(g.ch)
	}
}

// rendezvousState is the publication side of one collective generation:
// the last arriver fills it, sets completed and releases the gates;
// waiters read it afterwards. A gate released without completed set
// means the run was cancelled mid-collective. A fresh state per
// generation keeps late readers safe while the group's arrival scratch
// is already being reused by the next collective.
type rendezvousState struct {
	completed atomic.Bool
	result    any       // untyped collectives
	floats    []float64 // typed float64 reductions
	resClock  units.Seconds
	// poisoned carries a collective-mismatch or reduce-failure message;
	// every member panics with it instead of hanging.
	poisoned string

	// root releases shard leaders (or, in small groups, every member);
	// shards[i] releases shard i's non-leader members.
	root   gate
	shards []gate
}

// shardCounter is a cache-line-padded arrival counter, one per shard, so
// concurrent decrements from different shards never bounce a line.
type shardCounter struct {
	n atomic.Int64
	_ [56]byte
}

// group is the shared state of a communicator: its members and the
// rendezvous scratch used by collectives.
//
// Arrival is lock-free: member i writes only slot i of the scratch
// arrays and then decrements an atomic counter; the member that observes
// zero proceeds up the tree, and the atomic counters order every slot
// write before its reads (the sync.WaitGroup pattern). In groups of 64+
// the counters form a two-level tree of ~sqrt(k) shards: the last
// arriver of a shard is its leader and decrements the group counter; the
// last leader is the completer. The completer reduces, publishes into
// the current rendezvousState, re-arms the group for the next generation
// and releases the root gate; woken leaders re-arm and release their
// shard gates in parallel, so neither the arrival CASes nor the wakeup
// channel locks serialize 4096 ranks through one word.
type group struct {
	// Unsharded groups (shardPending == nil) rendezvous under a plain
	// mutex + condition variable with a generation counter: below the
	// sharding threshold the wakeup fan-out fits one broadcast, and
	// reusing the group as the publication site makes a
	// small-communicator collective allocation-free (no per-generation
	// state or gate). The running op/bytes/clock fold replaces the
	// completer's scan over per-member arrays; inputs/floats stay
	// per-slot because reduction order is part of the determinism
	// contract. poisoned is sticky: a mismatched or panicking collective
	// fails every later arrival too. These fields lead the struct so an
	// arrival's whole critical section touches the cache lines the lock
	// acquisition already pulled in.
	mu           sync.Mutex
	count        int
	gen          uint64
	condOp       string
	condBytes    int
	condClock    units.Seconds
	cond         *sync.Cond
	inputs       []any
	floats       [][]float64
	members      []int // world ids, ordered by rank-in-group
	condRes      any
	condFloats   []float64
	condResClock units.Seconds
	poisoned     string

	// shardSize is the member count per shard (== len(members) when the
	// group is too small to shard; shardPending is nil then and pending
	// counts ranks instead of shards).
	shardSize    int
	pending      atomic.Int64
	shardPending []shardCounter

	ops    []string
	clocks []units.Seconds
	bytes  []int

	// cur is the in-progress generation. Only the completer of the
	// previous generation stores it, before releasing that generation's
	// gates; doCancel loads it to force the gates open.
	cur atomic.Pointer[rendezvousState]

	// splitPrev caches the previous Split's per-color results on this
	// communicator. Drivers re-split the same world with the same
	// color/key assignment once per job, so a repeat is the common case;
	// when a color's sorted bucket matches the previous generation's,
	// its group object is reused instead of rebuilt (identical members
	// name the same logical communicator, and its generation counter
	// serializes collectives exactly as a fresh group would). Written
	// only by the completer, which runs exclusively.
	splitPrev map[int]*splitColor
}

// shardSizeFor picks the arrival-tree fan-in for a k-member group:
// roughly sqrt(k), rounded to a power of two. Below 2048 members the
// extra tree level costs more than the wakeup fan-out it spreads — a
// single root gate both arrives and releases faster (measured: the
// sharded tree was 0.93–0.98x of the seed at 256–1024 ranks, the single
// gate 1.2–1.3x) — so only the largest groups shard.
func shardSizeFor(k int) int {
	if k < 2048 {
		return k
	}
	return 1 << ((bits.Len(uint(k-1)) + 1) / 2)
}

// shardLen returns shard s's member count (the last shard may be short).
func (g *group) shardLen(s int) int {
	lo := s * g.shardSize
	hi := lo + g.shardSize
	if hi > len(g.members) {
		hi = len(g.members)
	}
	return hi - lo
}

// newState allocates the next generation's gates matching the group's
// shard layout.
func (g *group) newState() *rendezvousState {
	st := &rendezvousState{root: newGate()}
	if n := len(g.shardPending); n > 0 {
		st.shards = make([]gate, n)
		for i := range st.shards {
			st.shards[i] = newGate()
		}
	}
	return st
}

func newGroup(members []int) *group {
	k := len(members)
	g := &group{
		members: members,
		inputs:  make([]any, k),
		floats:  make([][]float64, k),
	}
	if size := shardSizeFor(k); size < k {
		g.ops = make([]string, k)
		g.clocks = make([]units.Seconds, k)
		g.bytes = make([]int, k)
		g.shardSize = size
		ns := (k + size - 1) / size
		g.shardPending = make([]shardCounter, ns)
		for s := range g.shardPending {
			g.shardPending[s].n.Store(int64(g.shardLen(s)))
		}
		g.pending.Store(int64(ns))
		g.cur.Store(g.newState())
	} else {
		g.shardSize = k
		g.cond = sync.NewCond(&g.mu)
	}
	return g
}

// Comm is a per-rank handle to a communicator.
type Comm struct {
	rank   *Rank
	group  *group
	myRank int
}

// Rank returns the caller's rank within this communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the communicator's member count.
func (c *Comm) Size() int { return len(c.group.members) }

// WorldRankOf translates a rank in this communicator to a world rank.
func (c *Comm) WorldRankOf(rank int) int { return c.group.members[rank] }

// arrive contributes one member's (opName, payload, clock) to the
// current collective generation and blocks until the last arriver
// publishes, returning that generation's state. Exactly one of
// input/reduce (untyped) or fvals/freduce (typed float64) is used.
func (c *Comm) arrive(opName string, bytes int, input any, fvals []float64,
	reduce func([]any) any, freduce func([][]float64) []float64) *rendezvousState {

	g := c.group
	rt := c.rank.rt
	if rt.isCancelled() {
		panic(errCanceled)
	}
	st := g.cur.Load()
	me := c.myRank
	g.ops[me] = opName
	g.bytes[me] = bytes
	g.clocks[me] = c.rank.clock
	g.inputs[me] = input
	g.floats[me] = fvals

	s := me / g.shardSize
	if g.shardPending[s].n.Add(-1) > 0 {
		c.rank.park(&st.shards[s], st)
	} else if g.pending.Add(-1) > 0 {
		// Shard leader: park at the root, then re-arm this shard's
		// counter and fan the release out through its own gate, so the
		// wakeup storm is spread over ~sqrt(k) channel locks instead of
		// serializing every waiter through one.
		c.rank.park(&st.root, st)
		g.shardPending[s].n.Store(int64(g.shardLen(s)))
		st.shards[s].release()
	} else {
		c.complete(st, reduce, freduce)
		g.shardPending[s].n.Store(int64(g.shardLen(s)))
		st.shards[s].release()
	}
	if st.poisoned != "" {
		panic(st.poisoned)
	}
	return st
}

// arriveCond is the unsharded rendezvous: deposit under the group lock,
// fold the op/bytes/clock on the way in, and either complete (last
// arriver) or wait on the condition variable for the generation to
// advance. It also applies the merged clock and reports the rendezvous
// wait (the cond path's finish), so a collective costs one call frame.
// The returned result and floats are read out under the lock and stay
// valid after it is released, because the next generation cannot
// complete until this rank arrives again; a collective on a small
// communicator therefore allocates nothing per generation.
func (c *Comm) arriveCond(opName string, bytes int, input any, fvals []float64,
	reduce func([]any) any, freduce func([][]float64) []float64) (any, []float64) {

	g := c.group
	r := c.rank
	rt := r.rt
	if rt.isCancelled() {
		panic(errCanceled)
	}
	entryClock := r.clock
	k := len(g.members)
	g.mu.Lock()
	if g.poisoned != "" {
		msg := g.poisoned
		g.mu.Unlock()
		panic(msg)
	}
	if g.count == 0 {
		g.condOp = opName
		g.condBytes = bytes
		g.condClock = r.clock
	} else {
		if g.condOp != opName {
			msg := fmt.Sprintf("mpi: collective mismatch on communicator: %q vs %q", g.condOp, opName)
			g.poisoned = msg
			g.cond.Broadcast()
			g.mu.Unlock()
			panic(msg)
		}
		if bytes > g.condBytes {
			g.condBytes = bytes
		}
		if r.clock > g.condClock {
			g.condClock = r.clock
		}
	}
	if freduce != nil {
		g.floats[c.myRank] = fvals
	} else {
		g.inputs[c.myRank] = input
	}
	g.count++
	if g.count == k {
		g.condResClock = g.condClock + rt.cost.CollectiveCost(k, g.condBytes)
		// A panicking reduce (malformed collective arguments) must poison
		// the group so waiters abort instead of hanging.
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					g.poisoned = fmt.Sprint(rec)
				}
			}()
			if freduce != nil {
				g.condFloats = freduce(g.floats[:k])
			} else {
				g.condRes = reduce(g.inputs[:k])
			}
		}()
		g.count = 0
		g.gen++
		res, fl, clk := g.condRes, g.condFloats, g.condResClock
		poison := g.poisoned
		g.cond.Broadcast()
		g.mu.Unlock()
		if poison != "" {
			panic(poison)
		}
		c.condFinish(opName, entryClock, clk)
		return res, fl
	}
	myGen := g.gen
	// Publish the wait target for doCancel, then recheck the flag: the
	// store and the load are both sequentially consistent, so either the
	// cancel walk sees the pointer (and its broadcast, taken under g.mu,
	// lands after Wait has enqueued this goroutine), or this recheck
	// sees the flag and unwinds instead of waiting. The pointer is left
	// published after the wait — a stale broadcast wakes nobody — so the
	// common case of re-waiting on the same group skips both stores.
	if r.condG.Load() != g {
		r.condG.Store(g)
	}
	for g.gen == myGen && g.poisoned == "" && !rt.isCancelled() {
		g.cond.Wait()
	}
	if g.poisoned != "" {
		msg := g.poisoned
		g.mu.Unlock()
		panic(msg)
	}
	if g.gen == myGen {
		// Cancelled before the generation completed.
		g.mu.Unlock()
		panic(errCanceled)
	}
	res, fl, clk := g.condRes, g.condFloats, g.condResClock
	g.mu.Unlock()
	c.condFinish(opName, entryClock, clk)
	return res, fl
}

// condFinish applies a completed cond-path collective's merged clock and
// reports the rendezvous wait, inline-cheap when telemetry is off.
func (c *Comm) condFinish(opName string, entryClock, resClock units.Seconds) {
	r := c.rank
	if resClock > r.clock {
		r.clock = resClock
	}
	if r.rt.tel != nil {
		if wait := r.clock - entryClock; wait > 0 {
			if m := r.rt.waitMetric(opName); m != nil {
				m.Observe(float64(wait))
			}
		}
	}
}

// park publishes the gate this rank is about to block on, rechecks the
// cancellation flag, blocks, and verifies the generation genuinely
// completed. The recheck after the store is what closes the
// check-then-park window: if doCancel's walk ran before the store, its
// flag store is seq-cst-before this load and the rank unwinds instead
// of parking on a gate nobody will open; otherwise the walk sees the
// pointer and opens the gate. A gate opened by cancellation rather than
// by a completing collective leaves completed unset, and the rank
// unwinds then too.
func (r *Rank) park(g *gate, st *rendezvousState) {
	r.parked.Store(g)
	if r.rt.isCancelled() {
		r.parked.Store(nil)
		panic(errCanceled)
	}
	<-g.ch
	r.parked.Store(nil)
	if !st.completed.Load() {
		panic(errCanceled)
	}
}

// complete is the completer's half of the rendezvous: verify the SPMD
// op discipline, merge clocks, charge the modeled cost, reduce, re-arm
// the group scratch for the next generation and release the root gate.
// (The caller releases the completer's own shard, if any.)
func (c *Comm) complete(st *rendezvousState, reduce func([]any) any, freduce func([][]float64) []float64) {
	g := c.group
	k := len(g.members)
	op := g.ops[0]
	for i := 1; i < k; i++ {
		if g.ops[i] != op {
			st.poisoned = fmt.Sprintf("mpi: collective mismatch on communicator: %q vs %q", op, g.ops[i])
			break
		}
	}
	var maxClock units.Seconds
	maxBytes := 0
	for i := 0; i < k; i++ {
		if g.clocks[i] > maxClock {
			maxClock = g.clocks[i]
		}
		if g.bytes[i] > maxBytes {
			maxBytes = g.bytes[i]
		}
	}
	st.resClock = maxClock + c.rank.rt.cost.CollectiveCost(k, maxBytes)
	if st.poisoned == "" {
		// A panicking reduce (malformed collective arguments) must poison
		// the group so waiters abort instead of hanging.
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					st.poisoned = fmt.Sprint(rec)
				}
			}()
			if freduce != nil {
				st.floats = freduce(g.floats[:k])
			} else {
				st.result = reduce(g.inputs[:k])
			}
		}()
	}
	// Re-arm before the release: woken members may immediately start the
	// next collective on this group, and they must find a fresh state and
	// a full pending count. The gate release orders these writes before
	// any waiter's next arrival. (Shard counters are re-armed by each
	// shard's leader before it releases that shard.)
	g.cur.Store(g.newState())
	if g.shardPending != nil {
		g.pending.Store(int64(len(g.shardPending)))
	} else {
		g.pending.Store(int64(k))
	}
	st.completed.Store(true)
	st.root.release()
}

// finish applies a completed collective's clock to the rank and reports
// the rendezvous wait, returning when the rank owns the merged clock.
func (c *Comm) finish(opName string, resClock units.Seconds) {
	r := c.rank
	arrival := r.clock
	if resClock > r.clock {
		r.clock = resClock
	}
	if r.rt.tel != nil {
		if wait := r.clock - arrival; wait > 0 {
			if m := r.rt.waitMetric(opName); m != nil {
				m.Observe(float64(wait))
			}
		}
	}
}

// rendezvous runs one lockstep collective over boxed payloads: every
// member contributes (opName, input, payload bytes); the last arriver
// reduces and publishes; all leave with the merged clock. The cost model
// charges a log-tree traversal over the max payload size.
func (c *Comm) rendezvous(opName string, input any, bytes int, reduce func(inputs []any) any) any {
	if len(c.group.members) == 1 {
		// Single-member communicator: the operation is local.
		if c.rank.rt.isCancelled() {
			panic(errCanceled)
		}
		return reduce([]any{input})
	}
	if c.group.shardPending == nil {
		res, _ := c.arriveCond(opName, bytes, input, nil, reduce, nil)
		return res
	}
	st := c.arrive(opName, bytes, input, nil, reduce, nil)
	c.finish(opName, st.resClock)
	return st.result
}

// rendezvousFloats is the typed fast path for the float64 reductions the
// power stack issues on every synchronization: no interface boxing, no
// defensive input copy (the contributing slice is only read before the
// generation completes, while its owner is still blocked), and a single
// result copy per rank.
func (c *Comm) rendezvousFloats(opName string, vals []float64, freduce func([][]float64) []float64) []float64 {
	if len(c.group.members) == 1 {
		if c.rank.rt.isCancelled() {
			panic(errCanceled)
		}
		return freduce([][]float64{vals})
	}
	if c.group.shardPending == nil {
		_, fl := c.arriveCond(opName, 8*len(vals), nil, vals, nil, freduce)
		return append([]float64(nil), fl...)
	}
	st := c.arrive(opName, 8*len(vals), nil, vals, nil, freduce)
	out := append([]float64(nil), st.floats...)
	c.finish(opName, st.resClock)
	return out
}

// sumFloats element-wise sums the members' slices in rank order (the
// float addition order is part of the determinism contract).
func sumFloats(inputs [][]float64) []float64 {
	out := make([]float64, len(inputs[0]))
	for _, xs := range inputs {
		if len(xs) != len(out) {
			panic("mpi: allreduce length mismatch")
		}
		for i, x := range xs {
			out[i] += x
		}
	}
	return out
}

// maxFloats element-wise maxes the members' slices.
func maxFloats(inputs [][]float64) []float64 {
	out := append([]float64(nil), inputs[0]...)
	for _, xs := range inputs[1:] {
		if len(xs) != len(out) {
			panic("mpi: allreduce length mismatch")
		}
		for i, x := range xs {
			if x > out[i] {
				out[i] = x
			}
		}
	}
	return out
}

// minFloats element-wise mins the members' slices.
func minFloats(inputs [][]float64) []float64 {
	out := append([]float64(nil), inputs[0]...)
	for _, xs := range inputs[1:] {
		if len(xs) != len(out) {
			panic("mpi: allreduce length mismatch")
		}
		for i, x := range xs {
			if x < out[i] {
				out[i] = x
			}
		}
	}
	return out
}

// Barrier blocks until all members arrive; all leave at the merged
// clock plus the collective cost.
func (c *Comm) Barrier() {
	c.rendezvous("barrier", nil, 8, func([]any) any { return nil })
}

// AllreduceSum element-wise sums float64 slices across members. All
// slices must have equal length.
func (c *Comm) AllreduceSum(vals []float64) []float64 {
	return c.rendezvousFloats("allreduce-sum", vals, sumFloats)
}

// AllreduceMax element-wise maxes float64 slices across members.
func (c *Comm) AllreduceMax(vals []float64) []float64 {
	return c.rendezvousFloats("allreduce-max", vals, maxFloats)
}

// AllreduceMin element-wise mins float64 slices across members.
func (c *Comm) AllreduceMin(vals []float64) []float64 {
	return c.rendezvousFloats("allreduce-min", vals, minFloats)
}

// Bcast distributes root's payload (of modeled size bytes) to all
// members; every caller returns the root's payload.
func (c *Comm) Bcast(root int, payload any, bytes int) any {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: bcast root %d out of range", root))
	}
	return c.rendezvous("bcast", payload, bytes, func(inputs []any) any {
		return inputs[root]
	})
}

// Allgather collects every member's payload; index i of the result is
// rank i's contribution.
func (c *Comm) Allgather(payload any, bytes int) []any {
	res := c.rendezvous("allgather", payload, bytes*c.Size(), func(inputs []any) any {
		return append([]any(nil), inputs...)
	})
	return res.([]any)
}

// Gather collects payloads at root; root receives the full slice, other
// ranks receive nil. (All ranks still synchronize, matching MPI_Gather's
// completion semantics under the conservative clock model.)
func (c *Comm) Gather(root int, payload any, bytes int) []any {
	res := c.rendezvous("gather", payload, bytes, func(inputs []any) any {
		return append([]any(nil), inputs...)
	})
	if c.myRank != root {
		return nil
	}
	return res.([]any)
}

// splitKey carries one rank's Split contribution.
type splitKey struct {
	color, key, world, rank int
}

// splitSerialMax bounds the communicator size for which the completer
// builds every per-color group itself inside the reduce. Above it the
// serial work is deferred: the completer only buckets contributions by
// color, and each color's group is built after the wakeup by the first
// of its members to claim it (see splitColor).
const splitSerialMax = 64

// splitColor is one color's deferred group construction. The reduce
// buckets the contributions; after the rendezvous releases, every
// member of the color races a claim, the winner sorts the bucket by
// (key, old rank), builds the group and opens the gate, and the rest
// wait on it. The builder never blocks between claim and release, so
// waiters cannot hang even when the run is being cancelled.
type splitColor struct {
	sks     []splitKey // sorted by (key, rank) once built
	claimed atomic.Bool
	done    gate
	group   *group
	// prev is this color's result from the parent's previous Split, if
	// any; the builder reuses prev.group when the sorted buckets match,
	// then clears the pointer so generations do not chain.
	prev *splitColor
}

// finishSplitColor resolves a claimed color's group: sort the bucket,
// reuse the previous generation's group when the membership is
// unchanged, build otherwise.
func finishSplitColor(sc *splitColor) {
	sortSplitKeys(sc.sks)
	if p := sc.prev; p != nil && splitKeysEqual(sc.sks, p.sks) {
		sc.group = p.group
	} else {
		sc.group = buildSplitGroup(sc.sks)
	}
	sc.prev = nil
}

// splitKeysEqual reports whether two sorted color buckets carry the
// same (color, key, world, rank) contributions.
func splitKeysEqual(a, b []splitKey) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortSplitKeys orders one color's contributions by (key, old rank),
// mirroring MPI_Comm_split's rank ordering.
func sortSplitKeys(sks []splitKey) {
	sort.Slice(sks, func(i, j int) bool {
		if sks[i].key != sks[j].key {
			return sks[i].key < sks[j].key
		}
		return sks[i].rank < sks[j].rank
	})
}

// buildSplitGroup turns a sorted color bucket into a group.
func buildSplitGroup(sks []splitKey) *group {
	members := make([]int, len(sks))
	for i, sk := range sks {
		members[i] = sk.world
	}
	return newGroup(members)
}

// splitRankIn locates (key, oldRank) in a sorted color bucket — the
// caller's rank in the new communicator — in O(log k) instead of the
// former linear scan over the member array (which summed to O(k²)
// across a large communicator's ranks).
func splitRankIn(sks []splitKey, key, oldRank int) int {
	i := sort.Search(len(sks), func(i int) bool {
		if sks[i].key != key {
			return sks[i].key > key
		}
		return sks[i].rank >= oldRank
	})
	if i == len(sks) || sks[i].key != key || sks[i].rank != oldRank {
		panic("mpi: split bookkeeping error")
	}
	return i
}

// Split partitions the communicator by color, ordering ranks within each
// new communicator by (key, old rank), mirroring MPI_Comm_split. Ranks
// passing a negative color receive nil (MPI_UNDEFINED).
//
// Small communicators use a serial fast path (the completer builds the
// handful of groups inside the reduce). At scale the completer only
// buckets by color — O(k) — and the per-color sort and group
// construction move onto the arriving ranks themselves, one builder per
// color, so the work the last arriver serializes no longer grows with
// the number and size of the new communicators.
func (c *Comm) Split(color, key int) *Comm {
	in := splitKey{color: color, key: key, world: c.rank.id, rank: c.myRank}
	g := c.group
	if len(g.members) <= splitSerialMax {
		res := c.rendezvous("split", in, 16, func(inputs []any) any {
			byColor := make(map[int][]splitKey)
			for _, bx := range inputs {
				sk := bx.(splitKey)
				if sk.color < 0 {
					continue
				}
				byColor[sk.color] = append(byColor[sk.color], sk)
			}
			colors := make(map[int]*splitColor, len(byColor))
			for color, sks := range byColor {
				sc := &splitColor{sks: sks, prev: g.splitPrev[color]}
				finishSplitColor(sc)
				colors[color] = sc
			}
			g.splitPrev = colors
			return colors
		})
		if color < 0 {
			return nil
		}
		sc := res.(map[int]*splitColor)[color]
		return c.splitComm(sc, key)
	}

	res := c.rendezvous("split", in, 16, func(inputs []any) any {
		prev := g.splitPrev
		colors := make(map[int]*splitColor)
		for _, bx := range inputs {
			sk := bx.(splitKey)
			if sk.color < 0 {
				continue
			}
			sc := colors[sk.color]
			if sc == nil {
				sc = &splitColor{done: newGate(), prev: prev[sk.color]}
				if sc.prev != nil {
					sc.sks = make([]splitKey, 0, len(sc.prev.sks))
				}
				colors[sk.color] = sc
			}
			sc.sks = append(sc.sks, sk)
		}
		g.splitPrev = colors
		return colors
	})
	if color < 0 {
		return nil
	}
	sc := res.(map[int]*splitColor)[color]
	if sc.claimed.CompareAndSwap(false, true) {
		finishSplitColor(sc)
		sc.done.release()
	} else {
		<-sc.done.ch
	}
	return c.splitComm(sc, key)
}

// splitComm wraps a resolved color in a Comm for this rank, reusing the
// rank's previously returned handle when the group was reused (the two
// are indistinguishable: same group, same rank in it).
func (c *Comm) splitComm(sc *splitColor, key int) *Comm {
	if lc := c.rank.lastSplit; lc != nil && lc.group == sc.group {
		return lc
	}
	out := &Comm{rank: c.rank, group: sc.group, myRank: splitRankIn(sc.sks, key, c.myRank)}
	c.rank.lastSplit = out
	return out
}

// The bandit allocator: an epsilon-greedy policy-over-policies that
// picks per-window among the hand-written allocators. It is the
// demonstration allocator for the rollout substrate (ROADMAP's
// policy-search item, SPARS-style): simple enough to read in one
// sitting, adaptive enough to beat every fixed policy on scenarios
// whose best fixed choice changes mid-run (a node kill, a placement
// whose transient favors one policy and whose steady state favors
// another).
package policy

import (
	"fmt"
	"math"
	"sort"

	"seesaw/internal/core"
	"seesaw/internal/rng"
	"seesaw/internal/units"
)

// BanditConfig parameterizes the arm-selection loop.
type BanditConfig struct {
	// Constraints are handed to every arm.
	Constraints core.Constraints
	// Window is the arms' reallocation window w (>= 1); the episode
	// length is derived from it (at least MinEpisode syncs).
	Window int
	// MinEpisode is the minimum number of synchronizations an arm is
	// held before the selection is revisited.
	MinEpisode int
	// Epsilon is the exploration probability at episode boundaries.
	Epsilon float64
	// Beta is the recency weight of the reward estimate update: values
	// near 1 track regime changes quickly, values near 0 average long.
	Beta float64
	// ResetDrop confirms a regime shift when two consecutive episodes'
	// rewards land more than this fraction away from the estimate the
	// current arm was selected with (the anchor), in either direction.
	// A confirmed shift refreshes every arm's adaptive state in place
	// — the change-detection that hands a fault or excursion boundary
	// to freshly constructed arms instead of converged, ratcheted-down
	// ones. It doubles as the exploration margin: epsilon-exploration
	// only visits arms whose estimate is within half this fraction of
	// the best, so a clearly dominated arm is never re-run.
	ResetDrop float64
	// Seed drives exploration deterministically.
	Seed uint64
}

// DefaultBanditConfig returns the tuned defaults.
func DefaultBanditConfig(c core.Constraints, w int) BanditConfig {
	return BanditConfig{
		Constraints: c,
		Window:      w,
		MinEpisode:  4,
		Epsilon:     0.02,
		Beta:        0.5,
		ResetDrop:   0.08,
		Seed:        0x5ee5a0,
	}
}

// Bandit selects per-episode among the hand-written policies with an
// epsilon-greedy rule over a recency-weighted reward estimate (negative
// mean interval wall time, so shorter intervals are better).
//
// The loop has two phases. In the audition phase every arm runs for one
// double-length episode scored on its second half (so the takeover
// transient of inheriting another arm's caps is not billed to the arm),
// seeding its estimate with a measured reward rather than an optimistic
// guess; an audition episode already trailing the round's best score is
// aborted early (racing cutoff). In the greedy phase the best-estimate
// arm runs, with probability Epsilon of exploring another near-best arm
// at each episode boundary. Two consecutive episodes whose rewards land
// more than ResetDrop away from the anchor — the estimate the arm was
// selected with, deliberately not the running EWMA, which would track a
// gradual drift silently — confirm a regime shift: every arm's adaptive
// state is rebuilt in place, the current arm keeps running, and the
// stale estimates are rescaled by the observed shift so their rank
// order survives at the new regime's reward level. Refreshing the arms
// is the bandit's real edge over any fixed policy: adaptive allocators
// ratchet their reactivity down as they converge (time-aware's step
// decays geometrically and never recovers), so a fixed instance unwinds
// an excursion's cap skew at 1 W per adjustment, while the bandit's
// fresh instance re-balances at full initial step. The static arm
// doubles as "freeze the current allocation": selecting it holds
// whatever caps the previous arm converged to instead of resetting to
// the even split.
type Bandit struct {
	cfg   BanditConfig
	names []string
	arms  []core.Policy
	rng   *rng.Stream

	episode int // syncs per episode

	value []float64 // recency-weighted reward estimate per arm
	seen  []bool    // audition coverage

	cur         int     // current arm
	auditioning bool    // audition phase active
	order       []int   // audition visiting order (previous best first)
	auditionIdx int     // position in order of the arm under audition
	auditionRef float64 // best score seen this audition round (racing cutoff)
	haveRef     bool    // auditionRef holds a score
	anchor      float64 // estimate the current arm was selected with (drift reference)
	shifted     bool    // previous episode's reward already shifted (two-strike reset)

	epSyncs   int     // syncs elapsed in the current episode
	epReward  float64 // summed reward of the current episode (attribution-lagged)
	epHalf    float64 // reward over the episode's second half (audition scoring)
	epHalfN   int     // scored syncs in the second half
	switches  int     // arm changes, for introspection
	refreshes int     // confirmed regime shifts (arm rebuilds)
	allocs    int
	history   []ArmSpan // selection history, for introspection
}

// ArmSpan records one contiguous stretch of a single arm's tenure.
type ArmSpan struct {
	// FromSync is the 1-based synchronization index the arm took over at.
	FromSync int
	// Arm is the selected arm's policy name.
	Arm string
	// Audition marks spans run to score an arm rather than exploit it.
	Audition bool
}

// NewBandit returns an epsilon-greedy bandit over the hand-written
// policies (the static baseline plus the compared allocators).
func NewBandit(cfg BanditConfig) (*Bandit, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("policy: bandit window must be >= 1, got %d", cfg.Window)
	}
	if cfg.MinEpisode < 1 {
		return nil, fmt.Errorf("policy: bandit episode must be >= 1, got %d", cfg.MinEpisode)
	}
	if cfg.Epsilon < 0 || cfg.Epsilon >= 1 {
		return nil, fmt.Errorf("policy: bandit epsilon %v outside [0,1)", cfg.Epsilon)
	}
	if cfg.Beta <= 0 || cfg.Beta > 1 {
		return nil, fmt.Errorf("policy: bandit beta %v outside (0,1]", cfg.Beta)
	}
	if err := cfg.Constraints.Validate(0); err != nil {
		return nil, err
	}
	names := append([]string{"static"}, Compared()...)
	episode := cfg.MinEpisode
	if cfg.Window > episode {
		episode = cfg.Window
	}
	b := &Bandit{
		cfg:     cfg,
		names:   names,
		rng:     rng.Derive(cfg.Seed, "policy-bandit"),
		episode: episode,
		value:   make([]float64, len(names)),
		seen:    make([]bool, len(names)),
	}
	if err := b.buildArms(); err != nil {
		return nil, err
	}
	b.startAudition()
	return b, nil
}

// startAudition begins an audition round: every arm runs one
// double-length episode scored on its second half (so the score
// measures the arm's converged behavior, not its takeover transient),
// visited in previous-best-first order so the racing cutoff gets its
// reference score from the likely winner and dominated arms abort
// early. On the very first audition every estimate is zero and the
// order degrades to registration order, which begins with static — the
// even split every run starts from, the natural reference.
func (b *Bandit) startAudition() {
	order := make([]int, len(b.arms))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(x, y int) bool { return b.value[order[x]] > b.value[order[y]] })
	b.order = order
	for i := range b.seen {
		b.seen[i] = false
	}
	b.auditioning = true
	b.auditionIdx = 0
	b.haveRef = false
	b.shifted = false
	b.cur = order[0]
}

// buildArms (re)constructs the arm policies with fresh adaptive state.
func (b *Bandit) buildArms() error {
	arms := make([]core.Policy, len(b.names))
	for i, n := range b.names {
		p, err := New(n, b.cfg.Constraints, b.cfg.Window)
		if err != nil {
			return fmt.Errorf("policy: bandit arm %q: %w", n, err)
		}
		arms[i] = p
	}
	b.arms = arms
	return nil
}

// Name implements Policy.
func (*Bandit) Name() string { return "bandit" }

// Arm returns the currently selected arm's policy name.
func (b *Bandit) Arm() string { return b.arms[b.cur].Name() }

// Switches reports how many times the selection changed arms.
func (b *Bandit) Switches() int { return b.switches }

// Allocations reports how many Allocate invocations were delegated.
func (b *Bandit) Allocations() int { return b.allocs }

// Refreshes reports how many confirmed regime shifts rebuilt the arms.
func (b *Bandit) Refreshes() int { return b.refreshes }

// History returns the arm-selection history: one span per contiguous
// stretch of a single arm's tenure, in order.
func (b *Bandit) History() []ArmSpan { return append([]ArmSpan(nil), b.history...) }

// Allocate implements Policy: it scores the interval that just ended,
// delegates the allocation to the current arm, and revisits the arm
// choice at episode boundaries.
func (b *Bandit) Allocate(step int, nodes []core.NodeMeasure) []units.Watts {
	// Interval wall time: every live node reports the same
	// allocator-to-allocator interval (work + sync wait).
	var wall units.Seconds
	for _, n := range nodes {
		if n.Health == core.Dead {
			continue
		}
		if n.Time > wall {
			wall = n.Time
		}
	}
	// The first sync of an episode still reflects the previous arm's
	// caps (allocations take effect for the next interval), so its
	// reward is not attributed to the new arm.
	if b.epSyncs > 0 && wall > 0 {
		b.epReward -= float64(wall)
		if b.auditioning && b.epSyncs >= b.episode {
			b.epHalf -= float64(wall)
			b.epHalfN++
		}
	}
	b.epSyncs++

	b.allocs++
	if len(b.history) == 0 {
		b.history = append(b.history, ArmSpan{FromSync: step, Arm: b.Arm(), Audition: b.auditioning})
	}
	caps := b.arms[b.cur].Allocate(step, nodes)

	if b.epSyncs >= b.episodeLen() || b.auditionLost() {
		b.endEpisode(step + 1)
	}
	return caps
}

// episodeLen is the current episode's length in syncs: audition
// episodes run twice as long as greedy ones so the scored second half
// measures the arm past its takeover transient.
func (b *Bandit) episodeLen() int {
	if b.auditioning {
		return 2 * b.episode
	}
	return b.episode
}

// auditionLost is the racing cutoff: an audition episode that already
// trails the round's best score by over the shift threshold in its
// scored half (or by triple that on the raw first-half mean) cannot win
// the audition, so it ends early instead of burning its remaining syncs
// on a clearly dominated arm.
func (b *Bandit) auditionLost() bool {
	if !b.auditioning || !b.haveRef {
		return false
	}
	if b.epHalfN >= 2 {
		mean := b.epHalf / float64(b.epHalfN)
		return mean < b.auditionRef-0.5*b.cfg.ResetDrop*math.Abs(b.auditionRef)
	}
	if scored := b.epSyncs - 1; scored >= 3 {
		mean := b.epReward / float64(scored)
		return mean < b.auditionRef-3*b.cfg.ResetDrop*math.Abs(b.auditionRef)
	}
	return false
}

// endEpisode folds the episode's reward into the arm's estimate and
// selects the next arm; nextSync is the synchronization the selection
// takes effect at (history bookkeeping).
func (b *Bandit) endEpisode(nextSync int) {
	scored := b.epSyncs - 1 // first sync is attribution-lagged
	var r float64
	switch {
	case b.auditioning && b.epHalfN > 0:
		r = b.epHalf / float64(b.epHalfN) // converged-half score
	case scored > 0:
		r = b.epReward / float64(scored) // full mean (greedy, or aborted audition)
	}
	prev := b.cur
	switch {
	case b.auditioning:
		b.value[b.cur] = r
		b.seen[b.cur] = true
		if !b.haveRef || r > b.auditionRef {
			b.auditionRef, b.haveRef = r, true
		}
		b.auditionIdx++
		if b.auditionIdx < len(b.order) {
			b.cur = b.order[b.auditionIdx]
		} else {
			b.auditioning = false
			b.cur = b.best()
			b.anchor = b.value[b.cur]
		}
	case math.Abs(r-b.anchor) > b.cfg.ResetDrop*math.Abs(b.anchor):
		// Reward shifted away from the estimate this arm was selected
		// with. The anchor is deliberately NOT the running EWMA: a
		// regime that changes gradually (an excursion's drag released,
		// caps crawling back) drifts the EWMA along with it and would
		// never look like a step. One shifted episode can be noise; two
		// in a row mean the world changed under us: refresh the arms in
		// place. Their converged adaptive state belongs to the old
		// regime — a time-aware arm whose step has decayed to the floor
		// would unwind excursion-skewed caps at 1 W per sync, while a
		// rebuilt one re-adapts at the full initial step. The current
		// arm keeps running (no audition churn through known-worse
		// arms); the stale estimates are rescaled by the observed shift
		// so their rank order survives but their magnitude matches the
		// new regime, leaving exploration to re-rank arms the shift
		// actually reordered.
		if !b.shifted {
			b.shifted = true
			b.value[b.cur] = (1-b.cfg.Beta)*b.value[b.cur] + b.cfg.Beta*r
			break
		}
		b.shifted = false
		b.refreshes++
		if err := b.buildArms(); err != nil {
			// Arms built once already; a rebuild cannot fail. Keep the
			// old instances if it somehow does.
			_ = err
		}
		if b.anchor != 0 && r/b.anchor > 0 {
			ratio := r / b.anchor
			for i := range b.value {
				if b.seen[i] && i != b.cur {
					b.value[i] *= ratio
				}
			}
		}
		b.value[b.cur] = r
		b.anchor = r
	default:
		b.shifted = false
		b.value[b.cur] = (1-b.cfg.Beta)*b.value[b.cur] + b.cfg.Beta*r
		if b.cfg.Epsilon > 0 && b.rng.Float64() < b.cfg.Epsilon {
			b.cur = b.explore()
		} else {
			b.cur = b.best()
		}
		if b.cur != prev {
			b.anchor = b.value[b.cur]
		}
	}
	if b.cur != prev {
		b.switches++
	}
	if n := len(b.history); n > 0 && (b.history[n-1].Arm != b.Arm() || b.history[n-1].Audition != b.auditioning) {
		b.history = append(b.history, ArmSpan{FromSync: nextSync, Arm: b.Arm(), Audition: b.auditioning})
	}
	b.epSyncs = 0
	b.epReward = 0
	b.epHalf = 0
	b.epHalfN = 0
}

// explore picks a uniformly random arm among the viable set: arms whose
// estimate is within half of ResetDrop of the best, so exploration
// refreshes the estimates of genuine contenders without re-running an
// arm the audition already showed to be clearly dominated.
func (b *Bandit) explore() int {
	best := b.value[b.best()]
	margin := 0.5 * b.cfg.ResetDrop * math.Abs(best)
	var viable []int
	for i, v := range b.value {
		if b.seen[i] && v >= best-margin {
			viable = append(viable, i)
		}
	}
	if len(viable) == 0 {
		return b.best()
	}
	return viable[int(b.rng.Uint64()%uint64(len(viable)))]
}

// best returns the arm with the highest reward estimate (ties to the
// lowest index, deterministically).
func (b *Bandit) best() int {
	bi, bv := 0, math.Inf(-1)
	for i, v := range b.value {
		if b.seen[i] && v > bv {
			bi, bv = i, v
		}
	}
	return bi
}

func init() {
	Register("bandit", "epsilon-greedy per-window selection among the hand-written policies (rollout-search demo)",
		func(cons core.Constraints, w int) (core.Policy, error) {
			return NewBandit(DefaultBanditConfig(cons, w))
		})
}

package rollout

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"seesaw/internal/cosim"
	"seesaw/internal/telemetry"
)

// countingCache wires the build seam to a counter so tests can observe
// exactly how many JobStates were constructed per key.
func countingCache(maxBytes int64, builds *atomic.Int64, gate chan struct{}) *StateCache {
	c := NewStateCacheBytes(maxBytes)
	c.build = func(cfg cosim.Config) (*cosim.JobState, error) {
		builds.Add(1)
		if gate != nil {
			<-gate
		}
		return cosim.NewJobState(cfg)
	}
	return c
}

// cacheSpec returns a tiny distinct job per index (the Seed forks the
// job key), used to fill a cache with many entries.
func cacheSpec(t *testing.T, i int) Spec {
	t.Helper()
	s := testSpec("", t)
	s.Faults = nil // fault-free jobs record traces, so entries have real sizes
	s.Seed = uint64(100 + i)
	return s
}

// TestStateCacheBound pins the byte bound: filling the cache past its
// budget evicts least-recently-used entries, the accounted bytes stay
// within the bound, and a recently-touched entry survives over a
// colder one.
func TestStateCacheBound(t *testing.T) {
	var builds atomic.Int64
	// Size the bound from one real entry so the test tracks the episode
	// shape: room for two entries plus slack, not three.
	probe := countingCache(0, &builds, nil)
	s0 := cacheSpec(t, 0)
	st0, err := probe.state(s0.jobKey(), s0.cosimConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	one := st0.TraceBytes()
	if one < entrySizeFloor {
		one = entrySizeFloor
	}

	c := countingCache(2*one+one/2, &builds, nil)
	builds.Store(0)
	keys := make([]string, 3)
	for i := range keys {
		s := cacheSpec(t, i)
		keys[i] = s.jobKey()
		if _, err := c.state(keys[i], s.cosimConfig(nil)); err != nil {
			t.Fatal(err)
		}
		if i == 1 {
			// Touch entry 0 so entry 1 is the LRU victim when 2 lands.
			if _, err := c.state(keys[0], cacheSpec(t, 0).cosimConfig(nil)); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := c.Stats()
	if st.Evictions == 0 {
		t.Fatalf("no evictions after overfilling: %+v", st)
	}
	if st.Bytes > 2*one+one/2 {
		t.Fatalf("accounted bytes %d exceed the bound %d", st.Bytes, 2*one+one/2)
	}
	if st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("hits/misses = %d/%d, want 1/3", st.Hits, st.Misses)
	}
	// keys[1] was LRU at eviction time: re-requesting it rebuilds,
	// re-requesting the touched keys[0] must not.
	before := builds.Load()
	if _, err := c.state(keys[0], cacheSpec(t, 0).cosimConfig(nil)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != before {
		t.Error("recently-used entry was evicted")
	}
	if _, err := c.state(keys[1], cacheSpec(t, 1).cosimConfig(nil)); err != nil {
		t.Fatal(err)
	}
	if builds.Load() != before+1 {
		t.Error("LRU entry survived past the bound")
	}
}

// TestStateCacheSingleflight pins the get-or-build contract: concurrent
// lookups of one cold key share a single build — no JobState (and so no
// noise trace) is ever recorded twice. Run under -race this also checks
// the handoff publishes the built state safely.
func TestStateCacheSingleflight(t *testing.T) {
	var builds atomic.Int64
	gate := make(chan struct{})
	c := countingCache(0, &builds, gate)
	s := cacheSpec(t, 0)
	key, cfg := s.jobKey(), s.cosimConfig(nil)

	const callers = 8
	states := make([]*cosim.JobState, callers)
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			st, err := c.state(key, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			states[i] = st
		}(i)
	}
	close(start)
	close(gate) // release the builder once everyone is racing
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("%d builds for one key, want 1", n)
	}
	for i := 1; i < callers; i++ {
		if states[i] != states[0] {
			t.Fatalf("caller %d got a different JobState", i)
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != callers {
		t.Fatalf("hits+misses = %d, want %d", st.Hits+st.Misses, callers)
	}
}

// TestStateCacheErrorNotCached: a failed build leaves the key
// buildable — the next lookup retries instead of replaying the error
// forever.
func TestStateCacheErrorNotCached(t *testing.T) {
	var builds atomic.Int64
	c := NewStateCacheBytes(0)
	boom := errors.New("boom")
	c.build = func(cfg cosim.Config) (*cosim.JobState, error) {
		if builds.Add(1) == 1 {
			return nil, boom
		}
		return cosim.NewJobState(cfg)
	}
	s := cacheSpec(t, 0)
	if _, err := c.state(s.jobKey(), s.cosimConfig(nil)); !errors.Is(err, boom) {
		t.Fatalf("first lookup error = %v, want boom", err)
	}
	if _, err := c.state(s.jobKey(), s.cosimConfig(nil)); err != nil {
		t.Fatalf("retry after failed build: %v", err)
	}
	if builds.Load() != 2 {
		t.Fatalf("%d builds, want 2 (fail, then retry)", builds.Load())
	}
}

// TestStateCacheTelemetry: with a hub attached the cache mirrors its
// counters into the metric registry the -cache-stats flag reads.
func TestStateCacheTelemetry(t *testing.T) {
	hub := telemetry.New(telemetry.Options{})
	var builds atomic.Int64
	c := countingCache(1, &builds, nil) // 1-byte bound: every insert evicts the previous entry
	c.SetTelemetry(hub)
	for i := 0; i < 3; i++ {
		s := cacheSpec(t, i)
		if _, err := c.state(s.jobKey(), s.cosimConfig(nil)); err != nil {
			t.Fatal(err)
		}
	}
	s := cacheSpec(t, 2) // newest entry is retained: this is a hit
	if _, err := c.state(s.jobKey(), s.cosimConfig(nil)); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	reg := hub.Registry()
	for _, row := range []struct {
		name string
		want float64
	}{
		{"rollout_trace_cache_hits_total", float64(st.Hits)},
		{"rollout_trace_cache_misses_total", float64(st.Misses)},
		{"rollout_trace_cache_evictions_total", float64(st.Evictions)},
		{"rollout_trace_cache_bytes", float64(st.Bytes)},
	} {
		var got float64
		if row.name == "rollout_trace_cache_bytes" {
			got = reg.Gauge(row.name, "").With().Value()
		} else {
			got = reg.Counter(row.name, "").With().Value()
		}
		if got != row.want {
			t.Errorf("%s = %g, want %g", row.name, got, row.want)
		}
	}
	if st.Hits != 1 || st.Evictions == 0 {
		t.Errorf("stats %+v: want 1 hit and nonzero evictions", st)
	}
}

// TestStateCacheSharedAcrossBatches: a caller-supplied cache carries
// its entries (and stats) across Batch invocations.
func TestStateCacheSharedAcrossBatches(t *testing.T) {
	points, err := Grid{Nodes: []int{8}, Steps: 8, Policies: []string{"seesaw", "time-aware"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	cache := NewStateCache()
	for round := 0; round < 2; round++ {
		if _, err := Batch(context.Background(), points, Options{Cache: cache, Jobs: 2}); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
	st := cache.Stats()
	if st.Entries != 1 {
		t.Fatalf("%d cache entries for one job, want 1", st.Entries)
	}
	if st.Misses != 1 {
		t.Errorf("%d misses across two batches of one job, want 1 (stats: %+v)", st.Misses, st)
	}
	if st.Hits == 0 {
		t.Errorf("no hits across two batches of one job (stats: %+v)", st)
	}
}

// TestStateCacheKeyIndependence sanity-checks the size accounting used
// above: distinct jobs get distinct entries and the accounted bytes
// grow with each.
func TestStateCacheKeyIndependence(t *testing.T) {
	c := NewStateCache()
	var last int64
	for i := 0; i < 3; i++ {
		s := cacheSpec(t, i)
		if _, err := c.state(s.jobKey(), s.cosimConfig(nil)); err != nil {
			t.Fatal(err)
		}
		st := c.Stats()
		if st.Entries != i+1 {
			t.Fatalf("after %d inserts: %d entries", i+1, st.Entries)
		}
		if st.Bytes <= last {
			t.Fatalf("bytes did not grow: %d -> %d", last, st.Bytes)
		}
		last = st.Bytes
	}
	if c.Stats().Evictions != 0 {
		t.Error("evictions under an unfilled default bound")
	}
	// Keys must fork on the memo flag so live and replayed JobStates
	// never share an entry.
	s := cacheSpec(t, 0)
	memoKey := s.jobKey()
	s.NoNoiseMemo = true
	if s.jobKey() == memoKey {
		t.Error("NoNoiseMemo does not fork the job key")
	}
	if want := memoKey + "/nomemo"; s.jobKey() != want {
		t.Errorf("nomemo key = %q, want %q", s.jobKey(), want)
	}
}

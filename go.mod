module seesaw

go 1.22

package core

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"seesaw/internal/units"
)

func testConstraints() Constraints {
	return Constraints{Budget: 110 * 8, MinCap: 98, MaxCap: 215}
}

// measures builds a 4+4 node measurement set with given partition times
// and per-node powers.
func measures(simT, anaT units.Seconds, simP, anaP units.Watts, cap units.Watts) []NodeMeasure {
	var ms []NodeMeasure
	for i := 0; i < 4; i++ {
		ms = append(ms, NodeMeasure{Role: RoleSimulation, Time: simT, BusyTime: simT, EpochTime: simT, Power: simP, Cap: cap})
	}
	for i := 0; i < 4; i++ {
		ms = append(ms, NodeMeasure{Role: RoleAnalysis, Time: anaT, BusyTime: anaT, EpochTime: anaT, Power: anaP, Cap: cap})
	}
	return ms
}

func TestRoleString(t *testing.T) {
	if RoleSimulation.String() != "sim" || RoleAnalysis.String() != "ana" {
		t.Error("role strings wrong")
	}
	// An unknown role must surface its value, not read as a partition.
	if got := Role(7).String(); got != "invalid-role(7)" {
		t.Errorf("invalid role renders as %q", got)
	}
	if !RoleSimulation.Valid() || !RoleAnalysis.Valid() || Role(2).Valid() || Role(-1).Valid() {
		t.Error("Role.Valid wrong")
	}
}

func TestHealth(t *testing.T) {
	var h Health
	if h != Healthy {
		t.Error("zero Health is not Healthy")
	}
	if !Healthy.Alive() || !Degraded.Alive() || Dead.Alive() {
		t.Error("Health.Alive wrong")
	}
	for h, want := range map[Health]string{Healthy: "healthy", Degraded: "degraded", Dead: "dead", Health(9): "invalid-health(9)"} {
		if got := h.String(); got != want {
			t.Errorf("Health(%d).String() = %q, want %q", int(h), got, want)
		}
	}
}

func TestPartitionTotalsInvalidRolePanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("invalid role did not panic")
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, "invalid role 3") {
			t.Errorf("panic does not name the offending value: %v", r)
		}
	}()
	partitionTotals([]NodeMeasure{{NodeID: 5, Role: Role(3)}})
}

func TestExpandPartitionCapsInvalidRolePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid role did not panic")
		}
	}()
	expandPartitionCaps([]NodeMeasure{{Role: Role(-2)}}, 110, 110)
}

func TestConstraintsValidate(t *testing.T) {
	good := testConstraints()
	if err := good.Validate(8); err != nil {
		t.Errorf("valid constraints rejected: %v", err)
	}
	bad := []Constraints{
		{Budget: 0, MinCap: 98, MaxCap: 215},
		{Budget: 1000, MinCap: 0, MaxCap: 215},
		{Budget: 1000, MinCap: 215, MaxCap: 98},
		{Budget: 100, MinCap: 98, MaxCap: 215}, // below 8*98
	}
	for i, c := range bad {
		if err := c.Validate(8); err == nil {
			t.Errorf("constraints %d should be rejected", i)
		}
	}
}

// TestConstraintsValidateShrinkingNodes covers the membership sizes a
// fault plan produces: validation is against the live node count, which
// shrinks as nodes die.
func TestConstraintsValidateShrinkingNodes(t *testing.T) {
	c := testConstraints() // 880 W, [98, 215]
	// nodes=0: the per-node feasibility check is vacuous, the rest of
	// the constraint sanity checks still apply.
	if err := c.Validate(0); err != nil {
		t.Errorf("Validate(0): %v", err)
	}
	if err := (Constraints{Budget: -1, MinCap: 98, MaxCap: 215}).Validate(0); err == nil {
		t.Error("Validate(0) skipped the budget sanity check")
	}
	// Budget exactly at MinCap*nodes is feasible (every node pinned at
	// delta_min), one node more is not.
	exact := Constraints{Budget: 98 * 8, MinCap: 98, MaxCap: 215}
	if err := exact.Validate(8); err != nil {
		t.Errorf("budget exactly at MinCap*nodes rejected: %v", err)
	}
	if err := exact.Validate(9); err == nil {
		t.Error("budget below MinCap*9 accepted")
	}
	// Post-kill membership: the same constraints become *easier* to
	// satisfy as nodes die — every count down from 8 must validate.
	for n := 8; n >= 0; n-- {
		if err := c.Validate(n); err != nil {
			t.Errorf("Validate(%d) after kills: %v", n, err)
		}
	}
}

func TestStatic(t *testing.T) {
	s := NewStatic()
	if s.Name() != "static" {
		t.Error("wrong name")
	}
	if got := s.Allocate(1, measures(4, 4, 108, 108, 110)); got != nil {
		t.Error("static policy must never reallocate")
	}
}

func TestEvenSplit(t *testing.T) {
	c := testConstraints()
	if got := EvenSplit(c, 8); got != 110 {
		t.Errorf("EvenSplit = %v, want 110", got)
	}
	if got := EvenSplit(c, 0); got != 0 {
		t.Errorf("EvenSplit with zero nodes = %v", got)
	}
	// Clamped to MinCap when budget is tight relative to node count.
	tight := Constraints{Budget: 98 * 10, MinCap: 98, MaxCap: 215}
	if got := EvenSplit(tight, 10); got != 98 {
		t.Errorf("tight EvenSplit = %v, want 98", got)
	}
}

// TestEvenSplitShrinkingNodes walks the node count down as kills would:
// the per-node share grows monotonically and saturates at delta_max,
// and the degenerate zero-membership split stays zero.
func TestEvenSplitShrinkingNodes(t *testing.T) {
	c := testConstraints() // 880 W for what was 8 nodes
	prev := units.Watts(0)
	for n := 8; n >= 1; n-- {
		got := EvenSplit(c, n)
		if got < c.MinCap || got > c.MaxCap {
			t.Errorf("EvenSplit(%d) = %v outside [%v, %v]", n, got, c.MinCap, c.MaxCap)
		}
		if got < prev {
			t.Errorf("EvenSplit(%d) = %v shrank below the %d-node share %v", n, got, n+1, prev)
		}
		prev = got
	}
	if got := EvenSplit(c, 4); got != 215 {
		t.Errorf("EvenSplit(4) = %v, want saturation at delta_max (880/4 > 215)", got)
	}
	if got := EvenSplit(c, 0); got != 0 {
		t.Errorf("EvenSplit(0) = %v, want 0", got)
	}
	// Budget exactly at MinCap*nodes: the split sits on delta_min.
	exact := Constraints{Budget: 98 * 6, MinCap: 98, MaxCap: 215}
	if got := EvenSplit(exact, 6); got != 98 {
		t.Errorf("exact-minimum EvenSplit = %v, want 98", got)
	}
}

func TestClampPartitionCaps(t *testing.T) {
	c := testConstraints() // budget 880, caps [98,215], 4+4 nodes

	// Below delta_min: pinned, remainder to the other side.
	s, a := clampPartitionCaps(90, 130, 4, 4, c)
	if s != 98 {
		t.Errorf("sim cap = %v, want delta_min 98", s)
	}
	wantA := units.ClampWatts((c.Budget-98*4)/4, c.MinCap, c.MaxCap)
	if a != wantA {
		t.Errorf("ana cap = %v, want remainder %v", a, wantA)
	}

	// Above delta_max with enough budget: pinned at 215.
	rich := Constraints{Budget: 215*4 + 120*4, MinCap: 98, MaxCap: 215}
	s, a = clampPartitionCaps(300, 10, 4, 4, rich)
	if s != 215 {
		t.Errorf("sim cap = %v, want delta_max", s)
	}
	if a != 120 {
		t.Errorf("ana cap = %v, want the 120 remainder", a)
	}

	// The double-pin case: pS above delta_max, pA below delta_min, and
	// the budget cannot afford delta_max for the pinned side. The old
	// clamp kept sim at 215 and over-committed the budget by 372 W;
	// conservation now trims sim to what the budget affords.
	s, a = clampPartitionCaps(300, 10, 4, 4, c)
	if a != 98 {
		t.Errorf("ana cap = %v, want delta_min 98", a)
	}
	if want := (c.Budget - 98*4) / 4; s != want {
		t.Errorf("sim cap = %v, want affordable remainder %v", s, want)
	}

	// In range: untouched.
	s, a = clampPartitionCaps(120, 100, 4, 4, c)
	if s != 120 || a != 100 {
		t.Errorf("in-range caps modified: %v/%v", s, a)
	}

	// Empty partitions: the live side receives the whole clamped budget.
	s, a = clampPartitionCaps(110, 110, 4, 0, c)
	if s != 215 { // 880/4 = 220, clamped to delta_max
		t.Errorf("sim-only cap = %v, want 215", s)
	}
	_, a = clampPartitionCaps(110, 110, 0, 4, c)
	if a != 215 {
		t.Errorf("ana-only cap = %v, want 215", a)
	}
}

func TestClampPartitionCapsProperty(t *testing.T) {
	c := testConstraints()
	f := func(rawS, rawA float64) bool {
		ps := units.Watts(math.Abs(math.Mod(rawS, 400)))
		pa := units.Watts(math.Abs(math.Mod(rawA, 400)))
		s, a := clampPartitionCaps(ps, pa, 4, 4, c)
		return s >= c.MinCap && s <= c.MaxCap && a >= c.MinCap && a <= c.MaxCap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestClampPartitionCapsConservation: for any inputs and any feasible
// split of the live membership, the clamped caps account for the whole
// budget exactly — unless the range itself forbids it (everything
// pinned at delta_max still undershoots an over-rich budget).
func TestClampPartitionCapsConservation(t *testing.T) {
	f := func(rawS, rawA float64, rawSim, rawAna uint8) bool {
		nSim := 1 + int(rawSim%8)
		nAna := 1 + int(rawAna%8)
		c := Constraints{Budget: 110 * units.Watts(nSim+nAna), MinCap: 98, MaxCap: 215}
		ps := units.Watts(math.Abs(math.Mod(rawS, 400)))
		pa := units.Watts(math.Abs(math.Mod(rawA, 400)))
		s, a := clampPartitionCaps(ps, pa, nSim, nAna, c)
		total := s*units.Watts(nSim) + a*units.Watts(nAna)
		return math.Abs(float64(total-c.Budget)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Post-kill membership: the live counts shrink but the budget does
	// not; conservation holds until delta_max saturates, then every
	// survivor is pinned there.
	c := testConstraints() // 880 W for what was 4+4
	s, a := clampPartitionCaps(110, 110, 3, 4, c)
	if got := s*3 + a*4; math.Abs(float64(got-c.Budget)) > 1e-6 {
		t.Errorf("3+4 survivors allocate %v of %v", got, c.Budget)
	}
	s, a = clampPartitionCaps(110, 110, 2, 2, c) // 880 > 215*4
	if s != 215 || a != 215 {
		t.Errorf("saturated survivors = %v/%v, want delta_max pins", s, a)
	}
}

func TestPartitionTotals(t *testing.T) {
	ms := measures(5, 3, 100, 105, 110)
	ms[1].Time = 7 // one slow sim node
	simT, anaT, simP, anaP, nSim, nAna := partitionTotals(ms)
	if simT != 7 || anaT != 3 {
		t.Errorf("partition times = %v/%v", simT, anaT)
	}
	if simP != 400 || anaP != 420 {
		t.Errorf("partition powers = %v/%v", simP, anaP)
	}
	if nSim != 4 || nAna != 4 {
		t.Errorf("partition sizes = %d/%d", nSim, nAna)
	}
}

// TestPartitionTotalsExcludesDead: a killed node leaves the live counts
// and contributes neither time nor power.
func TestPartitionTotalsExcludesDead(t *testing.T) {
	ms := measures(5, 3, 100, 105, 110)
	ms[0].Health = Dead
	ms[0].Time, ms[0].Power = 0, 0
	ms[5].Health = Dead
	ms[5].Time, ms[5].Power = 99, 500 // stale values on a corpse must not count
	simT, anaT, simP, anaP, nSim, nAna := partitionTotals(ms)
	if nSim != 3 || nAna != 3 {
		t.Errorf("live sizes = %d/%d, want 3/3", nSim, nAna)
	}
	if simP != 300 || anaP != 315 {
		t.Errorf("live powers = %v/%v", simP, anaP)
	}
	if simT != 5 || anaT != 3 {
		t.Errorf("live times = %v/%v", simT, anaT)
	}
	// Degraded nodes stay in the membership.
	ms[1].Health = Degraded
	_, _, _, _, nSim, _ = partitionTotals(ms)
	if nSim != 3 {
		t.Errorf("degraded node dropped from membership: nSim = %d", nSim)
	}
}

func TestExpandPartitionCaps(t *testing.T) {
	ms := measures(1, 1, 100, 100, 110)
	caps := expandPartitionCaps(ms, 120, 100)
	for i, m := range ms {
		want := units.Watts(100)
		if m.Role == RoleSimulation {
			want = 120
		}
		if caps[i] != want {
			t.Errorf("cap[%d] = %v, want %v", i, caps[i], want)
		}
	}
}

func TestExpandPartitionCapsDeadGetZero(t *testing.T) {
	ms := measures(1, 1, 100, 100, 110)
	ms[2].Health = Dead
	caps := expandPartitionCaps(ms, 120, 100)
	if caps[2] != 0 {
		t.Errorf("dead node cap = %v, want 0", caps[2])
	}
	if caps[0] != 120 || caps[4] != 100 {
		t.Errorf("live caps wrong: %v", caps)
	}
}

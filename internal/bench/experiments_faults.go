// The faults experiment: how the four policies absorb node faults.
// This is not a paper artifact — it exercises the dynamic-membership
// extension (internal/cluster + internal/fault) on the paper's
// LAMMPS+MSD workload: a mid-run node kill shifts the dead node's work
// onto its partition's survivors, and a 2x slow-node excursion
// temporarily degrades one node. Policies that re-measure (SeeSAw)
// follow the shifted energy profile and re-converge the partitions'
// sync times; the static division cannot.
package bench

import (
	"context"
	"fmt"
	"io"

	"seesaw/internal/cosim"
	"seesaw/internal/fault"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "faults",
		Title: "Faults: policy resilience to a mid-run node kill and a 2x slow-node excursion (8 nodes, LAMMPS+MSD)",
		Run:   runFaults,
	})
}

// faultScenario is one fault plan applied to every policy.
type faultScenario struct {
	label string
	plan  string // empty = fault-free reference
	// postFrom is the first sync of the post-fault steady state.
	postFrom int
}

// faultScenarios builds the kill and slow-excursion scenarios, placed
// relative to the run length so shrunken test runs keep the shape:
// fault at one third, steady state measured over the last third. The
// kill lands in the analysis partition — LAMMPS+MSD is
// analysis-dominant at the even split, so losing an analysis node
// widens the imbalance the policies must close.
func faultScenarios(spec workload.Spec, steps int) []faultScenario {
	killNode := spec.SimNodes + spec.AnaNodes - 1
	killSync := max(steps/3, 2)
	slowWin := max(steps/3, 2)
	postFrom := min(2*steps/3+1, steps)
	return []faultScenario{
		{label: "none", postFrom: postFrom},
		{label: fmt.Sprintf("kill ana node %d @ sync %d", killNode, killSync),
			plan: fmt.Sprintf("kill:%d@%d", killNode, killSync), postFrom: postFrom},
		{label: fmt.Sprintf("slow sim node 0 2x @ sync %d-%d", killSync, killSync+slowWin-1),
			plan: fmt.Sprintf("slow:0@%dx2+%d", killSync, slowWin), postFrom: postFrom},
	}
}

func runFaults(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	spec := specAt(8, defaultDim, 1, steps, workload.Tasks("msd"))
	scenarios := faultScenarios(spec, steps)
	policies := append([]string{"static"}, PolicyNames()...)

	e := newEnum("faults")
	var getters [][]func() *cosim.Result // [scenario][policy]
	for si, sc := range scenarios {
		var plan *fault.Plan
		if sc.plan != "" {
			p, err := fault.Parse(sc.plan)
			if err != nil {
				return fmt.Errorf("bench: faults scenario %q: %w", sc.label, err)
			}
			plan = p
		}
		var row []func() *cosim.Result
		for _, p := range policies {
			key := fmt.Sprintf("s%d/%s", si, p)
			row = append(row, addCell(e, key, o.BaseSeed+61, func(ctx context.Context) (*cosim.Result, error) {
				return runCell(ctx, cell{spec: spec, policy: p, window: 1, faults: plan,
					jobSeed: o.BaseSeed + 61, runSeed: o.BaseSeed + 62, telemetry: o.Telemetry})
			}))
		}
		getters = append(getters, row)
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	for si, sc := range scenarios {
		tbl := trace.NewTable(fmt.Sprintf("Faults (%s)", sc.label),
			"policy", "total (s)", "vs fault-free", "post-fault slack", "alive")
		for pi, p := range policies {
			res := getters[si][pi]()
			clean := getters[0][pi]()
			tbl.AddRow(p,
				fmt.Sprintf("%.1f", float64(res.TotalTime)),
				fmt.Sprintf("%+.2f%%", -improvementPct(clean.TotalTime, res.TotalTime)),
				fmt.Sprintf("%.3f", res.SyncLog.MeanSlackFrom(sc.postFrom)),
				fmt.Sprintf("%d+%d", res.AliveSim, res.AliveAna))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "Post-fault slack is the mean normalized slack from sync %d on; a re-converging policy drives it back toward its fault-free value while the static division stays imbalanced.\n\n",
		scenarios[0].postFrom)
	return err
}

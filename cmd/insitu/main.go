// Command insitu runs one miniature in-situ job — real mini-MD feeding
// real analyses over the simulated cluster — under a chosen power policy
// and prints the run summary and per-synchronization log.
//
// Usage:
//
//	insitu [-policy seesaw] [-analyses msd,rdf] [-sim 2] [-ana 2]
//	       [-steps 100] [-j 1] [-w 1] [-cap 110] [-seed 1]
//	       [-topology space-shared|time-shared|in-transit]
//	       [-faults PLAN] [-classes MAP] [-no-ana-memo] [-csv]
//	       [-cpuprofile FILE] [-memprofile FILE]
//
// -topology picks the placement: space-shared (the default: separate
// partitions over the interconnect), time-shared (each analysis rank
// co-resident with a simulation rank as two half-node power domains;
// needs -sim == -ana, and -cap still describes the full physical node)
// or in-transit (frames pay a modeled staging hop on the producers'
// clock).
//
// -faults injects a deterministic fault plan (internal/fault grammar,
// e.g. "slow:1@5x2+20" or "kill:3@20"). A slow excursion degrades the
// node in place; a kill takes the whole job down through the runtime's
// poisoning path, as losing a rank does under real MPI.
//
// -classes assigns device classes to node id ranges (internal/machine
// grammar, e.g. "0-1:cpu,2-3:gpu"; presets cpu, gpu, lowpower). Unlisted
// nodes keep the default model; omit the flag for the classic
// homogeneous cluster.
//
// -cpuprofile and -memprofile write pprof profiles covering the job run,
// the intended workflow for hunting substrate hotspots at scale, e.g.
//
//	insitu -sim 2048 -ana 2048 -steps 4 -cpuprofile cpu.out
//	go tool pprof cpu.out
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/insitu"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/trace"
	"seesaw/internal/units"
)

func main() {
	policyName := flag.String("policy", "seesaw", "power policy: "+strings.Join(policy.Names(), ", "))
	analyses := flag.String("analyses", "msd", "comma-separated analyses (rdf,vacf,msd,msd1d,msd2d)")
	simRanks := flag.Int("sim", 2, "simulation ranks (one per node)")
	anaRanks := flag.Int("ana", 2, "analysis ranks (one per node)")
	steps := flag.Int("steps", 100, "Verlet steps")
	j := flag.Int("j", 1, "synchronize every j-th step")
	w := flag.Int("w", 1, "reallocate power every w synchronizations")
	capPer := flag.Float64("cap", 110, "per-node power budget (W)")
	seed := flag.Uint64("seed", 1, "job seed")
	faults := flag.String("faults", "", "fault plan, e.g. 'slow:1@5x2+20' or 'kill:3@20' (see internal/fault)")
	classes := flag.String("classes", "", "device-class map, e.g. '0-1:cpu,2-3:gpu' (presets: "+strings.Join(machine.PresetNames(), ", ")+")")
	topology := flag.String("topology", "", "placement: space-shared (default), time-shared (sim and analysis co-resident, needs -sim == -ana) or in-transit (frames pay a staging hop)")
	noAnaMemo := flag.Bool("no-ana-memo", false, "disable analysis-side memoization (run every rank's kernels in place; results are byte-identical either way)")
	csv := flag.Bool("csv", false, "emit the per-synchronization log as CSV")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the job to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the job to this file")
	flag.Parse()

	plan, err := fault.Parse(*faults)
	if err != nil {
		log.Fatal(err)
	}
	classMap, err := machine.ParseClassMap(*classes)
	if err != nil {
		log.Fatal(err)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Fatal(err)
			}
		}()
	}

	nodes := *simRanks + *anaRanks
	cons := core.Constraints{
		Budget: units.Watts(*capPer) * units.Watts(nodes),
		MinCap: 98,
		MaxCap: 215,
	}
	pol, err := policy.New(*policyName, cons, *w)
	if err != nil {
		log.Fatal(err)
	}

	res, err := insitu.Run(context.Background(), insitu.Config{
		SimRanks:    *simRanks,
		AnaRanks:    *anaRanks,
		Steps:       *steps,
		SyncEvery:   *j,
		Analyses:    strings.Split(*analyses, ","),
		Policy:      pol,
		Constraints: cons,
		Seed:        *seed,
		Faults:      plan,
		Classes:     classMap,
		NoAnaMemo:   *noAnaMemo,
		Topology:    *topology,
	})
	if err != nil {
		var ke *fault.KilledError
		if errors.As(err, &ke) {
			log.Fatalf("job aborted: %v (a dead rank takes the whole MPI job down; use slow: faults for survivable degradation)", ke)
		}
		log.Fatal(err)
	}

	if *csv {
		if err := res.SyncLog.WriteCSV(os.Stdout); err != nil {
			log.Fatal(err)
		}
		return
	}

	fmt.Printf("in-situ job: %d sim + %d analysis nodes, %d steps, j=%d, %s policy, %v budget\n\n",
		*simRanks, *anaRanks, *steps, *j, *policyName, cons.Budget)

	tbl := trace.NewTable("Summary", "metric", "value")
	tbl.AddRow("main loop time", res.MainLoopTime)
	tbl.AddRow("synchronizations", res.Syncs)
	tbl.AddRow("total energy (kJ)", float64(res.TotalEnergy)/1000)
	tbl.AddRow("mean slack from step 10", fmt.Sprintf("%.2f%%", res.SyncLog.MeanSlackFrom(10)*100))
	tbl.AddRow("allocator overhead (s)", res.OverheadTotal)
	tbl.AddRow("MD total energy (reduced units)", fmt.Sprintf("%.2f", res.FinalSimEnergy))
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	last := res.SyncLog.Records[res.SyncLog.Len()-1]
	fmt.Printf("final per-node caps: simulation %v, analysis %v\n", last.SimCap, last.AnaCap)
	for name, out := range res.AnalysisResults {
		fmt.Printf("analysis %-6s produced %d output values\n", name, len(out))
	}
}

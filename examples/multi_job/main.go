// System-wide power management (the paper's scheduler-integration
// future work, Section VIII): two in-situ jobs — one compute-hungry, one
// light — share a 128-node machine budget. The energy-aware system level
// applies SeeSAw's energy-proportional rule one level up, re-dividing
// the machine budget between jobs while SeeSAw balances simulation and
// analysis within each.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"seesaw/internal/machine"
	"seesaw/internal/sched"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
)

func run(systemAware bool) *sched.Result {
	res, err := sched.Run(context.Background(), sched.Config{
		Jobs: []sched.JobSpec{
			{Name: "md-large (dim=36, vacf)", PolicyName: "seesaw", Window: 1,
				Workload: workload.Spec{
					SimNodes: 32, AnaNodes: 32, Dim: 36, J: 1, Steps: 400,
					Analyses: workload.Tasks("vacf"),
				}},
			{Name: "md-small (dim=16, msd1d)", PolicyName: "seesaw", Window: 1,
				Workload: workload.Spec{
					SimNodes: 32, AnaNodes: 32, Dim: 16, J: 1, Steps: 400,
					Analyses: workload.Tasks("msd1d"),
				}},
		},
		MachineBudget: 110 * 128,
		MinCap:        98,
		MaxCap:        215,
		Epochs:        8,
		SystemAware:   systemAware,
		Seed:          5,
		Noise:         machine.DefaultNoise(),
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	fmt.Println("two in-situ jobs sharing a 14.08 kW budget on 128 nodes")
	fmt.Println()

	static := run(false)
	aware := run(true)

	tbl := trace.NewTable("Node-proportional vs energy-aware machine-level division",
		"job", "static (s)", "energy-aware (s)", "improvement", "final budget (kW)")
	for i := range static.Jobs {
		s, a := static.Jobs[i], aware.Jobs[i]
		tbl.AddRow(s.Name,
			fmt.Sprintf("%.0f", float64(s.Time)),
			fmt.Sprintf("%.0f", float64(a.Time)),
			fmt.Sprintf("%+.2f%%", (float64(s.Time)-float64(a.Time))/float64(s.Time)*100),
			fmt.Sprintf("%.2f", float64(a.Budget)/1000))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	impr := (float64(static.Makespan) - float64(aware.Makespan)) / float64(static.Makespan) * 100
	fmt.Printf("\nmachine makespan: %.0f s -> %.0f s (%+.2f%%)\n",
		float64(static.Makespan), float64(aware.Makespan), impr)
	fmt.Println("the hungry job receives the light job's unusable Watts — the same")
	fmt.Println("energy-proportional reasoning SeeSAw applies within a job, one level up.")
}

package machine

import (
	"fmt"
	"sort"

	"seesaw/internal/rapl"
)

// Class bundles everything that distinguishes one device kind from
// another in a heterogeneous cluster: the performance model (idle
// floor, zero-work power, speed factor, power envelope), the RAPL
// domain configuration (min cap, TDP, windows) and an optional noise
// profile. A homogeneous cluster is the degenerate one-class case —
// cluster.Config's Machine/Rapl/Noise triple is exactly the default
// class.
type Class struct {
	// Name identifies the class in class maps and traces.
	Name string
	// Model is the class's performance-model constants.
	Model Model
	// Rapl is the class's power-domain configuration; its MinCap/TDP
	// pair is the per-node clamp range allocators must respect.
	Rapl rapl.Config
	// Noise optionally overrides the run-level noise profile for nodes
	// of this class. The zero NoiseModel defers to the run-level
	// profile; and when the run-level profile itself is zero
	// (deterministic run) class noise is ignored entirely, so
	// determinism stays a whole-run property.
	Noise NoiseModel
}

// DefaultClass is the reference KNL-like node: DefaultModel on the
// paper's Theta RAPL constants. It is the degenerate one-class case —
// a cluster built from it alone is byte-identical to the homogeneous
// path.
func DefaultClass() Class {
	return Class{Name: "cpu", Model: DefaultModel(), Rapl: rapl.Theta()}
}

// DefaultNode builds a node of the default class — the paper's
// reference node, deduplicating the rapl.Theta()/DefaultModel() triple
// that tests and experiments would otherwise each spell out.
func DefaultNode(id int, noise NoiseModel, seed uint64) *Node {
	return DefaultClass().NewNode(id, noise, seed)
}

// DefaultNodeWithSeeds is DefaultNode with split job/run seeds.
func DefaultNodeWithSeeds(id int, noise NoiseModel, jobSeed, runSeed uint64) *Node {
	return DefaultClass().NewNodeWithSeeds(id, noise, jobSeed, runSeed)
}

// presetClasses builds the built-in class registry. gpu and lowpower
// are calibrated relative to the KNL reference: the GPU node is ~2.2x
// faster at saturation but needs a much larger power envelope to get
// there (steep power-response curve — starved at a CPU-sized cap,
// excellent marginal speed per Watt above it), while the low-power
// node is slower, saturates early, and frees budget for others.
func presetClasses() map[string]Class {
	cpu := DefaultClass()
	gpu := Class{
		Name: "gpu",
		Model: Model{
			ZeroWork:          80,
			IdlePower:         130,
			MinPerf:           0.12,
			CapNoiseBoost:     3.0,
			DualCapNoiseBoost: 2.0,
			SpeedFactor:       2.2,
			PowerScale:        1.9,
		},
		Rapl: rapl.Config{
			MinCap:           100,
			TDP:              320,
			LongWindow:       cpu.Rapl.LongWindow,
			ShortWindow:      cpu.Rapl.ShortWindow,
			ActuationLatency: cpu.Rapl.ActuationLatency,
			DualCapMargin:    cpu.Rapl.DualCapMargin,
		},
		// GPUs regulate power more coarsely: larger reading ripple and
		// per-run spread (applies only when the run itself is noisy).
		Noise: NoiseModel{
			SkewSigma:     0.008,
			PowerEffSigma: 0.015,
			JitterSigma:   0.0025,
			PowerSigma:    0.05,
			RunSigma:      0.004,
			DualRunSigma:  0.015,
		},
	}
	lowpower := Class{
		Name: "lowpower",
		Model: Model{
			ZeroWork:          25,
			IdlePower:         35,
			MinPerf:           0.12,
			CapNoiseBoost:     3.0,
			DualCapNoiseBoost: 2.0,
			SpeedFactor:       0.6,
			PowerScale:        0.55,
		},
		Rapl: rapl.Config{
			MinCap:           40,
			TDP:              90,
			LongWindow:       cpu.Rapl.LongWindow,
			ShortWindow:      cpu.Rapl.ShortWindow,
			ActuationLatency: cpu.Rapl.ActuationLatency,
			DualCapMargin:    cpu.Rapl.DualCapMargin,
		},
	}
	return map[string]Class{cpu.Name: cpu, gpu.Name: gpu, lowpower.Name: lowpower}
}

// PresetClass returns the built-in class with the given name.
func PresetClass(name string) (Class, bool) {
	c, ok := presetClasses()[name]
	return c, ok
}

// PresetNames lists the built-in class names, sorted.
func PresetNames() []string {
	ps := presetClasses()
	names := make([]string, 0, len(ps))
	for name := range ps {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewNode builds a node of this class with a single seed (see
// NewNodeWithSeeds for the two-seed form).
func (c Class) NewNode(id int, noise NoiseModel, seed uint64) *Node {
	return c.NewNodeWithSeeds(id, noise, seed, seed)
}

// NewNodeWithSeeds builds a node of this class. noise is the run-level
// profile: the zero NoiseModel keeps the run deterministic regardless
// of class profiles; otherwise a non-zero class profile overrides it.
func (c Class) NewNodeWithSeeds(id int, noise NoiseModel, jobSeed, runSeed uint64) *Node {
	if noise != (NoiseModel{}) && c.Noise != (NoiseModel{}) {
		noise = c.Noise
	}
	return NewNodeWithSeeds(id, c.Rapl, c.Model, noise, jobSeed, runSeed)
}

// weightProbe is the reference compute phase Weight measures against:
// the paper's LAMMPS-like compute profile (saturates near 140 W on the
// reference node; Section VII-D).
func weightProbe() Phase {
	return Phase{Name: "weight-probe", Nominal: 1, Demand: 135, Saturation: 140, Sensitivity: 0.95}
}

// refSpeed is the class's throughput on the reference compute phase at
// its own TDP (unconstrained), measured through the same
// PredictDuration path the simulator executes.
func (c Class) refSpeed() float64 {
	probe := NewNode(0, c.Rapl, c.Model, NoiseModel{}, 1)
	d := probe.PredictDuration(weightProbe(), c.Rapl.TDP)
	if d <= 0 {
		return 0
	}
	return 1 / float64(d)
}

// Weight is the class's capability weight — its unconstrained speed on
// the reference compute phase relative to the default (KNL) class, so
// cpu ≡ 1. Heterogeneity-aware allocators use it as the marginal
// speed-per-Watt signal when splitting a partition's budget across
// mixed nodes.
func (c Class) Weight() float64 {
	ref := DefaultClass().refSpeed()
	if ref == 0 {
		return 1
	}
	w := c.refSpeed() / ref
	if w <= 0 {
		return 1
	}
	return w
}

// Validate reports a descriptive error if the class cannot build a
// working node (rapl domain invalid, model floors inconsistent with
// the adapted reference phase).
func (c Class) Validate() error {
	if _, err := rapl.NewDomain(c.Rapl); err != nil {
		return fmt.Errorf("machine: class %q: %w", c.Name, err)
	}
	if err := c.Model.adapt(weightProbe()).Validate(c.Model); err != nil {
		return fmt.Errorf("machine: class %q: %w", c.Name, err)
	}
	if sf := c.Model.SpeedFactor; sf < 0 {
		return fmt.Errorf("machine: class %q has negative speed factor %g", c.Name, sf)
	}
	if ps := c.Model.PowerScale; ps < 0 {
		return fmt.Errorf("machine: class %q has negative power scale %g", c.Name, ps)
	}
	return nil
}

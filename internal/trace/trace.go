// Package trace records time-series and per-synchronization data from
// simulated in-situ jobs, and renders them as CSV or aligned text tables.
// Every figure in the paper is regenerated from these records.
package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"seesaw/internal/units"
)

// Sample is one point of a power/time series.
type Sample struct {
	// Time is the virtual timestamp of the sample.
	Time units.Seconds
	// Value is the sampled quantity (power in Watts for power traces).
	Value float64
}

// Series is a named, time-ordered sequence of samples.
type Series struct {
	Name    string
	Samples []Sample
}

// Add appends a sample.
func (s *Series) Add(t units.Seconds, v float64) {
	s.Samples = append(s.Samples, Sample{Time: t, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Samples) }

// Values returns the sample values in order.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		vs[i] = smp.Value
	}
	return vs
}

// Recorder aggregates named series, e.g. one power trace per node or per
// partition.
type Recorder struct {
	series map[string]*Series
	order  []string
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns the named series, creating it on first use. The zero
// Recorder is usable; the map is initialized lazily.
func (r *Recorder) Series(name string) *Series {
	if s, ok := r.series[name]; ok {
		return s
	}
	if r.series == nil {
		r.series = make(map[string]*Series)
	}
	s := &Series{Name: name}
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// csvFloat formats v for a CSV cell with the given precision.
// Non-finite values render as the canonical tokens NaN, +Inf and -Inf
// (all accepted by strconv.ParseFloat) so a defective sample can never
// produce an unparsable row.
func csvFloat(v float64, prec int) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'f', prec, 64)
}

// WriteCSV emits all series as long-format CSV: series,time,value.
// The header is always written; series without samples contribute no
// rows (long format has no way to represent them), so an empty recorder
// yields a header-only document.
func (r *Recorder) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,time_s,value"); err != nil {
		return err
	}
	for _, name := range r.order {
		for _, smp := range r.series[name].Samples {
			if _, err := fmt.Fprintf(w, "%s,%s,%s\n",
				name, csvFloat(float64(smp.Time), 6), csvFloat(smp.Value, 6)); err != nil {
				return err
			}
		}
	}
	return nil
}

// SyncRecord captures the observables of one simulation/analysis
// synchronization interval — the unit at which every policy in the paper
// acts.
type SyncRecord struct {
	// Step is the synchronization index (1-based; step 0 is outside the
	// main loop and ignored, as in the paper's Section VII-B1).
	Step int
	// SimTime and AnaTime are the interval durations of the slowest
	// simulation and analysis ranks.
	SimTime, AnaTime units.Seconds
	// SimPower and AnaPower are measured average powers per node of
	// each partition over the interval.
	SimPower, AnaPower units.Watts
	// SimCap and AnaCap are the per-node power caps in force during the
	// interval.
	SimCap, AnaCap units.Watts
	// Overhead is the time spent inside the power-allocation call at
	// the end of the interval.
	Overhead units.Seconds
}

// IntervalTime returns the wall time of the interval: the slower of the
// two partitions.
func (s SyncRecord) IntervalTime() units.Seconds {
	if s.SimTime > s.AnaTime {
		return s.SimTime
	}
	return s.AnaTime
}

// Slack returns the normalized slack time of the interval — the paper's
// black curves in Figures 4 and 5: |T_S - T_A| divided by the interval
// time. Returns 0 for an empty interval.
func (s SyncRecord) Slack() float64 {
	total := float64(s.IntervalTime())
	if total <= 0 {
		return 0
	}
	d := float64(s.SimTime - s.AnaTime)
	if d < 0 {
		d = -d
	}
	return d / total
}

// SyncLog is the ordered list of synchronization records of one run.
type SyncLog struct {
	Records []SyncRecord
}

// Add appends a record.
func (l *SyncLog) Add(r SyncRecord) { l.Records = append(l.Records, r) }

// Len returns the number of records.
func (l *SyncLog) Len() int { return len(l.Records) }

// TotalTime sums the interval times (the job's main-loop runtime).
func (l *SyncLog) TotalTime() units.Seconds {
	var t units.Seconds
	for _, r := range l.Records {
		t += r.IntervalTime()
	}
	return t
}

// MeanSlackFrom returns the mean normalized slack over records with
// Step >= from; the paper reports slack averages "calculated from the
// 10th step" to skip setup transients.
func (l *SyncLog) MeanSlackFrom(from int) float64 {
	var sum float64
	var n int
	for _, r := range l.Records {
		if r.Step >= from {
			sum += r.Slack()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteCSV emits the log as CSV with one row per synchronization. An
// empty log yields a header-only document; non-finite measurements
// render as NaN/+Inf/-Inf tokens rather than breaking the row format.
func (l *SyncLog) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,sim_time_s,ana_time_s,sim_power_w,ana_power_w,sim_cap_w,ana_cap_w,slack,overhead_s"); err != nil {
		return err
	}
	for _, r := range l.Records {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s,%s,%s,%s,%s,%s\n",
			r.Step, csvFloat(float64(r.SimTime), 6), csvFloat(float64(r.AnaTime), 6),
			csvFloat(float64(r.SimPower), 3), csvFloat(float64(r.AnaPower), 3),
			csvFloat(float64(r.SimCap), 3), csvFloat(float64(r.AnaCap), 3),
			csvFloat(r.Slack(), 5), csvFloat(float64(r.Overhead), 6)); err != nil {
			return err
		}
	}
	return nil
}

// Table renders aligned text tables for experiment output, mimicking the
// row/column structure of the paper's tables.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case units.Seconds:
			row[i] = fmt.Sprintf("%.3f", float64(v))
		case units.Watts:
			row[i] = fmt.Sprintf("%.1f", float64(v))
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Headers)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// SortSeriesNames returns series names sorted lexicographically; handy
// for deterministic test output when iterating a recorder built from
// concurrent writers.
func SortSeriesNames(r *Recorder) []string {
	names := r.Names()
	sort.Strings(names)
	return names
}

// RenderMarkdown writes the table as a GitHub-flavored markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Headers, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = "---"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(seps, "|")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(row, " | ")); err != nil {
			return err
		}
	}
	return nil
}

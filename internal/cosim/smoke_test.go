package cosim

import (
	"context"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// policyFor builds a fresh policy by name for the experiment cells,
// through the registry (the one copy of the name → constructor map).
func policyFor(name string, cons core.Constraints, w int) core.Policy {
	p, err := policy.New(name, cons, w)
	if err != nil {
		panic(err)
	}
	return p
}

func TestSmokePoliciesAt128Nodes(t *testing.T) {
	spec := workload.Spec{
		SimNodes: 64, AnaNodes: 64,
		Dim: 16, J: 1, Steps: 100,
		Analyses: workload.Tasks("msd"),
	}
	cons := core.Constraints{Budget: units.Watts(110 * 128), MinCap: 98, MaxCap: 215}
	for _, p := range []string{"static", "seesaw", "power-aware", "time-aware"} {
		res, err := Run(context.Background(), Config{
			Spec:        spec,
			Policy:      policyFor(p, cons, 1),
			Constraints: cons,
			CapMode:     CapLong,
			Seed:        42,
			Noise:       machine.DefaultNoise(),
		})
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		n := len(res.SyncLog.Records)
		last := res.SyncLog.Records[n-1]
		t.Logf("%-12s total=%8.1f slack=%.4f simCap=%.1f anaCap=%.1f simP=%.1f anaP=%.1f",
			p, float64(res.TotalTime), res.SyncLog.MeanSlackFrom(10),
			float64(last.SimCap), float64(last.AnaCap), float64(last.SimPower), float64(last.AnaPower))
	}
}

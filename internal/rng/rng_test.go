package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with same seed diverged at draw %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("different seeds produced %d identical draws", same)
	}
}

func TestDeriveIndependence(t *testing.T) {
	a := Derive(7, "alpha")
	b := Derive(7, "beta")
	if a.Uint64() == b.Uint64() {
		t.Error("streams derived with different labels should differ")
	}
	c := Derive(7, "alpha")
	a2 := Derive(7, "alpha")
	if c.Uint64() != a2.Uint64() {
		t.Error("same (seed, label) must derive identical streams")
	}
}

func TestDeriveIndexed(t *testing.T) {
	s0 := DeriveIndexed(9, "node", 0)
	s1 := DeriveIndexed(9, "node", 1)
	if s0.Uint64() == s1.Uint64() {
		t.Error("indexed streams should differ by index")
	}
	r0 := DeriveIndexed(9, "node", 0)
	r0b := DeriveIndexed(9, "node", 0)
	if r0.Uint64() != r0b.Uint64() {
		t.Error("indexed derivation must be deterministic")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		f := s.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v outside [0,1)", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	s := New(4)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += s.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntn(t *testing.T) {
	s := New(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := s.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("Intn(10) over 1000 draws covered %d values, want 10", len(seen))
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestNormMoments(t *testing.T) {
	s := New(6)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := s.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestGauss(t *testing.T) {
	s := New(7)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Gauss(10, 2)
	}
	if mean := sum / n; math.Abs(mean-10) > 0.05 {
		t.Errorf("Gauss(10,2) mean = %v", mean)
	}
}

func TestLogNormFactor(t *testing.T) {
	if f := New(8).LogNormFactor(0); f != 1 {
		t.Errorf("LogNormFactor(0) = %v, want exactly 1", f)
	}
	s := New(9)
	for i := 0; i < 10000; i++ {
		if f := s.LogNormFactor(0.05); f <= 0 {
			t.Fatalf("LogNormFactor produced non-positive %v", f)
		}
	}
}

func TestJitterFloor(t *testing.T) {
	s := New(10)
	for i := 0; i < 100000; i++ {
		if f := s.Jitter(0.5); f < 0.05 {
			t.Fatalf("Jitter below floor: %v", f)
		}
	}
}

func TestJitterZeroSigma(t *testing.T) {
	f := func(seed uint64) bool {
		return New(seed).Jitter(0) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package rng provides deterministic pseudo-random number streams for the
// simulation. Every source of stochasticity (node speed skew, phase
// jitter, OS noise) draws from its own named stream so experiments are
// reproducible bit-for-bit from a single job seed, and adding a new noise
// source does not perturb existing streams.
package rng

import (
	"math"
)

// Stream is a deterministic random number generator based on splitmix64.
// The zero value is a valid stream seeded with 0.
type Stream struct {
	state uint64
	// cached spare Gaussian variate for Box-Muller.
	hasSpare bool
	spare    float64
}

// New returns a stream seeded with seed.
func New(seed uint64) *Stream { return &Stream{state: seed} }

// Derive returns a new independent stream deterministically derived from
// the parent seed and a label. Identical (seed, label) pairs always yield
// identical streams.
func Derive(seed uint64, label string) *Stream {
	h := seed ^ 0x9e3779b97f4a7c15
	for _, c := range []byte(label) {
		h ^= uint64(c)
		h *= 0x100000001b3
	}
	return New(mix(h))
}

// DeriveIndexed derives a stream from a parent seed, label and an index
// (e.g. per-node streams).
func DeriveIndexed(seed uint64, label string, idx int) *Stream {
	s := Derive(seed, label)
	return New(mix(s.state ^ (uint64(idx)+1)*0xbf58476d1ce4e5b9))
}

func mix(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 pseudo-random bits.
func (s *Stream) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float in [0, 1).
func (s *Stream) Float64() float64 {
	return float64(s.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (s *Stream) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(s.Uint64() % uint64(n))
}

// Norm returns a standard normal variate (mean 0, stddev 1) using
// Box-Muller.
func (s *Stream) Norm() float64 {
	if s.hasSpare {
		s.hasSpare = false
		return s.spare
	}
	var u, v float64
	for {
		u = s.Float64()
		if u > 1e-300 {
			break
		}
	}
	v = s.Float64()
	r := math.Sqrt(-2 * math.Log(u))
	// Sincos shares one argument reduction between the pair and is
	// bit-identical to separate Sin/Cos calls on this domain, so the
	// stream's values are unchanged (the stored goldens pin them).
	sin, cos := math.Sincos(2 * math.Pi * v)
	s.spare = r * sin
	s.hasSpare = true
	return r * cos
}

// FillNorm fills dst with consecutive standard-normal draws from s, in
// the order repeated Norm calls would produce them. It is the recording
// primitive for memoized noise traces.
func (s *Stream) FillNorm(dst []float64) {
	for i := range dst {
		dst[i] = s.Norm()
	}
}

// Gauss returns a normal variate with the given mean and stddev.
func (s *Stream) Gauss(mean, stddev float64) float64 {
	return mean + stddev*s.Norm()
}

// LogNormFactor returns a multiplicative noise factor with median 1 whose
// log has the given stddev (sigma). sigma=0 returns exactly 1.
func (s *Stream) LogNormFactor(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return math.Exp(sigma * s.Norm())
}

// Jitter returns 1 + eps where eps is normal with stddev rel, truncated
// to keep the factor positive (floored at 0.05).
func (s *Stream) Jitter(rel float64) float64 {
	return JitterFrom(s.Norm(), rel)
}

// JitterFrom is Jitter computed from a pre-drawn standard normal: the
// noise-trace replay path records the Norm draws once per job and feeds
// them back through this function, so a replayed jitter factor is the
// same float a live stream would have produced for the same draw.
func JitterFrom(norm, rel float64) float64 {
	f := 1 + rel*norm
	if f < 0.05 {
		f = 0.05
	}
	return f
}

package machine

import (
	"math"
	"testing"
	"testing/quick"

	"seesaw/internal/units"
)

// quietNode returns a node with no noise for deterministic assertions.
func quietNode(t *testing.T, id int) *Node {
	t.Helper()
	return DefaultNode(id, NoiseModel{}, 1)
}

// computePhase is a strongly power-sensitive phase.
func computePhase(nominal units.Seconds) Phase {
	return Phase{Name: "compute", Nominal: nominal, Demand: 130, Saturation: 140, Sensitivity: 0.95}
}

// commPhase is power-insensitive.
func commPhase(nominal units.Seconds) Phase {
	return Phase{Name: "comm", Nominal: nominal, Demand: 105, Saturation: 110, Sensitivity: 0.10}
}

func TestRunUncapped(t *testing.T) {
	n := quietNode(t, 0)
	exec := n.Run(computePhase(2), NoiseModel{})
	if !units.NearlyEqual(float64(exec.Duration), 2, 1e-9) {
		t.Errorf("uncapped duration = %v, want nominal 2", exec.Duration)
	}
	if exec.Power != 130 {
		t.Errorf("uncapped power = %v, want demand 130", exec.Power)
	}
	if exec.Throttled {
		t.Error("uncapped run should not be throttled")
	}
}

func TestRunThrottled(t *testing.T) {
	n := quietNode(t, 0)
	n.RAPL().SetLongCap(110)
	n.Idle(0.02) // actuate the cap
	exec := n.Run(computePhase(2), NoiseModel{})
	if !exec.Throttled {
		t.Error("capped compute phase should be throttled")
	}
	if exec.Power != 110 {
		t.Errorf("throttled power = %v, want 110", exec.Power)
	}
	if exec.Duration <= 2 {
		t.Errorf("throttled duration %v should exceed nominal", exec.Duration)
	}
}

func TestDurationMonotoneInPower(t *testing.T) {
	// More allowed power never makes a phase slower.
	n := quietNode(t, 0)
	ph := computePhase(1)
	prev := units.Seconds(1e18)
	for cap := units.Watts(98); cap <= 215; cap += 5 {
		d := n.PredictDuration(ph, cap)
		if d > prev+1e-12 {
			t.Fatalf("duration increased with power at %v: %v > %v", cap, d, prev)
		}
		prev = d
	}
}

func TestSaturationFlat(t *testing.T) {
	n := quietNode(t, 0)
	ph := computePhase(1)
	d140 := n.PredictDuration(ph, 140)
	d215 := n.PredictDuration(ph, 215)
	if !units.NearlyEqual(float64(d140), float64(d215), 1e-12) {
		t.Errorf("beyond saturation durations differ: %v vs %v", d140, d215)
	}
}

func TestCommPhaseInsensitive(t *testing.T) {
	n := quietNode(t, 0)
	ph := commPhase(1)
	d98 := n.PredictDuration(ph, 98)
	d215 := n.PredictDuration(ph, 215)
	// At most the 10% sensitive share can change.
	if ratio := float64(d98) / float64(d215); ratio > 1.12 {
		t.Errorf("comm phase slowed %vx under deep cap; should be nearly flat", ratio)
	}
}

func TestIdle(t *testing.T) {
	n := quietNode(t, 0)
	exec := n.Idle(3)
	if exec.Duration != 3 {
		t.Errorf("idle duration = %v", exec.Duration)
	}
	if exec.Power != DefaultModel().IdlePower {
		t.Errorf("idle power = %v, want %v", exec.Power, DefaultModel().IdlePower)
	}
	if n.IdleTime() != 3 {
		t.Errorf("IdleTime = %v", n.IdleTime())
	}
}

func TestIdleUnderDeepCap(t *testing.T) {
	n := quietNode(t, 0)
	n.RAPL().SetLongCap(98)
	n.Idle(0.02)
	exec := n.Idle(1)
	if exec.Power > 98 {
		t.Errorf("idle power %v exceeds the 98 W cap", exec.Power)
	}
}

func TestIdlePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative idle should panic")
		}
	}()
	quietNode(t, 0).Idle(-1)
}

func TestZeroNominalPhase(t *testing.T) {
	n := quietNode(t, 0)
	exec := n.Run(computePhase(0), NoiseModel{})
	if exec.Duration != 0 || exec.Power != 0 {
		t.Errorf("zero-nominal phase executed: %+v", exec)
	}
}

func TestPhaseValidation(t *testing.T) {
	m := DefaultModel()
	bad := []Phase{
		{Name: "neg", Nominal: -1, Demand: 100, Saturation: 120, Sensitivity: 0.5},
		{Name: "nodemand", Nominal: 1, Demand: 0, Saturation: 120, Sensitivity: 0.5},
		{Name: "lowsat", Nominal: 1, Demand: 100, Saturation: 50, Sensitivity: 0.5},
		{Name: "badsens", Nominal: 1, Demand: 100, Saturation: 120, Sensitivity: 1.5},
	}
	for _, ph := range bad {
		if err := ph.Validate(m); err == nil {
			t.Errorf("phase %q should fail validation", ph.Name)
		}
	}
	good := computePhase(1)
	if err := good.Validate(m); err != nil {
		t.Errorf("valid phase rejected: %v", err)
	}
}

func TestRunPanicsOnInvalidPhase(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Run with invalid phase should panic")
		}
	}()
	quietNode(t, 0).Run(Phase{Name: "bad", Nominal: 1, Demand: -1, Saturation: 120}, NoiseModel{})
}

func TestNoiseDeterminism(t *testing.T) {
	noise := DefaultNoise()
	mk := func() []units.Seconds {
		n := DefaultNodeWithSeeds(3, noise, 11, 13)
		n.RAPL().SetLongCap(110)
		n.Idle(0.02)
		var ds []units.Seconds
		for i := 0; i < 20; i++ {
			ds = append(ds, n.Run(computePhase(1), noise).Duration)
		}
		return ds
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seeds diverged at phase %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestJobVsRunSeeds(t *testing.T) {
	noise := DefaultNoise()
	// Same job seed: same skew; different run seed: different jitter.
	a := DefaultNodeWithSeeds(0, noise, 5, 100)
	b := DefaultNodeWithSeeds(0, noise, 5, 200)
	if a.Skew() != b.Skew() {
		t.Error("same job seed should give identical skew")
	}
	c := DefaultNodeWithSeeds(0, noise, 6, 100)
	if a.Skew() == c.Skew() {
		t.Error("different job seeds should give different skew")
	}
}

func TestCapAmplifiesNoise(t *testing.T) {
	noise := NoiseModel{JitterSigma: 0.01}
	spread := func(capped bool) float64 {
		n := DefaultNodeWithSeeds(1, noise, 21, 22)
		if capped {
			n.RAPL().SetLongCap(110)
			n.Idle(0.02)
		}
		var lo, hi float64
		for i := 0; i < 200; i++ {
			d := float64(n.Run(computePhase(0.01), noise).Duration)
			if i == 0 || d < lo {
				lo = d
			}
			if i == 0 || d > hi {
				hi = d
			}
		}
		return (hi - lo) / lo
	}
	if su, sc := spread(false), spread(true); sc <= su {
		t.Errorf("capped jitter spread %v should exceed uncapped %v", sc, su)
	}
}

func TestBusyTimeAccumulates(t *testing.T) {
	n := quietNode(t, 0)
	n.Run(computePhase(1), NoiseModel{})
	n.Run(computePhase(2), NoiseModel{})
	if got := n.BusyTime(); !units.NearlyEqual(float64(got), 3, 1e-9) {
		t.Errorf("BusyTime = %v, want 3", got)
	}
}

func TestPredictDurationMatchesQuietRun(t *testing.T) {
	f := func(rawCap float64) bool {
		cap := units.Watts(98 + mod(rawCap, 117))
		n := DefaultNode(0, NoiseModel{}, 1)
		ph := computePhase(1)
		pred := n.PredictDuration(ph, cap)
		n.RAPL().SetLongCap(cap)
		n.Idle(0.02)
		got := n.Run(ph, NoiseModel{}).Duration
		return units.NearlyEqual(float64(pred), float64(got), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func mod(x, m float64) float64 {
	v := math.Mod(math.Abs(x), m)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func TestEstimatedFrequency(t *testing.T) {
	n := quietNode(t, 0)
	ph := computePhase(1)
	lo := n.EstimatedFrequency(ph, 98)
	hi := n.EstimatedFrequency(ph, 215)
	if lo >= hi {
		t.Errorf("frequency at 98 W (%v) not below 215 W (%v)", lo, hi)
	}
	if hi > 1.51 || hi < 1.2 {
		t.Errorf("saturated frequency %v outside the KNL band", hi)
	}
	if lo < 0.1 {
		t.Errorf("throttled frequency %v implausibly low", lo)
	}
}

func TestSlowFactorExcursion(t *testing.T) {
	n := quietNode(t, 0)
	base := n.Run(computePhase(2), NoiseModel{}).Duration

	n.SetSlowFactor(2)
	if n.SlowFactor() != 2 {
		t.Errorf("SlowFactor() = %g after SetSlowFactor(2)", n.SlowFactor())
	}
	slow := n.Run(computePhase(2), NoiseModel{}).Duration
	if !units.NearlyEqual(float64(slow), 2*float64(base), 1e-9) {
		t.Errorf("2x excursion duration = %v, want %v", slow, 2*base)
	}

	// Recovery restores the nominal duration exactly.
	n.SetSlowFactor(1)
	after := n.Run(computePhase(2), NoiseModel{}).Duration
	if !units.NearlyEqual(float64(after), float64(base), 1e-9) {
		t.Errorf("post-recovery duration = %v, want %v", after, base)
	}
}

func TestSetSlowFactorPanicsOnNonPositive(t *testing.T) {
	n := quietNode(t, 0)
	for _, f := range []float64{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("SetSlowFactor(%g) did not panic", f)
				}
			}()
			n.SetSlowFactor(f)
		}()
	}
}

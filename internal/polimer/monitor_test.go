package polimer

import (
	"testing"

	"seesaw/internal/machine"
	"seesaw/internal/units"
)

func monNode() *machine.Node {
	return machine.DefaultNode(0, machine.NoiseModel{}, 1)
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, 0); err == nil {
		t.Error("nil node should be rejected")
	}
}

func TestMonitorEnergyAndTime(t *testing.T) {
	n := monNode()
	m, err := NewMonitor(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Idle(2) // 2 s at 104 W = 208 J
	if got := m.Time(); got != 2 {
		t.Errorf("Time = %v", got)
	}
	e := float64(m.Energy())
	if e < 207 || e > 209 {
		t.Errorf("Energy = %v, want ~208 J", e)
	}
}

func TestMonitorPowerIntervals(t *testing.T) {
	n := monNode()
	m, err := NewMonitor(n, 0)
	if err != nil {
		t.Fatal(err)
	}
	n.Idle(1) // 104 W
	p1 := float64(m.Power())
	if p1 < 103 || p1 > 105 {
		t.Errorf("first interval power = %v, want ~104", p1)
	}
	// Second interval: a compute phase at higher power.
	n.Run(machine.Phase{Name: "c", Nominal: 1, Demand: 130, Saturation: 140, Sensitivity: 0.9},
		machine.NoiseModel{})
	p2 := float64(m.Power())
	if p2 < 128 || p2 > 132 {
		t.Errorf("second interval power = %v, want ~130", p2)
	}
}

func TestMonitorSampling(t *testing.T) {
	n := monNode()
	m, err := NewMonitor(n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		n.Idle(0.3)
		m.Poll()
	}
	s := m.Series()
	if s == nil {
		t.Fatal("no series with a sampling period")
	}
	// 2.4 s of activity at 0.5 s sampling -> 4 samples.
	if s.Len() != 4 {
		t.Errorf("samples = %d, want 4", s.Len())
	}
	for _, v := range s.Values() {
		if v < 100 || v > 108 {
			t.Errorf("sample %v outside idle band", v)
		}
	}
}

func TestMonitorNoSamplingPeriod(t *testing.T) {
	n := monNode()
	m, _ := NewMonitor(n, 0)
	n.Idle(1)
	m.Poll() // no-op
	if m.Series() != nil {
		t.Error("series should be nil without a period")
	}
}

func TestMonitorCapWrites(t *testing.T) {
	n := monNode()
	m, _ := NewMonitor(n, 0)
	n.RAPL().SetLongCap(110)
	if m.CapWrites() != 1 {
		t.Errorf("CapWrites = %d", m.CapWrites())
	}
}

func TestMonitorSurvivesRegisterWrap(t *testing.T) {
	n := monNode()
	m, _ := NewMonitor(n, 0)
	// Drive enough energy through the node to wrap the 32-bit register
	// (~262 kJ) and verify the unwrapped reading stays monotonic.
	var prev units.Joules
	for i := 0; i < 40; i++ {
		n.Idle(100) // 100 s at 104 W = 10.4 kJ per chunk
		e := m.Energy()
		if e < prev {
			t.Fatalf("energy went backwards after wrap: %v < %v", e, prev)
		}
		prev = e
	}
	if float64(prev) < 300000 {
		t.Fatalf("test did not cross the wrap point: %v", prev)
	}
}

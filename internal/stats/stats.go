// Package stats implements the small set of statistics used by the
// SeeSAw policies and the experiment harness: central tendency, spread,
// percentiles, run variability (as defined in the paper's Table I) and
// exponentially weighted moving averages.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs, or 0 for an empty slice. The input is
// not modified.
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if n%2 == 1 {
		return c[n/2]
	}
	// Overflow-safe midpoint: summing two values near ±MaxFloat64
	// before halving would produce ±Inf.
	return c[n/2-1]/2 + c[n/2]/2
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// StdDev returns the sample standard deviation of xs (n-1 denominator),
// or 0 when len(xs) < 2.
func StdDev(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between order statistics. Returns 0 for an empty
// slice.
func Percentile(xs []float64, p float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[n-1]
	}
	rank := p / 100 * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// VariabilityPct is the run variability metric used in the paper's
// Table I: the spread of repeated runtimes relative to their mean,
// reported as a percentage ((max-min)/mean * 100). Returns 0 when fewer
// than two samples are available or the mean is zero.
func VariabilityPct(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return (Max(xs) - Min(xs)) / m * 100
}

// EWMA maintains an exponentially weighted moving average with a fixed
// smoothing weight. The first observation initializes the average.
type EWMA struct {
	weight float64
	value  float64
	seen   bool
}

// NewEWMA returns an EWMA that weighs each new observation by w
// (0 < w <= 1).
func NewEWMA(w float64) *EWMA {
	if w <= 0 || w > 1 {
		panic("stats: EWMA weight must be in (0, 1]")
	}
	return &EWMA{weight: w}
}

// Add folds an observation into the average and returns the updated
// value.
func (e *EWMA) Add(x float64) float64 {
	if !e.seen {
		e.value = x
		e.seen = true
		return x
	}
	e.value = e.weight*x + (1-e.weight)*e.value
	return e.value
}

// Value returns the current average (0 before any observation).
func (e *EWMA) Value() float64 { return e.value }

// Initialized reports whether at least one observation has been folded in.
func (e *EWMA) Initialized() bool { return e.seen }

// Blend returns w*x + (1-w)*prev: a single EWMA step with an explicit
// weight, as used by the SeeSAw allocator where the weight itself varies
// per step.
func Blend(x, prev, w float64) float64 { return w*x + (1-w)*prev }

// RollingWindow keeps the last capacity observations and reports their
// mean, as used for SeeSAw's w-step measurement window.
type RollingWindow struct {
	buf []float64
	cap int
	pos int
	n   int
}

// NewRollingWindow returns a window holding up to capacity observations.
func NewRollingWindow(capacity int) *RollingWindow {
	if capacity <= 0 {
		panic("stats: rolling window capacity must be positive")
	}
	return &RollingWindow{buf: make([]float64, capacity), cap: capacity}
}

// Add inserts an observation, evicting the oldest when full.
func (r *RollingWindow) Add(x float64) {
	r.buf[r.pos] = x
	r.pos = (r.pos + 1) % r.cap
	if r.n < r.cap {
		r.n++
	}
}

// Len reports how many observations are currently held.
func (r *RollingWindow) Len() int { return r.n }

// Full reports whether the window holds capacity observations.
func (r *RollingWindow) Full() bool { return r.n == r.cap }

// Mean returns the mean of the held observations (0 if empty).
func (r *RollingWindow) Mean() float64 {
	if r.n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < r.n; i++ {
		s += r.buf[i]
	}
	return s / float64(r.n)
}

// Reset discards all observations.
func (r *RollingWindow) Reset() { r.n, r.pos = 0, 0 }

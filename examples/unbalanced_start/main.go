// Unbalanced initial power (the paper's Figure 7): simulation and
// analysis start from skewed per-node caps — as they would if the two
// partitions were provisioned differently — and SeeSAw rebalances toward
// the equal-time allocation from either side.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

func main() {
	spec := workload.Spec{
		SimNodes: 64, AnaNodes: 64,
		Dim: 36, J: 1, Steps: 400,
		Analyses: workload.AllAnalysesForDim(36),
	}
	cons := core.Constraints{Budget: units.Watts(110 * 128), MinCap: 98, MaxCap: 215}

	starts := []struct {
		label    string
		sim, ana units.Watts
	}{
		{"simulation-heavy start (S=120, A=100)", 120, 100},
		{"analysis-heavy start   (S=100, A=120)", 100, 120},
		{"equal start            (S=110, A=110)", 110, 110},
	}

	fmt.Println("128 nodes, dim=36, all analyses, w=2 (the paper's Fig 7 setup)")
	fmt.Println()
	tbl := trace.NewTable("SeeSAw vs keeping the initial distribution static",
		"initial distribution", "static (s)", "seesaw (s)", "improvement", "final caps S/A (W)")

	for _, st := range starts {
		var times [2]float64
		var final trace.SyncRecord
		for i, policy := range []core.Policy{
			core.NewStatic(),
			core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 2}),
		} {
			res, err := cosim.Run(context.Background(), cosim.Config{
				Spec: spec, Policy: policy, Constraints: cons,
				InitialSimCap: st.sim, InitialAnaCap: st.ana,
				CapMode: cosim.CapLong, Seed: 11, RunSeed: 12,
				Noise: machine.DefaultNoise(),
			})
			if err != nil {
				log.Fatal(err)
			}
			times[i] = float64(res.TotalTime)
			if i == 1 {
				final = res.SyncLog.Records[res.SyncLog.Len()-1]
			}
		}
		tbl.AddRow(st.label,
			fmt.Sprintf("%.0f", times[0]),
			fmt.Sprintf("%.0f", times[1]),
			fmt.Sprintf("%+.2f%%", (times[0]-times[1])/times[0]*100),
			fmt.Sprintf("%.1f / %.1f", float64(final.SimCap), float64(final.AnaCap)))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("from either skewed start SeeSAw converges toward the same balanced")
	fmt.Println("allocation, recovering the most when the start was most wrong (paper:")
	fmt.Println("28.26% / 19.21% / 8.94% for the three cases).")
}

// Command mdrun drives the miniature molecular-dynamics engine
// standalone — the repository's equivalent of running the LAMMPS
// benchmark without the in-situ machinery. It can equilibrate, run NVE
// or thermostatted production, stream a thermo log, and dump an XYZ
// trajectory readable by standard MD visualization tools.
//
// Usage:
//
//	mdrun [-atoms N] [-density R] [-temp T] [-steps N] [-equil N]
//	      [-thermostat none|rescale|berendsen] [-thermo-every N]
//	      [-dump traj.xyz] [-dump-every N] [-seed N]
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	"seesaw/internal/lammps"
)

func main() {
	atoms := flag.Int("atoms", 512, "atoms in the box")
	density := flag.Float64("density", 0.8, "reduced number density")
	temp := flag.Float64("temp", 1.0, "reduced temperature")
	steps := flag.Int("steps", 400, "production Verlet steps")
	equil := flag.Int("equil", 100, "equilibration steps before production")
	thermostat := flag.String("thermostat", "none", "production thermostat: none, rescale, berendsen")
	thermoEvery := flag.Int("thermo-every", 10, "thermo log interval (0 = off)")
	dump := flag.String("dump", "", "XYZ trajectory output path")
	dumpEvery := flag.Int("dump-every", 20, "trajectory dump interval")
	seed := flag.Uint64("seed", 1, "initialization seed")
	flag.Parse()

	cfg := lammps.DefaultConfig()
	cfg.Atoms = *atoms
	cfg.Density = *density
	cfg.Temp = *temp
	cfg.Seed = *seed
	sys, err := lammps.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "mdrun: %d atoms, box %.3f sigma, T*=%.2f rho*=%.2f\n",
		sys.N, sys.Box, cfg.Temp, cfg.Density)

	if *equil > 0 {
		if err := sys.Equilibrate(*equil); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mdrun: equilibrated %d steps, T*=%.3f\n", *equil, sys.Temperature())
	}

	var th lammps.Thermostat
	switch *thermostat {
	case "none":
	case "rescale":
		th, err = lammps.NewRescaleThermostat(cfg.Temp, 10)
	case "berendsen":
		th, err = lammps.NewBerendsenThermostat(cfg.Temp, 0.1)
	default:
		log.Fatalf("mdrun: unknown thermostat %q", *thermostat)
	}
	if err != nil {
		log.Fatal(err)
	}

	var dumpW *bufio.Writer
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		dumpW = bufio.NewWriter(f)
		defer dumpW.Flush()
	}

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	if *thermoEvery > 0 {
		if err := lammps.WriteThermoHeader(out); err != nil {
			log.Fatal(err)
		}
	}

	sys.Run(*steps, lammps.RunOptions{
		Thermostat: th,
		EveryStep: func(step int, s *lammps.System) {
			if *thermoEvery > 0 && step%*thermoEvery == 0 {
				if err := lammps.WriteThermo(out, s.ThermoLine()); err != nil {
					log.Fatal(err)
				}
			}
			if dumpW != nil && step%*dumpEvery == 0 {
				f := s.Snapshot()
				if err := lammps.WriteXYZ(dumpW, &f); err != nil {
					log.Fatal(err)
				}
			}
		},
	})
	fmt.Fprintf(os.Stderr, "mdrun: done; final T*=%.3f P*=%.3f E=%.2f\n",
		sys.Temperature(), sys.Pressure(), sys.TotalEnergy())
}

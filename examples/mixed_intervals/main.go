// Mixed analysis intervals (the paper's Table II scenario): RDF and VACF
// synchronize every step while full MSD only every j-th step, making the
// high-demand analysis an intermittent "anomaly" for the allocator; the
// window parameter w controls how aggressively SeeSAw reacts to it.
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

func run(msdInterval, window int) (improvement float64) {
	spec := workload.Spec{
		SimNodes: 64, AnaNodes: 64,
		Dim: 16, J: 1, Steps: 400,
		Analyses: []workload.AnalysisTask{
			{Name: "rdf", Interval: 1},
			{Name: "msd", Interval: msdInterval},
			{Name: "vacf", Interval: 1},
		},
	}
	cons := core.Constraints{Budget: units.Watts(110 * 128), MinCap: 98, MaxCap: 215}

	var times [2]float64
	for i, policy := range []core.Policy{
		core.NewStatic(),
		core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: window}),
	} {
		res, err := cosim.Run(context.Background(), cosim.Config{
			Spec: spec, Policy: policy, Constraints: cons,
			CapMode: cosim.CapLong, Seed: 21, RunSeed: 22,
			Noise: machine.DefaultNoise(),
		})
		if err != nil {
			log.Fatal(err)
		}
		times[i] = float64(res.TotalTime)
	}
	return (times[0] - times[1]) / times[0] * 100
}

func main() {
	fmt.Println("RDF + VACF at every step, full MSD every j-th step (128 nodes)")
	fmt.Println()

	tbl := trace.NewTable("SeeSAw improvement over static with an intermittent high-demand analysis",
		"MSD interval j", "w=1 (reactive)", "w=2", "w=4")
	for _, j := range []int{4, 20, 100} {
		row := []any{j}
		for _, w := range []int{1, 2, 4} {
			row = append(row, fmt.Sprintf("%+.2f%%", run(j, w)))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println("the paper's guidance (Section VII-C2): with w = 1 SeeSAw is too reactive")
	fmt.Println("to the now-anomalous MSD steps; w >= 2 keeps the occasional burst from")
	fmt.Println("triggering sudden power swings.")
}

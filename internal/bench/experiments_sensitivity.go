// Sensitivity and overhead experiments: Figure 6, Table II, Figures 7,
// 8 and 9.
package bench

import (
	"context"
	"fmt"
	"io"

	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/stats"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig6",
		Title: "Fig 6: SeeSAw window w and LAMMPS synchronization rate j (1024 nodes, dim=48, all analyses)",
		Run:   runFig6,
	})
	register(Experiment{
		ID:    "table2",
		Title: "Table II: SeeSAw improvement with mixed analysis intervals (128 nodes, dim=16, w=1, median of 3)",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "fig7",
		Title: "Fig 7: unbalanced initial power distributions (128 nodes, dim=36, all analyses, w=2, j=1)",
		Run:   runFig7,
	})
	register(Experiment{
		ID:    "fig8",
		Title: "Fig 8: SeeSAw improvement over static for varying power caps (diminishing returns past ~140 W)",
		Run:   runFig8,
	})
	register(Experiment{
		ID:    "fig9a",
		Title: "Fig 9a: SeeSAw overhead as a percentage of each synchronization interval (128 and 1024 nodes)",
		Run:   runFig9a,
	})
	register(Experiment{
		ID:    "fig9b",
		Title: "Fig 9b: standalone SeeSAw allocation duration across power caps (loop of 10 iterations)",
		Run:   runFig9b,
	})
}

// runFig6 sweeps the power-reallocation window w and the synchronization
// rate j at 1024 nodes.
func runFig6(ctx context.Context, o Options, w io.Writer) error {
	runs := o.runs(1)
	steps := o.steps(defaultSteps)
	windows := []int{1, 2, 5, 10, 20}
	js := []int{1, 5, 10}

	// The paper's "mix of analyses" at dim=48 excludes full MSD (its
	// memory limits it to dim=16, Section VII-B).
	analyses := workload.Tasks("rdf", "msd1d", "msd2d", "vacf")

	e := newEnum("fig6")
	var getters [][]func() (float64, float64) // [window][j]
	for _, win := range windows {
		var row []func() (float64, float64)
		for _, j := range js {
			row = append(row, e.paired(fmt.Sprintf("w%d/j%d", win, j), cell{
				spec:   specAt(2*nodes1024Half, defaultBigDim, j, steps, analyses),
				policy: "seesaw", window: win, telemetry: o.Telemetry,
			}, runs, o.BaseSeed+61))
		}
		getters = append(getters, row)
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	headers := []string{"w \\ j"}
	for _, j := range js {
		headers = append(headers, fmt.Sprintf("j=%d", j))
	}
	tbl := trace.NewTable("Fig 6: SeeSAw % improvement over static baseline", headers...)
	for i, win := range windows {
		row := []any{fmt.Sprintf("w=%d", win)}
		for _, g := range getters[i] {
			imp, _ := g()
			row = append(row, fmt.Sprintf("%+.2f%%", imp))
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

// runTable2 varies the interval of one analysis while the others
// synchronize at every step.
func runTable2(ctx context.Context, o Options, w io.Writer) error {
	runs := o.runs(defaultRuns)
	steps := o.steps(defaultSteps)
	intervals := []int{4, 20, 100}
	varieds := []string{"msd", "vacf"}

	e := newEnum("table2")
	var getters [][]func() (float64, float64) // [varied][interval]
	for _, varied := range varieds {
		var row []func() (float64, float64)
		for _, j := range intervals {
			tasks := []workload.AnalysisTask{
				{Name: "rdf", Interval: 1},
				{Name: "msd", Interval: 1},
				{Name: "vacf", Interval: 1},
			}
			for i := range tasks {
				if tasks[i].Name == varied {
					tasks[i].Interval = j
				}
			}
			row = append(row, e.paired(fmt.Sprintf("%s/j%d", varied, j), cell{
				spec:   spec128(defaultDim, 1, steps, tasks),
				policy: "seesaw", window: 1, telemetry: o.Telemetry,
			}, runs, o.BaseSeed+71))
		}
		getters = append(getters, row)
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Table II: SeeSAw % improvement over static with mixed analysis intervals",
		"varied analysis", "j=4", "j=20", "j=100")
	for i, varied := range varieds {
		row := []any{varied}
		for _, g := range getters[i] {
			imp, _ := g()
			row = append(row, fmt.Sprintf("%+.2f%%", imp))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "paper: MSD-varied 5.03 / 0.94 / 0.90 %; VACF-varied 16.76 / 15.09 / 16.24 %")
	return err
}

// runFig7 starts simulation and analysis at different initial caps and
// measures SeeSAw's improvement over keeping that distribution static.
func runFig7(ctx context.Context, o Options, w io.Writer) error {
	runs := o.runs(defaultRuns)
	steps := o.steps(defaultSteps)
	spec := spec128(defaultMidDim, 1, steps, workload.AllAnalysesForDim(defaultMidDim))

	starts := []struct {
		label    string
		sim, ana units.Watts
	}{
		{"simulation starts with more (S=120, A=100)", 120, 100},
		{"analysis starts with more (S=100, A=120)", 100, 120},
		{"equal start (S=110, A=110)", 110, 110},
	}
	e := newEnum("fig7")
	var getters []func() (float64, float64)
	for _, st := range starts {
		getters = append(getters, e.paired(fmt.Sprintf("S%.0f-A%.0f", float64(st.sim), float64(st.ana)), cell{
			spec:   spec,
			policy: "seesaw", window: 2,
			simStart: st.sim, anaStart: st.ana,
			telemetry: o.Telemetry,
		}, runs, o.BaseSeed+81))
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Fig 7: SeeSAw % improvement over the static initial distribution (w=2)",
		"initial distribution", "improvement", "paper")
	paperVals := []string{"28.26%", "19.21%", "8.94%"}
	for i, st := range starts {
		imp, _ := getters[i]()
		tbl.AddRow(st.label, fmt.Sprintf("%+.2f%%", imp), paperVals[i])
	}
	return tbl.Render(w)
}

// runFig8 sweeps the per-node power budget: SeeSAw helps most at tight
// caps; beyond ~140 W per node LAMMPS cannot use more power and the
// improvement evaporates.
func runFig8(ctx context.Context, o Options, w io.Writer) error {
	runs := o.runs(defaultRuns)
	steps := o.steps(defaultSteps)
	spec := spec128(defaultDim, 1, steps, workload.AllAnalyses())
	caps := []units.Watts{98, 105, 110, 115, 120, 130, 140, 150, 160}

	e := newEnum("fig8")
	var getters []func() (float64, float64)
	for _, c := range caps {
		getters = append(getters, e.paired(fmt.Sprintf("cap%.0f", float64(c)), cell{
			spec:       spec,
			policy:     "seesaw",
			window:     1,
			capPerNode: c,
			telemetry:  o.Telemetry,
		}, runs, o.BaseSeed+91))
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Fig 8: SeeSAw % improvement over static across per-node power caps",
		"cap per node (W)", "improvement")
	for i, c := range caps {
		imp, _ := getters[i]()
		tbl.AddRow(c, fmt.Sprintf("%+.2f%%", imp))
	}
	return tbl.Render(w)
}

// runFig9a reports the allocator overhead relative to the
// synchronization interval at 128 and 1024 nodes.
func runFig9a(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	scales := []int{2 * nodes128Half, 2 * nodes1024Half}

	e := newEnum("fig9a")
	var getters []func() *cosim.Result
	for _, n := range scales {
		n := n
		getters = append(getters, addCell(e, fmt.Sprintf("n%d", n), o.BaseSeed+95,
			func(ctx context.Context) (*cosim.Result, error) {
				return runCell(ctx, cell{
					spec:   specAt(n, defaultBigDim, 1, steps, workload.AllAnalysesForDim(defaultBigDim)),
					policy: "seesaw", window: 1,
					jobSeed: o.BaseSeed + 95, runSeed: o.BaseSeed + 96,
					telemetry: o.Telemetry,
				})
			}))
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Fig 9a: SeeSAw overhead per synchronization (dim=48, all analyses, w=1, j=1)",
		"nodes", "overhead per sync", "mean interval (s)", "overhead %")
	for i, n := range scales {
		res := getters[i]()
		meanInterval := float64(res.TotalTime) / float64(len(res.SyncLog.Records))
		ovh := float64(res.OverheadPerSync)
		tbl.AddRow(n, fmt.Sprintf("%.1f us", ovh*1e6), meanInterval,
			fmt.Sprintf("%.5f%%", ovh/meanInterval*100))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "communication costs dominate at 1024 nodes: higher absolute overhead, smaller relative overhead")
	return err
}

// runFig9b measures the standalone duration of one SeeSAw allocation on
// a node running at different power caps (the allocator itself slows
// down on a throttled CPU), averaged over a loop of 10 iterations. Each
// cap is one cell; the node is constructed inside the cell, so cells
// share no state.
func runFig9b(ctx context.Context, o Options, w io.Writer) error {
	caps := []units.Watts{98, 110, 120, 140, 215}
	// The allocator's local compute: a short scalar phase on the
	// monitoring rank's CPU.
	allocPhase := machine.Phase{
		Name:        "seesaw-alloc",
		Nominal:     50e-6, // 50 us of local math and bookkeeping
		Demand:      120,
		Saturation:  130,
		Sensitivity: 0.8,
	}
	e := newEnum("fig9b")
	var getters []func() float64
	for _, c := range caps {
		c := c
		getters = append(getters, addCell(e, fmt.Sprintf("cap%.0f", float64(c)), o.BaseSeed+98,
			func(ctx context.Context) (float64, error) {
				node := machine.DefaultNode(0, machine.DefaultNoise(), o.BaseSeed+98)
				node.RAPL().SetLongCap(c)
				// Warm the domain past the actuation latency.
				node.Idle(0.02)
				var durs []float64
				for i := 0; i < 10; i++ {
					exec := node.Run(allocPhase, machine.DefaultNoise())
					durs = append(durs, float64(exec.Duration)*1e6)
				}
				return stats.Mean(durs), nil
			}))
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Fig 9b: average standalone SeeSAw duration over 10 iterations",
		"cap per node (W)", "avg duration (us)")
	for i, c := range caps {
		tbl.AddRow(c, fmt.Sprintf("%.1f", getters[i]()))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "RAPL additionally needs ~10 ms to actuate a new cap request (modeled as actuation latency, not allocator time)")
	return err
}

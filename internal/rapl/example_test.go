package rapl_test

import (
	"fmt"

	"seesaw/internal/rapl"
)

// A cap write takes effect only after the actuation latency, and a
// sustained workload is then limited to the cap.
func ExampleDomain_SetLongCap() {
	d := rapl.MustNewDomain(rapl.Theta())
	d.SetLongCap(110)
	fmt.Printf("before actuation: %v\n", d.SustainedAllowed(180))
	d.Advance(0.02, 100) // 20 ms pass
	fmt.Printf("after actuation: %v\n", d.SustainedAllowed(180))
	// Output:
	// before actuation: 180.0 W
	// after actuation: 110.0 W
}

// The energy register wraps like the hardware MSR; EnergyUnwrapper
// reconstructs the monotonic count.
func ExampleEnergyUnwrapper() {
	d := rapl.MustNewDomain(rapl.Theta())
	var u rapl.EnergyUnwrapper
	u.Update(d.EnergyRegister())
	d.Advance(10, 110) // 1100 J
	fmt.Println(u.Update(d.EnergyRegister()))
	// Output: 1100.0 J
}

// Episode-invariant precompute and pooled episode state for the cosim
// driver. A JobState captures everything about a co-simulated job that
// does not depend on the acting policy, the power budget or the initial
// caps: the synchronization schedule, the per-interval workload phase
// tables, the modeled allocator overhead and the (validated) cluster
// configuration. An Episode adds the mutable per-run state — the node
// population and the driver's scratch slices — and can run any number
// of episodes back to back, each byte-identical to a fresh cosim.Run
// with the same Config (the rollout goldens pin this).
//
// The split mirrors what simtrace.go/anatrace.go did inside the insitu
// driver: the search layer (internal/rollout) builds one JobState per
// distinct (workload, seeds, noise, faults, classes) key and shares it
// read-only across every grid point that differs only in budget,
// window or policy, while each worker owns its Episodes.
package cosim

import (
	"context"
	"fmt"

	"seesaw/internal/cluster"
	"seesaw/internal/core"
	"seesaw/internal/machine"
	"seesaw/internal/mpi"
	"seesaw/internal/telemetry"
	"seesaw/internal/trace"
	"seesaw/internal/units"
)

// intervalEnd is one entry of the synchronization schedule: the Verlet
// step the interval ends at and whether that end is a synchronization
// (the trailing partial interval is not).
type intervalEnd struct {
	step int
	sync bool
}

// policyComputeTime is the allocator's local compute charged per
// synchronization, on top of the modeled collectives.
const policyComputeTime = 2e-6

// JobState is the immutable, shareable precompute of one co-simulated
// job. It is safe for concurrent use by any number of Episodes.
type JobState struct {
	// cfg is the normalized configuration with the episode-varying
	// fields (Policy, Constraints, initial caps, CapMode) zeroed; those
	// arrive per run via EpisodeParams.
	cfg Config

	schedule []intervalEnd
	// simPhases[k] and anaPhases[k] are the partitions' phase tables for
	// schedule entry k (anaPhases[k] is nil for non-synchronizing
	// trailing intervals). Episodes read them without copying; the
	// driver never mutates a Phase in place.
	simPhases [][]machine.Phase
	anaPhases [][]machine.Phase

	overhead           units.Seconds
	nSim, nAna, nTotal int

	// noiseTraces[i] is node i's recorded jitter-draw sequence — the
	// standard normals its Box-Muller stream produces over one episode,
	// recorded once per job and replayed read-only by every Episode (nil
	// when memoization is off: faulted, traced or NoNoiseMemo jobs).
	// traceBytes is their storage footprint, for cache size accounting.
	noiseTraces [][]float64
	traceBytes  int64
}

// NewJobState validates the workload and precomputes the job's
// episode-invariant tables. The Policy, Constraints, InitialSimCap,
// InitialAnaCap and CapMode fields of cfg are ignored — they are
// episode parameters, supplied to Episode.Run.
func NewJobState(cfg Config) (*JobState, error) {
	if err := cfg.Spec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Cost == (mpi.CostModel{}) {
		cfg.Cost = mpi.DefaultCost()
	}
	cfg.Policy = nil
	cfg.Constraints = core.Constraints{}
	cfg.InitialSimCap, cfg.InitialAnaCap = 0, 0
	cfg.CapMode = CapNone

	spec := cfg.Spec
	st := &JobState{
		cfg:    cfg,
		nSim:   spec.SimNodes,
		nAna:   spec.AnaNodes,
		nTotal: spec.SimNodes + spec.AnaNodes,
	}
	for _, s := range spec.SyncSchedule() {
		st.schedule = append(st.schedule, intervalEnd{step: s, sync: true})
	}
	if len(st.schedule) == 0 {
		return nil, fmt.Errorf("cosim: workload has no synchronization steps")
	}
	// A trailing partial interval covers Verlet steps after the last
	// synchronization.
	if last := st.schedule[len(st.schedule)-1].step; last < spec.Steps {
		st.schedule = append(st.schedule, intervalEnd{step: spec.Steps})
	}

	st.simPhases = make([][]machine.Phase, len(st.schedule))
	st.anaPhases = make([][]machine.Phase, len(st.schedule))
	prev := 0
	for i, iv := range st.schedule {
		st.simPhases[i] = spec.SimIntervalIdx(prev, iv.step, i)
		if iv.sync {
			st.anaPhases[i] = spec.AnaInterval(iv.step)
		}
		prev = iv.step
	}

	// Allocator overhead per synchronization: the measurement Allgather
	// and the cap Bcast over all nodes, plus the policy's local compute.
	st.overhead = cfg.Cost.CollectiveCost(st.nTotal, 32*st.nTotal) +
		cfg.Cost.CollectiveCost(st.nTotal, 8*st.nTotal) +
		policyComputeTime

	// Noise-trace memoization: the jitter draws a node consumes over an
	// episode depend only on the phase schedule and the run seed — never
	// on caps, budget or policy — so one recorded sequence serves every
	// grid point sharing this job. Fault plans shift work between nodes
	// (work-scaling does not commute with replay slicing) and traced
	// runs are one-off figure generation, so both keep the live RNG
	// path, mirroring the RunTrusted rule.
	if cfg.Faults.Empty() && !cfg.TraceSegments && !cfg.NoNoiseMemo {
		st.recordNoiseTraces()
	}
	return st, nil
}

// recordNoiseTraces records each node's per-episode jitter-draw
// sequence. The draw count is derived from the same phase tables the
// episodes execute: one draw per non-empty phase execution, plus one
// for the power-reading ripple when PowerSigma is active. Device
// adaptation rescales a nominal duration but never zeroes it, so the
// raw tables count for every device class.
func (st *JobState) recordNoiseTraces() {
	perExec := 1
	if st.cfg.Noise.PowerSigma > 0 {
		perExec = 2
	}
	countDraws := func(tables [][]machine.Phase) int {
		n := 0
		for _, phs := range tables {
			for i := range phs {
				if phs[i].Nominal != 0 {
					n += perExec
				}
			}
		}
		return n
	}
	drawsSim := countDraws(st.simPhases)
	drawsAna := countDraws(st.anaPhases)
	// The cluster layer falls back to the job seed when no run seed is
	// configured; the recorder must mirror that to tap the same streams.
	runSeed := st.cfg.RunSeed
	if runSeed == 0 {
		runSeed = st.cfg.Seed
	}
	st.noiseTraces = make([][]float64, st.nTotal)
	for i := range st.noiseTraces {
		draws := drawsSim
		if i >= st.nSim {
			draws = drawsAna
		}
		st.noiseTraces[i] = machine.JitterTrace(runSeed, i, draws)
		st.traceBytes += int64(draws) * 8
	}
}

// TraceBytes returns the recorded noise traces' storage footprint in
// bytes (zero when memoization is off). The state cache uses it to
// bound total memo memory.
func (st *JobState) TraceBytes() int64 { return st.traceBytes }

// EpisodeParams are the per-episode knobs of one run: the acting policy
// and the power-budget configuration. Everything else about the job
// lives in the shared JobState.
type EpisodeParams struct {
	// Policy allocates power at each synchronization; nil means static.
	Policy core.Policy
	// Constraints carry the global budget and per-node cap range.
	Constraints core.Constraints
	// InitialSimCap and InitialAnaCap are per-node starting caps; zero
	// means an even split of the budget.
	InitialSimCap, InitialAnaCap units.Watts
	// CapMode selects the RAPL cap types.
	CapMode CapMode
}

// Episode owns the mutable state of one worker's runs over a JobState:
// the node population and the driver's scratch slices. Run may be
// called any number of times; each call resets the cluster and replays
// the job from scratch. An Episode is not safe for concurrent use.
type Episode struct {
	st *JobState
	cl *cluster.Cluster

	// nodeSim[i] and nodeAna[i] are node i's model-adapted phase
	// tables (shared per distinct device model): the fault-free run
	// loop executes them directly, skipping the per-execution
	// adaptation and phase copies RunTrusted performs.
	nodeSim [][][]machine.Phase
	nodeAna [][][]machine.Phase

	busy       []units.Seconds
	measures   []core.NodeMeasure
	lastEnergy []units.Joules
	used       bool

	// runState is the pooled per-run loop state: Run (and the lane
	// executor in lanes.go) thread it through begin/runWindow/finish,
	// and keeping it on the Episode avoids a per-episode allocation.
	runState epRun
}

// adaptTables returns the model-adapted copy of per-interval phase
// tables. Adapting once per job is byte-identical to RunTrusted's
// per-execution adaptation (Adapt is deterministic per model).
func adaptTables(m machine.Model, tables [][]machine.Phase) [][]machine.Phase {
	out := make([][]machine.Phase, len(tables))
	for i, phs := range tables {
		if phs == nil {
			continue
		}
		adapted := make([]machine.Phase, len(phs))
		for k, ph := range phs {
			adapted[k] = m.Adapt(ph)
		}
		out[i] = adapted
	}
	return out
}

// NewEpisode builds the job's node population for one worker. The
// phase tables are validated here against every device model present,
// once, so the run loop can use the trusted execution path (an invalid
// phase panics, preserving machine.Node.Run's contract).
func (st *JobState) NewEpisode() (*Episode, error) {
	cl, err := cluster.New(cluster.Config{
		SimNodes:      st.nSim,
		AnaNodes:      st.nAna,
		Rapl:          st.cfg.Rapl,
		Machine:       st.cfg.Machine,
		Noise:         st.cfg.Noise,
		Classes:       st.cfg.Classes,
		ClassRegistry: st.cfg.ClassRegistry,
		JobSeed:       st.cfg.Seed,
		RunSeed:       st.cfg.RunSeed,
		Faults:        st.cfg.Faults,
		Telemetry:     st.cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	type tables struct{ sim, ana [][]machine.Phase }
	byModel := map[machine.Model]*tables{}
	nodeSim := make([][][]machine.Phase, cl.Size())
	nodeAna := make([][][]machine.Phase, cl.Size())
	for i := 0; i < cl.Size(); i++ {
		m := cl.Node(i).Model()
		tb := byModel[m]
		if tb == nil {
			for _, tbl := range [2][][]machine.Phase{st.simPhases, st.anaPhases} {
				for _, phs := range tbl {
					for _, ph := range phs {
						if err := m.ValidatePhase(ph); err != nil {
							panic(err)
						}
					}
				}
			}
			tb = &tables{sim: adaptTables(m, st.simPhases), ana: adaptTables(m, st.anaPhases)}
			byModel[m] = tb
		}
		nodeSim[i], nodeAna[i] = tb.sim, tb.ana
	}
	// Memoized jobs replay the recorded draw sequences: the node reads
	// its shared trace slice instead of advancing its live Box-Muller
	// stream, and cluster.Reset rewinds the replay cursor per episode.
	if st.noiseTraces != nil {
		for i := 0; i < cl.Size(); i++ {
			cl.Node(i).SetNoiseTrace(st.noiseTraces[i])
		}
	}
	return &Episode{
		st:         st,
		cl:         cl,
		nodeSim:    nodeSim,
		nodeAna:    nodeAna,
		busy:       make([]units.Seconds, st.nTotal),
		measures:   make([]core.NodeMeasure, st.nTotal),
		lastEnergy: make([]units.Joules, st.nTotal),
	}, nil
}

// epRun is the mutable loop state of one running episode, threaded
// through begin/runWindow/finish. Run drives one epRun to completion;
// the lane executor (lanes.go) advances K of them in lockstep, one
// schedule walk serving every lane.
type epRun struct {
	prm    EpisodeParams
	policy core.Policy
	res    *Result

	clock         units.Seconds
	carryOverhead units.Seconds

	// Idle-trough handles resolved once per partition: the per-node
	// observation inside the synchronization loop must not pay a family
	// label lookup (and a Role→string conversion) per node per interval.
	idleSimM, idleAnaM *telemetry.Metric

	// Fault-free runs take a lock-free fast path through the health
	// view: with an empty plan every node stays Healthy and alive and
	// the work scale is 1, so the per-node mutex reads of the cluster's
	// health state (three per node per interval) are pure overhead.
	faultFree bool
	// The pre-adapted execute path additionally requires segment tracing
	// off: it does not collect Segments (tracing runs are one-off figure
	// generation, not search workloads).
	fast bool
}

// begin validates the episode parameters, resets the pooled cluster and
// installs the initial caps, returning the run state runWindow advances.
func (ep *Episode) begin(prm EpisodeParams) (*epRun, error) {
	st := ep.st
	cfg := &st.cfg
	nTotal := st.nTotal

	pol := prm.Policy
	if pol == nil {
		pol = core.NewStatic()
	}
	if prm.CapMode != CapNone {
		if err := prm.Constraints.Validate(nTotal); err != nil {
			return nil, err
		}
		even := core.EvenSplit(prm.Constraints, nTotal)
		if prm.InitialSimCap == 0 {
			prm.InitialSimCap = even
		}
		if prm.InitialAnaCap == 0 {
			prm.InitialAnaCap = even
		}
	}

	cl := ep.cl
	if ep.used {
		cl.Reset()
	}
	ep.used = true
	for i := range ep.lastEnergy {
		ep.lastEnergy[i] = 0
	}

	r := &ep.runState
	*r = epRun{prm: prm}
	r.policy = core.Instrument(pol, cfg.Telemetry, func() float64 { return float64(r.clock) })
	// Install initial caps.
	if prm.CapMode != CapNone {
		for i := 0; i < nTotal; i++ {
			cap := prm.InitialAnaCap
			if cl.Role(i) == core.RoleSimulation {
				cap = prm.InitialSimCap
			}
			cl.Node(i).RAPL().SetLongCap(cap)
			if prm.CapMode == CapLongShort {
				cl.Node(i).RAPL().SetShortCap(cap)
			}
		}
	}

	r.res = &Result{
		SyncLog:         &trace.SyncLog{Records: make([]trace.SyncRecord, 0, len(st.schedule))},
		OverheadPerSync: st.overhead,
	}
	r.idleSimM = cfg.Telemetry.IdleWaitMetric(core.RoleSimulation.String())
	r.idleAnaM = cfg.Telemetry.IdleWaitMetric(core.RoleAnalysis.String())
	r.faultFree = cfg.Faults.Empty()
	r.fast = r.faultFree && !cfg.TraceSegments
	return r, nil
}

// runWindow advances the episode through schedule entry syncIdx: phase
// execution, synchronization, measurement, and the policy's allocation.
// It touches only this episode's state, so lanes interleaving windows
// of different episodes produce exactly the bytes of sequential runs.
func (ep *Episode) runWindow(r *epRun, syncIdx int) {
	st := ep.st
	cfg := &st.cfg
	cl := ep.cl
	nSim, nTotal := st.nSim, st.nTotal
	busy, measures, lastEnergy := ep.busy, ep.measures, ep.lastEnergy
	faultFree, fast := r.faultFree, r.fast
	overhead := st.overhead
	res := r.res
	prm := &r.prm
	iv := st.schedule[syncIdx]
	syncing := iv.sync

	// 0. Fault plan: transitions planned for this interval fire
	// before it executes. A kill shifts the dead node's share of the
	// partition's domain-decomposed work onto the survivors.
	scale := [2]float64{}
	if faultFree {
		scale[core.RoleSimulation] = 1
		scale[core.RoleAnalysis] = 1
	} else {
		if trs := cl.Advance(r.clock, syncIdx+1); len(trs) > 0 {
			res.FaultLog = append(res.FaultLog, trs...)
		}
		scale[core.RoleSimulation] = cl.WorkScale(core.RoleSimulation)
		scale[core.RoleAnalysis] = cl.WorkScale(core.RoleAnalysis)
	}

	simPhases := st.simPhases[syncIdx]
	anaPhases := st.anaPhases[syncIdx]

	// 1. Execute every live node's interval.
	for i := 0; i < nTotal; i++ {
		n := cl.Node(i)
		if !faultFree && !cl.Alive(i) {
			busy[i] = 0
			continue
		}
		var t units.Seconds
		if fast {
			// Pre-adapted tables: no per-execution adaptation, no
			// Phase copy, no fault work-scaling (scale is 1).
			phases := ep.nodeSim[i][syncIdx]
			if cl.Role(i) == core.RoleAnalysis {
				phases = ep.nodeAna[i][syncIdx]
			}
			for k := range phases {
				t += n.RunAdapted(&phases[k], &cfg.Noise).Duration
			}
		} else {
			// Fault work-scaling multiplies the *raw* nominal before
			// adaptation (scale*(nominal/speed) != (scale*nominal)/speed
			// in floating point), so faulted — and traced — runs keep
			// the original RunTrusted path bit for bit.
			phases := simPhases
			if cl.Role(i) == core.RoleAnalysis {
				phases = anaPhases
			}
			for _, ph := range phases {
				if s := scale[cl.Role(i)]; s != 1 {
					ph.Nominal = units.Seconds(float64(ph.Nominal) * s)
				}
				exec := n.RunTrusted(ph, cfg.Noise)
				t += exec.Duration
				if cfg.TraceSegments && (i == 0 || i == nSim) {
					seg := Segment{Start: r.clock + t - exec.Duration, Duration: exec.Duration, Power: exec.Power}
					if i == 0 {
						res.SimSegments = append(res.SimSegments, seg)
					} else {
						res.AnaSegments = append(res.AnaSegments, seg)
					}
				}
			}
		}
		// The previous allocation's overhead is part of this
		// interval's runtime (the paper's measurement convention).
		t += r.carryOverhead
		busy[i] = t
	}

	// 2. Synchronization: the slower partition sets the wall time.
	var wall units.Seconds
	for _, t := range busy {
		if t > wall {
			wall = t
		}
	}
	// 3. Idle the waiting nodes up to the barrier and take the
	// measurements, exactly as PoLiMER reports them, in one pass
	// (the two are node-local: a node's energy is untouched by its
	// neighbours' idling, so idle-then-measure per node is bit-
	// identical to idling all nodes then measuring all nodes). The
	// epoch time additionally folds in part of the synchronization
	// wait, as a loop-level monitor (GEOPM) would observe it. Dead
	// nodes report zeroed measures (Cap 0 keeps the allocators from
	// re-injecting a corpse's stale cap into the budget pool).
	for i := 0; i < nTotal; i++ {
		n := cl.Node(i)
		if !faultFree && !cl.Alive(i) {
			measures[i] = core.NodeMeasure{NodeID: i, Health: core.Dead, Role: cl.Role(i)}
			continue
		}
		if wait := wall - busy[i]; wait > 0 {
			exec := n.Idle(wait)
			idleM := r.idleSimM
			if cl.Role(i) == core.RoleAnalysis {
				idleM = r.idleAnaM
			}
			if idleM != nil {
				idleM.Observe(float64(wait))
			}
			if cfg.TraceSegments && (i == 0 || i == nSim) {
				seg := Segment{Start: r.clock + busy[i], Duration: wait, Power: exec.Power}
				if i == 0 {
					res.SimSegments = append(res.SimSegments, seg)
				} else {
					res.AnaSegments = append(res.AnaSegments, seg)
				}
			}
		}
		health := core.Healthy
		if !faultFree {
			health = cl.Health(i)
		}
		en := n.RAPL().Energy()
		e := en - lastEnergy[i]
		lastEnergy[i] = en
		// Field-wise writes into the pooled slice: a composite
		// literal here materializes a temporary NodeMeasure and
		// copies it in (a measurable duffcopy at scale).
		m := &measures[i]
		m.NodeID = i
		m.Health = health
		m.Role = cl.Role(i)
		m.Time = wall // allocator-to-allocator interval: work + sync wait
		m.BusyTime = busy[i]
		m.EpochTime = busy[i] + (wall-busy[i])*epochWaitShare
		m.Power = units.AvgPower(e, wall)
		m.Cap = n.RAPL().LongCap()
		// Zero on a homogeneous cluster, so single-class runs
		// take the allocators' legacy uniform path unchanged.
		m.NodeCapability = cl.Capability(i)
	}
	r.clock += wall
	rec := buildRecord(syncIdx+1, measures, nSim, overhead)
	res.SyncLog.Add(rec)
	if cfg.Telemetry != nil {
		cfg.Telemetry.SyncBarrier(float64(r.clock), rec.Step,
			float64(wall), float64(rec.SimTime), float64(rec.AnaTime), rec.Slack(), float64(overhead))
		// Job-level budget check: summed measured power against the
		// global budget (small tolerance for enforcement slack). Dead
		// nodes draw nothing, so the sum covers live nodes only.
		if prm.CapMode != CapNone && prm.Constraints.Budget > 0 {
			aliveSim, aliveAna := cl.AliveCounts()
			total := float64(rec.SimPower)*float64(aliveSim) + float64(rec.AnaPower)*float64(aliveAna)
			if budget := float64(prm.Constraints.Budget); total > budget*1.01 {
				cfg.Telemetry.BudgetViolation(float64(r.clock), "job", total, budget, true)
			}
		}
	}

	// 4. Policy invocation and cap writes.
	r.carryOverhead = 0
	if syncing && prm.CapMode != CapNone {
		caps := r.policy.Allocate(syncIdx+1, measures)
		if caps != nil {
			for i := 0; i < nTotal; i++ {
				n := cl.Node(i)
				if (faultFree || cl.Alive(i)) && caps[i] > 0 && caps[i] != n.RAPL().LongCap() {
					n.RAPL().SetLongCap(caps[i])
					if prm.CapMode == CapLongShort {
						n.RAPL().SetShortCap(caps[i])
					}
				}
			}
		}
		r.carryOverhead = overhead
	}
}

// finish seals the run: totals, final caps and live counts. The Result
// owns all its storage; nothing in it aliases the Episode's pooled
// scratch, and the run state drops its policy/result references so a
// parked Episode retains nothing from the last run.
func (ep *Episode) finish(r *epRun) *Result {
	st, cl := ep.st, ep.cl
	res := r.res
	res.TotalTime = r.clock
	res.FinalCaps = make([]units.Watts, st.nTotal)
	for i := 0; i < st.nTotal; i++ {
		res.TotalEnergy += cl.Node(i).RAPL().Energy()
		res.FinalCaps[i] = cl.Node(i).RAPL().LongCap()
	}
	res.AliveSim, res.AliveAna = cl.AliveCounts()
	r.res, r.policy = nil, nil
	return res
}

// Run executes one episode. The context is checked at every
// synchronization interval: cancelling it makes Run return ctx.Err()
// promptly with no partial Result. The returned Result owns all its
// storage; nothing in it aliases the Episode's pooled scratch state.
func (ep *Episode) Run(ctx context.Context, prm EpisodeParams) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	r, err := ep.begin(prm)
	if err != nil {
		return nil, err
	}
	for syncIdx := range ep.st.schedule {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		ep.runWindow(r, syncIdx)
	}
	return ep.finish(r), nil
}

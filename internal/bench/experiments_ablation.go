// Ablation experiments: design choices DESIGN.md calls out, plus the
// paper's future-work extensions (Section VIII) implemented in package
// core. These go beyond the paper's figures; they quantify why SeeSAw is
// built the way it is and what the proposed extensions buy.
package bench

import (
	"fmt"
	"io"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/sched"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "abl-ewma",
		Title: "Ablation: SeeSAw with and without the Eq. 3-4 EWMA damping under measurement noise",
		Run:   runAblEWMA,
	})
	register(Experiment{
		ID:    "abl-window",
		Title: "Ablation: measurement window w vs reactivity with an intermittent high-demand analysis",
		Run:   runAblWindow,
	})
	register(Experiment{
		ID:    "abl-hier",
		Title: "Extension: hierarchical (per-node) allocation vs uniform partition caps under node heterogeneity",
		Run:   runAblHier,
	})
	register(Experiment{
		ID:    "abl-explore",
		Title: "Extension: exploration probes vs plain SeeSAw on the low-demand local optimum",
		Run:   runAblExplore,
	})
	register(Experiment{
		ID:    "abl-oracle",
		Title: "Reference: each policy vs the best static split found by exhaustive sweep",
		Run:   runAblOracle,
	})
	register(Experiment{
		ID:    "ext-sched",
		Title: "Extension: system-wide power management across concurrent in-situ jobs",
		Run:   runExtSched,
	})
	register(Experiment{
		ID:    "ext-powershift",
		Title: "Baseline: PowerShift-style offline profiles vs SeeSAw's online feedback",
		Run:   runExtPowerShift,
	})
	register(Experiment{
		ID:    "abl-transient",
		Title: "Ablation: the simulation startup transient's effect on each policy",
		Run:   runAblTransient,
	})
}

// ablRun executes one job with an explicitly constructed policy.
func ablRun(spec workload.Spec, policy core.Policy, cons core.Constraints,
	noise machine.NoiseModel, seed uint64) (*cosim.Result, error) {
	return cosim.Run(cosim.Config{
		Spec: spec, Policy: policy, Constraints: cons,
		CapMode: cosim.CapLong, Seed: seed, RunSeed: seed + 1, Noise: noise,
	})
}

// runAblEWMA compares damped vs undamped SeeSAw at increasing
// power-measurement noise: without the EWMA the allocator chases ripple.
func runAblEWMA(o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	// A small job: with only 4 nodes per partition the partition-level
	// power average barely filters per-node ripple, so the EWMA is the
	// only guard (at 64+ nodes the averaging itself hides this effect).
	spec := specAt(8, defaultDim, 1, steps, workload.Tasks("msd"))
	cons := constraintsFor(8, defaultCap)

	tbl := trace.NewTable("SeeSAw improvement over static, with and without EWMA damping (4+4 nodes)",
		"power ripple sigma", "with EWMA", "without EWMA")
	for _, sigma := range []float64{0.0, 0.035, 0.10} {
		noise := machine.DefaultNoise()
		noise.PowerSigma = sigma
		row := []any{fmt.Sprintf("%.3f", sigma)}
		for _, noEWMA := range []bool{false, true} {
			base, err := ablRun(spec, core.NewStatic(), cons, noise, o.BaseSeed+201)
			if err != nil {
				return err
			}
			ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1, NoEWMA: noEWMA})
			res, err := ablRun(spec, ss, cons, noise, o.BaseSeed+201)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%+.2f%%", improvementPct(base.TotalTime, res.TotalTime)))
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

// runAblWindow measures the cost of the w window under heavy
// measurement ripple on a small job (weak partition averaging). The
// result mirrors Figure 6: even then, frequent reallocation wins —
// the Eq. 3-4 EWMA (see abl-ewma) already supplies the noise
// protection, so larger windows only delay adaptation.
func runAblWindow(o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	spec := specAt(8, defaultDim, 1, steps, workload.Tasks("msd"))
	cons := constraintsFor(8, defaultCap)
	noise := machine.DefaultNoise()
	noise.PowerSigma = 0.10
	noise.JitterSigma = 0.02

	tbl := trace.NewTable("SeeSAw improvement over static under heavy measurement noise (4+4 nodes)",
		"w", "improvement")
	for _, win := range []int{1, 2, 4, 8, 16} {
		var imps []float64
		for r := 0; r < o.runs(defaultRuns); r++ {
			seed := o.BaseSeed + 211 + uint64(r)*defaultSeedGap
			base, err := ablRun(spec, core.NewStatic(), cons, noise, seed)
			if err != nil {
				return err
			}
			ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: win})
			res, err := ablRun(spec, ss, cons, noise, seed)
			if err != nil {
				return err
			}
			imps = append(imps, improvementPct(base.TotalTime, res.TotalTime))
		}
		tbl.AddRow(win, fmt.Sprintf("%+.2f%%", median(imps)))
	}
	return tbl.Render(w)
}

// runAblHier evaluates the hierarchical extension under strong node
// heterogeneity: uniform partition caps leave the slowest node gating
// the partition; per-node offsets claw some of that back.
func runAblHier(o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	spec := spec128(defaultMidDim, 1, steps, workload.Tasks("vacf"))
	cons := constraintsFor(2*nodes128Half, defaultCap)

	tbl := trace.NewTable("Runtime vs static under increasing node heterogeneity (128 nodes, VACF)",
		"node skew sigma", "seesaw", "seesaw-hierarchical")
	for _, skew := range []float64{0.004, 0.012, 0.025} {
		noise := machine.DefaultNoise()
		noise.SkewSigma = skew
		noise.PowerEffSigma = skew
		base, err := ablRun(spec, core.NewStatic(), cons, noise, o.BaseSeed+221)
		if err != nil {
			return err
		}
		row := []any{fmt.Sprintf("%.3f", skew)}
		for _, name := range []string{"plain", "hier"} {
			var pol core.Policy
			if name == "plain" {
				pol = core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
			} else {
				pol = core.MustNewHierarchical(DefaultHier(cons))
			}
			res, err := ablRun(spec, pol, cons, noise, o.BaseSeed+221)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%+.2f%%", improvementPct(base.TotalTime, res.TotalTime)))
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

// DefaultHier adapts the hierarchical defaults for the ablation.
func DefaultHier(c core.Constraints) core.HierarchicalConfig {
	cfg := core.DefaultHierarchicalConfig(c)
	return cfg
}

// runAblExplore targets the local optimum of Section VII-B2: plain
// SeeSAw stops giving the simulation power once the analysis's measured
// draw flattens; exploration probes test whether pushing further pays.
func runAblExplore(o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	cons := constraintsFor(2*nodes128Half, defaultCap)

	tbl := trace.NewTable("Low-demand analyses at dim=36: escaping the local optimum",
		"analysis", "seesaw", "seesaw-explore", "time-aware (upper reference)")
	for _, name := range []string{"rdf", "vacf"} {
		spec := spec128(defaultMidDim, 1, steps, workload.Tasks(name))
		noise := machine.DefaultNoise()
		base, err := ablRun(spec, core.NewStatic(), cons, noise, o.BaseSeed+231)
		if err != nil {
			return err
		}
		row := []any{name}
		policies := []core.Policy{
			core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1}),
			core.MustNewExploringSeeSAw(core.DefaultExploringConfig(cons)),
			core.MustNewTimeAware(core.DefaultTimeAwareConfig(cons)),
		}
		for _, pol := range policies {
			res, err := ablRun(spec, pol, cons, noise, o.BaseSeed+231)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%+.2f%%", improvementPct(base.TotalTime, res.TotalTime)))
		}
		tbl.AddRow(row...)
	}
	return tbl.Render(w)
}

// runAblTransient reruns the Fig 4 comparison with the simulation's
// startup overhead disabled, isolating how much of the time-aware
// policy's MSD failure is the transient's doing.
func runAblTransient(o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	cons := constraintsFor(2*nodes128Half, defaultCap)

	tbl := trace.NewTable("Improvement over static on LAMMPS+MSD, with and without the startup transient",
		"policy", "with transient", "without transient")
	for _, name := range []string{"seesaw", "time-aware", "power-aware"} {
		row := []any{name}
		for _, noTransient := range []bool{false, true} {
			spec := spec128(defaultDim, 1, steps, workload.Tasks("msd"))
			spec.NoSetupTransient = noTransient
			noise := machine.DefaultNoise()
			base, err := ablRun(spec, core.NewStatic(), cons, noise, o.BaseSeed+241)
			if err != nil {
				return err
			}
			pol, err := NewPolicy(name, cons, 1)
			if err != nil {
				return err
			}
			res, err := ablRun(spec, pol, cons, noise, o.BaseSeed+241)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%+.2f%%", improvementPct(base.TotalTime, res.TotalTime)))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "the transient is what lures the time-aware balancer the wrong way (Section VII-B1)")
	return err
}

// runAblOracle compares each policy against the best static split found
// by exhaustive sweep — the headroom an online policy could at most
// capture on a stationary workload.
func runAblOracle(o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	cons := constraintsFor(2*nodes128Half, defaultCap)

	tbl := trace.NewTable("Policies vs the best static split (oracle, 2 W sweep; 128 nodes)",
		"workload", "oracle split S/A (W)", "oracle gain", "seesaw", "time-aware")
	cases := []analysisCase{
		{"msd (dim=16)", defaultDim, workload.Tasks("msd")},
		{"vacf (dim=36)", defaultMidDim, workload.Tasks("vacf")},
	}
	for _, cs := range cases {
		spec := spec128(cs.dim, 1, steps, cs.analyses)
		noise := machine.DefaultNoise()
		oracle, err := cosim.FindBestStaticSplit(cosim.Config{
			Spec: spec, Constraints: cons, CapMode: cosim.CapLong,
			Seed: o.BaseSeed + 251, RunSeed: o.BaseSeed + 252, Noise: noise,
		}, 2)
		if err != nil {
			return err
		}
		row := []any{cs.label,
			fmt.Sprintf("%.0f / %.0f", float64(oracle.BestSimCap), float64(oracle.BestAnaCap)),
			fmt.Sprintf("%+.2f%%", oracle.Headroom()*100)}
		for _, name := range []string{"seesaw", "time-aware"} {
			pol, err := NewPolicy(name, cons, 1)
			if err != nil {
				return err
			}
			res, err := ablRun(spec, pol, cons, noise, o.BaseSeed+251)
			if err != nil {
				return err
			}
			base, err := ablRun(spec, core.NewStatic(), cons, noise, o.BaseSeed+251)
			if err != nil {
				return err
			}
			row = append(row, fmt.Sprintf("%+.2f%%", improvementPct(base.TotalTime, res.TotalTime)))
		}
		tbl.AddRow(row...)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w, "the oracle is the best fixed allocation chosen with hindsight; online policies cannot be expected to exceed it")
	return err
}

// runExtSched evaluates the system-wide integration (Section VIII):
// several in-situ jobs share a machine budget; the energy-aware system
// level feeds the compute-hungry job at the light jobs' expense.
func runExtSched(o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	mk := func(aware bool) (*sched.Result, error) {
		return sched.Run(sched.Config{
			Jobs: []sched.JobSpec{
				{Name: "md-large (dim=36)", PolicyName: "seesaw", Window: 1, Workload: workload.Spec{
					SimNodes: 32, AnaNodes: 32, Dim: 36, J: 1, Steps: steps,
					Analyses: workload.Tasks("vacf"),
				}},
				{Name: "md-small (dim=16)", PolicyName: "seesaw", Window: 1, Workload: workload.Spec{
					SimNodes: 32, AnaNodes: 32, Dim: 16, J: 1, Steps: steps,
					Analyses: workload.Tasks("msd1d"),
				}},
			},
			MachineBudget: 110 * 128,
			MinCap:        minCap, MaxCap: maxCap,
			Epochs:      8,
			SystemAware: aware,
			Seed:        o.BaseSeed + 261,
			Noise:       machine.DefaultNoise(),
		})
	}
	static, err := mk(false)
	if err != nil {
		return err
	}
	aware, err := mk(true)
	if err != nil {
		return err
	}
	tbl := trace.NewTable("Two concurrent in-situ jobs sharing a 128-node machine budget",
		"job", "node-proportional (s)", "energy-aware system level (s)", "job improvement", "final budget (kW)")
	for i := range static.Jobs {
		s, a := static.Jobs[i], aware.Jobs[i]
		tbl.AddRow(s.Name,
			fmt.Sprintf("%.0f", float64(s.Time)),
			fmt.Sprintf("%.0f", float64(a.Time)),
			fmt.Sprintf("%+.2f%%", improvementPct(s.Time, a.Time)),
			fmt.Sprintf("%.2f", float64(a.Budget)/1000))
	}
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "machine makespan: %.0f s -> %.0f s (%+.2f%%)\n",
		float64(static.Makespan), float64(aware.Makespan),
		improvementPct(static.Makespan, aware.Makespan))
	return err
}

// runExtPowerShift contrasts SeeSAw's online feedback with the offline-
// profile approach of the paper's closest related work (PowerShift,
// Zhang & Hoffmann ICPP'18): profiles collected on the matching workload
// perform well; profiles from a different analysis mislead the allocator
// — SeeSAw needs no profiles at all.
func runExtPowerShift(o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	cons := constraintsFor(2*nodes128Half, defaultCap)
	noise := machine.DefaultNoise()
	profCaps := []units.Watts{98, 104, 110, 116, 122}

	// Offline profiling pass: partition interval times at each cap,
	// measured with short static runs of the given workload.
	profileFor := func(tasks []workload.AnalysisTask, dim int) (core.Profile, core.Profile, error) {
		var simErr error
		sim := core.ProfilePartition(profCaps, func(cap units.Watts) units.Seconds {
			spec := spec128(dim, 1, steps/4, tasks)
			res, err := cosim.Run(cosim.Config{
				Spec: spec, Constraints: cons, CapMode: cosim.CapLong,
				InitialSimCap: cap, InitialAnaCap: units.ClampWatts(220-cap, minCap, maxCap),
				Seed: o.BaseSeed + 271, RunSeed: o.BaseSeed + 272, Noise: noise,
				Telemetry: o.Telemetry,
			})
			if err != nil {
				simErr = err
				return 1
			}
			var t float64
			for _, r := range res.SyncLog.Records {
				t += float64(r.SimTime)
			}
			return units.Seconds(t / float64(len(res.SyncLog.Records)))
		})
		var anaErr error
		ana := core.ProfilePartition(profCaps, func(cap units.Watts) units.Seconds {
			spec := spec128(dim, 1, steps/4, tasks)
			res, err := cosim.Run(cosim.Config{
				Spec: spec, Constraints: cons, CapMode: cosim.CapLong,
				InitialSimCap: units.ClampWatts(220-cap, minCap, maxCap), InitialAnaCap: cap,
				Seed: o.BaseSeed + 271, RunSeed: o.BaseSeed + 272, Noise: noise,
				Telemetry: o.Telemetry,
			})
			if err != nil {
				anaErr = err
				return 1
			}
			var t float64
			for _, r := range res.SyncLog.Records {
				t += float64(r.AnaTime)
			}
			return units.Seconds(t / float64(len(res.SyncLog.Records)))
		})
		if simErr != nil {
			return nil, nil, simErr
		}
		return sim, ana, anaErr
	}

	target := workload.Tasks("msd") // the production workload
	matched, matchedAna, err := profileFor(target, defaultDim)
	if err != nil {
		return err
	}
	stale, staleAna, err := profileFor(workload.Tasks("vacf"), defaultMidDim) // profiled on a different workload
	if err != nil {
		return err
	}

	spec := spec128(defaultDim, 1, steps, target)
	base, err := ablRun(spec, core.NewStatic(), cons, noise, o.BaseSeed+273)
	if err != nil {
		return err
	}
	row := func(name string, pol core.Policy) (string, error) {
		res, err := ablRun(spec, pol, cons, noise, o.BaseSeed+273)
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("%+.2f%%", improvementPct(base.TotalTime, res.TotalTime)), nil
	}

	tbl := trace.NewTable("Offline profiles vs online feedback on LAMMPS+MSD (128 nodes)",
		"policy", "improvement over static")
	v, err := row("powershift (matching profiles)", core.MustNewPowerShift(core.PowerShiftConfig{
		Constraints: cons, SimProfile: matched, AnaProfile: matchedAna, GridStep: 1}))
	if err != nil {
		return err
	}
	tbl.AddRow("powershift (matching profiles)", v)
	v, err = row("powershift (stale profiles)", core.MustNewPowerShift(core.PowerShiftConfig{
		Constraints: cons, SimProfile: stale, AnaProfile: staleAna, GridStep: 1}))
	if err != nil {
		return err
	}
	tbl.AddRow("powershift (profiles from a different workload)", v)
	ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})
	v, err = row("seesaw", ss)
	if err != nil {
		return err
	}
	tbl.AddRow("seesaw (no profiles)", v)
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err = fmt.Fprintln(w, "profiling cost (not charged above): 2 partitions x 5 caps x a quarter-length run each")
	return err
}

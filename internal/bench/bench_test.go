package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// fastOptions shrink every experiment to smoke-test size.
func fastOptions() Options {
	return Options{Steps: 25, Runs: 1, BaseSeed: 3}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig1", "fig2", "table1", "fig3a", "fig3b", "fig4", "fig5",
		"fig6", "table2", "fig7", "fig8", "fig9a", "fig9b",
		"abl-ewma", "abl-window", "abl-hier", "abl-explore", "abl-oracle", "ext-sched", "ext-powershift", "abl-transient",
		"faults", "topologies", "search", "hetero"}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d", len(IDs()), len(want))
	}
}

func TestFamiliesPartitionRegistry(t *testing.T) {
	seen := map[string]string{}
	for _, f := range Families() {
		if f.Description == "" {
			t.Errorf("family %s has no description", f.Name)
		}
		if len(f.IDs) == 0 {
			t.Errorf("family %s is empty", f.Name)
		}
		for _, id := range f.IDs {
			if prev, dup := seen[id]; dup {
				t.Errorf("experiment %s in both %s and %s", id, prev, f.Name)
			}
			seen[id] = f.Name
		}
	}
	for _, id := range IDs() {
		if _, ok := seen[id]; !ok {
			t.Errorf("experiment %s missing from all families", id)
		}
	}
	if len(seen) != len(IDs()) {
		t.Errorf("families list %d experiments, registry has %d", len(seen), len(IDs()))
	}
}

func TestGet(t *testing.T) {
	if _, ok := Get("fig1"); !ok {
		t.Error("fig1 not found")
	}
	if _, ok := Get("nope"); ok {
		t.Error("bogus id found")
	}
	if err := UnknownExperimentError("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Error("unknown experiment error unhelpful")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	// Every registered experiment must run cleanly at smoke size and
	// produce non-trivial output.
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(context.Background(), fastOptions(), &buf); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if buf.Len() < 50 {
				t.Errorf("%s produced only %d bytes of output", e.ID, buf.Len())
			}
		})
	}
}

func TestNewPolicy(t *testing.T) {
	cons := constraintsFor(8, 110)
	for _, name := range append(PolicyNames(), "static") {
		p, err := NewPolicy(name, cons, 1)
		if err != nil {
			t.Fatalf("NewPolicy(%s): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("policy name %q != %q", p.Name(), name)
		}
	}
	if _, err := NewPolicy("bogus", cons, 1); err == nil {
		t.Error("bogus policy accepted")
	}
}

func TestImprovementPct(t *testing.T) {
	if got := improvementPct(100, 90); got != 10 {
		t.Errorf("improvement = %v, want 10", got)
	}
	if got := improvementPct(100, 110); got != -10 {
		t.Errorf("improvement = %v, want -10", got)
	}
	if improvementPct(0, 5) != 0 {
		t.Error("zero base should give 0")
	}
}

func TestMedian(t *testing.T) {
	if median(nil) != 0 {
		t.Error("empty median")
	}
	if median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if median([]float64{4, 1, 3, 2}) != 2.5 {
		t.Error("even median")
	}
}

func TestSpecHelpers(t *testing.T) {
	s := spec128(16, 1, 100, nil)
	if s.SimNodes != 64 || s.AnaNodes != 64 {
		t.Errorf("spec128 nodes = %d/%d", s.SimNodes, s.AnaNodes)
	}
	s2 := specAt(1024, 48, 2, 200, nil)
	if s2.SimNodes != 512 || s2.AnaNodes != 512 || s2.Dim != 48 || s2.J != 2 {
		t.Errorf("specAt wrong: %+v", s2)
	}
	// Odd node count still sums correctly.
	s3 := specAt(7, 16, 1, 10, nil)
	if s3.SimNodes+s3.AnaNodes != 7 {
		t.Error("specAt lost a node")
	}
}

func TestMedianImprovementPairsJobs(t *testing.T) {
	// The improvement of a policy against itself must be ~0: paired
	// seeds mean the static baseline shares the job's placement.
	imp, _, err := medianImprovement(context.Background(), cell{
		spec:   specAt(8, 16, 1, 30, testTasks()),
		policy: "static",
	}, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if imp != 0 {
		t.Errorf("static vs static improvement = %v, want exactly 0", imp)
	}
}

func TestRunCellDefaults(t *testing.T) {
	res, err := runCell(context.Background(), cell{spec: specAt(8, 16, 1, 20, testTasks()), policy: "seesaw", jobSeed: 1, runSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Error("no runtime")
	}
	// Default cap mode applies a 110 W cap.
	rec := res.SyncLog.Records[0]
	if rec.SimCap != units.Watts(110) {
		t.Errorf("default cap = %v, want 110", rec.SimCap)
	}
}

func testTasks() []workload.AnalysisTask {
	return workload.Tasks("msd")
}

func TestConstraintsForBudget(t *testing.T) {
	c := constraintsFor(128, 110)
	if c.Budget != 14080 {
		t.Errorf("budget = %v", c.Budget)
	}
	if err := c.Validate(128); err != nil {
		t.Errorf("constraints invalid: %v", err)
	}
	if _ = core.EvenSplit(c, 128); core.EvenSplit(c, 128) != 110 {
		t.Error("even split wrong")
	}
}

func TestRunSelfTest(t *testing.T) {
	var buf bytes.Buffer
	ok, err := RunSelfTest(context.Background(), Options{BaseSeed: 1}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("selftest failed:\n%s", buf.String())
	}
	if c := strings.Count(buf.String(), "PASS"); c != 5 {
		t.Errorf("expected 5 PASS lines, got %d:\n%s", c, buf.String())
	}
}

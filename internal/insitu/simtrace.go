package insitu

import (
	"context"

	"seesaw/internal/lammps"
)

// simTrace is the recording of one simulation rank's mini-MD run.
//
// Every simulation rank constructs its System from the same shared
// Config.Lammps — the paper's "simulation processes have equal work"
// assumption — and the engine is deterministic with no force coupling
// between ranks, so every sub-box trajectory is bitwise identical. The
// driver therefore integrates the physics once per job and replays the
// recording on every rank instead of repeating the same floating-point
// work SimRanks times. The recorder makes exactly the System calls
// runSimRank makes, in the same order, so every recorded work count,
// frame and thermo scalar is the float the per-rank run would have
// produced.
type simTrace struct {
	n           int
	frameBytes  int
	thermoBytes int
	steps       []simStepTrace
	finalEnergy float64
}

// simStepTrace is one Verlet step of the recording.
type simStepTrace struct {
	integrate lammps.WorkCount
	frame     *lammps.Frame    // snapshot shipped at a synchronization step
	rebuilt   bool             // a non-sync skin-violation rebuild ran
	neighbor  lammps.WorkCount // BuildNeighbors work when frame != nil or rebuilt
	force     lammps.WorkCount // ComputeForces + FinalIntegrate
	ke, pe    float64          // thermo scalars after the step
}

// recordSimTrace integrates one system through the job's step schedule,
// mirroring runSimRank's call sequence. The integration runs before any
// rank goroutine exists, so it checks ctx itself to keep long jobs
// cancellable during the recording.
func recordSimTrace(ctx context.Context, cfg *Config, syncSet map[int]bool) (*simTrace, error) {
	sys, err := lammps.New(cfg.Lammps)
	if err != nil {
		return nil, err
	}
	tr := &simTrace{
		n:           sys.N,
		frameBytes:  sys.FrameBytes(),
		thermoBytes: sys.ThermoBytes(),
		steps:       make([]simStepTrace, cfg.Steps),
	}
	for step := 1; step <= cfg.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st := &tr.steps[step-1]
		st.integrate = sys.InitialIntegrate()
		if syncSet[step] {
			frame := sys.Snapshot()
			st.frame = &frame
			st.neighbor = sys.BuildNeighbors()
		} else if sys.NeedsRebuild() {
			st.rebuilt = true
			st.neighbor = sys.BuildNeighbors()
		}
		w := sys.ComputeForces()
		w.Add(sys.FinalIntegrate())
		st.force = w
		st.ke = sys.KineticEnergy()
		st.pe = sys.PotentialEnergy()
	}
	tr.finalEnergy = sys.TotalEnergy()
	return tr, nil
}

// cloneFrame returns a fresh copy of the step's recorded frame,
// equivalent to the per-rank Snapshot it replaces: each analysis rank
// still receives its own frame object per source.
func (st *simStepTrace) cloneFrame() *lammps.Frame {
	f := *st.frame
	f.Pos = append([]lammps.Vec3(nil), st.frame.Pos...)
	f.Unwrp = append([]lammps.Vec3(nil), st.frame.Unwrp...)
	f.Vel = append([]lammps.Vec3(nil), st.frame.Vel...)
	f.Typ = append([]int(nil), st.frame.Typ...)
	return &f
}

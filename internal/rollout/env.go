// Package rollout turns the deterministic co-simulation into a
// policy-evaluation environment with an explicit observation/action
// step API (the ROADMAP's policy-search substrate, SPARS-style):
//
//	env := rollout.NewEnv()
//	obs, err := env.Reset(spec)
//	for !done {
//	    caps := agent.Act(obs)          // any allocator, in- or out-of-tree
//	    obs, done = env.Step(caps)
//	}
//	res, err := env.Result()
//
// The environment is byte-identical to in-loop policy execution: an
// Env run is the existing cosim / workflow driver with the policy
// callback inverted into a channel rendezvous, so a registry policy
// driven through Env reproduces exactly the report bytes of the same
// policy run inside the driver (the golden test pins this). One
// rollout of 4096 nodes takes ~130 ms, so batched rollouts over the
// campaign engine (Batch) reach thousands of policy evaluations per
// second — the "millions of runs" scale story.
package rollout

import (
	"context"
	"fmt"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/telemetry"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workflow"
	"seesaw/internal/workload"
)

// Spec describes one environment episode: a full co-simulated job minus
// the policy, which the caller supplies action by action.
type Spec struct {
	// Workload is the job (node counts, dim, j, steps, analyses).
	Workload workload.Spec
	// Topology selects the driver: "" or "space-shared" runs the
	// classic two-partition cosim driver; any other registered topology
	// ("time-shared", "in-transit", "dag") runs the workflow engine on
	// the equivalent graph.
	Topology string
	// CapPerNode is the per-node budget (110 W, the paper's setting,
	// when zero); Constraints are derived from it unless set explicitly.
	CapPerNode units.Watts
	// Constraints, when non-zero, override the derived budget/range.
	Constraints core.Constraints
	// Seed and RunSeed drive the noise streams (see cosim.Config).
	Seed, RunSeed uint64
	// Noise configures node variability; zero disables it.
	Noise machine.NoiseModel
	// Faults is an optional deterministic fault plan.
	Faults *fault.Plan
	// Classes assigns device classes to node ids (machine.ClassMap
	// grammar); nil keeps the cluster homogeneous.
	Classes *machine.ClassMap
	// Telemetry, when non-nil, instruments the underlying run.
	Telemetry *telemetry.Hub
}

// paper-default cap range, mirrored from the experiment harness.
const (
	defaultCapPerNode = units.Watts(110)
	defaultMinCap     = units.Watts(98)
	defaultMaxCap     = units.Watts(215)
)

// constraints resolves the spec's constraint set.
func (s Spec) constraints(physicalNodes int) core.Constraints {
	if s.Constraints != (core.Constraints{}) {
		return s.Constraints
	}
	capPer := s.CapPerNode
	if capPer == 0 {
		capPer = defaultCapPerNode
	}
	return core.Constraints{
		Budget: capPer * units.Watts(physicalNodes),
		MinCap: defaultMinCap,
		MaxCap: defaultMaxCap,
	}
}

// Observation is what the environment exposes between actions: the
// per-node measurements the in-loop policy would have received, plus
// the slack/phase aggregates the telemetry layer computes from them.
type Observation struct {
	// Step is the 1-based synchronization index.
	Step int
	// Measures are the per-node measurements of the interval that just
	// ended, in world-rank order (what Policy.Allocate receives).
	Measures []core.NodeMeasure
	// SimTime and AnaTime are the partitions' slowest busy times;
	// Slack is the interval's normalized slack |T_S - T_A| / wall.
	SimTime, AnaTime units.Seconds
	Slack            float64
	// SimPower and AnaPower are the partitions' mean per-node measured
	// powers over the interval.
	SimPower, AnaPower units.Watts
	// AliveSim and AliveAna are the partitions' live node counts.
	AliveSim, AliveAna int
}

// aggregate fills the observation's partition aggregates from its
// measures (the same arithmetic the drivers' SyncRecords use).
func (o *Observation) aggregate() {
	var wall units.Seconds
	for _, m := range o.Measures {
		if m.Health == core.Dead {
			continue
		}
		switch m.Role {
		case core.RoleSimulation:
			o.AliveSim++
			o.SimPower += m.Power
			if m.BusyTime > o.SimTime {
				o.SimTime = m.BusyTime
			}
		case core.RoleAnalysis:
			o.AliveAna++
			o.AnaPower += m.Power
			if m.BusyTime > o.AnaTime {
				o.AnaTime = m.BusyTime
			}
		}
		if m.Time > wall {
			wall = m.Time
		}
	}
	if o.AliveSim > 0 {
		o.SimPower /= units.Watts(o.AliveSim)
	}
	if o.AliveAna > 0 {
		o.AnaPower /= units.Watts(o.AliveAna)
	}
	o.Slack = trace.SyncRecord{SimTime: o.SimTime, AnaTime: o.AnaTime}.Slack()
}

// Result summarizes a finished episode, uniformly over both drivers.
type Result struct {
	// TotalTime is the job's main-loop wall time.
	TotalTime units.Seconds
	// TotalEnergy sums all nodes' energy.
	TotalEnergy units.Joules
	// SyncLog records each synchronization interval.
	SyncLog *trace.SyncLog
	// Cosim is the underlying driver result for space-shared episodes
	// (nil for workflow episodes); Workflow the converse.
	Cosim    *cosim.Result
	Workflow *workflow.Result
}

// proxy inverts the Policy callback into a channel rendezvous: the
// driver's Allocate call publishes the measurements as an observation
// and blocks until the environment's Step supplies the caps. The
// context unblocks both directions when the episode is abandoned.
type proxy struct {
	ctx  context.Context
	obs  chan Observation
	caps chan []units.Watts
}

// Name implements core.Policy.
func (*proxy) Name() string { return "rollout-env" }

// Allocate implements core.Policy.
func (p *proxy) Allocate(step int, nodes []core.NodeMeasure) []units.Watts {
	o := Observation{Step: step, Measures: append([]core.NodeMeasure(nil), nodes...)}
	o.aggregate()
	select {
	case p.obs <- o:
	case <-p.ctx.Done():
		return nil
	}
	select {
	case caps := <-p.caps:
		return caps
	case <-p.ctx.Done():
		return nil
	}
}

// Env is a rollout environment. The zero value is not usable; call
// NewEnv. An Env runs one episode at a time: Reset starts (or restarts)
// an episode, Step advances it, Result reads the finished episode's
// outcome. Env is not safe for concurrent use; run one Env per worker.
type Env struct {
	px     *proxy
	cancel context.CancelFunc
	done   chan struct{} // closed when the driver goroutine exits
	res    *Result
	err    error
	fin    bool // episode finished (done observed)
}

// NewEnv returns an idle environment.
func NewEnv() *Env { return &Env{} }

// Reset starts a new episode from spec and returns the first
// observation — the measurements of the first synchronization interval,
// exactly as the in-loop policy would first see them. A previous
// unfinished episode is abandoned (its driver unwinds via context
// cancellation).
func (e *Env) Reset(spec Spec) (Observation, error) {
	e.Close()
	ctx, cancel := context.WithCancel(context.Background())
	px := &proxy{ctx: ctx, obs: make(chan Observation), caps: make(chan []units.Watts)}
	e.px, e.cancel = px, cancel
	e.done = make(chan struct{})
	e.res, e.err, e.fin = nil, nil, false

	run, err := driverFor(spec, px)
	if err != nil {
		cancel()
		close(e.done)
		return Observation{}, err
	}
	go func() {
		defer close(e.done)
		e.res, e.err = run(ctx)
	}()

	select {
	case o := <-px.obs:
		return o, nil
	case <-e.done:
		// The episode ended before the first allocation (error, or a
		// workload with no capped syncs).
		e.fin = true
		if e.err != nil {
			return Observation{}, e.err
		}
		return Observation{}, fmt.Errorf("rollout: episode finished before the first observation")
	}
}

// Step applies the action — per-node caps aligned with the previous
// observation's Measures, or nil to leave caps unchanged — and runs the
// episode to the next decision point. done reports episode completion;
// after done, read the outcome with Result.
func (e *Env) Step(caps []units.Watts) (Observation, bool) {
	if e.px == nil || e.fin {
		return Observation{}, true
	}
	select {
	case e.px.caps <- caps:
	case <-e.done:
		e.fin = true
		return Observation{}, true
	}
	select {
	case o := <-e.px.obs:
		return o, false
	case <-e.done:
		e.fin = true
		return Observation{}, true
	}
}

// Result returns the finished episode's outcome. Calling it before Step
// reported done is an error.
func (e *Env) Result() (*Result, error) {
	if e.px == nil {
		return nil, fmt.Errorf("rollout: no episode started")
	}
	if !e.fin {
		return nil, fmt.Errorf("rollout: episode still running")
	}
	return e.res, e.err
}

// Close abandons the current episode, if any, and releases its driver.
func (e *Env) Close() {
	if e.cancel != nil {
		e.cancel()
		<-e.done
		e.px, e.cancel, e.done = nil, nil, nil
		e.fin = false
	}
}

// driverFor compiles the spec into a driver invocation running the
// proxy as its policy.
func driverFor(spec Spec, px *proxy) (func(context.Context) (*Result, error), error) {
	if spec.Topology == "" || spec.Topology == "space-shared" {
		cfg := cosim.Config{
			Spec:        spec.Workload,
			Policy:      px,
			Constraints: spec.constraints(spec.Workload.SimNodes + spec.Workload.AnaNodes),
			CapMode:     cosim.CapLong,
			Seed:        spec.Seed,
			RunSeed:     spec.RunSeed,
			Noise:       spec.Noise,
			Faults:      spec.Faults,
			Classes:     spec.Classes,
			Telemetry:   spec.Telemetry,
		}
		return func(ctx context.Context) (*Result, error) {
			res, err := cosim.Run(ctx, cfg)
			if err != nil {
				return nil, err
			}
			return &Result{
				TotalTime:   res.TotalTime,
				TotalEnergy: res.TotalEnergy,
				SyncLog:     res.SyncLog,
				Cosim:       res,
			}, nil
		}, nil
	}

	topo, err := workflow.Build(spec.Topology, workflow.Params{
		Nodes:    spec.Workload.SimNodes + spec.Workload.AnaNodes,
		Dim:      spec.Workload.Dim,
		J:        spec.Workload.J,
		Steps:    spec.Workload.Steps,
		Analyses: spec.Workload.Analyses,
	})
	if err != nil {
		return nil, fmt.Errorf("rollout: %w", err)
	}
	cfg := workflow.Config{
		Graph:       topo.Graph,
		Steps:       spec.Workload.Steps,
		SyncEvery:   spec.Workload.J,
		Policy:      px,
		Constraints: topo.ScaleCaps(spec.constraints(topo.PhysicalNodes)),
		Seed:        spec.Seed,
		RunSeed:     spec.RunSeed,
		Noise:       spec.Noise,
		Faults:      spec.Faults,
		Classes:     spec.Classes,
		Telemetry:   spec.Telemetry,
	}
	return func(ctx context.Context) (*Result, error) {
		res, err := workflow.Run(ctx, cfg)
		if err != nil {
			return nil, err
		}
		return &Result{
			TotalTime:   res.MainLoopTime,
			TotalEnergy: res.TotalEnergy,
			SyncLog:     res.SyncLog,
			Workflow:    res,
		}, nil
	}, nil
}

// Run drives one full episode of spec with pol supplying every action —
// self-play over the step API. It is the rollout primitive Batch fans
// out, and the subject of BenchmarkRollouts.
func Run(ctx context.Context, spec Spec, pol core.Policy) (*Result, error) {
	env := NewEnv()
	defer env.Close()
	obs, err := env.Reset(spec)
	if err != nil {
		return nil, err
	}
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		caps := pol.Allocate(obs.Step, obs.Measures)
		next, done := env.Step(caps)
		if done {
			return env.Result()
		}
		obs = next
	}
}

// Package units provides strongly typed physical quantities used across
// the SeeSAw power-management stack: power (Watts), energy (Joules) and
// simulated time (Seconds).
//
// All simulation code uses virtual time expressed in seconds as float64;
// the Seconds type exists to keep signatures self-documenting without the
// overhead of time.Duration conversions in hot loops.
package units

import (
	"fmt"
	"math"
)

// Watts is electrical power in Watts.
type Watts float64

// Joules is energy in Joules.
type Joules float64

// Seconds is a span of simulated (virtual) time in seconds.
type Seconds float64

// String formats the power with a W suffix, e.g. "110.0 W".
func (w Watts) String() string { return fmt.Sprintf("%.1f W", float64(w)) }

// String formats the energy with a J suffix, e.g. "12.3 J".
func (j Joules) String() string { return fmt.Sprintf("%.1f J", float64(j)) }

// String formats the duration with an s suffix, e.g. "4.00 s".
func (s Seconds) String() string { return fmt.Sprintf("%.3f s", float64(s)) }

// Energy returns the energy consumed by drawing power w for duration d.
func Energy(w Watts, d Seconds) Joules { return Joules(float64(w) * float64(d)) }

// AvgPower returns the average power corresponding to energy j spent over
// duration d. It returns 0 for non-positive durations.
func AvgPower(j Joules, d Seconds) Watts {
	if d <= 0 {
		return 0
	}
	return Watts(float64(j) / float64(d))
}

// ClampWatts limits w to the inclusive range [lo, hi].
func ClampWatts(w, lo, hi Watts) Watts {
	if w < lo {
		return lo
	}
	if w > hi {
		return hi
	}
	return w
}

// IsFinite reports whether the value is neither NaN nor infinite.
func IsFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// NearlyEqual reports whether a and b differ by no more than tol.
func NearlyEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

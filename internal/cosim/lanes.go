// Lane-stepped episode evaluation: K episodes of one JobState advance
// in lockstep through the synchronization schedule. A grid sweep
// evaluating many (budget, w, policy) points of the same job walks the
// per-window state — schedule entry, phase tables, memoized noise
// traces — once per window and feeds it to every lane while it is hot
// in cache, instead of streaming the whole job's tables through the
// cache once per grid point. Each lane owns a full Episode (its own
// node population and scratch), so lane results are byte-identical to
// running the same episodes back to back; the lockstep only changes
// the order windows of *different* episodes execute in, never the
// bytes of any one episode (the rollout lane goldens pin this).
package cosim

import (
	"context"
	"fmt"
)

// Lanes is a fixed-width set of Episodes over one shared JobState,
// advanced window by window in lockstep. A Lanes is not safe for
// concurrent use; batch workers own one each.
type Lanes struct {
	st  *JobState
	eps []*Episode
}

// NewLanes builds width episodes over the job state. Width is the
// upper bound on the episodes one Run advances together; a Run may use
// fewer lanes than the set holds.
func (st *JobState) NewLanes(width int) (*Lanes, error) {
	if width < 1 {
		return nil, fmt.Errorf("cosim: lane width %d, need >= 1", width)
	}
	l := &Lanes{st: st, eps: make([]*Episode, width)}
	for i := range l.eps {
		ep, err := st.NewEpisode()
		if err != nil {
			return nil, err
		}
		l.eps[i] = ep
	}
	return l, nil
}

// Width returns the lane count.
func (l *Lanes) Width() int { return len(l.eps) }

// Run executes one episode per parameter set, len(prms) <= Width, all
// advancing in lockstep: each schedule window is checked for
// cancellation once and then executed across every lane before any
// lane moves on. Results are in prms order, each byte-identical to
// Episode.Run of the same parameters. Like Episode.Run, a cancelled
// context returns ctx.Err() with no partial results.
func (l *Lanes) Run(ctx context.Context, prms []EpisodeParams) ([]*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(prms) == 0 {
		return nil, nil
	}
	if len(prms) > len(l.eps) {
		return nil, fmt.Errorf("cosim: %d episode params for %d lanes", len(prms), len(l.eps))
	}
	runs := make([]*epRun, len(prms))
	for i, prm := range prms {
		r, err := l.eps[i].begin(prm)
		if err != nil {
			return nil, err
		}
		runs[i] = r
	}
	for syncIdx := range l.st.schedule {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for i, r := range runs {
			l.eps[i].runWindow(r, syncIdx)
		}
	}
	out := make([]*Result, len(prms))
	for i, r := range runs {
		out[i] = l.eps[i].finish(r)
	}
	return out, nil
}

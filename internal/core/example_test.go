package core_test

import (
	"fmt"

	"seesaw/internal/core"
	"seesaw/internal/units"
)

// The paper's Figure 2 numbers: a 210 W budget shared by a slow 90 W
// task and a fast 120 W task.
func ExampleOptimalSplit() {
	blue, red := core.OptimalSplit(210, 100, 90, 60, 120)
	fmt.Printf("blue %.1f W, red %.1f W\n", float64(blue), float64(red))
	// Output: blue 116.7 W, red 93.3 W
}

func ExamplePredictEqualTime() {
	t := core.PredictEqualTime(210, 100, 90, 60, 120)
	fmt.Printf("both finish at %.1f s\n", float64(t))
	// Output: both finish at 77.1 s
}

// A minimal online allocation: four simulation nodes measure equal times
// but lower power than four analysis nodes, so SeeSAw hands the analysis
// partition more of the budget.
func ExampleSeeSAw_Allocate() {
	cons := core.Constraints{Budget: 110 * 8, MinCap: 98, MaxCap: 215}
	ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 1})

	var nodes []core.NodeMeasure
	for i := 0; i < 8; i++ {
		role := core.RoleSimulation
		power := 104.0
		if i >= 4 {
			role = core.RoleAnalysis
			power = 112.0
		}
		nodes = append(nodes, core.NodeMeasure{
			Role: role, Time: 4.0, BusyTime: 4.0, Power: units.Watts(power), Cap: 110,
		})
	}
	caps := ss.Allocate(1, nodes)
	fmt.Printf("sim %.1f W, ana %.1f W\n", float64(caps[0]), float64(caps[4]))
	// Output: sim 105.9 W, ana 114.1 W
}

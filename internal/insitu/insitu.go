// Package insitu implements the Verlet-Splitanalysis in-situ workflow of
// Malakar et al. that the paper evaluates (Section V): physically
// separate partitions of simulation and analysis processes advancing a
// LAMMPS-style molecular-dynamics run, synchronizing every j Verlet
// steps. Each Verlet step follows the paper's eight-step flow:
//
//  1. S performs initial integration
//  2. S sends particle coordinates and velocities to the A partition
//  3. both partitions rebuild a subset of data structures
//  4. S sends the particle count to A for verification
//  5. both partitions update neighbor lists
//  6. S computes forces and final integration
//  7. S invokes A at the end of the time step
//  8. optional output of the state of S (thermodynamic data)
//
// Steps 2-4 constitute the synchronization phase; they (and 5 and 7) run
// only every j-th step. Power allocation (PoLiMER's poli_power_alloc) is
// invoked by every rank immediately before the synchronization, exactly
// as in the instrumented LAMMPS of Section VI-C.
//
// Ranks execute real mini-MD (package lammps) and real analyses (package
// analysis); their computational work is converted to virtual time and
// power through each rank's simulated node (package machine), so the
// power-management policies observe the same time/power structure the
// paper's Theta runs expose.
package insitu

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"seesaw/internal/analysis"
	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/lammps"
	"seesaw/internal/machine"
	"seesaw/internal/mpi"
	"seesaw/internal/rapl"
	"seesaw/internal/telemetry"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workflow"
)

// Config describes one in-situ job.
type Config struct {
	// SimRanks and AnaRanks are the partition sizes (one rank per node,
	// equal counts in all of the paper's Section VII results).
	SimRanks, AnaRanks int
	// Steps is the number of Verlet steps (the paper uses 400).
	Steps int
	// SyncEvery is j: simulation and analysis synchronize every j-th
	// step.
	SyncEvery int
	// Lammps configures each simulation rank's sub-box.
	Lammps lammps.Config
	// Analyses names the analyses to run (see analysis.Names). Every
	// analysis rank runs the full set in sequence, as in the paper's
	// "all" configuration.
	Analyses []string
	// AnalysisIntervals optionally overrides the synchronization
	// interval of individual analyses (Table II's mixed-interval
	// scenario); analyses not listed run every SyncEvery steps.
	AnalysisIntervals map[string]int
	// Topology selects the analysis partition's placement: "" or
	// "space-shared" (dedicated nodes, the paper's setup),
	// "time-shared" (each analysis rank co-resides with a simulation
	// rank, splitting the physical node into two half-node power
	// domains; requires equal partitions — Constraints and the initial
	// caps describe full physical nodes and are halved internally), or
	// "in-transit" (frames reach the analysis partition through a
	// staging hop the simulation ranks pay for on the virtual clock).
	Topology string
	// Policy is the power-allocation policy evaluated on the root rank.
	Policy core.Policy
	// Constraints carry the global budget and cap range.
	Constraints core.Constraints
	// InitialSimCap / InitialAnaCap are the initial per-node caps
	// (Figure 7's unbalanced starts); zero means an even split of the
	// budget.
	InitialSimCap, InitialAnaCap units.Watts
	// ShortTermCap additionally installs short-term RAPL caps.
	ShortTermCap bool
	// Seed drives all stochastic behaviour deterministically.
	Seed uint64
	// Faults is an optional deterministic fault plan keyed to the
	// synchronization schedule. A slow-node excursion degrades the
	// affected rank's node in place; a kill takes the whole job down —
	// as a dead rank does under real MPI, where its collectives can
	// never complete — and Run returns a *fault.KilledError.
	Faults *fault.Plan
	// Noise configures node variability; zero values give a
	// deterministic run.
	Noise machine.NoiseModel
	// Machine is the node performance model (DefaultModel if zero);
	// with Classes set it describes the default class.
	Machine machine.Model
	// Rapl is the per-node RAPL configuration (Theta if zero); with
	// Classes set it describes the default class.
	Rapl rapl.Config
	// Classes assigns device classes to world ranks (machine.ClassMap
	// grammar); nil keeps the cluster homogeneous.
	Classes *machine.ClassMap
	// ClassRegistry optionally overrides the built-in class presets.
	ClassRegistry map[string]machine.Class
	// Cost is the communication cost model (DefaultCost if zero).
	Cost mpi.CostModel
	// PowerSample, when positive, records per-node power traces sampled
	// at this period via the PoLiMER monitoring API. Samples within one
	// step are interpolated (the rank polls its monitor at step
	// granularity); for phase-resolved traces use the cosim driver's
	// TraceSegments.
	PowerSample units.Seconds
	// NoAnaMemo disables the analysis-side memoization (see anatrace.go)
	// and runs every analysis rank's kernels in place, as the seed did.
	// Escape hatch for A/B validation; results are byte-identical either
	// way (the golden test pins this).
	NoAnaMemo bool
	// Telemetry, when non-nil, receives metrics and structured events
	// from every rank: RAPL cap writes and throttling, collective
	// rendezvous waits (via the mpi runtime), synchronization barriers
	// and policy decisions (via PoLiMER). Nil disables instrumentation
	// at no cost.
	Telemetry *telemetry.Hub

	// placement is Topology parsed; wattScale/timeScale adapt the
	// per-phase power envelope and nominal time to the rank's power
	// domain (0.5/2 on a time-shared half-node, 1/1 otherwise).
	placement            workflow.Placement
	wattScale, timeScale float64
}

// normalize fills zero-valued sub-configurations with defaults.
func (c *Config) normalize() error {
	if c.SimRanks <= 0 || c.AnaRanks <= 0 {
		return fmt.Errorf("insitu: need positive partition sizes, got sim=%d ana=%d", c.SimRanks, c.AnaRanks)
	}
	if c.Steps <= 0 {
		return fmt.Errorf("insitu: steps must be positive, got %d", c.Steps)
	}
	if c.SyncEvery <= 0 {
		c.SyncEvery = 1
	}
	if c.Lammps.Atoms == 0 {
		c.Lammps = lammps.DefaultConfig()
	}
	if len(c.Analyses) == 0 {
		return fmt.Errorf("insitu: at least one analysis required")
	}
	if c.Policy == nil {
		c.Policy = core.NewStatic()
	}
	// Machine/Rapl zero-value defaults are owned by cluster.Config.Defaults,
	// the one normalization step shared by every driver.
	if c.Cost == (mpi.CostModel{}) {
		c.Cost = mpi.DefaultCost()
	}
	placement, err := workflow.ParsePlacement(c.Topology)
	if err != nil {
		return fmt.Errorf("insitu: topology: %w", err)
	}
	c.placement = placement
	c.wattScale, c.timeScale = 1, 1
	if placement == workflow.TimeShared {
		if c.SimRanks != c.AnaRanks {
			return fmt.Errorf("insitu: time-shared topology pairs partitions rank-for-rank, got sim=%d ana=%d", c.SimRanks, c.AnaRanks)
		}
		// The caller's constraints and caps describe full physical
		// nodes; under time-sharing each rank owns a half-node domain
		// and the machine has half the nodes the rank count suggests.
		c.Constraints.Budget /= 2
		c.Constraints.MinCap /= 2
		c.Constraints.MaxCap /= 2
		c.InitialSimCap /= 2
		c.InitialAnaCap /= 2
		c.wattScale, c.timeScale = 0.5, 2
	}
	nodes := c.SimRanks + c.AnaRanks
	if err := c.Constraints.Validate(nodes); err != nil {
		return err
	}
	even := core.EvenSplit(c.Constraints, nodes)
	if c.InitialSimCap == 0 {
		c.InitialSimCap = even
	}
	if c.InitialAnaCap == 0 {
		c.InitialAnaCap = even
	}
	return nil
}

// analysisInterval returns the synchronization interval of one analysis.
func (c *Config) analysisInterval(name string) int {
	if j, ok := c.AnalysisIntervals[name]; ok && j > 0 {
		return j
	}
	return c.SyncEvery
}

// syncSteps precomputes the set of steps at which any analysis is due —
// the global synchronization schedule all ranks follow.
func (c *Config) syncSteps() []int {
	due := map[int]bool{}
	for step := 1; step <= c.Steps; step++ {
		for _, a := range c.Analyses {
			if step%c.analysisInterval(a) == 0 {
				due[step] = true
				break
			}
		}
	}
	steps := make([]int, 0, len(due))
	for s := range due {
		steps = append(steps, s)
	}
	sort.Ints(steps)
	return steps
}

// Result summarizes one in-situ job run.
type Result struct {
	// MainLoopTime is the virtual runtime of the Verlet loop (max over
	// all ranks), the paper's "time to complete the simulation".
	MainLoopTime units.Seconds
	// Syncs counts simulation/analysis synchronizations.
	Syncs int
	// SyncLog holds the per-synchronization records from the root.
	SyncLog *trace.SyncLog
	// AnalysisResults maps analysis name to its final output (from the
	// first analysis rank).
	AnalysisResults map[string][]float64
	// TotalEnergy is the summed energy of all nodes.
	TotalEnergy units.Joules
	// OverheadTotal is the root's cumulative allocator overhead.
	OverheadTotal units.Seconds
	// FinalSimEnergy is the MD total energy at the end (for physics
	// sanity checks).
	FinalSimEnergy float64
	// PowerTrace holds per-partition sampled power when
	// Config.PowerSample was set.
	PowerTrace *trace.Recorder
}

// tags for point-to-point messages.
const (
	tagFrame = iota + 100
	tagCount
)

// Run executes the in-situ job and returns its result. Cancelling the
// context unwinds every rank goroutine — including ranks blocked at a
// collective or in a receive — and Run returns ctx.Err().
//
// The job executes as a two-stage workflow graph on the workflow
// engine, which owns cluster construction, PoLiMER setup, placement
// (including the time-shared half-node split and the in-transit staging
// hop) and result aggregation; this driver supplies the per-rank bodies
// that replay real mini-MD and real analyses.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	if err := cfg.normalize(); err != nil {
		return nil, err
	}
	syncSchedule := cfg.syncSteps()
	tables, err := newJobTables(ctx, &cfg, syncSchedule)
	if err != nil {
		return nil, err
	}

	res := &Result{
		AnalysisResults: make(map[string][]float64),
		SyncLog:         &trace.SyncLog{},
	}
	var mu sync.Mutex // guards the body-written Result fields

	host := ""
	if cfg.placement == workflow.TimeShared {
		host = "sim"
	}
	g := workflow.Graph{
		Name: "insitu",
		Stages: []workflow.Stage{
			{Name: "sim", Role: core.RoleSimulation, Ranks: cfg.SimRanks,
				Body: func(rc *workflow.RankCtx) { runSimRank(rc, &cfg, tables, res, &mu) }},
			{Name: "ana", Role: core.RoleAnalysis, Ranks: cfg.AnaRanks,
				Placement: cfg.placement, Host: host,
				Body: func(rc *workflow.RankCtx) { runAnaRank(rc, &cfg, tables, syncSchedule, res, &mu) }},
		},
		// Declaration order fixes the edge tags to the historical
		// tagFrame/tagCount values the bodies send on.
		Edges: []workflow.Edge{
			{From: "sim", To: "ana", BytesPerRank: tables.trace.frameBytes},
			{From: "sim", To: "ana", BytesPerRank: 8},
		},
	}
	wres, err := workflow.Run(ctx, workflow.Config{
		Graph:         g,
		Steps:         cfg.Steps,
		SyncSteps:     syncSchedule,
		Policy:        cfg.Policy,
		Constraints:   cfg.Constraints,
		InitialCaps:   map[string]units.Watts{"sim": cfg.InitialSimCap, "ana": cfg.InitialAnaCap},
		ShortTermCap:  cfg.ShortTermCap,
		Seed:          cfg.Seed,
		Faults:        cfg.Faults,
		Noise:         cfg.Noise,
		Machine:       cfg.Machine,
		Rapl:          cfg.Rapl,
		Classes:       cfg.Classes,
		ClassRegistry: cfg.ClassRegistry,
		Cost:          cfg.Cost,
		PowerSample:   cfg.PowerSample,
		Telemetry:     cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	res.MainLoopTime = wres.MainLoopTime
	res.Syncs = wres.Syncs
	res.SyncLog = wres.SyncLog
	res.TotalEnergy = wres.TotalEnergy
	res.OverheadTotal = wres.OverheadTotal
	res.PowerTrace = wres.PowerTrace
	return res, nil
}

// pairedAnaRank returns the analysis world rank paired with a simulation
// rank (one analysis process serves one or more simulation processes).
func pairedAnaRank(simRank, nSim, nAna int) int {
	return nSim + simRank%nAna
}

// simPhaseSet and anaPhaseSet are the per-step loops' phase specs,
// resolved out of the simPhases/anaPhases maps once per job so a 4096-
// rank run doesn't hash the same six strings on every Verlet step of
// every rank.
type simPhaseSet struct {
	integrate, sync, rebuild, neighbor, force, output phaseSpec
}

type anaPhaseSet struct {
	rebuild, neighbor phaseSpec
}

// jobTables bundles the derived, read-only lookup structures shared by
// every rank goroutine: resolved phase specs, the synchronization-step
// set (built once instead of per sim rank), and the sim→ana pairing
// lists (built in one O(nSim) pass instead of every analysis rank
// scanning all simulation ranks).
type jobTables struct {
	sim     simPhaseSet
	ana     anaPhaseSet
	syncSet map[int]bool
	// sources[a] lists the simulation world ranks feeding analysis world
	// rank SimRanks+a, in ascending order.
	sources [][]int
	// trace is the job's mini-MD trajectory, integrated once and
	// replayed by every simulation rank (see simTrace).
	trace *simTrace
	// ana is the analysis-side compute recording, integrated once per
	// distinct source count and replayed by every analysis rank (see
	// anaTrace); nil when Config.NoAnaMemo is set.
	anaTr *anaTrace
}

func newJobTables(ctx context.Context, cfg *Config, syncSchedule []int) (*jobTables, error) {
	t := &jobTables{
		sim: simPhaseSet{
			integrate: simPhases["integrate"],
			sync:      simPhases["sync"],
			rebuild:   simPhases["rebuild"],
			neighbor:  simPhases["neighbor"],
			force:     simPhases["force"],
			output:    simPhases["output"],
		},
		ana: anaPhaseSet{
			rebuild:  anaPhases["rebuild"],
			neighbor: anaPhases["neighbor"],
		},
		syncSet: make(map[int]bool, len(syncSchedule)),
		sources: make([][]int, cfg.AnaRanks),
	}
	for _, s := range syncSchedule {
		t.syncSet[s] = true
	}
	for s := 0; s < cfg.SimRanks; s++ {
		a := pairedAnaRank(s, cfg.SimRanks, cfg.AnaRanks) - cfg.SimRanks
		t.sources[a] = append(t.sources[a], s)
	}
	tr, err := recordSimTrace(ctx, cfg, t.syncSet)
	if err != nil {
		return nil, err
	}
	t.trace = tr
	if !cfg.NoAnaMemo {
		at, err := recordAnaTrace(ctx, cfg, syncSchedule, t.sources, tr)
		if err != nil {
			return nil, err
		}
		t.anaTr = at
	}
	return t, nil
}

// runSimRank is the per-step loop of a simulation rank. The physics was
// integrated once by recordSimTrace; each rank replays the recording
// (identical work, frames and thermo scalars on every rank) and spends
// its time in the parts that do differ per rank: virtual-time phases,
// power allocation, faults and communication.
func runSimRank(rc *workflow.RankCtx, cfg *Config, tables *jobTables, res *Result, mu *sync.Mutex) {
	r, simComm, node := rc.Rank, rc.Part, rc.Node
	mgr := rc.Mgr
	tr := tables.trace
	dst := rc.OutDest(0)
	phases := &tables.sim

	syncIdx := 0
	for step := 1; step <= cfg.Steps; step++ {
		st := &tr.steps[step-1]
		// Step 1: initial integration.
		runWork(r, node, cfg, phases.integrate, st.integrate)

		if st.frame != nil {
			syncIdx++
			rc.ApplyFaults(syncIdx)
			// Power allocation immediately before the synchronization.
			mgr.PowerAlloc()

			// Step 2: ship coordinates and velocities to the analysis
			// partition. With the analysis side memoized the receiver only
			// reads the frame, so every rank ships the shared recorded
			// snapshot instead of cloning ~frameBytes per send; the legacy
			// in-place path consumes frames and keeps its own copies.
			// Under an in-transit topology StageTransfer first pays the
			// staging hop on this rank's clock.
			runWork(r, node, cfg, phases.sync, lammps.WorkCount{Ops: float64(tr.n) * 6, Bytes: tr.frameBytes})
			rc.StageTransfer(0, syncIdx)
			if cfg.NoAnaMemo {
				r.Send(dst, tagFrame, st.cloneFrame(), tr.frameBytes)
			} else {
				r.Send(dst, tagFrame, st.frame, tr.frameBytes)
			}

			// Step 3: rebuild a subset of data structures.
			runWork(r, node, cfg, phases.rebuild, lammps.WorkCount{Ops: float64(tr.n) * 4})

			// Step 4: particle count for verification.
			rc.StageTransfer(1, syncIdx)
			r.Send(dst, tagCount, tr.n, 8)

			// Step 5: update neighbor lists.
			runWork(r, node, cfg, phases.neighbor, st.neighbor)
		} else if st.rebuilt {
			// Physical-safety rebuild between synchronizations (the
			// Verlet skin would otherwise be violated for large j);
			// charged as ordinary neighbor work without synchronization.
			runWork(r, node, cfg, phases.neighbor, st.neighbor)
		}

		// Step 6: force computation and final integration.
		runWork(r, node, cfg, phases.force, st.force)

		// Step 8: thermodynamic output at the end of each time step
		// (communication- and I/O-intensive).
		sums := simComm.AllreduceSum([]float64{st.ke, st.pe})
		_ = sums
		runWork(r, node, cfg, phases.output, lammps.WorkCount{Ops: float64(tr.n), Bytes: tr.thermoBytes * simComm.Size()})
	}

	mu.Lock()
	if simComm.Rank() == 0 {
		res.FinalSimEnergy = tr.finalEnergy
	}
	mu.Unlock()
}

// runAnaRank is the per-synchronization loop of an analysis rank. The
// analysis kernels were integrated once per distinct source count by
// recordAnaTrace; each rank replays its shape's recording (identical
// work counts and result vectors on every rank of that shape) and
// spends its time in the parts that do differ per rank: virtual-time
// phases, power allocation, faults and communication. With
// Config.NoAnaMemo the rank instead runs its own kernels in place, as
// the seed did; the golden test pins both paths to identical bytes.
func runAnaRank(rc *workflow.RankCtx, cfg *Config, tables *jobTables, syncSchedule []int,
	res *Result, mu *sync.Mutex) {

	r, anaComm, node := rc.Rank, rc.Part, rc.Node
	mgr := rc.Mgr
	at := tables.anaTr
	// Legacy in-place path: instantiate this rank's own analyses.
	var tasks []analysis.Analysis
	if at == nil {
		tasks = make([]analysis.Analysis, 0, len(cfg.Analyses))
		for _, name := range cfg.Analyses {
			a, err := analysis.New(name)
			if err != nil {
				panic(err)
			}
			tasks = append(tasks, a)
		}
	}

	// Which simulation ranks feed this analysis rank?
	sources := tables.sources[r.WorldRank()-cfg.SimRanks]
	phases := &tables.ana
	var rec *anaRecording
	if at != nil {
		rec = at.recordings[len(sources)]
	}

	for si, step := range syncSchedule {
		rc.ApplyFaults(si + 1)
		// Power allocation immediately before the synchronization.
		mgr.PowerAlloc()

		flat := 0
		for _, src := range sources {
			// Step 2 (receive side): the frame arrives; time spent
			// blocked on the simulation is synchronization wait, idling
			// the node.
			before := r.Clock()
			payload := r.Recv(src, tagFrame)
			mgr.NoteExternalWait(r.Clock() - before)
			frame := payload.(*lammps.Frame)

			// Step 3: rebuild analysis-side data structures.
			runWork(r, node, cfg, phases.rebuild, lammps.WorkCount{Ops: float64(len(frame.Pos)) * 4})

			// Step 4: verification of the particle count.
			before = r.Clock()
			count := r.Recv(src, tagCount).(int)
			mgr.NoteExternalWait(r.Clock() - before)
			if count != len(frame.Pos) {
				panic(fmt.Sprintf("insitu: particle count mismatch: %d vs %d", count, len(frame.Pos)))
			}

			// Step 5: analysis-side neighbor/bookkeeping update.
			runWork(r, node, cfg, phases.neighbor, lammps.WorkCount{Ops: float64(len(frame.Pos)) * 2})

			// Step 7: the analyses due at this step run in sequence.
			if at != nil {
				for _, ti := range at.due[si] {
					spec := &at.specs[ti]
					w := rec.work[si][flat]
					flat++
					nominal := units.Seconds(w.Ops*spec.prof.SecondsPerOp + float64(w.Bytes)*bytesSecPerByte)
					runPhase(r, node, cfg, machine.Phase{
						Name:        spec.name,
						Nominal:     nominal,
						Demand:      spec.prof.Demand,
						Saturation:  spec.prof.Saturation,
						Sensitivity: spec.prof.Sensitivity,
					})
				}
				continue
			}
			for _, t := range tasks {
				if step%cfg.analysisInterval(t.Name()) != 0 {
					continue
				}
				w := t.Consume(frame)
				p := t.Profile()
				nominal := units.Seconds(w.Ops*p.SecondsPerOp + float64(w.Bytes)*bytesSecPerByte)
				runPhase(r, node, cfg, machine.Phase{
					Name:        t.Name(),
					Nominal:     nominal,
					Demand:      p.Demand,
					Saturation:  p.Saturation,
					Sensitivity: p.Sensitivity,
				})
			}
		}
	}

	if anaComm.Rank() == 0 {
		mu.Lock()
		if at != nil {
			for name, v := range rec.results {
				res.AnalysisResults[name] = v
			}
		} else {
			for _, t := range tasks {
				res.AnalysisResults[t.Name()] = t.Result()
			}
		}
		mu.Unlock()
	}
}

// phaseSpec maps a workflow phase to its machine characteristics and the
// work-to-time conversion constants.
type phaseSpec struct {
	demand     units.Watts
	saturation units.Watts
	sens       float64
	secPerOp   float64
	secPerByte float64
}

// bytesSecPerByte is the analysis-side cost of touching frame bytes.
const bytesSecPerByte = 1.0e-7

// simPhases characterizes the LAMMPS phases (Section V): compute phases
// saturate near 140 W per node; communication/IO phases draw little and
// gain almost nothing from power. The work-to-time constants are
// calibrated so the default 256-atom sub-box — a miniature stand-in for
// the ~100k atoms per Theta node at dim=16 — yields the paper's ~4 s
// between synchronizations (Figure 4d); the sub-box physics is real, the
// constants absorb the scale factor.
var simPhases = map[string]phaseSpec{
	"integrate": {demand: 106, saturation: 118, sens: 0.90, secPerOp: 4.3e-5},
	"sync":      {demand: 105, saturation: 112, sens: 0.10, secPerOp: 6.9e-5, secPerByte: 1.0e-6},
	"rebuild":   {demand: 107, saturation: 114, sens: 0.35, secPerOp: 1.46e-4},
	"neighbor":  {demand: 108, saturation: 118, sens: 0.45, secPerOp: 6.0e-6, secPerByte: 5.0e-6},
	"force":     {demand: 108, saturation: 120, sens: 0.95, secPerOp: 5.9e-5},
	"output":    {demand: 105, saturation: 110, sens: 0.10, secPerOp: 2.25e-3, secPerByte: 1.0e-6},
}

// anaPhases characterizes the analysis partition's bookkeeping phases.
var anaPhases = map[string]phaseSpec{
	"rebuild":  {demand: 125, saturation: 118, sens: 0.35, secPerOp: 1.0e-4},
	"neighbor": {demand: 120, saturation: 115, sens: 0.30, secPerOp: 7.5e-5},
}

// runWork converts a work count into a machine phase, executes it, and
// advances the rank's virtual clock.
func runWork(r *mpi.Rank, node *machine.Node, cfg *Config, spec phaseSpec, w lammps.WorkCount) {
	nominal := units.Seconds(w.Ops*spec.secPerOp + float64(w.Bytes)*spec.secPerByte)
	if nominal <= 0 {
		return
	}
	runPhase(r, node, cfg, machine.Phase{
		Name:        "phase",
		Nominal:     nominal,
		Demand:      spec.demand,
		Saturation:  spec.saturation,
		Sensitivity: spec.sens,
	})
}

// runPhase executes one phase on the rank's node and advances the
// virtual clock. On a time-shared half-node the phase is adapted to the
// rank's power domain: half the demand/saturation envelope, twice the
// nominal time (half the machine does the same work).
func runPhase(r *mpi.Rank, node *machine.Node, cfg *Config, ph machine.Phase) {
	if cfg.wattScale != 1 {
		ph.Nominal = units.Seconds(float64(ph.Nominal) * cfg.timeScale)
		ph.Demand = units.Watts(float64(ph.Demand) * cfg.wattScale)
		ph.Saturation = units.Watts(float64(ph.Saturation) * cfg.wattScale)
	}
	exec := node.Run(ph, cfg.Noise)
	r.Elapse(exec.Duration)
}

// Oracle search: the best *static* partition split, found by exhaustive
// sweep. No online policy can be expected to beat the best static
// allocation chosen with hindsight on a stationary workload, so the
// oracle bounds how much of the available headroom each policy actually
// captures — a reference the paper does not compute but that makes the
// reproduction's relative numbers interpretable.
package cosim

import (
	"context"
	"fmt"

	"seesaw/internal/core"
	"seesaw/internal/units"
)

// OracleResult reports the sweep's outcome.
type OracleResult struct {
	// BestSimCap and BestAnaCap are the per-node caps of the fastest
	// static split found.
	BestSimCap, BestAnaCap units.Watts
	// BestTime is its runtime.
	BestTime units.Seconds
	// EvenTime is the runtime of the even split (the paper's baseline),
	// for headroom computation.
	EvenTime units.Seconds
	// Evaluated counts the splits tried.
	Evaluated int
}

// Headroom returns the fraction of runtime the best static split saves
// over the even split.
func (o OracleResult) Headroom() float64 {
	if o.EvenTime <= 0 {
		return 0
	}
	return (float64(o.EvenTime) - float64(o.BestTime)) / float64(o.EvenTime)
}

// FindBestStaticSplit sweeps per-node simulation caps in stepW
// increments (the analysis receives the remaining budget) and runs the
// full co-simulation for each, returning the fastest static allocation.
// The config's Policy is ignored; each candidate runs the static policy.
// Cancelling the context aborts the sweep with ctx.Err().
func FindBestStaticSplit(ctx context.Context, cfg Config, stepW units.Watts) (*OracleResult, error) {
	if stepW <= 0 {
		return nil, fmt.Errorf("cosim: oracle step must be positive, got %v", stepW)
	}
	// One JobState and one node population serve the whole sweep: every
	// candidate differs only in its initial caps, which are episode
	// parameters. Each ep.Run is byte-identical to a fresh cosim.Run
	// (the pooling goldens pin this), so the oracle's answers are
	// unchanged while the sweep skips per-candidate cluster builds.
	st, err := NewJobState(cfg)
	if err != nil {
		return nil, err
	}
	nSim := cfg.Spec.SimNodes
	nAna := cfg.Spec.AnaNodes
	if cfg.CapMode != CapNone {
		if err := cfg.Constraints.Validate(nSim + nAna); err != nil {
			return nil, err
		}
	}
	ep, err := st.NewEpisode()
	if err != nil {
		return nil, err
	}
	budget := cfg.Constraints.Budget
	min, max := cfg.Constraints.MinCap, cfg.Constraints.MaxCap

	res := &OracleResult{}
	even := core.EvenSplit(cfg.Constraints, nSim+nAna)
	evaluate := func(simCap, anaCap units.Watts) (*Result, error) {
		return ep.Run(ctx, EpisodeParams{
			// Policy nil runs the static policy.
			Constraints:   cfg.Constraints,
			InitialSimCap: simCap,
			InitialAnaCap: anaCap,
			CapMode:       cfg.CapMode,
		})
	}

	for simCap := min; simCap <= max; simCap += stepW {
		anaCap := (budget - simCap*units.Watts(nSim)) / units.Watts(nAna)
		if anaCap < min || anaCap > max {
			continue
		}
		out, err := evaluate(simCap, anaCap)
		if err != nil {
			return nil, err
		}
		res.Evaluated++
		if res.Evaluated == 1 || out.TotalTime < res.BestTime {
			res.BestTime = out.TotalTime
			res.BestSimCap = simCap
			res.BestAnaCap = anaCap
		}
		if simCap == even {
			res.EvenTime = out.TotalTime
		}
	}
	if res.Evaluated == 0 {
		return nil, fmt.Errorf("cosim: no feasible static split under budget %v", budget)
	}
	if res.EvenTime == 0 {
		// The sweep grid missed the exact even split; run it directly.
		out, err := evaluate(even, even)
		if err != nil {
			return nil, err
		}
		res.EvenTime = out.TotalTime
	}
	return res, nil
}

// The compiler: lay a validated Graph out on the two-partition cluster
// substrate. Stages with RoleSimulation take the low node ids (the
// cluster layer's convention), every rank owns one node (a half-node
// under TimeShared), and each edge is resolved into per-rank routing
// tables generalizing the insitu driver's sim->ana pairing.
package workflow

import (
	"seesaw/internal/core"
)

// tagBase is the first point-to-point tag assigned to graph edges, in
// declaration order. It deliberately matches the insitu driver's frame
// tag so the paper benchmark compiled onto a 2-edge graph keeps its
// historical wire protocol.
const tagBase = 100

// compiledStage is one stage with its world-rank placement resolved.
type compiledStage struct {
	Stage
	// Index is the stage's layout position: simulation-role stages
	// first, declaration order within each class. It doubles as the
	// partition-communicator Split color.
	Index int
	// Start is the stage's first world rank; the stage owns
	// [Start, Start+Ranks).
	Start int
	// scale is the physical-node fraction each rank owns: 1 for
	// dedicated nodes, 0.5 when the stage time-shares (as host or
	// guest).
	scale float64
	ins   []*compiledEdge
	outs  []*compiledEdge
}

// compiledEdge is one edge with its per-rank routing resolved.
type compiledEdge struct {
	Edge
	tag      int
	from, to *compiledStage
	// dst[p] is the consumer world rank fed by producer-local rank p
	// (generalizing insitu's pairedAnaRank: consumer-local = p modulo
	// consumer ranks).
	dst []int
	// sources[c] lists the producer world ranks feeding consumer-local
	// rank c, ascending.
	sources [][]int
}

// Plan is a compiled graph, ready for the engine.
type Plan struct {
	graph Graph
	// NWorld is the total rank (and node) count; SimNodes/AnaNodes are
	// the partition sizes handed to the cluster layer.
	NWorld, SimNodes, AnaNodes int
	// Scales is the per-node physical fraction (nil when every stage is
	// space-shared or in-transit, i.e. all full nodes).
	Scales []float64
	// PhysicalNodes counts physical machines: time-shared pairs count
	// once.
	PhysicalNodes int

	stages    []*compiledStage
	byName    map[string]*compiledStage
	rankStage []int
}

// Compile validates the graph and resolves its node layout and edge
// routing.
func Compile(g Graph) (*Plan, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	p := &Plan{graph: g, byName: make(map[string]*compiledStage, len(g.Stages))}

	// Layout: simulation-role stages first, then the rest, declaration
	// order within each class.
	for _, simPass := range []bool{true, false} {
		for i := range g.Stages {
			st := g.Stages[i]
			if (st.Role == core.RoleSimulation) != simPass {
				continue
			}
			cs := &compiledStage{Stage: st, Index: len(p.stages), Start: p.NWorld, scale: 1}
			p.stages = append(p.stages, cs)
			p.byName[st.Name] = cs
			p.NWorld += st.Ranks
			if simPass {
				p.SimNodes += st.Ranks
			} else {
				p.AnaNodes += st.Ranks
			}
		}
	}
	p.rankStage = make([]int, p.NWorld)
	for _, cs := range p.stages {
		for r := cs.Start; r < cs.Start+cs.Ranks; r++ {
			p.rankStage[r] = cs.Index
		}
	}

	// Time-shared pairs split their physical nodes into half-node RAPL
	// domains; everyone else owns full nodes.
	p.PhysicalNodes = p.NWorld
	shared := false
	scales := make([]float64, p.NWorld)
	for i := range scales {
		scales[i] = 1
	}
	for _, cs := range p.stages {
		if cs.Placement != TimeShared {
			continue
		}
		shared = true
		host := p.byName[cs.Host]
		cs.scale, host.scale = 0.5, 0.5
		for r := 0; r < cs.Ranks; r++ {
			scales[cs.Start+r] = 0.5
			scales[host.Start+r] = 0.5
		}
		p.PhysicalNodes -= cs.Ranks
	}
	if shared {
		p.Scales = scales
	}

	// Edge routing. Declaration order fixes the tags, so a graph is a
	// complete wire-protocol spec.
	for i := range g.Edges {
		e := g.Edges[i]
		ce := &compiledEdge{
			Edge: e,
			tag:  tagBase + i,
			from: p.byName[e.From],
			to:   p.byName[e.To],
		}
		if ce.Transfer == nil && ce.to.Placement == InTransit {
			tm := DefaultTransferModel()
			ce.Transfer = &tm
		}
		ce.dst = make([]int, ce.from.Ranks)
		ce.sources = make([][]int, ce.to.Ranks)
		for s := 0; s < ce.from.Ranks; s++ {
			c := s % ce.to.Ranks
			ce.dst[s] = ce.to.Start + c
			ce.sources[c] = append(ce.sources[c], ce.from.Start+s)
		}
		ce.from.outs = append(ce.from.outs, ce)
		ce.to.ins = append(ce.to.ins, ce)
	}
	return p, nil
}

// StageNames returns the stage names in layout order.
func (p *Plan) StageNames() []string {
	names := make([]string, len(p.stages))
	for i, cs := range p.stages {
		names[i] = cs.Name
	}
	return names
}

// StageOf returns the name of the stage owning a world rank.
func (p *Plan) StageOf(world int) string { return p.stages[p.rankStage[world]].Name }

// stageFor returns the compiled stage owning a world rank.
func (p *Plan) stageFor(world int) *compiledStage { return p.stages[p.rankStage[world]] }

// Package jobfile loads and validates JSON job descriptions for the
// command-line tools, so experiment cells can be versioned as files
// instead of flag soup:
//
//	{
//	  "nodes": 128,
//	  "dim": 16,
//	  "j": 1,
//	  "steps": 400,
//	  "analyses": [{"name": "msd"}, {"name": "rdf", "interval": 4}],
//	  "policy": "seesaw",
//	  "window": 1,
//	  "cap_per_node_w": 110,
//	  "initial_sim_cap_w": 120,
//	  "initial_ana_cap_w": 100,
//	  "cap_mode": "long",
//	  "seed": 1,
//	  "faults": "kill:3@40,slow:0@10x2+20"
//	}
package jobfile

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/units"
	"seesaw/internal/workflow"
	"seesaw/internal/workload"
)

// Analysis is one analysis entry.
type Analysis struct {
	Name     string `json:"name"`
	Interval int    `json:"interval,omitempty"`
}

// Job is the JSON schema of one co-simulated job.
type Job struct {
	Nodes    int        `json:"nodes"`
	SimNodes int        `json:"sim_nodes,omitempty"`
	AnaNodes int        `json:"ana_nodes,omitempty"`
	Dim      int        `json:"dim"`
	J        int        `json:"j,omitempty"`
	Steps    int        `json:"steps"`
	Analyses []Analysis `json:"analyses"`

	Policy string `json:"policy,omitempty"`
	Window int    `json:"window,omitempty"`

	CapPerNodeW    float64 `json:"cap_per_node_w,omitempty"`
	InitialSimCapW float64 `json:"initial_sim_cap_w,omitempty"`
	InitialAnaCapW float64 `json:"initial_ana_cap_w,omitempty"`
	MinCapW        float64 `json:"min_cap_w,omitempty"`
	MaxCapW        float64 `json:"max_cap_w,omitempty"`
	CapMode        string  `json:"cap_mode,omitempty"` // "none", "long", "long+short"

	Seed    uint64 `json:"seed,omitempty"`
	RunSeed uint64 `json:"run_seed,omitempty"`
	NoNoise bool   `json:"no_noise,omitempty"`

	// Faults is an optional fault plan in internal/fault's grammar,
	// e.g. "kill:3@40,slow:0@10x2+20".
	Faults string `json:"faults,omitempty"`

	// Classes assigns device classes to node ids in the
	// machine.ClassMap grammar, e.g. "0-31:cpu,32-63:gpu"; empty keeps
	// the cluster homogeneous. Names resolve against the built-in
	// presets (machine.PresetNames).
	Classes string `json:"classes,omitempty"`

	// Topology selects the workflow placement: "" or "space-shared"
	// runs the classic two-partition driver; "time-shared",
	// "in-transit" and "dag" run the job through the workflow-graph
	// engine (see internal/workflow).
	Topology string `json:"topology,omitempty"`
}

// Load reads a job description from r. Unknown top-level keys are
// rejected (a typoed key must not silently fall back to a default), as
// is trailing data after the job object.
func Load(r io.Reader) (*Job, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var j Job
	if err := dec.Decode(&j); err != nil {
		if strings.Contains(err.Error(), "unknown field") {
			return nil, fmt.Errorf("jobfile: %w (valid keys: %s)", err, strings.Join(validKeys(), ", "))
		}
		return nil, fmt.Errorf("jobfile: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("jobfile: trailing data after job object")
	}
	if err := j.Validate(); err != nil {
		return nil, err
	}
	return &j, nil
}

// validKeys lists the job schema's top-level JSON keys, derived from
// the struct tags so the error hint can never drift from the schema.
func validKeys() []string {
	var keys []string
	t := reflect.TypeOf(Job{})
	for i := 0; i < t.NumField(); i++ {
		tag := t.Field(i).Tag.Get("json")
		if name, _, _ := strings.Cut(tag, ","); name != "" && name != "-" {
			keys = append(keys, name)
		}
	}
	return keys
}

// LoadFile reads a job description from a file path.
func LoadFile(path string) (*Job, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("jobfile: %w", err)
	}
	defer f.Close()
	return Load(f)
}

// Validate checks the description and fills no defaults (Build applies
// them).
func (j *Job) Validate() error {
	if j.Nodes <= 0 && (j.SimNodes <= 0 || j.AnaNodes <= 0) {
		return fmt.Errorf("jobfile: need nodes, or sim_nodes and ana_nodes")
	}
	if j.Nodes > 0 && (j.SimNodes > 0 || j.AnaNodes > 0) && j.SimNodes+j.AnaNodes != j.Nodes {
		return fmt.Errorf("jobfile: nodes=%d inconsistent with sim_nodes+ana_nodes=%d",
			j.Nodes, j.SimNodes+j.AnaNodes)
	}
	if j.Dim <= 0 {
		return fmt.Errorf("jobfile: dim must be positive")
	}
	if j.Steps <= 0 {
		return fmt.Errorf("jobfile: steps must be positive")
	}
	if len(j.Analyses) == 0 {
		return fmt.Errorf("jobfile: at least one analysis required")
	}
	switch j.CapMode {
	case "", "none", "long", "long+short":
	default:
		return fmt.Errorf("jobfile: unknown cap_mode %q", j.CapMode)
	}
	if j.Policy != "" && !policy.Valid(j.Policy) {
		return fmt.Errorf("jobfile: unknown policy %q (valid: %s)", j.Policy, strings.Join(policy.Names(), ", "))
	}
	if _, err := fault.Parse(j.Faults); err != nil {
		return fmt.Errorf("jobfile: %w", err)
	}
	if cm, err := machine.ParseClassMap(j.Classes); err != nil {
		return fmt.Errorf("jobfile: %w", err)
	} else if !cm.Empty() {
		resolve := func(name string) bool { _, ok := machine.PresetClass(name); return ok }
		n := j.Nodes
		if n == 0 {
			n = j.SimNodes + j.AnaNodes
		}
		if err := cm.Validate(n, resolve, machine.PresetNames()); err != nil {
			return fmt.Errorf("jobfile: %w", err)
		}
	}
	switch j.Topology {
	case "":
	default:
		valid := false
		for _, n := range workflow.TopologyNames() {
			if j.Topology == n {
				valid = true
			}
		}
		if !valid {
			return fmt.Errorf("jobfile: unknown topology %q (valid: %v)", j.Topology, workflow.TopologyNames())
		}
	}
	return nil
}

// Build converts the description into a runnable cosim configuration,
// applying the paper's defaults (110 W per node, 98/215 W range, long
// caps, w=1).
func (j *Job) Build() (cosim.Config, error) {
	simNodes, anaNodes := j.SimNodes, j.AnaNodes
	if simNodes == 0 || anaNodes == 0 {
		simNodes = j.Nodes / 2
		anaNodes = j.Nodes - simNodes
	}
	tasks := make([]workload.AnalysisTask, len(j.Analyses))
	for i, a := range j.Analyses {
		tasks[i] = workload.AnalysisTask{Name: a.Name, Interval: a.Interval}
	}
	spec := workload.Spec{
		SimNodes: simNodes, AnaNodes: anaNodes,
		Dim: j.Dim, J: j.J, Steps: j.Steps, Analyses: tasks,
	}
	if err := spec.Validate(); err != nil {
		return cosim.Config{}, fmt.Errorf("jobfile: %w", err)
	}

	capPer := j.CapPerNodeW
	if capPer == 0 {
		capPer = 110
	}
	minCap := j.MinCapW
	if minCap == 0 {
		minCap = 98
	}
	maxCap := j.MaxCapW
	if maxCap == 0 {
		maxCap = 215
	}
	cons := core.Constraints{
		Budget: units.Watts(capPer) * units.Watts(simNodes+anaNodes),
		MinCap: units.Watts(minCap),
		MaxCap: units.Watts(maxCap),
	}

	window := j.Window
	if window < 1 {
		window = 1
	}
	policyName := j.Policy
	if policyName == "" {
		policyName = "static"
	}
	policy, err := buildPolicy(policyName, cons, window)
	if err != nil {
		return cosim.Config{}, err
	}

	mode := cosim.CapLong
	switch j.CapMode {
	case "none":
		mode = cosim.CapNone
	case "long+short":
		mode = cosim.CapLongShort
	}

	noise := machine.DefaultNoise()
	if j.NoNoise {
		noise = machine.NoiseModel{}
	}
	seed := j.Seed
	if seed == 0 {
		seed = 1
	}
	plan, err := fault.Parse(j.Faults)
	if err != nil {
		return cosim.Config{}, fmt.Errorf("jobfile: %w", err)
	}
	classes, err := machine.ParseClassMap(j.Classes)
	if err != nil {
		return cosim.Config{}, fmt.Errorf("jobfile: %w", err)
	}
	return cosim.Config{
		Spec:          spec,
		Policy:        policy,
		Constraints:   cons,
		InitialSimCap: units.Watts(j.InitialSimCapW),
		InitialAnaCap: units.Watts(j.InitialAnaCapW),
		CapMode:       mode,
		Seed:          seed,
		RunSeed:       j.RunSeed,
		Noise:         noise,
		Faults:        plan,
		Classes:       classes,
	}, nil
}

// BuildWorkflow converts the description into a workflow-engine run of
// the job's topology (Build runs the classic two-partition driver and
// ignores the topology field). The nodes count is the physical machine
// size; the builders place ranks on it per topology.
func (j *Job) BuildWorkflow() (workflow.Config, error) {
	name := j.Topology
	if name == "" {
		name = "space-shared"
	}
	nodes := j.Nodes
	if nodes == 0 {
		if j.SimNodes != j.AnaNodes {
			return workflow.Config{}, fmt.Errorf("jobfile: topology %q pairs partitions: sim_nodes (%d) must equal ana_nodes (%d)",
				name, j.SimNodes, j.AnaNodes)
		}
		nodes = j.SimNodes + j.AnaNodes
	}
	tasks := make([]workload.AnalysisTask, len(j.Analyses))
	for i, a := range j.Analyses {
		tasks[i] = workload.AnalysisTask{Name: a.Name, Interval: a.Interval}
	}
	topo, err := workflow.Build(name, workflow.Params{
		Nodes: nodes, Dim: j.Dim, J: j.J, Steps: j.Steps, Analyses: tasks,
	})
	if err != nil {
		return workflow.Config{}, fmt.Errorf("jobfile: %w", err)
	}

	capPer := j.CapPerNodeW
	if capPer == 0 {
		capPer = 110
	}
	minCap := j.MinCapW
	if minCap == 0 {
		minCap = 98
	}
	maxCap := j.MaxCapW
	if maxCap == 0 {
		maxCap = 215
	}
	cons := topo.ScaleCaps(core.Constraints{
		Budget: units.Watts(capPer) * units.Watts(topo.PhysicalNodes),
		MinCap: units.Watts(minCap),
		MaxCap: units.Watts(maxCap),
	})

	window := j.Window
	if window < 1 {
		window = 1
	}
	policyName := j.Policy
	if policyName == "" {
		policyName = "static"
	}
	policy, err := buildPolicy(policyName, cons, window)
	if err != nil {
		return workflow.Config{}, err
	}

	noise := machine.DefaultNoise()
	if j.NoNoise {
		noise = machine.NoiseModel{}
	}
	seed := j.Seed
	if seed == 0 {
		seed = 1
	}
	plan, err := fault.Parse(j.Faults)
	if err != nil {
		return workflow.Config{}, fmt.Errorf("jobfile: %w", err)
	}
	classes, err := machine.ParseClassMap(j.Classes)
	if err != nil {
		return workflow.Config{}, fmt.Errorf("jobfile: %w", err)
	}
	caps := map[string]units.Watts{}
	if j.InitialSimCapW != 0 {
		caps["sim"] = units.Watts(j.InitialSimCapW)
	}
	if j.InitialAnaCapW != 0 {
		caps["ana"] = units.Watts(j.InitialAnaCapW)
	}
	return workflow.Config{
		Graph:       topo.Graph,
		Steps:       j.Steps,
		SyncEvery:   j.J,
		Policy:      policy,
		Constraints: cons,
		InitialCaps: caps,
		Seed:        seed,
		RunSeed:     j.RunSeed,
		Noise:       noise,
		Faults:      plan,
		Classes:     classes,
	}, nil
}

// buildPolicy resolves the name through the process-wide registry
// (jobfile sits below the experiment layer, so it goes to the registry
// directly rather than through bench.NewPolicy).
func buildPolicy(name string, cons core.Constraints, w int) (core.Policy, error) {
	return policy.New(name, cons, w)
}

// Experiments for the paper's motivating artifacts: the Figure 1 power
// trace, the Figure 2 two-task illustration, and the Table I variability
// study.
package bench

import (
	"context"
	"fmt"
	"io"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/stats"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "fig1",
		Title: "Fig 1: power trace of simulation and analysis nodes exposing periodic synchronization (200 ms sampling)",
		Run:   runFig1,
	})
	register(Experiment{
		ID:    "fig2",
		Title: "Fig 2: shifting power between two tasks so both finish at an earlier, equal time",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "table1",
		Title: "Table I: run-to-run and job-to-job variability across 7 runs for different power-cap types (128 nodes)",
		Run:   runTable1,
	})
}

// runFig1 reproduces the Figure 1 trace: an uncapped LAMMPS+RDF job where
// the analysis idles at ~105 W waiting to synchronize with the
// simulation each step.
func runFig1(ctx context.Context, o Options, w io.Writer) error {
	e := newEnum("fig1")
	getRes := addCell(e, "trace", o.BaseSeed+1, func(ctx context.Context) (*cosim.Result, error) {
		return cosim.Run(ctx, cosim.Config{
			Spec:          spec128(defaultDim, 1, o.steps(40), workload.Tasks("rdf")),
			CapMode:       cosim.CapNone,
			Seed:          o.BaseSeed + 1,
			Noise:         machine.DefaultNoise(),
			TraceSegments: true,
			Telemetry:     o.Telemetry,
		})
	})
	if err := e.run(ctx, o); err != nil {
		return err
	}
	res := getRes()
	const period = 0.2 // the paper samples power every 200 ms
	sim := cosim.SampleSegments(res.SimSegments, period)
	ana := cosim.SampleSegments(res.AnaSegments, period)

	tbl := trace.NewTable("Power trace (one sample per 2 s shown; full trace sampled at 200 ms)",
		"t (s)", "sim node (W)", "analysis node (W)")
	for i := 0; i < len(sim) && i < len(ana); i += 10 {
		tbl.AddRow(fmt.Sprintf("%.1f", float64(sim[i].Time)), sim[i].Value, ana[i].Value)
	}
	if err := tbl.Render(w); err != nil {
		return err
	}

	// Summary statistics: the trough behaviour the figure demonstrates.
	simMean := stats.Mean(sampleValues(sim))
	anaMean := stats.Mean(sampleValues(ana))
	anaIdle := idleFraction(ana, 106)
	sum := trace.NewTable("Summary", "metric", "value")
	sum.AddRow("sim node mean power (W)", simMean)
	sum.AddRow("analysis node mean power (W)", anaMean)
	sum.AddRow("analysis samples at/below idle plateau (~105 W)", fmt.Sprintf("%.0f%%", anaIdle*100))
	sum.AddRow("samples", len(ana))
	return sum.Render(w)
}

func sampleValues(ss []trace.Sample) []float64 {
	vs := make([]float64, len(ss))
	for i, s := range ss {
		vs[i] = s.Value
	}
	return vs
}

// idleFraction reports the fraction of samples at or below the idle
// plateau threshold.
func idleFraction(ss []trace.Sample, threshold float64) float64 {
	if len(ss) == 0 {
		return 0
	}
	n := 0
	for _, s := range ss {
		if s.Value <= threshold {
			n++
		}
	}
	return float64(n) / float64(len(ss))
}

// runFig2 computes the paper's illustration: blue task 90 W/100 s, red
// task 120 W/60 s under a 210 W budget; the energy-proportional split
// equalizes both at ~77 s. Pure arithmetic: no cells to enumerate.
func runFig2(ctx context.Context, o Options, w io.Writer) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	const (
		budget = units.Watts(210)
		blueP  = units.Watts(90)
		blueT  = units.Seconds(100)
		redP   = units.Watts(120)
		redT   = units.Seconds(60)
	)
	optBlue, optRed := core.OptimalSplit(budget, blueT, blueP, redT, redP)
	tstar := core.PredictEqualTime(budget, blueT, blueP, redT, redP)

	tbl := trace.NewTable("Fig 2: SeeSAw split for the two-task illustration (C = 210 W)",
		"task", "initial power (W)", "initial time (s)", "optimal power (W)", "predicted time (s)")
	tbl.AddRow("blue (slow)", blueP, blueT, optBlue, tstar)
	tbl.AddRow("red (fast)", redP, redT, optRed, tstar)
	if err := tbl.Render(w); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "iteration time %.1f s -> %.1f s (paper: ~77 s)\n",
		float64(blueT), float64(tstar))
	return err
}

// runTable1 measures run-to-run and job-to-job variability under the
// three cap types of Table I. Every (cap type, dim, kind, repeat) is one
// independent cell returning that run's total time.
func runTable1(ctx context.Context, o Options, w io.Writer) error {
	runs := o.runs(table1Runs)
	steps := o.steps(defaultSteps)

	type capType struct {
		label string
		mode  cosim.CapMode
	}
	capTypes := []capType{
		{"None", cosim.CapNone},
		{"Long (110 W)", cosim.CapLong},
		{"Long and Short (110 W each)", cosim.CapLongShort},
	}
	dims := []int{defaultMidDim, defaultBigDim}

	timeCell := func(e *enum, key string, spec workload.Spec, mode cosim.CapMode, seed, runSeed uint64) func() float64 {
		return addCell(e, key, seed, func(ctx context.Context) (float64, error) {
			res, err := cosim.Run(ctx, cosim.Config{
				Spec: spec, CapMode: mode,
				Constraints: constraintsFor(2*nodes128Half, defaultCap),
				Seed:        seed,
				RunSeed:     runSeed,
				Noise:       machine.DefaultNoise(),
				Telemetry:   o.Telemetry,
			})
			if err != nil {
				return 0, err
			}
			return float64(res.TotalTime), nil
		})
	}

	// Enumerate the full matrix, keeping getters grouped per table row.
	type rowSpec struct {
		label   string
		dim     int
		kind    string
		getters []func() float64
	}
	e := newEnum("table1")
	var rows []rowSpec
	for _, ct := range capTypes {
		for _, dim := range dims {
			spec := spec128(dim, 1, steps, workload.AllAnalysesForDim(dim))

			// Run-to-run: same job (same node skews), varying jitter.
			rr := rowSpec{label: ct.label, dim: dim, kind: "run-to-run"}
			for r := 0; r < runs; r++ {
				key := fmt.Sprintf("%s/dim%d/run-to-run/r%d", ct.label, dim, r)
				rr.getters = append(rr.getters, timeCell(e, key, spec, ct.mode,
					o.BaseSeed+11, o.BaseSeed+100+uint64(r)*defaultSeedGap))
			}
			rows = append(rows, rr)

			// Job-to-job: fresh node allocation per job.
			jj := rowSpec{label: ct.label, dim: dim, kind: "job-to-job"}
			for r := 0; r < runs; r++ {
				seed := o.BaseSeed + 500 + uint64(r)*defaultSeedGap
				key := fmt.Sprintf("%s/dim%d/job-to-job/r%d", ct.label, dim, r)
				jj.getters = append(jj.getters, timeCell(e, key, spec, ct.mode, seed, seed+1))
			}
			rows = append(rows, jj)
		}
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	tbl := trace.NewTable("Table I: variability across runs (128 nodes, LAMMPS+all analyses)",
		"Power Cap", "dim", "Variability Type", "Variability %")
	for _, row := range rows {
		times := make([]float64, len(row.getters))
		for i, g := range row.getters {
			times[i] = g()
		}
		tbl.AddRow(row.label, row.dim, row.kind, stats.VariabilityPct(times))
	}
	return tbl.Render(w)
}

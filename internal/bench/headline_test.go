package bench

import (
	"context"
	"testing"

	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// These integration tests pin the paper's headline qualitative results
// so calibration regressions are caught: they run moderate-size cells
// through the full cosim stack and assert orderings, not magnitudes.

const headlineSteps = 150

func improvementOf(t *testing.T, policy string, spec workload.Spec, w int, seed uint64) float64 {
	t.Helper()
	imp, _, err := medianImprovement(context.Background(), cell{spec: spec, policy: policy, window: w}, 1, seed)
	if err != nil {
		t.Fatal(err)
	}
	return imp
}

func TestHeadlineSeeSAwNeverLosesBadly(t *testing.T) {
	// Across the fig3a workloads, SeeSAw stays within noise of the
	// static baseline or better (the paper reports only improvements).
	for _, cs := range fig3aCases() {
		spec := spec128(cs.dim, 1, headlineSteps, cs.analyses)
		imp := improvementOf(t, "seesaw", spec, 1, 1001)
		if imp < -1.0 {
			t.Errorf("seesaw loses %.2f%% on %s", imp, cs.label)
		}
	}
}

func TestHeadlineSeeSAwWinsOnMSD(t *testing.T) {
	spec := spec128(defaultDim, 1, 400, workload.Tasks("msd"))
	ss := improvementOf(t, "seesaw", spec, 1, 1003)
	ta := improvementOf(t, "time-aware", spec, 1, 1003)
	pa := improvementOf(t, "power-aware", spec, 1, 1003)
	if ss <= 0 {
		t.Errorf("seesaw improvement on full MSD = %.2f%%, want > 0", ss)
	}
	if ss <= ta || ss <= pa {
		t.Errorf("seesaw (%.2f%%) must beat time-aware (%.2f%%) and power-aware (%.2f%%) on the high-demand analysis",
			ss, ta, pa)
	}
}

func TestHeadlinePowerAwareLoses(t *testing.T) {
	// "The strictly power-aware approach slows down LAMMPS ... in all
	// cases" — allow noise-level exceptions only.
	for _, cs := range []analysisCase{
		{"msd", defaultDim, workload.Tasks("msd")},
		{"vacf", defaultMidDim, workload.Tasks("vacf")},
		{"rdf", defaultMidDim, workload.Tasks("rdf")},
	} {
		spec := spec128(cs.dim, 1, headlineSteps, cs.analyses)
		imp := improvementOf(t, "power-aware", spec, 1, 1005)
		if imp > 1.0 {
			t.Errorf("power-aware unexpectedly improves %s by %.2f%%", cs.label, imp)
		}
	}
}

func TestHeadlineTimeAwareCompetitiveOnLowDemand(t *testing.T) {
	// "The time-aware approach works well with LAMMPS+RDF and
	// LAMMPS+VACF" (up to ~13%).
	for _, name := range []string{"rdf", "vacf"} {
		spec := spec128(defaultMidDim, 1, headlineSteps, workload.Tasks(name))
		imp := improvementOf(t, "time-aware", spec, 1, 1007)
		if imp < 3.0 {
			t.Errorf("time-aware on %s = %.2f%%, expected a clear win", name, imp)
		}
	}
}

func TestHeadlineSeeSAwLocalOptimum(t *testing.T) {
	// Section VII-B2: on low-demand analyses SeeSAw settles below the
	// time-aware policy's simulation power (the local optimum), so it
	// wins less — but still wins.
	spec := spec128(defaultMidDim, 1, headlineSteps, workload.Tasks("vacf"))
	ss := improvementOf(t, "seesaw", spec, 1, 1009)
	ta := improvementOf(t, "time-aware", spec, 1, 1009)
	if ss <= 0 {
		t.Errorf("seesaw should still improve VACF, got %.2f%%", ss)
	}
	if ta <= ss {
		t.Errorf("time-aware (%.2f%%) should beat seesaw (%.2f%%) on the low-demand analysis (local optimum)",
			ta, ss)
	}
}

func TestHeadlineFig8Shape(t *testing.T) {
	// Diminishing returns: the improvement at a 150 W cap must be well
	// below the peak region (110-120 W), and the 98 W floor gives ~0.
	spec := spec128(defaultDim, 1, headlineSteps, workload.AllAnalyses())
	at := func(cap float64) float64 {
		imp, _, err := medianImprovement(context.Background(), cell{spec: spec, policy: "seesaw", window: 1,
			capPerNode: units.Watts(cap)}, 1, 1011)
		if err != nil {
			t.Fatal(err)
		}
		return imp
	}
	floor, peak, loose := at(98), at(115), at(150)
	if floor > 1.0 {
		t.Errorf("improvement at the 98 W floor = %.2f%%, want ~0 (no headroom)", floor)
	}
	if peak < loose+1.0 {
		t.Errorf("peak (115 W: %.2f%%) should clearly exceed the loose cap (150 W: %.2f%%)", peak, loose)
	}
}

// Package core implements the power-allocation policies the paper
// studies for power-constrained space-shared in-situ analysis:
//
//   - SeeSAw (the paper's contribution, Section IV): energy-feedback
//     allocation that rebalances the global budget between the
//     simulation and analysis partitions so both reach synchronization
//     points at the same time;
//   - the strictly power-aware policy (SLURM's scheme, Section II):
//     shift excess power from nodes below their cap to nodes at it;
//   - the strictly time-aware policy (GEOPM's power balancer,
//     Section II): shift power from faster to slower nodes with a
//     decaying step;
//   - the static baseline: the budget split evenly once and never moved.
//
// All policies are strictly online: they see only per-node (time, power,
// cap) measurements from the interval that just completed, and emit new
// per-node power caps.
package core

import (
	"fmt"

	"seesaw/internal/units"
)

// Role labels a node as belonging to the simulation or the analysis
// partition (the application knowledge PoLiMER's instrumentation
// supplies).
type Role int

// Partition roles.
const (
	RoleSimulation Role = iota
	RoleAnalysis
)

// String returns "sim" or "ana".
func (r Role) String() string {
	if r == RoleSimulation {
		return "sim"
	}
	return "ana"
}

// NodeMeasure is what one node reports for the interval between two
// invocations of the allocator.
type NodeMeasure struct {
	// Role is the node's partition membership.
	Role Role
	// Time is the interval between the node's consecutive allocator
	// calls (poli_power_alloc is invoked immediately before each
	// synchronization, so a faster node's interval includes its wait at
	// the previous synchronization), including the time to perform the
	// previous allocation — the paper's Section VI-B measurement.
	Time units.Seconds
	// BusyTime is the node's pure work time within the interval,
	// excluding synchronization waits; the harness uses it for the
	// normalized-slack bookkeeping of Figures 4 and 5.
	BusyTime units.Seconds
	// EpochTime is the node's iteration time as a loop-level monitor
	// (GEOPM's epoch) sees it: it includes part of the synchronization
	// wait, because the epoch markers bracket the whole loop body
	// rather than the work leading up to the synchronization. The
	// time-aware policy consumes this measure (falling back to Time
	// when zero); SeeSAw deliberately uses Time, which PoLiMER's
	// instrumentation ties to the synchronization event — one of the
	// paper's central points about application knowledge.
	EpochTime units.Seconds
	// Power is the node's average measured power over the interval.
	Power units.Watts
	// Cap is the per-node power cap that was in force.
	Cap units.Watts
}

// Constraints bound every allocation.
type Constraints struct {
	// Budget is the global power budget C for the whole job.
	Budget units.Watts
	// MinCap is delta_min: the lowest per-node cap hardware supports.
	MinCap units.Watts
	// MaxCap is delta_max: the highest per-node cap (TDP).
	MaxCap units.Watts
}

// Validate reports constraint errors.
func (c Constraints) Validate(nodes int) error {
	if c.Budget <= 0 {
		return fmt.Errorf("core: budget must be positive, got %v", c.Budget)
	}
	if c.MinCap <= 0 || c.MaxCap <= c.MinCap {
		return fmt.Errorf("core: invalid cap range [%v, %v]", c.MinCap, c.MaxCap)
	}
	if nodes > 0 && c.Budget < c.MinCap*units.Watts(nodes) {
		return fmt.Errorf("core: budget %v below minimum %v for %d nodes",
			c.Budget, c.MinCap*units.Watts(nodes), nodes)
	}
	return nil
}

// Policy is an online power-allocation strategy. Allocate is invoked at
// each simulation-analysis synchronization with the measurements of the
// interval that just ended; it returns new per-node caps (aligned with
// nodes), or nil to leave caps unchanged.
type Policy interface {
	// Name identifies the policy ("seesaw", "power-aware",
	// "time-aware", "static").
	Name() string
	// Allocate computes new per-node caps. step counts
	// synchronizations from 1; step 0 (outside the main loop) is never
	// passed.
	Allocate(step int, nodes []NodeMeasure) []units.Watts
}

// Static is the paper's baseline: the global budget split evenly across
// nodes once, never changed. Allocate always returns nil.
type Static struct{}

// NewStatic returns the static baseline policy.
func NewStatic() *Static { return &Static{} }

// Name implements Policy.
func (*Static) Name() string { return "static" }

// Allocate implements Policy; the static policy never moves power.
func (*Static) Allocate(int, []NodeMeasure) []units.Watts { return nil }

// EvenSplit returns the per-node cap of an even division of the budget,
// clamped to the constraint range; the harness uses it for initial caps.
func EvenSplit(c Constraints, nodes int) units.Watts {
	if nodes <= 0 {
		return 0
	}
	return units.ClampWatts(c.Budget/units.Watts(nodes), c.MinCap, c.MaxCap)
}

// partitionTotals aggregates per-node measurements into the partition
// quantities SeeSAw's formulation uses: the slowest node time and the
// summed power of each partition.
func partitionTotals(nodes []NodeMeasure) (simT, anaT units.Seconds, simP, anaP units.Watts, nSim, nAna int) {
	for _, n := range nodes {
		switch n.Role {
		case RoleSimulation:
			nSim++
			simP += n.Power
			if n.Time > simT {
				simT = n.Time
			}
		case RoleAnalysis:
			nAna++
			anaP += n.Power
			if n.Time > anaT {
				anaT = n.Time
			}
		}
	}
	return
}

// clampPartitionCaps enforces the delta_min/delta_max rule of Section
// IV-A on per-node partition caps pS, pA for nSim and nAna nodes under
// budget C: if one partition's per-node cap falls outside the supported
// range it is pinned to the bound and the other partition receives the
// remaining power; handling delta_max takes priority in ties.
func clampPartitionCaps(pS, pA units.Watts, nSim, nAna int, c Constraints) (units.Watts, units.Watts) {
	remainder := func(pinned units.Watts, nPinned, nOther int) units.Watts {
		if nOther == 0 {
			return pinned
		}
		rest := (c.Budget - pinned*units.Watts(nPinned)) / units.Watts(nOther)
		return units.ClampWatts(rest, c.MinCap, c.MaxCap)
	}
	// delta_max first (tie priority).
	switch {
	case pS > c.MaxCap:
		pS = c.MaxCap
		pA = remainder(pS, nSim, nAna)
	case pA > c.MaxCap:
		pA = c.MaxCap
		pS = remainder(pA, nAna, nSim)
	}
	switch {
	case pS < c.MinCap:
		pS = c.MinCap
		pA = remainder(pS, nSim, nAna)
	case pA < c.MinCap:
		pA = c.MinCap
		pS = remainder(pA, nAna, nSim)
	}
	return pS, pA
}

// expandPartitionCaps materializes per-node cap slices from per-node
// partition values, aligned with the nodes slice.
func expandPartitionCaps(nodes []NodeMeasure, pS, pA units.Watts) []units.Watts {
	caps := make([]units.Watts, len(nodes))
	for i, n := range nodes {
		if n.Role == RoleSimulation {
			caps[i] = pS
		} else {
			caps[i] = pA
		}
	}
	return caps
}

package stats_test

import (
	"fmt"

	"seesaw/internal/stats"
)

func ExampleVariabilityPct() {
	// Table I's metric: the spread of repeated runtimes relative to
	// their mean.
	runs := []float64{99, 100, 101}
	fmt.Printf("%.1f%%\n", stats.VariabilityPct(runs))
	// Output: 2.0%
}

func ExampleRollingWindow() {
	// SeeSAw's w-step measurement window.
	w := stats.NewRollingWindow(3)
	for _, t := range []float64{4.0, 4.2, 4.4, 4.6} {
		w.Add(t)
	}
	fmt.Printf("%.1f\n", w.Mean()) // the oldest sample was evicted
	// Output: 4.4
}

func ExampleBlend() {
	// One EWMA step with an explicit weight, as SeeSAw's Eq. 3-4 uses.
	fmt.Println(stats.Blend(120, 100, 0.25))
	// Output: 105
}

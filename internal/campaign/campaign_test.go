package campaign

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"seesaw/internal/telemetry"
)

// squareCells builds n cells whose value is a pure function of the
// index, with a tiny anti-ordered sleep so parallel completion order
// differs from enumeration order.
func squareCells(n int) []Cell {
	cells := make([]Cell, n)
	for i := 0; i < n; i++ {
		i := i
		cells[i] = Cell{
			Key:  fmt.Sprintf("cell-%02d", i),
			Seed: uint64(i),
			Run: func(ctx context.Context) (any, error) {
				time.Sleep(time.Duration((n-i)%4) * time.Millisecond)
				return i * i, nil
			},
		}
	}
	return cells
}

// TestRunOrderedDeterministic is the engine's core contract: the result
// slice is in cell order with identical values at every concurrency
// level, so reports rendered from it are byte-identical across -jobs.
func TestRunOrderedDeterministic(t *testing.T) {
	cells := squareCells(32)
	var want []Result
	for _, jobs := range []int{1, 2, 8, 64} {
		rs, err := Run(context.Background(), cells, Options{Name: "det", Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		for i, r := range rs {
			if r.Key != cells[i].Key {
				t.Fatalf("jobs=%d: result %d key = %q, want %q", jobs, i, r.Key, cells[i].Key)
			}
			if !r.Started || r.Err != nil {
				t.Fatalf("jobs=%d: result %d not ok: %+v", jobs, i, r)
			}
			if r.Value != i*i {
				t.Fatalf("jobs=%d: result %d value = %v, want %d", jobs, i, r.Value, i*i)
			}
		}
		if want == nil {
			want = rs
			continue
		}
		for i := range rs {
			if rs[i].Key != want[i].Key || !reflect.DeepEqual(rs[i].Value, want[i].Value) {
				t.Fatalf("jobs=%d: result %d diverges from jobs=1", jobs, i)
			}
		}
	}
}

// TestBoundedConcurrency verifies the pool never runs more than Jobs
// cells at once.
func TestBoundedConcurrency(t *testing.T) {
	const jobs, n = 3, 24
	var inflight, peak atomic.Int64
	cells := make([]Cell, n)
	for i := range cells {
		cells[i] = Cell{
			Key: fmt.Sprintf("c%d", i),
			Run: func(ctx context.Context) (any, error) {
				cur := inflight.Add(1)
				for {
					p := peak.Load()
					if cur <= p || peak.CompareAndSwap(p, cur) {
						break
					}
				}
				time.Sleep(2 * time.Millisecond)
				inflight.Add(-1)
				return nil, nil
			},
		}
	}
	if _, err := Run(context.Background(), cells, Options{Name: "bound", Jobs: jobs}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Errorf("peak in-flight = %d, want <= %d", p, jobs)
	}
}

func TestJobsDefault(t *testing.T) {
	if got := (Options{}).jobs(); got < 1 {
		t.Errorf("default jobs = %d, want >= 1", got)
	}
	if got := (Options{Jobs: -4}).jobs(); got < 1 {
		t.Errorf("jobs(-4) = %d, want >= 1", got)
	}
	if got := (Options{Jobs: 7}).jobs(); got != 7 {
		t.Errorf("jobs(7) = %d, want 7", got)
	}
}

// TestPanicRecovery: a panicking cell becomes that cell's error; the
// other cells still run, and the campaign error names the first failed
// cell in cell order (not completion order).
func TestPanicRecovery(t *testing.T) {
	cells := squareCells(6)
	cells[2].Run = func(ctx context.Context) (any, error) { panic("boom") }
	cells[4].Run = func(ctx context.Context) (any, error) { return nil, errors.New("plain failure") }
	rs, err := Run(context.Background(), cells, Options{Name: "pan", Jobs: 4})
	if err == nil || !strings.Contains(err.Error(), "cell cell-02") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want first-in-order cell-02 panic", err)
	}
	if rs[2].Err == nil || !strings.Contains(rs[2].Err.Error(), "panicked") {
		t.Errorf("cell 2 err = %v, want panic error", rs[2].Err)
	}
	if rs[4].Err == nil || rs[4].Status() != "error" {
		t.Errorf("cell 4 = %+v, want plain error", rs[4])
	}
	for _, i := range []int{0, 1, 3, 5} {
		if rs[i].Err != nil || rs[i].Value != i*i {
			t.Errorf("cell %d = %+v, want ok", i, rs[i])
		}
	}
}

// TestCancellation: cancelling mid-campaign lets in-flight cells unwind,
// skips queued cells, and returns ctx.Err() — not a cell failure.
func TestCancellation(t *testing.T) {
	const jobs, n = 2, 12
	ctx, cancel := context.WithCancel(context.Background())
	var started sync.WaitGroup
	started.Add(jobs)
	cells := make([]Cell, n)
	for i := range cells {
		i := i
		cells[i] = Cell{
			Key: fmt.Sprintf("c%02d", i),
			Run: func(ctx context.Context) (any, error) {
				started.Done()
				<-ctx.Done()
				return nil, ctx.Err()
			},
		}
	}
	go func() {
		started.Wait()
		cancel()
	}()
	rs, err := Run(ctx, cells, Options{Name: "cancel", Jobs: jobs})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if strings.Contains(fmt.Sprint(err), "cell") {
		t.Errorf("cancellation reported as cell failure: %v", err)
	}
	var ran, skipped int
	for i, r := range rs {
		if r.Key == "" {
			t.Fatalf("result %d missing key", i)
		}
		switch r.Status() {
		case "skipped":
			skipped++
			if !errors.Is(r.Err, context.Canceled) {
				t.Errorf("skipped cell %d err = %v", i, r.Err)
			}
		case "error":
			ran++
		default:
			t.Errorf("cell %d status = %q after cancel", i, r.Status())
		}
	}
	if ran == 0 || skipped == 0 || ran+skipped != n {
		t.Errorf("ran=%d skipped=%d, want both nonzero summing to %d", ran, skipped, n)
	}
}

// TestTelemetry checks the live-progress contract: per-status counters,
// a drained in-flight gauge, and one CampaignCell event per cell with
// monotone done/total progress.
func TestTelemetry(t *testing.T) {
	hub := telemetry.New(telemetry.Options{})
	cells := squareCells(9)
	cells[5].Run = func(ctx context.Context) (any, error) { return nil, errors.New("sad") }
	_, err := Run(context.Background(), cells, Options{Name: "tel", Jobs: 3, Telemetry: hub})
	if err == nil {
		t.Fatal("want cell failure error")
	}
	reg := hub.Registry()
	okN := reg.Counter("seesaw_campaign_cells_total", "", "campaign", "status").With("tel", "ok").Value()
	errN := reg.Counter("seesaw_campaign_cells_total", "", "campaign", "status").With("tel", "error").Value()
	if okN != 8 || errN != 1 {
		t.Errorf("cells_total ok=%v error=%v, want 8/1", okN, errN)
	}
	if g := reg.Gauge("seesaw_campaign_inflight_cells", "", "campaign").With("tel").Value(); g != 0 {
		t.Errorf("inflight gauge = %v after completion, want 0", g)
	}
	if c := reg.Histogram("seesaw_campaign_cell_seconds", "", telemetry.CellBuckets(), "campaign").With("tel").Count(); c != 9 {
		t.Errorf("cell_seconds count = %d, want 9", c)
	}
	var evs []telemetry.CampaignCell
	for _, e := range hub.Events() {
		if cc, ok := e.(telemetry.CampaignCell); ok {
			evs = append(evs, cc)
		}
	}
	if len(evs) != 9 {
		t.Fatalf("CampaignCell events = %d, want 9", len(evs))
	}
	for i, e := range evs {
		if e.Campaign != "tel" || e.Total != 9 || e.Done != i+1 {
			t.Errorf("event %d = %+v, want done=%d total=9", i, e, i+1)
		}
	}
}

// TestNilTelemetryAndNilContext: both are explicitly allowed.
func TestNilTelemetryAndNilContext(t *testing.T) {
	rs, err := Run(nil, squareCells(3), Options{Name: "nil"}) //nolint:staticcheck
	if err != nil || len(rs) != 3 {
		t.Fatalf("rs=%v err=%v", rs, err)
	}
}

func TestEmptyCells(t *testing.T) {
	rs, err := Run(context.Background(), nil, Options{Name: "empty"})
	if err != nil || len(rs) != 0 {
		t.Fatalf("rs=%v err=%v", rs, err)
	}
}

func TestCollect(t *testing.T) {
	vals, err := Collect[int](context.Background(), squareCells(5), Options{Name: "col"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(vals, []int{0, 1, 4, 9, 16}) {
		t.Errorf("vals = %v", vals)
	}
	if _, err := Collect[string](context.Background(), squareCells(2), Options{Name: "col"}); err == nil ||
		!strings.Contains(err.Error(), "want string") {
		t.Errorf("type mismatch err = %v", err)
	}
}

// TestWorkerState: each worker builds its state exactly once, cells see
// their worker's value through WorkerValue, and Close runs at worker
// exit.
func TestWorkerState(t *testing.T) {
	var built, closed atomic.Int32

	cells := make([]Cell, 12)
	for i := range cells {
		cells[i] = Cell{
			Key: fmt.Sprintf("c%d", i),
			Run: func(ctx context.Context) (any, error) {
				s, ok := WorkerValue(ctx).(*workerState)
				if !ok || s == nil {
					return nil, fmt.Errorf("cell saw no worker state")
				}
				s.cells.Add(1)
				return int(s.id), nil
			},
		}
	}
	opts := Options{
		Name: "ws",
		Jobs: 3,
		WorkerState: func() any {
			return &workerState{id: built.Add(1), closed: &closed}
		},
	}
	rs, err := Run(context.Background(), cells, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs {
		if r.Err != nil {
			t.Fatalf("cell %s: %v", r.Key, r.Err)
		}
	}
	if b := built.Load(); b < 1 || b > 3 {
		t.Errorf("built %d worker states, want 1..3", b)
	}
	if closed.Load() != built.Load() {
		t.Errorf("closed %d of %d worker states", closed.Load(), built.Load())
	}
}

// workerState is TestWorkerState's per-worker scratch.
type workerState struct {
	id     int32
	cells  atomic.Int32
	closed *atomic.Int32
}

func (s *workerState) Close() { s.closed.Add(1) }

// TestWorkerValueWithoutState: cells run without WorkerState see nil.
func TestWorkerValueWithoutState(t *testing.T) {
	cells := []Cell{{Key: "c", Run: func(ctx context.Context) (any, error) {
		if WorkerValue(ctx) != nil {
			return nil, fmt.Errorf("unexpected worker state")
		}
		return 1, nil
	}}}
	if _, err := Run(context.Background(), cells, Options{Name: "nows"}); err != nil {
		t.Fatal(err)
	}
}

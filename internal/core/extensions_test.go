package core

import (
	"testing"

	"seesaw/internal/units"
)

func TestHierarchicalValidation(t *testing.T) {
	bad := DefaultHierarchicalConfig(testConstraints())
	bad.IntraStep = 0
	if _, err := NewHierarchical(bad); err == nil {
		t.Error("zero intra step should be rejected")
	}
	bad = DefaultHierarchicalConfig(testConstraints())
	bad.IntraSlack = 1.5
	if _, err := NewHierarchical(bad); err == nil {
		t.Error("out-of-range intra slack should be rejected")
	}
	bad = DefaultHierarchicalConfig(Constraints{})
	if _, err := NewHierarchical(bad); err == nil {
		t.Error("empty constraints should be rejected")
	}
}

func TestHierarchicalName(t *testing.T) {
	h := MustNewHierarchical(DefaultHierarchicalConfig(testConstraints()))
	if h.Name() != "seesaw-hierarchical" {
		t.Errorf("name = %q", h.Name())
	}
}

func TestHierarchicalBalancesWithinPartition(t *testing.T) {
	h := MustNewHierarchical(DefaultHierarchicalConfig(testConstraints()))
	ms := measures(4, 4, 108, 108, 110)
	// One simulation node consistently slower than its siblings.
	ms[0].BusyTime = 5
	var caps []units.Watts
	for step := 1; step <= 5; step++ {
		caps = h.Allocate(step, ms)
	}
	if caps == nil {
		t.Fatal("expected caps")
	}
	// The slow sim node must have gained power relative to a fast one.
	if !(caps[0] > caps[1]) {
		t.Errorf("slow node cap %v not above fast sibling %v", caps[0], caps[1])
	}
	// Intra-level transfers are zero-sum: partition totals stay within
	// the budget.
	var total units.Watts
	for _, c := range caps {
		if c < 98 || c > 215 {
			t.Errorf("cap %v outside range", c)
		}
		total += c
	}
	if float64(total) > float64(testConstraints().Budget)+1e-6 {
		t.Errorf("total %v exceeds budget", total)
	}
}

func TestHierarchicalNoActionWhenHomogeneous(t *testing.T) {
	h := MustNewHierarchical(DefaultHierarchicalConfig(testConstraints()))
	ms := measures(4, 4, 108, 108, 110)
	h.Allocate(1, ms)
	for i, off := range h.Offsets() {
		if off != 0 {
			t.Errorf("offset[%d] = %v for homogeneous nodes", i, off)
		}
	}
}

func TestHierarchicalOffsetsBounded(t *testing.T) {
	cfg := DefaultHierarchicalConfig(testConstraints())
	h := MustNewHierarchical(cfg)
	ms := measures(4, 4, 108, 108, 110)
	ms[0].BusyTime = 8 // persistently slow
	for step := 1; step <= 200; step++ {
		h.Allocate(step, ms)
	}
	limit := (testConstraints().MaxCap - testConstraints().MinCap) / 4
	for i, off := range h.Offsets() {
		if off > limit || off < -limit {
			t.Errorf("offset[%d] = %v beyond bound %v", i, off, limit)
		}
	}
}

func TestHierarchicalResetsOnNodeSetChange(t *testing.T) {
	h := MustNewHierarchical(DefaultHierarchicalConfig(testConstraints()))
	ms := measures(4, 4, 108, 108, 110)
	ms[0].BusyTime = 6
	h.Allocate(1, ms)
	// Shrink the job: offsets must be rebuilt, not indexed stale.
	small := measures(1, 1, 108, 108, 110)[:2]
	if got := h.Allocate(2, small); len(got) != 2 {
		t.Errorf("caps length %d after node-set change", len(got))
	}
}

func TestExploringValidation(t *testing.T) {
	bad := DefaultExploringConfig(testConstraints())
	bad.Period = 1
	if _, err := NewExploringSeeSAw(bad); err == nil {
		t.Error("period < 2 should be rejected")
	}
	bad = DefaultExploringConfig(testConstraints())
	bad.Probe = 0
	if _, err := NewExploringSeeSAw(bad); err == nil {
		t.Error("zero probe should be rejected")
	}
}

func TestExploringProbesAndReverts(t *testing.T) {
	cfg := DefaultExploringConfig(testConstraints())
	cfg.Period = 3
	e := MustNewExploringSeeSAw(cfg)

	ms := measures(4, 4, 105, 110, 110)
	var probeCaps, preCaps []units.Watts
	for step := 1; step <= 3; step++ {
		caps := e.Allocate(step, ms)
		if step < 3 && caps == nil {
			t.Fatalf("expected inner allocation at step %d", step)
		}
		if step == 3 {
			probeCaps = caps
			preCaps = e.preCaps
		}
	}
	if !e.probing {
		t.Fatal("probe not launched at the configured period")
	}
	if probeCaps == nil || preCaps == nil {
		t.Fatal("probe bookkeeping missing")
	}
	// Report a slower interval: the probe must be reverted to the
	// pre-probe caps.
	slow := measures(10, 10, 105, 110, 110)
	got := e.Allocate(4, slow)
	if got == nil {
		t.Fatal("expected revert caps")
	}
	for i := range got {
		if got[i] != preCaps[i] {
			t.Fatalf("cap[%d] = %v, want pre-probe %v", i, got[i], preCaps[i])
		}
	}
}

func TestExploringKeepsWinningProbe(t *testing.T) {
	cfg := DefaultExploringConfig(testConstraints())
	cfg.Period = 3
	e := MustNewExploringSeeSAw(cfg)
	ms := measures(4, 4, 105, 110, 110)
	for step := 1; step <= 3; step++ {
		e.Allocate(step, ms)
	}
	if !e.probing {
		t.Fatal("no probe launched")
	}
	// Report a faster interval: the probe caps stay in force (nil = no
	// change) and a hold period begins.
	fast := measures(2, 2, 105, 110, 110)
	if got := e.Allocate(4, fast); got != nil {
		t.Errorf("winning probe should keep caps (nil), got %v", got)
	}
	if e.holdLeft == 0 {
		t.Error("hold period not started after a won probe")
	}
}

func TestExploringCapsInRange(t *testing.T) {
	cfg := DefaultExploringConfig(testConstraints())
	cfg.Period = 2
	e := MustNewExploringSeeSAw(cfg)
	ms := measures(4, 4, 105, 110, 110)
	for step := 1; step <= 50; step++ {
		caps := e.Allocate(step, ms)
		for _, c := range caps {
			if c < 98 || c > 215 {
				t.Fatalf("cap %v outside range at step %d", c, step)
			}
		}
	}
}

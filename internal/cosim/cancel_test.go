package cosim

import (
	"context"
	"errors"
	"testing"
)

// TestRunCancelled: a dead context aborts the interval loop with
// ctx.Err() and no partial result.
func TestRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Run(ctx, Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Error("cancelled run returned a partial result")
	}
}

// TestOracleCancelled: the static-split sweep honors cancellation too.
func TestOracleCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FindBestStaticSplit(ctx, Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong, Seed: 1}, 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

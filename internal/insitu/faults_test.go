package insitu

import (
	"context"
	"errors"
	"testing"
	"time"

	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/telemetry"
)

// TestKillUnwindsAllRanks: a fault-plan kill mid-run takes the job down
// through the runtime's poisoning path — every rank goroutine unwinds,
// including ones blocked at collectives or in frame receives — and Run
// surfaces the typed *fault.KilledError. Run with -race this also
// proves the unwind leaves no rank goroutine behind touching shared
// result state.
func TestKillUnwindsAllRanks(t *testing.T) {
	cfg := tinyConfig(core.NewStatic(), []string{"msd"}, 200)
	cfg.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.Kill, Node: 3, Sync: 20}}}
	errc := make(chan error, 1)
	go func() {
		_, err := Run(context.Background(), cfg)
		errc <- err
	}()
	select {
	case err := <-errc:
		var ke *fault.KilledError
		if !errors.As(err, &ke) {
			t.Fatalf("err = %v, want *fault.KilledError", err)
		}
		if ke.Node != 3 || ke.Sync != 20 {
			t.Errorf("KilledError = %+v, want node 3 sync 20", ke)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after kill: rank goroutines leaked")
	}
}

// TestKillEmitsTelemetry: the kill fires a NodeKilled event before the
// job unwinds.
func TestKillEmitsTelemetry(t *testing.T) {
	hub := telemetry.New(telemetry.Options{})
	cfg := tinyConfig(core.NewStatic(), []string{"msd"}, 100)
	cfg.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.Kill, Node: 0, Sync: 5}}}
	cfg.Telemetry = hub
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("killed run should fail")
	}
	var saw bool
	for _, e := range hub.Events() {
		if k, ok := e.(telemetry.NodeKilled); ok {
			saw = true
			if k.Node != 0 || k.Sync != 5 || k.Role != "sim" {
				t.Errorf("NodeKilled = %+v", k)
			}
		}
	}
	if !saw {
		t.Error("no NodeKilled event emitted")
	}
}

// TestSlowExcursionCompletes: a slow-node excursion degrades in place —
// the job completes, slower than its fault-free twin, and the degraded
// rank recovers.
func TestSlowExcursionCompletes(t *testing.T) {
	clean, err := Run(context.Background(), tinyConfig(core.NewStatic(), []string{"msd"}, 40))
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig(core.NewStatic(), []string{"msd"}, 40)
	cfg.Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.Slow, Node: 1, Sync: 5, Factor: 3, Window: 20}}}
	hub := telemetry.New(telemetry.Options{})
	cfg.Telemetry = hub
	slow, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.MainLoopTime <= clean.MainLoopTime {
		t.Errorf("excursion run %v not slower than clean %v", slow.MainLoopTime, clean.MainLoopTime)
	}
	var degraded, recovered bool
	for _, e := range hub.Events() {
		switch e.Kind() {
		case "NodeDegraded":
			degraded = true
		case "NodeRecovered":
			recovered = true
		}
	}
	if !degraded || !recovered {
		t.Errorf("lifecycle events missing: degraded=%v recovered=%v", degraded, recovered)
	}
}

// TestFaultPlanValidated: a plan that would wipe out a partition is
// rejected before any rank starts.
func TestFaultPlanValidated(t *testing.T) {
	cfg := tinyConfig(core.NewStatic(), []string{"msd"}, 10)
	cfg.Faults = &fault.Plan{Events: []fault.Event{
		{Kind: fault.Kill, Node: 2, Sync: 1},
		{Kind: fault.Kill, Node: 3, Sync: 2},
	}}
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("analysis-partition wipeout should be rejected")
	}
}

// Package analysis implements the in-situ analyses the paper runs
// alongside LAMMPS (Section VI-C): radial distribution functions for the
// two ion species (RDF), the velocity auto-correlation function (VACF),
// and mean squared displacements — full (MSD), in 1D spatial bins (MSD1D)
// and in 2D spatial bins (MSD2D).
//
// Every analysis consumes particle frames produced by the simulation
// partition and returns the computational work the frame induced; the
// machine model turns that work into virtual time and power. Each
// analysis also carries a resource Profile mirroring the paper's
// characterization: "MSD has high CPU and memory utilization, MSD2D is
// mostly memory-intensive (less than MSD), RDF is compute bound but with
// higher memory needs than VACF and MSD1D, both having low memory and
// CPU utilization."
package analysis

import (
	"fmt"
	"math"

	"seesaw/internal/lammps"
	"seesaw/internal/units"
)

// Profile characterizes an analysis's resource behaviour for the machine
// model.
type Profile struct {
	// Demand is the per-node power demand while the analysis runs.
	Demand units.Watts
	// Saturation is the power beyond which the analysis gains nothing.
	Saturation units.Watts
	// Sensitivity is the power-scalable fraction of its runtime.
	Sensitivity float64
	// SecondsPerOp converts the analysis's operation count to nominal
	// runtime, calibrated so relative analysis/simulation durations
	// match the paper's observations (MSD comparable to simulation;
	// VACF, RDF, MSD1D, MSD2D 2-4x faster).
	SecondsPerOp float64
}

// Analysis is one in-situ analysis task.
type Analysis interface {
	// Name returns the analysis identifier ("rdf", "vacf", ...).
	Name() string
	// Consume folds one simulation frame into the analysis state and
	// returns the work it performed.
	Consume(f *lammps.Frame) lammps.WorkCount
	// Result returns the analysis's current output vector.
	Result() []float64
	// Profile returns the resource characterization.
	Profile() Profile
}

// New constructs an analysis by name: "rdf", "vacf", "msd", "msd1d",
// "msd2d".
func New(name string) (Analysis, error) {
	switch name {
	case "rdf":
		return NewRDF(64, 0), nil
	case "vacf":
		return NewVACF(64), nil
	case "msd":
		return NewMSD(), nil
	case "msd1d":
		return NewMSD1D(8), nil
	case "msd2d":
		return NewMSD2D(8), nil
	default:
		return nil, fmt.Errorf("analysis: unknown analysis %q", name)
	}
}

// Names lists all supported analysis names.
func Names() []string { return []string{"rdf", "vacf", "msd", "msd1d", "msd2d"} }

// RDF computes radial distribution functions g(r) between each ion
// species (hydronium and counter-ion) and the solvent, averaged over all
// molecules and frames.
type RDF struct {
	bins   int
	rmax   float64 // 0 = half the box (set on first frame)
	hist   [2][]float64
	frames int
	nIon   [2]int
	nSolv  int
	box    float64
}

// NewRDF returns an RDF with the given number of radial bins. rmax = 0
// defers the range to half the box of the first frame.
func NewRDF(bins int, rmax float64) *RDF {
	if bins <= 0 {
		panic("analysis: rdf bins must be positive")
	}
	r := &RDF{bins: bins, rmax: rmax}
	r.hist[0] = make([]float64, bins)
	r.hist[1] = make([]float64, bins)
	return r
}

// Name implements Analysis.
func (r *RDF) Name() string { return "rdf" }

// Profile implements Analysis: compute bound with higher memory needs
// than VACF/MSD1D.
func (r *RDF) Profile() Profile {
	return Profile{Demand: 165, Saturation: 140, Sensitivity: 0.85, SecondsPerOp: 4.46e-5}
}

// Consume implements Analysis.
func (r *RDF) Consume(f *lammps.Frame) lammps.WorkCount {
	if r.rmax == 0 {
		r.rmax = f.Box / 2
	}
	r.box = f.Box
	dr := r.rmax / float64(r.bins)
	var ops float64
	half := f.Box / 2
	r.nIon = [2]int{}
	r.nSolv = 0
	for _, t := range f.Typ {
		switch t {
		case lammps.SpeciesHydronium:
			r.nIon[0]++
		case lammps.SpeciesIon:
			r.nIon[1]++
		default:
			r.nSolv++
		}
	}
	for i, ti := range f.Typ {
		var h []float64
		switch ti {
		case lammps.SpeciesHydronium:
			h = r.hist[0]
		case lammps.SpeciesIon:
			h = r.hist[1]
		default:
			continue
		}
		pi := f.Pos[i]
		for j, tj := range f.Typ {
			if tj != lammps.SpeciesSolvent {
				continue
			}
			ops++
			d := pi.Sub(f.Pos[j])
			for k := 0; k < 3; k++ {
				if d[k] > half {
					d[k] -= f.Box
				} else if d[k] < -half {
					d[k] += f.Box
				}
			}
			dist := math.Sqrt(d.Norm2())
			if dist < r.rmax {
				h[int(dist/dr)]++
			}
		}
	}
	r.frames++
	return lammps.WorkCount{Ops: ops, Bytes: r.bins * 16}
}

// Result implements Analysis: the hydronium-solvent g(r) followed by the
// ion-solvent g(r), ideal-gas normalized.
func (r *RDF) Result() []float64 {
	out := make([]float64, 0, 2*r.bins)
	if r.frames == 0 || r.box == 0 {
		return make([]float64, 2*r.bins)
	}
	dr := r.rmax / float64(r.bins)
	vol := r.box * r.box * r.box
	rhoSolv := float64(r.nSolv) / vol
	for s := 0; s < 2; s++ {
		n := float64(r.nIon[s])
		for b := 0; b < r.bins; b++ {
			rin := float64(b) * dr
			rout := rin + dr
			shell := 4.0 / 3.0 * math.Pi * (rout*rout*rout - rin*rin*rin)
			ideal := rhoSolv * shell * n * float64(r.frames)
			if ideal > 0 {
				out = append(out, r.hist[s][b]/ideal)
			} else {
				out = append(out, 0)
			}
		}
	}
	return out
}

// VACF computes the velocity auto-correlation function
// C(t) = <v(0) . v(t)> / <v(0) . v(0)>, averaged over all particles,
// using the first consumed frame as the time origin.
type VACF struct {
	maxLag int
	v0     []lammps.Vec3
	c      []float64
	count  []int
	lag    int
}

// NewVACF returns a VACF retaining up to maxLag correlation points.
func NewVACF(maxLag int) *VACF {
	if maxLag <= 0 {
		panic("analysis: vacf maxLag must be positive")
	}
	return &VACF{maxLag: maxLag, c: make([]float64, maxLag), count: make([]int, maxLag)}
}

// Name implements Analysis.
func (v *VACF) Name() string { return "vacf" }

// Profile implements Analysis: low memory and CPU utilization.
func (v *VACF) Profile() Profile {
	return Profile{Demand: 135, Saturation: 120, Sensitivity: 0.70, SecondsPerOp: 5.3e-4}
}

// Consume implements Analysis.
func (v *VACF) Consume(f *lammps.Frame) lammps.WorkCount {
	if v.v0 == nil {
		v.v0 = append([]lammps.Vec3(nil), f.Vel...)
	}
	if v.lag < v.maxLag {
		var sum float64
		for i, vel := range f.Vel {
			sum += v.v0[i].Dot(vel)
		}
		v.c[v.lag] += sum / float64(len(f.Vel))
		v.count[v.lag]++
		v.lag++
	}
	return lammps.WorkCount{Ops: float64(len(f.Vel)) * 3, Bytes: 8 * v.maxLag}
}

// Result implements Analysis: C(t)/C(0) over recorded lags.
func (v *VACF) Result() []float64 {
	out := make([]float64, v.lag)
	if v.lag == 0 {
		return out
	}
	c0 := v.c[0] / float64(max(v.count[0], 1))
	for i := 0; i < v.lag; i++ {
		c := v.c[i] / float64(max(v.count[i], 1))
		if c0 != 0 {
			out[i] = c / c0
		}
	}
	return out
}

// MSD computes the full mean squared displacement from unwrapped
// coordinates, with the paper's "final averaging of all particles". It is
// the high-demand analysis.
type MSD struct {
	u0   []lammps.Vec3
	msd  []float64
	last float64
}

// NewMSD returns an MSD analysis.
func NewMSD() *MSD { return &MSD{} }

// Name implements Analysis.
func (m *MSD) Name() string { return "msd" }

// Profile implements Analysis: high CPU and memory utilization; its
// per-op cost is calibrated so the full-MSD runtime is comparable to the
// simulation's between synchronizations (paper Section VII-B1).
func (m *MSD) Profile() Profile {
	return Profile{Demand: 175, Saturation: 150, Sensitivity: 0.30, SecondsPerOp: 4.1e-4}
}

// Consume implements Analysis.
func (m *MSD) Consume(f *lammps.Frame) lammps.WorkCount {
	if m.u0 == nil {
		m.u0 = append([]lammps.Vec3(nil), f.Unwrp...)
	}
	var sum float64
	for i, u := range f.Unwrp {
		sum += u.Sub(m.u0[i]).Norm2()
	}
	m.last = sum / float64(len(f.Unwrp))
	m.msd = append(m.msd, m.last)
	// Full MSD does several passes over the particle arrays (1D and 2D
	// components plus the final all-particle average), reflected in a
	// higher per-atom operation count.
	n := float64(len(f.Unwrp))
	return lammps.WorkCount{Ops: n * 16, Bytes: len(f.Unwrp) * 48}
}

// Result implements Analysis: MSD(t) per consumed frame.
func (m *MSD) Result() []float64 { return append([]float64(nil), m.msd...) }

// MSD1D computes mean squared displacement in 1D spatial bins along x,
// a light-weight variant.
type MSD1D struct {
	bins int
	u0   []lammps.Vec3
	box  float64
	out  []float64
}

// NewMSD1D returns an MSD1D with the given bin count along x.
func NewMSD1D(bins int) *MSD1D {
	if bins <= 0 {
		panic("analysis: msd1d bins must be positive")
	}
	return &MSD1D{bins: bins}
}

// Name implements Analysis.
func (m *MSD1D) Name() string { return "msd1d" }

// Profile implements Analysis: low memory and CPU utilization.
func (m *MSD1D) Profile() Profile {
	return Profile{Demand: 135, Saturation: 120, Sensitivity: 0.70, SecondsPerOp: 3.76e-4}
}

// Consume implements Analysis.
func (m *MSD1D) Consume(f *lammps.Frame) lammps.WorkCount {
	if m.u0 == nil {
		m.u0 = append([]lammps.Vec3(nil), f.Unwrp...)
		m.box = f.Box
	}
	sums := make([]float64, m.bins)
	counts := make([]float64, m.bins)
	for i, u := range f.Unwrp {
		b := binIndex(f.Pos[i][0], m.box, m.bins)
		dx := u[0] - m.u0[i][0]
		sums[b] += dx * dx
		counts[b]++
	}
	m.out = make([]float64, m.bins)
	for b := range sums {
		if counts[b] > 0 {
			m.out[b] = sums[b] / counts[b]
		}
	}
	return lammps.WorkCount{Ops: float64(len(f.Unwrp)) * 4, Bytes: m.bins * 8}
}

// Result implements Analysis: per-bin 1D MSD.
func (m *MSD1D) Result() []float64 { return append([]float64(nil), m.out...) }

// MSD2D computes mean squared displacement in 2D spatial bins over the
// x-y plane: mostly memory-intensive.
type MSD2D struct {
	bins int
	u0   []lammps.Vec3
	box  float64
	out  []float64
}

// NewMSD2D returns an MSD2D with bins x bins cells over the x-y plane.
func NewMSD2D(bins int) *MSD2D {
	if bins <= 0 {
		panic("analysis: msd2d bins must be positive")
	}
	return &MSD2D{bins: bins}
}

// Name implements Analysis.
func (m *MSD2D) Name() string { return "msd2d" }

// Profile implements Analysis: memory-intensive (less than full MSD), so
// it saturates at lower power and has a lower scalable fraction.
func (m *MSD2D) Profile() Profile {
	return Profile{Demand: 150, Saturation: 125, Sensitivity: 0.60, SecondsPerOp: 3.2e-4}
}

// Consume implements Analysis.
func (m *MSD2D) Consume(f *lammps.Frame) lammps.WorkCount {
	if m.u0 == nil {
		m.u0 = append([]lammps.Vec3(nil), f.Unwrp...)
		m.box = f.Box
	}
	n := m.bins * m.bins
	sums := make([]float64, n)
	counts := make([]float64, n)
	for i, u := range f.Unwrp {
		bx := binIndex(f.Pos[i][0], m.box, m.bins)
		by := binIndex(f.Pos[i][1], m.box, m.bins)
		d := u.Sub(m.u0[i])
		sums[bx*m.bins+by] += d[0]*d[0] + d[1]*d[1]
		counts[bx*m.bins+by]++
	}
	m.out = make([]float64, n)
	for b := range sums {
		if counts[b] > 0 {
			m.out[b] = sums[b] / counts[b]
		}
	}
	return lammps.WorkCount{Ops: float64(len(f.Unwrp)) * 7, Bytes: n * 16}
}

// Result implements Analysis: row-major per-cell 2D MSD.
func (m *MSD2D) Result() []float64 { return append([]float64(nil), m.out...) }

// binIndex maps coordinate x in a box of side box onto one of bins bins.
func binIndex(x, box float64, bins int) int {
	if box <= 0 {
		return 0
	}
	b := int(x / box * float64(bins))
	if b < 0 {
		b = 0
	}
	if b >= bins {
		b = bins - 1
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

package rapl

import (
	"math"
	"testing"
	"testing/quick"

	"seesaw/internal/units"
)

func theta(t *testing.T) *Domain {
	t.Helper()
	d, err := NewDomain(Theta())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewDomainValidation(t *testing.T) {
	bad := []Config{
		{MinCap: 0, TDP: 215, LongWindow: 1},
		{MinCap: 100, TDP: 100, LongWindow: 1},
		{MinCap: 98, TDP: 215, LongWindow: 0},
	}
	for i, cfg := range bad {
		if _, err := NewDomain(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
	if _, err := NewDomain(Theta()); err != nil {
		t.Errorf("Theta config rejected: %v", err)
	}
}

func TestMustNewDomainPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNewDomain with bad config should panic")
		}
	}()
	MustNewDomain(Config{})
}

func TestCapClamping(t *testing.T) {
	d := theta(t)
	d.SetLongCap(50) // below MinCap
	d.Advance(0.02, 100)
	if got := d.LongCap(); got != 98 {
		t.Errorf("cap below MinCap clamped to %v, want 98", got)
	}
	d.SetLongCap(500) // above TDP
	d.Advance(0.02, 100)
	if got := d.LongCap(); got != 215 {
		t.Errorf("cap above TDP clamped to %v, want 215", got)
	}
	d.SetLongCap(0) // uncap
	d.Advance(0.02, 100)
	if got := d.LongCap(); got != 0 {
		t.Errorf("zero cap should remove the limit, got %v", got)
	}
}

func TestActuationLatency(t *testing.T) {
	d := theta(t)
	d.SetLongCap(110)
	// Before the latency elapses, the cap is not in force.
	if got := d.SustainedAllowed(200); got != 200 {
		t.Errorf("cap applied before actuation latency: allowed %v", got)
	}
	d.Advance(0.005, 150)
	if got := d.SustainedAllowed(200); got != 200 {
		t.Errorf("cap applied at 5ms, before the 10ms latency: %v", got)
	}
	d.Advance(0.006, 150)
	if got := d.SustainedAllowed(200); got != 110 {
		t.Errorf("cap not applied after latency: allowed %v, want 110", got)
	}
}

func TestEnergyCounter(t *testing.T) {
	d := theta(t)
	d.Advance(2, 100)
	if got := d.Energy(); got != 200 {
		t.Errorf("energy = %v, want 200 J", got)
	}
	d.Advance(1, 110)
	if got := d.Energy(); got != 310 {
		t.Errorf("energy = %v, want 310 J", got)
	}
}

func TestEnergyMonotonic(t *testing.T) {
	d := theta(t)
	prev := d.Energy()
	for i := 0; i < 100; i++ {
		d.Advance(0.1, units.Watts(90+i%60))
		if e := d.Energy(); e < prev {
			t.Fatalf("energy counter decreased: %v -> %v", prev, e)
		} else {
			prev = e
		}
	}
}

func TestAdvancePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative Advance should panic")
		}
	}()
	theta(t).Advance(-1, 100)
}

func TestWindowEnforcement(t *testing.T) {
	d := theta(t)
	d.SetLongCap(110)
	d.Advance(0.02, 100) // actuate

	// Fresh window: brief excursions above the cap are allowed.
	if got := d.Allowed(180); got <= 110 {
		t.Errorf("transient headroom not granted: allowed %v", got)
	}
	// Saturate the window at high power.
	d.Advance(1.2, 180)
	if avg := d.WindowAverage(); avg < 110 {
		t.Fatalf("window average %v below cap after high draw", avg)
	}
	if got := d.Allowed(180); got != 110 {
		t.Errorf("saturated window should regulate to the cap: allowed %v", got)
	}
	// Draining the window below the cap restores headroom.
	d.Advance(2, 90)
	if got := d.Allowed(180); got <= 110 {
		t.Errorf("headroom not restored after low draw: allowed %v", got)
	}
}

func TestSustainedAllowed(t *testing.T) {
	d := theta(t)
	if got := d.SustainedAllowed(300); got != 215 {
		t.Errorf("uncapped sustained allowed %v, want TDP", got)
	}
	d.SetLongCap(110)
	d.Advance(0.02, 100)
	if got := d.SustainedAllowed(180); got != 110 {
		t.Errorf("sustained allowed %v, want 110", got)
	}
	if got := d.SustainedAllowed(105); got != 105 {
		t.Errorf("demand below cap should pass through: %v", got)
	}
}

func TestDualCapMargin(t *testing.T) {
	d := theta(t)
	d.SetLongCap(110)
	d.SetShortCap(110)
	d.Advance(0.02, 100)
	got := d.SustainedAllowed(180)
	want := units.Watts(110 * (1 - Theta().DualCapMargin))
	if !units.NearlyEqual(float64(got), float64(want), 1e-9) {
		t.Errorf("dual-cap regulation at %v, want %v (slightly below the request)", got, want)
	}
}

func TestShortCapOnly(t *testing.T) {
	d := theta(t)
	d.SetShortCap(120)
	d.Advance(0.02, 100)
	if got := d.SustainedAllowed(180); got != 120 {
		t.Errorf("short-cap-only sustained allowed %v, want 120", got)
	}
}

func TestCapWritesCounter(t *testing.T) {
	d := theta(t)
	d.SetLongCap(110)
	d.SetShortCap(110)
	d.SetLongCap(120)
	if got := d.CapWrites(); got != 3 {
		t.Errorf("CapWrites = %d, want 3", got)
	}
}

func TestAllowedNeverExceedsTDP(t *testing.T) {
	f := func(demand float64, capW float64) bool {
		d := MustNewDomain(Theta())
		c := units.Watts(90 + mod(capW, 150))
		d.SetLongCap(c)
		d.Advance(0.02, 100)
		got := d.Allowed(units.Watts(mod(demand, 500)))
		return got >= 0 && got <= 215
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSustainedAllowedNeverExceedsCap(t *testing.T) {
	f := func(demand float64, capW float64) bool {
		d := MustNewDomain(Theta())
		c := units.Watts(98 + mod(capW, 117))
		d.SetLongCap(c)
		d.Advance(0.02, 100)
		got := d.SustainedAllowed(units.Watts(mod(demand, 500)))
		return got <= d.LongCap()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWindowAverageTracksConstantDraw(t *testing.T) {
	d := theta(t)
	for i := 0; i < 50; i++ {
		d.Advance(0.1, 120)
	}
	if avg := d.WindowAverage(); !units.NearlyEqual(float64(avg), 120, 1e-6) {
		t.Errorf("window average %v, want 120", avg)
	}
}

func mod(x, m float64) float64 {
	v := math.Mod(math.Abs(x), m)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

// The strictly power-aware policy: SLURM's power-management scheme as
// described in Section II of the paper.
package core

import (
	"fmt"

	"seesaw/internal/units"
)

// PowerAwareConfig parameterizes the SLURM-style allocator.
type PowerAwareConfig struct {
	// Constraints carry the budget and hardware cap range.
	Constraints Constraints
	// AtCapMargin is how close (in Watts) a node's measured power must
	// be to its cap to count as "at the power cap" and therefore
	// needing more power.
	AtCapMargin units.Watts
	// Headroom is the cushion left above a donor node's measured power
	// when trimming its cap, so ordinary fluctuation doesn't
	// immediately throttle it.
	Headroom units.Watts
	// Window is w: how many synchronizations between reallocations.
	// The paper applies its w window to the power-aware implementation
	// too (Section VI-B).
	Window int
}

// DefaultPowerAwareConfig returns the margins used in the evaluation.
func DefaultPowerAwareConfig(c Constraints) PowerAwareConfig {
	return PowerAwareConfig{Constraints: c, AtCapMargin: 1, Headroom: 1, Window: 1}
}

// PowerAware reimplements SLURM's strictly power-aware redistribution:
// nodes whose measured power is at their cap are starved; nodes below
// their cap have excess. Excess power (cap minus measured, less a
// headroom cushion) is reclaimed from the under-cap nodes and divided
// evenly among the starved ones. The policy looks only at power — it has
// no notion of whether a watt moved actually buys performance, which is
// precisely the blindness the paper demonstrates (Section VII-B1: slack
// fluctuates between 0.2% and 40% under this policy).
//
// Per Section VI-B, the in-situ implementation invokes it at
// synchronization points (rather than SLURM's fixed wall-clock interval)
// to give it its best case, and the w window applies.
type PowerAware struct {
	cfg        PowerAwareConfig
	sinceAlloc int
	allocs     int
}

// NewPowerAware returns a power-aware allocator.
func NewPowerAware(cfg PowerAwareConfig) (*PowerAware, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("core: power-aware window must be >= 1, got %d", cfg.Window)
	}
	if err := cfg.Constraints.Validate(0); err != nil {
		return nil, err
	}
	return &PowerAware{cfg: cfg}, nil
}

// MustNewPowerAware is NewPowerAware that panics on config errors.
func MustNewPowerAware(cfg PowerAwareConfig) *PowerAware {
	p, err := NewPowerAware(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Policy.
func (*PowerAware) Name() string { return "power-aware" }

// Allocations reports how many times power was redistributed.
func (p *PowerAware) Allocations() int { return p.allocs }

// Allocate implements Policy.
func (p *PowerAware) Allocate(step int, nodes []NodeMeasure) []units.Watts {
	p.sinceAlloc++
	if p.sinceAlloc < p.cfg.Window {
		return nil
	}
	p.sinceAlloc = 0

	c := p.cfg.Constraints
	het := heteroNodes(nodes)
	caps := make([]units.Watts, len(nodes))
	needy := make([]int, 0, len(nodes))
	alive := 0
	for i, n := range nodes {
		if n.Health == Dead {
			// Dead nodes hold no cap; their budget share returns to
			// the survivors in the re-anchor pass below.
			continue
		}
		alive++
		caps[i] = n.Cap
		if n.Power >= n.Cap-p.cfg.AtCapMargin {
			// At the cap: the node "requires more power".
			needy = append(needy, i)
		}
	}
	// "The power-aware algorithm takes action only if nodes are at the
	// power cap, otherwise it assumes the application has available
	// power" (Section VII-A). With dead nodes present it still acts,
	// to hand their share back.
	if alive == 0 || (len(needy) == 0 && alive == len(nodes)) {
		return nil
	}

	var pool units.Watts
	for i, n := range nodes {
		if n.Health == Dead || n.Power >= n.Cap-p.cfg.AtCapMargin {
			continue
		}
		// Below the cap: reclaim the excess beyond a headroom cushion,
		// but never trim below the node's delta_min (its own class
		// floor on a heterogeneous cluster).
		nLo, nHi := n.CapRange(c)
		target := units.ClampWatts(n.Power+p.cfg.Headroom, nLo, nHi)
		if target < caps[i] {
			pool += caps[i] - target
			caps[i] = target
		}
	}
	// Dynamic membership: any budget not covered by the live caps
	// (a dead node's former share) joins the pool, bounded by what the
	// survivors can absorb under delta_max.
	var capTotal units.Watts
	for i, n := range nodes {
		if n.Health != Dead {
			capTotal += caps[i]
		}
	}
	if orphan := c.Budget - capTotal - pool; orphan > capConservationEps {
		maxTotal := c.MaxCap * units.Watts(alive)
		if het {
			maxTotal = 0
			for _, n := range nodes {
				if n.Health == Dead {
					continue
				}
				_, nHi := n.CapRange(c)
				maxTotal += nHi
			}
		}
		if room := maxTotal - capTotal; orphan > room {
			orphan = room
		}
		if orphan > 0 {
			pool += orphan
		}
	}

	if len(needy) > 0 && pool > 0 {
		if het {
			// Grants follow capability: a starved GPU gets a larger
			// slice of the pool than a starved low-power node, bounded
			// by each node's own ceiling.
			var wsum float64
			for _, i := range needy {
				wsum += weightOf(nodes[i])
			}
			pool0 := pool
			for _, i := range needy {
				grant := units.Watts(float64(pool0) * weightOf(nodes[i]) / wsum)
				_, nHi := nodes[i].CapRange(c)
				if room := nHi - caps[i]; grant > room {
					grant = room
				}
				caps[i] += grant
				pool -= grant
			}
		} else {
			// "The excess power is divided evenly among nodes that
			// require more power."
			share := pool / units.Watts(len(needy))
			for _, i := range needy {
				grant := share
				room := c.MaxCap - caps[i]
				if grant > room {
					grant = room
				}
				caps[i] += grant
				pool -= grant
			}
		}
	}
	// Any unplaceable remainder (all needy nodes at delta_max, or no
	// needy nodes at all) is returned evenly so the budget isn't leaked.
	if pool > 0 {
		share := pool / units.Watts(alive)
		for i, n := range nodes {
			if n.Health == Dead {
				continue
			}
			nLo, nHi := n.CapRange(c)
			caps[i] = units.ClampWatts(caps[i]+share, nLo, nHi)
		}
	}

	p.allocs++
	return caps
}

package cluster

import (
	"strings"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/telemetry"
)

func mustNew(t *testing.T, cfg Config) *Cluster {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewBuildsPartitions(t *testing.T) {
	c := mustNew(t, Config{SimNodes: 3, AnaNodes: 2, JobSeed: 11})
	if c.Size() != 5 || c.SimNodes() != 3 || c.AnaNodes() != 2 {
		t.Fatalf("sizes = %d/%d/%d", c.Size(), c.SimNodes(), c.AnaNodes())
	}
	for i := 0; i < 5; i++ {
		wantRole := core.RoleSimulation
		if i >= 3 {
			wantRole = core.RoleAnalysis
		}
		if c.Role(i) != wantRole {
			t.Errorf("node %d role = %v, want %v", i, c.Role(i), wantRole)
		}
		if c.Health(i) != core.Healthy || !c.Alive(i) {
			t.Errorf("node %d not healthy at start", i)
		}
		if c.Node(i).ID() != i {
			t.Errorf("node %d machine id = %d", i, c.Node(i).ID())
		}
	}
	sim, ana := c.AliveCounts()
	if sim != 3 || ana != 2 {
		t.Errorf("alive = %d/%d, want 3/2", sim, ana)
	}
}

// TestSeedWiringMatchesDirectConstruction pins the refactor invariant:
// the cluster builds exactly the nodes the drivers used to build
// themselves, so fault-free runs stay byte-identical.
func TestSeedWiringMatchesDirectConstruction(t *testing.T) {
	noise := machine.DefaultNoise()
	c := mustNew(t, Config{SimNodes: 2, AnaNodes: 2, Noise: noise, JobSeed: 42, RunSeed: 99})
	for i := 0; i < 4; i++ {
		want := machine.NewNodeWithSeeds(i, c.cfg.Rapl, c.cfg.Machine, noise, 42, 99)
		if got := c.Node(i).Skew(); got != want.Skew() {
			t.Errorf("node %d skew = %v, want %v", i, got, want.Skew())
		}
	}
	// RunSeed zero falls back to JobSeed (insitu's single-seed mode).
	a := mustNew(t, Config{SimNodes: 1, AnaNodes: 1, Noise: noise, JobSeed: 7})
	b := mustNew(t, Config{SimNodes: 1, AnaNodes: 1, Noise: noise, JobSeed: 7, RunSeed: 7})
	ea := a.Node(0).Run(machine.Phase{Name: "p", Nominal: 1, Demand: 110, Saturation: 140, Sensitivity: 0.9}, noise)
	eb := b.Node(0).Run(machine.Phase{Name: "p", Nominal: 1, Demand: 110, Saturation: 140, Sensitivity: 0.9}, noise)
	if ea.Duration != eb.Duration {
		t.Errorf("RunSeed 0 should equal RunSeed == JobSeed: %v vs %v", ea.Duration, eb.Duration)
	}
}

func TestNewRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"no sim", Config{SimNodes: 0, AnaNodes: 2}, "positive partition"},
		{"no ana", Config{SimNodes: 2, AnaNodes: 0}, "positive partition"},
		{"plan out of range", Config{SimNodes: 2, AnaNodes: 2,
			Faults: &fault.Plan{Events: []fault.Event{{Kind: fault.Kill, Node: 9, Sync: 1}}}}, "outside"},
		{"sim wipeout", Config{SimNodes: 2, AnaNodes: 2,
			Faults: &fault.Plan{Events: []fault.Event{
				{Kind: fault.Kill, Node: 0, Sync: 1}, {Kind: fault.Kill, Node: 1, Sync: 5}}}},
			"kills all 2 simulation"},
		{"ana wipeout", Config{SimNodes: 2, AnaNodes: 1,
			Faults: &fault.Plan{Events: []fault.Event{{Kind: fault.Kill, Node: 2, Sync: 3}}}},
			"kills all 1 analysis"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("New err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestAdvanceKill(t *testing.T) {
	hub := telemetry.New(telemetry.Options{})
	plan, err := fault.Parse("kill:3@5")
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{SimNodes: 2, AnaNodes: 2, Faults: plan, Telemetry: hub})

	if trs := c.Advance(1.0, 4); trs != nil {
		t.Fatalf("no transitions before sync 5, got %v", trs)
	}
	trs := c.Advance(2.5, 5)
	if len(trs) != 1 {
		t.Fatalf("transitions = %v, want one kill", trs)
	}
	tr := trs[0]
	if tr.NodeID != 3 || tr.Role != core.RoleAnalysis || tr.From != core.Healthy || tr.To != core.Dead || tr.Sync != 5 {
		t.Errorf("transition = %+v", tr)
	}
	if c.Alive(3) || c.Health(3) != core.Dead {
		t.Error("node 3 should be dead")
	}
	sim, ana := c.AliveCounts()
	if sim != 2 || ana != 1 {
		t.Errorf("alive = %d/%d, want 2/1", sim, ana)
	}
	if got := c.WorkScale(core.RoleAnalysis); got != 2 {
		t.Errorf("ana WorkScale = %v, want 2", got)
	}
	if got := c.WorkScale(core.RoleSimulation); got != 1 {
		t.Errorf("sim WorkScale = %v, want 1", got)
	}
	// Kills are idempotent: later syncs fire nothing.
	if trs := c.Advance(3.0, 6); trs != nil {
		t.Errorf("re-advance fired %v", trs)
	}
	evs := hub.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1", len(evs))
	}
	k, ok := evs[0].(telemetry.NodeKilled)
	if !ok || k.Node != 3 || k.Sync != 5 || k.AliveSim != 2 || k.AliveAna != 1 || k.Role != "ana" {
		t.Errorf("NodeKilled = %#v", evs[0])
	}
}

// TestAdvanceCatchUp: a driver that first reaches the plan later than
// the kill sync (e.g. after an epoch boundary) still applies it.
func TestAdvanceCatchUp(t *testing.T) {
	plan, _ := fault.Parse("kill:1@3")
	c := mustNew(t, Config{SimNodes: 2, AnaNodes: 1, Faults: plan})
	trs := c.Advance(9, 8)
	if len(trs) != 1 || trs[0].NodeID != 1 || trs[0].Sync != 8 {
		t.Fatalf("catch-up transitions = %v", trs)
	}
}

func TestSlowExcursion(t *testing.T) {
	hub := telemetry.New(telemetry.Options{})
	plan, err := fault.Parse("slow:0@4x2+3") // syncs 4,5,6 at 2x
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{SimNodes: 2, AnaNodes: 1, Faults: plan, Telemetry: hub})

	c.Advance(1, 3)
	if c.Node(0).SlowFactor() != 1 || c.Health(0) != core.Healthy {
		t.Fatal("excursion started early")
	}
	trs := c.Advance(2, 4)
	if len(trs) != 1 || trs[0].To != core.Degraded || trs[0].Factor != 2 {
		t.Fatalf("degrade transitions = %v", trs)
	}
	if c.Node(0).SlowFactor() != 2 || c.Health(0) != core.Degraded {
		t.Error("slow factor not applied")
	}
	if trs := c.Advance(3, 5); trs != nil {
		t.Errorf("mid-window re-fire: %v", trs)
	}
	trs = c.Advance(4, 7)
	if len(trs) != 1 || trs[0].To != core.Healthy {
		t.Fatalf("recover transitions = %v", trs)
	}
	if c.Node(0).SlowFactor() != 1 || c.Health(0) != core.Healthy {
		t.Error("node did not recover")
	}
	var kinds []string
	for _, e := range hub.Events() {
		kinds = append(kinds, e.Kind())
	}
	if len(kinds) != 2 || kinds[0] != "NodeDegraded" || kinds[1] != "NodeRecovered" {
		t.Errorf("events = %v", kinds)
	}
}

// TestKillWhileDegraded: the excursion ends with the node, keeping the
// telemetry degraded gauge consistent.
func TestKillWhileDegraded(t *testing.T) {
	hub := telemetry.New(telemetry.Options{})
	plan, err := fault.Parse("slow:0@2x2+10,kill:0@5")
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{SimNodes: 2, AnaNodes: 1, Faults: plan, Telemetry: hub})
	c.Advance(1, 2)
	trs := c.Advance(2, 5)
	if len(trs) != 1 || trs[0].From != core.Degraded || trs[0].To != core.Dead {
		t.Fatalf("kill transitions = %v", trs)
	}
	var kinds []string
	for _, e := range hub.Events() {
		kinds = append(kinds, e.Kind())
	}
	want := []string{"NodeDegraded", "NodeRecovered", "NodeKilled"}
	if len(kinds) != 3 || kinds[0] != want[0] || kinds[1] != want[1] || kinds[2] != want[2] {
		t.Errorf("events = %v, want %v", kinds, want)
	}
	var sb strings.Builder
	if err := hub.Registry().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `seesaw_degraded_nodes{partition="sim"} 0`) {
		t.Error("degraded gauge not restored by kill")
	}
}

// TestApplyPerRank covers the rank-parallel path.
func TestApplyPerRank(t *testing.T) {
	plan, err := fault.Parse("kill:2@3,slow:0@2x1.5+2")
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{SimNodes: 2, AnaNodes: 2, Faults: plan})
	if _, dead := c.Apply(2, 1, 1); dead {
		t.Fatal("node 2 dead before its sync")
	}
	trs, dead := c.Apply(2, 2, 3)
	if !dead || len(trs) != 1 || trs[0].To != core.Dead {
		t.Fatalf("Apply kill = %v, %v", trs, dead)
	}
	// Apply on a dead node is a no-op that still reports dead.
	trs, dead = c.Apply(2, 3, 4)
	if !dead || trs != nil {
		t.Errorf("re-Apply = %v, %v", trs, dead)
	}
	// Other nodes are untouched by node 2's applications.
	trs, dead = c.Apply(0, 2, 2)
	if dead || len(trs) != 1 || trs[0].To != core.Degraded || trs[0].Factor != 1.5 {
		t.Errorf("Apply slow = %v, %v", trs, dead)
	}
}

func TestMeasureIdentity(t *testing.T) {
	plan, _ := fault.Parse("kill:1@1")
	c := mustNew(t, Config{SimNodes: 2, AnaNodes: 1, Faults: plan})
	c.Node(0).RAPL().SetLongCap(120)
	c.Node(0).Idle(1) // let the cap's actuation latency elapse
	c.Advance(0, 1)
	m := c.Measure(0)
	if m.NodeID != 0 || m.Health != core.Healthy || m.Role != core.RoleSimulation || m.Cap != 120 {
		t.Errorf("live measure = %+v", m)
	}
	d := c.Measure(1)
	if d.NodeID != 1 || d.Health != core.Dead || d.Cap != 0 {
		t.Errorf("dead measure = %+v", d)
	}
}

func TestTransitionString(t *testing.T) {
	tr := Transition{NodeID: 2, Role: core.RoleSimulation, From: core.Healthy, To: core.Degraded, Factor: 2, Sync: 4}
	if got := tr.String(); !strings.Contains(got, "x2") || !strings.Contains(got, "node 2") {
		t.Errorf("String = %q", got)
	}
	tr2 := Transition{NodeID: 3, Role: core.RoleAnalysis, From: core.Healthy, To: core.Dead, Sync: 5}
	if got := tr2.String(); !strings.Contains(got, "dead") {
		t.Errorf("String = %q", got)
	}
}

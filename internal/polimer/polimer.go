// Package polimer reimplements the PoLiMER application-level power
// management library the paper extends (Marincic et al., E2SC'17): power
// monitoring and capping for distributed message-passing applications,
// with the two-call instrumentation interface of Section IV-B / VI-C:
//
//	mgr := polimer.Init(rank, world, role, node, opts)  // poli_init_power_manager
//	...
//	mgr.PowerAlloc()                                    // poli_power_alloc, before each sync
//
// Init supplies the application knowledge SeeSAw needs — each process's
// identity as simulation or analysis and its initial power cap — and
// PowerAlloc is invoked by every rank immediately before a
// simulation/analysis synchronization.
//
// Measurement semantics follow Section VI-B: one monitor rank per node;
// partition time is the slowest rank's interval time (including the time
// to perform the previous power allocation); partition power is the sum
// of node power measurements. Internally each PowerAlloc performs an
// Allgather of per-node measurements (this doubles as the rendezvous of
// the synchronization phase), lets the policy rank compute the new
// allocation, broadcasts the caps, and writes them to the local RAPL
// domain.
package polimer

import (
	"fmt"

	"seesaw/internal/core"
	"seesaw/internal/machine"
	"seesaw/internal/mpi"
	"seesaw/internal/telemetry"
	"seesaw/internal/trace"
	"seesaw/internal/units"
)

// Options configures a rank's power manager.
type Options struct {
	// Policy is the allocation policy; only the policy root's instance
	// is consulted. Must be non-nil on the root.
	Policy core.Policy
	// Constraints carry the global budget and per-node cap range.
	Constraints core.Constraints
	// InitialCap is the per-node cap installed at Init ("power_cap" of
	// poli_init_power_manager). Zero leaves the node uncapped.
	InitialCap units.Watts
	// ShortTermCap additionally installs a short-term RAPL cap at the
	// same value (the "Long and Short" capping mode of Table I).
	ShortTermCap bool
	// Root is the world rank that runs the policy (default 0).
	Root int
	// Telemetry, when non-nil, receives per-synchronization barrier
	// records and idle-wait observations from this rank, and policy
	// decisions from the root. Nil disables instrumentation at no cost.
	Telemetry *telemetry.Hub
	// Health, when non-nil, reports this rank's node health at each
	// allocation (the cluster layer's view under fault injection); nil
	// means always Healthy.
	Health func() core.Health
	// Capability, when non-nil, resolves a node id to its device-class
	// capability (cluster.CapabilityFn on a heterogeneous cluster).
	// Capability is static cluster configuration the policy root knows
	// a priori, so it is merged into the measurements root-side rather
	// than travelling in the Allgather — the exchange's modeled wire
	// size is unchanged. Nil means a homogeneous cluster.
	Capability func(id int) core.NodeCapability
}

// measure is the per-node record exchanged at each allocation.
type measure struct {
	id     int // stable node id (world rank)
	health core.Health
	role   core.Role
	time   units.Seconds // allocator-to-allocator interval (work + wait)
	busy   units.Seconds // pure work time
	epoch  units.Seconds // loop-level (epoch) view of the interval
	power  units.Watts
	cap    units.Watts
}

// Manager is the per-rank PoLiMER handle.
type Manager struct {
	rank *mpi.Rank
	comm *mpi.Comm
	role core.Role
	node *machine.Node
	opts Options

	lastClock  units.Seconds
	lastEnergy units.Joules
	prevWait   units.Seconds
	extWait    units.Seconds

	syncStep int
	log      *trace.SyncLog // root only
	overhead units.Seconds  // cumulative allocator overhead (local)
	monitor  *Monitor       // optional periodic power sampler

	// idleWaitM is the telemetry handle for this partition's idle-trough
	// histogram, resolved once at Init so PowerAlloc skips the registry's
	// label lookup at every synchronization (nil when telemetry is off).
	idleWaitM *telemetry.Metric
}

// AttachMonitor registers a Monitor that PowerAlloc polls at every
// synchronization, so sampled power traces cover the waits too.
func (m *Manager) AttachMonitor(mon *Monitor) { m.monitor = mon }

// Init creates the rank's power manager and installs the initial cap.
// It mirrors poli_init_power_manager(comm, me, master, power_cap): comm
// and me come from the mpi handle, master is the role, power_cap the
// initial per-node cap.
func Init(rank *mpi.Rank, role core.Role, node *machine.Node, opts Options) (*Manager, error) {
	if node == nil {
		return nil, fmt.Errorf("polimer: nil node")
	}
	if opts.Root < 0 || opts.Root >= rank.WorldSize() {
		return nil, fmt.Errorf("polimer: root %d out of range", opts.Root)
	}
	if rank.WorldRank() == opts.Root && opts.Policy == nil {
		return nil, fmt.Errorf("polimer: policy required on root rank")
	}
	m := &Manager{
		rank: rank,
		comm: rank.World(),
		role: role,
		node: node,
		opts: opts,
	}
	if opts.Telemetry != nil && rank.WorldRank() == opts.Root && opts.Policy != nil {
		m.opts.Policy = core.Instrument(opts.Policy, opts.Telemetry,
			func() float64 { return float64(rank.Clock()) })
	}
	if opts.InitialCap > 0 {
		node.RAPL().SetLongCap(opts.InitialCap)
		if opts.ShortTermCap {
			node.RAPL().SetShortCap(opts.InitialCap)
		}
	}
	if rank.WorldRank() == opts.Root {
		m.log = &trace.SyncLog{}
	}
	m.idleWaitM = opts.Telemetry.IdleWaitMetric(role.String())
	m.lastClock = rank.Clock()
	m.lastEnergy = node.RAPL().Energy()
	return m, nil
}

// Role returns the rank's partition role.
func (m *Manager) Role() core.Role { return m.role }

// SyncLog returns the per-synchronization record log (nil on non-root
// ranks).
func (m *Manager) SyncLog() *trace.SyncLog { return m.log }

// OverheadTotal returns the cumulative virtual time this rank spent
// inside PowerAlloc (communication + actuation accounting).
func (m *Manager) OverheadTotal() units.Seconds { return m.overhead }

// NoteExternalWait records d seconds the rank spent blocked on
// application communication (e.g. an analysis rank waiting for the
// simulation's frame): the node idles through it (drawing idle power)
// and the span counts as synchronization wait rather than busy time in
// the interval measurements. Callers invoke it right after a blocking
// receive, passing how far the receive advanced the virtual clock.
func (m *Manager) NoteExternalWait(d units.Seconds) {
	if d <= 0 {
		return
	}
	m.node.Idle(d)
	m.extWait += d
}

// PowerAlloc measures the just-completed interval, synchronizes with all
// ranks, runs the policy, and applies new caps. It must be called by
// every rank at each simulation/analysis synchronization point, exactly
// like poli_power_alloc() in the instrumented LAMMPS.
func (m *Manager) PowerAlloc() {
	m.syncStep++
	arrival := m.rank.Clock()

	// Local interval measurement. The interval runs arrival-to-arrival
	// of consecutive allocator calls, so it contains the previous
	// synchronization's wait (charged as idle inside the previous call)
	// plus any noted external waits plus the work — matching PoLiMER's
	// semantics where poli_power_alloc brackets the synchronization.
	dt := arrival - m.lastClock
	e := m.node.RAPL().Energy() - m.lastEnergy
	avgPower := units.AvgPower(e, dt)
	busy := dt - m.extWait - m.prevWait
	if busy < 0 {
		busy = 0
	}
	wait := dt - busy
	m.extWait = 0
	health := core.Healthy
	if m.opts.Health != nil {
		health = m.opts.Health()
	}
	my := measure{
		id:     m.rank.WorldRank(),
		health: health,
		role:   m.role,
		time:   dt,
		busy:   busy,
		epoch:  busy + units.Seconds(float64(wait)*0.8),
		power:  avgPower,
		cap:    m.node.RAPL().LongCap(),
	}

	// Exchange measurements; this Allgather is also the rendezvous of
	// the synchronization phase, so the wait of the faster partition
	// happens here.
	gathered := m.comm.Allgather(my, 8*4)
	merged := m.rank.Clock()
	exchangeCost := m.rank.Cost().CollectiveCost(m.comm.Size(), 8*4*m.comm.Size())
	m.prevWait = 0
	if wait := merged - arrival - exchangeCost; wait > 0 {
		// The faster ranks idle at the synchronization (the troughs of
		// the paper's Figure 1), drawing idle power.
		m.node.Idle(wait)
		m.prevWait = wait
		if m.idleWaitM != nil {
			m.idleWaitM.Observe(float64(wait))
		}
	}
	if m.monitor != nil {
		m.monitor.Poll()
	}

	// Policy evaluation on the root; everyone receives the caps.
	var caps []units.Watts
	if m.rank.WorldRank() == m.opts.Root {
		nodes := make([]core.NodeMeasure, len(gathered))
		for i, g := range gathered {
			mm := g.(measure)
			nodes[i] = core.NodeMeasure{NodeID: mm.id, Health: mm.health, Role: mm.role,
				Time: mm.time, BusyTime: mm.busy, EpochTime: mm.epoch, Power: mm.power, Cap: mm.cap}
			if m.opts.Capability != nil {
				nodes[i].NodeCapability = m.opts.Capability(mm.id)
			}
		}
		caps = m.opts.Policy.Allocate(m.syncStep, nodes)
		if m.log != nil {
			rec := m.buildRecord(nodes, exchangeCost)
			m.log.Add(rec)
			if m.opts.Telemetry != nil {
				m.opts.Telemetry.SyncBarrier(float64(m.rank.Clock()), rec.Step,
					float64(rec.IntervalTime()), float64(rec.SimTime), float64(rec.AnaTime),
					rec.Slack(), float64(exchangeCost))
			}
		}
	}
	res := m.comm.Bcast(m.opts.Root, caps, 8*m.comm.Size())
	caps, _ = res.([]units.Watts)

	// Apply this node's new cap, if the policy changed it.
	if caps != nil {
		myCap := caps[m.rank.WorldRank()]
		if myCap > 0 && myCap != m.node.RAPL().LongCap() {
			m.node.RAPL().SetLongCap(myCap)
			if m.opts.ShortTermCap {
				m.node.RAPL().SetShortCap(myCap)
			}
		}
	}

	// The allocator's own cost (the collective exchanges above advanced
	// the virtual clock) is part of the next interval's time, matching
	// the paper's measurement convention. The next interval is measured
	// from this arrival so it includes the synchronization wait charged
	// above.
	m.overhead += (m.rank.Clock() - merged) + exchangeCost
	m.lastClock = arrival
	m.lastEnergy = e + m.lastEnergy // energy at arrival
}

// buildRecord aggregates per-node measures into the root's SyncRecord.
func (m *Manager) buildRecord(nodes []core.NodeMeasure, exchangeCost units.Seconds) trace.SyncRecord {
	rec := trace.SyncRecord{Step: m.syncStep}
	var nSim, nAna int
	for _, n := range nodes {
		switch n.Role {
		case core.RoleSimulation:
			nSim++
			rec.SimPower += n.Power
			rec.SimCap = n.Cap
			if n.BusyTime > rec.SimTime {
				rec.SimTime = n.BusyTime
			}
		case core.RoleAnalysis:
			nAna++
			rec.AnaPower += n.Power
			rec.AnaCap = n.Cap
			if n.BusyTime > rec.AnaTime {
				rec.AnaTime = n.BusyTime
			}
		}
	}
	// Report per-node average power, matching the paper's per-node
	// power plots.
	if nSim > 0 {
		rec.SimPower /= units.Watts(nSim)
	}
	if nAna > 0 {
		rec.AnaPower /= units.Watts(nAna)
	}
	rec.Overhead = exchangeCost
	return rec
}

package rollout

import (
	"bytes"
	"context"
	"testing"

	"seesaw/internal/cosim"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/trace"
	"seesaw/internal/workflow"
	"seesaw/internal/workload"
)

// testSpec is a small-but-real episode: 8 nodes, a 2x slowdown
// excursion mid-run, paper-default noise.
func testSpec(topology string, t *testing.T) Spec {
	t.Helper()
	plan, err := fault.Parse("slow:0@5x2+8")
	if err != nil {
		t.Fatal(err)
	}
	return Spec{
		Workload: workload.Spec{
			SimNodes: 4, AnaNodes: 4,
			Dim: 16, J: 1, Steps: 30,
			Analyses: workload.Tasks("msd"),
		},
		Topology: topology,
		Seed:     9,
		RunSeed:  10,
		Noise:    machine.DefaultNoise(),
		Faults:   plan,
	}
}

func syncCSV(t *testing.T, log *trace.SyncLog) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := log.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestEnvByteIdenticalToInLoopCosim pins the package's core contract:
// a registry policy driven through the Env step API reproduces the
// space-shared driver's in-loop execution byte for byte.
func TestEnvByteIdenticalToInLoopCosim(t *testing.T) {
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			spec := testSpec("", t)
			n := spec.Workload.SimNodes + spec.Workload.AnaNodes
			cons := spec.constraints(n)

			inPol, err := policy.New(name, cons, 1)
			if err != nil {
				t.Fatal(err)
			}
			inRes, err := cosim.Run(context.Background(), cosim.Config{
				Spec:        spec.Workload,
				Policy:      inPol,
				Constraints: cons,
				CapMode:     cosim.CapLong,
				Seed:        spec.Seed,
				RunSeed:     spec.RunSeed,
				Noise:       spec.Noise,
				Faults:      spec.Faults,
			})
			if err != nil {
				t.Fatal(err)
			}

			envPol, err := policy.New(name, cons, 1)
			if err != nil {
				t.Fatal(err)
			}
			envRes, err := Run(context.Background(), spec, envPol)
			if err != nil {
				t.Fatal(err)
			}

			if envRes.TotalTime != inRes.TotalTime || envRes.TotalEnergy != inRes.TotalEnergy {
				t.Errorf("env totals (%v s, %v J) != in-loop (%v s, %v J)",
					envRes.TotalTime, envRes.TotalEnergy, inRes.TotalTime, inRes.TotalEnergy)
			}
			if !bytes.Equal(syncCSV(t, envRes.SyncLog), syncCSV(t, inRes.SyncLog)) {
				t.Error("env SyncLog diverges from in-loop SyncLog")
			}
		})
	}
}

// TestEnvByteIdenticalToInLoopWorkflow is the same contract over the
// workflow driver (dag and in-transit placements).
func TestEnvByteIdenticalToInLoopWorkflow(t *testing.T) {
	for _, topology := range []string{"dag", "in-transit"} {
		t.Run(topology, func(t *testing.T) {
			spec := testSpec(topology, t)
			topo, err := workflow.Build(topology, workflow.Params{
				Nodes:    spec.Workload.SimNodes + spec.Workload.AnaNodes,
				Dim:      spec.Workload.Dim,
				J:        spec.Workload.J,
				Steps:    spec.Workload.Steps,
				Analyses: spec.Workload.Analyses,
			})
			if err != nil {
				t.Fatal(err)
			}
			cons := topo.ScaleCaps(spec.constraints(topo.PhysicalNodes))

			inPol, err := policy.New("seesaw", cons, 1)
			if err != nil {
				t.Fatal(err)
			}
			inRes, err := workflow.Run(context.Background(), workflow.Config{
				Graph:       topo.Graph,
				Steps:       spec.Workload.Steps,
				SyncEvery:   spec.Workload.J,
				Policy:      inPol,
				Constraints: cons,
				Seed:        spec.Seed,
				RunSeed:     spec.RunSeed,
				Noise:       spec.Noise,
				Faults:      spec.Faults,
			})
			if err != nil {
				t.Fatal(err)
			}

			envPol, err := policy.New("seesaw", cons, 1)
			if err != nil {
				t.Fatal(err)
			}
			envRes, err := Run(context.Background(), spec, envPol)
			if err != nil {
				t.Fatal(err)
			}

			if envRes.TotalTime != inRes.MainLoopTime || envRes.TotalEnergy != inRes.TotalEnergy {
				t.Errorf("env totals (%v s, %v J) != in-loop (%v s, %v J)",
					envRes.TotalTime, envRes.TotalEnergy, inRes.MainLoopTime, inRes.TotalEnergy)
			}
			if !bytes.Equal(syncCSV(t, envRes.SyncLog), syncCSV(t, inRes.SyncLog)) {
				t.Error("env SyncLog diverges from in-loop SyncLog")
			}
		})
	}
}

// TestEnvStepAPI exercises the explicit Reset/Step/Result loop: the
// observation stream covers every sync, aggregates are filled, and
// Result is gated on completion.
func TestEnvStepAPI(t *testing.T) {
	env := NewEnv()
	defer env.Close()

	spec := testSpec("", t)
	obs, err := env.Reset(spec)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Step != 1 {
		t.Fatalf("first observation at step %d, want 1", obs.Step)
	}
	if len(obs.Measures) != 8 {
		t.Fatalf("observation has %d measures, want 8", len(obs.Measures))
	}
	if obs.AliveSim != 4 || obs.AliveAna != 4 {
		t.Errorf("alive counts %d/%d, want 4/4", obs.AliveSim, obs.AliveAna)
	}
	if obs.SimPower <= 0 || obs.SimTime <= 0 {
		t.Errorf("aggregates not filled: %+v", obs)
	}
	if _, err := env.Result(); err == nil {
		t.Error("Result succeeded mid-episode")
	}

	steps := 1
	for {
		next, done := env.Step(nil) // nil action: leave caps unchanged
		if done {
			break
		}
		if next.Step != obs.Step+1 {
			t.Fatalf("observation step %d after %d", next.Step, obs.Step)
		}
		obs = next
		steps++
	}
	if steps != spec.Workload.Steps {
		t.Errorf("saw %d observations, want %d", steps, spec.Workload.Steps)
	}
	res, err := env.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || len(res.SyncLog.Records) != spec.Workload.Steps {
		t.Errorf("result incomplete: time %v, %d records", res.TotalTime, len(res.SyncLog.Records))
	}
}

// TestEnvResetAbandonsEpisode: Reset mid-episode must unwind the old
// driver and start clean.
func TestEnvResetAbandonsEpisode(t *testing.T) {
	env := NewEnv()
	defer env.Close()

	spec := testSpec("", t)
	if _, err := env.Reset(spec); err != nil {
		t.Fatal(err)
	}
	if _, done := env.Step(nil); done {
		t.Fatal("episode ended after one step")
	}
	obs, err := env.Reset(spec)
	if err != nil {
		t.Fatal(err)
	}
	if obs.Step != 1 {
		t.Fatalf("restarted episode observes step %d, want 1", obs.Step)
	}
}

// TestBatchByteIdenticalAcrossJobs pins Batch's concurrency contract:
// outcomes are pure functions of their points, so jobs=1 and jobs=8
// produce identical results in identical order.
func TestBatchByteIdenticalAcrossJobs(t *testing.T) {
	points, err := Grid{
		Nodes:      []int{8},
		Steps:      12,
		Faults:     []string{"", "slow:0@4x2+4"},
		Topologies: []string{"", "dag"},
		Policies:   []string{"seesaw", "time-aware", "bandit"},
		Seed:       5,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}

	run := func(jobs int) []Outcome {
		outs, err := Batch(context.Background(), points, Options{Jobs: jobs})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		return outs
	}
	seq, par := run(1), run(8)
	if len(seq) != len(points) || len(par) != len(points) {
		t.Fatalf("outcome counts %d/%d, want %d", len(seq), len(par), len(points))
	}
	for i := range seq {
		if seq[i].Point.Key != par[i].Point.Key {
			t.Fatalf("outcome %d keys diverge: %q vs %q", i, seq[i].Point.Key, par[i].Point.Key)
		}
		a, b := seq[i].Result, par[i].Result
		if a == nil || b == nil {
			t.Fatalf("point %q failed: %v / %v", points[i].Key, seq[i].Err, par[i].Err)
		}
		if a.TotalTime != b.TotalTime || a.TotalEnergy != b.TotalEnergy {
			t.Errorf("point %q totals diverge across jobs", points[i].Key)
		}
		if !bytes.Equal(syncCSV(t, a.SyncLog), syncCSV(t, b.SyncLog)) {
			t.Errorf("point %q SyncLog diverges across jobs", points[i].Key)
		}
	}
}

// TestGridExpandValidation: bad axis values fail fast, before any
// rollout runs.
func TestGridExpandValidation(t *testing.T) {
	if _, err := (Grid{Policies: []string{"nope"}}).Expand(); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := (Grid{Topologies: []string{"mesh"}}).Expand(); err == nil {
		t.Error("unknown topology accepted")
	}
	if _, err := (Grid{Faults: []string{"explode:1@2"}}).Expand(); err == nil {
		t.Error("bad fault plan accepted")
	}
	points, err := Grid{}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(policy.Names()) {
		t.Errorf("zero grid expands to %d points, want one per registered policy (%d)",
			len(points), len(policy.Names()))
	}
}

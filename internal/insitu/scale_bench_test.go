package insitu

import (
	"context"
	"fmt"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/units"
)

// scaleConfig is one in-situ job at the given world size (half
// simulation, half analysis), shrunk to a few steps so ns/op tracks the
// substrate cost per step rather than the MD physics.
func scaleConfig(world int) Config {
	cons := core.Constraints{Budget: units.Watts(110 * world), MinCap: 98, MaxCap: 215}
	return Config{
		SimRanks:    world / 2,
		AnaRanks:    world / 2,
		Steps:       4,
		SyncEvery:   2,
		Analyses:    []string{"msd"},
		Policy:      core.NewStatic(),
		Constraints: cons,
		Seed:        11,
	}
}

// BenchmarkInsituScale runs the full in-situ workflow — mini-MD,
// frame shipping, analyses, PoLiMER power allocation — at increasing
// node counts. This is the macro benchmark the tentpole's 2x target is
// measured on: one iteration is one whole job.
func BenchmarkInsituScale(b *testing.B) {
	for _, world := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("nodes=%d", world), func(b *testing.B) {
			b.ReportAllocs()
			cfg := scaleConfig(world)
			for i := 0; i < b.N; i++ {
				res, err := Run(context.Background(), cfg)
				if err != nil {
					b.Fatal(err)
				}
				if res.MainLoopTime <= 0 {
					b.Fatal("non-positive main loop time")
				}
			}
		})
	}
}

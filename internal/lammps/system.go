// Package lammps implements a miniature classical molecular-dynamics
// engine patterned on the LAMMPS workload the paper evaluates: a box of
// solvent particles with two dissolved ion species, advanced by the
// velocity-Verlet algorithm with cell-list/Verlet neighbor search and a
// truncated Lennard-Jones potential (reduced LJ units: sigma = eps =
// m = 1).
//
// Each simulation rank owns an independent periodic sub-box (the paper's
// assumption that "simulation processes have equal work"); halo traffic
// between ranks is accounted as communication work rather than force
// coupling. The engine does real numerics — analyses downstream compute
// genuine RDF/VACF/MSD physics from its frames — while also emitting
// per-phase work counts (pair interactions, neighbor operations, bytes
// moved) that the machine model converts to virtual time and power.
package lammps

import (
	"fmt"
	"math"

	"seesaw/internal/rng"
)

// Species labels for the water-box benchmark: solvent plus the two ion
// types of the paper's custom benchmark ("two types of ions" solvated in
// water).
const (
	SpeciesSolvent = iota
	SpeciesHydronium
	SpeciesIon
	numSpecies
)

// Vec3 is a 3-component vector.
type Vec3 [3]float64

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v[0] + w[0], v[1] + w[1], v[2] + w[2]} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v[0] - w[0], v[1] - w[1], v[2] - w[2]} }

// Scale returns v * s.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v[0] * s, v[1] * s, v[2] * s} }

// Dot returns the dot product of v and w.
func (v Vec3) Dot(w Vec3) float64 { return v[0]*w[0] + v[1]*w[1] + v[2]*w[2] }

// Norm2 returns the squared magnitude.
func (v Vec3) Norm2() float64 { return v.Dot(v) }

// Config describes one rank's sub-box.
type Config struct {
	// Atoms is the particle count of this rank's sub-box.
	Atoms int
	// Density is the reduced number density (atoms per sigma^3).
	Density float64
	// Temp is the reduced initial temperature.
	Temp float64
	// Dt is the Verlet timestep in reduced time units.
	Dt float64
	// Cutoff is the LJ interaction cutoff (sigma units).
	Cutoff float64
	// Skin is the Verlet-list skin distance.
	Skin float64
	// IonFraction is the fraction of atoms assigned to each ion
	// species (hydronium and the counter-ion).
	IonFraction float64
	// Seed drives the deterministic velocity initialization and lattice
	// perturbation.
	Seed uint64
}

// DefaultConfig returns a liquid-state configuration that is stable under
// velocity-Verlet at the default timestep.
func DefaultConfig() Config {
	return Config{
		Atoms:       512,
		Density:     0.8,
		Temp:        1.0,
		Dt:          0.005,
		Cutoff:      2.5,
		Skin:        0.3,
		IonFraction: 0.05,
		Seed:        1,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Atoms < 2 {
		return fmt.Errorf("lammps: need at least 2 atoms, got %d", c.Atoms)
	}
	if c.Density <= 0 {
		return fmt.Errorf("lammps: density must be positive, got %g", c.Density)
	}
	if c.Dt <= 0 {
		return fmt.Errorf("lammps: timestep must be positive, got %g", c.Dt)
	}
	if c.Cutoff <= 0 || c.Skin < 0 {
		return fmt.Errorf("lammps: invalid cutoff %g / skin %g", c.Cutoff, c.Skin)
	}
	if c.IonFraction < 0 || c.IonFraction > 0.5 {
		return fmt.Errorf("lammps: ion fraction %g outside [0, 0.5]", c.IonFraction)
	}
	return nil
}

// WorkCount measures the computational work of one phase execution; the
// machine model converts it to time and power.
type WorkCount struct {
	// Ops is an abstract operation count (pair evaluations, per-atom
	// updates) for the phase.
	Ops float64
	// Bytes is the communication volume the phase induces.
	Bytes int
}

// Add accumulates another count.
func (w *WorkCount) Add(o WorkCount) {
	w.Ops += o.Ops
	w.Bytes += o.Bytes
}

// System is one rank's particle system.
type System struct {
	cfg Config
	N   int
	Box float64 // cubic box side length

	Pos   []Vec3 // wrapped positions in [0, Box)
	Unwrp []Vec3 // unwrapped positions (for MSD)
	Vel   []Vec3
	Force []Vec3
	Typ   []int

	// Verlet neighbor list (half list: j > i pairs only).
	nbrHead []int // index into nbrList per atom
	nbrList []int32
	lastPos []Vec3 // positions at last rebuild (for skin check)

	step   int
	pe     float64 // potential energy from last force evaluation
	virial float64 // sum of r . F over pairs, from last force evaluation
}

// New constructs and initializes a system: perturbed cubic lattice
// positions, Maxwell-Boltzmann velocities with zero net momentum, species
// assigned deterministically.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Atoms
	box := math.Cbrt(float64(n) / cfg.Density)
	minBox := 2 * (cfg.Cutoff + cfg.Skin)
	if box < minBox {
		return nil, fmt.Errorf("lammps: box %.2f too small for cutoff+skin %.2f (increase Atoms or Density)", box, minBox/2)
	}
	s := &System{
		cfg:     cfg,
		N:       n,
		Box:     box,
		Pos:     make([]Vec3, n),
		Unwrp:   make([]Vec3, n),
		Vel:     make([]Vec3, n),
		Force:   make([]Vec3, n),
		Typ:     make([]int, n),
		nbrHead: make([]int, n+1),
		lastPos: make([]Vec3, n),
	}
	s.initLattice()
	s.initVelocities()
	s.initSpecies()
	s.BuildNeighbors()
	s.ComputeForces()
	return s, nil
}

// MustNew is New that panics on error, for tests and examples with
// known-good configurations.
func MustNew(cfg Config) *System {
	s, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Config returns the system's configuration.
func (s *System) Config() Config { return s.cfg }

// Step returns the number of completed Verlet steps.
func (s *System) Step() int { return s.step }

// initLattice places atoms on a simple cubic lattice with a small
// deterministic perturbation to break symmetry.
func (s *System) initLattice() {
	perCell := int(math.Ceil(math.Cbrt(float64(s.N))))
	spacing := s.Box / float64(perCell)
	r := rng.Derive(s.cfg.Seed, "lattice")
	i := 0
	for x := 0; x < perCell && i < s.N; x++ {
		for y := 0; y < perCell && i < s.N; y++ {
			for z := 0; z < perCell && i < s.N; z++ {
				p := Vec3{
					(float64(x) + 0.5 + 0.05*(r.Float64()-0.5)) * spacing,
					(float64(y) + 0.5 + 0.05*(r.Float64()-0.5)) * spacing,
					(float64(z) + 0.5 + 0.05*(r.Float64()-0.5)) * spacing,
				}
				s.Pos[i] = p
				s.Unwrp[i] = p
				i++
			}
		}
	}
}

// initVelocities draws Maxwell-Boltzmann velocities at the configured
// temperature, removes net momentum, and rescales to the exact target
// temperature.
func (s *System) initVelocities() {
	r := rng.Derive(s.cfg.Seed, "velocities")
	sigma := math.Sqrt(s.cfg.Temp)
	var mom Vec3
	for i := range s.Vel {
		v := Vec3{r.Gauss(0, sigma), r.Gauss(0, sigma), r.Gauss(0, sigma)}
		s.Vel[i] = v
		mom = mom.Add(v)
	}
	// Zero total momentum.
	shift := mom.Scale(1 / float64(s.N))
	for i := range s.Vel {
		s.Vel[i] = s.Vel[i].Sub(shift)
	}
	// Rescale to the exact target temperature.
	t := s.Temperature()
	if t > 0 {
		f := math.Sqrt(s.cfg.Temp / t)
		for i := range s.Vel {
			s.Vel[i] = s.Vel[i].Scale(f)
		}
	}
}

// initSpecies assigns ion species to a deterministic subset of atoms.
func (s *System) initSpecies() {
	nIon := int(float64(s.N) * s.cfg.IonFraction)
	for i := 0; i < s.N; i++ {
		switch {
		case i < nIon:
			s.Typ[i] = SpeciesHydronium
		case i < 2*nIon:
			s.Typ[i] = SpeciesIon
		default:
			s.Typ[i] = SpeciesSolvent
		}
	}
}

// wrap maps a coordinate into [0, Box).
func (s *System) wrap(x float64) float64 {
	x = math.Mod(x, s.Box)
	if x < 0 {
		x += s.Box
	}
	return x
}

// minimumImage returns the displacement d adjusted to the nearest
// periodic image.
func (s *System) minimumImage(d Vec3) Vec3 {
	half := s.Box / 2
	for k := 0; k < 3; k++ {
		if d[k] > half {
			d[k] -= s.Box
		} else if d[k] < -half {
			d[k] += s.Box
		}
	}
	return d
}

// InitialIntegrate performs the first half of a velocity-Verlet step:
// half-kick the velocities and drift the positions (Section V, step 1).
func (s *System) InitialIntegrate() WorkCount {
	dt := s.cfg.Dt
	half := dt / 2
	for i := 0; i < s.N; i++ {
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(half))
		d := s.Vel[i].Scale(dt)
		s.Unwrp[i] = s.Unwrp[i].Add(d)
		p := s.Pos[i].Add(d)
		s.Pos[i] = Vec3{s.wrap(p[0]), s.wrap(p[1]), s.wrap(p[2])}
	}
	return WorkCount{Ops: float64(s.N) * 9}
}

// FinalIntegrate performs the second velocity half-kick (step 6's tail).
func (s *System) FinalIntegrate() WorkCount {
	half := s.cfg.Dt / 2
	for i := 0; i < s.N; i++ {
		s.Vel[i] = s.Vel[i].Add(s.Force[i].Scale(half))
	}
	s.step++
	return WorkCount{Ops: float64(s.N) * 3}
}

// NeedsRebuild reports whether any atom moved more than half the skin
// since the last neighbor build.
func (s *System) NeedsRebuild() bool {
	limit := s.cfg.Skin * s.cfg.Skin / 4
	for i := 0; i < s.N; i++ {
		d := s.minimumImage(s.Pos[i].Sub(s.lastPos[i]))
		if d.Norm2() > limit {
			return true
		}
	}
	return false
}

// BuildNeighbors reconstructs the Verlet half-list using a cell list
// (the communication-intensive "update neighbor lists" phase, step 5).
func (s *System) BuildNeighbors() WorkCount {
	rc := s.cfg.Cutoff + s.cfg.Skin
	rc2 := rc * rc
	ncell := int(s.Box / rc)
	if ncell < 3 {
		// Too few cells for a 27-stencil without double counting: use
		// the O(N^2) path (only reached for very small test systems).
		return s.buildNeighborsBrute(rc2)
	}
	cellSize := s.Box / float64(ncell)

	// Bin atoms into cells.
	nc3 := ncell * ncell * ncell
	heads := make([]int32, nc3)
	for i := range heads {
		heads[i] = -1
	}
	next := make([]int32, s.N)
	cellOf := func(p Vec3) int {
		cx := int(p[0] / cellSize)
		cy := int(p[1] / cellSize)
		cz := int(p[2] / cellSize)
		if cx >= ncell {
			cx = ncell - 1
		}
		if cy >= ncell {
			cy = ncell - 1
		}
		if cz >= ncell {
			cz = ncell - 1
		}
		return (cx*ncell+cy)*ncell + cz
	}
	for i := 0; i < s.N; i++ {
		c := cellOf(s.Pos[i])
		next[i] = heads[c]
		heads[c] = int32(i)
	}

	s.nbrList = s.nbrList[:0]
	var ops float64
	for i := 0; i < s.N; i++ {
		s.nbrHead[i] = len(s.nbrList)
		pi := s.Pos[i]
		ci := cellOf(pi)
		cx := ci / (ncell * ncell)
		cy := (ci / ncell) % ncell
		cz := ci % ncell
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					nx := (cx + dx + ncell) % ncell
					ny := (cy + dy + ncell) % ncell
					nz := (cz + dz + ncell) % ncell
					c := (nx*ncell+ny)*ncell + nz
					for j := heads[c]; j >= 0; j = next[j] {
						if int(j) <= i {
							continue
						}
						ops++
						d := s.minimumImage(pi.Sub(s.Pos[j]))
						if d.Norm2() < rc2 {
							s.nbrList = append(s.nbrList, j)
						}
					}
				}
			}
		}
	}
	s.nbrHead[s.N] = len(s.nbrList)
	copy(s.lastPos, s.Pos)
	// Neighbor rebuilds imply halo position exchange: ~24 bytes/atom of
	// boundary traffic.
	return WorkCount{Ops: ops, Bytes: s.N * 24}
}

// buildNeighborsBrute is the O(N^2) neighbor build used when the box is
// too small for the cell-list stencil.
func (s *System) buildNeighborsBrute(rc2 float64) WorkCount {
	s.nbrList = s.nbrList[:0]
	var ops float64
	for i := 0; i < s.N; i++ {
		s.nbrHead[i] = len(s.nbrList)
		pi := s.Pos[i]
		for j := i + 1; j < s.N; j++ {
			ops++
			d := s.minimumImage(pi.Sub(s.Pos[j]))
			if d.Norm2() < rc2 {
				s.nbrList = append(s.nbrList, int32(j))
			}
		}
	}
	s.nbrHead[s.N] = len(s.nbrList)
	copy(s.lastPos, s.Pos)
	return WorkCount{Ops: ops, Bytes: s.N * 24}
}

// ComputeForces evaluates truncated, shifted Lennard-Jones forces over
// the Verlet list (step 6), returning the pair-evaluation work.
func (s *System) ComputeForces() WorkCount {
	rc2 := s.cfg.Cutoff * s.cfg.Cutoff
	// Potential shift so U(rc) = 0.
	irc2 := 1 / rc2
	irc6 := irc2 * irc2 * irc2
	shift := 4 * (irc6*irc6 - irc6)

	for i := range s.Force {
		s.Force[i] = Vec3{}
	}
	var pe, virial float64
	var ops float64
	for i := 0; i < s.N; i++ {
		fi := s.Force[i]
		pi := s.Pos[i]
		for k := s.nbrHead[i]; k < s.nbrHead[i+1]; k++ {
			j := s.nbrList[k]
			ops++
			d := s.minimumImage(pi.Sub(s.Pos[j]))
			r2 := d.Norm2()
			if r2 >= rc2 || r2 == 0 {
				continue
			}
			ir2 := 1 / r2
			ir6 := ir2 * ir2 * ir2
			// F = 24 eps (2 (sigma/r)^12 - (sigma/r)^6) / r^2 * d
			fmag := 24 * ir2 * ir6 * (2*ir6 - 1)
			fv := d.Scale(fmag)
			fi = fi.Add(fv)
			s.Force[j] = s.Force[j].Sub(fv)
			pe += 4*(ir6*ir6-ir6) - shift
			virial += d.Dot(fv)
		}
		s.Force[i] = fi
	}
	s.pe = pe
	s.virial = virial
	return WorkCount{Ops: ops}
}

// Virial returns sum over pairs of r . F from the last force
// evaluation.
func (s *System) Virial() float64 { return s.virial }

// Pressure returns the instantaneous reduced pressure from the virial
// theorem: P = (N T + W/3) / V with W the pair virial.
func (s *System) Pressure() float64 {
	vol := s.Box * s.Box * s.Box
	if vol <= 0 {
		return 0
	}
	return (float64(s.N)*s.Temperature() + s.virial/3) / vol
}

// KineticEnergy returns the total kinetic energy.
func (s *System) KineticEnergy() float64 {
	var ke float64
	for _, v := range s.Vel {
		ke += 0.5 * v.Norm2()
	}
	return ke
}

// PotentialEnergy returns the potential energy from the last force
// evaluation.
func (s *System) PotentialEnergy() float64 { return s.pe }

// TotalEnergy returns kinetic + potential energy.
func (s *System) TotalEnergy() float64 { return s.KineticEnergy() + s.pe }

// Temperature returns the instantaneous reduced temperature
// (2 KE / (3 N - 3), accounting for the removed center-of-mass momentum).
func (s *System) Temperature() float64 {
	dof := 3*s.N - 3
	if dof <= 0 {
		return 0
	}
	return 2 * s.KineticEnergy() / float64(dof)
}

// TotalMomentum returns the system's net momentum vector.
func (s *System) TotalMomentum() Vec3 {
	var m Vec3
	for _, v := range s.Vel {
		m = m.Add(v)
	}
	return m
}

// Frame is the particle snapshot shipped from simulation to analysis at
// a synchronization (step 2 of the Verlet-Splitanalysis flow).
type Frame struct {
	Step  int
	Box   float64
	Pos   []Vec3 // wrapped positions
	Unwrp []Vec3 // unwrapped positions
	Vel   []Vec3
	Typ   []int
}

// Snapshot captures the current state as an independent Frame.
func (s *System) Snapshot() Frame {
	f := Frame{
		Step:  s.step,
		Box:   s.Box,
		Pos:   append([]Vec3(nil), s.Pos...),
		Unwrp: append([]Vec3(nil), s.Unwrp...),
		Vel:   append([]Vec3(nil), s.Vel...),
		Typ:   append([]int(nil), s.Typ...),
	}
	return f
}

// FrameBytes returns the wire size of a frame (what step 2 sends to the
// analysis partition): positions, velocities and unwrapped positions as
// float64 triples plus a type byte per atom.
func (s *System) FrameBytes() int { return s.N * (3*8*3 + 1) }

// ThermoBytes returns the size of the end-of-step thermodynamic output
// (step 8): a handful of global scalars.
func (s *System) ThermoBytes() int { return 6 * 8 }

// Monitoring API: the counterpart of PoLiMER's poli_get_* functions
// (Marincic et al., E2SC'17) — on-demand power/energy/time readings and
// a periodic sampler, reading the node's energy through the wrapped
// hardware register the way the real library reads MSRs.
package polimer

import (
	"fmt"

	"seesaw/internal/machine"
	"seesaw/internal/rapl"
	"seesaw/internal/trace"
	"seesaw/internal/units"
)

// Monitor provides power monitoring for one node, independent of the
// power-allocation manager (PoLiMER separates monitoring from capping).
type Monitor struct {
	node *machine.Node

	unwrap    rapl.EnergyUnwrapper
	lastTime  units.Seconds
	lastTotal units.Joules

	series *trace.Series
	period units.Seconds
	nextAt units.Seconds
}

// NewMonitor attaches a monitor to a node. When period > 0, Poll records
// a power sample into Series each time the node's busy+idle time crosses
// a sampling boundary.
func NewMonitor(node *machine.Node, period units.Seconds) (*Monitor, error) {
	if node == nil {
		return nil, fmt.Errorf("polimer: monitor needs a node")
	}
	m := &Monitor{node: node, period: period}
	if period > 0 {
		m.series = &trace.Series{Name: fmt.Sprintf("node-%d", node.ID())}
		m.nextAt = period
	}
	// Establish the register baseline.
	m.unwrap.Update(node.RAPL().EnergyRegister())
	return m, nil
}

// now returns the node's local virtual time.
func (m *Monitor) now() units.Seconds { return m.node.BusyTime() + m.node.IdleTime() }

// Energy returns the node's cumulative energy as reconstructed from the
// wrapped hardware register (poli_get_energy).
func (m *Monitor) Energy() units.Joules {
	return m.unwrap.Update(m.node.RAPL().EnergyRegister())
}

// Time returns the node's elapsed virtual time (poli_get_time).
func (m *Monitor) Time() units.Seconds { return m.now() }

// Power returns the average power since the previous Power call
// (poli_get_power's interval semantics). The first call averages from
// the monitor's creation.
func (m *Monitor) Power() units.Watts {
	now := m.now()
	total := m.Energy()
	dt := now - m.lastTime
	de := total - m.lastTotal
	m.lastTime = now
	m.lastTotal = total
	return units.AvgPower(de, dt)
}

// Poll advances the periodic sampler: it records one sample per elapsed
// period boundary using the interval's average power. Call it after
// phase executions; it is a no-op without a sampling period.
func (m *Monitor) Poll() {
	if m.period <= 0 {
		return
	}
	now := m.now()
	total := m.Energy()
	for m.nextAt <= now {
		// Interpolate the energy at the boundary: within a poll window
		// the node's draw is treated as uniform.
		frac := 1.0
		if now > m.lastTime {
			frac = float64(m.nextAt-m.lastTime) / float64(now-m.lastTime)
		}
		atBoundary := m.lastTotal + units.Joules(float64(total-m.lastTotal)*frac)
		dt := m.nextAt - m.lastTime
		de := atBoundary - m.lastTotal
		m.series.Add(m.nextAt, float64(units.AvgPower(de, dt)))
		m.lastTime = m.nextAt
		m.lastTotal = atBoundary
		m.nextAt += m.period
	}
}

// Series returns the recorded samples (nil without a sampling period).
func (m *Monitor) Series() *trace.Series { return m.series }

// CapWrites reports how many cap writes the node's RAPL domain has seen,
// exposing actuation activity to monitoring tools.
func (m *Monitor) CapWrites() int { return m.node.RAPL().CapWrites() }

// Command seesawctl regenerates the paper's tables and figures on the
// simulated platform.
//
// Usage:
//
//	seesawctl list                 # list experiment ids
//	seesawctl experiments          # list experiments grouped into families
//	seesawctl run <id> [flags]     # run one experiment (fig1..fig9b, table1, table2, abl-*)
//	seesawctl all [flags]          # run every experiment in paper order
//	seesawctl trace [flags]        # per-synchronization CSV of one policy cell
//	seesawctl job <file.json>      # run a JSON-described job (see internal/jobfile)
//	seesawctl serve [flags]        # run an experiment loop and serve live metrics over HTTP
//	seesawctl policies             # list the registered power policies
//	seesawctl search [flags]       # batched policy search over a rollout grid
//
// Flags:
//
//	-steps N          override Verlet steps per run (default 400, the paper's setting)
//	-runs N           override repeated jobs per cell (default: 3, Table I: 7)
//	-seed N           base seed for all jobs
//	-jobs N           max experiment cells in flight (default: GOMAXPROCS)
//	-telemetry FILE   stream telemetry events to FILE as JSON Lines
//
// Ctrl-C (or SIGTERM) cancels the run: in-flight cells unwind, queued
// cells are skipped, any partial report is flushed, and the process
// exits non-zero.
//
// trace flags: -policy, -analyses, -nodes, -dim, -j, -w, -faults,
// -classes (device-class map, e.g. "0-63:cpu,64-127:gpu"), -topology
// (space-shared, time-shared, in-transit or dag; see -h).
// serve flags: -addr, -id, plus the shared flags above (see -h).
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"seesaw/internal/bench"
	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/fault"
	"seesaw/internal/jobfile"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
	"seesaw/internal/workflow"
	"seesaw/internal/workload"
)

// openHub opens a telemetry hub streaming events to path as JSON Lines.
// An empty path returns a nil hub (instrumentation disabled) and a no-op
// closer. The closer flushes the stream and reports any sink error.
func openHub(path string) (*telemetry.Hub, func(), error) {
	if path == "" {
		return nil, func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, nil, err
	}
	bw := bufio.NewWriter(f)
	hub := telemetry.New(telemetry.Options{Sink: bw})
	closer := func() {
		if err := hub.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "seesawctl: telemetry sink:", err)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "seesawctl: telemetry sink:", err)
		}
		if n := hub.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "seesawctl: telemetry: %d events dropped\n", n)
		}
	}
	return hub, closer, nil
}

// mustOpenHub is openHub with CLI error handling.
func mustOpenHub(path string) (*telemetry.Hub, func()) {
	hub, closer, err := openHub(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "seesawctl:", err)
		os.Exit(1)
	}
	return hub, closer
}

func main() {
	// Ctrl-C cancels the context; a second Ctrl-C kills the process
	// outright (stop() restores default signal handling after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	code := run(ctx, os.Args[1:])
	stop()
	os.Exit(code)
}

// run dispatches the subcommand and returns the process exit code. Kept
// separate from main so deferred cleanups (telemetry flush) run before
// os.Exit.
func run(ctx context.Context, args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	steps := fs.Int("steps", 0, "override Verlet steps per run (0 = experiment default)")
	runs := fs.Int("runs", 0, "override repeated jobs per cell (0 = experiment default)")
	seed := fs.Uint64("seed", 1, "base seed")
	jobs := fs.Int("jobs", 0, "max experiment cells in flight (0 = GOMAXPROCS)")
	outPath := fs.String("o", "", "write a Markdown report to this file instead of stdout (all only)")
	telPath := fs.String("telemetry", "", "stream telemetry events to this file as JSON Lines")

	switch cmd {
	case "list":
		for _, e := range bench.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
	case "experiments":
		for _, f := range bench.Families() {
			fmt.Printf("%s — %s\n", f.Name, f.Description)
			for _, id := range f.IDs {
				e, _ := bench.Get(id)
				fmt.Printf("  %-14s %s\n", id, e.Title)
			}
		}
	case "run":
		if len(args) < 2 {
			fmt.Fprintln(os.Stderr, "seesawctl run <id> [flags]")
			return 2
		}
		id := args[1]
		if err := fs.Parse(args[2:]); err != nil {
			return 2
		}
		e, ok := bench.Get(id)
		if !ok {
			fmt.Fprintln(os.Stderr, bench.UnknownExperimentError(id))
			return 1
		}
		hub, closeHub := mustOpenHub(*telPath)
		defer closeHub()
		o := bench.Options{Steps: *steps, Runs: *runs, BaseSeed: *seed, Jobs: *jobs, Telemetry: hub}
		if err := runOne(ctx, e, o); err != nil {
			return fail(ctx, err)
		}
	case "all":
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		hub, closeHub := mustOpenHub(*telPath)
		defer closeHub()
		o := bench.Options{Steps: *steps, Runs: *runs, BaseSeed: *seed, Jobs: *jobs, Telemetry: hub}
		if *outPath != "" {
			if err := writeReport(ctx, *outPath, o); err != nil {
				return fail(ctx, err)
			}
			return 0
		}
		for _, e := range bench.All() {
			if err := runOne(ctx, e, o); err != nil {
				return fail(ctx, err)
			}
		}
	case "selftest":
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		ok, err := bench.RunSelfTest(ctx, bench.Options{Steps: *steps, Runs: *runs, BaseSeed: *seed, Jobs: *jobs}, os.Stdout)
		if err != nil {
			return fail(ctx, err)
		}
		if !ok {
			return 1
		}
	case "trace":
		return runTrace(ctx, args[1:])
	case "job":
		return runJob(ctx, args[1:])
	case "serve":
		return runServe(ctx, args[1:])
	case "policies":
		for _, info := range policy.Infos() {
			fmt.Printf("%-12s %s\n", info.Name, info.Description)
		}
	case "search":
		return runSearch(ctx, args[1:])
	default:
		usage()
		return 2
	}
	return 0
}

// fail reports err on stderr and picks the exit code: 130 for an
// interrupted run (the shell convention for SIGINT), 1 otherwise.
func fail(ctx context.Context, err error) int {
	fmt.Fprintln(os.Stderr, "seesawctl:", err)
	if ctx.Err() != nil && errors.Is(err, ctx.Err()) {
		return 130
	}
	return 1
}

// runJob loads a JSON job description, runs it, and prints the summary
// (or the full per-synchronization CSV with -csv).
func runJob(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("job", flag.ExitOnError)
	csv := fs.Bool("csv", false, "emit the per-synchronization log as CSV")
	telPath := fs.String("telemetry", "", "stream telemetry events to this file as JSON Lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "seesawctl job [-csv] [-telemetry FILE] <job.json>")
		return 2
	}
	j, err := jobfile.LoadFile(fs.Arg(0))
	if err != nil {
		return fail(ctx, err)
	}
	hub, closeHub := mustOpenHub(*telPath)
	defer closeHub()
	if j.Topology != "" && j.Topology != "space-shared" {
		wcfg, err := j.BuildWorkflow()
		if err != nil {
			return fail(ctx, err)
		}
		wcfg.Telemetry = hub
		res, err := workflow.Run(ctx, wcfg)
		if err != nil {
			return fail(ctx, err)
		}
		if *csv {
			if err := res.SyncLog.WriteCSV(os.Stdout); err != nil {
				return fail(ctx, err)
			}
			return 0
		}
		fmt.Printf("topology %s with policy %s: total %.1f s, energy %.1f kJ, mean slack %.2f%%, transfer %.1f s\n",
			j.Topology, wcfg.Policy.Name(),
			float64(res.MainLoopTime), float64(res.TotalEnergy)/1000,
			res.SyncLog.MeanSlackFrom(10)*100, float64(res.TransferSeconds))
		return 0
	}
	cfg, err := j.Build()
	if err != nil {
		return fail(ctx, err)
	}
	cfg.Telemetry = hub
	res, err := cosim.Run(ctx, cfg)
	if err != nil {
		return fail(ctx, err)
	}
	if *csv {
		if err := res.SyncLog.WriteCSV(os.Stdout); err != nil {
			return fail(ctx, err)
		}
		return 0
	}
	last := res.SyncLog.Records[res.SyncLog.Len()-1]
	fmt.Printf("policy %s on %d nodes: total %.1f s, energy %.1f kJ, mean slack %.2f%%, final caps %.1f/%.1f W\n",
		cfg.Policy.Name(), cfg.Spec.SimNodes+cfg.Spec.AnaNodes,
		float64(res.TotalTime), float64(res.TotalEnergy)/1000,
		res.SyncLog.MeanSlackFrom(10)*100, float64(last.SimCap), float64(last.AnaCap))
	return 0
}

// runTrace emits the per-synchronization log of one co-simulated cell as
// CSV — the raw data behind the Figure 4 and Figure 5 plots.
func runTrace(ctx context.Context, args []string) int {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	policyName := fs.String("policy", "seesaw", "power policy: "+strings.Join(policy.Names(), ", "))
	analyses := fs.String("analyses", "msd", "comma-separated analyses, or 'all'")
	nodes := fs.Int("nodes", 128, "total nodes (split evenly)")
	dim := fs.Int("dim", 16, "problem size")
	j := fs.Int("j", 1, "synchronize every j-th step")
	w := fs.Int("w", 1, "reallocate every w synchronizations")
	steps := fs.Int("steps", 400, "Verlet steps")
	capPer := fs.Float64("cap", 110, "per-node budget (W)")
	seed := fs.Uint64("seed", 1, "job seed")
	faults := fs.String("faults", "", "fault plan, e.g. 'kill:3@40,slow:0@10x2+20' (see internal/fault)")
	classes := fs.String("classes", "", "device-class map, e.g. '0-63:cpu,64-127:gpu' (presets: "+strings.Join(machine.PresetNames(), ", ")+")")
	topology := fs.String("topology", "", "workflow topology: space-shared, time-shared, in-transit or dag (default: the classic space-shared driver)")
	telPath := fs.String("telemetry", "", "stream telemetry events to this file as JSON Lines")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	plan, err := fault.Parse(*faults)
	if err != nil {
		return fail(ctx, err)
	}
	classMap, err := machine.ParseClassMap(*classes)
	if err != nil {
		return fail(ctx, err)
	}
	hub, closeHub := mustOpenHub(*telPath)
	defer closeHub()

	var tasks []workload.AnalysisTask
	if *analyses == "all" {
		tasks = workload.AllAnalysesForDim(*dim)
	} else {
		tasks = workload.Tasks(strings.Split(*analyses, ",")...)
	}
	if *topology != "" {
		topo, terr := workflow.Build(*topology, workflow.Params{
			Nodes: *nodes, Dim: *dim, J: *j, Steps: *steps, Analyses: tasks,
		})
		if terr != nil {
			return fail(ctx, terr)
		}
		cons := topo.ScaleCaps(core.Constraints{
			Budget: units.Watts(*capPer) * units.Watts(topo.PhysicalNodes), MinCap: 98, MaxCap: 215,
		})
		pol, perr := policy.New(*policyName, cons, *w)
		if perr != nil {
			return fail(ctx, perr)
		}
		res, rerr := workflow.Run(ctx, workflow.Config{
			Graph:       topo.Graph,
			Steps:       *steps,
			SyncEvery:   *j,
			Policy:      pol,
			Constraints: cons,
			Seed:        *seed,
			RunSeed:     *seed + 1,
			Noise:       machine.DefaultNoise(),
			Faults:      plan,
			Classes:     classMap,
			Telemetry:   hub,
		})
		if rerr != nil {
			return fail(ctx, rerr)
		}
		if err := res.SyncLog.WriteCSV(os.Stdout); err != nil {
			return fail(ctx, err)
		}
		fmt.Fprintf(os.Stderr, "seesawctl trace: %s on %d nodes (%s), total %.1f s, mean slack %.2f%%, transfer %.1f s\n",
			*policyName, *nodes, *topology, float64(res.MainLoopTime),
			res.SyncLog.MeanSlackFrom(10)*100, float64(res.TransferSeconds))
		return 0
	}
	cons := core.Constraints{Budget: units.Watts(*capPer) * units.Watts(*nodes), MinCap: 98, MaxCap: 215}
	pol, perr := policy.New(*policyName, cons, *w)
	if perr != nil {
		return fail(ctx, perr)
	}
	res, err := cosim.Run(ctx, cosim.Config{
		Spec: workload.Spec{
			SimNodes: *nodes / 2, AnaNodes: *nodes - *nodes/2,
			Dim: *dim, J: *j, Steps: *steps, Analyses: tasks,
		},
		Policy:      pol,
		Constraints: cons,
		CapMode:     cosim.CapLong,
		Seed:        *seed,
		RunSeed:     *seed + 1,
		Noise:       machine.DefaultNoise(),
		Faults:      plan,
		Classes:     classMap,
		Telemetry:   hub,
	})
	if err != nil {
		return fail(ctx, err)
	}
	if err := res.SyncLog.WriteCSV(os.Stdout); err != nil {
		return fail(ctx, err)
	}
	fmt.Fprintf(os.Stderr, "seesawctl trace: %s on %d nodes, total %.1f s, mean slack %.2f%%\n",
		*policyName, *nodes, float64(res.TotalTime), res.SyncLog.MeanSlackFrom(10)*100)
	return 0
}

// writeReport runs every experiment and writes a Markdown document with
// one fenced section per artifact. On cancellation the partially
// written report is preserved (bench.WriteReport closes the open fence)
// and the error is reported to the caller.
func writeReport(ctx context.Context, path string, o bench.Options) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	written := func(id string) { fmt.Fprintf(os.Stderr, "seesawctl: %s done\n", id) }
	if err := bench.WriteReport(ctx, f, o, written); err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "seesawctl: interrupted; partial report left in %s\n", path)
		}
		f.Close()
		return err
	}
	return f.Close()
}

func runOne(ctx context.Context, e bench.Experiment, o bench.Options) error {
	fmt.Printf("=== %s: %s ===\n", e.ID, e.Title)
	if err := e.Run(ctx, o, os.Stdout); err != nil {
		return fmt.Errorf("%s: %w", e.ID, err)
	}
	fmt.Println()
	return nil
}

func usage() {
	fmt.Fprintln(os.Stderr, `seesawctl — regenerate the SeeSAw paper's tables and figures

usage:
  seesawctl list                           # experiment ids and titles
  seesawctl experiments                    # experiments grouped into families
  seesawctl run <id> [-steps N] [-runs N] [-seed N] [-jobs N] [-telemetry FILE]
  seesawctl all [-steps N] [-runs N] [-seed N] [-jobs N] [-telemetry FILE]
  seesawctl trace [-policy P] [-analyses A] [-nodes N] [-dim D] [-j J] [-w W] [-faults PLAN] [-classes MAP] [-topology T] [-telemetry FILE]
  seesawctl job [-csv] [-telemetry FILE] <job.json>
  seesawctl serve [-addr HOST:PORT] [-id EXPERIMENT] [-steps N] [-runs N] [-seed N] [-jobs N]
  seesawctl selftest [-seed N] [-jobs N]   # verify the paper's headline invariants
  seesawctl policies                       # registered power policies with descriptions
  seesawctl search [-nodes N,..] [-budgets W,..] [-w W,..] [-dims D,..] [-faults P,..] [-classes M;..] [-topologies T,..] [-policies P,..] [-jobs N]

-topology (and the job file's "topology" key) selects the workflow
placement: space-shared (default), time-shared, in-transit or dag. Any
value but the default routes the run through the workflow-graph engine
(internal/workflow).

-classes (and the job file's "classes" key) assigns device classes to
node id ranges, e.g. "0-63:cpu,64-127:gpu". Preset classes: cpu, gpu,
lowpower (see internal/machine). Unlisted nodes keep the default model;
an empty map is the classic homogeneous cluster. In search, the classes
axis is semicolon-separated because maps contain commas.

Experiment cells run concurrently (bounded by -jobs); reports are
byte-identical at any -jobs value. Ctrl-C cancels cleanly: partial
output is flushed and the exit status is non-zero.

serve exposes Prometheus metrics at /metrics and a JSON snapshot at
/debug/telemetry while looping the selected experiment.

search fans the cross product of its comma-separated axes across the
campaign worker pool — one rollout per (scenario, policy) — and names
the fastest policy per scenario (see internal/rollout).`)
}

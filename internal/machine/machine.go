// Package machine models the power/performance behaviour of a compute
// node (a Theta KNL node in the paper) at the granularity of workload
// phases. It is the hardware substrate under the in-situ co-simulation:
// given a phase's nominal duration, power demand and power sensitivity,
// plus the node's RAPL state, it produces the phase's actual duration and
// the power drawn — the two observables every power-management policy in
// this repository consumes.
//
// The model captures the properties the paper's argument rests on:
//
//   - time-vs-power is non-linear and saturating: beyond a phase's
//     saturation power, more power buys no speedup (LAMMPS saturates
//     near 140 W per node, per the paper's Section VII-D);
//   - phases differ in sensitivity: compute phases speed up with power
//     while communication/IO phases barely react (Section VII-B3);
//   - drawn power is min(demand, allowed): a lightly loaded or waiting
//     node cannot use the power it is assigned (Figures 4 and 7);
//   - nodes are noisy, and power capping amplifies run-to-run
//     variability (Table I).
package machine

import (
	"fmt"

	"seesaw/internal/rapl"
	"seesaw/internal/rng"
	"seesaw/internal/units"
)

// Phase describes one unit of node activity: a span of execution with a
// fixed resource character.
type Phase struct {
	// Name identifies the phase in traces ("force", "sync", "msd", ...).
	Name string
	// Nominal is the phase duration when the node runs uncapped at the
	// phase's full demand with no noise.
	Nominal units.Seconds
	// Demand is the power the phase draws when unconstrained.
	Demand units.Watts
	// Saturation is the power beyond which the phase no longer speeds
	// up. Must be >= the model's ZeroWork power.
	Saturation units.Watts
	// Sensitivity in [0,1] is the fraction of the phase that scales
	// with power (Amdahl-style); the rest is power-insensitive
	// (communication, I/O waits).
	Sensitivity float64

	// refPerf caches the model's perf(Demand, Saturation) for a
	// device-adapted phase (filled by adapt, zero on user-constructed
	// phases): the reference point is invariant per (model, phase), so
	// pre-adapted tables pay it once per job instead of per execution.
	refPerf float64
}

// Validate reports a descriptive error if the phase parameters are
// inconsistent.
func (p Phase) Validate(m Model) error {
	if p.Nominal < 0 {
		return fmt.Errorf("machine: phase %q has negative nominal time", p.Name)
	}
	if p.Demand <= 0 {
		return fmt.Errorf("machine: phase %q has non-positive demand", p.Name)
	}
	if p.Saturation <= m.ZeroWork {
		return fmt.Errorf("machine: phase %q saturation %v not above zero-work power %v",
			p.Name, p.Saturation, m.ZeroWork)
	}
	if p.Sensitivity < 0 || p.Sensitivity > 1 {
		return fmt.Errorf("machine: phase %q sensitivity %v outside [0,1]", p.Name, p.Sensitivity)
	}
	return nil
}

// Model holds node-level performance-model constants.
type Model struct {
	// ZeroWork is the power level at which no forward progress is made
	// (static/leakage floor).
	ZeroWork units.Watts
	// IdlePower is what a node draws while waiting at a synchronization
	// point (the ~105 W plateau visible in the paper's Figure 1).
	IdlePower units.Watts
	// MinPerf bounds the slowdown: the performance factor never drops
	// below this fraction, modelling the hardware's lowest operating
	// point.
	MinPerf float64
	// CapNoiseBoost multiplies run-to-run jitter while a phase is
	// actively throttled (allowed < demand), reproducing Table I's
	// observation that power caps exacerbate variability.
	CapNoiseBoost float64
	// DualCapNoiseBoost is the additional multiplier when both long-
	// and short-term RAPL caps are in force.
	DualCapNoiseBoost float64
	// SpeedFactor is the device's throughput relative to the reference
	// KNL node: a phase's nominal duration divides by it. Zero means 1
	// (reference speed), so existing Model literals keep their meaning.
	SpeedFactor float64
	// PowerScale stretches a phase's power envelope (demand and
	// saturation) onto the device: a GPU draws more power to reach its
	// saturation point, a low-power SoC less. Zero means 1.
	PowerScale float64
}

// speedFactor returns SpeedFactor with the zero-means-1 convention.
func (m Model) speedFactor() float64 {
	if m.SpeedFactor == 0 {
		return 1
	}
	return m.SpeedFactor
}

// powerScale returns PowerScale with the zero-means-1 convention.
func (m Model) powerScale() float64 {
	if m.PowerScale == 0 {
		return 1
	}
	return m.PowerScale
}

// adapt maps a reference-node phase onto this device: faster devices
// shrink the nominal duration, and the power envelope (demand,
// saturation) stretches by the device's power scale. Both factors skip
// the arithmetic entirely at 1 so reference-class nodes reproduce the
// homogeneous path bit for bit.
func (m Model) adapt(ph Phase) Phase {
	if sf := m.speedFactor(); sf != 1 {
		ph.Nominal = units.Seconds(float64(ph.Nominal) / sf)
	}
	if ps := m.powerScale(); ps != 1 {
		ph.Demand = units.Watts(float64(ph.Demand) * ps)
		ph.Saturation = units.Watts(float64(ph.Saturation) * ps)
	}
	ph.refPerf = m.perf(ph.Demand, ph.Saturation)
	return ph
}

// DefaultModel returns constants tuned to the Theta numbers reported in
// the paper.
func DefaultModel() Model {
	return Model{
		ZeroWork:          60,
		IdlePower:         104,
		MinPerf:           0.12,
		CapNoiseBoost:     3.0,
		DualCapNoiseBoost: 2.0,
	}
}

// Scale returns the model with its power constants (zero-work floor and
// idle draw) multiplied by f, describing a fraction of a physical node.
// A time-shared placement models two co-resident stage ranks as two
// half-nodes (f = 0.5): halving every Watts constant leaves the
// perf(p, sat) curve invariant under p -> p/2, sat -> sat/2, so a
// half-node running a half-power phase at doubled nominal time
// reproduces the full node's duration and energy exactly. The
// performance-shape constants (MinPerf, noise boosts) are scale-free.
func (m Model) Scale(f float64) Model {
	if f == 1 {
		return m
	}
	m.ZeroWork = units.Watts(float64(m.ZeroWork) * f)
	m.IdlePower = units.Watts(float64(m.IdlePower) * f)
	return m
}

// perf returns the normalized performance factor at effective power p for
// a phase saturating at sat: linear in (p - ZeroWork) up to saturation,
// flat beyond, floored at MinPerf.
func (m Model) perf(p, sat units.Watts) float64 {
	if p > sat {
		p = sat
	}
	f := float64(p-m.ZeroWork) / float64(sat-m.ZeroWork)
	if f < m.MinPerf {
		f = m.MinPerf
	}
	if f > 1 {
		f = 1
	}
	return f
}

// NoiseModel configures a node's stochastic behaviour.
type NoiseModel struct {
	// SkewSigma is the lognormal sigma of the node's static speed skew
	// (job-to-job variability: node placement, manufacturing spread).
	SkewSigma float64
	// PowerEffSigma is the lognormal sigma of the node's power
	// efficiency: chips deliver different performance per Watt, so two
	// nodes at the same cap run at different speeds. Uncapped, phases
	// run near saturation where this barely matters; under a cap it
	// lands in the linear region — which is why power caps amplify
	// job-to-job variability (Table I).
	PowerEffSigma float64
	// JitterSigma is the relative stddev of per-phase duration jitter
	// (OS noise, network contention); independent across phases, it
	// mostly averages out over a long run.
	JitterSigma float64
	// RunSigma is the relative stddev of a per-run correlated slowdown
	// (zone allocation, long-lived network contention): the dominant
	// source of run-to-run variability in total runtime.
	RunSigma float64
	// DualRunSigma is an additional per-run correlated factor applied
	// while a phase is throttled under both long- and short-term caps:
	// dual-cap RAPL regulation is unstable run to run, which is why
	// "Long and Short" capping shows the largest run-to-run
	// variability in Table I.
	DualRunSigma float64
	// PowerSigma is the relative stddev of measured power ripple: the
	// interaction of DVFS steps, RAPL's averaging window and phase
	// boundaries makes per-interval power readings fluctuate around
	// the cap by a few Watts on real hardware — the noise the strictly
	// power-aware policy responds to (Section VII-B1).
	PowerSigma float64
}

// DefaultNoise returns noise magnitudes calibrated so the Table I
// variability experiment lands in the ranges the paper reports
// (sub-1% run-to-run uncapped, a few percent job-to-job, inflated by
// capping).
func DefaultNoise() NoiseModel {
	return NoiseModel{
		SkewSigma:     0.008,
		PowerEffSigma: 0.015,
		JitterSigma:   0.0025,
		PowerSigma:    0.035,
		RunSigma:      0.002,
		DualRunSigma:  0.015,
	}
}

// Node is one simulated compute node: a RAPL domain plus a performance
// model and private noise streams.
type Node struct {
	id          int
	rapl        *rapl.Domain
	model       Model
	skew        float64
	powerEff    float64
	runSkew     float64
	dualRunSkew float64
	jitter      *rng.Stream
	// jitter0 is the jitter stream's initial value, kept so Reset can
	// rewind the (consumed-during-run) stream for pooled episode reuse.
	jitter0 rng.Stream

	// noiseTrace, when non-nil, replays pre-recorded standard-normal
	// draws in place of the live jitter stream (see SetNoiseTrace);
	// noisePos is the replay cursor, rewound by Reset.
	noiseTrace []float64
	noisePos   int

	// slowFactor is a settable excursion multiplier on phase durations
	// (1 = nominal). The cluster layer drives it from fault plans to
	// model transient slow-node excursions; unlike the seeded noise
	// skews it can change mid-run.
	slowFactor float64

	busy units.Seconds // cumulative non-idle time
	idle units.Seconds // cumulative idle (sync-wait) time
}

// NewNode builds a node with a single seed driving both the job-level
// skews and the run-level jitter.
func NewNode(id int, cfg rapl.Config, model Model, noise NoiseModel, seed uint64) *Node {
	return NewNodeWithSeeds(id, cfg, model, noise, seed, seed)
}

// NewNodeWithSeeds builds a node with separate job and run seeds. The
// job seed fixes node-allocation effects (speed skew, power-efficiency
// skew): two runs inside one job share them (the paper's run-to-run
// setting), while different jobs draw fresh ones (job-to-job). The run
// seed drives per-phase jitter, fresh on every run.
func NewNodeWithSeeds(id int, cfg rapl.Config, model Model, noise NoiseModel, jobSeed, runSeed uint64) *Node {
	skewStream := rng.DeriveIndexed(jobSeed, "node-skew", id)
	effStream := rng.DeriveIndexed(jobSeed, "node-poweff", id)
	runStream := rng.DeriveIndexed(runSeed, "node-runskew", id)
	dualStream := rng.DeriveIndexed(runSeed, "node-dualskew", id)
	jitter := rng.DeriveIndexed(runSeed, "node-jitter", id)
	return &Node{
		id:          id,
		rapl:        rapl.MustNewDomain(cfg),
		model:       model,
		skew:        skewStream.LogNormFactor(noise.SkewSigma),
		powerEff:    effStream.LogNormFactor(noise.PowerEffSigma),
		runSkew:     runStream.LogNormFactor(noise.RunSigma),
		dualRunSkew: dualStream.LogNormFactor(noise.DualRunSigma),
		slowFactor:  1,
		jitter:      jitter,
		jitter0:     *jitter,
	}
}

// Reset returns the node to its just-constructed state for pooled
// episode reuse: the RAPL domain rewinds to time zero, the jitter
// stream to its initial seed, and the busy/idle accounting and slow
// factor clear. The seed-derived skews are immutable during runs and
// stay as drawn, so a reset node replays exactly the execution sequence
// of a freshly built node with the same seeds.
func (n *Node) Reset() {
	n.rapl.Reset()
	*n.jitter = n.jitter0
	n.noisePos = 0
	n.slowFactor = 1
	n.busy, n.idle = 0, 0
}

// SetNoiseTrace installs a recorded standard-normal draw sequence for
// this node: subsequent phase executions consume trace entries instead
// of advancing the live jitter stream, producing bit-identical jitter
// factors (the trace entries are the Norm values the stream would have
// drawn — see JitterTrace). Reset rewinds the replay cursor, so a
// pooled node replays the same trace every episode. nil reverts to the
// live stream. The slice is read, never written; callers may share one
// trace across any number of nodes' replays concurrently.
func (n *Node) SetNoiseTrace(t []float64) {
	n.noiseTrace = t
	n.noisePos = 0
}

// nextNorm returns the node's next standard-normal noise draw: the
// next trace entry under replay, or a live Box-Muller draw otherwise.
// A replay past the recorded length panics — the trace length is
// derived from the same phase tables the episode executes, so running
// out is a driver accounting bug, not a recoverable condition.
func (n *Node) nextNorm() float64 {
	if n.noiseTrace != nil {
		v := n.noiseTrace[n.noisePos]
		n.noisePos++
		return v
	}
	return n.jitter.Norm()
}

// JitterTrace records the first draws standard normals of node id's
// jitter stream under runSeed — exactly the sequence a node built by
// NewNodeWithSeeds(id, ..., runSeed) consumes while executing phases.
// The wiring (stream label and derivation) lives here so the recorder
// can never drift from the live path.
func JitterTrace(runSeed uint64, id, draws int) []float64 {
	out := make([]float64, draws)
	rng.DeriveIndexed(runSeed, "node-jitter", id).FillNorm(out)
	return out
}

// ID returns the node identifier.
func (n *Node) ID() int { return n.id }

// RAPL exposes the node's power domain for cap control and monitoring.
func (n *Node) RAPL() *rapl.Domain { return n.rapl }

// Model returns the node's performance-model constants.
func (n *Node) Model() Model { return n.model }

// Skew returns the node's static speed skew factor (1 = nominal).
func (n *Node) Skew() float64 { return n.skew }

// SetSlowFactor sets the node's transient excursion multiplier: phase
// durations scale by f until it is set back to 1. It panics on
// non-positive factors.
func (n *Node) SetSlowFactor(f float64) {
	if f <= 0 {
		panic(fmt.Sprintf("machine: non-positive slow factor %g", f))
	}
	n.slowFactor = f
}

// SlowFactor returns the current excursion multiplier.
func (n *Node) SlowFactor() float64 { return n.slowFactor }

// BusyTime returns cumulative time spent executing phases.
func (n *Node) BusyTime() units.Seconds { return n.busy }

// IdleTime returns cumulative time spent waiting at synchronizations.
func (n *Node) IdleTime() units.Seconds { return n.idle }

// Execution is the outcome of running a phase on a node.
type Execution struct {
	// Duration is the wall (virtual) time the phase took.
	Duration units.Seconds
	// Power is the average power drawn while executing.
	Power units.Watts
	// Throttled reports whether the RAPL cap constrained the phase.
	Throttled bool
}

// jitterSigma returns the noise magnitude for a phase execution given the
// node's capping state.
func (n *Node) jitterSigma(base float64, throttled, dualCap bool) float64 {
	s := base
	if throttled {
		s *= n.model.CapNoiseBoost
		if dualCap {
			s *= n.model.DualCapNoiseBoost
		}
	}
	return s
}

// Run executes a phase to completion on the node, advancing its RAPL
// domain, and returns the realized duration and power. noise may be zero
// for deterministic runs.
func (n *Node) Run(ph Phase, noise NoiseModel) Execution {
	ph = n.model.adapt(ph)
	if err := ph.Validate(n.model); err != nil {
		panic(err)
	}
	return n.runAdapted(&ph, &noise)
}

// ValidatePhase checks a phase against this device exactly as Run
// would (after device adaptation). Drivers that pre-validate their
// phase tables once pair it with Node.RunTrusted.
func (m Model) ValidatePhase(ph Phase) error { return m.adapt(ph).Validate(m) }

// RunTrusted is Run for drivers that pre-validate their phase tables
// once per job (the pooled episode fast path): it skips the
// per-execution Validate call and is byte-identical to Run for any
// phase Run would accept.
func (n *Node) RunTrusted(ph Phase, noise NoiseModel) Execution {
	ph = n.model.adapt(ph)
	return n.runAdapted(&ph, &noise)
}

// Adapt returns the phase as this model's device class executes it
// (speed factor applied to the nominal time, power scale to the power
// points). It is the per-execution adaptation RunTrusted performs,
// exposed so drivers can pre-adapt immutable phase tables once per job.
func (m Model) Adapt(ph Phase) Phase { return m.adapt(ph) }

// RunAdapted executes a phase that was already adapted by — and
// validated against — this node's model (via Adapt/ValidatePhase). It
// is byte-identical to RunTrusted on the unadapted phase; the pooled
// episode fast path uses it with pre-adapted tables so neither the
// adaptation nor the phase and noise-model copies are paid per
// execution. The phase and noise model are read, never retained.
func (n *Node) RunAdapted(ph *Phase, noise *NoiseModel) Execution {
	return n.runAdapted(ph, noise)
}

// runAdapted executes an already device-adapted phase.
func (n *Node) runAdapted(ph *Phase, noise *NoiseModel) Execution {
	if ph.Nominal == 0 {
		return Execution{}
	}
	allowed, dual := n.rapl.Grant(ph.Demand)
	drawn := ph.Demand
	if drawn > allowed {
		drawn = allowed
	}
	throttled := allowed < ph.Demand

	// Reference performance is at the phase's own unconstrained demand.
	// The node's power-efficiency skew shifts how much performance the
	// drawn power actually buys. adapt caches the reference point in
	// the phase; a zero cache (possible only when the model's floor
	// puts the reference at exactly 0) recomputes the same value.
	refPerf := ph.refPerf
	if refPerf == 0 {
		refPerf = n.model.perf(ph.Demand, ph.Saturation)
	}
	curPerf := n.model.perf(units.Watts(float64(drawn)*n.powerEff), ph.Saturation)
	slowdown := 1 - ph.Sensitivity + ph.Sensitivity*refPerf/curPerf

	d := float64(ph.Nominal) * slowdown * n.skew * n.runSkew
	if n.slowFactor > 0 {
		d *= n.slowFactor
	}
	if throttled && dual {
		d *= n.dualRunSkew
	}
	d *= rng.JitterFrom(n.nextNorm(), n.jitterSigma(noise.JitterSigma, throttled, dual))

	// Power-reading ripple: the realized average power of the phase
	// fluctuates around the regulated level.
	if noise.PowerSigma > 0 {
		drawn = units.Watts(float64(drawn) * rng.JitterFrom(n.nextNorm(), noise.PowerSigma))
		if tdp := n.rapl.TDP(); drawn > tdp {
			drawn = tdp
		}
	}

	dur := units.Seconds(d)
	n.rapl.Advance(dur, drawn)
	n.busy += dur
	return Execution{Duration: dur, Power: drawn, Throttled: throttled}
}

// Idle advances the node through d seconds of synchronization wait,
// drawing the model's idle power (bounded by the current cap).
func (n *Node) Idle(d units.Seconds) Execution {
	if d < 0 {
		panic("machine: negative idle duration")
	}
	if d == 0 {
		return Execution{}
	}
	p := n.rapl.SustainedAllowed(n.model.IdlePower)
	if p > n.model.IdlePower {
		p = n.model.IdlePower
	}
	n.rapl.Advance(d, p)
	n.idle += d
	return Execution{Duration: d, Power: p}
}

// PredictDuration returns the duration the phase would take at the given
// allowed power, without executing it or applying noise. Policies never
// call this (they are strictly online); it exists for tests and for
// computing oracle/optimal references in the experiment harness.
func (n *Node) PredictDuration(ph Phase, allowed units.Watts) units.Seconds {
	ph = n.model.adapt(ph)
	drawn := ph.Demand
	if drawn > allowed {
		drawn = allowed
	}
	refPerf := n.model.perf(ph.Demand, ph.Saturation)
	curPerf := n.model.perf(drawn, ph.Saturation)
	slowdown := 1 - ph.Sensitivity + ph.Sensitivity*refPerf/curPerf
	return units.Seconds(float64(ph.Nominal) * slowdown * n.skew)
}

// EstimatedFrequency maps a phase's performance factor at the given
// power to an approximate core frequency, anchored at the KNL 7230's
// 1.3 GHz base and 1.5 GHz turbo: monitoring tools report frequency, and
// throttling shows up there first on real hardware.
func (n *Node) EstimatedFrequency(ph Phase, power units.Watts) float64 {
	const (
		baseGHz  = 1.3
		turboGHz = 1.5
	)
	ph = n.model.adapt(ph)
	f := n.model.perf(units.Watts(float64(power)*n.powerEff), ph.Saturation)
	return baseGHz*f + (turboGHz-baseGHz)*f*f
}

package workflow

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/units"
)

func TestParsePlacement(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Placement
	}{
		{"", SpaceShared},
		{"space-shared", SpaceShared},
		{"time-shared", TimeShared},
		{"in-transit", InTransit},
	} {
		got, err := ParsePlacement(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParsePlacement(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParsePlacement("bogus"); err == nil || !strings.Contains(err.Error(), "space-shared") {
		t.Errorf("ParsePlacement(bogus) err = %v; want listing valid values", err)
	}
}

// twoStage returns a minimal valid graph for mutation in error tests.
func twoStage() Graph {
	return Graph{
		Name: "t",
		Stages: []Stage{
			{Name: "sim", Role: core.RoleSimulation, Ranks: 2},
			{Name: "ana", Role: core.RoleAnalysis, Ranks: 2},
		},
		Edges: []Edge{{From: "sim", To: "ana", BytesPerRank: 64}},
	}
}

func TestGraphValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Graph)
		want   string
	}{
		{"no stages", func(g *Graph) { g.Stages = nil }, "no stages"},
		{"unnamed", func(g *Graph) { g.Stages[0].Name = "" }, "has no name"},
		{"duplicate", func(g *Graph) { g.Stages[1].Name = "sim" }, "duplicate stage"},
		{"zero ranks", func(g *Graph) { g.Stages[0].Ranks = 0 }, "positive ranks"},
		{"host on space-shared", func(g *Graph) { g.Stages[1].Host = "sim" }, "time-shared stages only"},
		{"time-shared without host", func(g *Graph) { g.Stages[1].Placement = TimeShared }, "needs a host"},
		{"unknown host", func(g *Graph) {
			g.Stages[1].Placement = TimeShared
			g.Stages[1].Host = "nope"
		}, "unknown host"},
		{"unequal host ranks", func(g *Graph) {
			g.Stages[1].Placement = TimeShared
			g.Stages[1].Host = "sim"
			g.Stages[1].Ranks = 3
		}, "co-residency is pairwise"},
		{"no analysis stage", func(g *Graph) { g.Stages[1].Role = core.RoleSimulation }, "at least one simulation-role and one analysis-role"},
		{"unknown edge stage", func(g *Graph) { g.Edges[0].To = "nope" }, "unknown stage"},
		{"self loop", func(g *Graph) { g.Edges[0].To = "sim" }, "self-loop"},
		{"negative bytes", func(g *Graph) { g.Edges[0].BytesPerRank = -1 }, "negative bytes"},
		{"cycle", func(g *Graph) { g.Edges = append(g.Edges, Edge{From: "ana", To: "sim"}) }, "dependency cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := twoStage()
			tc.mutate(&g)
			err := g.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("Validate() err = %v; want containing %q", err, tc.want)
			}
		})
	}
}

func TestCompileLayoutAndRouting(t *testing.T) {
	topo, err := Build("dag", Params{Nodes: 16, Dim: 8, J: 2, Steps: 8})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := plan.NWorld, 16; got != want {
		t.Fatalf("NWorld = %d, want %d", got, want)
	}
	if plan.SimNodes != 8 || plan.AnaNodes != 8 {
		t.Fatalf("partitions = %d/%d, want 8/8", plan.SimNodes, plan.AnaNodes)
	}
	wantNames := []string{"sim", "filter", "rdf", "msd1d", "reduce"}
	if got := plan.StageNames(); fmt.Sprint(got) != fmt.Sprint(wantNames) {
		t.Fatalf("StageNames = %v, want %v", got, wantNames)
	}
	if got := plan.StageOf(0); got != "sim" {
		t.Errorf("StageOf(0) = %q", got)
	}
	if got := plan.StageOf(9); got != "filter" {
		t.Errorf("StageOf(9) = %q", got)
	}
	// Fan-in: the reduce stage has two inbound edges, one per analysis.
	reduce := plan.byName["reduce"]
	if len(reduce.ins) != 2 {
		t.Fatalf("reduce has %d inbound edges, want 2", len(reduce.ins))
	}
	// sim (8 ranks) -> filter (2 ranks): each filter rank gets 4 sources.
	filter := plan.byName["filter"]
	for c, srcs := range filter.ins[0].sources {
		if len(srcs) != 4 {
			t.Errorf("filter rank %d has %d sources, want 4", c, len(srcs))
		}
	}
	// Edge tags follow declaration order from tagBase.
	if got := filter.ins[0].tag; got != tagBase {
		t.Errorf("sim->filter tag = %d, want %d", got, tagBase)
	}
}

func TestCompileTimeSharedScales(t *testing.T) {
	topo, err := Build("time-shared", Params{Nodes: 4, Dim: 8, J: 1, Steps: 4})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(topo.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if plan.NWorld != 8 || plan.PhysicalNodes != 4 {
		t.Fatalf("NWorld=%d PhysicalNodes=%d, want 8/4", plan.NWorld, plan.PhysicalNodes)
	}
	if plan.Scales == nil {
		t.Fatal("time-shared plan has nil Scales")
	}
	for i, s := range plan.Scales {
		if s != 0.5 {
			t.Errorf("scale[%d] = %g, want 0.5", i, s)
		}
	}
}

func TestBuildUnknownTopology(t *testing.T) {
	if _, err := Build("ring", Params{Nodes: 8, Dim: 8}); err == nil || !strings.Contains(err.Error(), "dag") {
		t.Errorf("Build(ring) err = %v; want listing valid topologies", err)
	}
	if _, err := Build("dag", Params{Nodes: 12, Dim: 8}); err == nil || !strings.Contains(err.Error(), "divisible by 8") {
		t.Errorf("Build(dag, 12 nodes) err = %v", err)
	}
}

// topologyConfig builds a runnable Config for one named topology on a
// small machine, with the cap range adapted to the topology's power
// domains.
func topologyConfig(t testing.TB, name string, nodes, steps, j int, policy func(core.Constraints) core.Policy) Config {
	topo, err := Build(name, Params{Nodes: nodes, Dim: 8, J: j, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	cons := topo.ScaleCaps(core.Constraints{
		Budget: units.Watts(110 * topo.PhysicalNodes),
		MinCap: 98,
		MaxCap: 215,
	})
	return Config{
		Graph:       topo.Graph,
		Steps:       steps,
		SyncEvery:   j,
		Policy:      policy(cons),
		Constraints: cons,
		Seed:        11,
	}
}

func seesawPolicy(cons core.Constraints) core.Policy {
	return core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: 2})
}

func staticPolicy(core.Constraints) core.Policy { return core.NewStatic() }

// renderResult serializes the determinism-relevant observables at full
// float64 precision.
func renderResult(res *Result) string {
	hf := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	var b strings.Builder
	fmt.Fprintf(&b, "time %s energy %s overhead %s syncs %d xferS %s xferB %d\n",
		hf(float64(res.MainLoopTime)), hf(float64(res.TotalEnergy)),
		hf(float64(res.OverheadTotal)), res.Syncs,
		hf(float64(res.TransferSeconds)), res.TransferBytes)
	for _, r := range res.SyncLog.Records {
		fmt.Fprintf(&b, "sync %d %s %s %s %s\n", r.Step,
			hf(float64(r.SimTime)), hf(float64(r.AnaTime)),
			hf(float64(r.SimCap)), hf(float64(r.AnaCap)))
	}
	return b.String()
}

// TestRunDeterminism pins every topology to bit-identical repeat runs —
// the property the campaign sharding and the golden tests build on.
func TestRunDeterminism(t *testing.T) {
	for _, name := range TopologyNames() {
		t.Run(name, func(t *testing.T) {
			run := func() string {
				cfg := topologyConfig(t, name, 16, 8, 2, seesawPolicy)
				res, err := Run(context.Background(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				return renderResult(res)
			}
			a, b := run(), run()
			if a != b {
				t.Fatalf("repeat runs differ:\n%s\nvs\n%s", a, b)
			}
		})
	}
}

// TestInTransitTransferAccounting checks that the staging hop shows up
// on the virtual clock and in the volume accounting — and only there.
func TestInTransitTransferAccounting(t *testing.T) {
	res := map[string]*Result{}
	for _, name := range []string{"space-shared", "in-transit"} {
		r, err := Run(context.Background(), topologyConfig(t, name, 8, 8, 2, staticPolicy))
		if err != nil {
			t.Fatal(err)
		}
		res[name] = r
	}
	if res["space-shared"].TransferSeconds != 0 {
		t.Errorf("space-shared TransferSeconds = %v, want 0", res["space-shared"].TransferSeconds)
	}
	if res["in-transit"].TransferSeconds <= 0 {
		t.Errorf("in-transit TransferSeconds = %v, want > 0", res["in-transit"].TransferSeconds)
	}
	if res["in-transit"].TransferBytes != res["space-shared"].TransferBytes {
		t.Errorf("transfer volume changed with placement: %d vs %d",
			res["in-transit"].TransferBytes, res["space-shared"].TransferBytes)
	}
	if res["in-transit"].MainLoopTime <= res["space-shared"].MainLoopTime {
		t.Errorf("staging hop did not lengthen the run: in-transit %v vs space-shared %v",
			res["in-transit"].MainLoopTime, res["space-shared"].MainLoopTime)
	}
}

// TestInTransitKillUnwinds kills an analysis node mid-run under the
// in-transit topology: the fault must poison the whole job — including
// producers inside staged transfer phases and consumers blocked on
// them — and surface as a KilledError.
func TestInTransitKillUnwinds(t *testing.T) {
	cfg := topologyConfig(t, "in-transit", 8, 12, 2, staticPolicy)
	plan, err := fault.Parse("kill:6@3")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Faults = plan
	_, err = Run(context.Background(), cfg)
	var killed *fault.KilledError
	if !errors.As(err, &killed) {
		t.Fatalf("Run err = %v, want *fault.KilledError", err)
	}
	if killed.Node != 6 || killed.Sync != 3 {
		t.Errorf("killed = node %d sync %d, want node 6 sync 3", killed.Node, killed.Sync)
	}
}

// TestDAGFanInRaceSmoke drives the full fan-out/fan-in pipeline at 1024
// ranks so the race detector sees the engine's cross-stage send/recv
// and aggregation paths under real contention (make check runs the
// package under -race).
func TestDAGFanInRaceSmoke(t *testing.T) {
	cfg := topologyConfig(t, "dag", 1024, 2, 1, staticPolicy)
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Syncs != 2 {
		t.Errorf("Syncs = %d, want 2", res.Syncs)
	}
	if res.StageBusy["reduce"] <= 0 {
		t.Errorf("reduce stage recorded no busy time")
	}
}

// BenchmarkTopologies measures workflow-engine wall time per job across
// machine sizes and placements; bench-scale tracks it in BENCH_*.json
// to catch scheduling-overhead regressions against the hardwired
// driver.
func BenchmarkTopologies(b *testing.B) {
	for _, nodes := range []int{256, 1024} {
		for _, name := range []string{"space-shared", "time-shared", "in-transit"} {
			b.Run(fmt.Sprintf("nodes=%d/%s", nodes, name), func(b *testing.B) {
				cfg := topologyConfig(b, name, nodes, 4, 2, staticPolicy)
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Run(context.Background(), cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

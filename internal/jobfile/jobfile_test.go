package jobfile

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"seesaw/internal/cosim"
)

const validJSON = `{
  "nodes": 8,
  "dim": 16,
  "j": 1,
  "steps": 20,
  "analyses": [{"name": "msd"}, {"name": "rdf", "interval": 4}],
  "policy": "seesaw",
  "window": 2,
  "cap_per_node_w": 110,
  "seed": 7
}`

func TestLoadValid(t *testing.T) {
	j, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if j.Nodes != 8 || j.Policy != "seesaw" || j.Window != 2 {
		t.Errorf("parsed job wrong: %+v", j)
	}
	if len(j.Analyses) != 2 || j.Analyses[1].Interval != 4 {
		t.Errorf("analyses wrong: %+v", j.Analyses)
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"nodes": 8, "dim": 16, "steps": 10,
		"analyses": [{"name":"msd"}], "bogus_field": 1}`)); err == nil {
		t.Error("unknown field should be rejected")
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []string{
		`{"dim": 16, "steps": 10, "analyses": [{"name":"msd"}]}`,                                             // no nodes
		`{"nodes": 8, "steps": 10, "analyses": [{"name":"msd"}]}`,                                            // no dim
		`{"nodes": 8, "dim": 16, "analyses": [{"name":"msd"}]}`,                                              // no steps
		`{"nodes": 8, "dim": 16, "steps": 10, "analyses": []}`,                                               // no analyses
		`{"nodes": 8, "sim_nodes": 2, "ana_nodes": 2, "dim": 16, "steps": 10, "analyses": [{"name":"msd"}]}`, // inconsistent
		`{"nodes": 8, "dim": 16, "steps": 10, "analyses": [{"name":"msd"}], "cap_mode": "weird"}`,            // bad mode
		`{"nodes": 8, "dim": 16, "steps": 10, "analyses": [{"name":"msd"}], "policy": "weird"}`,              // bad policy
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestBuildAndRun(t *testing.T) {
	j, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Spec.SimNodes != 4 || cfg.Spec.AnaNodes != 4 {
		t.Errorf("node split = %d/%d", cfg.Spec.SimNodes, cfg.Spec.AnaNodes)
	}
	if cfg.Constraints.Budget != 880 {
		t.Errorf("budget = %v", cfg.Constraints.Budget)
	}
	if cfg.Policy.Name() != "seesaw" {
		t.Errorf("policy = %s", cfg.Policy.Name())
	}
	res, err := cosim.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Error("job did not run")
	}
}

func TestBuildDefaults(t *testing.T) {
	j, err := Load(strings.NewReader(`{"nodes": 8, "dim": 16, "steps": 10,
		"analyses": [{"name": "vacf"}]}`))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := j.Build()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Policy.Name() != "static" {
		t.Errorf("default policy = %s, want static", cfg.Policy.Name())
	}
	if cfg.Constraints.MinCap != 98 || cfg.Constraints.MaxCap != 215 {
		t.Errorf("default cap range = %v/%v", cfg.Constraints.MinCap, cfg.Constraints.MaxCap)
	}
	if cfg.CapMode != cosim.CapLong {
		t.Error("default cap mode should be long")
	}
	if cfg.Seed != 1 {
		t.Errorf("default seed = %d", cfg.Seed)
	}
}

func TestBuildCapModes(t *testing.T) {
	for mode, want := range map[string]cosim.CapMode{
		"none":       cosim.CapNone,
		"long":       cosim.CapLong,
		"long+short": cosim.CapLongShort,
	} {
		j := &Job{Nodes: 8, Dim: 16, Steps: 10,
			Analyses: []Analysis{{Name: "msd"}}, CapMode: mode}
		cfg, err := j.Build()
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if cfg.CapMode != want {
			t.Errorf("cap_mode %q -> %v, want %v", mode, cfg.CapMode, want)
		}
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "job.json")
	if err := os.WriteFile(path, []byte(validJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

func TestBuildRejectsUnknownAnalysis(t *testing.T) {
	j := &Job{Nodes: 8, Dim: 16, Steps: 10, Analyses: []Analysis{{Name: "nope"}}}
	if _, err := j.Build(); err == nil {
		t.Error("unknown analysis should fail at Build")
	}
}

package rapl

import (
	"testing"
	"testing/quick"

	"seesaw/internal/units"
)

func TestEnergyRegisterTracksEnergy(t *testing.T) {
	d := MustNewDomain(Theta())
	d.Advance(1, 100) // 100 J
	reg := d.EnergyRegister()
	wantCounts := uint32(100 / EnergyUnit)
	if reg != wantCounts {
		t.Errorf("register = %d counts, want %d", reg, wantCounts)
	}
}

func TestEnergyRegisterWraps(t *testing.T) {
	d := MustNewDomain(Theta())
	// Push the counter past the 32-bit boundary: 2^32 counts of 61 uJ
	// ~ 262 kJ; at 200 W that's ~1311 s.
	wrapJoules := float64(uint64(1)<<32) * EnergyUnit
	seconds := units.Seconds(wrapJoules/200) + 10
	d.Advance(seconds, 200)
	if float64(d.Energy()) <= wrapJoules {
		t.Fatal("test setup: energy did not exceed the wrap point")
	}
	// The register must have wrapped (be far below the raw count).
	raw := uint64(float64(d.Energy()) / EnergyUnit)
	if uint64(d.EnergyRegister()) == raw {
		t.Error("register did not wrap at 32 bits")
	}
}

func TestEnergyUnwrapper(t *testing.T) {
	d := MustNewDomain(Theta())
	var u EnergyUnwrapper
	u.Update(d.EnergyRegister())

	// Advance in chunks that cross the wrap boundary and verify the
	// unwrapped total tracks the true energy within one unit per read.
	var reads int
	for i := 0; i < 2000; i++ {
		d.Advance(1, 180)
		u.Update(d.EnergyRegister())
		reads++
	}
	got := float64(u.Total())
	want := float64(d.Energy())
	if diff := got - want; diff > EnergyUnit*float64(reads)+1 || diff < -(EnergyUnit*float64(reads)+1) {
		t.Errorf("unwrapped %v vs true %v (diff %v)", got, want, diff)
	}
	if want < float64(uint64(1)<<32)*EnergyUnit {
		t.Fatal("test did not cross the wrap boundary")
	}
}

func TestEnergyUnwrapperFirstRead(t *testing.T) {
	var u EnergyUnwrapper
	if got := u.Update(12345); got != 0 {
		t.Errorf("first read should establish the baseline, got %v", got)
	}
	if got := u.Update(12345 + 1000); float64(got) != 1000*EnergyUnit {
		t.Errorf("delta = %v, want %v", got, 1000*EnergyUnit)
	}
}

func TestEnergyUnwrapperProperty(t *testing.T) {
	// Any sequence of non-negative power draws produces a monotonically
	// non-decreasing unwrapped total.
	f := func(draws []uint8) bool {
		d := MustNewDomain(Theta())
		var u EnergyUnwrapper
		prev := u.Update(d.EnergyRegister())
		for _, p := range draws {
			d.Advance(0.5, units.Watts(p))
			cur := u.Update(d.EnergyRegister())
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

package core

import (
	"math"
	"testing"
	"testing/quick"

	"seesaw/internal/units"
)

func testConstraints() Constraints {
	return Constraints{Budget: 110 * 8, MinCap: 98, MaxCap: 215}
}

// measures builds a 4+4 node measurement set with given partition times
// and per-node powers.
func measures(simT, anaT units.Seconds, simP, anaP units.Watts, cap units.Watts) []NodeMeasure {
	var ms []NodeMeasure
	for i := 0; i < 4; i++ {
		ms = append(ms, NodeMeasure{Role: RoleSimulation, Time: simT, BusyTime: simT, EpochTime: simT, Power: simP, Cap: cap})
	}
	for i := 0; i < 4; i++ {
		ms = append(ms, NodeMeasure{Role: RoleAnalysis, Time: anaT, BusyTime: anaT, EpochTime: anaT, Power: anaP, Cap: cap})
	}
	return ms
}

func TestRoleString(t *testing.T) {
	if RoleSimulation.String() != "sim" || RoleAnalysis.String() != "ana" {
		t.Error("role strings wrong")
	}
}

func TestConstraintsValidate(t *testing.T) {
	good := testConstraints()
	if err := good.Validate(8); err != nil {
		t.Errorf("valid constraints rejected: %v", err)
	}
	bad := []Constraints{
		{Budget: 0, MinCap: 98, MaxCap: 215},
		{Budget: 1000, MinCap: 0, MaxCap: 215},
		{Budget: 1000, MinCap: 215, MaxCap: 98},
		{Budget: 100, MinCap: 98, MaxCap: 215}, // below 8*98
	}
	for i, c := range bad {
		if err := c.Validate(8); err == nil {
			t.Errorf("constraints %d should be rejected", i)
		}
	}
}

func TestStatic(t *testing.T) {
	s := NewStatic()
	if s.Name() != "static" {
		t.Error("wrong name")
	}
	if got := s.Allocate(1, measures(4, 4, 108, 108, 110)); got != nil {
		t.Error("static policy must never reallocate")
	}
}

func TestEvenSplit(t *testing.T) {
	c := testConstraints()
	if got := EvenSplit(c, 8); got != 110 {
		t.Errorf("EvenSplit = %v, want 110", got)
	}
	if got := EvenSplit(c, 0); got != 0 {
		t.Errorf("EvenSplit with zero nodes = %v", got)
	}
	// Clamped to MinCap when budget is tight relative to node count.
	tight := Constraints{Budget: 98 * 10, MinCap: 98, MaxCap: 215}
	if got := EvenSplit(tight, 10); got != 98 {
		t.Errorf("tight EvenSplit = %v, want 98", got)
	}
}

func TestClampPartitionCaps(t *testing.T) {
	c := testConstraints() // budget 880, caps [98,215], 4+4 nodes

	// Below delta_min: pinned, remainder to the other side.
	s, a := clampPartitionCaps(90, 130, 4, 4, c)
	if s != 98 {
		t.Errorf("sim cap = %v, want delta_min 98", s)
	}
	wantA := units.ClampWatts((c.Budget-98*4)/4, c.MinCap, c.MaxCap)
	if a != wantA {
		t.Errorf("ana cap = %v, want remainder %v", a, wantA)
	}

	// Above delta_max: pinned at 215.
	s, a = clampPartitionCaps(300, 10, 4, 4, c)
	if s != 215 {
		t.Errorf("sim cap = %v, want delta_max", s)
	}
	if a < c.MinCap || a > c.MaxCap {
		t.Errorf("ana cap %v outside range", a)
	}

	// In range: untouched.
	s, a = clampPartitionCaps(120, 100, 4, 4, c)
	if s != 120 || a != 100 {
		t.Errorf("in-range caps modified: %v/%v", s, a)
	}
}

func TestClampPartitionCapsProperty(t *testing.T) {
	c := testConstraints()
	f := func(rawS, rawA float64) bool {
		ps := units.Watts(math.Abs(math.Mod(rawS, 400)))
		pa := units.Watts(math.Abs(math.Mod(rawA, 400)))
		s, a := clampPartitionCaps(ps, pa, 4, 4, c)
		return s >= c.MinCap && s <= c.MaxCap && a >= c.MinCap && a <= c.MaxCap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPartitionTotals(t *testing.T) {
	ms := measures(5, 3, 100, 105, 110)
	ms[1].Time = 7 // one slow sim node
	simT, anaT, simP, anaP, nSim, nAna := partitionTotals(ms)
	if simT != 7 || anaT != 3 {
		t.Errorf("partition times = %v/%v", simT, anaT)
	}
	if simP != 400 || anaP != 420 {
		t.Errorf("partition powers = %v/%v", simP, anaP)
	}
	if nSim != 4 || nAna != 4 {
		t.Errorf("partition sizes = %d/%d", nSim, nAna)
	}
}

func TestExpandPartitionCaps(t *testing.T) {
	ms := measures(1, 1, 100, 100, 110)
	caps := expandPartitionCaps(ms, 120, 100)
	for i, m := range ms {
		want := units.Watts(100)
		if m.Role == RoleSimulation {
			want = 120
		}
		if caps[i] != want {
			t.Errorf("cap[%d] = %v, want %v", i, caps[i], want)
		}
	}
}

package bench

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// TestReportByteIdenticalAcrossJobs is the determinism gate for the
// campaign engine: the full report, generated once sequentially and once
// on an 8-worker pool, must be byte-identical. Cells are pure functions
// of their seeds and results are assembled in enumeration order, so no
// scheduling artifact may leak into the output.
func TestReportByteIdenticalAcrossJobs(t *testing.T) {
	render := func(jobs int) []byte {
		t.Helper()
		o := fastOptions()
		o.Jobs = jobs
		var buf bytes.Buffer
		if err := WriteReport(context.Background(), &buf, o, nil); err != nil {
			t.Fatalf("WriteReport(jobs=%d): %v", jobs, err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(8)
	if !bytes.Equal(seq, par) {
		line := 1
		for i := 0; i < len(seq) && i < len(par); i++ {
			if seq[i] != par[i] {
				t.Fatalf("reports diverge at byte %d (line %d): jobs=1 has %q, jobs=8 has %q",
					i, line, excerpt(seq, i), excerpt(par, i))
			}
			if seq[i] == '\n' {
				line++
			}
		}
		t.Fatalf("report lengths differ: jobs=1 %d bytes, jobs=8 %d bytes", len(seq), len(par))
	}
	if len(seq) < 1000 {
		t.Errorf("full report suspiciously small: %d bytes", len(seq))
	}
}

// TestReportByteIdenticalAcrossGOMAXPROCS crosses the worker-pool axis
// with the scheduler-parallelism axis: the report rendered with jobs∈{1,8}
// under GOMAXPROCS∈{1,8} must produce one identical byte stream. True
// parallelism changes which rank goroutines run simultaneously — striped
// telemetry cells, amortized Split completion and memoized analysis
// replay must all stay invisible to the output.
func TestReportByteIdenticalAcrossGOMAXPROCS(t *testing.T) {
	if testing.Short() {
		t.Skip("renders the report four times")
	}
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	var ref []byte
	var refDesc string
	for _, procs := range []int{1, 8} {
		runtime.GOMAXPROCS(procs)
		for _, jobs := range []int{1, 8} {
			o := fastOptions()
			o.Jobs = jobs
			var buf bytes.Buffer
			if err := WriteReport(context.Background(), &buf, o, nil); err != nil {
				t.Fatalf("WriteReport(GOMAXPROCS=%d, jobs=%d): %v", procs, jobs, err)
			}
			desc := fmt.Sprintf("GOMAXPROCS=%d jobs=%d", procs, jobs)
			if ref == nil {
				ref, refDesc = buf.Bytes(), desc
				continue
			}
			if got := buf.Bytes(); !bytes.Equal(got, ref) {
				i := 0
				for i < len(got) && i < len(ref) && got[i] == ref[i] {
					i++
				}
				t.Fatalf("report differs between %s and %s at byte %d: %q vs %q",
					refDesc, desc, i, excerpt(ref, i), excerpt(got, i))
			}
		}
	}
}

// TestFaultsByteIdenticalAcrossJobs pins determinism for the fault
// path specifically: fault application rides the per-interval clock
// inside each cell, so a kill or excursion must not introduce any
// scheduling-dependent state even when cells run on 8 workers.
func TestFaultsByteIdenticalAcrossJobs(t *testing.T) {
	e, ok := Get("faults")
	if !ok {
		t.Fatal("faults experiment not registered")
	}
	render := func(jobs int) []byte {
		t.Helper()
		o := fastOptions()
		o.Jobs = jobs
		var buf bytes.Buffer
		if err := e.Run(context.Background(), o, &buf); err != nil {
			t.Fatalf("faults(jobs=%d): %v", jobs, err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("faults reports differ between jobs=1 and jobs=8:\n%s\n---\n%s", seq, par)
	}
}

// TestTopologiesByteIdenticalAcrossJobs pins determinism for the
// workflow engine: the topologies campaign spans all three placements
// plus the DAG pipeline, so time-shared half-node domains, in-transit
// staging phases and fan-in receive ordering must all be invisible to
// worker-pool scheduling.
func TestTopologiesByteIdenticalAcrossJobs(t *testing.T) {
	e, ok := Get("topologies")
	if !ok {
		t.Fatal("topologies experiment not registered")
	}
	render := func(jobs int) []byte {
		t.Helper()
		o := fastOptions()
		o.Jobs = jobs
		var buf bytes.Buffer
		if err := e.Run(context.Background(), o, &buf); err != nil {
			t.Fatalf("topologies(jobs=%d): %v", jobs, err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("topologies reports differ between jobs=1 and jobs=8:\n%s\n---\n%s", seq, par)
	}
}

// TestSearchByteIdenticalAcrossJobs pins determinism for the rollout
// path: the search experiment fans every (scenario, policy) point over
// rollout.Batch, where each episode runs on its own Env goroutine pair
// — the channel rendezvous must not leak scheduling into the ranking.
func TestSearchByteIdenticalAcrossJobs(t *testing.T) {
	e, ok := Get("search")
	if !ok {
		t.Fatal("search experiment not registered")
	}
	render := func(jobs int) []byte {
		t.Helper()
		o := fastOptions()
		o.Jobs = jobs
		var buf bytes.Buffer
		if err := e.Run(context.Background(), o, &buf); err != nil {
			t.Fatalf("search(jobs=%d): %v", jobs, err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("search reports differ between jobs=1 and jobs=8:\n%s\n---\n%s", seq, par)
	}
}

// TestHeteroByteIdenticalAcrossJobs pins determinism for the
// device-class path: heterogeneous cells thread per-node capabilities
// through cluster construction and the allocators' waterfill division,
// so class weights and per-class clamps must be pure functions of the
// cell's seeds even when cells run on 8 workers.
func TestHeteroByteIdenticalAcrossJobs(t *testing.T) {
	e, ok := Get("hetero")
	if !ok {
		t.Fatal("hetero experiment not registered")
	}
	render := func(jobs int) []byte {
		t.Helper()
		o := fastOptions()
		o.Jobs = jobs
		var buf bytes.Buffer
		if err := e.Run(context.Background(), o, &buf); err != nil {
			t.Fatalf("hetero(jobs=%d): %v", jobs, err)
		}
		return buf.Bytes()
	}
	seq := render(1)
	par := render(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("hetero reports differ between jobs=1 and jobs=8:\n%s\n---\n%s", seq, par)
	}
}

// TestReportMatchesSeedGolden pins the full experiment report to the
// bytes the seed runtime produced (testdata/report_golden.md, captured
// before the sharded-rendezvous rewrite of internal/mpi). Virtual-time
// results are defined by the communication structure alone — clock
// merging is max(arrival)+cost, order-independent by construction — so
// no substrate optimization may move a single byte of this document.
func TestReportMatchesSeedGolden(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "report_golden.md"))
	if err != nil {
		t.Fatalf("reading golden report: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteReport(context.Background(), &buf, fastOptions(), nil); err != nil {
		t.Fatalf("WriteReport: %v", err)
	}
	got := buf.Bytes()
	if !bytes.Equal(got, want) {
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		for i := 0; i < n; i++ {
			if got[i] != want[i] {
				t.Fatalf("report diverges from seed golden at byte %d: got %q, want %q",
					i, excerpt(got, i), excerpt(want, i))
			}
		}
		t.Fatalf("report length differs from seed golden: got %d bytes, want %d", len(got), len(want))
	}
}

func excerpt(b []byte, at int) string {
	end := at + 40
	if end > len(b) {
		end = len(b)
	}
	return string(b[at:end])
}

// TestWriteReportCancelled: a dead context yields an error and a partial
// document whose last code fence is still closed (valid Markdown).
func TestWriteReportCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	err := WriteReport(ctx, &buf, fastOptions(), nil)
	if err == nil {
		t.Fatal("WriteReport on a cancelled context succeeded")
	}
	out := buf.String()
	if strings.Count(out, "```")%2 != 0 {
		t.Errorf("partial report leaves an unclosed code fence:\n%s", out)
	}
}

func TestOptionsStepsRunsOverrides(t *testing.T) {
	var o Options
	if got := o.steps(400); got != 400 {
		t.Errorf("zero Steps: steps(400) = %d, want the default", got)
	}
	if got := o.runs(7); got != 7 {
		t.Errorf("zero Runs: runs(7) = %d, want the default", got)
	}
	o = Options{Steps: 25, Runs: 2}
	if got := o.steps(400); got != 25 {
		t.Errorf("steps(400) = %d, want the 25 override", got)
	}
	if got := o.runs(7); got != 2 {
		t.Errorf("runs(7) = %d, want the 2 override", got)
	}
}

func TestUnknownExperimentErrorListsIDs(t *testing.T) {
	err := UnknownExperimentError("fig99")
	if err == nil {
		t.Fatal("nil error for unknown id")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"fig99"`) {
		t.Errorf("error does not name the bad id: %s", msg)
	}
	// Every real id must be offered as a suggestion.
	for _, id := range IDs() {
		if !strings.Contains(msg, id) {
			t.Errorf("error does not list %s: %s", id, msg)
		}
	}
}

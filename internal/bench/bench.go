// Package bench defines and runs the paper's experiments: every table
// and figure of the evaluation (Section VII) has a registered experiment
// that regenerates its rows/series on the simulated platform. The
// seesawctl command exposes them on the command line; bench_test.go
// exposes them as Go benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// Options tune experiment execution.
type Options struct {
	// Steps overrides each run's Verlet step count (0 keeps the
	// experiment's default of 400, the paper's setting). Tests use a
	// smaller value to keep the suite fast.
	Steps int
	// Runs overrides the number of repeated jobs per cell (0 keeps the
	// experiment default: 3 for medians, 7 for Table I).
	Runs int
	// BaseSeed offsets all job seeds, for replicating experiments under
	// different random draws.
	BaseSeed uint64
	// Telemetry, when non-nil, is threaded into every co-simulated job
	// the experiment runs, collecting its metrics and event stream. Nil
	// disables instrumentation at no cost.
	Telemetry *telemetry.Hub
}

func (o Options) steps(def int) int {
	if o.Steps > 0 {
		return o.Steps
	}
	return def
}

func (o Options) runs(def int) int {
	if o.Runs > 0 {
		return o.Runs
	}
	return def
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the artifact identifier: "fig1" ... "fig9b", "table1",
	// "table2".
	ID string
	// Title is the paper artifact's caption summary.
	Title string
	// Run executes the experiment and renders its tables to w.
	Run func(o Options, w io.Writer) error
}

var registry = map[string]Experiment{}
var order []string

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	es := make([]Experiment, 0, len(order))
	for _, id := range order {
		es = append(es, registry[id])
	}
	return es
}

// IDs returns the registered experiment ids in order.
func IDs() []string { return append([]string(nil), order...) }

// sortedIDs returns ids sorted lexicographically (for error messages).
func sortedIDs() []string {
	ids := IDs()
	sort.Strings(ids)
	return ids
}

// UnknownExperimentError formats a helpful error for a bad id.
func UnknownExperimentError(id string) error {
	return fmt.Errorf("bench: unknown experiment %q (have %v)", id, sortedIDs())
}

// Experiment-wide defaults mirroring Section VII's setup.
const (
	defaultSteps   = 400
	defaultCap     = units.Watts(110)
	minCap         = units.Watts(98)
	maxCap         = units.Watts(215)
	defaultRuns    = 3
	table1Runs     = 7
	slackFromStep  = 10 // the paper averages slack "from the 10th step"
	defaultDim     = 16
	defaultBigDim  = 48
	defaultMidDim  = 36
	nodes128Half   = 64  // 128-node jobs: 64 sim + 64 ana
	nodes1024Half  = 512 // 1024-node jobs
	defaultSeedGap = 7919
)

// constraintsFor builds the budget for n total nodes at capPerNode.
func constraintsFor(n int, capPerNode units.Watts) core.Constraints {
	return core.Constraints{Budget: capPerNode * units.Watts(n), MinCap: minCap, MaxCap: maxCap}
}

// NewPolicy constructs a policy by name: "static", "seesaw",
// "power-aware", "time-aware". Window w applies where the paper says it
// does (SeeSAw and the power-aware scheme; the time-aware one ignores
// it).
func NewPolicy(name string, cons core.Constraints, w int) (core.Policy, error) {
	switch name {
	case "static":
		return core.NewStatic(), nil
	case "seesaw":
		return core.NewSeeSAw(core.SeeSAwConfig{Constraints: cons, Window: w})
	case "power-aware":
		cfg := core.DefaultPowerAwareConfig(cons)
		cfg.Window = w
		return core.NewPowerAware(cfg)
	case "time-aware":
		return core.NewTimeAware(core.DefaultTimeAwareConfig(cons))
	default:
		return nil, fmt.Errorf("bench: unknown policy %q", name)
	}
}

// PolicyNames lists the comparable policies in paper order.
func PolicyNames() []string { return []string{"seesaw", "time-aware", "power-aware"} }

// cell describes one co-simulated job cell.
type cell struct {
	spec       workload.Spec
	policy     string
	window     int
	capPerNode units.Watts
	capMode    cosim.CapMode
	simStart   units.Watts
	anaStart   units.Watts
	jobSeed    uint64
	runSeed    uint64
	telemetry  *telemetry.Hub
}

// runCell executes one job.
func runCell(c cell) (*cosim.Result, error) {
	n := c.spec.SimNodes + c.spec.AnaNodes
	capPer := c.capPerNode
	if capPer == 0 {
		capPer = defaultCap
	}
	cons := constraintsFor(n, capPer)
	w := c.window
	if w < 1 {
		w = 1
	}
	pol, err := NewPolicy(c.policy, cons, w)
	if err != nil {
		return nil, err
	}
	mode := c.capMode
	if mode == 0 && c.policy != "none" {
		mode = cosim.CapLong
	}
	return cosim.Run(cosim.Config{
		Spec:          c.spec,
		Policy:        pol,
		Constraints:   cons,
		InitialSimCap: c.simStart,
		InitialAnaCap: c.anaStart,
		CapMode:       mode,
		Seed:          c.jobSeed,
		RunSeed:       c.runSeed,
		Noise:         machine.DefaultNoise(),
		Telemetry:     c.telemetry,
	})
}

// medianImprovement runs `runs` jobs of the policy and the static
// baseline with identical placement per job (the paper's pairing,
// Section VII-A) and returns the median % runtime improvement over the
// static baseline, along with the median policy slack.
func medianImprovement(c cell, runs int, baseSeed uint64) (impPct float64, slack float64, err error) {
	imps := make([]float64, 0, runs)
	slacks := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		seed := baseSeed + uint64(r)*defaultSeedGap
		c.jobSeed = seed
		c.runSeed = seed + 1

		pc := c
		res, err := runCell(pc)
		if err != nil {
			return 0, 0, err
		}
		sc := c
		sc.policy = "static"
		base, err := runCell(sc)
		if err != nil {
			return 0, 0, err
		}
		imps = append(imps, improvementPct(base.TotalTime, res.TotalTime))
		slacks = append(slacks, res.SyncLog.MeanSlackFrom(slackFromStep))
	}
	return median(imps), median(slacks), nil
}

// improvementPct is (base - x)/base in percent: positive = faster than
// the static baseline.
func improvementPct(base, x units.Seconds) float64 {
	if base <= 0 {
		return 0
	}
	return (float64(base) - float64(x)) / float64(base) * 100
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// spec128 builds a 128-node workload.
func spec128(dim, j, steps int, analyses []workload.AnalysisTask) workload.Spec {
	return workload.Spec{
		SimNodes: nodes128Half, AnaNodes: nodes128Half,
		Dim: dim, J: j, Steps: steps, Analyses: analyses,
	}
}

// specAt builds a workload at an arbitrary total node count (split
// evenly, as in all of the paper's results).
func specAt(totalNodes, dim, j, steps int, analyses []workload.AnalysisTask) workload.Spec {
	return workload.Spec{
		SimNodes: totalNodes / 2, AnaNodes: totalNodes - totalNodes/2,
		Dim: dim, J: j, Steps: steps, Analyses: analyses,
	}
}

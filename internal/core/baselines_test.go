package core

import (
	"math"
	"testing"
	"testing/quick"

	"seesaw/internal/units"
)

func newPowerAware(t *testing.T) *PowerAware {
	t.Helper()
	p, err := NewPowerAware(DefaultPowerAwareConfig(testConstraints()))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func newTimeAware(t *testing.T) *TimeAware {
	t.Helper()
	ta, err := NewTimeAware(DefaultTimeAwareConfig(testConstraints()))
	if err != nil {
		t.Fatal(err)
	}
	return ta
}

func TestPowerAwareValidation(t *testing.T) {
	cfg := DefaultPowerAwareConfig(testConstraints())
	cfg.Window = 0
	if _, err := NewPowerAware(cfg); err == nil {
		t.Error("window 0 should be rejected")
	}
	bad := DefaultPowerAwareConfig(Constraints{})
	if _, err := NewPowerAware(bad); err == nil {
		t.Error("empty constraints should be rejected")
	}
}

func TestPowerAwareNoActionWithoutNeedyNodes(t *testing.T) {
	p := newPowerAware(t)
	// Everyone well below the cap: SLURM's scheme "takes action only if
	// nodes are at the power cap".
	if got := p.Allocate(1, measures(4, 4, 100, 100, 110)); got != nil {
		t.Error("no node at cap: expected no action")
	}
}

func TestPowerAwareShiftsToCappedNodes(t *testing.T) {
	p := newPowerAware(t)
	// Analysis at the cap, simulation below: power must flow to the
	// analysis nodes.
	caps := p.Allocate(1, measures(4, 4, 104, 110, 110))
	if caps == nil {
		t.Fatal("expected reallocation")
	}
	if !(caps[4] > 110) {
		t.Errorf("needy node cap %v did not increase", caps[4])
	}
	if !(caps[0] < 110) {
		t.Errorf("donor node cap %v did not decrease", caps[0])
	}
}

func TestPowerAwareConservesBudget(t *testing.T) {
	f := func(rawSimP, rawAnaP float64) bool {
		p := MustNewPowerAware(DefaultPowerAwareConfig(testConstraints()))
		simP := units.Watts(98 + math.Abs(math.Mod(rawSimP, 17)))
		anaP := units.Watts(98 + math.Abs(math.Mod(rawAnaP, 17)))
		caps := p.Allocate(1, measures(4, 4, simP, anaP, 110))
		if caps == nil {
			return true
		}
		var total units.Watts
		for _, c := range caps {
			if c < 98 || c > 215 {
				return false
			}
			total += c
		}
		// The scheme only moves existing budget around.
		return float64(total) <= 8*110+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPowerAwareWindow(t *testing.T) {
	cfg := DefaultPowerAwareConfig(testConstraints())
	cfg.Window = 2
	p := MustNewPowerAware(cfg)
	if got := p.Allocate(1, measures(4, 4, 104, 110, 110)); got != nil {
		t.Error("w=2: no action expected at step 1")
	}
	if got := p.Allocate(2, measures(4, 4, 104, 110, 110)); got == nil {
		t.Error("w=2: action expected at step 2")
	}
}

func TestPowerAwareNeverTrimsBelowMin(t *testing.T) {
	p := newPowerAware(t)
	ms := measures(4, 4, 99, 110, 110)
	// Donors measured at 99 W: trim target clamps at delta_min.
	caps := p.Allocate(1, ms)
	if caps == nil {
		t.Fatal("expected reallocation")
	}
	for _, c := range caps {
		if c < 98 {
			t.Errorf("cap %v below delta_min", c)
		}
	}
}

func TestTimeAwareValidation(t *testing.T) {
	base := DefaultTimeAwareConfig(testConstraints())
	for _, mut := range []func(*TimeAwareConfig){
		func(c *TimeAwareConfig) { c.TargetSlack = 0 },
		func(c *TimeAwareConfig) { c.TargetSlack = 1 },
		func(c *TimeAwareConfig) { c.InitialStep = 0 },
		func(c *TimeAwareConfig) { c.MinStep = 0 },
		func(c *TimeAwareConfig) { c.MinStep = 100 },
		func(c *TimeAwareConfig) { c.StepDecay = 0 },
		func(c *TimeAwareConfig) { c.StepDecay = 1.5 },
	} {
		cfg := base
		mut(&cfg)
		if _, err := NewTimeAware(cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

func TestTimeAwareShiftsFromFastToSlow(t *testing.T) {
	ta := newTimeAware(t)
	// Analysis much faster: it donates, the simulation gains.
	caps := ta.Allocate(1, measures(10, 2, 108, 108, 110))
	if caps == nil {
		t.Fatal("expected reallocation")
	}
	if !(caps[0] > 110) {
		t.Errorf("slow sim cap %v should rise", caps[0])
	}
	if !(caps[4] < 110) {
		t.Errorf("fast ana cap %v should fall", caps[4])
	}
}

func TestTimeAwareFreezesWhenBalanced(t *testing.T) {
	ta := newTimeAware(t)
	// All nodes within the target slack: nobody donates.
	caps := ta.Allocate(1, measures(10, 9.95, 108, 108, 110))
	var moved bool
	for _, c := range caps {
		if c != 110 {
			moved = true
		}
	}
	if moved {
		t.Error("balanced times should leave caps unchanged")
	}
}

func TestTimeAwareStepDecay(t *testing.T) {
	ta := newTimeAware(t)
	first := ta.Step()
	for i := 1; i <= 30; i++ {
		ta.Allocate(i, measures(10, 2, 108, 108, 110))
	}
	if got := ta.Step(); got >= first {
		t.Errorf("step did not decay: %v -> %v", first, got)
	}
	if got := ta.Step(); got < DefaultTimeAwareConfig(testConstraints()).MinStep {
		t.Errorf("step decayed below the configured minimum: %v", got)
	}
}

func TestTimeAwareUsesEpochTime(t *testing.T) {
	ta := newTimeAware(t)
	// Busy times say the analysis is much faster, but epoch times
	// (including the wait) say everyone is equal: the balancer must see
	// the epoch view and do nothing.
	ms := measures(10, 2, 108, 108, 110)
	for i := range ms {
		ms[i].EpochTime = 10
	}
	caps := ta.Allocate(1, ms)
	for _, c := range caps {
		if c != 110 {
			t.Fatal("epoch-equal times should freeze the balancer")
		}
	}
}

func TestTimeAwareRespectsBounds(t *testing.T) {
	f := func(rawT float64) bool {
		ta := MustNewTimeAware(DefaultTimeAwareConfig(testConstraints()))
		anaT := units.Seconds(0.1 + math.Abs(math.Mod(rawT, 20)))
		var caps []units.Watts
		for i := 1; i <= 20; i++ {
			caps = ta.Allocate(i, measures(10, anaT, 108, 108, 110))
		}
		if caps == nil {
			return true
		}
		for _, c := range caps {
			if c < 98 || c > 215 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimeAwareEmptyNodes(t *testing.T) {
	ta := newTimeAware(t)
	if got := ta.Allocate(1, nil); got != nil {
		t.Error("empty node list should return nil")
	}
	if got := ta.Allocate(1, measures(0, 0, 100, 100, 110)); got != nil {
		t.Error("all-zero times should return nil")
	}
}

func TestMustConstructorsPanic(t *testing.T) {
	for i, fn := range []func(){
		func() { MustNewPowerAware(PowerAwareConfig{}) },
		func() { MustNewTimeAware(TimeAwareConfig{}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("must-constructor %d should panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPolicyNamesDistinct(t *testing.T) {
	names := map[string]bool{}
	for _, p := range []Policy{NewStatic(), MustNewSeeSAw(SeeSAwConfig{Constraints: testConstraints(), Window: 1}),
		MustNewPowerAware(DefaultPowerAwareConfig(testConstraints())),
		MustNewTimeAware(DefaultTimeAwareConfig(testConstraints()))} {
		if names[p.Name()] {
			t.Errorf("duplicate policy name %q", p.Name())
		}
		names[p.Name()] = true
	}
}

// Package mpi is an in-process message-passing runtime with virtual
// time, standing in for MPI in the paper's software stack. Ranks are
// goroutines; communicators, sub-communicators (Split), collectives
// (Barrier, Allreduce, Bcast, Gather, Allgather) and tagged point-to-point
// messages are supported.
//
// # Virtual time
//
// Every rank carries a virtual clock. Local work advances only the local
// clock (Elapse). Synchronizing operations merge clocks conservatively:
// a collective completes at max(arrival clocks) + modeled communication
// cost, and all participants leave with that clock; a receive completes
// no earlier than the matching send plus the message's flight time. This
// yields deterministic, platform-independent timings: a "1024-node" job
// is simply 1024 goroutines whose clocks interleave exactly as the
// communication structure dictates.
//
// # SPMD discipline
//
// As with real MPI, all members of a communicator must issue the same
// sequence of collective operations. The runtime checks the operation
// name at each rendezvous and panics loudly on mismatches instead of
// deadlocking silently.
package mpi

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"seesaw/internal/telemetry"
	"seesaw/internal/units"
)

// CostModel parameterizes communication timing.
type CostModel struct {
	// CollectiveLatency is the per-tree-hop latency of collectives.
	CollectiveLatency units.Seconds
	// P2PLatency is the flight latency of a point-to-point message.
	P2PLatency units.Seconds
	// SecondsPerByte converts payload size to transfer time.
	SecondsPerByte float64
}

// DefaultCost returns a cost model loosely calibrated to the Cray Aries
// interconnect of Theta: a few microseconds per hop, ~10 GB/s effective
// per-link bandwidth.
func DefaultCost() CostModel {
	return CostModel{
		CollectiveLatency: 1.5e-6,
		P2PLatency:        2.0e-6,
		SecondsPerByte:    1.0e-10,
	}
}

// CollectiveCost returns the modeled duration of a collective over k
// ranks moving the given payload bytes (log-tree algorithm).
func (c CostModel) CollectiveCost(k, bytes int) units.Seconds {
	if k <= 1 {
		return 0
	}
	hops := math.Ceil(math.Log2(float64(k)))
	per := float64(c.CollectiveLatency) + float64(bytes)*c.SecondsPerByte
	return units.Seconds(hops * per)
}

// P2PCost returns the modeled flight time of a point-to-point message.
func (c CostModel) P2PCost(bytes int) units.Seconds {
	return c.P2PLatency + units.Seconds(float64(bytes)*c.SecondsPerByte)
}

// Runtime hosts one job's ranks and mailboxes.
type Runtime struct {
	size int
	cost CostModel
	tel  *telemetry.Hub

	mail []*mailbox

	// Cancellation state. cancelErr is written once, before cancelled is
	// set; it is read only after observing cancelled, so the atomic store
	// orders the two. groups tracks every communicator group (world plus
	// all Split products) so doCancel can wake their blocked waiters.
	cancelled atomic.Bool
	cancelErr error

	groupsMu sync.Mutex
	groups   []*group
}

// errCanceled is the sentinel panic value that unwinds rank goroutines
// blocked in Recv or a collective when the run's context is cancelled.
// The rank wrapper recognizes it and does not report it as a rank panic.
var errCanceled = errors.New("mpi: run cancelled")

// newGroup creates a communicator group and registers it for
// cancellation wakeups.
func (rt *Runtime) newGroup(members []int) *group {
	g := newGroup(members)
	rt.groupsMu.Lock()
	rt.groups = append(rt.groups, g)
	rt.groupsMu.Unlock()
	return g
}

// isCancelled reports whether the run has been cancelled.
func (rt *Runtime) isCancelled() bool { return rt.cancelled.Load() }

// doCancel marks the runtime cancelled and wakes every goroutine blocked
// on a mailbox or a collective rendezvous. Broadcasting under each
// waiter's own mutex closes the check-then-wait window: a waiter either
// sees the flag before sleeping or is woken after.
func (rt *Runtime) doCancel(err error) {
	if err == nil {
		err = context.Canceled
	}
	rt.groupsMu.Lock()
	already := rt.cancelErr != nil
	if !already {
		rt.cancelErr = err
	}
	rt.groupsMu.Unlock()
	if already {
		return
	}
	rt.cancelled.Store(true)
	for _, mb := range rt.mail {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
	rt.groupsMu.Lock()
	gs := append([]*group(nil), rt.groups...)
	rt.groupsMu.Unlock()
	for _, g := range gs {
		g.mu.Lock()
		g.cond.Broadcast()
		g.mu.Unlock()
	}
}

// message is a point-to-point payload in flight.
type message struct {
	src     int
	tag     int
	payload any
	bytes   int
	arrive  units.Seconds // earliest virtual time the receiver may own it
}

// mailbox is one rank's incoming message store.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	// queued messages in arrival order; matching is by (src, tag).
	msgs []message
}

func newMailbox() *mailbox {
	m := &mailbox{}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Rank is the per-goroutine handle to the runtime: a world rank id, a
// virtual clock and the world communicator.
type Rank struct {
	rt    *Runtime
	id    int
	clock units.Seconds
	world *Comm
}

// Run executes body on n concurrent ranks and blocks until all return.
// A panic on any rank is captured and returned as an error naming the
// rank. All clocks start at zero.
func Run(n int, cost CostModel, body func(r *Rank)) error {
	return RunContext(context.Background(), n, cost, nil, body)
}

// RunWithTelemetry is Run with a telemetry hub attached to the runtime:
// collective rendezvous waits and point-to-point message counts are
// reported to it. A nil hub is equivalent to Run.
func RunWithTelemetry(n int, cost CostModel, tel *telemetry.Hub, body func(r *Rank)) error {
	return RunContext(context.Background(), n, cost, tel, body)
}

// RunContext is RunWithTelemetry under a context: when ctx is cancelled,
// ranks blocked in Recv or a collective unwind promptly (via an internal
// sentinel panic the runtime recognizes), ranks doing local work abort
// at their next communication, and RunContext returns ctx.Err(). A rank
// panic unrelated to cancellation still wins over the context error.
func RunContext(ctx context.Context, n int, cost CostModel, tel *telemetry.Hub, body func(r *Rank)) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if n <= 0 {
		return fmt.Errorf("mpi: rank count must be positive, got %d", n)
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	rt := &Runtime{size: n, cost: cost, tel: tel, mail: make([]*mailbox, n)}
	for i := range rt.mail {
		rt.mail[i] = newMailbox()
	}
	worldGroup := rt.newGroup(identity(n))

	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					if err, ok := r.(error); ok && errors.Is(err, errCanceled) {
						return // orderly unwind, not a rank failure
					}
					errs[id] = fmt.Errorf("mpi: rank %d panicked: %v", id, r)
				}
			}()
			rank := &Rank{rt: rt, id: id}
			rank.world = &Comm{rank: rank, group: worldGroup, myRank: id}
			body(rank)
		}(i)
	}

	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	watcher := make(chan struct{})
	go func() {
		defer close(watcher)
		select {
		case <-ctx.Done():
			rt.doCancel(ctx.Err())
		case <-done:
		}
	}()
	<-done
	<-watcher

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if rt.isCancelled() {
		return rt.cancelErr
	}
	return nil
}

func identity(n int) []int {
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// WorldRank returns the rank's id in the world communicator.
func (r *Rank) WorldRank() int { return r.id }

// Cost returns the runtime's communication cost model, so higher layers
// can account modeled communication costs explicitly.
func (r *Rank) Cost() CostModel { return r.rt.cost }

// WorldSize returns the job's total rank count.
func (r *Rank) WorldSize() int { return r.rt.size }

// World returns the world communicator.
func (r *Rank) World() *Comm { return r.world }

// Clock returns the rank's current virtual time.
func (r *Rank) Clock() units.Seconds { return r.clock }

// Elapse advances the local clock by d (local computation).
func (r *Rank) Elapse(d units.Seconds) {
	if d < 0 {
		panic("mpi: negative elapse")
	}
	r.clock += d
}

// AdvanceTo moves the local clock forward to t if t is later.
func (r *Rank) AdvanceTo(t units.Seconds) {
	if t > r.clock {
		r.clock = t
	}
}

// Fail aborts the whole job with err, modelling a fatal node failure:
// in MPI a dead rank takes the job down, since every collective it
// belongs to can no longer complete. All other ranks — including ones
// blocked in Recv or mid-collective — unwind promptly through the
// cancellation machinery, and RunContext returns err. Fail does not
// return.
func (r *Rank) Fail(err error) {
	if err == nil {
		err = fmt.Errorf("mpi: rank %d failed", r.id)
	}
	r.rt.doCancel(err)
	panic(errCanceled)
}

// Send delivers a payload of the given modeled size to dst (world rank)
// with a tag. The send is buffered: the sender continues immediately,
// paying only the injection latency locally.
func (r *Rank) Send(dst, tag int, payload any, bytes int) {
	if dst < 0 || dst >= r.rt.size {
		panic(fmt.Sprintf("mpi: send to invalid rank %d", dst))
	}
	flight := r.rt.cost.P2PCost(bytes)
	msg := message{src: r.id, tag: tag, payload: payload, bytes: bytes, arrive: r.clock + flight}
	mb := r.rt.mail[dst]
	mb.mu.Lock()
	mb.msgs = append(mb.msgs, msg)
	mb.mu.Unlock()
	mb.cond.Broadcast()
	// Injection overhead on the sender side.
	r.clock += r.rt.cost.P2PLatency
	r.rt.tel.MessageSent(bytes)
}

// Recv blocks until a message from src with the given tag is available,
// advances the clock to the message's arrival time, and returns the
// payload.
func (r *Rank) Recv(src, tag int) any {
	mb := r.rt.mail[r.id]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.msgs {
			if m.src == src && m.tag == tag {
				mb.msgs = append(mb.msgs[:i], mb.msgs[i+1:]...)
				r.AdvanceTo(m.arrive)
				return m.payload
			}
		}
		if r.rt.isCancelled() {
			panic(errCanceled)
		}
		mb.cond.Wait()
	}
}

// group is the shared state of a communicator: its members and the
// rendezvous slot used by collectives.
type group struct {
	members []int // world ids, ordered by rank-in-group

	mu   sync.Mutex
	cond *sync.Cond

	gen      int
	opName   string
	count    int
	inputs   []any
	clocks   []units.Seconds
	bytes    int
	reduce   func(inputs []any) any
	result   any
	resClock units.Seconds
	// poisoned is set when a member detected a collective mismatch;
	// all waiters abort instead of hanging.
	poisoned string
}

func newGroup(members []int) *group {
	g := &group{
		members: members,
		inputs:  make([]any, len(members)),
		clocks:  make([]units.Seconds, len(members)),
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Comm is a per-rank handle to a communicator.
type Comm struct {
	rank   *Rank
	group  *group
	myRank int
}

// Rank returns the caller's rank within this communicator.
func (c *Comm) Rank() int { return c.myRank }

// Size returns the communicator's member count.
func (c *Comm) Size() int { return len(c.group.members) }

// WorldRankOf translates a rank in this communicator to a world rank.
func (c *Comm) WorldRankOf(rank int) int { return c.group.members[rank] }

// rendezvous runs one lockstep collective: every member contributes
// (opName, input, payload bytes); the last arriver reduces and publishes;
// all leave with the merged clock. The cost model charges a log-tree
// traversal over the max payload size.
func (c *Comm) rendezvous(opName string, input any, bytes int, reduce func(inputs []any) any) any {
	g := c.group
	k := len(g.members)
	if c.rank.rt.isCancelled() {
		panic(errCanceled)
	}
	if k == 1 {
		// Single-member communicator: the operation is local.
		out := reduce([]any{input})
		return out
	}
	g.mu.Lock()
	myGen := g.gen
	if g.poisoned != "" {
		msg := g.poisoned
		g.mu.Unlock()
		panic(msg)
	}
	if g.count == 0 {
		g.opName = opName
		g.bytes = bytes
		g.reduce = reduce
	} else if g.opName != opName {
		g.poisoned = fmt.Sprintf("mpi: collective mismatch on communicator: %q vs %q", g.opName, opName)
		g.cond.Broadcast()
		msg := g.poisoned
		g.mu.Unlock()
		panic(msg)
	}
	if bytes > g.bytes {
		g.bytes = bytes
	}
	g.inputs[c.myRank] = input
	g.clocks[c.myRank] = c.rank.clock
	g.count++
	if g.count == k {
		// Last arriver: merge clocks, charge cost, reduce. A panicking
		// reduce (malformed collective arguments) must poison the group
		// so waiters abort instead of hanging.
		var maxClock units.Seconds
		for _, cl := range g.clocks {
			if cl > maxClock {
				maxClock = cl
			}
		}
		cost := c.rank.rt.cost.CollectiveCost(k, g.bytes)
		g.resClock = maxClock + cost
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					g.poisoned = fmt.Sprint(rec)
					g.cond.Broadcast()
					g.mu.Unlock()
					panic(rec)
				}
			}()
			g.result = g.reduce(g.inputs)
		}()
		g.count = 0
		g.gen++
		g.cond.Broadcast()
	} else {
		for g.gen == myGen && g.poisoned == "" && !c.rank.rt.isCancelled() {
			g.cond.Wait()
		}
		if g.poisoned != "" {
			msg := g.poisoned
			g.mu.Unlock()
			panic(msg)
		}
		if g.gen == myGen {
			// Woken by cancellation with the collective still incomplete:
			// withdraw the contribution so the group state stays coherent
			// for any diagnostic inspection, then unwind.
			g.inputs[c.myRank] = nil
			g.count--
			g.mu.Unlock()
			panic(errCanceled)
		}
	}
	res := g.result
	arrival := c.rank.clock
	c.rank.AdvanceTo(g.resClock)
	g.mu.Unlock()
	if wait := c.rank.clock - arrival; wait > 0 {
		c.rank.rt.tel.RendezvousWait(opName, float64(wait))
	}
	return res
}

// Barrier blocks until all members arrive; all leave at the merged
// clock plus the collective cost.
func (c *Comm) Barrier() {
	c.rendezvous("barrier", nil, 8, func([]any) any { return nil })
}

// AllreduceSum element-wise sums float64 slices across members. All
// slices must have equal length.
func (c *Comm) AllreduceSum(vals []float64) []float64 {
	res := c.rendezvous("allreduce-sum", append([]float64(nil), vals...), 8*len(vals), func(inputs []any) any {
		out := make([]float64, len(inputs[0].([]float64)))
		for _, in := range inputs {
			xs := in.([]float64)
			if len(xs) != len(out) {
				panic("mpi: allreduce length mismatch")
			}
			for i, x := range xs {
				out[i] += x
			}
		}
		return out
	})
	return append([]float64(nil), res.([]float64)...)
}

// AllreduceMax element-wise maxes float64 slices across members.
func (c *Comm) AllreduceMax(vals []float64) []float64 {
	res := c.rendezvous("allreduce-max", append([]float64(nil), vals...), 8*len(vals), func(inputs []any) any {
		out := append([]float64(nil), inputs[0].([]float64)...)
		for _, in := range inputs[1:] {
			xs := in.([]float64)
			if len(xs) != len(out) {
				panic("mpi: allreduce length mismatch")
			}
			for i, x := range xs {
				if x > out[i] {
					out[i] = x
				}
			}
		}
		return out
	})
	return append([]float64(nil), res.([]float64)...)
}

// AllreduceMin element-wise mins float64 slices across members.
func (c *Comm) AllreduceMin(vals []float64) []float64 {
	res := c.rendezvous("allreduce-min", append([]float64(nil), vals...), 8*len(vals), func(inputs []any) any {
		out := append([]float64(nil), inputs[0].([]float64)...)
		for _, in := range inputs[1:] {
			xs := in.([]float64)
			if len(xs) != len(out) {
				panic("mpi: allreduce length mismatch")
			}
			for i, x := range xs {
				if x < out[i] {
					out[i] = x
				}
			}
		}
		return out
	})
	return append([]float64(nil), res.([]float64)...)
}

// Bcast distributes root's payload (of modeled size bytes) to all
// members; every caller returns the root's payload.
func (c *Comm) Bcast(root int, payload any, bytes int) any {
	if root < 0 || root >= c.Size() {
		panic(fmt.Sprintf("mpi: bcast root %d out of range", root))
	}
	return c.rendezvous("bcast", payload, bytes, func(inputs []any) any {
		return inputs[root]
	})
}

// Allgather collects every member's payload; index i of the result is
// rank i's contribution.
func (c *Comm) Allgather(payload any, bytes int) []any {
	res := c.rendezvous("allgather", payload, bytes*c.Size(), func(inputs []any) any {
		return append([]any(nil), inputs...)
	})
	return res.([]any)
}

// Gather collects payloads at root; root receives the full slice, other
// ranks receive nil. (All ranks still synchronize, matching MPI_Gather's
// completion semantics under the conservative clock model.)
func (c *Comm) Gather(root int, payload any, bytes int) []any {
	res := c.rendezvous("gather", payload, bytes, func(inputs []any) any {
		return append([]any(nil), inputs...)
	})
	if c.myRank != root {
		return nil
	}
	return res.([]any)
}

// splitKey carries one rank's Split contribution.
type splitKey struct {
	color, key, world, rank int
}

// Split partitions the communicator by color, ordering ranks within each
// new communicator by (key, old rank), mirroring MPI_Comm_split. Ranks
// passing a negative color receive nil (MPI_UNDEFINED).
func (c *Comm) Split(color, key int) *Comm {
	res := c.rendezvous("split", splitKey{color: color, key: key, world: c.rank.id, rank: c.myRank}, 16,
		func(inputs []any) any {
			byColor := make(map[int][]splitKey)
			for _, in := range inputs {
				sk := in.(splitKey)
				if sk.color < 0 {
					continue
				}
				byColor[sk.color] = append(byColor[sk.color], sk)
			}
			groups := make(map[int]*group)
			for color, sks := range byColor {
				sort.Slice(sks, func(i, j int) bool {
					if sks[i].key != sks[j].key {
						return sks[i].key < sks[j].key
					}
					return sks[i].rank < sks[j].rank
				})
				members := make([]int, len(sks))
				for i, sk := range sks {
					members[i] = sk.world
				}
				// Register through the runtime so cancellation can wake
				// waiters blocked on this sub-communicator too.
				groups[color] = c.rank.rt.newGroup(members)
			}
			return groups
		})
	if color < 0 {
		return nil
	}
	groups := res.(map[int]*group)
	g := groups[color]
	myRank := -1
	for i, w := range g.members {
		if w == c.rank.id {
			myRank = i
			break
		}
	}
	if myRank < 0 {
		panic("mpi: split bookkeeping error")
	}
	return &Comm{rank: c.rank, group: g, myRank: myRank}
}

package fault

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []string{
		"kill:5@20",
		"slow:3@10x2+15",
		"kill:5@20,slow:3@10x2.5+15",
		"kill:0@1,kill:7@3,slow:2@4x1.5+1",
	}
	for _, in := range cases {
		p, err := Parse(in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", in, err)
		}
		if got := p.String(); got != in {
			t.Errorf("Parse(%q).String() = %q", in, got)
		}
		again, err := Parse(p.String())
		if err != nil || again.String() != p.String() {
			t.Errorf("round-trip of %q unstable: %q, %v", in, again.String(), err)
		}
	}
}

func TestParseDefaults(t *testing.T) {
	p, err := Parse("slow:3@10")
	if err != nil {
		t.Fatal(err)
	}
	e := p.Events[0]
	if e.Factor != DefaultSlowFactor || e.Window != DefaultSlowWindow {
		t.Errorf("slow defaults: factor %g window %d, want %g/%d", e.Factor, e.Window, DefaultSlowFactor, DefaultSlowWindow)
	}
	if p, err := Parse("slow:3@10x3.5"); err != nil || p.Events[0].Factor != 3.5 || p.Events[0].Window != DefaultSlowWindow {
		t.Errorf("factor-only slow: %+v, %v", p.Events[0], err)
	}
}

func TestParseEmptyAndErrors(t *testing.T) {
	if p, err := Parse("  "); p != nil || err != nil {
		t.Errorf("blank spec: %v, %v", p, err)
	}
	for _, bad := range []string{"kill:5", "boom:1@2", "kill:x@2", "kill:1@y", "slow:1@2xq", "slow:1@2x2+z", "5@20"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestValidate(t *testing.T) {
	ok, err := Parse("kill:5@20,slow:3@10x2+15")
	if err != nil {
		t.Fatal(err)
	}
	if err := ok.Validate(8); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := []struct {
		plan *Plan
		want string
	}{
		{&Plan{Events: []Event{{Kind: Kill, Node: 8, Sync: 1}}}, "outside"},
		{&Plan{Events: []Event{{Kind: Kill, Node: -1, Sync: 1}}}, "outside"},
		{&Plan{Events: []Event{{Kind: Kill, Node: 0, Sync: 0}}}, "1-based"},
		{&Plan{Events: []Event{{Kind: Kill, Node: 0, Sync: 1}, {Kind: Kill, Node: 0, Sync: 2}}}, "twice"},
		{&Plan{Events: []Event{{Kind: Slow, Node: 0, Sync: 1, Factor: 0, Window: 1}}}, "factor"},
		{&Plan{Events: []Event{{Kind: Slow, Node: 0, Sync: 1, Factor: 2, Window: 0}}}, "window"},
		{&Plan{Events: []Event{{Kind: Kind(9), Node: 0, Sync: 1}}}, "invalid kind"},
	}
	for _, c := range bad {
		err := c.plan.Validate(8)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Validate(%v) = %v, want error containing %q", c.plan, err, c.want)
		}
	}
	var nilPlan *Plan
	if err := nilPlan.Validate(0); err != nil {
		t.Errorf("nil plan: %v", err)
	}
}

func TestQueriesNilSafe(t *testing.T) {
	var p *Plan
	if !p.Empty() || p.KilledBy(0, 100) || p.SlowFactor(0, 1) != 1 || p.KillSync(3) != 0 {
		t.Error("nil plan queries not inert")
	}
	if p.String() != "" || p.Kills() != nil || p.Rebase(5) != nil {
		t.Error("nil plan derivations not empty")
	}
}

func TestKillQueries(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: Kill, Node: 4, Sync: 10},
		{Kind: Kill, Node: 2, Sync: 3},
	}}
	if p.KilledBy(4, 9) {
		t.Error("node 4 dead before its kill sync")
	}
	if !p.KilledBy(4, 10) || !p.KilledBy(4, 99) {
		t.Error("node 4 not dead at/after its kill sync")
	}
	if p.KilledBy(1, 99) {
		t.Error("unplanned node reported dead")
	}
	if got := p.Kills(); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("Kills() = %v, want [2 4]", got)
	}
}

func TestSlowFactorWindows(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: Slow, Node: 1, Sync: 5, Factor: 2, Window: 3},   // syncs 5,6,7
		{Kind: Slow, Node: 1, Sync: 7, Factor: 1.5, Window: 2}, // syncs 7,8
	}}
	want := map[int]float64{4: 1, 5: 2, 6: 2, 7: 3, 8: 1.5, 9: 1}
	for sync, f := range want {
		if got := p.SlowFactor(1, sync); got != f {
			t.Errorf("SlowFactor(1, %d) = %g, want %g", sync, got, f)
		}
	}
	if p.SlowFactor(2, 6) != 1 {
		t.Error("untargeted node slowed")
	}
}

func TestRebase(t *testing.T) {
	p := &Plan{Events: []Event{
		{Kind: Kill, Node: 0, Sync: 3},
		{Kind: Kill, Node: 1, Sync: 12},
		{Kind: Slow, Node: 2, Sync: 8, Factor: 2, Window: 6}, // syncs 8..13
		{Kind: Slow, Node: 3, Sync: 2, Factor: 2, Window: 4}, // syncs 2..5, expired
	}}
	// An epoch boundary after 10 syncs: rebase by 10.
	r := p.Rebase(10)
	if r.KillSync(0) != 1 {
		t.Errorf("past kill not clamped to sync 1: %d", r.KillSync(0))
	}
	if r.KillSync(1) != 2 {
		t.Errorf("future kill mis-shifted: %d", r.KillSync(1))
	}
	// The slow on node 2 has 3 syncs left (11,12,13 -> 1,2,3).
	for sync, want := range map[int]float64{1: 2, 3: 2, 4: 1} {
		if got := r.SlowFactor(2, sync); got != want {
			t.Errorf("rebased SlowFactor(2, %d) = %g, want %g", sync, got, want)
		}
	}
	if r.SlowFactor(3, 1) != 1 {
		t.Error("expired slow survived rebase")
	}
	// Rebasing a plan that only held expired slows yields nil.
	exp := &Plan{Events: []Event{{Kind: Slow, Node: 0, Sync: 1, Factor: 2, Window: 2}}}
	if exp.Rebase(10) != nil {
		t.Error("fully expired plan did not rebase to nil")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(42, 16, 100, 2, 3)
	b := Random(42, 16, 100, 2, 3)
	if a.String() != b.String() {
		t.Errorf("Random not deterministic:\n%s\n%s", a, b)
	}
	if c := Random(43, 16, 100, 2, 3); c.String() == a.String() {
		t.Error("different seeds yield identical plans")
	}
	if err := a.Validate(16); err != nil {
		t.Errorf("random plan invalid: %v", err)
	}
	if len(a.Kills()) != 2 {
		t.Errorf("want 2 distinct kills, got %v", a.Kills())
	}
	if Random(0, 0, 10, 1, 1) != nil || Random(0, 4, 10, 0, 0) != nil {
		t.Error("degenerate Random not nil")
	}
}

func TestKilledError(t *testing.T) {
	e := &KilledError{Node: 3, Sync: 7}
	if !strings.Contains(e.Error(), "node 3") || !strings.Contains(e.Error(), "sync 7") {
		t.Errorf("unhelpful error: %s", e.Error())
	}
}

package core

import (
	"testing"

	"seesaw/internal/units"
)

// linearProfile builds a profile where time falls linearly with power.
func linearProfile(t98, t215 units.Seconds) Profile {
	return Profile{
		{PerNode: 98, Time: t98},
		{PerNode: 150, Time: (t98 + t215) / 2 * 1.0},
		{PerNode: 215, Time: t215},
	}
}

func TestProfileValidate(t *testing.T) {
	if err := (Profile{{PerNode: 100, Time: 1}}).Validate(); err == nil {
		t.Error("single-point profile should fail")
	}
	unsorted := Profile{{PerNode: 150, Time: 1}, {PerNode: 100, Time: 2}}
	if err := unsorted.Validate(); err == nil {
		t.Error("unsorted profile should fail")
	}
	bad := Profile{{PerNode: 100, Time: 0}, {PerNode: 150, Time: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("zero time should fail")
	}
	if err := linearProfile(10, 5).Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestProfileTimeAt(t *testing.T) {
	p := Profile{{PerNode: 100, Time: 10}, {PerNode: 200, Time: 5}}
	if got := p.TimeAt(90); got != 10 {
		t.Errorf("below range = %v, want clamp to 10", got)
	}
	if got := p.TimeAt(250); got != 5 {
		t.Errorf("above range = %v, want clamp to 5", got)
	}
	if got := p.TimeAt(150); got != 7.5 {
		t.Errorf("midpoint = %v, want 7.5", got)
	}
}

func TestPowerShiftValidation(t *testing.T) {
	good := PowerShiftConfig{
		Constraints: testConstraints(),
		SimProfile:  linearProfile(10, 5),
		AnaProfile:  linearProfile(8, 4),
	}
	if _, err := NewPowerShift(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.SimProfile = nil
	if _, err := NewPowerShift(bad); err == nil {
		t.Error("missing profile should fail")
	}
	bad = good
	bad.Constraints = Constraints{}
	if _, err := NewPowerShift(bad); err == nil {
		t.Error("bad constraints should fail")
	}
}

func TestPowerShiftChoosesProfileOptimum(t *testing.T) {
	// Simulation profits from power, analysis is flat: the profile
	// optimum gives the simulation everything it can take.
	ps := MustNewPowerShift(PowerShiftConfig{
		Constraints: testConstraints(),
		SimProfile:  Profile{{PerNode: 98, Time: 20}, {PerNode: 215, Time: 5}},
		AnaProfile:  Profile{{PerNode: 98, Time: 6}, {PerNode: 215, Time: 6}},
		GridStep:    1,
	})
	caps := ps.Allocate(1, measures(10, 6, 108, 104, 110))
	if caps == nil {
		t.Fatal("expected an allocation")
	}
	sim, ana := ps.ChosenSplit()
	if sim <= ana {
		t.Errorf("profiles favor the simulation, got %v/%v", sim, ana)
	}
	// Subsequent calls never adapt.
	if got := ps.Allocate(2, measures(100, 1, 108, 104, 110)); got != nil {
		t.Error("powershift must not adapt after the offline choice")
	}
}

func TestPowerShiftRespectsBudget(t *testing.T) {
	ps := MustNewPowerShift(PowerShiftConfig{
		Constraints: testConstraints(),
		SimProfile:  linearProfile(12, 6),
		AnaProfile:  linearProfile(9, 5),
		GridStep:    1,
	})
	caps := ps.Allocate(1, measures(10, 6, 108, 104, 110))
	var total units.Watts
	for _, c := range caps {
		if c < 98 || c > 215 {
			t.Errorf("cap %v out of range", c)
		}
		total += c
	}
	if float64(total) > float64(testConstraints().Budget)+1e-6 {
		t.Errorf("total %v exceeds budget", total)
	}
}

func TestProfilePartition(t *testing.T) {
	prof := ProfilePartition([]units.Watts{120, 98, 150}, func(w units.Watts) units.Seconds {
		return units.Seconds(1000 / float64(w))
	})
	if err := prof.Validate(); err != nil {
		t.Fatalf("generated profile invalid: %v", err)
	}
	if prof[0].PerNode != 98 || prof[2].PerNode != 150 {
		t.Error("profile not sorted by power")
	}
	if prof[0].Time <= prof[2].Time {
		t.Error("lower power should profile slower")
	}
}

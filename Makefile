# Tier-1 gate: everything `make check` runs must stay green.
GO ?= go

.PHONY: all build check fmt vet staticcheck test race bench bench-scale bench-scale-smoke clean

all: build

build:
	$(GO) build ./...

# check is the tier-1 gate: formatting, vet, staticcheck (when
# installed), the full suite under the race detector (the telemetry
# hub and the insitu driver are concurrent by design), and a single-
# iteration pass over the scale benchmarks so they cannot rot.
check: fmt vet staticcheck race bench-scale-smoke

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH and is skipped (with a
# note) otherwise, so `make check` works in offline environments; CI
# installs it and gets the full gate.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# bench-scale measures the substrate at 256/1024/4096 ranks: the mpi
# collective/mailbox microbenchmarks and the whole-job insitu macro
# benchmark. Results feed BENCH_scale.json (see EXPERIMENTS.md).
bench-scale:
	$(GO) test -run xxx -bench . -benchtime 2s ./internal/mpi/
	$(GO) test -run xxx -bench BenchmarkInsituScale -benchtime 1x -count 3 ./internal/insitu/

# bench-scale-smoke runs every scale benchmark for one iteration — a
# correctness gate (part of `make check`), not a measurement.
bench-scale-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./internal/mpi/
	$(GO) test -run xxx -bench 'BenchmarkInsituScale/nodes=256' -benchtime 1x ./internal/insitu/

clean:
	$(GO) clean ./...

package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEnergy(t *testing.T) {
	cases := []struct {
		p    Watts
		d    Seconds
		want Joules
	}{
		{100, 10, 1000},
		{0, 10, 0},
		{110, 0, 0},
		{215, 1, 215},
	}
	for _, c := range cases {
		if got := Energy(c.p, c.d); got != c.want {
			t.Errorf("Energy(%v, %v) = %v, want %v", c.p, c.d, got, c.want)
		}
	}
}

func TestAvgPower(t *testing.T) {
	if got := AvgPower(1000, 10); got != 100 {
		t.Errorf("AvgPower(1000, 10) = %v, want 100", got)
	}
	if got := AvgPower(1000, 0); got != 0 {
		t.Errorf("AvgPower with zero duration = %v, want 0", got)
	}
	if got := AvgPower(1000, -5); got != 0 {
		t.Errorf("AvgPower with negative duration = %v, want 0", got)
	}
}

func TestEnergyAvgPowerRoundTrip(t *testing.T) {
	f := func(p, d float64) bool {
		pw := Watts(math.Abs(math.Mod(p, 1000)))
		du := Seconds(math.Abs(math.Mod(d, 1000)) + 0.001)
		back := AvgPower(Energy(pw, du), du)
		return NearlyEqual(float64(back), float64(pw), 1e-9*math.Max(1, float64(pw)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampWatts(t *testing.T) {
	cases := []struct {
		w, lo, hi, want Watts
	}{
		{50, 98, 215, 98},
		{300, 98, 215, 215},
		{110, 98, 215, 110},
		{98, 98, 215, 98},
		{215, 98, 215, 215},
	}
	for _, c := range cases {
		if got := ClampWatts(c.w, c.lo, c.hi); got != c.want {
			t.Errorf("ClampWatts(%v, %v, %v) = %v, want %v", c.w, c.lo, c.hi, got, c.want)
		}
	}
}

func TestClampWattsProperty(t *testing.T) {
	f := func(w float64) bool {
		got := ClampWatts(Watts(w), 98, 215)
		return got >= 98 && got <= 215
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsFinite(t *testing.T) {
	if !IsFinite(1.5) {
		t.Error("IsFinite(1.5) = false")
	}
	if IsFinite(math.NaN()) {
		t.Error("IsFinite(NaN) = true")
	}
	if IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) {
		t.Error("IsFinite(Inf) = true")
	}
}

func TestStrings(t *testing.T) {
	if s := Watts(110).String(); s != "110.0 W" {
		t.Errorf("Watts.String() = %q", s)
	}
	if s := Joules(12.34).String(); s != "12.3 J" {
		t.Errorf("Joules.String() = %q", s)
	}
	if s := Seconds(4).String(); s != "4.000 s" {
		t.Errorf("Seconds.String() = %q", s)
	}
}

func TestNearlyEqual(t *testing.T) {
	if !NearlyEqual(1.0, 1.0+1e-12, 1e-9) {
		t.Error("NearlyEqual false for near values")
	}
	if NearlyEqual(1.0, 1.1, 1e-3) {
		t.Error("NearlyEqual true for distant values")
	}
}

package insitu

import (
	"context"
	"errors"
	"testing"
	"time"

	"seesaw/internal/core"
)

// TestRunCancelledMidFlight: cancelling while rank goroutines are deep
// in the step loop must unwind all of them — including ranks blocked at
// collectives or in frame receives — and surface ctx.Err(). Run with
// -race this also proves the unwind leaves no rank goroutine behind
// touching shared result state.
func TestRunCancelledMidFlight(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		// A long job: thousands of syncs, so cancellation lands mid-run.
		_, err := Run(ctx, tinyConfig(core.NewStatic(), []string{"msd", "rdf"}, 50000))
		errc <- err
	}()
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return after cancel: rank goroutines leaked")
	}
}

// TestRunPreCancelled: an already-cancelled context never starts ranks.
func TestRunPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, tinyConfig(core.NewStatic(), []string{"msd"}, 10)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// Package policy is the process-wide allocator registry: the single
// place that maps policy names to constructors. The four hand-written
// core allocators (static, seesaw, power-aware, time-aware) and the
// search-derived bandit self-register at init; out-of-tree allocators
// plug in the same way:
//
//	func init() {
//		policy.Register("mine", "one-line description",
//			func(cons core.Constraints, w int) (core.Policy, error) {
//				return newMine(cons, w), nil
//			})
//	}
//
// Every layer that resolves a policy name — the experiment harness
// (internal/bench), job files (internal/jobfile), the machine scheduler
// (internal/sched) and the command-line tools — goes through New, so
// "valid policy" has exactly one definition and error messages can never
// drift from the registry. The reallocation window w is validated here,
// once: every factory receives w >= 1, including policies that ignore it
// (time-aware, static), so `-w 0` fails identically for all of them
// instead of being silently accepted by the window-less ones.
package policy

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"seesaw/internal/core"
)

// Factory constructs one policy instance from the shared knobs every
// caller has: the job's constraints (budget and cap range) and the
// reallocation window w. New guarantees w >= 1 before any factory runs.
type Factory func(cons core.Constraints, w int) (core.Policy, error)

// Info describes one registered policy for listings
// (seesawctl policies).
type Info struct {
	// Name is the registry key ("seesaw", "bandit", ...).
	Name string
	// Description is a one-line summary of the allocation strategy.
	Description string
}

// entry is one registration, with the Register call site kept so a
// duplicate registration can name both offenders.
type entry struct {
	info    Info
	factory Factory
	site    string
}

var (
	mu       sync.RWMutex
	registry = map[string]entry{}
)

// callerSite formats the caller's file:line for registration tracking.
func callerSite(skip int) string {
	_, file, line, ok := runtime.Caller(skip + 1)
	if !ok {
		return "unknown"
	}
	return fmt.Sprintf("%s:%d", file, line)
}

// Register adds a policy constructor under name. It is intended to be
// called from init functions; registering a name twice panics with both
// registrations' call sites, since a silent overwrite would let two
// packages fight over a name without anyone noticing.
func Register(name, description string, f Factory) {
	if name == "" {
		panic("policy: Register with empty name at " + callerSite(1))
	}
	if f == nil {
		panic(fmt.Sprintf("policy: Register(%q) with nil factory at %s", name, callerSite(1)))
	}
	site := callerSite(1)
	mu.Lock()
	defer mu.Unlock()
	if prev, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q (first at %s, again at %s)",
			name, prev.site, site))
	}
	registry[name] = entry{
		info:    Info{Name: name, Description: description},
		factory: f,
		site:    site,
	}
}

// UnknownPolicyError reports a name the registry does not know, carrying
// the valid names so callers can render a helpful message (and tests can
// pin that every layer's message comes from the registry).
type UnknownPolicyError struct {
	// Name is the unknown policy name.
	Name string
	// Valid lists the registered names, sorted.
	Valid []string
}

// Error implements error.
func (e *UnknownPolicyError) Error() string {
	return fmt.Sprintf("policy: unknown policy %q (valid: %s)", e.Name, strings.Join(e.Valid, ", "))
}

// New constructs the named policy. The window w is validated here, once
// for every policy: w <= 0 is an error with the offending value, even
// for policies that ignore the window, so a typoed `-w 0` cannot be
// silently accepted. An unregistered name returns *UnknownPolicyError.
func New(name string, cons core.Constraints, w int) (core.Policy, error) {
	mu.RLock()
	e, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, &UnknownPolicyError{Name: name, Valid: Names()}
	}
	if w <= 0 {
		return nil, fmt.Errorf("policy: window must be >= 1, got %d", w)
	}
	return e.factory(cons, w)
}

// Lookup resolves the named policy's factory once, for callers that
// construct many instances of one policy (the batched rollout layer):
// the registry lock and name resolution are paid at lookup, not per
// construction. The returned factory applies the same w >= 1 validation
// New does. An unregistered name returns *UnknownPolicyError.
func Lookup(name string) (Factory, error) {
	mu.RLock()
	e, ok := registry[name]
	mu.RUnlock()
	if !ok {
		return nil, &UnknownPolicyError{Name: name, Valid: Names()}
	}
	return func(cons core.Constraints, w int) (core.Policy, error) {
		if w <= 0 {
			return nil, fmt.Errorf("policy: window must be >= 1, got %d", w)
		}
		return e.factory(cons, w)
	}, nil
}

// Valid reports whether name is registered.
func Valid(name string) bool {
	mu.RLock()
	defer mu.RUnlock()
	_, ok := registry[name]
	return ok
}

// Names returns the registered policy names, sorted, so every error
// message and listing renders the same stable list.
func Names() []string {
	mu.RLock()
	defer mu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Infos returns the registered policies with their one-line
// descriptions, sorted by name (the seesawctl policies listing).
func Infos() []Info {
	mu.RLock()
	defer mu.RUnlock()
	infos := make([]Info, 0, len(registry))
	for _, e := range registry {
		infos = append(infos, e.info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Compared lists the hand-written policies the paper's experiments
// compare against the static baseline, in paper order. This is the one
// place that order is written down; the experiment harness reads it from
// here.
func Compared() []string { return []string{"seesaw", "time-aware", "power-aware"} }

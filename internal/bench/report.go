package bench

import (
	"context"
	"fmt"
	"io"
)

// WriteReport runs every experiment in paper order and writes a Markdown
// document with one fenced section per artifact to w. progress, when
// non-nil, is called with each experiment id as its section completes.
//
// The document depends only on the options' seeds and sizes, never on
// Jobs or scheduling: two reports produced with different concurrency
// are byte-identical. On error — including cancellation — the current
// section's fence is closed first, so a partial report is still valid
// Markdown.
func WriteReport(ctx context.Context, w io.Writer, o Options, progress func(id string)) error {
	if _, err := fmt.Fprintf(w, "# SeeSAw experiment report\n\nOptions: steps=%d runs=%d seed=%d (0 = experiment defaults)\n",
		o.Steps, o.Runs, o.BaseSeed); err != nil {
		return err
	}
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "\n## %s\n\n%s\n\n```\n", e.ID, e.Title); err != nil {
			return err
		}
		runErr := e.Run(ctx, o, w)
		if _, err := fmt.Fprintln(w, "```"); err != nil {
			return err
		}
		if runErr != nil {
			return fmt.Errorf("%s: %w", e.ID, runErr)
		}
		if progress != nil {
			progress(e.ID)
		}
	}
	return nil
}

# Tier-1 gate: everything `make check` runs must stay green.
GO ?= go

.PHONY: all build check fmt vet staticcheck test race bench clean

all: build

build:
	$(GO) build ./...

# check is the tier-1 gate: formatting, vet, staticcheck (when
# installed), and the full suite under the race detector (the telemetry
# hub and the insitu driver are concurrent by design).
check: fmt vet staticcheck race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is on PATH and is skipped (with a
# note) otherwise, so `make check` works in offline environments; CI
# installs it and gets the full gate.
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

clean:
	$(GO) clean ./...

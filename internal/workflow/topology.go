// Built-in workflow topologies: the named graphs the CLI and the bench
// campaigns compare. Each builder places the paper's LAMMPS + analysis
// workload (package workload's calibrated phase model) on the same
// physical machine under a different coupling:
//
//   - space-shared: the paper's setup — half the nodes simulate, half
//     analyze, synchronizing over the interconnect;
//   - time-shared: every node runs a simulation rank and an analysis
//     rank as two half-node RAPL domains, so twice the ranks contend for
//     the same machine and budget;
//   - in-transit: like space-shared, but frames reach the analysis
//     partition through a staging hop the producers pay for on the
//     virtual clock;
//   - dag: a multi-stage pipeline (sim -> filter -> {rdf, msd1d} ->
//     reduce) with fan-out and fan-in synchronization.
package workflow

import (
	"fmt"

	"seesaw/internal/core"
	"seesaw/internal/machine"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// Topology is a built graph plus the knobs a driver needs to run it on
// a fixed physical machine.
type Topology struct {
	Graph Graph
	// ConstraintScale is the factor the per-node cap range must be
	// multiplied by (0.5 when ranks own half-node domains, else 1). The
	// budget is not scaled: it belongs to the physical machine.
	ConstraintScale float64
	// PhysicalNodes counts physical machines (time-shared pairs count
	// once).
	PhysicalNodes int
}

// ScaleCaps adapts full-node constraints to this topology's power
// domains: the cap range scales with the domain fraction, the global
// budget stays the machine's.
func (t Topology) ScaleCaps(c core.Constraints) core.Constraints {
	if t.ConstraintScale != 1 {
		c.MinCap = units.Watts(float64(c.MinCap) * t.ConstraintScale)
		c.MaxCap = units.Watts(float64(c.MaxCap) * t.ConstraintScale)
	}
	return c
}

// Params parameterize the built-in topologies.
type Params struct {
	// Nodes is the physical machine size.
	Nodes int
	// Dim is the problem-size knob (total atoms = 1568 * dim^3).
	Dim int
	// J is the default synchronization interval; Steps the total Verlet
	// steps.
	J, Steps int
	// Analyses lists the analysis tasks (Tasks("rdf", "msd1d") etc.);
	// the dag topology runs its fixed rdf/msd1d pipeline regardless.
	Analyses []workload.AnalysisTask
}

// TopologyNames lists the built-in topology names.
func TopologyNames() []string {
	return []string{"space-shared", "time-shared", "in-transit", "dag"}
}

// frameBytes is the per-producer-rank frame volume: positions and
// velocities, 6 float64 per atom, for the rank's share of the atoms.
func frameBytes(dim, simRanks int) int {
	atoms := 1568 * dim * dim * dim
	return atoms / simRanks * 48
}

// Build constructs a named topology on the given physical machine.
func Build(name string, p Params) (Topology, error) {
	if p.Nodes < 2 || p.Nodes%2 != 0 {
		return Topology{}, fmt.Errorf("workflow: topology %q needs an even node count >= 2, got %d", name, p.Nodes)
	}
	if len(p.Analyses) == 0 {
		p.Analyses = workload.Tasks("rdf", "msd1d")
	}
	switch name {
	case "space-shared":
		return pairedTopology(p, SpaceShared), nil
	case "time-shared":
		return timeSharedTopology(p), nil
	case "in-transit":
		return pairedTopology(p, InTransit), nil
	case "dag":
		return dagTopology(p)
	}
	return Topology{}, fmt.Errorf("workflow: unknown topology %q (valid: %v)", name, TopologyNames())
}

// pairedTopology is the paper's two-partition shape: half the machine
// simulates, half analyzes, with the analysis partition either directly
// coupled (space-shared) or behind a staging hop (in-transit).
func pairedTopology(p Params, pl Placement) Topology {
	half := p.Nodes / 2
	spec := workload.Spec{
		SimNodes: half, AnaNodes: half,
		Dim: p.Dim, J: p.J, Steps: p.Steps, Analyses: p.Analyses,
	}
	return Topology{
		Graph: Graph{
			Name: "space-shared",
			Stages: []Stage{
				{Name: "sim", Role: core.RoleSimulation, Ranks: half, Work: simWork{spec}},
				{Name: "ana", Role: core.RoleAnalysis, Ranks: half, Placement: pl, Work: anaWork{spec}},
			},
			Edges: []Edge{
				{From: "sim", To: "ana", BytesPerRank: frameBytes(p.Dim, half)},
			},
		},
		ConstraintScale: 1,
		PhysicalNodes:   p.Nodes,
	}
}

// timeSharedTopology co-locates one analysis rank with each simulation
// rank: every physical node splits into two half-node domains whose
// caps contend for the node's share of the budget. The domain split
// spreads both the simulation and the analysis over all Nodes ranks, so
// per-rank work halves relative to the paired shape while the machine
// stays the same.
func timeSharedTopology(p Params) Topology {
	spec := workload.Spec{
		SimNodes: p.Nodes, AnaNodes: p.Nodes,
		Dim: p.Dim, J: p.J, Steps: p.Steps, Analyses: p.Analyses,
	}
	return Topology{
		Graph: Graph{
			Name: "time-shared",
			Stages: []Stage{
				{Name: "sim", Role: core.RoleSimulation, Ranks: p.Nodes, Work: simWork{spec}},
				{Name: "ana", Role: core.RoleAnalysis, Ranks: p.Nodes,
					Placement: TimeShared, Host: "sim", Work: anaWork{spec}},
			},
			Edges: []Edge{
				{From: "sim", To: "ana", BytesPerRank: frameBytes(p.Dim, p.Nodes)},
			},
		},
		ConstraintScale: 0.5,
		PhysicalNodes:   p.Nodes,
	}
}

// dagTopology is the multi-stage pipeline: the simulation fans out
// through a filter stage to two analyses that fan back into a reduce
// stage. Stage sizes follow a fixed 8-node template (4 sim : 1 filter :
// 1 rdf : 1 msd1d : 1 reduce).
func dagTopology(p Params) (Topology, error) {
	if p.Nodes < 8 || p.Nodes%8 != 0 {
		return Topology{}, fmt.Errorf("workflow: topology \"dag\" needs a node count divisible by 8, got %d", p.Nodes)
	}
	g := p.Nodes / 8
	half := p.Nodes / 2
	simSpec := workload.Spec{
		SimNodes: half, AnaNodes: half,
		Dim: p.Dim, J: p.J, Steps: p.Steps, Analyses: p.Analyses,
	}
	// The filter halves the frame before the analyses see it, so each
	// analysis stage models its kernel over half the atoms spread across
	// its g ranks (SimNodes = 2g makes workload's per-rank work factor
	// come out to (atoms/2)/g).
	rdfSpec := workload.Spec{
		SimNodes: 2 * g, AnaNodes: g,
		Dim: p.Dim, J: p.J, Steps: p.Steps, Analyses: workload.Tasks("rdf"),
	}
	msdSpec := workload.Spec{
		SimNodes: 2 * g, AnaNodes: g,
		Dim: p.Dim, J: p.J, Steps: p.Steps, Analyses: workload.Tasks("msd1d"),
	}
	atoms := 1568 * p.Dim * p.Dim * p.Dim
	filterPhase := machine.Phase{
		Name:        "filter",
		Nominal:     units.Seconds(float64(atoms/g) * 2.0e-7),
		Demand:      130,
		Saturation:  135,
		Sensitivity: 0.60,
	}
	reducePhase := machine.Phase{
		Name:        "reduce",
		Nominal:     0.2,
		Demand:      115,
		Saturation:  112,
		Sensitivity: 0.20,
	}
	fb := frameBytes(p.Dim, half)
	return Topology{
		Graph: Graph{
			Name: "dag",
			Stages: []Stage{
				{Name: "sim", Role: core.RoleSimulation, Ranks: half, Work: simWork{simSpec}},
				{Name: "filter", Role: core.RoleAnalysis, Ranks: g, Work: staticWork{[]machine.Phase{filterPhase}}},
				{Name: "rdf", Role: core.RoleAnalysis, Ranks: g, Work: anaWork{rdfSpec}},
				{Name: "msd1d", Role: core.RoleAnalysis, Ranks: g, Work: anaWork{msdSpec}},
				{Name: "reduce", Role: core.RoleAnalysis, Ranks: g, Work: staticWork{[]machine.Phase{reducePhase}}},
			},
			Edges: []Edge{
				{From: "sim", To: "filter", BytesPerRank: fb},
				{From: "filter", To: "rdf", BytesPerRank: atoms * 48 / 2 / g},
				{From: "filter", To: "msd1d", BytesPerRank: atoms * 48 / 2 / g},
				{From: "rdf", To: "reduce", BytesPerRank: 65536},
				{From: "msd1d", To: "reduce", BytesPerRank: 65536},
			},
		},
		ConstraintScale: 1,
		PhysicalNodes:   p.Nodes,
	}, nil
}

// simWork adapts workload.Spec's simulation side to the WorkModel
// interface: all work runs before the synchronization.
type simWork struct{ spec workload.Spec }

func (w simWork) StepPhases(prevStep, syncStep, syncIdx int) []machine.Phase {
	return w.spec.SimIntervalIdx(prevStep, syncStep, syncIdx)
}
func (w simWork) SyncPhases(syncIdx, syncStep int) []machine.Phase { return nil }

// anaWork adapts the analysis side: all work runs after the inbound
// frames arrive.
type anaWork struct{ spec workload.Spec }

func (w anaWork) StepPhases(prevStep, syncStep, syncIdx int) []machine.Phase { return nil }
func (w anaWork) SyncPhases(syncIdx, syncStep int) []machine.Phase {
	return w.spec.AnaInterval(syncStep)
}

// staticWork runs the same fixed phases after every synchronization's
// receives (filter/reduce stages).
type staticWork struct{ phases []machine.Phase }

func (w staticWork) StepPhases(prevStep, syncStep, syncIdx int) []machine.Phase { return nil }
func (w staticWork) SyncPhases(syncIdx, syncStep int) []machine.Phase           { return w.phases }

// Package cluster owns node lifecycle for the simulated jobs: it
// constructs the machine.Nodes of a two-partition in-situ job (the
// wiring previously duplicated across the cosim and insitu drivers),
// tracks per-node health on the virtual clock, and applies deterministic
// fault plans (package fault), exposing a membership view that shrinks
// or weakens as faults fire.
//
// Health is three-valued: Healthy nodes run at full speed, Degraded
// nodes keep executing with their phase durations scaled by a slow
// factor (a transient excursion: thermal throttling, a failing fan, OS
// interference), and Dead nodes stop executing and draw no power. Every
// transition is recorded as a Transition and mirrored to telemetry
// (NodeKilled / NodeDegraded / NodeRecovered events plus the fault
// counter and alive/degraded gauges).
//
// Two application paths serve the two drivers: the sequential cosim
// driver calls Advance once per synchronization interval to apply the
// plan cluster-wide, while the goroutine-per-rank insitu driver has each
// rank call Apply for its own node (each rank only ever touches its own
// machine.Node, so the slow-factor write stays single-owner).
package cluster

import (
	"fmt"
	"sort"
	"sync"

	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/rapl"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
)

// Config describes the node population of one job.
type Config struct {
	// SimNodes and AnaNodes are the partition sizes; node ids 0 to
	// SimNodes-1 are simulation, the rest analysis (the drivers' rank
	// layout).
	SimNodes, AnaNodes int
	// Rapl is the per-node RAPL hardware model (Theta if zero); with
	// Classes set it describes the default class (unmapped nodes).
	Rapl rapl.Config
	// Machine is the node performance model (DefaultModel if zero);
	// with Classes set it describes the default class.
	Machine machine.Model
	// Noise configures node variability; zero disables noise for the
	// whole run, including any per-class profiles.
	Noise machine.NoiseModel
	// Classes assigns device classes to node ids (the
	// machine.ClassMap grammar, e.g. "0-511:cpu,512-575:gpu").
	// Unmapped nodes get the default class above. Nil keeps the
	// cluster homogeneous — the degenerate one-class case, byte-
	// identical to the pre-class behaviour.
	Classes *machine.ClassMap
	// ClassRegistry resolves class names; entries override the
	// built-in presets (machine.PresetNames). Nil uses the presets
	// alone.
	ClassRegistry map[string]machine.Class
	// JobSeed fixes node-allocation effects (speed and power-efficiency
	// skews); RunSeed drives per-run jitter. RunSeed zero falls back to
	// JobSeed (the single-seed behaviour of the insitu driver).
	JobSeed, RunSeed uint64
	// Faults is the fault plan applied on the virtual clock; nil means a
	// fault-free run.
	Faults *fault.Plan
	// Scales optionally gives each node a physical-fraction factor: node
	// i is built with its machine model and RAPL domain scaled by
	// Scales[i] (see machine.Model.Scale). The workflow engine uses it
	// for time-shared placements, where two co-resident stage ranks each
	// own a half-node. Nil means every node is a full node; when set, the
	// length must equal SimNodes+AnaNodes and every factor must be in
	// (0, 1].
	Scales []float64
	// Telemetry, when non-nil, receives per-partition RAPL metrics from
	// every node (events from one representative node per partition, to
	// stay readable at 1024 nodes) and the node-lifecycle events.
	Telemetry *telemetry.Hub
}

// Transition records one health change applied by the fault plan.
type Transition struct {
	// NodeID is the stable node id (cosim node index / insitu world rank).
	NodeID int
	// Role is the node's partition.
	Role core.Role
	// From and To are the health states before and after.
	From, To core.Health
	// Factor is the slow multiplier in force after the transition
	// (1 unless To is Degraded).
	Factor float64
	// Sync is the 1-based synchronization index the transition fired at.
	Sync int
	// T is the virtual time of the transition.
	T units.Seconds
}

// String renders a transition for logs and traces.
func (tr Transition) String() string {
	if tr.To == core.Degraded {
		return fmt.Sprintf("sync %d: node %d (%s) %s -> %s x%g", tr.Sync, tr.NodeID, tr.Role, tr.From, tr.To, tr.Factor)
	}
	return fmt.Sprintf("sync %d: node %d (%s) %s -> %s", tr.Sync, tr.NodeID, tr.Role, tr.From, tr.To)
}

// Defaults returns the configuration with its zero-valued model
// fields replaced by the documented defaults: the default device
// class's model and RAPL domain (DefaultModel on Theta). This is the
// single normalization step every entry point shares — the drivers
// pass their Machine/Rapl fields through untouched, so "zero means
// the Theta defaults" is an explicit contract here rather than an
// accident of zero-value comparison sprinkled across callers. A
// homogeneous cluster is thus literally the one-class degenerate case
// of the preset registry.
func (cfg Config) Defaults() Config {
	def := machine.DefaultClass()
	if cfg.Machine == (machine.Model{}) {
		cfg.Machine = def.Model
	}
	if cfg.Rapl == (rapl.Config{}) {
		cfg.Rapl = def.Rapl
	}
	return cfg
}

// classes resolves the class registry in effect: built-in presets
// overlaid with the config's registry, plus the default class built
// from the (normalized) Machine/Rapl pair.
func (cfg Config) classes() map[string]machine.Class {
	reg := map[string]machine.Class{}
	for _, name := range machine.PresetNames() {
		c, _ := machine.PresetClass(name)
		reg[name] = c
	}
	for name, c := range cfg.ClassRegistry {
		c.Name = name
		reg[name] = c
	}
	return reg
}

// Cluster is the node population of one job plus its health state.
type Cluster struct {
	cfg   Config
	nodes []*machine.Node
	roles []core.Role
	// caps holds each node's device-class capability; nil on a
	// homogeneous cluster (no Classes configured).
	caps []core.NodeCapability

	mu       sync.Mutex
	health   []core.Health
	slow     []float64 // slow factor currently applied to each node
	aliveSim int
	aliveAna int
}

// New validates the configuration and builds the node population. The
// fault plan, if any, is checked against the node count and rejected if
// its kills would wipe out an entire partition (the drivers cannot make
// progress with an empty partition, and the allocators return nil).
func New(cfg Config) (*Cluster, error) {
	if cfg.SimNodes <= 0 || cfg.AnaNodes <= 0 {
		return nil, fmt.Errorf("cluster: need positive partition sizes, got sim=%d ana=%d", cfg.SimNodes, cfg.AnaNodes)
	}
	cfg = cfg.Defaults()
	n := cfg.SimNodes + cfg.AnaNodes
	var registry map[string]machine.Class
	if !cfg.Classes.Empty() {
		registry = cfg.classes()
		known := make([]string, 0, len(registry))
		for name := range registry {
			known = append(known, name)
		}
		sort.Strings(known)
		resolve := func(name string) bool { _, ok := registry[name]; return ok }
		if err := cfg.Classes.Validate(n, resolve, known); err != nil {
			return nil, err
		}
		for _, name := range cfg.Classes.Classes() {
			if err := registry[name].Validate(); err != nil {
				return nil, err
			}
		}
	}
	if cfg.Scales != nil {
		if len(cfg.Scales) != n {
			return nil, fmt.Errorf("cluster: %d node scales for %d nodes", len(cfg.Scales), n)
		}
		for i, s := range cfg.Scales {
			if s <= 0 || s > 1 {
				return nil, fmt.Errorf("cluster: node %d scale %g outside (0, 1]", i, s)
			}
		}
	}
	if err := cfg.Faults.Validate(n); err != nil {
		return nil, err
	}
	var killsSim, killsAna int
	for _, id := range cfg.Faults.Kills() {
		if id < cfg.SimNodes {
			killsSim++
		} else {
			killsAna++
		}
	}
	if killsSim >= cfg.SimNodes {
		return nil, fmt.Errorf("cluster: fault plan kills all %d simulation nodes", cfg.SimNodes)
	}
	if killsAna >= cfg.AnaNodes {
		return nil, fmt.Errorf("cluster: fault plan kills all %d analysis nodes", cfg.AnaNodes)
	}

	runSeed := cfg.RunSeed
	if runSeed == 0 {
		runSeed = cfg.JobSeed
	}
	c := &Cluster{
		cfg:      cfg,
		nodes:    make([]*machine.Node, n),
		roles:    make([]core.Role, n),
		health:   make([]core.Health, n),
		slow:     make([]float64, n),
		aliveSim: cfg.SimNodes,
		aliveAna: cfg.AnaNodes,
	}
	var weights map[string]float64
	if registry != nil {
		c.caps = make([]core.NodeCapability, n)
		weights = map[string]float64{}
	}
	defaultClass := machine.Class{Name: "default", Model: cfg.Machine, Rapl: cfg.Rapl}
	for i := 0; i < n; i++ {
		cl := defaultClass
		if registry != nil {
			if name := cfg.Classes.ClassAt(i); name != "" {
				cl = registry[name]
			}
		}
		raplCfg, model, noise := cl.Rapl, cl.Model, cfg.Noise
		if noise != (machine.NoiseModel{}) && cl.Noise != (machine.NoiseModel{}) {
			// A class's own noise profile overrides the run-level one,
			// but a deterministic (zero-noise) run stays deterministic.
			noise = cl.Noise
		}
		if cfg.Scales != nil {
			raplCfg = raplCfg.Scale(cfg.Scales[i])
			model = model.Scale(cfg.Scales[i])
		}
		if c.caps != nil {
			w, ok := weights[cl.Name]
			if !ok {
				w = cl.Weight()
				weights[cl.Name] = w
			}
			c.caps[i] = core.NodeCapability{
				Class:  cl.Name,
				MinCap: raplCfg.MinCap,
				MaxCap: raplCfg.TDP,
				Weight: w,
			}
		}
		// The phase execution model only ever queries the sustained
		// enforcement level, so the domains skip the transient-window
		// bookkeeping (telemetry-attached domains keep it for violation
		// reporting).
		raplCfg.SustainedOnly = true
		c.nodes[i] = machine.NewNodeWithSeeds(i, raplCfg, model, noise, cfg.JobSeed, runSeed)
		if i < cfg.SimNodes {
			c.roles[i] = core.RoleSimulation
		} else {
			c.roles[i] = core.RoleAnalysis
		}
		c.slow[i] = 1
		if cfg.Telemetry != nil {
			// Metrics aggregate per partition; the event stream carries one
			// representative node per partition.
			eventful := i == 0 || i == cfg.SimNodes
			c.nodes[i].RAPL().SetTelemetry(cfg.Telemetry, c.roles[i].String(), eventful)
		}
	}
	return c, nil
}

// Reset returns the cluster to its just-built state for pooled episode
// reuse: every node rewinds (RAPL domain, jitter stream, slow factor,
// busy/idle accounting) and the health view returns to all-alive. The
// seed-derived node skews and the class capability table are immutable
// and survive, so a reset cluster replays exactly the behaviour of a
// freshly constructed one with the same Config.
func (c *Cluster) Reset() {
	c.mu.Lock()
	for i := range c.nodes {
		c.health[i] = core.Healthy
		c.slow[i] = 1
	}
	c.aliveSim, c.aliveAna = c.cfg.SimNodes, c.cfg.AnaNodes
	c.mu.Unlock()
	for _, n := range c.nodes {
		n.Reset()
	}
}

// Size returns the total node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// SimNodes returns the configured simulation-partition size.
func (c *Cluster) SimNodes() int { return c.cfg.SimNodes }

// AnaNodes returns the configured analysis-partition size.
func (c *Cluster) AnaNodes() int { return c.cfg.AnaNodes }

// Node returns node i's machine.
func (c *Cluster) Node(i int) *machine.Node { return c.nodes[i] }

// Role returns node i's partition role.
func (c *Cluster) Role(i int) core.Role { return c.roles[i] }

// Hetero reports whether the cluster carries device classes.
func (c *Cluster) Hetero() bool { return c.caps != nil }

// Capability returns node i's device-class capability; the zero value
// on a homogeneous cluster.
func (c *Cluster) Capability(i int) core.NodeCapability {
	if c.caps == nil {
		return core.NodeCapability{}
	}
	return c.caps[i]
}

// CapabilityFn returns a lookup suitable for polimer.Options: nil on
// a homogeneous cluster (so the rank-parallel path stays untouched),
// the Capability accessor otherwise. The capability table is immutable
// after New, so the lookup is safe from any rank goroutine.
func (c *Cluster) CapabilityFn() func(int) core.NodeCapability {
	if c.caps == nil {
		return nil
	}
	return c.Capability
}

// Health returns node i's current health.
func (c *Cluster) Health(i int) core.Health {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.health[i]
}

// Alive reports whether node i is not Dead.
func (c *Cluster) Alive(i int) bool { return c.Health(i).Alive() }

// AliveCounts returns the partitions' live sizes.
func (c *Cluster) AliveCounts() (sim, ana int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aliveSim, c.aliveAna
}

// AliveByRole returns one partition's live size.
func (c *Cluster) AliveByRole(role core.Role) int {
	sim, ana := c.AliveCounts()
	if role == core.RoleSimulation {
		return sim
	}
	return ana
}

// WorkScale returns the factor by which each surviving node's share of
// the partition's (fixed, domain-decomposed) work grows after kills:
// configured size over live size. It returns 1 for a full partition.
func (c *Cluster) WorkScale(role core.Role) float64 {
	configured := c.cfg.SimNodes
	if role == core.RoleAnalysis {
		configured = c.cfg.AnaNodes
	}
	alive := c.AliveByRole(role)
	if alive <= 0 || alive == configured {
		return 1
	}
	return float64(configured) / float64(alive)
}

// Measure fills the identity, health and cap fields of a NodeMeasure
// for node i. Dead nodes report zero cap (and callers leave the time
// and power fields zero), the convention the allocators rely on to
// avoid re-injecting a corpse's stale cap into the budget pool.
func (c *Cluster) Measure(i int) core.NodeMeasure {
	h := c.Health(i)
	m := core.NodeMeasure{NodeID: i, Health: h, Role: c.roles[i]}
	if h.Alive() {
		m.Cap = c.nodes[i].RAPL().LongCap()
	}
	if c.caps != nil {
		m.NodeCapability = c.caps[i]
	}
	return m
}

// Advance applies the fault plan cluster-wide for the given 1-based
// synchronization index (the sequential driver's path, called at the
// top of each interval: an event planned for sync k is in force before
// interval k executes). It returns the transitions fired, in node
// order.
func (c *Cluster) Advance(t units.Seconds, sync int) []Transition {
	if c.cfg.Faults.Empty() {
		return nil
	}
	var trs []Transition
	for i := range c.nodes {
		trs = append(trs, c.apply(i, t, sync)...)
	}
	return trs
}

// Apply applies the fault plan for one node (the rank-parallel path:
// each rank calls it for its own node right before PowerAlloc). It
// returns the transitions fired and whether the node is now dead.
func (c *Cluster) Apply(id int, t units.Seconds, sync int) ([]Transition, bool) {
	trs := c.apply(id, t, sync)
	return trs, !c.Alive(id)
}

// apply advances one node's health to the plan's state at sync.
func (c *Cluster) apply(id int, t units.Seconds, sync int) []Transition {
	plan := c.cfg.Faults
	if plan.Empty() {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.health[id] == core.Dead {
		return nil
	}
	role := c.roles[id]
	if ks := plan.KillSync(id); ks != 0 && sync >= ks {
		from := c.health[id]
		if from == core.Degraded {
			// The excursion ends with the node: keep the degraded gauge
			// consistent before counting the kill.
			c.cfg.Telemetry.NodeRecovered(float64(t), id, role.String(), sync)
		}
		c.health[id] = core.Dead
		c.slow[id] = 1
		if role == core.RoleSimulation {
			c.aliveSim--
		} else {
			c.aliveAna--
		}
		c.cfg.Telemetry.NodeKilled(float64(t), id, role.String(), sync, c.aliveSim, c.aliveAna)
		return []Transition{{NodeID: id, Role: role, From: from, To: core.Dead, Factor: 1, Sync: sync, T: t}}
	}
	f := plan.SlowFactor(id, sync)
	if f == c.slow[id] {
		return nil
	}
	from := c.health[id]
	c.slow[id] = f
	c.nodes[id].SetSlowFactor(f)
	if f == 1 {
		c.health[id] = core.Healthy
		c.cfg.Telemetry.NodeRecovered(float64(t), id, role.String(), sync)
		return []Transition{{NodeID: id, Role: role, From: from, To: core.Healthy, Factor: 1, Sync: sync, T: t}}
	}
	c.health[id] = core.Degraded
	if from == core.Healthy {
		c.cfg.Telemetry.NodeDegraded(float64(t), id, role.String(), sync, f)
	}
	// A factor change inside an excursion (overlapping windows) is
	// recorded in the transition log but not re-counted by telemetry.
	return []Transition{{NodeID: id, Role: role, From: from, To: core.Degraded, Factor: f, Sync: sync, T: t}}
}

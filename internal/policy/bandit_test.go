package policy

import (
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/units"
)

// driveBandit feeds the bandit a synthetic run where every node reports
// timeOf(sync) as its interval time, for syncs [from, to).
func driveBandit(b *Bandit, from, to int, timeOf func(sync int) units.Seconds) {
	nodes := make([]core.NodeMeasure, 4)
	for s := from; s < to; s++ {
		for i := range nodes {
			nodes[i] = core.NodeMeasure{NodeID: i, Role: core.RoleSimulation, Time: timeOf(s), Cap: 110}
		}
		b.Allocate(s, nodes)
	}
}

func testBanditConfig() BanditConfig {
	cfg := DefaultBanditConfig(testConstraints(), 1)
	cfg.Epsilon = 0 // deterministic greedy for tests
	return cfg
}

func TestBanditConfigValidation(t *testing.T) {
	for name, mutate := range map[string]func(*BanditConfig){
		"window 0":        func(c *BanditConfig) { c.Window = 0 },
		"episode 0":       func(c *BanditConfig) { c.MinEpisode = 0 },
		"epsilon 1":       func(c *BanditConfig) { c.Epsilon = 1 },
		"epsilon < 0":     func(c *BanditConfig) { c.Epsilon = -0.1 },
		"beta 0":          func(c *BanditConfig) { c.Beta = 0 },
		"beta > 1":        func(c *BanditConfig) { c.Beta = 1.5 },
		"bad constraints": func(c *BanditConfig) { c.Constraints = core.Constraints{} },
	} {
		cfg := testBanditConfig()
		mutate(&cfg)
		if _, err := NewBandit(cfg); err == nil {
			t.Errorf("NewBandit accepted %s", name)
		}
	}
}

// TestBanditAuditionsEveryArm: the audition phase runs each arm once
// (double-length episodes), then settles into a greedy span.
func TestBanditAuditionsEveryArm(t *testing.T) {
	b, err := NewBandit(testBanditConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Enough syncs for 4 audition episodes of 2*MinEpisode plus slack.
	driveBandit(b, 1, 60, func(int) units.Seconds { return 10 })

	audited := map[string]bool{}
	var greedy bool
	for _, span := range b.History() {
		if span.Audition {
			if greedy {
				t.Fatalf("audition span after greedy settled: %+v", b.History())
			}
			audited[span.Arm] = true
		} else {
			greedy = true
		}
	}
	for _, n := range append([]string{"static"}, Compared()...) {
		if !audited[n] {
			t.Errorf("arm %q never auditioned (history %+v)", n, b.History())
		}
	}
	if !greedy {
		t.Fatal("bandit never left the audition phase")
	}
	if b.Allocations() != 59 {
		t.Fatalf("Allocations() = %d, want 59", b.Allocations())
	}
}

// TestBanditStableUnderConstantReward: with a flat reward landscape the
// greedy phase must hold one arm — no churn, no spurious refreshes.
func TestBanditStableUnderConstantReward(t *testing.T) {
	b, err := NewBandit(testBanditConfig())
	if err != nil {
		t.Fatal(err)
	}
	driveBandit(b, 1, 200, func(int) units.Seconds { return 10 })
	if b.Refreshes() != 0 {
		t.Errorf("Refreshes() = %d under constant reward, want 0", b.Refreshes())
	}
	// The audition phase itself switches arms; after it, the selection
	// must not move again (epsilon is 0 and rewards are flat).
	spans := b.History()
	var greedyFrom int
	for i, s := range spans {
		if !s.Audition {
			greedyFrom = i
			break
		}
	}
	if rest := spans[greedyFrom+1:]; len(rest) != 0 {
		t.Errorf("greedy selection churned under constant reward: %+v", spans)
	}
}

// TestBanditRefreshesOnRegimeShift: a step change in the reward level
// sustained over two episodes must trigger exactly one arm refresh —
// the in-place rebuild that hands the new regime fresh adaptive state.
func TestBanditRefreshesOnRegimeShift(t *testing.T) {
	b, err := NewBandit(testBanditConfig())
	if err != nil {
		t.Fatal(err)
	}
	shiftAt := 100
	driveBandit(b, 1, 200, func(s int) units.Seconds {
		if s >= shiftAt {
			return 30
		}
		return 10
	})
	if b.Refreshes() != 1 {
		t.Fatalf("Refreshes() = %d after one regime shift, want 1", b.Refreshes())
	}
	// The estimates were rescaled to the new level, so the detector is
	// re-armed rather than stuck re-firing on the same shift.
	driveBandit(b, 200, 300, func(int) units.Seconds { return 30 })
	if b.Refreshes() != 1 {
		t.Fatalf("Refreshes() = %d, refresh re-fired on a steady regime", b.Refreshes())
	}
	// A later shift (back down) is detected independently.
	driveBandit(b, 300, 400, func(int) units.Seconds { return 10 })
	if b.Refreshes() != 2 {
		t.Fatalf("Refreshes() = %d after a second shift, want 2", b.Refreshes())
	}
}

// TestBanditRegisteredWithRegistry: "bandit" resolves through the same
// registry path as the hand-written policies.
func TestBanditRegisteredWithRegistry(t *testing.T) {
	p, err := New("bandit", testConstraints(), 3)
	if err != nil {
		t.Fatal(err)
	}
	b, ok := p.(*Bandit)
	if !ok {
		t.Fatalf("New(bandit) returned %T", p)
	}
	if b.Name() != "bandit" {
		t.Fatalf("Name() = %q", b.Name())
	}
	if b.Arm() == "" {
		t.Fatal("no initial arm selected")
	}
}

package cluster

import (
	"strings"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/rapl"
	"seesaw/internal/units"
)

func TestClassResolution(t *testing.T) {
	c := mustNew(t, Config{
		SimNodes: 2, AnaNodes: 2, JobSeed: 1,
		Classes: machine.MustParseClassMap("1:gpu,3:lowpower"),
	})
	if !c.Hetero() {
		t.Fatal("classed cluster not hetero")
	}
	gpu, _ := machine.PresetClass("gpu")
	lp, _ := machine.PresetClass("lowpower")
	wants := []struct {
		class          string
		minCap, maxCap units.Watts
	}{
		{"default", rapl.Theta().MinCap, rapl.Theta().TDP},
		{"gpu", gpu.Rapl.MinCap, gpu.Rapl.TDP},
		{"default", rapl.Theta().MinCap, rapl.Theta().TDP},
		{"lowpower", lp.Rapl.MinCap, lp.Rapl.TDP},
	}
	for i, want := range wants {
		cap := c.Capability(i)
		if cap.Class != want.class || cap.MinCap != want.minCap || cap.MaxCap != want.maxCap {
			t.Errorf("node %d capability = %+v, want %s [%v, %v]", i, cap, want.class, want.minCap, want.maxCap)
		}
		if cap.Weight <= 0 {
			t.Errorf("node %d weight %g not positive", i, cap.Weight)
		}
		if m := c.Measure(i); m.NodeCapability != cap {
			t.Errorf("node %d measure capability %+v != %+v", i, m.NodeCapability, cap)
		}
	}
	// Weight ordering carries through to the capability table.
	if !(c.Capability(3).Weight < c.Capability(0).Weight && c.Capability(0).Weight < c.Capability(1).Weight) {
		t.Errorf("weights not ordered: lowpower %g, default %g, gpu %g",
			c.Capability(3).Weight, c.Capability(0).Weight, c.Capability(1).Weight)
	}
	if fn := c.CapabilityFn(); fn == nil || fn(1) != c.Capability(1) {
		t.Error("CapabilityFn broken on hetero cluster")
	}
}

func TestHomogeneousClusterStaysZero(t *testing.T) {
	c := mustNew(t, Config{SimNodes: 2, AnaNodes: 2, JobSeed: 1})
	if c.Hetero() {
		t.Fatal("homogeneous cluster claims hetero")
	}
	if cap := c.Capability(0); cap != (core.NodeCapability{}) {
		t.Errorf("homogeneous capability %+v not zero", cap)
	}
	if c.CapabilityFn() != nil {
		t.Error("homogeneous CapabilityFn not nil")
	}
	if m := c.Measure(0); m.NodeCapability.Hetero() {
		t.Error("homogeneous measure carries capability")
	}
}

func TestClassErrors(t *testing.T) {
	if _, err := New(Config{SimNodes: 2, AnaNodes: 2,
		Classes: machine.MustParseClassMap("0-1:warpcore")}); err == nil ||
		!strings.Contains(err.Error(), "warpcore") {
		t.Errorf("unknown class error unhelpful: %v", err)
	}
	if _, err := New(Config{SimNodes: 2, AnaNodes: 2,
		Classes: machine.MustParseClassMap("0-7:gpu")}); err == nil ||
		!strings.Contains(err.Error(), "cluster size") {
		t.Errorf("oversized class map error unhelpful: %v", err)
	}
	// A registry entry can shadow a preset; a broken one is rejected.
	broken := machine.Class{Name: "gpu"}
	if _, err := New(Config{SimNodes: 2, AnaNodes: 2,
		Classes:       machine.MustParseClassMap("0:gpu"),
		ClassRegistry: map[string]machine.Class{"gpu": broken}}); err == nil {
		t.Error("broken registry class accepted")
	}
}

func TestClassRegistryOverridesPresets(t *testing.T) {
	custom := machine.DefaultClass()
	custom.Rapl.MinCap = 50
	custom.Rapl.TDP = 120
	c := mustNew(t, Config{SimNodes: 1, AnaNodes: 1, JobSeed: 1,
		Classes:       machine.MustParseClassMap("0-1:tiny"),
		ClassRegistry: map[string]machine.Class{"tiny": custom}})
	cap := c.Capability(0)
	if cap.Class != "tiny" || cap.MinCap != 50 || cap.MaxCap != 120 {
		t.Errorf("custom class capability = %+v", cap)
	}
}

// TestScalesCompressClassCapRange pins the Scales x classes
// interaction: a scaled node's capability range is its class range
// scaled, so the allocators' per-node clamps follow the physical
// fraction exactly as the RAPL domain does.
func TestScalesCompressClassCapRange(t *testing.T) {
	gpu, _ := machine.PresetClass("gpu")
	c := mustNew(t, Config{
		SimNodes: 2, AnaNodes: 2, JobSeed: 1,
		Classes: machine.MustParseClassMap("0-3:gpu"),
		Scales:  []float64{1, 0.5, 1, 0.5},
	})
	for i, scale := range []float64{1, 0.5, 1, 0.5} {
		cap := c.Capability(i)
		wantLo := units.Watts(float64(gpu.Rapl.MinCap) * scale)
		wantHi := units.Watts(float64(gpu.Rapl.TDP) * scale)
		if cap.MinCap != wantLo || cap.MaxCap != wantHi {
			t.Errorf("node %d scaled range [%v, %v], want [%v, %v]", i, cap.MinCap, cap.MaxCap, wantLo, wantHi)
		}
	}
	// Same class, same weight regardless of scale: the weight reflects
	// the device kind, while the scaled clamp range bounds its share.
	if c.Capability(0).Weight != c.Capability(1).Weight {
		t.Errorf("scale changed class weight: %g vs %g", c.Capability(0).Weight, c.Capability(1).Weight)
	}
}

// TestHeteroSlowExcursionKeepsCapability pins the fault x classes
// interaction: a slow-plan excursion degrades the node's execution but
// must not disturb the static capability table the allocators consult.
func TestHeteroSlowExcursionKeepsCapability(t *testing.T) {
	plan, err := fault.Parse("slow:1@2x2+3")
	if err != nil {
		t.Fatal(err)
	}
	c := mustNew(t, Config{
		SimNodes: 2, AnaNodes: 2, JobSeed: 1,
		Classes: machine.MustParseClassMap("0-1:cpu,2-3:gpu"),
		Faults:  plan,
	})
	before := make([]core.NodeCapability, 4)
	for i := range before {
		before[i] = c.Capability(i)
	}
	for sync := 1; sync <= 8; sync++ {
		c.Advance(1, sync)
		for i := range before {
			if got := c.Capability(i); got != before[i] {
				t.Fatalf("sync %d: node %d capability drifted: %+v -> %+v", sync, i, before[i], got)
			}
			if m := c.Measure(i); m.Health.Alive() && m.NodeCapability != before[i] {
				t.Fatalf("sync %d: node %d measure capability drifted", sync, i)
			}
		}
	}
}

package lammps

import (
	"math"
	"testing"
	"testing/quick"
)

// smallConfig returns a quick-to-simulate but physically meaningful
// system.
func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Atoms = 256
	return cfg
}

func step(s *System) {
	s.InitialIntegrate()
	if s.NeedsRebuild() {
		s.BuildNeighbors()
	}
	s.ComputeForces()
	s.FinalIntegrate()
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Atoms: 1, Density: 0.8, Temp: 1, Dt: 0.005, Cutoff: 2.5},
		{Atoms: 100, Density: 0, Temp: 1, Dt: 0.005, Cutoff: 2.5},
		{Atoms: 100, Density: 0.8, Temp: 1, Dt: 0, Cutoff: 2.5},
		{Atoms: 100, Density: 0.8, Temp: 1, Dt: 0.005, Cutoff: -1},
		{Atoms: 100, Density: 0.8, Temp: 1, Dt: 0.005, Cutoff: 2.5, IonFraction: 0.9},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestNewRejectsTinyBox(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Atoms = 8 // box would be smaller than 2*(cutoff+skin)
	if _, err := New(cfg); err == nil {
		t.Error("tiny box should be rejected")
	}
}

func TestInitialTemperature(t *testing.T) {
	s := MustNew(smallConfig())
	if got := s.Temperature(); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("initial temperature = %v, want exactly 1.0", got)
	}
}

func TestInitialMomentumZero(t *testing.T) {
	s := MustNew(smallConfig())
	m := s.TotalMomentum()
	if math.Abs(m[0])+math.Abs(m[1])+math.Abs(m[2]) > 1e-9 {
		t.Errorf("initial net momentum = %v, want 0", m)
	}
}

func TestMomentumConserved(t *testing.T) {
	s := MustNew(smallConfig())
	for i := 0; i < 50; i++ {
		step(s)
	}
	m := s.TotalMomentum()
	if mag := math.Sqrt(m.Norm2()); mag > 1e-8 {
		t.Errorf("momentum drifted to |p| = %v after 50 steps", mag)
	}
}

func TestEnergyConservation(t *testing.T) {
	// NVE with velocity-Verlet must conserve total energy to a small
	// relative drift.
	s := MustNew(smallConfig())
	// Let the lattice melt a little first.
	for i := 0; i < 20; i++ {
		step(s)
	}
	e0 := s.TotalEnergy()
	for i := 0; i < 200; i++ {
		step(s)
	}
	e1 := s.TotalEnergy()
	drift := math.Abs(e1-e0) / math.Abs(e0)
	if drift > 0.01 {
		t.Errorf("energy drift %.4f%% over 200 steps exceeds 1%%", drift*100)
	}
}

func TestPositionsStayWrapped(t *testing.T) {
	s := MustNew(smallConfig())
	for i := 0; i < 30; i++ {
		step(s)
	}
	for i, p := range s.Pos {
		for k := 0; k < 3; k++ {
			if p[k] < 0 || p[k] >= s.Box {
				t.Fatalf("atom %d coordinate %d out of box: %v", i, k, p[k])
			}
		}
	}
}

func TestUnwrappedTracksDisplacement(t *testing.T) {
	s := MustNew(smallConfig())
	u0 := append([]Vec3(nil), s.Unwrp...)
	for i := 0; i < 50; i++ {
		step(s)
	}
	var moved int
	for i := range s.Unwrp {
		if s.Unwrp[i].Sub(u0[i]).Norm2() > 1e-6 {
			moved++
		}
	}
	if moved < s.N/2 {
		t.Errorf("only %d/%d atoms moved; dynamics look frozen", moved, s.N)
	}
}

func TestSpeciesAssignment(t *testing.T) {
	s := MustNew(smallConfig())
	counts := map[int]int{}
	for _, typ := range s.Typ {
		counts[typ]++
	}
	nIon := int(float64(s.N) * smallConfig().IonFraction)
	if counts[SpeciesHydronium] != nIon || counts[SpeciesIon] != nIon {
		t.Errorf("ion counts = %d/%d, want %d each", counts[SpeciesHydronium], counts[SpeciesIon], nIon)
	}
	if counts[SpeciesSolvent] != s.N-2*nIon {
		t.Errorf("solvent count = %d", counts[SpeciesSolvent])
	}
}

func TestNeighborListMatchesBruteForce(t *testing.T) {
	cfg := DefaultConfig() // 512 atoms: cell-list path
	s := MustNew(cfg)
	rc := cfg.Cutoff + cfg.Skin
	rc2 := rc * rc

	// Collect cell-list pairs.
	listPairs := map[[2]int]bool{}
	for i := 0; i < s.N; i++ {
		for k := s.nbrHead[i]; k < s.nbrHead[i+1]; k++ {
			j := int(s.nbrList[k])
			a, b := i, j
			if a > b {
				a, b = b, a
			}
			listPairs[[2]int{a, b}] = true
		}
	}
	// Brute-force pairs.
	var missing, extra int
	for i := 0; i < s.N; i++ {
		for j := i + 1; j < s.N; j++ {
			d := s.minimumImage(s.Pos[i].Sub(s.Pos[j]))
			within := d.Norm2() < rc2
			inList := listPairs[[2]int{i, j}]
			if within && !inList {
				missing++
			}
			if !within && inList {
				extra++
			}
		}
	}
	if missing > 0 {
		t.Errorf("%d in-range pairs missing from neighbor list", missing)
	}
	if extra > 0 {
		t.Errorf("%d out-of-range pairs present in neighbor list", extra)
	}
}

func TestNeedsRebuildAfterMotion(t *testing.T) {
	s := MustNew(smallConfig())
	if s.NeedsRebuild() {
		t.Error("fresh system should not need a rebuild")
	}
	// Artificially displace one atom beyond half the skin.
	s.Pos[0][0] = s.wrap(s.Pos[0][0] + smallConfig().Skin)
	if !s.NeedsRebuild() {
		t.Error("moved atom should trigger a rebuild")
	}
}

func TestForcesAreNewtonian(t *testing.T) {
	s := MustNew(smallConfig())
	var f Vec3
	for _, fi := range s.Force {
		f = f.Add(fi)
	}
	if mag := math.Sqrt(f.Norm2()); mag > 1e-9 {
		t.Errorf("net force |F| = %v, want ~0 (Newton's third law)", mag)
	}
}

func TestDeterministicTrajectories(t *testing.T) {
	mk := func() float64 {
		s := MustNew(smallConfig())
		for i := 0; i < 30; i++ {
			step(s)
		}
		return s.TotalEnergy()
	}
	if a, b := mk(), mk(); a != b {
		t.Errorf("same seed produced different trajectories: %v vs %v", a, b)
	}
}

func TestSeedChangesTrajectory(t *testing.T) {
	cfg := smallConfig()
	cfg.Seed = 2
	a := MustNew(smallConfig())
	b := MustNew(cfg)
	if a.Pos[0] == b.Pos[0] && a.Vel[0] == b.Vel[0] {
		t.Error("different seeds produced identical initial state")
	}
}

func TestSnapshotIndependence(t *testing.T) {
	s := MustNew(smallConfig())
	f := s.Snapshot()
	orig := f.Pos[0]
	step(s)
	if f.Pos[0] != orig {
		t.Error("snapshot mutated by subsequent steps")
	}
	if f.Step != 0 {
		t.Errorf("snapshot step = %d, want 0", f.Step)
	}
}

func TestWorkCounts(t *testing.T) {
	s := MustNew(smallConfig())
	wi := s.InitialIntegrate()
	if wi.Ops != float64(s.N)*9 {
		t.Errorf("integrate ops = %v", wi.Ops)
	}
	wn := s.BuildNeighbors()
	if wn.Ops <= 0 || wn.Bytes != s.N*24 {
		t.Errorf("neighbor work = %+v", wn)
	}
	wf := s.ComputeForces()
	if wf.Ops <= 0 {
		t.Errorf("force ops = %v", wf.Ops)
	}
	wfi := s.FinalIntegrate()
	if wfi.Ops != float64(s.N)*3 {
		t.Errorf("final integrate ops = %v", wfi.Ops)
	}
	var sum WorkCount
	sum.Add(wi)
	sum.Add(wn)
	if sum.Ops != wi.Ops+wn.Ops || sum.Bytes != wi.Bytes+wn.Bytes {
		t.Error("WorkCount.Add wrong")
	}
}

func TestStepCounter(t *testing.T) {
	s := MustNew(smallConfig())
	for i := 0; i < 5; i++ {
		step(s)
	}
	if s.Step() != 5 {
		t.Errorf("step counter = %d, want 5", s.Step())
	}
}

func TestFrameAndThermoBytes(t *testing.T) {
	s := MustNew(smallConfig())
	if s.FrameBytes() != s.N*(3*8*3+1) {
		t.Errorf("FrameBytes = %d", s.FrameBytes())
	}
	if s.ThermoBytes() != 48 {
		t.Errorf("ThermoBytes = %d", s.ThermoBytes())
	}
}

func TestVec3Ops(t *testing.T) {
	a, b := Vec3{1, 2, 3}, Vec3{4, 5, 6}
	if a.Add(b) != (Vec3{5, 7, 9}) {
		t.Error("Add wrong")
	}
	if b.Sub(a) != (Vec3{3, 3, 3}) {
		t.Error("Sub wrong")
	}
	if a.Scale(2) != (Vec3{2, 4, 6}) {
		t.Error("Scale wrong")
	}
	if a.Dot(b) != 32 {
		t.Error("Dot wrong")
	}
	if a.Norm2() != 14 {
		t.Error("Norm2 wrong")
	}
}

func TestMinimumImageProperty(t *testing.T) {
	s := MustNew(smallConfig())
	half := s.Box / 2
	f := func(x, y, z float64) bool {
		d := s.minimumImage(Vec3{mod(x, s.Box), mod(y, s.Box), mod(z, s.Box)})
		return math.Abs(d[0]) <= half+1e-9 && math.Abs(d[1]) <= half+1e-9 && math.Abs(d[2]) <= half+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapProperty(t *testing.T) {
	s := MustNew(smallConfig())
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		w := s.wrap(x)
		return w >= 0 && w < s.Box
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mod(x, m float64) float64 {
	v := math.Mod(x, m)
	if v < 0 {
		v += m
	}
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func TestPressurePlausible(t *testing.T) {
	// The LJ equation of state at rho=0.8, T~1 gives a reduced pressure
	// of order 1 (slightly positive); assert a loose physical band
	// after some equilibration.
	s := MustNew(smallConfig())
	if err := s.Equilibrate(30); err != nil {
		t.Fatal(err)
	}
	s.Run(30, RunOptions{})
	p := s.Pressure()
	if p < -2 || p > 8 {
		t.Errorf("reduced pressure %v outside plausible LJ-liquid band", p)
	}
}

func TestVirialConsistency(t *testing.T) {
	// Doubling temperature raises the kinetic part of the pressure.
	cold := MustNew(smallConfig())
	hotCfg := smallConfig()
	hotCfg.Temp = 2.0
	hot := MustNew(hotCfg)
	if hot.Pressure() <= cold.Pressure() {
		t.Errorf("hotter system pressure %v not above colder %v", hot.Pressure(), cold.Pressure())
	}
}

// Heterogeneity-aware budget division. When measurements carry device
// classes (NodeCapability set by the cluster layer), the uniform
// per-node division of clampPartitionCaps/expandPartitionCaps is
// replaced by a capability-weighted waterfill that respects each
// node's own clamp range. Homogeneous measurements never reach this
// code: every allocator gates on heteroNodes first, so the legacy
// arithmetic — and the goldens pinned to it — stays untouched.
package core

import (
	"fmt"

	"seesaw/internal/units"
)

// heteroNodes reports whether any measurement carries class
// capability; the cluster layer sets Weight on every node or none.
func heteroNodes(nodes []NodeMeasure) bool {
	for _, n := range nodes {
		if n.NodeCapability.Hetero() {
			return true
		}
	}
	return false
}

// weightOf is a node's capability weight with the homogeneous
// fallback of 1.
func weightOf(n NodeMeasure) float64 {
	if n.Weight > 0 {
		return n.Weight
	}
	return 1
}

// heteroMember is one live node in a partition waterfill.
type heteroMember struct {
	idx    int
	w      float64
	lo, hi units.Watts
}

// heteroMembers splits the live measurements into per-partition
// waterfill members carrying each node's weight and clamp range.
func heteroMembers(nodes []NodeMeasure, c Constraints) (sim, ana []heteroMember) {
	for i, n := range nodes {
		if n.Health == Dead {
			continue
		}
		lo, hi := n.CapRange(c)
		m := heteroMember{idx: i, w: weightOf(n), lo: lo, hi: hi}
		switch n.Role {
		case RoleSimulation:
			sim = append(sim, m)
		case RoleAnalysis:
			ana = append(ana, m)
		default:
			panic(fmt.Sprintf("core: measurement %d (node id %d) has invalid role %d", i, n.NodeID, int(n.Role)))
		}
	}
	return sim, ana
}

// memberBounds sums a partition's feasible cap range.
func memberBounds(ms []heteroMember) (lo, hi units.Watts) {
	for _, m := range ms {
		lo += m.lo
		hi += m.hi
	}
	return lo, hi
}

// waterfill divides total across the members proportionally to their
// weights, pinning members whose proportional share falls outside
// their [lo, hi] range at the violated bound and redistributing the
// rest — the heterogeneous generalization of "divide the partition's
// power evenly over its nodes and clamp". Deterministic: members are
// visited in slice (node-index) order. Results land in caps[m.idx].
//
// When total is below the sum of floors every member pins at lo (the
// overdraft a hardware floor forces anyway); above the sum of
// ceilings, at hi. Callers bound total accordingly to conserve budget.
func waterfill(ms []heteroMember, total units.Watts, caps []units.Watts) {
	remaining := total
	unpinned := append([]heteroMember(nil), ms...)
	shares := make([]units.Watts, 0, len(ms))
	for len(unpinned) > 0 {
		var wsum float64
		for _, m := range unpinned {
			wsum += m.w
		}
		shares = shares[:0]
		for _, m := range unpinned {
			if wsum > 0 {
				shares = append(shares, units.Watts(float64(remaining)*m.w/wsum))
			} else {
				shares = append(shares, remaining/units.Watts(len(unpinned)))
			}
		}
		keep := unpinned[:0]
		pinned := false
		for j, m := range unpinned {
			switch {
			case shares[j] < m.lo:
				caps[m.idx] = m.lo
				remaining -= m.lo
				pinned = true
			case shares[j] > m.hi:
				caps[m.idx] = m.hi
				remaining -= m.hi
				pinned = true
			default:
				caps[m.idx] = shares[j]
				keep = append(keep, m)
			}
		}
		if !pinned {
			return
		}
		unpinned = keep
	}
}

// heteroPartitionCaps is the heterogeneous tail of SeeSAw's
// allocation: given the desired partition totals (already summing to
// the budget), clamp each total into its partition's feasible range —
// moving the excess or deficit to the partner partition, the
// partition-granular analogue of clampPartitionCaps — then waterfill
// each partition across its nodes by capability weight. Dead nodes
// keep a zero cap, as in expandPartitionCaps.
func heteroPartitionCaps(nodes []NodeMeasure, totS, totA units.Watts, c Constraints) []units.Watts {
	sim, ana := heteroMembers(nodes, c)
	caps := make([]units.Watts, len(nodes))
	loS, hiS := memberBounds(sim)
	loA, hiA := memberBounds(ana)

	// The distributable total: the budget, bounded by what the live
	// nodes can hold under their ceilings and forced up to the sum of
	// their floors (hardware pins there regardless).
	target := c.Budget
	if m := hiS + hiA; target > m {
		target = m
	}
	if m := loS + loA; target < m {
		target = m
	}
	totS = units.ClampWatts(totS, loS, hiS)
	totA = units.ClampWatts(totA, loA, hiA)
	if d := target - (totS + totA); d != 0 {
		// Settle the residual on the simulation partition first
		// (deterministic, mirroring clampPartitionCaps), then the rest
		// on the analysis side; by construction of target it fits.
		ns := units.ClampWatts(totS+d, loS, hiS)
		d -= ns - totS
		totS = ns
		totA = units.ClampWatts(totA+d, loA, hiA)
	}

	waterfill(sim, totS, caps)
	waterfill(ana, totA, caps)
	return caps
}

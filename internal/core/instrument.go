// Telemetry instrumentation for power-allocation policies: a wrapper
// that reports every decision's per-node partition caps, shift magnitude
// and direction to a telemetry hub, leaving the wrapped policy's
// behaviour untouched.
package core

import (
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
)

// instrumented decorates a Policy with PolicyDecision telemetry.
type instrumented struct {
	inner Policy
	hub   *telemetry.Hub
	clock func() float64
	// Per-partition power histogram handles, resolved once: Allocate
	// observes one sample per node per interval and must not pay a
	// family label lookup (plus a Role→string conversion) for each.
	powerSimM *telemetry.Metric
	powerAnaM *telemetry.Metric
}

// Instrument wraps p so that every non-nil allocation emits a
// PolicyDecision event (and updates the decision counters) on h. clock
// supplies the virtual time stamped onto events; nil stamps zero.
// Returns p unchanged when h or p is nil, so call sites can wrap
// unconditionally.
func Instrument(p Policy, h *telemetry.Hub, clock func() float64) Policy {
	if h == nil || p == nil {
		return p
	}
	return &instrumented{
		inner: p, hub: h, clock: clock,
		powerSimM: h.NodePowerMetric(RoleSimulation.String()),
		powerAnaM: h.NodePowerMetric(RoleAnalysis.String()),
	}
}

// Name implements Policy.
func (ip *instrumented) Name() string { return ip.inner.Name() }

// Allocate implements Policy: it delegates to the wrapped policy and
// reports the decision. Measurements (per-node power) are also folded
// into the partition power histograms, so the hub sees the same
// (time, power, cap) stream the policy does.
func (ip *instrumented) Allocate(step int, nodes []NodeMeasure) []units.Watts {
	for _, n := range nodes {
		switch n.Role {
		case RoleSimulation:
			ip.powerSimM.Observe(float64(n.Power))
		case RoleAnalysis:
			ip.powerAnaM.Observe(float64(n.Power))
		default:
			ip.hub.NodePower(n.Role.String(), float64(n.Power))
		}
	}
	caps := ip.inner.Allocate(step, nodes)
	if caps == nil {
		return nil
	}
	var prevSim, prevAna, newSim, newAna float64
	var haveSim, haveAna bool
	for i, n := range nodes {
		if i >= len(caps) {
			break
		}
		switch {
		case n.Role == RoleSimulation && !haveSim:
			prevSim, newSim, haveSim = float64(n.Cap), float64(caps[i]), true
		case n.Role == RoleAnalysis && !haveAna:
			prevAna, newAna, haveAna = float64(n.Cap), float64(caps[i]), true
		}
		if haveSim && haveAna {
			break
		}
	}
	t := 0.0
	if ip.clock != nil {
		t = ip.clock()
	}
	ip.hub.PolicyDecision(t, ip.inner.Name(), step, prevSim, prevAna, newSim, newAna)
	return caps
}

// Package workload defines the phase-level workload model used by the
// scale co-simulation (package cosim) for the paper's 128-1024-node
// experiments. It parameterizes the per-synchronization work of LAMMPS
// simulation nodes and of each analysis by the paper's experimental
// knobs:
//
//   - dim: the problem size (total atoms = 1568 * dim^3, Section VII),
//     scaling each node's compute work as dim^3 / simNodes;
//   - scale: the node count, scaling communication phases with the
//     log-depth of collectives — at 1024 nodes communication overhead
//     dominates and simulation power utilization drops, the effect
//     driving Section VII-B3;
//   - j: how many Verlet steps run between synchronizations (non-sync
//     steps skip the synchronization, neighbor and analysis phases).
//
// The reference calibration point is dim=16 on 128 nodes (64 simulation
// + 64 analysis), where the per-step phase times match the instrumented
// mini-MD of package insitu (~4 s between synchronizations, Figure 4d)
// and full MSD is nearly identical to simulation in runtime while VACF,
// RDF, MSD1D and MSD2D run 2-4x faster (Section VII-B).
package workload

import (
	"fmt"
	"math"

	"seesaw/internal/machine"
	"seesaw/internal/units"
)

// phaseDef is one workload phase at the reference point.
type phaseDef struct {
	name string
	// t0 is the phase duration at the reference point (dim=16, 64 sim
	// nodes, unconstrained power).
	t0 units.Seconds
	// computeShare is the fraction of the phase that scales with the
	// per-node work (atoms/node); the rest scales with collective
	// latency depth (log2 of the partition size).
	computeShare float64
	// syncOnly phases run only at synchronization steps (steps 2-5 of
	// the Verlet flow).
	syncOnly bool

	demand     units.Watts
	saturation units.Watts
	sens       float64
	// demandScale and satScale are the extra Watts of demand and
	// saturation the phase gains at large per-node working sets: at
	// dim=16 on 128 nodes the simulation draws only ~105 W (the paper's
	// "consumes 102-104 W" when given 120 W), while at dim=36-48 the
	// bigger per-node problem exercises memory and vector units and the
	// same phases pull and use ~120+ W.
	demandScale units.Watts
	satScale    units.Watts
}

// simPhaseDefs is the per-Verlet-step phase table of a LAMMPS simulation
// node, calibrated to the insitu engine's constants.
var simPhaseDefs = []phaseDef{
	{name: "integrate", t0: 0.20, computeShare: 1.00, demand: 106, saturation: 118, sens: 0.90, demandScale: 16, satScale: 16},
	{name: "sync", t0: 0.25, computeShare: 0.30, syncOnly: true, demand: 105, saturation: 112, sens: 0.10},
	{name: "rebuild", t0: 0.30, computeShare: 0.70, syncOnly: true, demand: 107, saturation: 114, sens: 0.35, demandScale: 6, satScale: 6},
	{name: "neighbor", t0: 0.90, computeShare: 0.45, syncOnly: true, demand: 108, saturation: 118, sens: 0.45, demandScale: 10, satScale: 10},
	{name: "force", t0: 1.30, computeShare: 1.00, demand: 108, saturation: 120, sens: 0.95, demandScale: 20, satScale: 20},
	{name: "output", t0: 1.15, computeShare: 0.20, demand: 105, saturation: 110, sens: 0.10},
}

// anaDef is one analysis's reference duration and resource profile.
type anaDef struct {
	t0           units.Seconds
	computeShare float64
	demand       units.Watts
	saturation   units.Watts
	sens         float64
}

// anaDefs calibrates the analyses at the reference point: MSD comparable
// to the simulation step, the others 2-4x faster, with the resource
// characters of Section VI-C.
var anaDefs = map[string]anaDef{
	"msd":   {t0: 3.35, computeShare: 0.80, demand: 175, saturation: 150, sens: 0.30},
	"rdf":   {t0: 1.03, computeShare: 0.55, demand: 165, saturation: 140, sens: 0.85},
	"vacf":  {t0: 0.82, computeShare: 0.60, demand: 135, saturation: 120, sens: 0.70},
	"msd1d": {t0: 0.77, computeShare: 0.60, demand: 135, saturation: 120, sens: 0.70},
	"msd2d": {t0: 1.15, computeShare: 0.50, demand: 150, saturation: 125, sens: 0.60},
}

// anaHousekeepingDefs are the analysis partition's per-synchronization
// rebuild/neighbor phases (steps 3 and 5 on the analysis side).
var anaHousekeepingDefs = []phaseDef{
	{name: "ana-rebuild", t0: 0.20, computeShare: 0.60, demand: 125, saturation: 118, sens: 0.35},
	{name: "ana-neighbor", t0: 0.08, computeShare: 0.60, demand: 120, saturation: 115, sens: 0.30},
}

// Reference calibration constants.
const (
	refDim      = 16
	refSimNodes = 64
)

// AnalysisTask names an analysis and the interval (in Verlet steps) at
// which it synchronizes with the simulation.
type AnalysisTask struct {
	// Name is one of the names in package analysis.
	Name string
	// Interval is the analysis's j; 0 means the job-wide default.
	Interval int
}

// Spec describes one co-simulated job's workload.
type Spec struct {
	// SimNodes and AnaNodes are the partition sizes.
	SimNodes, AnaNodes int
	// Dim is the LAMMPS problem-size knob (total atoms 1568*dim^3).
	Dim int
	// J is the default synchronization interval in Verlet steps.
	J int
	// Steps is the total number of Verlet steps (the paper runs 400).
	Steps int
	// Analyses lists the analyses (with optional per-analysis
	// intervals, Table II).
	Analyses []AnalysisTask
	// NoSetupTransient disables the simulation's startup overhead. By
	// default the first synchronization intervals carry extra
	// simulation setup time ("In the first couple steps the simulation
	// has extra setup overhead, which is consistent in repeated runs
	// with MSD", Section VII-B1) — the transient that lures the
	// time-aware policy into over-powering the simulation.
	NoSetupTransient bool
}

// setupFactors is the extra simulation time (as a fraction of a step) in
// the first synchronization intervals.
var setupFactors = []float64{0.60, 0.25}

// Validate reports specification errors.
func (s Spec) Validate() error {
	if s.SimNodes <= 0 || s.AnaNodes <= 0 {
		return fmt.Errorf("workload: need positive node counts, got sim=%d ana=%d", s.SimNodes, s.AnaNodes)
	}
	if s.Dim <= 0 {
		return fmt.Errorf("workload: dim must be positive, got %d", s.Dim)
	}
	if s.Steps <= 0 {
		return fmt.Errorf("workload: steps must be positive, got %d", s.Steps)
	}
	if len(s.Analyses) == 0 {
		return fmt.Errorf("workload: at least one analysis required")
	}
	for _, a := range s.Analyses {
		if _, ok := anaDefs[a.Name]; !ok {
			return fmt.Errorf("workload: unknown analysis %q", a.Name)
		}
	}
	return nil
}

// j returns the default interval (>= 1).
func (s Spec) j() int {
	if s.J < 1 {
		return 1
	}
	return s.J
}

// intervalOf returns the effective interval of one analysis task.
func (s Spec) intervalOf(a AnalysisTask) int {
	if a.Interval > 0 {
		return a.Interval
	}
	return s.j()
}

// workFactor is the per-node compute scaling relative to the reference
// point: atoms per node grow as dim^3 and shrink with the partition
// size.
func (s Spec) workFactor() float64 {
	d := float64(s.Dim) / refDim
	return d * d * d * (refSimNodes / float64(s.SimNodes))
}

// latencyFactor is the collective-depth scaling of communication phases
// relative to the reference point.
func (s Spec) latencyFactor() float64 {
	return math.Log2(float64(2*s.SimNodes)) / math.Log2(2*refSimNodes)
}

// scaleDemand grows a phase's power demand with the per-node working
// set: full demandScale is reached asymptotically as dim^3/nodes grows.
func (s Spec) scaleDemand(base, extra units.Watts) units.Watts {
	if extra == 0 {
		return base
	}
	w := s.workFactor()
	if w <= 1 {
		return base
	}
	f := 1 - math.Pow(w, -1.0/3.0)
	return base + units.Watts(float64(extra)*f)
}

// scalePhase converts a phase definition to its duration for this spec.
func (s Spec) scalePhase(d phaseDef) units.Seconds {
	w := s.workFactor()
	l := s.latencyFactor()
	return units.Seconds(float64(d.t0) * (d.computeShare*w + (1-d.computeShare)*l))
}

// scaleSens dilutes a phase's power sensitivity by how much of its time
// is communication at this scale: the latency part of a phase gains
// nothing from power, so as communication grows relative to compute
// (strong scaling, larger machines) the phase's effective sensitivity
// drops — the "utilization limits due to communication overhead" of
// Section VII-B3. Normalized so the reference point keeps its calibrated
// sensitivity.
func (s Spec) scaleSens(d phaseDef) float64 {
	if d.computeShare >= 1 {
		return d.sens
	}
	w := s.workFactor()
	l := s.latencyFactor()
	total := d.computeShare*w + (1-d.computeShare)*l
	if total <= 0 {
		return d.sens
	}
	eff := d.sens * w / total
	if eff > 1 {
		eff = 1
	}
	return eff
}

// SyncSchedule returns the Verlet steps (1-based) at which the
// simulation and analysis partitions synchronize: the union of all
// analyses' intervals.
func (s Spec) SyncSchedule() []int {
	var steps []int
	for step := 1; step <= s.Steps; step++ {
		for _, a := range s.Analyses {
			if step%s.intervalOf(a) == 0 {
				steps = append(steps, step)
				break
			}
		}
	}
	return steps
}

// SimInterval returns the simulation phases making up the interval that
// ends at syncStep, covering the Verlet steps since prevStep
// (exclusive). Non-synchronizing steps contribute only their
// integrate/force/output phases. intervalIdx counts synchronization
// intervals from 0 and selects the startup transient.
func (s Spec) SimInterval(prevStep, syncStep int) []machine.Phase {
	return s.SimIntervalIdx(prevStep, syncStep, prevStep/maxInt(s.j(), 1))
}

// SimIntervalIdx is SimInterval with an explicit interval index for the
// setup transient.
func (s Spec) SimIntervalIdx(prevStep, syncStep, intervalIdx int) []machine.Phase {
	var phases []machine.Phase
	nSteps := syncStep - prevStep
	if nSteps <= 0 {
		return nil
	}
	if !s.NoSetupTransient && intervalIdx < len(setupFactors) {
		// Startup overhead: allocation, file I/O, first-touch costs —
		// low power demand, insensitive to the cap.
		stepT := s.scalePhase(phaseDef{t0: 4.1, computeShare: 0.8})
		phases = append(phases, machine.Phase{
			Name:        "setup",
			Nominal:     units.Seconds(float64(stepT) * setupFactors[intervalIdx]),
			Demand:      108,
			Saturation:  112,
			Sensitivity: 0.20,
		})
	}
	for _, d := range simPhaseDefs {
		count := nSteps
		if d.syncOnly {
			count = 1 // only the synchronizing step runs these
		}
		phases = append(phases, machine.Phase{
			Name:        d.name,
			Nominal:     s.scalePhase(d) * units.Seconds(count),
			Demand:      s.scaleDemand(d.demand, d.demandScale),
			Saturation:  s.scaleDemand(d.saturation, d.satScale),
			Sensitivity: s.scaleSens(d),
		})
	}
	return phases
}

// AnaInterval returns the analysis phases due at syncStep: the
// housekeeping phases plus every analysis whose interval divides the
// step.
func (s Spec) AnaInterval(syncStep int) []machine.Phase {
	var phases []machine.Phase
	for _, d := range anaHousekeepingDefs {
		phases = append(phases, machine.Phase{
			Name:        d.name,
			Nominal:     s.scalePhase(d),
			Demand:      d.demand,
			Saturation:  d.saturation,
			Sensitivity: s.scaleSens(d),
		})
	}
	for _, a := range s.Analyses {
		if syncStep%s.intervalOf(a) != 0 {
			continue
		}
		d := anaDefs[a.Name]
		pd := phaseDef{t0: d.t0, computeShare: d.computeShare, sens: d.sens}
		phases = append(phases, machine.Phase{
			Name:        a.Name,
			Nominal:     s.scalePhase(pd),
			Demand:      d.demand,
			Saturation:  d.saturation,
			Sensitivity: s.scaleSens(pd),
		})
	}
	return phases
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Tasks converts plain analysis names into AnalysisTasks with the
// default interval.
func Tasks(names ...string) []AnalysisTask {
	ts := make([]AnalysisTask, len(names))
	for i, n := range names {
		ts[i] = AnalysisTask{Name: n}
	}
	return ts
}

// AllAnalyses returns the paper's "all" workload: RDF, MSD1D, MSD2D,
// full MSD averaging, and VACF executed in sequence at each
// synchronization.
func AllAnalyses() []AnalysisTask {
	return Tasks("rdf", "msd1d", "msd2d", "msd", "vacf")
}

// AllAnalysesForDim returns the "all" workload valid at the given
// problem size: full MSD's memory needs limit it to dim <= 16
// (Section VII-B), so larger problems run the remaining analyses.
func AllAnalysesForDim(dim int) []AnalysisTask {
	if dim <= 16 {
		return AllAnalyses()
	}
	return Tasks("rdf", "msd1d", "msd2d", "vacf")
}

package mpi

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestScaleSmoke1024 drives the full substrate surface at 1024 ranks in
// one job: sharded collectives over the world group, Split
// sub-communicators with their own shard layouts, and point-to-point
// fan-in. Under -race (make check runs the package that way) this is
// the memory-model audit of the sharded rendezvous — lock-free scratch
// writes, counter cascades, gate releases and mailbox wakeups must all
// form clean happens-before chains at full scale.
func TestScaleSmoke1024(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke test")
	}
	const n = 1024
	err := Run(n, DefaultCost(), func(r *Rank) {
		w := r.World()
		me := r.WorldRank()
		for iter := 0; iter < 3; iter++ {
			w.Barrier()
			sum := w.AllreduceSum([]float64{1, float64(me)})
			if sum[0] != n || sum[1] != n*(n-1)/2 {
				panic(fmt.Sprintf("allreduce-sum wrong at scale: %v", sum))
			}
			if got := w.AllreduceMax([]float64{float64(me)})[0]; got != n-1 {
				panic(fmt.Sprintf("allreduce-max wrong at scale: %v", got))
			}
		}

		// Eight column sub-communicators: 128 members each, so their
		// groups get a shard layout of their own.
		sub := w.Split(me%8, me)
		if got := sub.AllreduceSum([]float64{1})[0]; got != n/8 {
			panic(fmt.Sprintf("sub-communicator allreduce wrong: %v", got))
		}
		sub.Barrier()

		// Fan-in: every rank reports to world rank 0.
		if me == 0 {
			total := 0
			for src := 1; src < n; src++ {
				total += r.Recv(src, 5).(int)
			}
			if total != (n-1)*n/2 {
				panic(fmt.Sprintf("fan-in sum wrong: %d", total))
			}
		} else {
			r.Send(0, 5, me, 8)
		}
		w.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestScaleSmokeCancel1024 parks 1023 ranks in a barrier that can never
// complete (rank 0 never arrives — it is blocked in a receive with no
// matching send) and cancels: every shard gate and the mailbox must be
// force-opened, and the job must return the context error promptly.
func TestScaleSmokeCancel1024(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke test")
	}
	const n = 1024
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		errc <- RunContext(ctx, n, DefaultCost(), nil, func(r *Rank) {
			if r.WorldRank() == 0 {
				r.Recv(1, 9) // never sent
				t.Error("Recv returned after cancellation")
				return
			}
			r.World().Barrier()
			t.Errorf("rank %d passed a barrier missing a member", r.WorldRank())
		})
	}()
	time.Sleep(100 * time.Millisecond) // let the ranks park
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunContext did not return after cancel: scale waiters leaked")
	}
}

package sched

import (
	"context"
	"testing"

	"seesaw/internal/machine"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// twoJobs returns a machine partition with one compute-hungry job (big
// dim) and one light job.
func twoJobs(steps int) Config {
	return Config{
		Jobs: []JobSpec{
			{Name: "hungry", PolicyName: "seesaw", Window: 1, Workload: workload.Spec{
				SimNodes: 8, AnaNodes: 8, Dim: 36, J: 1, Steps: steps,
				Analyses: workload.Tasks("vacf"),
			}},
			{Name: "light", PolicyName: "seesaw", Window: 1, Workload: workload.Spec{
				SimNodes: 8, AnaNodes: 8, Dim: 16, J: 1, Steps: steps,
				Analyses: workload.Tasks("msd1d"),
			}},
		},
		MachineBudget: 110 * 32,
		MinCap:        98,
		MaxCap:        215,
		Epochs:        4,
		Seed:          3,
		Noise:         machine.DefaultNoise(),
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{}).Validate(); err == nil {
		t.Error("empty config should fail")
	}
	bad := twoJobs(20)
	bad.Epochs = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero epochs should fail")
	}
	bad = twoJobs(20)
	bad.MachineBudget = 10
	if err := bad.Validate(); err == nil {
		t.Error("infeasible machine budget should fail")
	}
	bad = twoJobs(20)
	bad.Jobs[0].Workload.Steps = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid job workload should fail")
	}
}

func TestRunBasics(t *testing.T) {
	res, err := Run(context.Background(), twoJobs(40))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.Time <= 0 || j.Energy <= 0 || j.Budget <= 0 {
			t.Errorf("job %s has degenerate result %+v", j.Name, j)
		}
	}
	if res.Makespan < res.Jobs[0].Time || res.Makespan < res.Jobs[1].Time {
		t.Error("makespan below a job's runtime")
	}
}

func TestSystemAwareShiftsBudgetToHungryJob(t *testing.T) {
	cfg := twoJobs(60)
	cfg.SystemAware = true
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	hungry, light := res.Jobs[0], res.Jobs[1]
	// Equal node counts start with equal budgets; the energy-aware
	// system level must hand the compute-hungry dim=36 job more.
	if hungry.Budget <= light.Budget {
		t.Errorf("hungry job budget %v not above light job %v", hungry.Budget, light.Budget)
	}
	// Per-node bounds hold.
	perNode := float64(hungry.Budget) / 16
	if perNode < 98 || perNode > 215 {
		t.Errorf("hungry per-node budget %v out of range", perNode)
	}
}

func TestSystemAwareImprovesHungryJob(t *testing.T) {
	static := twoJobs(60)
	aware := twoJobs(60)
	aware.SystemAware = true
	rs, err := Run(context.Background(), static)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := Run(context.Background(), aware)
	if err != nil {
		t.Fatal(err)
	}
	// The hungry job must get faster when the system level feeds it.
	if ra.Jobs[0].Time >= rs.Jobs[0].Time {
		t.Errorf("hungry job did not benefit: %v vs %v", ra.Jobs[0].Time, rs.Jobs[0].Time)
	}
}

func TestMachineBudgetRespected(t *testing.T) {
	cfg := twoJobs(40)
	cfg.SystemAware = true
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	var total units.Watts
	for _, j := range res.Jobs {
		total += j.Budget
	}
	if float64(total) > float64(cfg.MachineBudget)*1.001 {
		t.Errorf("job budgets %v exceed machine budget %v", total, cfg.MachineBudget)
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	cfg := twoJobs(20)
	cfg.Jobs[0].PolicyName = "bogus"
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Error("unknown intra-job policy should fail")
	}
}

func TestSingleEpochIsStaticSystemLevel(t *testing.T) {
	cfg := twoJobs(40)
	cfg.Epochs = 1
	cfg.SystemAware = true // cannot act with a single epoch
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].Budget != res.Jobs[1].Budget {
		t.Errorf("single-epoch budgets diverged: %v vs %v", res.Jobs[0].Budget, res.Jobs[1].Budget)
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Run(context.Background(), twoJobs(30))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), twoJobs(30))
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Errorf("same config diverged: %v vs %v", a.Makespan, b.Makespan)
	}
}

func TestAllIntraJobPolicies(t *testing.T) {
	for _, name := range []string{"static", "seesaw", "power-aware", "time-aware", ""} {
		cfg := twoJobs(20)
		cfg.Jobs[0].PolicyName = name
		if _, err := Run(context.Background(), cfg); err != nil {
			t.Errorf("policy %q: %v", name, err)
		}
	}
}

func TestMakespanIsMaxJobTime(t *testing.T) {
	res, err := Run(context.Background(), twoJobs(30))
	if err != nil {
		t.Fatal(err)
	}
	max := res.Jobs[0].Time
	if res.Jobs[1].Time > max {
		max = res.Jobs[1].Time
	}
	if res.Makespan != max {
		t.Errorf("makespan %v != max job time %v", res.Makespan, max)
	}
}

package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// BenchmarkCounterHotPath measures one cached counter child under
// concurrent increments. Run with -cpu 1,4,8 for the GOMAXPROCS
// scaling study: the striped cells should hold per-op cost roughly
// flat as writers are added, where a single CAS cell degrades under
// contention.
func BenchmarkCounterHotPath(b *testing.B) {
	h := New(Options{})
	m := h.Registry().Counter("bench_counter_total", "bench").With()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Inc()
		}
	})
	if got, want := m.Value(), float64(b.N); got != want {
		b.Fatalf("count = %g, want %g (striping lost increments)", got, want)
	}
}

// BenchmarkHistogramHotPath measures one cached histogram child under
// concurrent observations (the shape of the rendezvous-wait path).
func BenchmarkHistogramHotPath(b *testing.B) {
	h := New(Options{})
	m := h.Registry().Histogram("bench_hist_seconds", "bench", LatencyBuckets()).With()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			m.Observe(3.2e-4)
		}
	})
	if got, want := m.Count(), uint64(b.N); got != want {
		b.Fatalf("count = %d, want %d (striping lost observations)", got, want)
	}
}

// BenchmarkEmit measures the lock-free event ring under concurrent
// emitters (no sink), the hot path of an eventful run.
func BenchmarkEmit(b *testing.B) {
	h := New(Options{RingSize: 4096})
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Emit(CapWritten{T: 1, Node: "sim", CapW: 110})
		}
	})
}

// BenchmarkEventfulNodes drives the full RAPL telemetry surface the way
// a scaled job does: nodes cap-writing, throttling and violating
// through per-node CapSites every interval, with a subset eventful.
// One op is one interval over all nodes.
func BenchmarkEventfulNodes(b *testing.B) {
	for _, nodes := range []int{256, 1024, 4096} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			h := New(Options{RingSize: 4096})
			sites := make([]*CapSite, nodes)
			for i := range sites {
				// Mirror the drivers: metrics label every node, the event
				// stream follows one representative node per partition.
				sites[i] = h.CapSiteFor(fmt.Sprintf("node-%04d", i), i < 2)
			}
			b.ResetTimer()
			for n := 0; n < b.N; n++ {
				t := float64(n)
				for i, s := range sites {
					s.CapWritten(t, "n", 110+float64(i%8), false)
					if i%16 == 0 {
						s.ThrottleEngaged(t, "n", 140, 110)
					}
					if i%64 == 0 {
						s.BudgetViolation(t, "n", 118, 110)
					}
				}
			}
		})
	}
}

// TestStripedCellsConcurrentWriters pins the striping's correctness
// contract under -race at high concurrency: 1024 writers hammering one
// counter, one Add-gauge and one histogram child concurrently with
// scrapes, and every write accounted for at the end.
func TestStripedCellsConcurrentWriters(t *testing.T) {
	const writers, perWriter = 1024, 64
	h := New(Options{})
	counter := h.Registry().Counter("race_counter_total", "race").With()
	gauge := h.Registry().Gauge("race_gauge", "race").With()
	hist := h.Registry().Histogram("race_hist", "race", []float64{1, 2, 5}).With()

	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-start
			for i := 0; i < perWriter; i++ {
				counter.Inc()
				gauge.Add(2)
				hist.Observe(float64(i % 7))
			}
		}(w)
	}
	// Concurrent scrapes must see consistent (if partial) state.
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 32; i++ {
			_ = counter.Value()
			_ = hist.BucketCounts()
			_ = h.Registry().Snapshot()
		}
	}()
	close(start)
	wg.Wait()
	snapWG.Wait()

	total := float64(writers * perWriter)
	if got := counter.Value(); got != total {
		t.Errorf("counter = %g, want %g", got, total)
	}
	if got := gauge.Value(); got != 2*total {
		t.Errorf("gauge = %g, want %g", got, 2*total)
	}
	if got := hist.Count(); got != uint64(total) {
		t.Errorf("histogram count = %d, want %d", got, uint64(total))
	}
	var bucketSum uint64
	for _, c := range hist.BucketCounts() {
		bucketSum += c
	}
	if bucketSum != uint64(total) {
		t.Errorf("bucket counts sum to %d, want %d", bucketSum, uint64(total))
	}
}

// TestEventRingConcurrentEmitters pins the lock-free ring under -race:
// 1024 concurrent emitters, with readers snapshotting mid-stream; the
// total claimed count must be exact and a quiesced snapshot full.
func TestEventRingConcurrentEmitters(t *testing.T) {
	const emitters, perEmitter = 1024, 16
	h := New(Options{RingSize: 512})
	var wg sync.WaitGroup
	start := make(chan struct{})
	for e := 0; e < emitters; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			<-start
			for i := 0; i < perEmitter; i++ {
				h.Emit(CapWritten{T: float64(i), Node: "sim", CapW: float64(e)})
			}
		}(e)
	}
	var snapWG sync.WaitGroup
	snapWG.Add(1)
	go func() {
		defer snapWG.Done()
		for i := 0; i < 64; i++ {
			if evs := h.Events(); len(evs) > 512 {
				t.Errorf("snapshot exceeds ring: %d events", len(evs))
				return
			}
		}
	}()
	close(start)
	wg.Wait()
	snapWG.Wait()

	if got := h.ringIdx.Load(); got != emitters*perEmitter {
		t.Errorf("claimed %d events, want %d", got, emitters*perEmitter)
	}
	if got := len(h.Events()); got != 512 {
		t.Errorf("quiesced snapshot = %d events, want full ring of 512", got)
	}
}

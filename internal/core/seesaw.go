// SeeSAw: the paper's energy-feedback power allocator (Section IV).
package core

import (
	"fmt"

	"seesaw/internal/stats"
	"seesaw/internal/units"
)

// SeeSAwConfig parameterizes the allocator.
type SeeSAwConfig struct {
	// Constraints carry the budget C and the hardware cap range
	// [delta_min, delta_max].
	Constraints Constraints
	// Window is w: after how many synchronizations power is
	// redistributed, averaging measurements over the window (Section
	// IV-A). Must be >= 1.
	Window int
	// NoEWMA disables the Eq. 3-4 smoothing and jumps straight to the
	// Eq. 2 optimum every allocation. Exists for the ablation harness;
	// the paper argues the EWMA is what guards against noise and
	// anomalies.
	NoEWMA bool
}

// SeeSAw balances the global power budget between the simulation and
// analysis partitions using energy (time x power) as the feedback metric,
// so that both reach synchronization points at the same time.
//
// At every w-th synchronization it:
//
//  1. averages each partition's interval time and power over the last w
//     intervals (T_j, P_j);
//  2. linearizes time-vs-power via alpha = 1/(T*P) (Eq. 1);
//  3. solves for the budget split that equalizes predicted times:
//     P_S = C*alpha_A/(alpha_S+alpha_A), P_A = C*alpha_S/(alpha_S+alpha_A)
//     (Eq. 2) — i.e. power proportional to each task's energy share;
//  4. smooths the step with an exponentially weighted moving average
//     whose weight is the optimal power's budget fraction r = P_OPT/C
//     (Eq. 3): P_new = r*P_OPT + (1-r)*P_prev. (Eq. 4 as printed in the
//     paper reduces to P_OPT exactly; blending with the previous
//     allocation is the evidently intended noise guard — see DESIGN.md.)
//  5. divides each partition's power evenly over its nodes and clamps to
//     [delta_min, delta_max], giving the remainder to the other
//     partition, delta_max taking priority in ties.
type SeeSAw struct {
	cfg SeeSAwConfig

	winSimT, winSimP *stats.RollingWindow
	winAnaT, winAnaP *stats.RollingWindow

	// previous total partition allocations (EWMA state).
	prevSim, prevAna units.Watts
	havePrev         bool

	sinceAlloc int
	allocs     int

	// scratch backs the returned caps slice (Policy ownership
	// contract: valid until the next Allocate).
	scratch []units.Watts
}

// NewSeeSAw returns a SeeSAw allocator.
func NewSeeSAw(cfg SeeSAwConfig) (*SeeSAw, error) {
	if cfg.Window < 1 {
		return nil, fmt.Errorf("core: seesaw window must be >= 1, got %d", cfg.Window)
	}
	if err := cfg.Constraints.Validate(0); err != nil {
		return nil, err
	}
	return &SeeSAw{
		cfg:     cfg,
		winSimT: stats.NewRollingWindow(cfg.Window),
		winSimP: stats.NewRollingWindow(cfg.Window),
		winAnaT: stats.NewRollingWindow(cfg.Window),
		winAnaP: stats.NewRollingWindow(cfg.Window),
	}, nil
}

// MustNewSeeSAw is NewSeeSAw that panics on configuration errors.
func MustNewSeeSAw(cfg SeeSAwConfig) *SeeSAw {
	s, err := NewSeeSAw(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Name implements Policy.
func (*SeeSAw) Name() string { return "seesaw" }

// Allocations reports how many times power was actually redistributed.
func (s *SeeSAw) Allocations() int { return s.allocs }

// Allocate implements Policy.
func (s *SeeSAw) Allocate(step int, nodes []NodeMeasure) []units.Watts {
	simT, anaT, simP, anaP, nSim, nAna := partitionTotals(nodes)
	if nSim == 0 || nAna == 0 {
		return nil
	}
	// Fold this interval into the measurement windows.
	s.winSimT.Add(float64(simT))
	s.winSimP.Add(float64(simP))
	s.winAnaT.Add(float64(anaT))
	s.winAnaP.Add(float64(anaP))

	s.sinceAlloc++
	if s.sinceAlloc < s.cfg.Window {
		return nil
	}
	s.sinceAlloc = 0

	// Window averages (Section IV-A).
	tS := s.winSimT.Mean()
	pS := s.winSimP.Mean()
	tA := s.winAnaT.Mean()
	pA := s.winAnaP.Mean()
	if tS <= 0 || tA <= 0 || pS <= 0 || pA <= 0 {
		return nil
	}

	C := float64(s.cfg.Constraints.Budget)

	// Eq. 1-2: optimal split proportional to energy share.
	optS, optA := OptimalSplit(units.Watts(C), units.Seconds(tS), units.Watts(pS), units.Seconds(tA), units.Watts(pA))

	// Eq. 3-4: EWMA with weight r = P_OPT / C against the previous
	// allocation.
	if !s.havePrev {
		s.prevSim = units.Watts(pS)
		s.prevAna = units.Watts(pA)
		s.havePrev = true
	}
	newSim, newAna := optS, optA
	if !s.cfg.NoEWMA {
		rS := float64(optS) / C
		rA := float64(optA) / C
		newSim = units.Watts(stats.Blend(float64(optS), float64(s.prevSim), rS))
		newAna = units.Watts(stats.Blend(float64(optA), float64(s.prevAna), rA))
	}

	// Re-normalize to the budget: the two independent EWMAs may not sum
	// exactly to C.
	total := newSim + newAna
	if total > 0 {
		newSim = newSim * s.cfg.Constraints.Budget / total
		newAna = s.cfg.Constraints.Budget - newSim
	}
	s.prevSim, s.prevAna = newSim, newAna

	if heteroNodes(nodes) {
		// Mixed device classes: divide each partition's power across
		// its nodes by capability weight instead of evenly, respecting
		// every node's own clamp range.
		s.allocs++
		return heteroPartitionCaps(nodes, newSim, newAna, s.cfg.Constraints)
	}

	// Per-node division and delta clamping.
	perSim := newSim / units.Watts(nSim)
	perAna := newAna / units.Watts(nAna)
	perSim, perAna = clampPartitionCaps(perSim, perAna, nSim, nAna, s.cfg.Constraints)

	s.allocs++
	s.scratch = expandPartitionCapsInto(s.scratch, nodes, perSim, perAna)
	return s.scratch
}

// OptimalSplit solves the paper's Eq. 1-2 for the budget split that the
// linearized model predicts equalizes the two tasks' times: given the
// last interval's times and powers, each task receives power
// proportional to its energy share E/(E_S+E_A).
func OptimalSplit(budget units.Watts, tS units.Seconds, pS units.Watts, tA units.Seconds, pA units.Watts) (units.Watts, units.Watts) {
	eS := float64(tS) * float64(pS)
	eA := float64(tA) * float64(pA)
	if eS <= 0 || eA <= 0 {
		half := budget / 2
		return half, budget - half
	}
	// alpha = 1/E; P_S = C*alpha_A/(alpha_S+alpha_A) = C*E_S/(E_S+E_A).
	s := units.Watts(float64(budget) * eS / (eS + eA))
	return s, budget - s
}

// PredictEqualTime returns the time at which both tasks are predicted to
// reach the next synchronization under the optimal split, per the linear
// model t = 1/(alpha*P): with P_S = C*E_S/(E_S+E_A),
// t* = (E_S+E_A)/C. Used by the Fig. 2 illustration.
func PredictEqualTime(budget units.Watts, tS units.Seconds, pS units.Watts, tA units.Seconds, pA units.Watts) units.Seconds {
	if budget <= 0 {
		return 0
	}
	eS := float64(tS) * float64(pS)
	eA := float64(tA) * float64(pA)
	return units.Seconds((eS + eA) / float64(budget))
}

// Package campaign is the experiment-matrix execution engine: an
// experiment enumerates independent Cells — one per (workload, scale,
// policy, seed) point, each a pure function of its own RNG seed — and
// the engine runs them on a bounded worker pool, assembling results in
// cell order so rendered reports are byte-identical regardless of the
// concurrency level.
//
// The design follows the simulator-as-campaign-engine pattern (SPARS,
// SIM-SITU): the co-simulation makes one cell cheap; the campaign layer
// makes the full evaluation matrix cheap. Cells must not share mutable
// state — determinism across -jobs settings depends on it.
//
// Cancellation is first-class: cancelling the context stops feeding new
// cells, lets in-flight cells unwind (they receive the same context),
// and marks never-started cells as skipped, so callers can render a
// partial report after Ctrl-C. A panicking cell is recovered and
// reported as that cell's error without tearing down the pool.
package campaign

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"seesaw/internal/telemetry"
)

// Cell is one independent unit of campaign work.
type Cell struct {
	// Key identifies the cell in progress reports and errors, e.g.
	// "fig3a/msd1d/seesaw/r2".
	Key string
	// Seed is the cell's RNG seed, carried for introspection; Run is
	// expected to be deterministic given it.
	Seed uint64
	// Run executes the cell. It must honor ctx cancellation and must not
	// touch state shared with other cells.
	Run func(ctx context.Context) (any, error)
}

// Options tune one engine invocation.
type Options struct {
	// Name labels the campaign in telemetry (usually the experiment id).
	Name string
	// Jobs bounds worker concurrency; <= 0 means runtime.GOMAXPROCS(0).
	Jobs int
	// Telemetry, when non-nil, receives live progress: per-cell status
	// counters, an in-flight gauge, duration histograms and one
	// CampaignCell event per finished cell. Nil disables instrumentation
	// at no cost.
	Telemetry *telemetry.Hub
	// WorkerState, when non-nil, is invoked once per worker goroutine
	// before it runs any cell; the returned value is visible to that
	// worker's cells through WorkerValue(ctx). It exists for per-worker
	// reusable scratch (the rollout layer's pooled environments) —
	// state that is expensive to build, must not be shared across
	// workers, and must not leak between campaigns. Cells must not let
	// worker state influence their results: determinism across -jobs
	// settings still requires every cell to be a pure function of its
	// inputs. If the value implements Close(), it is closed when the
	// worker exits.
	WorkerState func() any
}

// workerKey carries a worker's state in its cells' contexts.
type workerKey struct{}

// WorkerValue returns the value Options.WorkerState produced for the
// worker running this cell, or nil when no worker state is configured
// (including cells run outside the campaign engine).
func WorkerValue(ctx context.Context) any {
	return ctx.Value(workerKey{})
}

// jobs returns the effective worker count.
func (o Options) jobs() int {
	if o.Jobs > 0 {
		return o.Jobs
	}
	return runtime.GOMAXPROCS(0)
}

// Result is one cell's outcome, in the cell's enumeration slot.
type Result struct {
	// Key echoes the cell's key.
	Key string
	// Value is Run's return value (nil on error or skip).
	Value any
	// Err is the cell's failure: Run's error, a recovered panic, or the
	// context error for cells cancelled before starting.
	Err error
	// Started reports whether the cell's Run was invoked at all; false
	// means the campaign was cancelled while the cell was still queued.
	Started bool

	// seconds is the cell's wall-clock duration, kept for telemetry.
	seconds float64
}

// Status returns the cell's telemetry status label.
func (r Result) Status() string {
	switch {
	case !r.Started:
		return "skipped"
	case r.Err != nil:
		return "error"
	default:
		return "ok"
	}
}

// Run executes the cells on a worker pool of o.jobs() goroutines and
// returns one Result per cell, in cell order. The returned error is the
// first failed cell's error (in cell order, not completion order); when
// no cell failed but the context was cancelled, it is ctx.Err(). The
// Result slice is always complete, so callers can assemble whatever
// finished.
func Run(ctx context.Context, cells []Cell, o Options) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	results := make([]Result, len(cells))
	for i, c := range cells {
		results[i].Key = c.Key
	}
	if len(cells) == 0 {
		return results, ctx.Err()
	}

	jobs := o.jobs()
	if jobs > len(cells) {
		jobs = len(cells)
	}

	// Feed indices in order; stop feeding on cancellation so queued
	// cells are skipped rather than started.
	idxc := make(chan int)
	go func() {
		defer close(idxc)
		for i := range cells {
			select {
			case idxc <- i:
			case <-ctx.Done():
				return
			}
		}
	}()

	var done int // finished cells, for progress reporting
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			wctx := ctx
			if o.WorkerState != nil {
				ws := o.WorkerState()
				if c, ok := ws.(interface{ Close() }); ok {
					defer c.Close()
				}
				wctx = context.WithValue(ctx, workerKey{}, ws)
			}
			for i := range idxc {
				r := runCell(wctx, o, cells[i])
				results[i] = r
				mu.Lock()
				done++
				d := done
				mu.Unlock()
				o.Telemetry.CampaignCellDone(o.Name, r.Key, r.Status(), r.seconds, d, len(cells), r.Started)
			}
		}()
	}
	wg.Wait()

	// Cells the feeder never handed out: mark skipped.
	if err := ctx.Err(); err != nil {
		for i := range results {
			if !results[i].Started && results[i].Err == nil {
				results[i].Err = err
			}
		}
	}

	// First started cell failure in cell order wins. Cells that failed
	// only because the campaign was cancelled (their error unwraps to the
	// context error) are not genuine failures; the cancellation itself is
	// reported instead, after the scan.
	ctxErr := ctx.Err()
	for _, r := range results {
		if r.Started && r.Err != nil && !(ctxErr != nil && errors.Is(r.Err, ctxErr)) {
			return results, fmt.Errorf("campaign %s: cell %s: %w", o.Name, r.Key, r.Err)
		}
	}
	return results, ctxErr
}

// runCell executes one cell with panic recovery and telemetry.
func runCell(ctx context.Context, o Options, c Cell) (res Result) {
	res.Key = c.Key
	if err := ctx.Err(); err != nil {
		// Drawn from the queue concurrently with cancellation.
		res.Err = err
		return res
	}
	res.Started = true
	o.Telemetry.CampaignCellStarted(o.Name)
	start := time.Now()
	defer func() {
		res.seconds = time.Since(start).Seconds()
		if rec := recover(); rec != nil {
			res.Value = nil
			res.Err = fmt.Errorf("cell %q panicked: %v", c.Key, rec)
		}
	}()
	res.Value, res.Err = c.Run(ctx)
	return res
}

// Collect is a typed convenience over Run: it unwraps every cell value
// to T and fails on the first cell error (including cancellation), for
// campaigns whose callers need all results or none.
func Collect[T any](ctx context.Context, cells []Cell, o Options) ([]T, error) {
	rs, err := Run(ctx, cells, o)
	if err != nil {
		return nil, err
	}
	out := make([]T, len(rs))
	for i, r := range rs {
		v, ok := r.Value.(T)
		if !ok {
			return nil, fmt.Errorf("campaign %s: cell %s returned %T, want %T", o.Name, r.Key, r.Value, out[i])
		}
		out[i] = v
	}
	return out, nil
}

package rollout

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"

	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// TestEnvPooledMatchesFresh pins the episode-reuse contract: replaying
// a spec on one Env — pooled cluster, pooled scratch, parked driver
// goroutine — produces byte-identical reports to a fresh in-loop run,
// every time, for both drivers.
func TestEnvPooledMatchesFresh(t *testing.T) {
	t.Run("space-shared", func(t *testing.T) {
		spec := testSpec("", t)
		n := spec.Workload.SimNodes + spec.Workload.AnaNodes
		cons := spec.constraints(n)

		freshPol, err := policy.New("seesaw", cons, 1)
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := cosim.Run(context.Background(), cosim.Config{
			Spec:        spec.Workload,
			Policy:      freshPol,
			Constraints: cons,
			CapMode:     cosim.CapLong,
			Seed:        spec.Seed,
			RunSeed:     spec.RunSeed,
			Noise:       spec.Noise,
			Faults:      spec.Faults,
		})
		if err != nil {
			t.Fatal(err)
		}

		env := NewEnv()
		defer env.Close()
		for round := 0; round < 3; round++ {
			pol, err := policy.New("seesaw", cons, 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := env.Rollout(context.Background(), spec, pol)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if res.TotalTime != fresh.TotalTime || res.TotalEnergy != fresh.TotalEnergy {
				t.Fatalf("round %d totals (%v s, %v J) != fresh (%v s, %v J)",
					round, res.TotalTime, res.TotalEnergy, fresh.TotalTime, fresh.TotalEnergy)
			}
			if !bytes.Equal(syncCSV(t, res.SyncLog), syncCSV(t, fresh.SyncLog)) {
				t.Fatalf("round %d SyncLog diverges from fresh run", round)
			}
		}
	})

	t.Run("workflow", func(t *testing.T) {
		spec := testSpec("dag", t)
		cons := spec.constraints(spec.Workload.SimNodes + spec.Workload.AnaNodes)
		_ = cons

		baselinePol, err := policy.New("seesaw", spec.constraints(8), 1)
		if err != nil {
			t.Fatal(err)
		}
		baseline, err := Run(context.Background(), spec, baselinePol)
		if err != nil {
			t.Fatal(err)
		}

		env := NewEnv()
		defer env.Close()
		for round := 0; round < 2; round++ {
			pol, err := policy.New("seesaw", spec.constraints(8), 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := env.Rollout(context.Background(), spec, pol)
			if err != nil {
				t.Fatalf("round %d: %v", round, err)
			}
			if res.TotalTime != baseline.TotalTime || res.TotalEnergy != baseline.TotalEnergy {
				t.Fatalf("round %d totals diverge from first run", round)
			}
			if !bytes.Equal(syncCSV(t, res.SyncLog), syncCSV(t, baseline.SyncLog)) {
				t.Fatalf("round %d SyncLog diverges from first run", round)
			}
		}
	})
}

// TestEnvPooledAcrossEpisodeParams pins that one pooled Episode serves
// points differing only in budget/policy: interleaving different
// budgets on one Env must reproduce each budget's fresh-run bytes.
func TestEnvPooledAcrossEpisodeParams(t *testing.T) {
	base := testSpec("", t)
	budgets := []units.Watts{105, 110, 120}

	fresh := map[units.Watts][]byte{}
	for _, b := range budgets {
		spec := base
		spec.CapPerNode = b
		pol, err := policy.New("seesaw", spec.constraints(8), 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(context.Background(), spec, pol)
		if err != nil {
			t.Fatal(err)
		}
		fresh[b] = syncCSV(t, res.SyncLog)
	}

	env := NewEnv()
	defer env.Close()
	// Interleave budgets twice over; every episode reuses the same
	// pooled cluster because the job key ignores the budget.
	for round := 0; round < 2; round++ {
		for _, b := range budgets {
			spec := base
			spec.CapPerNode = b
			pol, err := policy.New("seesaw", spec.constraints(8), 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := env.Rollout(context.Background(), spec, pol)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(syncCSV(t, res.SyncLog), fresh[b]) {
				t.Fatalf("round %d budget %v: pooled SyncLog diverges from fresh run", round, b)
			}
		}
	}
}

// TestStepZeroAllocs is the fast path's allocation gate: once an
// episode is warm, advancing it — driver goroutine, rendezvous,
// observation publication and the whole cosim interval loop — must not
// allocate at all.
func TestStepZeroAllocs(t *testing.T) {
	spec := Spec{
		Workload: workload.Spec{
			SimNodes: 4, AnaNodes: 4,
			Dim: 8, J: 1, Steps: 4000,
			Analyses: workload.Tasks("msd"),
		},
		Seed:    21,
		RunSeed: 22,
		Noise:   machine.DefaultNoise(),
	}
	env := NewEnv()
	defer env.Close()
	if _, err := env.Reset(spec); err != nil {
		t.Fatal(err)
	}
	// Warm the pools: measure buffers, RAPL windows, sync log backing.
	for i := 0; i < 200; i++ {
		if _, done := env.Step(nil); done {
			t.Fatal("episode ended during warmup")
		}
	}
	allocs := testing.AllocsPerRun(1000, func() {
		if _, done := env.Step(nil); done {
			t.Fatal("episode ended during measurement")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.1f objects/step, want 0", allocs)
	}
}

// TestEnvPooledHammer drives thousands of pooled episodes through one
// Env — interleaved with mid-episode abandons and context cancels — to
// shake out rendezvous races (run under -race in CI) and pool
// corruption across episode boundaries.
func TestEnvPooledHammer(t *testing.T) {
	episodes := 10000
	if testing.Short() {
		episodes = 500
	}
	spec := Spec{
		Workload: workload.Spec{
			SimNodes: 2, AnaNodes: 2,
			Dim: 8, J: 1, Steps: 6,
			Analyses: workload.Tasks("msd"),
		},
		Seed:    31,
		RunSeed: 32,
		Noise:   machine.DefaultNoise(),
	}
	pol, err := policy.New("seesaw", spec.constraints(4), 1)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(context.Background(), spec, pol)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := syncCSV(t, want.SyncLog)

	env := NewEnv()
	defer env.Close()
	var completed atomic.Int64
	for i := 0; i < episodes; i++ {
		switch i % 5 {
		case 3:
			// Abandon mid-episode: the next Reset must unwind cleanly
			// and the pool must replay from scratch.
			if _, err := env.Reset(spec); err != nil {
				t.Fatal(err)
			}
			env.Step(nil)
		case 4:
			// Cancel mid-episode: Step reports done promptly and
			// Result surfaces the context error.
			ctx, cancel := context.WithCancel(context.Background())
			if _, err := env.ResetContext(ctx, spec); err != nil {
				t.Fatal(err)
			}
			env.Step(nil)
			cancel()
			for {
				if _, done := env.Step(nil); done {
					break
				}
			}
			if _, err := env.Result(); err == nil {
				t.Fatal("cancelled episode reported no error")
			}
		default:
			p, err := policy.New("seesaw", spec.constraints(4), 1)
			if err != nil {
				t.Fatal(err)
			}
			res, err := env.Rollout(context.Background(), spec, p)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(syncCSV(t, res.SyncLog), wantCSV) {
				t.Fatalf("episode %d diverges after pooled replay", i)
			}
			completed.Add(1)
		}
	}
	if completed.Load() == 0 {
		t.Fatal("no episodes completed")
	}
}

// TestObservationClone pins the retention contract: a Clone stays
// intact when the Env advances and overwrites its buffers.
func TestObservationClone(t *testing.T) {
	spec := testSpec("", t)
	env := NewEnv()
	defer env.Close()
	obs, err := env.Reset(spec)
	if err != nil {
		t.Fatal(err)
	}
	clone := obs.Clone()
	if &clone.Measures[0] == &obs.Measures[0] {
		t.Fatal("Clone aliases the Env's buffer")
	}
	snapshot := append([]units.Watts(nil), func() []units.Watts {
		caps := make([]units.Watts, len(clone.Measures))
		for i, m := range clone.Measures {
			caps[i] = m.Cap
		}
		return caps
	}()...)
	// Advance well past the double buffer's reuse horizon.
	for i := 0; i < 4; i++ {
		if _, done := env.Step(nil); done {
			t.Fatal("episode ended early")
		}
	}
	for i, m := range clone.Measures {
		if m.Cap != snapshot[i] {
			t.Fatalf("clone mutated at node %d after steps", i)
		}
	}
}

// TestResetContextCancelled pins satellite semantics: the context
// passed to ResetContext governs the whole episode.
func TestResetContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	env := NewEnv()
	defer env.Close()
	if _, err := env.ResetContext(ctx, testSpec("", t)); err == nil {
		t.Fatal("Reset under a cancelled context succeeded")
	}
}

// TestGridKeyExtras pins the non-default key segments: grids differing
// in steps, j, analyses or seed can never collide on a point key, while
// default grids keep their established key shape.
func TestGridKeyExtras(t *testing.T) {
	def, err := Grid{Policies: []string{"seesaw"}}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(def) != 1 {
		t.Fatalf("default grid expands to %d points, want 1", len(def))
	}
	if def[0].Key != "n8/b110/w1/dim16/faults=none/topo=space-shared/seesaw" {
		t.Fatalf("default key changed: %q", def[0].Key)
	}

	varied, err := Grid{
		Policies: []string{"seesaw"},
		Steps:    12,
		J:        3,
		Analyses: []string{"msd", "rdf"},
		Seed:     7,
	}.Expand()
	if err != nil {
		t.Fatal(err)
	}
	want := "n8/b110/w1/dim16/steps12/j3/an=msd+rdf/seed7/faults=none/topo=space-shared/seesaw"
	if varied[0].Key != want {
		t.Fatalf("varied key = %q, want %q", varied[0].Key, want)
	}
}

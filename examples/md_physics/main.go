// MD physics showcase: the miniature LAMMPS engine is a real molecular
// dynamics code, not a timing stub. This example equilibrates the
// water-box-with-ions benchmark and validates three pieces of physics
// the in-situ analyses depend on:
//
//   - NVE energy conservation through the velocity-Verlet integrator;
//   - the equilibrium speed distribution against Maxwell-Boltzmann;
//   - a liquid-like radial distribution function (excluded core, first
//     solvation peak, g(r) -> 1 tail).
package main

import (
	"fmt"
	"log"
	"math"
	"os"

	"seesaw/internal/analysis"
	"seesaw/internal/lammps"
	"seesaw/internal/trace"
)

func main() {
	cfg := lammps.DefaultConfig()
	sys, err := lammps.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("water-box benchmark: %d atoms, box %.2f sigma, T*=%.1f, rho*=%.1f\n\n",
		cfg.Atoms, sys.Box, cfg.Temp, cfg.Density)

	// Equilibrate under a thermostat, then a production NVE run feeding
	// the analyses.
	if err := sys.Equilibrate(100); err != nil {
		log.Fatal(err)
	}
	e0 := sys.TotalEnergy()

	vhist := analysis.NewVelocityHistogram(16, 5)
	rdf := analysis.NewRDF(32, 0)
	sys.Run(150, lammps.RunOptions{EveryStep: func(step int, s *lammps.System) {
		if step%5 == 0 {
			f := s.Snapshot()
			vhist.Consume(&f)
			rdf.Consume(&f)
		}
	}})

	th := sys.ThermoLine()
	drift := math.Abs(sys.TotalEnergy()-e0) / math.Abs(e0) * 100
	sum := trace.NewTable("Production run (150 NVE steps)", "quantity", "value")
	sum.AddRow("temperature T*", fmt.Sprintf("%.3f", th.Temp))
	sum.AddRow("pressure P*", fmt.Sprintf("%.3f", th.Pressure))
	sum.AddRow("total energy drift", fmt.Sprintf("%.4f%%", drift))
	sum.AddRow("net momentum |p|", fmt.Sprintf("%.2e", math.Sqrt(th.MomentumX*th.MomentumX+th.MomentumY*th.MomentumY+th.MomentumZ*th.MomentumZ)))
	if err := sum.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Speed distribution vs Maxwell-Boltzmann.
	fmt.Println()
	tbl := trace.NewTable("Speed distribution vs Maxwell-Boltzmann", "v", "measured", "theory")
	pdf := vhist.Result()
	for i, got := range pdf {
		v := (float64(i) + 0.5) * 5.0 / 16
		tbl.AddRow(fmt.Sprintf("%.2f", v), fmt.Sprintf("%.3f", got),
			fmt.Sprintf("%.3f", analysis.MaxwellBoltzmannPDF(v, th.Temp)))
	}
	if err := tbl.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// RDF shape: contact exclusion, first peak, unit tail.
	fmt.Println()
	g := rdf.Result()[:32] // hydronium-solvent component
	peak, peakAt := 0.0, 0.0
	for b, v := range g {
		if v > peak {
			peak, peakAt = v, (float64(b)+0.5)*sys.Box/2/32
		}
	}
	fmt.Printf("hydronium-solvent g(r): contact %.2f, first peak %.2f at r=%.2f sigma, tail %.2f\n",
		g[0], peak, peakAt, g[30])
	fmt.Println("(expected: ~0 contact, peak > 1 near r~1.1 sigma, tail ~1)")
}

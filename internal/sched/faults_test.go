package sched

import (
	"context"
	"testing"

	"seesaw/internal/fault"
)

// TestFaultPlanValidatedPerJob: plans are checked against each job's own
// node count, not the machine's.
func TestFaultPlanValidatedPerJob(t *testing.T) {
	cfg := twoJobs(40)
	cfg.Jobs[0].Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.Kill, Node: 16, Sync: 1}}}
	if err := cfg.Validate(); err == nil {
		t.Error("kill target outside the job's 16 nodes should fail validation")
	}
}

// TestKillPersistsAcrossEpochs: a kill scheduled inside epoch 1 must
// keep the node dead through the remaining epochs. With 40 steps over 4
// epochs each slice covers syncs 1..10 (J=1), so sync 15 lands mid
// epoch 1; only the per-epoch rebase (past kills clamp to sync 1) keeps
// the node dead in epochs 2 and 3 — an unrebased plan would never fire
// again and the job would finish with all 16 nodes alive.
func TestKillPersistsAcrossEpochs(t *testing.T) {
	clean, err := Run(context.Background(), twoJobs(40))
	if err != nil {
		t.Fatal(err)
	}
	cfg := twoJobs(40)
	cfg.Jobs[0].Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.Kill, Node: 3, Sync: 15}}}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].AliveNodes != 15 {
		t.Errorf("faulted job AliveNodes = %d, want 15", res.Jobs[0].AliveNodes)
	}
	if res.Jobs[1].AliveNodes != 16 {
		t.Errorf("clean job AliveNodes = %d, want 16", res.Jobs[1].AliveNodes)
	}
	// The survivors inherit the dead node's work, so the crippled job
	// slows down while its neighbor is untouched.
	if res.Jobs[0].Time <= clean.Jobs[0].Time {
		t.Errorf("crippled job %v not slower than clean %v", res.Jobs[0].Time, clean.Jobs[0].Time)
	}
}

// TestSlowExcursionSpansEpochBoundary: a slow window straddling an
// epoch boundary clips correctly on rebase and the job still completes
// slower than its fault-free twin.
func TestSlowExcursionSpansEpochBoundary(t *testing.T) {
	clean, err := Run(context.Background(), twoJobs(40))
	if err != nil {
		t.Fatal(err)
	}
	cfg := twoJobs(40)
	// Syncs 8..13: starts in epoch 0, ends in epoch 1.
	cfg.Jobs[1].Faults = &fault.Plan{Events: []fault.Event{{Kind: fault.Slow, Node: 9, Sync: 8, Factor: 2.5, Window: 6}}}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[1].AliveNodes != 16 {
		t.Errorf("excursion must not kill: AliveNodes = %d", res.Jobs[1].AliveNodes)
	}
	if res.Jobs[1].Time <= clean.Jobs[1].Time {
		t.Errorf("degraded job %v not slower than clean %v", res.Jobs[1].Time, clean.Jobs[1].Time)
	}
}

// TestSystemAwareCeilingTracksAttrition: under the energy-proportional
// system level, a job that lost nodes can no longer be granted more
// than MaxCap per live node.
func TestSystemAwareCeilingTracksAttrition(t *testing.T) {
	cfg := twoJobs(60)
	cfg.SystemAware = true
	cfg.Jobs[0].Faults = &fault.Plan{Events: []fault.Event{
		{Kind: fault.Kill, Node: 2, Sync: 3},
		{Kind: fault.Kill, Node: 10, Sync: 4},
	}}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Jobs[0].AliveNodes != 14 {
		t.Fatalf("AliveNodes = %d, want 14", res.Jobs[0].AliveNodes)
	}
	if hi := cfg.MaxCap * 14; res.Jobs[0].Budget > hi {
		t.Errorf("crippled job budget %v exceeds live ceiling %v", res.Jobs[0].Budget, hi)
	}
}

package cosim

import (
	"context"
	"testing"
	"testing/quick"

	"seesaw/internal/core"
	"seesaw/internal/machine"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

func smallSpec() workload.Spec {
	return workload.Spec{SimNodes: 4, AnaNodes: 4, Dim: 16, J: 1, Steps: 30, Analyses: workload.Tasks("msd")}
}

func smallCons() core.Constraints {
	return core.Constraints{Budget: 110 * 8, MinCap: 98, MaxCap: 215}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Error("empty config should fail")
	}
	// Budget below min caps.
	_, err := Run(context.Background(), Config{Spec: smallSpec(), CapMode: CapLong,
		Constraints: core.Constraints{Budget: 10, MinCap: 98, MaxCap: 215}})
	if err == nil {
		t.Error("infeasible budget should fail")
	}
}

func TestStaticRunBasics(t *testing.T) {
	res, err := Run(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Error("non-positive total time")
	}
	if res.SyncLog.Len() != 30 {
		t.Errorf("sync records = %d, want 30 (j=1)", res.SyncLog.Len())
	}
	if res.TotalEnergy <= 0 {
		t.Error("no energy accounted")
	}
	// Static: caps never move.
	for _, c := range res.FinalCaps {
		if c != 110 {
			t.Errorf("static final cap = %v, want 110", c)
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong,
		Seed: 7, RunSeed: 8, Noise: machine.DefaultNoise()}
	a, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalTime != b.TotalTime || a.TotalEnergy != b.TotalEnergy {
		t.Errorf("same config diverged: %v/%v vs %v/%v", a.TotalTime, a.TotalEnergy, b.TotalTime, b.TotalEnergy)
	}
}

func TestRunSeedChangesOutcome(t *testing.T) {
	base := Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong,
		Seed: 7, Noise: machine.DefaultNoise()}
	a, _ := Run(context.Background(), base)
	base.RunSeed = 99
	b, _ := Run(context.Background(), base)
	if a.TotalTime == b.TotalTime {
		t.Error("different run seeds should perturb the runtime")
	}
}

func TestCapNone(t *testing.T) {
	res, err := Run(context.Background(), Config{Spec: smallSpec(), CapMode: CapNone, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.FinalCaps {
		if c != 0 {
			t.Errorf("uncapped run has cap %v", c)
		}
	}
	// Uncapped must be faster than a 110 W capped run.
	capped, err := Run(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime >= capped.TotalTime {
		t.Errorf("uncapped %v not faster than capped %v", res.TotalTime, capped.TotalTime)
	}
}

func TestCapLongShortSlower(t *testing.T) {
	long, err := Run(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	dual, err := Run(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLongShort, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Dual caps regulate slightly below the request: never faster.
	if dual.TotalTime < long.TotalTime {
		t.Errorf("dual-cap run %v faster than long-cap %v", dual.TotalTime, long.TotalTime)
	}
}

func TestSeeSAwCapsConserveBudget(t *testing.T) {
	ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: smallCons(), Window: 1})
	res, err := Run(context.Background(), Config{Spec: smallSpec(), Policy: ss, Constraints: smallCons(),
		CapMode: CapLong, Seed: 3, Noise: machine.DefaultNoise()})
	if err != nil {
		t.Fatal(err)
	}
	var total units.Watts
	for _, c := range res.FinalCaps {
		if c < 98 || c > 215 {
			t.Errorf("final cap %v outside hardware range", c)
		}
		total += c
	}
	if float64(total) > float64(smallCons().Budget)+1e-6 {
		t.Errorf("final caps %v exceed budget %v", total, smallCons().Budget)
	}
}

func TestSlackBounds(t *testing.T) {
	res, err := Run(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong, Seed: 4,
		Noise: machine.DefaultNoise()})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.SyncLog.Records {
		if s := r.Slack(); s < 0 || s > 1 {
			t.Fatalf("slack %v outside [0,1] at step %d", s, r.Step)
		}
	}
}

func TestTrailingPartialInterval(t *testing.T) {
	spec := smallSpec()
	spec.J = 7
	spec.Steps = 30 // syncs at 7,14,21,28; tail 29-30
	res, err := Run(context.Background(), Config{Spec: spec, Constraints: smallCons(), CapMode: CapLong, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// 4 syncs + 1 tail interval.
	if got := res.SyncLog.Len(); got != 5 {
		t.Errorf("records = %d, want 5", got)
	}
}

func TestTraceSegments(t *testing.T) {
	res, err := Run(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong, Seed: 6,
		TraceSegments: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SimSegments) == 0 || len(res.AnaSegments) == 0 {
		t.Fatal("no trace segments recorded")
	}
	// Segments of each node must tile the full run; the only allowed
	// sliver between consecutive segments is the (microsecond-scale)
	// allocator overhead, which is not a traced power segment.
	for _, segs := range [][]Segment{res.SimSegments, res.AnaSegments} {
		var clock units.Seconds
		for i, s := range segs {
			if !units.NearlyEqual(float64(s.Start), float64(clock), 1e-3) {
				t.Fatalf("segment %d starts at %v, expected %v (gap or overlap)", i, s.Start, clock)
			}
			clock = s.Start + s.Duration
		}
		if !units.NearlyEqual(float64(clock), float64(res.TotalTime), 1e-3) {
			t.Errorf("segments end at %v, run ends at %v", clock, res.TotalTime)
		}
	}
}

func TestSampleSegments(t *testing.T) {
	segs := []Segment{
		{Start: 0, Duration: 1, Power: 100},
		{Start: 1, Duration: 1, Power: 120},
	}
	samples := SampleSegments(segs, 0.5)
	if len(samples) != 4 {
		t.Fatalf("samples = %d, want 4", len(samples))
	}
	if samples[0].Value != 100 || samples[3].Value != 120 {
		t.Errorf("sample values wrong: %+v", samples)
	}
	if SampleSegments(nil, 0.5) != nil {
		t.Error("empty segments should sample to nil")
	}
	if SampleSegments(segs, 0) != nil {
		t.Error("zero period should sample to nil")
	}
}

func TestUnbalancedInitialCaps(t *testing.T) {
	res, err := Run(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong,
		InitialSimCap: 120, InitialAnaCap: 100, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rec := res.SyncLog.Records[2]
	if rec.SimCap != 120 || rec.AnaCap != 100 {
		t.Errorf("initial caps not honored: %v/%v", rec.SimCap, rec.AnaCap)
	}
}

func TestOverheadReported(t *testing.T) {
	res, err := Run(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.OverheadPerSync <= 0 {
		t.Error("allocator overhead should be positive")
	}
	if res.OverheadPerSync > 0.01 {
		t.Errorf("allocator overhead %v implausibly large", res.OverheadPerSync)
	}
}

func TestBudgetConservedAcrossPolicies(t *testing.T) {
	cons := smallCons()
	f := func(seed uint64, pick uint8) bool {
		names := []string{"seesaw", "power-aware", "time-aware"}
		name := names[int(pick)%len(names)]
		res, err := Run(context.Background(), Config{Spec: smallSpec(), Policy: policyFor(name, cons, 1),
			Constraints: cons, CapMode: CapLong, Seed: seed % 1000, Noise: machine.DefaultNoise()})
		if err != nil {
			return false
		}
		var total units.Watts
		for _, c := range res.FinalCaps {
			if c < cons.MinCap || c > cons.MaxCap {
				return false
			}
			total += c
		}
		return float64(total) <= float64(cons.Budget)+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestFindBestStaticSplit(t *testing.T) {
	cfg := Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong,
		Seed: 13, RunSeed: 14, Noise: machine.DefaultNoise()}
	res, err := FindBestStaticSplit(context.Background(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated == 0 {
		t.Fatal("no splits evaluated")
	}
	if res.BestSimCap < 98 || res.BestSimCap > 215 || res.BestAnaCap < 98 || res.BestAnaCap > 215 {
		t.Errorf("oracle caps out of range: %v/%v", res.BestSimCap, res.BestAnaCap)
	}
	// The best split is no slower than the even split by construction.
	if res.BestTime > res.EvenTime {
		t.Errorf("oracle best %v slower than even split %v", res.BestTime, res.EvenTime)
	}
	if res.Headroom() < 0 {
		t.Errorf("negative headroom %v", res.Headroom())
	}
}

func TestFindBestStaticSplitValidation(t *testing.T) {
	if _, err := FindBestStaticSplit(context.Background(), Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong}, 0); err == nil {
		t.Error("zero step should fail")
	}
	if _, err := FindBestStaticSplit(context.Background(), Config{}, 2); err == nil {
		t.Error("empty config should fail")
	}
}

func TestOracleBeatsOrMatchesEvenSplit(t *testing.T) {
	// Property over a few seeds: the sweep result dominates the even
	// split, and SeeSAw lands between even and oracle on the MSD cell.
	cfg := Config{Spec: smallSpec(), Constraints: smallCons(), CapMode: CapLong,
		Seed: 31, RunSeed: 32, Noise: machine.DefaultNoise()}
	oracle, err := FindBestStaticSplit(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	ss := core.MustNewSeeSAw(core.SeeSAwConfig{Constraints: smallCons(), Window: 1})
	res, err := Run(context.Background(), Config{Spec: smallSpec(), Policy: ss, Constraints: smallCons(),
		CapMode: CapLong, Seed: 31, RunSeed: 32, Noise: machine.DefaultNoise()})
	if err != nil {
		t.Fatal(err)
	}
	// Online SeeSAw should not beat the hindsight oracle by more than
	// noise, and should not be drastically worse than the even split.
	if float64(res.TotalTime) < float64(oracle.BestTime)*0.98 {
		t.Errorf("seesaw %v implausibly beats the oracle %v", res.TotalTime, oracle.BestTime)
	}
	if float64(res.TotalTime) > float64(oracle.EvenTime)*1.05 {
		t.Errorf("seesaw %v much slower than the even split %v", res.TotalTime, oracle.EvenTime)
	}
}

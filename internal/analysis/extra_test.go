package analysis

import (
	"math"
	"testing"

	"seesaw/internal/lammps"
)

func TestVelocityHistogramMatchesMaxwellBoltzmann(t *testing.T) {
	// Equilibrate a box and compare the measured speed distribution
	// against the Maxwell-Boltzmann curve — a physics-level check of
	// the whole MD engine.
	cfg := lammps.DefaultConfig()
	cfg.Atoms = 512
	s := lammps.MustNew(cfg)
	if err := s.Equilibrate(50); err != nil {
		t.Fatal(err)
	}

	h := NewVelocityHistogram(20, 5.0)
	s.Run(60, lammps.RunOptions{EveryStep: func(step int, sys *lammps.System) {
		if step%3 == 0 {
			f := sys.Snapshot()
			h.Consume(&f)
		}
	}})

	pdf := h.Result()
	temp := s.Temperature()
	dv := 5.0 / 20
	var maxDiff float64
	for i, got := range pdf {
		v := (float64(i) + 0.5) * dv
		want := MaxwellBoltzmannPDF(v, temp)
		if d := math.Abs(got - want); d > maxDiff {
			maxDiff = d
		}
	}
	// The MB peak density is ~0.6 at T=1; allow generous statistical
	// slack but catch gross shape errors.
	if maxDiff > 0.15 {
		t.Errorf("speed distribution deviates from Maxwell-Boltzmann by %v", maxDiff)
	}
}

func TestVelocityHistogramEmpty(t *testing.T) {
	h := NewVelocityHistogram(4, 1)
	for _, v := range h.Result() {
		if v != 0 {
			t.Error("empty histogram should be zero")
		}
	}
}

func TestVelocityHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad bins should panic")
		}
	}()
	NewVelocityHistogram(0, 1)
}

func TestMaxwellBoltzmannPDF(t *testing.T) {
	if MaxwellBoltzmannPDF(-1, 1) != 0 || MaxwellBoltzmannPDF(1, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
	// The PDF integrates to ~1.
	var sum float64
	const dv = 0.01
	for v := 0.0; v < 10; v += dv {
		sum += MaxwellBoltzmannPDF(v, 1) * dv
	}
	if math.Abs(sum-1) > 1e-3 {
		t.Errorf("MB pdf integrates to %v, want 1", sum)
	}
	// Mode at sqrt(2T).
	mode := math.Sqrt(2.0)
	if MaxwellBoltzmannPDF(mode, 1) < MaxwellBoltzmannPDF(mode*0.7, 1) ||
		MaxwellBoltzmannPDF(mode, 1) < MaxwellBoltzmannPDF(mode*1.3, 1) {
		t.Error("MB pdf mode not at sqrt(2T)")
	}
}

func TestCompositeValidation(t *testing.T) {
	if _, err := NewComposite(""); err == nil {
		t.Error("empty name should fail")
	}
	if _, err := NewComposite("x"); err == nil {
		t.Error("no parts should fail")
	}
}

func TestCompositeAll(t *testing.T) {
	frames := makeFrames(t, 5)
	all := NewAll()
	if all.Name() != "all" {
		t.Errorf("name = %q", all.Name())
	}
	if len(all.Parts()) != 5 {
		t.Errorf("parts = %d", len(all.Parts()))
	}
	var w lammps.WorkCount
	for i := range frames {
		w = all.Consume(&frames[i])
	}
	if w.Ops <= 0 {
		t.Error("composite reported no work")
	}
	if len(all.Result()) == 0 {
		t.Error("composite has no results")
	}
	p := all.Profile()
	// Heaviest part's demand (MSD: 175) dominates.
	if p.Demand != 175 {
		t.Errorf("composite demand = %v, want 175", p.Demand)
	}
	if p.SecondsPerOp != 1 {
		t.Errorf("composite SecondsPerOp = %v, want 1 (ops are pre-weighted)", p.SecondsPerOp)
	}
	if p.Sensitivity <= 0 || p.Sensitivity > 1 {
		t.Errorf("composite sensitivity = %v", p.Sensitivity)
	}
}

func TestCompositeWorkMatchesPartsSum(t *testing.T) {
	frames := makeFrames(t, 1)
	parts := []Analysis{NewMSD(), NewVACF(8)}
	comp, err := NewComposite("pair", NewMSD(), NewVACF(8))
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, p := range parts {
		w := p.Consume(&frames[0])
		want += w.Ops * p.Profile().SecondsPerOp
	}
	got := comp.Consume(&frames[0])
	if math.Abs(got.Ops-want) > 1e-12 {
		t.Errorf("composite seconds-weighted ops %v != parts sum %v", got.Ops, want)
	}
}

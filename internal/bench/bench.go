// Package bench defines and runs the paper's experiments: every table
// and figure of the evaluation (Section VII) has a registered experiment
// that regenerates its rows/series on the simulated platform. The
// seesawctl command exposes them on the command line; bench_test.go
// exposes them as Go benchmarks.
package bench

import (
	"context"
	"fmt"
	"io"
	"sort"
	"strings"

	"seesaw/internal/campaign"

	"seesaw/internal/core"
	"seesaw/internal/cosim"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/telemetry"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// Options tune experiment execution.
type Options struct {
	// Steps overrides each run's Verlet step count (0 keeps the
	// experiment's default of 400, the paper's setting). Tests use a
	// smaller value to keep the suite fast.
	Steps int
	// Runs overrides the number of repeated jobs per cell (0 keeps the
	// experiment default: 3 for medians, 7 for Table I).
	Runs int
	// BaseSeed offsets all job seeds, for replicating experiments under
	// different random draws.
	BaseSeed uint64
	// Jobs bounds how many experiment cells run concurrently (0 means
	// runtime.GOMAXPROCS(0)). Reports are byte-identical at any value:
	// cells are pure functions of their seeds and results are assembled
	// in enumeration order.
	Jobs int
	// Telemetry, when non-nil, is threaded into every co-simulated job
	// the experiment runs, collecting its metrics and event stream. Nil
	// disables instrumentation at no cost.
	Telemetry *telemetry.Hub
}

func (o Options) steps(def int) int {
	if o.Steps > 0 {
		return o.Steps
	}
	return def
}

func (o Options) runs(def int) int {
	if o.Runs > 0 {
		return o.Runs
	}
	return def
}

// Experiment regenerates one paper artifact.
type Experiment struct {
	// ID is the artifact identifier: "fig1" ... "fig9b", "table1",
	// "table2".
	ID string
	// Title is the paper artifact's caption summary.
	Title string
	// Run executes the experiment and renders its tables to w. It
	// enumerates independent cells and executes them on the campaign
	// engine's worker pool (bounded by Options.Jobs); cancelling ctx
	// aborts queued and in-flight cells and returns the context error.
	Run func(ctx context.Context, o Options, w io.Writer) error
}

var registry = map[string]Experiment{}
var order []string

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("bench: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
	order = append(order, e.ID)
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// All returns every experiment in registration (paper) order.
func All() []Experiment {
	es := make([]Experiment, 0, len(order))
	for _, id := range order {
		es = append(es, registry[id])
	}
	return es
}

// IDs returns the registered experiment ids in order.
func IDs() []string { return append([]string(nil), order...) }

// sortedIDs returns ids sorted lexicographically (for error messages).
func sortedIDs() []string {
	ids := IDs()
	sort.Strings(ids)
	return ids
}

// UnknownExperimentError formats a helpful error for a bad id.
func UnknownExperimentError(id string) error {
	return fmt.Errorf("bench: unknown experiment %q (have %v)", id, sortedIDs())
}

// Family groups related experiments for listings (seesawctl
// experiments).
type Family struct {
	// Name is the short family label.
	Name string
	// Description is a one-line summary of what the family's
	// experiments measure.
	Description string
	// IDs lists the member experiments in registration order.
	IDs []string
}

// Families returns the registered experiments grouped into families, in
// registration (paper) order within each family.
func Families() []Family {
	fams := []Family{
		{Name: "paper", Description: "the paper's figures and tables (Section VII) regenerated on the simulated platform"},
		{Name: "ablations", Description: "allocator ablations: EWMA smoothing, window length, hierarchy, exploration, oracle bound, setup transient"},
		{Name: "extensions", Description: "beyond-paper extensions: alternative schedulers and inter-partition power shifting"},
		{Name: "faults", Description: "node kills and slowdown excursions mid-run: policy re-convergence and survivor accounting"},
		{Name: "topologies", Description: "the four policies across space-shared, time-shared, in-transit and DAG workflow placements"},
		{Name: "search", Description: "batched policy search through the rollout environment: fixed policies vs a per-window bandit"},
		{Name: "hetero", Description: "heterogeneous device classes: the four policies on mixed CPU/GPU partitions vs the uniform static division"},
	}
	idx := map[string]int{}
	for i, f := range fams {
		idx[f.Name] = i
	}
	for _, id := range order {
		f := "paper"
		switch {
		case strings.HasPrefix(id, "abl-"):
			f = "ablations"
		case strings.HasPrefix(id, "ext-"):
			f = "extensions"
		case id == "faults":
			f = "faults"
		case id == "topologies":
			f = "topologies"
		case id == "search":
			f = "search"
		case id == "hetero":
			f = "hetero"
		}
		fams[idx[f]].IDs = append(fams[idx[f]].IDs, id)
	}
	return fams
}

// Experiment-wide defaults mirroring Section VII's setup.
const (
	defaultSteps   = 400
	defaultCap     = units.Watts(110)
	minCap         = units.Watts(98)
	maxCap         = units.Watts(215)
	defaultRuns    = 3
	table1Runs     = 7
	slackFromStep  = 10 // the paper averages slack "from the 10th step"
	defaultDim     = 16
	defaultBigDim  = 48
	defaultMidDim  = 36
	nodes128Half   = 64  // 128-node jobs: 64 sim + 64 ana
	nodes1024Half  = 512 // 1024-node jobs
	defaultSeedGap = 7919
)

// constraintsFor builds the budget for n total nodes at capPerNode.
func constraintsFor(n int, capPerNode units.Watts) core.Constraints {
	return core.Constraints{Budget: capPerNode * units.Watts(n), MinCap: minCap, MaxCap: maxCap}
}

// NewPolicy resolves a policy name through the process-wide registry
// (internal/policy). Window w applies where the paper says it does
// (SeeSAw and the power-aware scheme; the time-aware one ignores it) and
// is validated once by the registry.
func NewPolicy(name string, cons core.Constraints, w int) (core.Policy, error) {
	return policy.New(name, cons, w)
}

// PolicyNames lists the comparable policies in paper order (from the
// registry's one copy of that ordering).
func PolicyNames() []string { return policy.Compared() }

// cell describes one co-simulated job cell.
type cell struct {
	spec       workload.Spec
	policy     string
	window     int
	capPerNode units.Watts
	capMode    cosim.CapMode
	simStart   units.Watts
	anaStart   units.Watts
	jobSeed    uint64
	runSeed    uint64
	faults     *fault.Plan
	classes    *machine.ClassMap
	telemetry  *telemetry.Hub
}

// runCell executes one job.
func runCell(ctx context.Context, c cell) (*cosim.Result, error) {
	n := c.spec.SimNodes + c.spec.AnaNodes
	capPer := c.capPerNode
	if capPer == 0 {
		capPer = defaultCap
	}
	cons := constraintsFor(n, capPer)
	w := c.window
	if w < 1 {
		w = 1
	}
	pol, err := NewPolicy(c.policy, cons, w)
	if err != nil {
		return nil, err
	}
	mode := c.capMode
	if mode == 0 && c.policy != "none" {
		mode = cosim.CapLong
	}
	return cosim.Run(ctx, cosim.Config{
		Spec:          c.spec,
		Policy:        pol,
		Constraints:   cons,
		InitialSimCap: c.simStart,
		InitialAnaCap: c.anaStart,
		CapMode:       mode,
		Seed:          c.jobSeed,
		RunSeed:       c.runSeed,
		Noise:         machine.DefaultNoise(),
		Faults:        c.faults,
		Classes:       c.classes,
		Telemetry:     c.telemetry,
	})
}

// medianImprovement runs `runs` jobs of the policy and the static
// baseline with identical placement per job (the paper's pairing,
// Section VII-A) and returns the median % runtime improvement over the
// static baseline, along with the median policy slack.
func medianImprovement(ctx context.Context, c cell, runs int, baseSeed uint64) (impPct float64, slack float64, err error) {
	imps := make([]float64, 0, runs)
	slacks := make([]float64, 0, runs)
	for r := 0; r < runs; r++ {
		p, err := pairedRun(ctx, c, baseSeed+uint64(r)*defaultSeedGap)
		if err != nil {
			return 0, 0, err
		}
		imps = append(imps, p.imp)
		slacks = append(slacks, p.slack)
	}
	return median(imps), median(slacks), nil
}

// pairedOut is one paired policy-vs-static repeat.
type pairedOut struct {
	imp   float64
	slack float64
}

// pairedRun executes one paired comparison: the policy job and the
// static baseline with identical placement (seed), returning the %
// improvement and the policy run's mean slack.
func pairedRun(ctx context.Context, c cell, seed uint64) (pairedOut, error) {
	c.jobSeed = seed
	c.runSeed = seed + 1
	res, err := runCell(ctx, c)
	if err != nil {
		return pairedOut{}, err
	}
	sc := c
	sc.policy = "static"
	base, err := runCell(ctx, sc)
	if err != nil {
		return pairedOut{}, err
	}
	return pairedOut{
		imp:   improvementPct(base.TotalTime, res.TotalTime),
		slack: res.SyncLog.MeanSlackFrom(slackFromStep),
	}, nil
}

// enum accumulates one experiment's campaign cells. Experiments run in
// three phases: enumerate every independent job as a cell (addCell,
// paired), execute them all on the worker pool (run), then render the
// tables from the ordered results via the getters addCell returned.
type enum struct {
	name  string
	cells []campaign.Cell
	res   []campaign.Result
}

func newEnum(name string) *enum { return &enum{name: name} }

// run executes the enumerated cells with concurrency o.Jobs. After it
// returns nil, every getter is ready.
func (e *enum) run(ctx context.Context, o Options) error {
	rs, err := campaign.Run(ctx, e.cells, campaign.Options{
		Name:      e.name,
		Jobs:      o.Jobs,
		Telemetry: o.Telemetry,
	})
	e.res = rs
	return err
}

// addCell enumerates one cell computing a T and returns a getter for
// its value, valid after run succeeds.
func addCell[T any](e *enum, key string, seed uint64, fn func(ctx context.Context) (T, error)) func() T {
	idx := len(e.cells)
	e.cells = append(e.cells, campaign.Cell{
		Key:  key,
		Seed: seed,
		Run:  func(ctx context.Context) (any, error) { return fn(ctx) },
	})
	return func() T {
		if e.res == nil {
			panic("bench: cell value read before enum.run")
		}
		return e.res[idx].Value.(T)
	}
}

// paired enumerates one cell per repeat of the paper's paired
// policy-vs-static comparison and returns a getter for the median
// improvement and slack across the repeats.
func (e *enum) paired(keyPrefix string, c cell, runs int, baseSeed uint64) func() (imp, slack float64) {
	getters := make([]func() pairedOut, runs)
	for r := 0; r < runs; r++ {
		seed := baseSeed + uint64(r)*defaultSeedGap
		getters[r] = addCell(e, fmt.Sprintf("%s/r%d", keyPrefix, r), seed,
			func(ctx context.Context) (pairedOut, error) { return pairedRun(ctx, c, seed) })
	}
	return func() (float64, float64) {
		imps := make([]float64, runs)
		slacks := make([]float64, runs)
		for r, g := range getters {
			p := g()
			imps[r] = p.imp
			slacks[r] = p.slack
		}
		return median(imps), median(slacks)
	}
}

// improvementPct is (base - x)/base in percent: positive = faster than
// the static baseline.
func improvementPct(base, x units.Seconds) float64 {
	if base <= 0 {
		return 0
	}
	return (float64(base) - float64(x)) / float64(base) * 100
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// spec128 builds a 128-node workload.
func spec128(dim, j, steps int, analyses []workload.AnalysisTask) workload.Spec {
	return workload.Spec{
		SimNodes: nodes128Half, AnaNodes: nodes128Half,
		Dim: dim, J: j, Steps: steps, Analyses: analyses,
	}
}

// specAt builds a workload at an arbitrary total node count (split
// evenly, as in all of the paper's results).
func specAt(totalNodes, dim, j, steps int, analyses []workload.AnalysisTask) workload.Spec {
	return workload.Spec{
		SimNodes: totalNodes / 2, AnaNodes: totalNodes - totalNodes/2,
		Dim: dim, J: j, Steps: steps, Analyses: analyses,
	}
}

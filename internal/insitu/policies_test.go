package insitu

import (
	"context"
	"testing"

	"seesaw/internal/core"
	"seesaw/internal/units"
)

// The future-work policies must run cleanly end-to-end through the real
// (rank-parallel, mini-MD) engine, not just the co-simulator.

func extCons() core.Constraints {
	return core.Constraints{Budget: 440, MinCap: 98, MaxCap: 215}
}

func TestHierarchicalEndToEnd(t *testing.T) {
	h := core.MustNewHierarchical(core.DefaultHierarchicalConfig(extCons()))
	res, err := Run(context.Background(), tinyConfig(h, []string{"msd"}, 40))
	if err != nil {
		t.Fatal(err)
	}
	if res.MainLoopTime <= 0 {
		t.Fatal("no runtime")
	}
	// Caps stay within hardware bounds throughout.
	for _, r := range res.SyncLog.Records {
		for _, c := range []units.Watts{r.SimCap, r.AnaCap} {
			if c != 0 && (c < 98 || c > 215) {
				t.Fatalf("cap %v out of range at step %d", c, r.Step)
			}
		}
	}
}

func TestExploringEndToEnd(t *testing.T) {
	cfg := core.DefaultExploringConfig(extCons())
	cfg.Period = 8
	e := core.MustNewExploringSeeSAw(cfg)
	res, err := Run(context.Background(), tinyConfig(e, []string{"msd"}, 60))
	if err != nil {
		t.Fatal(err)
	}
	static, err := Run(context.Background(), tinyConfig(core.NewStatic(), []string{"msd"}, 60))
	if err != nil {
		t.Fatal(err)
	}
	// Exploration must not regress below the static baseline by more
	// than probe noise.
	if float64(res.MainLoopTime) > float64(static.MainLoopTime)*1.03 {
		t.Errorf("exploring seesaw %v much slower than static %v", res.MainLoopTime, static.MainLoopTime)
	}
}

func TestPowerShiftEndToEnd(t *testing.T) {
	// Profiles handed to PowerShift here are synthetic but shaped like
	// the workload: the analysis (MSD) benefits from power, the
	// simulation saturates low at this problem size.
	ps := core.MustNewPowerShift(core.PowerShiftConfig{
		Constraints: extCons(),
		SimProfile: core.Profile{
			{PerNode: 98, Time: 5.6}, {PerNode: 110, Time: 5.2}, {PerNode: 130, Time: 5.1},
		},
		AnaProfile: core.Profile{
			{PerNode: 98, Time: 6.3}, {PerNode: 110, Time: 5.4}, {PerNode: 130, Time: 4.8},
		},
		GridStep: 1,
	})
	res, err := Run(context.Background(), tinyConfig(ps, []string{"msd"}, 40))
	if err != nil {
		t.Fatal(err)
	}
	sim, ana := ps.ChosenSplit()
	if sim == 0 || ana == 0 {
		t.Fatal("powershift never chose a split")
	}
	if !(ana > sim) {
		t.Errorf("profiles favor the analysis; chosen %v/%v", sim, ana)
	}
	last := res.SyncLog.Records[res.SyncLog.Len()-1]
	if last.AnaCap != ana || last.SimCap != sim {
		t.Errorf("chosen split %v/%v not in force at the end (%v/%v)", sim, ana, last.SimCap, last.AnaCap)
	}
}

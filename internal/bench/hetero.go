// The hetero experiment: the four policies on heterogeneous device
// classes. This is not a paper artifact — it exercises the device-class
// extension (machine.Class + the allocators' capability-weighted
// division) on the paper's LAMMPS+MSD workload. Both partitions mix
// CPU and GPU nodes: at the uniform even split the GPUs sit near their
// 100 W class floor where their perf curve collapses, so the whole job
// runs at GPU-straggler speed. Policies that see per-node capabilities
// waterfill the budget by class weight — CPUs pinned at their floor,
// the freed Watts moved onto the GPUs — and recover most of the loss;
// the uniform static division cannot. A lose-the-fast-nodes fault
// scenario then kills GPU nodes mid-run to show the allocators
// re-weighting the survivors.
//
// The file is named hetero.go (not experiments_hetero.go) on purpose:
// registration order is file init order, which is lexical filename
// order, and "hetero.go" sorts after every "experiments_*.go" file, so
// the hetero section lands at the end of the report and the report
// golden grows as a strict superset of its previous bytes.
package bench

import (
	"context"
	"fmt"
	"io"

	"seesaw/internal/cosim"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/trace"
	"seesaw/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "hetero",
		Title: "Heterogeneity: the four policies on mixed CPU/GPU partitions vs the uniform static division (8 nodes, LAMMPS+MSD)",
		Run:   runHetero,
	})
}

// heteroScenario is one device-class layout (plus an optional fault
// plan) applied to every policy.
type heteroScenario struct {
	label   string
	classes string // machine.ClassMap grammar; empty = homogeneous
	plan    string // fault plan; empty = fault-free
}

// heteroScenarios builds the experiment's scenarios on an 8-node job
// (4 sim + 4 ana): the homogeneous reference, a half-CPU/half-GPU mix
// in each partition, and the same mix losing its last GPU (an analysis
// node) a third of the way in — the lose-the-fast-nodes case. The kill
// sync scales with the run length so shrunken test runs keep the shape.
func heteroScenarios(spec workload.Spec, steps int) []heteroScenario {
	mixed := "0-1:cpu,2-3:gpu,4-5:cpu,6-7:gpu"
	killNode := spec.SimNodes + spec.AnaNodes - 1
	killSync := max(steps/3, 2)
	return []heteroScenario{
		{label: "uniform (all cpu)"},
		{label: "mixed cpu/gpu", classes: mixed},
		{label: fmt.Sprintf("mixed cpu/gpu, kill gpu node %d @ sync %d", killNode, killSync),
			classes: mixed, plan: fmt.Sprintf("kill:%d@%d", killNode, killSync)},
	}
}

func runHetero(ctx context.Context, o Options, w io.Writer) error {
	steps := o.steps(defaultSteps)
	spec := specAt(8, defaultDim, 1, steps, workload.Tasks("msd"))
	scenarios := heteroScenarios(spec, steps)
	policies := append([]string{"static"}, PolicyNames()...)

	e := newEnum("hetero")
	var getters [][]func() *cosim.Result // [scenario][policy]
	for si, sc := range scenarios {
		var classes *machine.ClassMap
		if sc.classes != "" {
			cm, err := machine.ParseClassMap(sc.classes)
			if err != nil {
				return fmt.Errorf("bench: hetero scenario %q: %w", sc.label, err)
			}
			classes = cm
		}
		var plan *fault.Plan
		if sc.plan != "" {
			p, err := fault.Parse(sc.plan)
			if err != nil {
				return fmt.Errorf("bench: hetero scenario %q: %w", sc.label, err)
			}
			plan = p
		}
		var row []func() *cosim.Result
		for _, p := range policies {
			key := fmt.Sprintf("s%d/%s", si, p)
			row = append(row, addCell(e, key, o.BaseSeed+71, func(ctx context.Context) (*cosim.Result, error) {
				return runCell(ctx, cell{spec: spec, policy: p, window: 1, faults: plan,
					classes: classes, jobSeed: o.BaseSeed + 71, runSeed: o.BaseSeed + 72,
					telemetry: o.Telemetry})
			}))
		}
		getters = append(getters, row)
	}
	if err := e.run(ctx, o); err != nil {
		return err
	}

	for si, sc := range scenarios {
		tbl := trace.NewTable(fmt.Sprintf("Heterogeneity (%s)", sc.label),
			"policy", "total (s)", "energy (kJ)", "vs static", "mean slack", "alive")
		static := getters[si][0]()
		bestImp, bestPolicy := 0.0, ""
		for pi, p := range policies {
			res := getters[si][pi]()
			imp := improvementPct(static.TotalTime, res.TotalTime)
			if imp > bestImp {
				bestImp, bestPolicy = imp, p
			}
			tbl.AddRow(p,
				fmt.Sprintf("%.1f", float64(res.TotalTime)),
				fmt.Sprintf("%.1f", float64(res.TotalEnergy)/1000),
				fmt.Sprintf("%+.2f%%", imp),
				fmt.Sprintf("%.3f", res.SyncLog.MeanSlackFrom(slackFromStep)),
				fmt.Sprintf("%d+%d", res.AliveSim, res.AliveAna))
		}
		if err := tbl.Render(w); err != nil {
			return err
		}
		if sc.classes != "" && bestPolicy != "" {
			if _, err := fmt.Fprintf(w, "best on %s: %s, %.2f%% faster than the uniform static division\n\n",
				sc.label, bestPolicy, bestImp); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintf(w, "At the even split the GPU class sits near its 100 W floor where its perf curve collapses; capability-weighted policies pin the CPUs at their floor and waterfill the freed Watts onto the GPUs, which the uniform static division cannot.\n\n")
	return err
}

// Command powertrace emits a Figure 1-style power trace as CSV: one
// simulation node and one analysis node of an uncapped in-situ job,
// sampled every 200 ms, exposing the analysis partition's idle troughs
// at each synchronization.
//
// Usage:
//
//	powertrace [-steps N] [-analysis name] [-period s] [-seed N] > trace.csv
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"

	"seesaw/internal/cosim"
	"seesaw/internal/machine"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

func main() {
	steps := flag.Int("steps", 40, "Verlet steps to simulate")
	analysisName := flag.String("analysis", "rdf", "analysis to run (rdf, vacf, msd, msd1d, msd2d)")
	period := flag.Float64("period", 0.2, "sampling period in seconds (paper: 0.2)")
	seed := flag.Uint64("seed", 1, "job seed")
	flag.Parse()

	res, err := cosim.Run(context.Background(), cosim.Config{
		Spec: workload.Spec{
			SimNodes: 64, AnaNodes: 64,
			Dim: 16, J: 1, Steps: *steps,
			Analyses: workload.Tasks(*analysisName),
		},
		CapMode:       cosim.CapNone,
		Seed:          *seed,
		Noise:         machine.DefaultNoise(),
		TraceSegments: true,
	})
	if err != nil {
		log.Fatal(err)
	}

	sim := cosim.SampleSegments(res.SimSegments, units.Seconds(*period))
	ana := cosim.SampleSegments(res.AnaSegments, units.Seconds(*period))

	fmt.Println("t_s,sim_node_w,analysis_node_w")
	for i := 0; i < len(sim) && i < len(ana); i++ {
		fmt.Printf("%.3f,%.2f,%.2f\n", float64(sim[i].Time), sim[i].Value, ana[i].Value)
	}
	fmt.Fprintf(os.Stderr, "powertrace: %d samples over %.1f s of %s+%s\n",
		len(sim), float64(res.TotalTime), "lammps", *analysisName)
}

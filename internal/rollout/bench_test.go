package rollout

import (
	"context"
	"fmt"
	"testing"

	"seesaw/internal/machine"
	"seesaw/internal/policy"
	"seesaw/internal/workload"
)

// BenchmarkRollouts is the headline throughput number: complete
// policy-search episodes per second through the Env step API — driver
// goroutine, channel rendezvous, registry policy construction and all.
// Episode shape mirrors BenchmarkTopologies' scale points (dim 8, 4
// synchronized steps) so the substrate cost is comparable across the
// two benchmarks.
func BenchmarkRollouts(b *testing.B) {
	for _, nodes := range []int{256, 1024} {
		b.Run(fmt.Sprintf("nodes=%d", nodes), func(b *testing.B) {
			spec := Spec{
				Workload: workload.Spec{
					SimNodes: nodes / 2, AnaNodes: nodes / 2,
					Dim: 8, J: 1, Steps: 4,
					Analyses: workload.Tasks("msd"),
				},
				Seed:    11,
				RunSeed: 12,
				Noise:   machine.DefaultNoise(),
			}
			cons := spec.constraints(nodes)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				pol, err := policy.New("seesaw", cons, 1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := Run(context.Background(), spec, pol); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rollouts/sec")
		})
	}
}

// PowerShift-style baseline: the paper's closest related work (Zhang &
// Hoffmann, ICPP'18) shifts power between coupled applications using
// power and performance profiles collected OFFLINE — the paper contrasts
// SeeSAw's fully online feedback against exactly this design ("SeeSAw
// obtains feedback dynamically... does not require any time or power
// information up front"). This reimplementation lets the repository
// demonstrate that trade-off: an offline profile is optimal when the
// workload matches it and misleads when it does not.
package core

import (
	"fmt"
	"sort"

	"seesaw/internal/units"
)

// ProfilePoint is one row of an offline power/performance profile: the
// partition's measured interval time when running at a given per-node
// power cap.
type ProfilePoint struct {
	PerNode units.Watts
	Time    units.Seconds
}

// Profile is an offline-collected power-to-time curve for one partition,
// sorted by power.
type Profile []ProfilePoint

// Validate reports malformed profiles.
func (p Profile) Validate() error {
	if len(p) < 2 {
		return fmt.Errorf("core: profile needs at least 2 points, got %d", len(p))
	}
	if !sort.SliceIsSorted(p, func(i, j int) bool { return p[i].PerNode < p[j].PerNode }) {
		return fmt.Errorf("core: profile must be sorted by power")
	}
	for i, pt := range p {
		if pt.PerNode <= 0 || pt.Time <= 0 {
			return fmt.Errorf("core: profile point %d non-positive: %+v", i, pt)
		}
	}
	return nil
}

// TimeAt linearly interpolates the profiled interval time at the given
// per-node power, clamping to the profile's ends.
func (p Profile) TimeAt(w units.Watts) units.Seconds {
	if w <= p[0].PerNode {
		return p[0].Time
	}
	last := p[len(p)-1]
	if w >= last.PerNode {
		return last.Time
	}
	i := sort.Search(len(p), func(i int) bool { return p[i].PerNode >= w })
	lo, hi := p[i-1], p[i]
	frac := float64(w-lo.PerNode) / float64(hi.PerNode-lo.PerNode)
	return lo.Time + units.Seconds(frac*float64(hi.Time-lo.Time))
}

// PowerShiftConfig parameterizes the profile-driven allocator.
type PowerShiftConfig struct {
	// Constraints carry the budget and cap range.
	Constraints Constraints
	// SimProfile and AnaProfile are the offline power-to-time curves of
	// the two partitions.
	SimProfile, AnaProfile Profile
	// GridStep is the sweep granularity when minimizing the predicted
	// max time over feasible splits.
	GridStep units.Watts
}

// PowerShift chooses, once, the budget split minimizing the profiles'
// predicted max(T_sim, T_ana), and holds it: with no online feedback
// there is nothing to adapt to. Exactly as strong — and as brittle — as
// its profiles.
type PowerShift struct {
	cfg    PowerShiftConfig
	chosen bool
	simCap units.Watts
	anaCap units.Watts
}

// NewPowerShift builds the profile-driven allocator.
func NewPowerShift(cfg PowerShiftConfig) (*PowerShift, error) {
	if err := cfg.Constraints.Validate(0); err != nil {
		return nil, err
	}
	if err := cfg.SimProfile.Validate(); err != nil {
		return nil, fmt.Errorf("sim profile: %w", err)
	}
	if err := cfg.AnaProfile.Validate(); err != nil {
		return nil, fmt.Errorf("ana profile: %w", err)
	}
	if cfg.GridStep <= 0 {
		cfg.GridStep = 1
	}
	return &PowerShift{cfg: cfg}, nil
}

// MustNewPowerShift panics on configuration errors.
func MustNewPowerShift(cfg PowerShiftConfig) *PowerShift {
	p, err := NewPowerShift(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

// Name implements Policy.
func (*PowerShift) Name() string { return "powershift" }

// ChosenSplit returns the per-node caps the profiles selected (zero
// before the first allocation).
func (p *PowerShift) ChosenSplit() (sim, ana units.Watts) { return p.simCap, p.anaCap }

// Allocate implements Policy: on the first call it sweeps feasible
// splits, picks the profile-predicted optimum, and returns it; afterwards
// it returns nil (no adaptation — the defining limitation the paper
// calls out).
func (p *PowerShift) Allocate(step int, nodes []NodeMeasure) []units.Watts {
	if p.chosen {
		return nil
	}
	var nSim, nAna int
	for _, n := range nodes {
		if n.Role == RoleSimulation {
			nSim++
		} else {
			nAna++
		}
	}
	if nSim == 0 || nAna == 0 {
		return nil
	}
	c := p.cfg.Constraints
	bestMax := units.Seconds(-1)
	for simCap := c.MinCap; simCap <= c.MaxCap; simCap += p.cfg.GridStep {
		anaCap := (c.Budget - simCap*units.Watts(nSim)) / units.Watts(nAna)
		if anaCap < c.MinCap || anaCap > c.MaxCap {
			continue
		}
		tS := p.cfg.SimProfile.TimeAt(simCap)
		tA := p.cfg.AnaProfile.TimeAt(anaCap)
		m := tS
		if tA > m {
			m = tA
		}
		if bestMax < 0 || m < bestMax {
			bestMax = m
			p.simCap, p.anaCap = simCap, anaCap
		}
	}
	if bestMax < 0 {
		return nil
	}
	p.chosen = true
	return expandPartitionCaps(nodes, p.simCap, p.anaCap)
}

// ProfilePartition measures an offline profile by running the provided
// evaluation function at each per-node cap in caps — the "profiles
// collected offline of individual coupled applications" step PowerShift
// requires. evaluate returns the partition's interval time at that cap.
func ProfilePartition(caps []units.Watts, evaluate func(units.Watts) units.Seconds) Profile {
	prof := make(Profile, 0, len(caps))
	for _, c := range caps {
		prof = append(prof, ProfilePoint{PerNode: c, Time: evaluate(c)})
	}
	sort.Slice(prof, func(i, j int) bool { return prof[i].PerNode < prof[j].PerNode })
	return prof
}

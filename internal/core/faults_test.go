package core

// Dead-node behaviour of the four comparable allocators: a killed node
// must be excluded from allocation and its budget share redistributed
// to the survivors within the constraint clamps.

import (
	"math"
	"testing"

	"seesaw/internal/units"
)

// kill marks ms[i] dead the way the cluster layer reports corpses:
// zero times, zero power, zero cap.
func kill(ms []NodeMeasure, i int) {
	ms[i].Health = Dead
	ms[i].Time, ms[i].BusyTime, ms[i].EpochTime = 0, 0, 0
	ms[i].Power, ms[i].Cap = 0, 0
}

func liveSum(ms []NodeMeasure, caps []units.Watts) units.Watts {
	var total units.Watts
	for i, m := range ms {
		if m.Health != Dead {
			total += caps[i]
		}
	}
	return total
}

func TestSeeSAwRedistributesDeadShare(t *testing.T) {
	c := testConstraints() // 880 W for 4+4
	s := MustNewSeeSAw(SeeSAwConfig{Constraints: c, Window: 1})
	ms := measures(5, 3, 100, 105, 110)
	kill(ms, 5) // one analysis node dies
	caps := s.Allocate(1, ms)
	if caps == nil {
		t.Fatal("no allocation with a live 4+3 membership")
	}
	if caps[5] != 0 {
		t.Errorf("dead node allocated %v", caps[5])
	}
	if got := liveSum(ms, caps); math.Abs(float64(got-c.Budget)) > 1e-6 {
		t.Errorf("live caps sum to %v, want the whole budget %v", got, c.Budget)
	}
	for i, m := range ms {
		if m.Health == Dead {
			continue
		}
		if caps[i] < c.MinCap || caps[i] > c.MaxCap {
			t.Errorf("cap[%d] = %v outside [%v, %v]", i, caps[i], c.MinCap, c.MaxCap)
		}
	}
}

func TestSeeSAwNoAllocationWhenPartitionWipedOut(t *testing.T) {
	s := MustNewSeeSAw(SeeSAwConfig{Constraints: testConstraints(), Window: 1})
	ms := measures(5, 3, 100, 105, 110)
	for i := 4; i < 8; i++ {
		kill(ms, i)
	}
	if got := s.Allocate(1, ms); got != nil {
		t.Errorf("allocation with a dead analysis partition: %v", got)
	}
}

func TestPowerAwareRedistributesDeadShare(t *testing.T) {
	c := testConstraints()
	p := MustNewPowerAware(DefaultPowerAwareConfig(c))
	// Every survivor is at its cap (needy); node 2 is dead.
	ms := measures(5, 3, 110, 110, 110)
	kill(ms, 2)
	caps := p.Allocate(1, ms)
	if caps == nil {
		t.Fatal("no allocation despite needy survivors and a corpse")
	}
	if caps[2] != 0 {
		t.Errorf("dead node allocated %v", caps[2])
	}
	if got := liveSum(ms, caps); math.Abs(float64(got-c.Budget)) > 1e-6 {
		t.Errorf("live caps sum to %v, want %v: the dead share was not returned", got, c.Budget)
	}
	for i, m := range ms {
		if m.Health != Dead && caps[i] <= 110 {
			t.Errorf("survivor %d gained nothing: %v", i, caps[i])
		}
	}
}

func TestPowerAwareActsOnDeadEvenWithoutNeedy(t *testing.T) {
	c := testConstraints()
	p := MustNewPowerAware(DefaultPowerAwareConfig(c))
	// Nobody is at the cap, but a corpse holds budget: the policy must
	// still run to hand the share back.
	ms := measures(5, 3, 100, 100, 110)
	kill(ms, 7)
	caps := p.Allocate(1, ms)
	if caps == nil {
		t.Fatal("nil allocation leaves the dead node's share orphaned")
	}
	if got := liveSum(ms, caps); got <= 770 {
		t.Errorf("live caps sum to %v, want more than the pre-kill 770", got)
	}
}

func TestTimeAwareRedistributesDeadShare(t *testing.T) {
	c := testConstraints()
	ta := MustNewTimeAware(DefaultTimeAwareConfig(c))
	ms := measures(5, 5, 108, 108, 110)
	ms[0].EpochTime = 2 // one fast node donates
	kill(ms, 6)
	caps := ta.Allocate(1, ms)
	if caps == nil {
		t.Fatal("no allocation with a live membership")
	}
	if caps[6] != 0 {
		t.Errorf("dead node allocated %v", caps[6])
	}
	if got := liveSum(ms, caps); math.Abs(float64(got-c.Budget)) > 1e-6 {
		t.Errorf("live caps sum to %v, want %v", got, c.Budget)
	}
}

func TestTimeAwareAllDeadReturnsNil(t *testing.T) {
	ta := MustNewTimeAware(DefaultTimeAwareConfig(testConstraints()))
	ms := measures(5, 5, 108, 108, 110)
	for i := range ms {
		kill(ms, i)
	}
	if got := ta.Allocate(1, ms); got != nil {
		t.Errorf("allocation over an empty membership: %v", got)
	}
}

func TestHierarchicalDeadNodeRetired(t *testing.T) {
	c := testConstraints()
	h := MustNewHierarchical(DefaultHierarchicalConfig(c))
	ms := measures(5, 3, 100, 105, 110)
	ms[1].BusyTime = 6 // intra-partition heterogeneity
	// Let the intra level accumulate an offset on node 0 first.
	for step := 1; step <= 3; step++ {
		h.Allocate(step, ms)
	}
	kill(ms, 0)
	caps := h.Allocate(4, ms)
	if caps == nil {
		t.Fatal("no allocation after kill")
	}
	if caps[0] != 0 {
		t.Errorf("dead node allocated %v", caps[0])
	}
	if off := h.Offsets()[0]; off != 0 {
		t.Errorf("dead node still holds intra-partition offset %v", off)
	}
	for i, m := range ms {
		if m.Health == Dead {
			continue
		}
		if caps[i] < c.MinCap || caps[i] > c.MaxCap {
			t.Errorf("cap[%d] = %v outside hardware range", i, caps[i])
		}
	}
}

# Tier-1 gate: everything `make check` runs must stay green.
GO ?= go

.PHONY: all build check fmt vet test race bench clean

all: build

build:
	$(GO) build ./...

# check is the tier-1 gate: formatting, vet, and the full suite under
# the race detector (the telemetry hub and the insitu driver are
# concurrent by design).
check: fmt vet race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

clean:
	$(GO) clean ./...

// Package cosim is the scale-level co-simulation driver for the paper's
// 128-1024-node experiments. It advances one space-shared in-situ job —
// n simulation nodes plus n analysis nodes, each a machine.Node with its
// own simulated RAPL domain — synchronization interval by
// synchronization interval:
//
//  1. every node executes its interval's phases (from the workload
//     model), yielding per-node busy times and drawn power;
//  2. the slower partition sets the interval's wall time; faster nodes
//     idle at synchronization, drawing idle power (the troughs of
//     Figure 1);
//  3. per-node (time, power, cap) measurements — exactly what PoLiMER
//     reports — go to the configured policy, which may emit new caps;
//  4. caps are written to each node's RAPL domain (taking effect after
//     the actuation latency) and the allocator's communication cost is
//     charged to the next interval.
//
// Unlike package insitu (goroutine-per-rank over the message-passing
// runtime, real mini-MD), cosim is sequential and uses the workload
// tables, making hundreds of multi-policy, multi-seed experiment cells
// cheap while exercising the same Policy implementations.
package cosim

import (
	"context"

	"seesaw/internal/cluster"
	"seesaw/internal/core"
	"seesaw/internal/fault"
	"seesaw/internal/machine"
	"seesaw/internal/mpi"
	"seesaw/internal/rapl"
	"seesaw/internal/telemetry"
	"seesaw/internal/trace"
	"seesaw/internal/units"
	"seesaw/internal/workload"
)

// CapMode selects which RAPL caps a job installs (Table I's cap types).
type CapMode int

// Cap modes.
const (
	// CapNone runs uncapped (Table I "None").
	CapNone CapMode = iota
	// CapLong installs only the long-term cap (the paper's main
	// configuration, Section VII-A).
	CapLong
	// CapLongShort installs both long- and short-term caps (Table I
	// "Long and Short"): the budget is guaranteed but RAPL regulates
	// slightly below the request and variability increases.
	CapLongShort
)

// Config describes one co-simulated job.
type Config struct {
	// Spec is the workload (node counts, dim, j, steps, analyses).
	Spec workload.Spec
	// Policy allocates power at each synchronization; nil means static.
	Policy core.Policy
	// Constraints carry the global budget and per-node cap range.
	Constraints core.Constraints
	// InitialSimCap and InitialAnaCap are per-node starting caps; zero
	// means an even split of the budget (the paper's baseline).
	InitialSimCap, InitialAnaCap units.Watts
	// CapMode selects the RAPL cap types (CapLong by default for
	// capped runs; use CapNone for uncapped variability rows).
	CapMode CapMode
	// Seed drives node noise deterministically. Two runs with the same
	// seed share node placement (run-to-run); different seeds model
	// different jobs (job-to-job).
	Seed uint64
	// RunSeed, when non-zero, separates per-run jitter from the
	// job-level Seed: repeated runs inside one job share Seed (node
	// skews) but differ in RunSeed — the paper's run-to-run setting
	// (Table I).
	RunSeed uint64
	// Noise configures run-to-run and job-to-job variability
	// magnitudes; zero disables noise entirely.
	Noise machine.NoiseModel
	// Machine is the node performance model (DefaultModel if zero);
	// with Classes set it describes the default class.
	Machine machine.Model
	// Rapl is the RAPL hardware model (Theta if zero); with Classes
	// set it describes the default class.
	Rapl rapl.Config
	// Classes assigns device classes to node ids (machine.ClassMap
	// grammar); nil keeps the cluster homogeneous. The allocators see
	// each node's class capability and weight its budget share.
	Classes *machine.ClassMap
	// ClassRegistry optionally overrides the built-in class presets.
	ClassRegistry map[string]machine.Class
	// Cost models the allocator's communication (DefaultCost if zero).
	Cost mpi.CostModel
	// TraceSegments, when true, records (time, power) segments for the
	// first node of each partition so power traces can be resampled
	// (Figure 1).
	TraceSegments bool
	// NoNoiseMemo disables the per-node noise-trace memoization
	// (jobstate.go): episodes draw every jitter variate live from the
	// node streams instead of replaying the recorded trace. Replay is
	// byte-identical by construction (the rollout goldens pin it); the
	// flag is the escape hatch for excluding the memo layer when
	// diagnosing a suspect run. One-shot Run sets it implicitly — a
	// single episode gains nothing from recording its own draws.
	NoNoiseMemo bool
	// Faults is an optional deterministic fault plan: node kills and
	// slow-node excursions keyed to the synchronization schedule (an
	// event planned for sync k is in force before interval k executes).
	// Killed nodes stop executing and draw no power; their share of the
	// partition's domain-decomposed work shifts onto the survivors, and
	// the policy sees them as Dead measures. Nil means a fault-free run.
	Faults *fault.Plan
	// Telemetry, when non-nil, receives metrics and structured events
	// from the run: cap writes and throttling per partition (from each
	// node's RAPL domain), one SyncBarrier per interval, idle troughs,
	// policy decisions and budget violations. Nil disables all
	// instrumentation at no cost.
	Telemetry *telemetry.Hub
}

// Segment is a span of constant power on one node, for trace resampling.
type Segment struct {
	Start    units.Seconds
	Duration units.Seconds
	Power    units.Watts
}

// Result summarizes a co-simulated job.
type Result struct {
	// TotalTime is the job's main-loop wall time.
	TotalTime units.Seconds
	// SyncLog records each synchronization interval.
	SyncLog *trace.SyncLog
	// TotalEnergy sums all nodes' energy.
	TotalEnergy units.Joules
	// OverheadPerSync is the modeled allocator overhead charged at each
	// synchronization (communication + actuation bookkeeping).
	OverheadPerSync units.Seconds
	// SimSegments and AnaSegments are power segments of the first node
	// of each partition (only when Config.TraceSegments).
	SimSegments, AnaSegments []Segment
	// FinalCaps are the per-node caps at the end of the run.
	FinalCaps []units.Watts
	// FaultLog records the health transitions the fault plan fired, in
	// firing order (empty for fault-free runs).
	FaultLog []cluster.Transition
	// AliveSim and AliveAna are the partitions' live sizes at the end.
	AliveSim, AliveAna int
}

// Run executes the co-simulation. The context is checked at every
// synchronization interval: cancelling it makes Run return ctx.Err()
// promptly with no partial Result.
//
// Run is the one-shot composition of the reusable pieces in
// jobstate.go: it builds the job's episode-invariant state, one node
// population, and runs a single episode. Callers that evaluate many
// policies or budgets on one job (the rollout search layer) hold the
// JobState and Episode themselves and amortize everything but the
// episode loop.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	// Recording noise traces costs exactly one episode's worth of live
	// draws; a one-shot run would pay it without ever replaying.
	cfg.NoNoiseMemo = true
	st, err := NewJobState(cfg)
	if err != nil {
		return nil, err
	}
	ep, err := st.NewEpisode()
	if err != nil {
		return nil, err
	}
	return ep.Run(ctx, EpisodeParams{
		Policy:        cfg.Policy,
		Constraints:   cfg.Constraints,
		InitialSimCap: cfg.InitialSimCap,
		InitialAnaCap: cfg.InitialAnaCap,
		CapMode:       cfg.CapMode,
	})
}

// epochWaitShare is the fraction of the synchronization wait a
// loop-level (epoch) monitor attributes to the iteration itself: epoch
// markers bracket the whole loop body, so most of the wait is folded
// into the apparent iteration time.
const epochWaitShare = 0.8

// buildRecord aggregates per-node measures into a SyncRecord with
// per-node partition powers.
func buildRecord(step int, measures []core.NodeMeasure, nSim int, overhead units.Seconds) trace.SyncRecord {
	rec := trace.SyncRecord{Step: step, Overhead: overhead}
	var nS, nA int
	for _, m := range measures {
		if m.Health == core.Dead {
			continue // corpses carry no time or power
		}
		switch m.Role {
		case core.RoleSimulation:
			nS++
			rec.SimPower += m.Power
			rec.SimCap = m.Cap
			if m.BusyTime > rec.SimTime {
				rec.SimTime = m.BusyTime
			}
		case core.RoleAnalysis:
			nA++
			rec.AnaPower += m.Power
			rec.AnaCap = m.Cap
			if m.BusyTime > rec.AnaTime {
				rec.AnaTime = m.BusyTime
			}
		}
	}
	if nS > 0 {
		rec.SimPower /= units.Watts(nS)
	}
	if nA > 0 {
		rec.AnaPower /= units.Watts(nA)
	}
	return rec
}

// SampleSegments resamples power segments at a fixed period (e.g. the
// 200 ms of Figure 1), returning one power value per sample point.
func SampleSegments(segs []Segment, period units.Seconds) []trace.Sample {
	if period <= 0 || len(segs) == 0 {
		return nil
	}
	var out []trace.Sample
	end := segs[len(segs)-1].Start + segs[len(segs)-1].Duration
	si := 0
	for t := units.Seconds(0); t < end; t += period {
		for si < len(segs)-1 && segs[si].Start+segs[si].Duration <= t {
			si++
		}
		out = append(out, trace.Sample{Time: t, Value: float64(segs[si].Power)})
	}
	return out
}

// Package telemetry is the observability substrate of the repository: a
// zero-dependency metrics registry (counters, gauges, fixed-bucket
// histograms, all labeled) plus a structured event bus (typed events,
// ring-buffered, with an optional JSONL sink). The power-management
// stack — RAPL domains, the message-passing runtime, the allocation
// policies, the co-simulation drivers and the machine-level scheduler —
// reports into a Hub; seesawctl exposes the registry in Prometheus text
// format (`seesawctl serve`, /metrics) and dumps the event stream for
// any experiment (-telemetry out.jsonl).
//
// All hook methods are nil-safe: a nil *Hub makes every call a no-op
// that performs no allocation, so instrumented hot paths cost a single
// pointer comparison when telemetry is disabled (see bench_test.go for
// the guarantee).
package telemetry

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"unsafe"
)

// Kind distinguishes the metric families a Registry can hold.
type Kind int

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds metric families. All methods are safe for concurrent
// use.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*Family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*Family)}
}

// Family is one named metric with a fixed label schema; its children are
// the individual label-value combinations.
type Family struct {
	name       string
	help       string
	kind       Kind
	labelNames []string
	buckets    []float64 // histogram upper bounds, ascending, without +Inf

	mu       sync.RWMutex
	children map[string]*Metric
	corder   []string
}

// maxStripes caps the per-metric stripe fan-out.
const maxStripes = 64

// stripeCount picks the stripe fan-out for newly created metric
// children from the current GOMAXPROCS: a single cell at GOMAXPROCS=1
// (bitwise the pre-striping behaviour, zero extra cost), otherwise the
// next power of two, capped at maxStripes. Evaluated at child creation
// so a Hub built inside a `go test -cpu 1,4,8` run adopts that run's
// parallelism.
func stripeCount() int {
	p := runtime.GOMAXPROCS(0)
	if p <= 1 {
		return 1
	}
	n := 1
	for n < p {
		n <<= 1
	}
	if n > maxStripes {
		n = maxStripes
	}
	return n
}

// cell is one padded stripe of a counter/gauge: the padding keeps
// adjacent stripes on distinct cache lines so concurrent writers don't
// bounce one line between cores.
type cell struct {
	bits atomic.Uint64 // float64 bits
	_    [56]byte
}

// histShard is one stripe of a histogram; padded like cell.
type histShard struct {
	counts  []atomic.Uint64 // len(buckets)+1, last is +Inf
	sumBits atomic.Uint64
	count   atomic.Uint64
	_       [24]byte
}

// stripeHint hashes the caller's goroutine stack address into a stripe
// preference. Goroutine stacks live in distinct allocations, so
// goroutines spread across stripes and a goroutine keeps hitting the
// same stripe (no cross-core line bouncing), without reaching into
// runtime internals for a P or goroutine id.
func stripeHint() uint64 {
	var b byte
	h := uint64(uintptr(unsafe.Pointer(&b))) >> 6
	h *= 0x9e3779b97f4a7c15
	return h >> 32
}

// Metric is one (family, label values) series. Writes go to one of a
// fixed set of padded stripes (one per GOMAXPROCS at creation, a single
// cell under GOMAXPROCS=1); reads aggregate over the stripes at scrape
// or snapshot time, so the hot path never shares a contended cache
// line.
type Metric struct {
	fam       *Family
	labelVals []string

	cells  []cell      // counter/gauge stripes
	shards []histShard // histogram stripes
}

// cellFor returns the caller's counter/gauge stripe.
func (m *Metric) cellFor() *cell {
	if len(m.cells) == 1 {
		return &m.cells[0]
	}
	return &m.cells[stripeHint()&uint64(len(m.cells)-1)]
}

// shardFor returns the caller's histogram stripe.
func (m *Metric) shardFor() *histShard {
	if len(m.shards) == 1 {
		return &m.shards[0]
	}
	return &m.shards[stripeHint()&uint64(len(m.shards)-1)]
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labelNames []string) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %q re-registered as %v (was %v)", name, kind, f.kind))
		}
		return f
	}
	f := &Family{
		name:       name,
		help:       help,
		kind:       kind,
		labelNames: append([]string(nil), labelNames...),
		buckets:    append([]float64(nil), buckets...),
		children:   make(map[string]*Metric),
	}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or returns) a counter family.
func (r *Registry) Counter(name, help string, labelNames ...string) *Family {
	return r.family(name, help, KindCounter, nil, labelNames)
}

// Gauge registers (or returns) a gauge family.
func (r *Registry) Gauge(name, help string, labelNames ...string) *Family {
	return r.family(name, help, KindGauge, nil, labelNames)
}

// Histogram registers (or returns) a histogram family with the given
// ascending bucket upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) Histogram(name, help string, buckets []float64, labelNames ...string) *Family {
	if !sort.Float64sAreSorted(buckets) {
		panic(fmt.Sprintf("telemetry: histogram %q buckets not ascending", name))
	}
	return r.family(name, help, KindHistogram, buckets, labelNames)
}

// With returns the child metric for the given label values, creating it
// on first use. The number of values must match the family's label
// schema.
func (f *Family) With(labelValues ...string) *Metric {
	if len(labelValues) != len(f.labelNames) {
		panic(fmt.Sprintf("telemetry: metric %q wants %d label values, got %d",
			f.name, len(f.labelNames), len(labelValues)))
	}
	key := ""
	switch len(labelValues) {
	case 0:
	case 1:
		key = labelValues[0]
	default:
		key = strings.Join(labelValues, "\x1f")
	}
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok = f.children[key]; ok {
		return m
	}
	m = &Metric{fam: f, labelVals: append([]string(nil), labelValues...)}
	n := stripeCount()
	if f.kind == KindHistogram {
		m.shards = make([]histShard, n)
		for i := range m.shards {
			m.shards[i].counts = make([]atomic.Uint64, len(f.buckets)+1)
		}
	} else {
		m.cells = make([]cell, n)
	}
	f.children[key] = m
	f.corder = append(f.corder, key)
	return m
}

// addBits atomically adds delta to the float64 stored in bits.
func addBits(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1 to a counter.
func (m *Metric) Inc() { m.Add(1) }

// Add adds v to a counter (v must be non-negative) or gauge.
func (m *Metric) Add(v float64) {
	switch m.fam.kind {
	case KindCounter:
		if v < 0 {
			panic("telemetry: counter decrease")
		}
		addBits(&m.cellFor().bits, v)
	case KindGauge:
		addBits(&m.cellFor().bits, v)
	default:
		panic("telemetry: Add on histogram; use Observe")
	}
}

// Set sets a gauge's value: the value lands in stripe zero and the
// other stripes are cleared, so a subsequent Value returns v.
// Concurrent Sets are last-write-wins per stripe; mixing Set with
// concurrent Add may lose an Add that lands on a stripe mid-clear
// (gauges in this codebase are either Set- or Add-shaped, never both).
func (m *Metric) Set(v float64) {
	if m.fam.kind != KindGauge {
		panic("telemetry: Set on non-gauge")
	}
	m.cells[0].bits.Store(math.Float64bits(v))
	for i := 1; i < len(m.cells); i++ {
		m.cells[i].bits.Store(0)
	}
}

// Value returns a counter's or gauge's current value (the sum over its
// stripes).
func (m *Metric) Value() float64 {
	if m.fam.kind == KindHistogram {
		panic("telemetry: Value on histogram")
	}
	v := 0.0
	for i := range m.cells {
		v += math.Float64frombits(m.cells[i].bits.Load())
	}
	return v
}

// Observe records v into a histogram: v lands in the first bucket whose
// upper bound is >= v (+Inf catches the rest).
func (m *Metric) Observe(v float64) {
	if m.fam.kind != KindHistogram {
		panic("telemetry: Observe on non-histogram")
	}
	i := sort.SearchFloat64s(m.fam.buckets, v)
	sh := m.shardFor()
	sh.counts[i].Add(1)
	addBits(&sh.sumBits, v)
	sh.count.Add(1)
}

// Count returns a histogram's total observation count.
func (m *Metric) Count() uint64 {
	if m.fam.kind != KindHistogram {
		panic("telemetry: Count on non-histogram")
	}
	var n uint64
	for i := range m.shards {
		n += m.shards[i].count.Load()
	}
	return n
}

// Sum returns a histogram's sum of observations.
func (m *Metric) Sum() float64 {
	if m.fam.kind != KindHistogram {
		panic("telemetry: Sum on non-histogram")
	}
	v := 0.0
	for i := range m.shards {
		v += math.Float64frombits(m.shards[i].sumBits.Load())
	}
	return v
}

// BucketCounts returns a histogram's per-bucket (non-cumulative) counts;
// the last entry is the +Inf bucket.
func (m *Metric) BucketCounts() []uint64 {
	if m.fam.kind != KindHistogram {
		panic("telemetry: BucketCounts on non-histogram")
	}
	out := make([]uint64, len(m.fam.buckets)+1)
	for s := range m.shards {
		for i := range m.shards[s].counts {
			out[i] += m.shards[s].counts[i].Load()
		}
	}
	return out
}

// PowerBuckets returns histogram bounds for per-node power quantities in
// Watts, spanning the Theta cap range (98-215 W) with 10 W resolution.
func PowerBuckets() []float64 {
	out := make([]float64, 0, 14)
	for w := 90.0; w <= 220.0; w += 10 {
		out = append(out, w)
	}
	return out
}

// LatencyBuckets returns 1-2-5 histogram bounds for virtual-time
// latencies, from 1 microsecond to 100 seconds.
// CellBuckets returns histogram bounds for campaign cell durations in
// wall-clock seconds: cells range from sub-second smoke runs to
// multi-minute 1024-node sweeps.
func CellBuckets() []float64 {
	return []float64{0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600}
}

func LatencyBuckets() []float64 {
	var out []float64
	for _, mag := range []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1, 10, 100} {
		for _, m := range []float64{1, 2, 5} {
			if v := mag * m; v <= 100 {
				out = append(out, v)
			}
		}
	}
	return out
}

// labelPairs renders {k="v",...} for exposition (empty string when the
// family has no labels).
func labelPairs(names, vals []string, extra ...string) string {
	if len(names) == 0 && len(extra) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", n, vals[i])
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if i > 0 || len(names) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extra[i], extra[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a metric value in Prometheus style.
func formatFloat(v float64) string {
	switch {
	case math.IsNaN(v):
		return "NaN"
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus emits every family in Prometheus text exposition
// format (families sorted by name, children in creation order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.RLock()
		f := r.fams[name]
		r.mu.RUnlock()
		if f == nil {
			continue
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		f.mu.RLock()
		keys := append([]string(nil), f.corder...)
		children := make([]*Metric, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.RUnlock()
		for _, m := range children {
			if err := writeChild(w, f, m); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *Family, m *Metric) error {
	switch f.kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelPairs(f.labelNames, m.labelVals), formatFloat(m.Value()))
		return err
	case KindHistogram:
		counts := m.BucketCounts()
		var cum uint64
		for i, bound := range f.buckets {
			cum += counts[i]
			le := formatFloat(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				labelPairs(f.labelNames, m.labelVals, "le", le), cum); err != nil {
				return err
			}
		}
		cum += counts[len(f.buckets)]
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			labelPairs(f.labelNames, m.labelVals, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name,
			labelPairs(f.labelNames, m.labelVals), formatFloat(m.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name,
			labelPairs(f.labelNames, m.labelVals), m.Count())
		return err
	}
	return nil
}

// SeriesSnapshot is one child's state in a Snapshot.
type SeriesSnapshot struct {
	Labels map[string]string `json:"labels,omitempty"`
	Value  float64           `json:"value,omitempty"`
	Count  uint64            `json:"count,omitempty"`
	Sum    float64           `json:"sum,omitempty"`
	// Buckets maps upper bound (as formatted by formatFloat, "+Inf"
	// last) to non-cumulative count; histogram only.
	Buckets map[string]uint64 `json:"buckets,omitempty"`
}

// FamilySnapshot is one family's state in a Snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help"`
	Kind   string           `json:"kind"`
	Series []SeriesSnapshot `json:"series"`
}

// Snapshot returns a point-in-time copy of every family, for the JSON
// debug endpoint. Families are sorted by name.
func (r *Registry) Snapshot() []FamilySnapshot {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	r.mu.RUnlock()
	sort.Strings(names)
	out := make([]FamilySnapshot, 0, len(names))
	for _, name := range names {
		r.mu.RLock()
		f := r.fams[name]
		r.mu.RUnlock()
		if f == nil {
			continue
		}
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		f.mu.RLock()
		keys := append([]string(nil), f.corder...)
		children := make([]*Metric, len(keys))
		for i, k := range keys {
			children[i] = f.children[k]
		}
		f.mu.RUnlock()
		for _, m := range children {
			ss := SeriesSnapshot{}
			if len(f.labelNames) > 0 {
				ss.Labels = make(map[string]string, len(f.labelNames))
				for i, n := range f.labelNames {
					ss.Labels[n] = m.labelVals[i]
				}
			}
			switch f.kind {
			case KindCounter, KindGauge:
				ss.Value = m.Value()
			case KindHistogram:
				counts := m.BucketCounts()
				ss.Count = m.Count()
				ss.Sum = m.Sum()
				ss.Buckets = make(map[string]uint64, len(f.buckets)+1)
				for i, bound := range f.buckets {
					ss.Buckets[formatFloat(bound)] = counts[i]
				}
				ss.Buckets["+Inf"] = counts[len(f.buckets)]
			}
			fs.Series = append(fs.Series, ss)
		}
		out = append(out, fs)
	}
	return out
}

package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"seesaw/internal/fault"
	"seesaw/internal/telemetry"
	"seesaw/internal/workload"
)

// TestFaultsExperimentRenders: the faults experiment completes, reports
// the shrunken partition, and its kill emits lifecycle telemetry.
func TestFaultsExperimentRenders(t *testing.T) {
	hub := telemetry.New(telemetry.Options{})
	e, ok := Get("faults")
	if !ok {
		t.Fatal("faults experiment not registered")
	}
	o := fastOptions()
	o.Telemetry = hub
	var buf bytes.Buffer
	if err := e.Run(context.Background(), o, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "kill ana node 7") {
		t.Errorf("missing kill scenario table:\n%s", out)
	}
	if !strings.Contains(out, "4+3") {
		t.Errorf("kill scenario does not report the shrunken partition:\n%s", out)
	}
	var sawKill, sawDecision bool
	for _, ev := range hub.Events() {
		switch ev.Kind() {
		case "NodeKilled":
			sawKill = true
		case "PolicyDecision":
			sawDecision = true
		}
	}
	if !sawKill || !sawDecision {
		t.Errorf("events missing: NodeKilled=%v PolicyDecision=%v", sawKill, sawDecision)
	}
}

// TestFaultsSeesawReconverges pins the experiment's headline claim at
// the bench layer: after the analysis-node kill, SeeSAw's post-fault
// slack re-converges below the static division's, and it finishes the
// job sooner.
func TestFaultsSeesawReconverges(t *testing.T) {
	steps := 60
	spec := specAt(8, defaultDim, 1, steps, workload.Tasks("msd"))
	plan, err := fault.Parse("kill:7@20")
	if err != nil {
		t.Fatal(err)
	}
	run := func(policy string) (total, slack float64) {
		res, err := runCell(context.Background(), cell{spec: spec, policy: policy, window: 1,
			faults: plan, jobSeed: 11, runSeed: 12})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.TotalTime), res.SyncLog.MeanSlackFrom(41)
	}
	staticT, staticS := run("static")
	seesawT, seesawS := run("seesaw")
	if staticS <= 0.05 {
		t.Fatalf("static post-kill slack %v too small: kill did not unbalance the run", staticS)
	}
	if seesawS >= staticS*0.75 {
		t.Errorf("seesaw post-kill slack %v did not re-converge below static %v", seesawS, staticS)
	}
	if seesawT >= staticT {
		t.Errorf("seesaw %v not faster than static %v after the kill", seesawT, staticT)
	}
}
